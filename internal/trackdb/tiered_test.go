package trackdb_test

import (
	"fmt"
	"testing"

	"github.com/tmerge/tmerge/internal/core"
	"github.com/tmerge/tmerge/internal/geom"
	"github.com/tmerge/tmerge/internal/histlog"
	"github.com/tmerge/tmerge/internal/trackdb"
	"github.com/tmerge/tmerge/internal/video"
)

// tierEntries builds n deterministic window entries: each window
// extends three fresh tracks, merges its first into the long-lived
// group rooted at 0, and coalesces the other two — so eviction sees a
// mix of one ever-growing hot group and many short-lived groups that
// age out of the horizon.
func tierEntries(n int) []histlog.WindowEntry {
	entries := make([]histlog.WindowEntry, 0, n)
	seq := 0
	for i := 0; i < n; i++ {
		w := video.Window{Index: i, Start: video.FrameIndex(i * 5), End: video.FrameIndex(i*5 + 4), Nominal: 5}
		e := histlog.WindowEntry{Window: w}
		base := video.TrackID(i * 3)
		for t := video.TrackID(0); t < 3; t++ {
			id := base + t
			for f := video.FrameIndex(0); f < 3; f++ {
				e.Extends = append(e.Extends, histlog.Extend{
					Track: id, Frame: w.Start + f,
					CX: float64(id), CY: float64(f), Class: video.ClassID(t % 2),
				})
			}
		}
		if i > 0 {
			e.Events = append(e.Events,
				core.MergeEvent{Seq: seq, Pair: video.PairKey{A: base - 3, B: base}, FromA: 0, FromB: base, Canon: 0},
				core.MergeEvent{Seq: seq + 1, Pair: video.PairKey{A: base + 1, B: base + 2}, FromA: base + 1, FromB: base + 2, Canon: base + 1})
			seq += 2
		}
		entries = append(entries, e)
	}
	return entries
}

// feedEntry pushes one window entry into a tiered view exactly as the
// ingest commit path does: extensions, then events, then Flush, then
// eviction at the horizon cutoff.
func feedEntry(t *testing.T, tv *trackdb.TieredView, e *histlog.WindowEntry, horizon video.FrameIndex) {
	t.Helper()
	for _, x := range e.Extends {
		if err := tv.ExtendCell(x.Track, x.Frame, x.Class, x.CX, x.CY); err != nil {
			t.Fatalf("ExtendCell: %v", err)
		}
	}
	if err := tv.ApplyEvents(e.Events); err != nil {
		t.Fatalf("ApplyEvents: %v", err)
	}
	tv.Flush()
	tv.EvictBefore(e.Window.End + 1 - horizon)
}

// feedPlain pushes the same entry into an unbounded LiveView.
func feedPlain(t *testing.T, v *trackdb.LiveView, e *histlog.WindowEntry) {
	t.Helper()
	for _, x := range e.Extends {
		v.ExtendCell(x.Track, x.Frame, x.Class, x.CX, x.CY)
	}
	if err := v.ApplyEvents(e.Events); err != nil {
		t.Fatalf("plain ApplyEvents: %v", err)
	}
	v.Flush()
}

// compareViews checks every TrackView answer the query operators
// consult, across the full ID set.
func compareViews(t *testing.T, tv *trackdb.TieredView, v *trackdb.LiveView, what string) {
	t.Helper()
	got, want := tv.IDs(), v.IDs()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("%s: IDs diverged\ngot:  %v\nwant: %v", what, got, want)
	}
	probes := []geom.Rect{
		{X: -1, Y: -1, W: 1000, H: 1000},
		{X: 0, Y: 0, W: 10, H: 1},
		{X: 5, Y: 1, W: 20, H: 0.5},
	}
	for _, id := range want {
		gs, ge, gok := tv.Interval(id)
		ws, we, wok := v.Interval(id)
		if gs != ws || ge != we || gok != wok {
			t.Fatalf("%s: Interval(%d) = (%d,%d,%v), want (%d,%d,%v)", what, id, gs, ge, gok, ws, we, wok)
		}
		if tv.Boxes(id) != v.Boxes(id) {
			t.Fatalf("%s: Boxes(%d) = %d, want %d", what, id, tv.Boxes(id), v.Boxes(id))
		}
		if tv.Class(id) != v.Class(id) {
			t.Fatalf("%s: Class(%d) = %d, want %d", what, id, tv.Class(id), v.Class(id))
		}
		for _, r := range probes {
			if tv.Dwell(id, r) != v.Dwell(id, r) {
				t.Fatalf("%s: Dwell(%d, %+v) = %d, want %d", what, id, r, tv.Dwell(id, r), v.Dwell(id, r))
			}
		}
		if tv.Canonical(id) != v.Canonical(id) {
			t.Fatalf("%s: Canonical(%d) diverged", what, id)
		}
	}
	if tv.Len() != v.Len() || tv.Seq() != v.Seq() {
		t.Fatalf("%s: Len/Seq diverged: %d/%d vs %d/%d", what, tv.Len(), tv.Seq(), v.Len(), v.Seq())
	}
}

func TestTieredViewAnswersMatchLiveView(t *testing.T) {
	entries := tierEntries(20)
	log, err := histlog.Open(t.TempDir(), histlog.Options{WindowsPerSegment: 4})
	if err != nil {
		t.Fatal(err)
	}
	tv := trackdb.NewTieredView(nil, log)
	plain := trackdb.NewLiveView()
	const horizon = 10
	for i := range entries {
		if err := log.AppendWindow(entries[i]); err != nil {
			t.Fatalf("AppendWindow %d: %v", i, err)
		}
		feedEntry(t, tv, &entries[i], horizon)
		feedPlain(t, plain, &entries[i])
		compareViews(t, tv, plain, fmt.Sprintf("window %d", i))
	}
	st := tv.Stats()
	if st.Evicted == 0 {
		t.Fatal("horizon never evicted anything; the test is not exercising tiering")
	}
	if tv.ColdTracks() == 0 {
		t.Fatal("no cold tracks at end of run")
	}

	// The hot tier holds exactly the tracks alive within the horizon:
	// the bounded-memory invariant, and its determinism.
	cutoff := entries[len(entries)-1].Window.End + 1 - horizon
	for _, id := range plain.IDs() {
		_, end, _ := plain.Interval(id)
		if hot := tv.IsHot(id); hot != (end >= cutoff) {
			t.Fatalf("track %d (end %d, cutoff %d): hot=%v", id, end, cutoff, hot)
		}
	}
	if tv.HotTracks()+tv.ColdTracks() != plain.Len() {
		t.Fatalf("tier split %d+%d does not cover %d identities", tv.HotTracks(), tv.ColdTracks(), plain.Len())
	}
}

func TestTieredViewRehydratesOnLateEvents(t *testing.T) {
	log, err := histlog.Open(t.TempDir(), histlog.Options{WindowsPerSegment: 2})
	if err != nil {
		t.Fatal(err)
	}
	tv := trackdb.NewTieredView(nil, log)
	plain := trackdb.NewLiveView()

	// Two windows of quiet history: tracks 0 and 1 live early, then age
	// far out of the horizon.
	entries := []histlog.WindowEntry{
		{
			Window: video.Window{Index: 0, Start: 0, End: 9, Nominal: 10},
			Extends: []histlog.Extend{
				{Track: 0, Frame: 0, CX: 1, CY: 1},
				{Track: 0, Frame: 2, CX: 2, CY: 1},
				{Track: 1, Frame: 1, CX: 3, CY: 2, Class: 1},
				{Track: 1, Frame: 3, CX: 4, CY: 2, Class: 1},
			},
		},
		{
			Window: video.Window{Index: 1, Start: 10, End: 19, Nominal: 10},
			Extends: []histlog.Extend{
				{Track: 7, Frame: 15, CX: 9, CY: 9},
			},
		},
	}
	for i := range entries {
		if err := log.AppendWindow(entries[i]); err != nil {
			t.Fatal(err)
		}
		feedEntry(t, tv, &entries[i], 5)
		feedPlain(t, plain, &entries[i])
	}
	if tv.ColdTracks() < 2 {
		t.Fatalf("tracks 0 and 1 should be cold, have %d cold", tv.ColdTracks())
	}

	// A late union touching the two cold groups rehydrates both; a late
	// extension of a cold group rehydrates it too.
	late := histlog.WindowEntry{
		Window:  video.Window{Index: 2, Start: 20, End: 29, Nominal: 10},
		Extends: []histlog.Extend{{Track: 1, Frame: 21, CX: 5, CY: 2, Class: 1}},
		Events:  []core.MergeEvent{{Seq: 0, Pair: video.PairKey{A: 0, B: 1}, FromA: 0, FromB: 1, Canon: 0}},
	}
	if err := log.AppendWindow(late); err != nil {
		t.Fatal(err)
	}
	feedEntry(t, tv, &late, 5)
	feedPlain(t, plain, &late)
	compareViews(t, tv, plain, "after rehydration")
	if tv.Stats().Rehydrated == 0 {
		t.Fatal("late event did not rehydrate")
	}
}

// TestTieredViewOutOfOrderEventRejected: the tiered view inherits the
// live view's event-cursor discipline — an event whose Seq is not
// exactly the next cursor position is rejected without mutating
// anything, including through the batch path.
func TestTieredViewOutOfOrderEventRejected(t *testing.T) {
	log, err := histlog.Open(t.TempDir(), histlog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tv := trackdb.NewTieredView(nil, log)
	for id := video.TrackID(0); id < 3; id++ {
		if err := tv.ExtendCell(id, video.FrameIndex(id), 0, 1, 1); err != nil {
			t.Fatal(err)
		}
	}
	tv.Flush()

	ahead := core.MergeEvent{Seq: 1, Pair: video.PairKey{A: 0, B: 1}, FromA: 0, FromB: 1, Canon: 0}
	if err := tv.ApplyEvent(ahead); err == nil {
		t.Fatal("event ahead of the cursor accepted")
	}
	if tv.Seq() != 0 || tv.Len() != 3 {
		t.Fatalf("rejected event mutated the view: seq %d, len %d", tv.Seq(), tv.Len())
	}
	// A batch whose second event repeats a seq stops at the bad event,
	// leaving the cursor on the applied prefix.
	batch := []core.MergeEvent{
		{Seq: 0, Pair: video.PairKey{A: 0, B: 1}, FromA: 0, FromB: 1, Canon: 0},
		{Seq: 0, Pair: video.PairKey{A: 0, B: 2}, FromA: 0, FromB: 2, Canon: 0},
	}
	if err := tv.ApplyEvents(batch); err == nil {
		t.Fatal("replayed seq accepted")
	}
	if tv.Seq() != 1 {
		t.Fatalf("cursor %d after partial batch, want 1", tv.Seq())
	}
}

// TestTieredViewRetractionAfterCoalesceChain drives a lineage through
// repeated re-canonicalisation — each hop retracts the previous canon —
// with evictions between hops so every coalesce touches a cold group
// and replays through the store. The tiered view must match a plain
// view cell-for-cell and report the same retracted identities.
func TestTieredViewRetractionAfterCoalesceChain(t *testing.T) {
	log, err := histlog.Open(t.TempDir(), histlog.Options{WindowsPerSegment: 2})
	if err != nil {
		t.Fatal(err)
	}
	tv := trackdb.NewTieredView(nil, log)
	plain := trackdb.NewLiveView()
	const horizon = 8

	win := func(i int) video.Window {
		return video.Window{Index: i, Start: video.FrameIndex(i * 10), End: video.FrameIndex(i*10 + 9), Nominal: 10}
	}
	// Window 0 births tracks 5, 6, 7; each later window revives the
	// chain's current head and folds it under a smaller canon:
	// 7 -> 6 -> 5 -> 0.
	entries := []histlog.WindowEntry{
		{Window: win(0), Extends: []histlog.Extend{
			{Track: 5, Frame: 0, CX: 5, CY: 1},
			{Track: 6, Frame: 1, CX: 6, CY: 1},
			{Track: 7, Frame: 2, CX: 7, CY: 1},
		}},
		{Window: win(1), Extends: []histlog.Extend{{Track: 7, Frame: 12, CX: 7, CY: 2}},
			Events: []core.MergeEvent{{Seq: 0, Pair: video.PairKey{A: 6, B: 7}, FromA: 6, FromB: 7, Canon: 6}}},
		{Window: win(2), Extends: []histlog.Extend{{Track: 6, Frame: 22, CX: 6, CY: 3}},
			Events: []core.MergeEvent{{Seq: 1, Pair: video.PairKey{A: 5, B: 6}, FromA: 5, FromB: 6, Canon: 5}}},
		{Window: win(3), Extends: []histlog.Extend{
			{Track: 0, Frame: 30, CX: 0, CY: 4},
			{Track: 5, Frame: 32, CX: 5, CY: 4}},
			Events: []core.MergeEvent{{Seq: 2, Pair: video.PairKey{A: 0, B: 5}, FromA: 0, FromB: 5, Canon: 0}}},
	}
	for i := range entries {
		if err := log.AppendWindow(entries[i]); err != nil {
			t.Fatal(err)
		}
		for _, x := range entries[i].Extends {
			if err := tv.ExtendCell(x.Track, x.Frame, x.Class, x.CX, x.CY); err != nil {
				t.Fatalf("window %d ExtendCell: %v", i, err)
			}
			plain.ExtendCell(x.Track, x.Frame, x.Class, x.CX, x.CY)
		}
		if err := tv.ApplyEvents(entries[i].Events); err != nil {
			t.Fatalf("window %d ApplyEvents: %v", i, err)
		}
		if err := plain.ApplyEvents(entries[i].Events); err != nil {
			t.Fatalf("window %d plain ApplyEvents: %v", i, err)
		}
		gc, gr := tv.Flush()
		wc, wr := plain.Flush()
		if fmt.Sprint(gc) != fmt.Sprint(wc) || fmt.Sprint(gr) != fmt.Sprint(wr) {
			t.Fatalf("window %d: Flush deltas diverged: (%v,%v) vs (%v,%v)", i, gc, gr, wc, wr)
		}
		if i > 0 {
			// Each coalesce retracts exactly the superseded canon.
			wantGone := entries[i].Events[0].FromB
			found := false
			for _, id := range wr {
				if id == wantGone {
					found = true
				}
			}
			if !found {
				t.Fatalf("window %d: coalesce did not retract %d (removed %v)", i, wantGone, wr)
			}
		}
		tv.EvictBefore(entries[i].Window.End + 1 - horizon)
		compareViews(t, tv, plain, fmt.Sprintf("chain window %d", i))
	}
	if tv.Stats().Rehydrated == 0 {
		t.Fatal("chain never rehydrated a cold group; evictions were not exercised")
	}
	// The surviving canon holds the whole lineage.
	if got := tv.Canonical(7); got != 0 {
		t.Fatalf("Canonical(7) = %d after the chain, want 0", got)
	}
}

func TestTieredViewWithoutStoreRefusesColdTouch(t *testing.T) {
	tv := trackdb.NewTieredView(nil, nil)
	if err := tv.ExtendCell(3, 1, 0, 1, 1); err != nil {
		t.Fatalf("hot extension failed: %v", err)
	}
	tv.Flush()
	tv.EvictBefore(100)
	if tv.ColdTracks() != 1 {
		t.Fatalf("want 1 cold track, have %d", tv.ColdTracks())
	}
	if err := tv.ExtendCell(3, 200, 0, 1, 1); err == nil {
		t.Fatal("cold extension with no store succeeded")
	}
}
