package trackdb

import (
	"testing"

	"github.com/tmerge/tmerge/internal/core"
	"github.com/tmerge/tmerge/internal/geom"
	"github.com/tmerge/tmerge/internal/video"
	"github.com/tmerge/tmerge/internal/xrand"
)

func liveBox(id video.TrackID, f video.FrameIndex, x float64, class video.ClassID) video.BBox {
	return video.BBox{
		ID:    video.BBoxID(int(id)*10000 + int(f)),
		Frame: f,
		Rect:  geom.Rect{X: x, Y: 10, W: 10, H: 10},
		Class: class,
	}
}

func TestLiveViewExtendBasics(t *testing.T) {
	v := NewLiveView()
	v.Extend(7, liveBox(7, 3, 0, 1))
	v.Extend(7, liveBox(7, 5, 100, 1))
	v.Extend(7, liveBox(7, 4, 0, 2))

	if v.Len() != 1 {
		t.Fatalf("Len = %d", v.Len())
	}
	s, e, ok := v.Interval(7)
	if !ok || s != 3 || e != 5 {
		t.Errorf("Interval = [%d, %d] ok=%v", s, e, ok)
	}
	if v.Boxes(7) != 3 {
		t.Errorf("Boxes = %d", v.Boxes(7))
	}
	if got := v.Class(7); got != 1 {
		t.Errorf("Class = %d, want plurality 1", got)
	}
	// Boxes at x=0 have center (5, 15); the x=100 box does not.
	if got := v.Dwell(7, geom.Rect{X: 0, Y: 0, W: 50, H: 50}); got != 2 {
		t.Errorf("Dwell = %d, want 2", got)
	}
	if _, _, ok := v.Interval(99); ok {
		t.Error("Interval(99) reported a live identity")
	}

	// Re-feeding the same box is a no-op, including for the delta feed.
	v.Flush()
	v.Extend(7, liveBox(7, 3, 0, 1))
	if changed, removed := v.Flush(); len(changed) != 0 || len(removed) != 0 {
		t.Errorf("re-feed dirtied the view: changed=%v removed=%v", changed, removed)
	}
}

func TestLiveViewMergeMirrorsBatchApply(t *testing.T) {
	// Tracks 2 and 5 contest frame 10: batch Apply keeps the lower-ID
	// member's box. The view must agree, in both feed orders.
	for _, feedLowFirst := range []bool{true, false} {
		v := NewLiveView()
		m := core.NewMerger()
		a := liveBox(2, 10, 0, 1)   // center (5, 15)
		b := liveBox(5, 10, 100, 2) // center (105, 15)
		if feedLowFirst {
			v.Extend(2, a)
			v.Extend(5, b)
		} else {
			v.Extend(5, b)
			v.Extend(2, a)
		}
		v.Extend(5, liveBox(5, 11, 100, 2))
		m.Merge(video.MakePairKey(2, 5))
		if err := v.ApplyEvents(m.Events()); err != nil {
			t.Fatal(err)
		}

		if v.Len() != 1 {
			t.Fatalf("Len = %d after merge", v.Len())
		}
		if got := v.Canonical(5); got != 2 {
			t.Errorf("Canonical(5) = %d", got)
		}
		if v.Boxes(2) != 2 {
			t.Errorf("Boxes = %d, want 2 (frame 10 deduplicated)", v.Boxes(2))
		}
		// Frame 10 must be member 2's box: dwell near the origin is 1.
		if got := v.Dwell(2, geom.Rect{X: 0, Y: 0, W: 50, H: 50}); got != 1 {
			t.Errorf("Dwell = %d, want member 2 to own frame 10", got)
		}
		// Class tally follows the dedup: one class-1 box, one class-2 box —
		// plurality ties resolve to the smaller class ID.
		if got := v.Class(2); got != 1 {
			t.Errorf("Class = %d", got)
		}
	}
}

func TestLiveViewEventCursorAndUnknownGroups(t *testing.T) {
	v := NewLiveView()
	v.Extend(1, liveBox(1, 0, 0, 0))
	v.Extend(2, liveBox(2, 1, 0, 0))

	ev := core.MergeEvent{Seq: 3, Pair: video.MakePairKey(1, 2), FromA: 1, FromB: 2, Canon: 1}
	if err := v.ApplyEvent(ev); err == nil {
		t.Error("out-of-order event accepted")
	}
	ev.Seq = 0
	ev.Pair, ev.FromA, ev.FromB, ev.Canon = video.MakePairKey(1, 9), 1, 9, 1
	if err := v.ApplyEvent(ev); err == nil {
		t.Error("event touching an unseen group accepted")
	}
	// The failed applies must not have advanced the cursor.
	if v.Seq() != 0 {
		t.Fatalf("Seq = %d after rejected events", v.Seq())
	}
	ev.Pair, ev.FromA, ev.FromB, ev.Canon = video.MakePairKey(1, 2), 1, 2, 1
	if err := v.ApplyEvent(ev); err != nil {
		t.Fatal(err)
	}
	if v.Seq() != 1 {
		t.Errorf("Seq = %d", v.Seq())
	}
}

func TestLiveViewFlushDeltas(t *testing.T) {
	v := NewLiveView()
	v.Extend(4, liveBox(4, 0, 0, 0))
	v.Extend(9, liveBox(9, 1, 0, 0))
	changed, removed := v.Flush()
	if len(changed) != 2 || changed[0] != 4 || changed[1] != 9 || len(removed) != 0 {
		t.Fatalf("bootstrap flush: changed=%v removed=%v", changed, removed)
	}

	m := core.NewMerger()
	m.Merge(video.MakePairKey(4, 9))
	if err := v.ApplyEvents(m.Events()); err != nil {
		t.Fatal(err)
	}
	changed, removed = v.Flush()
	if len(changed) != 1 || changed[0] != 4 {
		t.Errorf("merge flush changed = %v, want [4]", changed)
	}
	if len(removed) != 1 || removed[0] != 9 {
		t.Errorf("merge flush removed = %v, want [9]", removed)
	}
	// Drained: the next flush is empty.
	if c, r := v.Flush(); len(c) != 0 || len(r) != 0 {
		t.Errorf("second flush not empty: %v %v", c, r)
	}
}

// TestLiveViewEquivalentToBatchApply is the core guarantee: after any
// interleaving of extensions and merge events, every queryable quantity
// equals a scan over core.Merger.Apply of the full track set.
func TestLiveViewEquivalentToBatchApply(t *testing.T) {
	rng := xrand.New(29)
	region := geom.Rect{X: 0, Y: 0, W: 400, H: 300}

	for trial := 0; trial < 20; trial++ {
		// Random raw tracks with random spans, positions, classes.
		n := 6 + rng.Intn(10)
		var tracks []*video.Track
		for i := 0; i < n; i++ {
			id := video.TrackID(i)
			start := video.FrameIndex(rng.Intn(50))
			span := 1 + rng.Intn(40)
			tr := &video.Track{ID: id}
			for f := start; f < start+video.FrameIndex(span); f++ {
				if rng.Float64() < 0.2 {
					continue // holes are legal
				}
				tr.Boxes = append(tr.Boxes, video.BBox{
					ID:    video.BBoxID(i*1000 + int(f)),
					Frame: f,
					Rect:  geom.Rect{X: rng.Float64() * 500, Y: rng.Float64() * 400, W: 20, H: 20},
					Class: video.ClassID(rng.Intn(3)),
				})
			}
			if len(tr.Boxes) == 0 {
				tr.Boxes = append(tr.Boxes, video.BBox{ID: video.BBoxID(i * 1000), Frame: start, Rect: geom.Rect{X: 1, Y: 1, W: 20, H: 20}})
			}
			tracks = append(tracks, tr)
		}

		// Feed the view: boxes in a shuffled global order, merges applied
		// at random points after both endpoints have at least one box fed.
		v := NewLiveView()
		m := core.NewMerger()
		type feedItem struct {
			id  video.TrackID
			box video.BBox
		}
		var feed []feedItem
		for _, tr := range tracks {
			for _, b := range tr.Boxes {
				feed = append(feed, feedItem{tr.ID, b})
			}
		}
		rng.Shuffle(len(feed), func(i, j int) { feed[i], feed[j] = feed[j], feed[i] })
		seen := make(map[video.TrackID]bool)
		cursor := 0
		for _, it := range feed {
			v.Extend(it.id, it.box)
			seen[it.id] = true
			if rng.Float64() < 0.15 {
				a := video.TrackID(rng.Intn(n))
				b := video.TrackID(rng.Intn(n))
				if a != b && seen[a] && seen[b] {
					m.Merge(video.MakePairKey(a, b))
					if err := v.ApplyEvents(m.EventsSince(cursor)); err != nil {
						t.Fatal(err)
					}
					cursor = m.EventCount()
				}
			}
		}

		// Batch reference.
		merged := m.Apply(video.NewTrackSet(tracks))
		if v.Len() != merged.Len() {
			t.Fatalf("trial %d: view has %d identities, batch has %d", trial, v.Len(), merged.Len())
		}
		for _, mt := range merged.Sorted() {
			s, e, ok := v.Interval(mt.ID)
			if !ok {
				t.Fatalf("trial %d: view missing canonical %d", trial, mt.ID)
			}
			if s != mt.StartFrame() || e != mt.EndFrame() {
				t.Fatalf("trial %d: track %d interval [%d, %d], batch [%d, %d]",
					trial, mt.ID, s, e, mt.StartFrame(), mt.EndFrame())
			}
			if v.Boxes(mt.ID) != len(mt.Boxes) {
				t.Fatalf("trial %d: track %d has %d boxes, batch %d", trial, mt.ID, v.Boxes(mt.ID), len(mt.Boxes))
			}
			if v.Class(mt.ID) != mt.Class() {
				t.Fatalf("trial %d: track %d class %d, batch %d", trial, mt.ID, v.Class(mt.ID), mt.Class())
			}
			dwell := 0
			for _, b := range mt.Boxes {
				if region.Contains(b.Rect.Center()) {
					dwell++
				}
			}
			if v.Dwell(mt.ID, region) != dwell {
				t.Fatalf("trial %d: track %d dwell %d, batch %d", trial, mt.ID, v.Dwell(mt.ID, region), dwell)
			}
		}
	}
}

func TestViewStateRoundTrip(t *testing.T) {
	v := NewLiveView()
	v.Extend(3, liveBox(3, 0, 0, 1))
	v.Extend(3, liveBox(3, 1, 5, 1))
	v.Extend(8, liveBox(8, 2, 50, 2))
	m := core.NewMerger()
	m.Merge(video.MakePairKey(3, 8))
	if err := v.ApplyEvents(m.Events()); err != nil {
		t.Fatal(err)
	}
	v.Flush()

	st := v.State()
	r, err := RestoreView(st)
	if err != nil {
		t.Fatal(err)
	}
	if r.Seq() != v.Seq() || r.Len() != v.Len() {
		t.Fatalf("restored Seq=%d Len=%d, want %d %d", r.Seq(), r.Len(), v.Seq(), v.Len())
	}
	for _, id := range v.IDs() {
		vs, ve, _ := v.Interval(id)
		rs, re, ok := r.Interval(id)
		if !ok || rs != vs || re != ve {
			t.Errorf("track %d interval differs after restore", id)
		}
		if r.Boxes(id) != v.Boxes(id) || r.Class(id) != v.Class(id) {
			t.Errorf("track %d census differs after restore", id)
		}
	}
	if got := r.Canonical(8); got != 3 {
		t.Errorf("restored Canonical(8) = %d", got)
	}
}

func TestRestoreViewRejectsCorruptSnapshots(t *testing.T) {
	good := func() ViewState {
		return ViewState{Seq: 1, Tracks: []ViewTrack{{
			ID:      2,
			Members: []video.TrackID{2, 5},
			Cells: []ViewCell{
				{Frame: 0, Member: 2, Class: 1, CX: 5, CY: 5},
				{Frame: 1, Member: 5, Class: 1, CX: 6, CY: 6},
			},
		}}}
	}
	if _, err := RestoreView(good()); err != nil {
		t.Fatalf("baseline snapshot rejected: %v", err)
	}

	cases := map[string]func(*ViewState){
		"negative seq":       func(s *ViewState) { s.Seq = -1 },
		"no members":         func(s *ViewState) { s.Tracks[0].Members = nil },
		"canon not smallest": func(s *ViewState) { s.Tracks[0].Members = []video.TrackID{5, 7}; s.Tracks[0].ID = 7 },
		"unsorted members":   func(s *ViewState) { s.Tracks[0].Members = []video.TrackID{2, 2} },
		"no cells":           func(s *ViewState) { s.Tracks[0].Cells = nil },
		"unsorted cells":     func(s *ViewState) { s.Tracks[0].Cells[1].Frame = 0 },
		"non-member cell":    func(s *ViewState) { s.Tracks[0].Cells[1].Member = 9 },
		"duplicate track":    func(s *ViewState) { s.Tracks = append(s.Tracks, s.Tracks[0]) },
		"member in two groups": func(s *ViewState) {
			s.Tracks = append(s.Tracks, ViewTrack{
				ID:      5,
				Members: []video.TrackID{5},
				Cells:   []ViewCell{{Frame: 0, Member: 5}},
			})
			// Track 2 already claims member 5.
			s.Tracks[1].Members = []video.TrackID{5}
			s.Tracks[1].ID = 5
		},
	}
	for name, corrupt := range cases {
		st := good()
		corrupt(&st)
		if _, err := RestoreView(st); err == nil {
			t.Errorf("%s: RestoreView accepted the snapshot", name)
		}
	}
}
