package trackdb

import (
	"testing"
	"testing/quick"

	"github.com/tmerge/tmerge/internal/core"
	"github.com/tmerge/tmerge/internal/geom"
	"github.com/tmerge/tmerge/internal/video"
	"github.com/tmerge/tmerge/internal/xrand"
)

func mk(id video.TrackID, start, end video.FrameIndex) *video.Track {
	t := &video.Track{ID: id}
	for f := start; f <= end; f++ {
		t.Boxes = append(t.Boxes, video.BBox{
			ID:    video.BBoxID(int(id)*100000 + int(f) + 1),
			Frame: f,
			Rect:  geom.Rect{X: float64(f), W: 5, H: 5},
		})
	}
	return t
}

func TestPutGetDelete(t *testing.T) {
	s := New()
	a := mk(1, 0, 10)
	if err := s.Put(a); err != nil {
		t.Fatal(err)
	}
	if s.Get(1) != a {
		t.Error("Get returned wrong track")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
	s.Delete(1)
	if s.Get(1) != nil || s.Len() != 0 {
		t.Error("Delete failed")
	}
	s.Delete(99) // no-op
}

func TestPutRejectsInvalid(t *testing.T) {
	s := New()
	if err := s.Put(&video.Track{ID: 1}); err == nil {
		t.Error("empty track accepted")
	}
}

func TestTracksInRange(t *testing.T) {
	s := New()
	tracks := []*video.Track{
		mk(1, 0, 10),
		mk(2, 5, 25),
		mk(3, 20, 30),
		mk(4, 50, 60),
	}
	for _, tr := range tracks {
		if err := s.Put(tr); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		lo, hi video.FrameIndex
		want   []video.TrackID
	}{
		{0, 4, []video.TrackID{1}},
		{8, 12, []video.TrackID{1, 2}},
		{22, 24, []video.TrackID{2, 3}},
		{0, 100, []video.TrackID{1, 2, 3, 4}},
		{31, 49, nil},
		{60, 60, []video.TrackID{4}},
		{10, 5, nil}, // inverted range
	}
	for _, c := range cases {
		got := s.TracksInRange(c.lo, c.hi)
		ids := make([]video.TrackID, len(got))
		for i, tr := range got {
			ids[i] = tr.ID
		}
		if len(ids) != len(c.want) {
			t.Errorf("range [%d,%d] = %v, want %v", c.lo, c.hi, ids, c.want)
			continue
		}
		for i := range ids {
			if ids[i] != c.want[i] {
				t.Errorf("range [%d,%d] = %v, want %v", c.lo, c.hi, ids, c.want)
				break
			}
		}
	}
}

func TestPresentAt(t *testing.T) {
	s := New()
	// Track with a gap at frame 5.
	tr := &video.Track{ID: 1}
	for _, f := range []video.FrameIndex{3, 4, 6, 7} {
		tr.Boxes = append(tr.Boxes, video.BBox{ID: video.BBoxID(f + 1), Frame: f, Rect: geom.Rect{W: 1, H: 1}})
	}
	if err := s.Put(tr); err != nil {
		t.Fatal(err)
	}
	if got := s.PresentAt(4); len(got) != 1 {
		t.Errorf("PresentAt(4) = %d tracks", len(got))
	}
	if got := s.PresentAt(5); len(got) != 0 {
		t.Errorf("PresentAt(5) = %d tracks, want 0 (gap)", len(got))
	}
}

func TestApplyMerge(t *testing.T) {
	s := New()
	for _, tr := range []*video.Track{mk(1, 0, 10), mk(2, 20, 30), mk(3, 40, 50)} {
		if err := s.Put(tr); err != nil {
			t.Fatal(err)
		}
	}
	m := core.NewMerger()
	m.Merge(video.MakePairKey(1, 2))
	removed := s.ApplyMerge(m)
	if removed != 1 {
		t.Errorf("removed = %d", removed)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	u := s.Get(1)
	if u == nil || u.Len() != 22 {
		t.Fatalf("merged track missing or wrong size: %v", u)
	}
	if s.Get(2) != nil {
		t.Error("absorbed ID still present")
	}
	// Index stays consistent after the merge.
	if got := s.TracksInRange(25, 26); len(got) != 1 || got[0].ID != 1 {
		t.Errorf("post-merge range query = %v", got)
	}
}

func TestStats(t *testing.T) {
	s := New()
	if st := s.Stats(); st.Tracks != 0 || st.Boxes != 0 {
		t.Errorf("empty stats = %+v", st)
	}
	s.Put(mk(1, 5, 10))
	s.Put(mk(2, 2, 4))
	st := s.Stats()
	if st.Tracks != 2 || st.Boxes != 9 || st.FirstFrame != 2 || st.LastFrame != 10 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFromTrackSet(t *testing.T) {
	ts := video.NewTrackSet([]*video.Track{mk(1, 0, 5), mk(2, 10, 15)})
	s := FromTrackSet(ts)
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	back := s.TrackSet()
	if back.Len() != 2 {
		t.Errorf("round trip = %d", back.Len())
	}
}

// Property: TracksInRange matches a brute-force scan for random stores
// and random ranges.
func TestTracksInRangeMatchesBruteForce(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		s := New()
		n := 1 + int(seed%40)
		var all []*video.Track
		for i := 0; i < n; i++ {
			start := video.FrameIndex(r.Intn(200))
			end := start + video.FrameIndex(r.Intn(50))
			tr := mk(video.TrackID(i+1), start, end)
			all = append(all, tr)
			if err := s.Put(tr); err != nil {
				return false
			}
		}
		for q := 0; q < 20; q++ {
			lo := video.FrameIndex(r.Intn(260))
			hi := lo + video.FrameIndex(r.Intn(80))
			got := s.TracksInRange(lo, hi)
			want := map[video.TrackID]bool{}
			for _, tr := range all {
				if tr.StartFrame() <= hi && tr.EndFrame() >= lo {
					want[tr.ID] = true
				}
			}
			if len(got) != len(want) {
				return false
			}
			for _, tr := range got {
				if !want[tr.ID] {
					return false
				}
			}
			// Ordered by start then ID.
			for i := 1; i < len(got); i++ {
				a, b := got[i-1], got[i]
				if a.StartFrame() > b.StartFrame() ||
					(a.StartFrame() == b.StartFrame() && a.ID >= b.ID) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestIndexRebuildAfterMutation(t *testing.T) {
	s := New()
	s.Put(mk(1, 0, 10))
	_ = s.TracksInRange(0, 100) // build index
	s.Put(mk(2, 50, 60))        // mutate
	got := s.TracksInRange(55, 56)
	if len(got) != 1 || got[0].ID != 2 {
		t.Errorf("stale index: %v", got)
	}
	s.Delete(2)
	if got := s.TracksInRange(55, 56); len(got) != 0 {
		t.Errorf("stale index after delete: %v", got)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := New()
	for _, tr := range []*video.Track{mk(3, 0, 10), mk(1, 20, 30)} {
		if err := s.Put(tr); err != nil {
			t.Fatal(err)
		}
	}
	path := t.TempDir() + "/store.json.gz"
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("loaded %d tracks", got.Len())
	}
	for _, id := range []video.TrackID{1, 3} {
		a, b := s.Get(id), got.Get(id)
		if b == nil || a.Len() != b.Len() {
			t.Fatalf("track %d round trip failed", id)
		}
		for i := range a.Boxes {
			if a.Boxes[i].ID != b.Boxes[i].ID || a.Boxes[i].Rect != b.Boxes[i].Rect ||
				a.Boxes[i].Frame != b.Boxes[i].Frame {
				t.Fatalf("track %d box %d differs", id, i)
			}
		}
	}
	// Index works post-load.
	if got2 := got.TracksInRange(25, 26); len(got2) != 1 || got2[0].ID != 1 {
		t.Errorf("post-load range query = %v", got2)
	}
}

func TestLoadMissing(t *testing.T) {
	if _, err := Load(t.TempDir() + "/nope.json.gz"); err == nil {
		t.Error("expected error")
	}
}
