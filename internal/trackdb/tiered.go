package trackdb

import (
	"fmt"

	"github.com/tmerge/tmerge/internal/core"
	"github.com/tmerge/tmerge/internal/geom"
	"github.com/tmerge/tmerge/internal/video"
)

// ColdStore is what a TieredView pages evicted track state back in
// from — in production the session's histlog.Log, which reconstructs a
// canonical track's full cell set from sealed segments. The interface
// lives here so trackdb does not import the storage layer.
type ColdStore interface {
	// LoadColdTrack returns the full serialised state of the canonical
	// track whose complete raw-member set is members. The result must be
	// exactly the ViewTrack a never-evicting LiveView would serialise
	// for the group — the tiered view's answers depend on it.
	LoadColdTrack(canon video.TrackID, members []video.TrackID) (ViewTrack, error)
}

// coldTrack is the in-memory summary of an evicted canonical identity:
// the aggregates every query operator consults per track (interval,
// deduplicated box count, plurality class) plus the member set needed
// to page the full state back in. Cells — the O(frames) part — live
// only on disk.
type coldTrack struct {
	start, end video.FrameIndex
	boxes      int
	class      video.ClassID
	members    []video.TrackID
}

// pagedCap bounds the transient full-cell page cache: at most this
// many cold tracks are held fully hydrated at once, evicted FIFO.
const pagedCap = 8

// TieredView is a LiveView bounded to a hot horizon: canonical tracks
// whose presence interval ended before the moving cutoff are evicted
// to compact cold summaries (cells dropped from memory, recoverable
// from the ColdStore), while recent tracks stay fully hot. It
// implements the same feed (Extend/ApplyEvent/Flush) and read
// (query.TrackView) surfaces as LiveView and answers identically —
// cold summaries carry exactly the aggregates the operators consult,
// and reads that need cells (Dwell) page them back in transiently.
//
// A merge event or extension touching an evicted group rehydrates it
// first, so correctness never depends on the horizon; the horizon only
// controls how often that (disk-reading) slow path runs. Sessions keep
// it at a couple of window lengths, where merges only ever touch
// still-hot groups and rehydration is a cold-start corner case.
//
// TieredView is not safe for concurrent use.
type TieredView struct {
	hot   *LiveView
	cold  map[video.TrackID]*coldTrack
	store ColdStore

	ids   []video.TrackID // sorted cache of hot+cold canonical IDs
	idsOK bool

	paged     map[video.TrackID]ViewTrack
	pageOrder []video.TrackID

	stats TierStats
}

// TierStats counts the tiered view's structural traffic, for the
// bounded-memory accounting the history benchmark gates on.
type TierStats struct {
	// Evicted counts canonical tracks moved hot → cold over the view's
	// lifetime; Rehydrated counts cold tracks pulled fully back into the
	// hot tier by a late-arriving extension or merge event.
	Evicted    int
	Rehydrated int
	// PageLoads counts transient full-cell loads served for reads
	// (Dwell) without rehydration.
	PageLoads int
}

// NewTieredView wraps an existing hot view (freshly built or replayed)
// with tiering against store.
func NewTieredView(hot *LiveView, store ColdStore) *TieredView {
	if hot == nil {
		hot = NewLiveView()
	}
	return &TieredView{hot: hot, cold: make(map[video.TrackID]*coldTrack), store: store}
}

// Hot returns the wrapped hot view. Callers must not mutate it behind
// the tiered view's back; the accessor exists for state snapshots and
// tests.
func (tv *TieredView) Hot() *LiveView { return tv.hot }

// Stats returns the lifetime tiering counters.
func (tv *TieredView) Stats() TierStats { return tv.stats }

// HotTracks returns how many canonical identities are fully in memory.
func (tv *TieredView) HotTracks() int { return tv.hot.Len() }

// ColdTracks returns how many canonical identities live as summaries.
func (tv *TieredView) ColdTracks() int { return len(tv.cold) }

// IsHot reports whether canonical id currently lives fully in memory.
func (tv *TieredView) IsHot(id video.TrackID) bool { return tv.hot.tracks[id] != nil }

// HotCells returns the total number of frame cells held in memory
// across hot tracks — the quantity the hot horizon bounds, and the one
// the history benchmark's flat-memory gate measures.
func (tv *TieredView) HotCells() int {
	n := 0
	for _, t := range tv.hot.tracks {
		n += len(t.cells)
	}
	return n
}

// EvictBefore moves every hot canonical track whose presence interval
// ended before cutoff to the cold tier, keeping only its summary in
// memory. Tracks with undrained Flush deltas are never evicted (the
// ingest layer evicts right after Flush, so in practice nothing is
// skipped). Iteration is in sorted ID order, so eviction — and with it
// the hot/cold partition — is deterministic. It returns how many
// tracks moved.
func (tv *TieredView) EvictBefore(cutoff video.FrameIndex) int {
	moved := 0
	for _, id := range tv.hot.IDs() {
		t := tv.hot.tracks[id]
		if t.end >= cutoff || tv.hot.dirty[id] {
			continue
		}
		tv.cold[id] = &coldTrack{
			start:   t.start,
			end:     t.end,
			boxes:   len(t.cells),
			class:   tv.hot.Class(id),
			members: t.members,
		}
		delete(tv.hot.tracks, id)
		moved++
	}
	if moved > 0 {
		tv.hot.idsOK = false
		tv.idsOK = false
		tv.stats.Evicted += moved
	}
	return moved
}

// rehydrate pulls one cold canonical track fully back into the hot
// tier. The canon mappings for its members were never dropped, so only
// the track body is rebuilt.
func (tv *TieredView) rehydrate(id video.TrackID) error {
	ct := tv.cold[id]
	if ct == nil {
		return nil
	}
	if tv.store == nil {
		return fmt.Errorf("trackdb: track %d is cold and the tiered view has no cold store", id)
	}
	vt, err := tv.store.LoadColdTrack(id, ct.members)
	if err != nil {
		return err
	}
	t, err := buildLiveTrack(vt, ct.members)
	if err != nil {
		return err
	}
	tv.hot.tracks[id] = t
	tv.hot.idsOK = false
	delete(tv.cold, id)
	delete(tv.paged, id)
	tv.idsOK = false
	tv.stats.Rehydrated++
	return nil
}

// buildLiveTrack converts a paged ViewTrack into the hot
// representation, validating what the cold store returned.
func buildLiveTrack(vt ViewTrack, members []video.TrackID) (*liveTrack, error) {
	if len(vt.Cells) == 0 {
		return nil, fmt.Errorf("trackdb: cold store returned track %d with no cells", vt.ID)
	}
	t := &liveTrack{
		start:   vt.Cells[0].Frame,
		end:     vt.Cells[len(vt.Cells)-1].Frame,
		members: append([]video.TrackID(nil), members...),
		cells:   make(map[video.FrameIndex]viewCell, len(vt.Cells)),
		classes: make(map[video.ClassID]int),
	}
	for i, c := range vt.Cells {
		if i > 0 && c.Frame <= vt.Cells[i-1].Frame {
			return nil, fmt.Errorf("trackdb: cold store returned track %d with unsorted cells", vt.ID)
		}
		t.cells[c.Frame] = viewCell{member: c.Member, class: c.Class, cx: c.CX, cy: c.CY}
		t.classes[c.Class]++
	}
	return t, nil
}

// Extend folds one new box, rehydrating the target group first if it
// was evicted. It reports any cold-store failure; extensions of hot
// groups cannot fail.
func (tv *TieredView) Extend(id video.TrackID, b video.BBox) error {
	center := b.Rect.Center()
	return tv.ExtendCell(id, b.Frame, b.Class, center.X, center.Y)
}

// ExtendCell is Extend on the reduced box representation.
func (tv *TieredView) ExtendCell(id video.TrackID, frame video.FrameIndex, class video.ClassID, cx, cy float64) error {
	c := tv.hot.Canonical(id)
	if err := tv.rehydrate(c); err != nil {
		return err
	}
	before := tv.hot.Len()
	tv.hot.ExtendCell(id, frame, class, cx, cy)
	if tv.hot.Len() != before {
		tv.idsOK = false
	}
	return nil
}

// ApplyEvent folds one merger union, rehydrating either side first if
// it was evicted.
func (tv *TieredView) ApplyEvent(ev core.MergeEvent) error {
	if err := ev.Validate(); err != nil {
		return fmt.Errorf("trackdb: %w", err)
	}
	loseID := ev.FromA
	if loseID == ev.Canon {
		loseID = ev.FromB
	}
	if err := tv.rehydrate(ev.Canon); err != nil {
		return err
	}
	if err := tv.rehydrate(loseID); err != nil {
		return err
	}
	if err := tv.hot.ApplyEvent(ev); err != nil {
		return err
	}
	tv.idsOK = false
	return nil
}

// ApplyEvents folds a log suffix in order, stopping at the first error.
func (tv *TieredView) ApplyEvents(events []core.MergeEvent) error {
	for _, ev := range events {
		if err := tv.ApplyEvent(ev); err != nil {
			return err
		}
	}
	return nil
}

// Flush drains the hot view's delta feed. Cold tracks never appear:
// eviction requires drained deltas, and any change to a cold group
// rehydrates it first.
func (tv *TieredView) Flush() (changed, removed []video.TrackID) { return tv.hot.Flush() }

// Seq returns the event-log cursor.
func (tv *TieredView) Seq() int { return tv.hot.Seq() }

// Len returns the number of live canonical identities across tiers.
func (tv *TieredView) Len() int { return tv.hot.Len() + len(tv.cold) }

// Canonical returns the canonical identity raw track id maps to; the
// mapping survives eviction.
func (tv *TieredView) Canonical(id video.TrackID) video.TrackID { return tv.hot.Canonical(id) }

// IDs returns the live canonical identities across both tiers, sorted
// ascending. The returned slice is a cache; callers must not modify it.
func (tv *TieredView) IDs() []video.TrackID {
	if !tv.idsOK {
		tv.ids = tv.ids[:0]
		tv.ids = append(tv.ids, tv.hot.IDs()...)
		for id := range tv.cold {
			tv.ids = append(tv.ids, id)
		}
		video.SortTrackIDs(tv.ids)
		tv.idsOK = true
	}
	return tv.ids
}

// Interval returns the presence interval of canonical id from
// whichever tier holds it.
func (tv *TieredView) Interval(id video.TrackID) (start, end video.FrameIndex, ok bool) {
	if s, e, ok := tv.hot.Interval(id); ok {
		return s, e, true
	}
	if ct := tv.cold[id]; ct != nil {
		return ct.start, ct.end, true
	}
	return 0, 0, false
}

// Boxes returns the deduplicated box count of canonical id.
func (tv *TieredView) Boxes(id video.TrackID) int {
	if t := tv.hot.tracks[id]; t != nil {
		return len(t.cells)
	}
	if ct := tv.cold[id]; ct != nil {
		return ct.boxes
	}
	return 0
}

// Class returns the plurality class of canonical id.
func (tv *TieredView) Class(id video.TrackID) video.ClassID {
	if t := tv.hot.tracks[id]; t != nil {
		return tv.hot.Class(id)
	}
	if ct := tv.cold[id]; ct != nil {
		return ct.class
	}
	return 0
}

// Dwell returns how many of canonical id's deduplicated boxes have
// their center inside r. For cold tracks the full cell set is paged in
// transiently (bounded FIFO cache of pagedCap tracks); a cold-store
// failure answers 0, matching an unknown identity — callers needing
// the error distinction should rehydrate explicitly.
func (tv *TieredView) Dwell(id video.TrackID, r geom.Rect) int {
	if t := tv.hot.tracks[id]; t != nil {
		return tv.hot.Dwell(id, r)
	}
	ct := tv.cold[id]
	if ct == nil {
		return 0
	}
	vt, ok := tv.paged[id]
	if !ok {
		if tv.store == nil {
			return 0
		}
		loaded, err := tv.store.LoadColdTrack(id, ct.members)
		if err != nil {
			return 0
		}
		vt = loaded
		tv.pageIn(id, vt)
	}
	n := 0
	for _, c := range vt.Cells {
		if r.Contains(geom.Point{X: c.CX, Y: c.CY}) {
			n++
		}
	}
	return n
}

// pageIn caches one paged track, evicting FIFO past pagedCap.
func (tv *TieredView) pageIn(id video.TrackID, vt ViewTrack) {
	if tv.paged == nil {
		tv.paged = make(map[video.TrackID]ViewTrack, pagedCap)
	}
	for len(tv.pageOrder) >= pagedCap {
		delete(tv.paged, tv.pageOrder[0])
		tv.pageOrder = tv.pageOrder[1:]
	}
	tv.paged[id] = vt
	tv.pageOrder = append(tv.pageOrder, id)
	tv.stats.PageLoads++
}
