package trackdb

import (
	"fmt"
	"sort"

	"github.com/tmerge/tmerge/internal/core"
	"github.com/tmerge/tmerge/internal/geom"
	"github.com/tmerge/tmerge/internal/video"
)

// LiveView is the incrementally maintained, merge-aware track view the
// streaming query engine runs against: the materialized form of "the
// merged TrackSet so far" kept current by two kinds of input instead of
// batch recomputation —
//
//   - Extend(id, box): a raw tracker track grew by one box (fed per
//     committed window);
//   - ApplyEvent(ev): the merger performed one union (fed from the
//     ordered core.MergeEvent log).
//
// Per canonical identity it maintains the presence interval, the
// deduplicated per-frame box census, and the class tally. Frame
// deduplication reproduces core.Merger.Apply's rule exactly — when two
// member fragments claim the same frame, the lower-ID fragment's box
// wins — so every derived quantity (interval, box count, plurality
// class, region dwell) is bit-identical to what a batch Apply followed
// by a scan would produce. That equivalence is what lets the query
// operators answer incrementally yet match batch Answer exactly.
//
// Mutations accumulate a changed/removed set drained by Flush, the delta
// feed the incremental query operators consume. LiveView is not safe for
// concurrent use.
type LiveView struct {
	canon  map[video.TrackID]video.TrackID
	tracks map[video.TrackID]*liveTrack
	// seq is the event-log cursor: the sequence number the next
	// ApplyEvent must carry.
	seq int

	ids   []video.TrackID // sorted cache of canonical IDs
	idsOK bool

	dirty   map[video.TrackID]bool
	removed []video.TrackID
}

// liveTrack is the per-canonical-identity state.
type liveTrack struct {
	start, end video.FrameIndex
	members    []video.TrackID // raw member IDs, sorted ascending
	cells      map[video.FrameIndex]viewCell
	classes    map[video.ClassID]int
}

// viewCell is the winning box of one frame: the member that owns it, its
// class, and its center (all any query operator consumes of a box).
type viewCell struct {
	member video.TrackID
	class  video.ClassID
	cx, cy float64
}

// NewLiveView returns an empty view with its event cursor at 0.
func NewLiveView() *LiveView {
	return &LiveView{
		canon:  make(map[video.TrackID]video.TrackID),
		tracks: make(map[video.TrackID]*liveTrack),
		dirty:  make(map[video.TrackID]bool),
	}
}

// Extend folds one new box of raw track id into the view, under the
// track's current canonical identity. Re-feeding a box the view already
// holds is a harmless no-op, and a frame contested between member
// fragments keeps the lower-ID member's box (the batch Apply rule).
func (v *LiveView) Extend(id video.TrackID, b video.BBox) {
	center := b.Rect.Center()
	v.ExtendCell(id, b.Frame, b.Class, center.X, center.Y)
}

// ExtendCell is Extend for callers that already hold the box reduced to
// the fields the view keeps — frame, class, and center. The history
// log's replay path (internal/histlog) feeds the view through it, which
// is why a journaled extension record is exactly these fields: identical
// input here means identical view state, the replay-equivalence
// invariant the history subsystem is built on.
func (v *LiveView) ExtendCell(id video.TrackID, frame video.FrameIndex, class video.ClassID, cx, cy float64) {
	c, ok := v.canon[id]
	if !ok {
		c = id
		v.canon[id] = id
	}
	t := v.tracks[c]
	if t == nil {
		t = &liveTrack{
			start:   frame,
			end:     frame,
			members: []video.TrackID{c},
			cells:   make(map[video.FrameIndex]viewCell),
			classes: make(map[video.ClassID]int),
		}
		v.tracks[c] = t
		v.idsOK = false
	}
	cell := viewCell{member: id, class: class, cx: cx, cy: cy}
	if ex, held := t.cells[frame]; held {
		if cell.member >= ex.member {
			return // the held box wins the frame; nothing changed
		}
		t.classes[ex.class]--
		if t.classes[ex.class] == 0 {
			delete(t.classes, ex.class)
		}
	} else {
		if frame < t.start {
			t.start = frame
		}
		if frame > t.end {
			t.end = frame
		}
	}
	t.cells[frame] = cell
	t.classes[cell.class]++
	v.dirty[c] = true
}

// ApplyEvent folds one merger union into the view: the losing group's
// frames move under the surviving canonical (lower-ID member winning
// contested frames), the losing canonical is retired into the removed
// set, and the event cursor advances. Events must arrive in log order —
// ev.Seq must equal Seq() — and both source groups must already be
// present (extensions are fed before events each window, so any track a
// union touches has boxes in view). Violations report an error with the
// view unmodified.
func (v *LiveView) ApplyEvent(ev core.MergeEvent) error {
	if err := ev.Validate(); err != nil {
		return fmt.Errorf("trackdb: %w", err)
	}
	if ev.Seq != v.seq {
		return fmt.Errorf("trackdb: view event cursor is %d, got event seq %d", v.seq, ev.Seq)
	}
	loseID := ev.FromA
	if loseID == ev.Canon {
		loseID = ev.FromB
	}
	keep, lose := v.tracks[ev.Canon], v.tracks[loseID]
	if keep == nil || lose == nil {
		return fmt.Errorf("trackdb: merge event %d joins groups %d and %d, but the view has not seen both", ev.Seq, ev.Canon, loseID)
	}
	for f, cl := range lose.cells {
		if ex, held := keep.cells[f]; held {
			if cl.member >= ex.member {
				continue
			}
			keep.classes[ex.class]--
			if keep.classes[ex.class] == 0 {
				delete(keep.classes, ex.class)
			}
		}
		keep.cells[f] = cl
		keep.classes[cl.class]++
	}
	if lose.start < keep.start {
		keep.start = lose.start
	}
	if lose.end > keep.end {
		keep.end = lose.end
	}
	keep.members = mergeSortedIDs(keep.members, lose.members)
	for _, m := range lose.members {
		v.canon[m] = ev.Canon
	}
	delete(v.tracks, loseID)
	delete(v.dirty, loseID)
	v.removed = append(v.removed, loseID)
	v.dirty[ev.Canon] = true
	v.idsOK = false
	v.seq++
	return nil
}

// ApplyEvents folds a log suffix in order, stopping at the first error.
func (v *LiveView) ApplyEvents(events []core.MergeEvent) error {
	for _, ev := range events {
		if err := v.ApplyEvent(ev); err != nil {
			return err
		}
	}
	return nil
}

// Flush drains the accumulated delta feed: the canonical IDs whose state
// changed since the last Flush and the canonical IDs retired by merges,
// both sorted ascending. A retired ID never appears in changed.
func (v *LiveView) Flush() (changed, removed []video.TrackID) {
	for id := range v.dirty {
		changed = append(changed, id)
	}
	video.SortTrackIDs(changed)
	removed = v.removed
	video.SortTrackIDs(removed)
	v.dirty = make(map[video.TrackID]bool)
	v.removed = nil
	return changed, removed
}

// Seq returns the view's event-log cursor: how many merge events it has
// folded, and the sequence number the next ApplyEvent must carry.
func (v *LiveView) Seq() int { return v.seq }

// Len returns the number of live canonical identities.
func (v *LiveView) Len() int { return len(v.tracks) }

// Canonical returns the canonical identity raw track id currently maps
// to (id itself when the view has never seen it merge).
func (v *LiveView) Canonical(id video.TrackID) video.TrackID {
	if c, ok := v.canon[id]; ok {
		return c
	}
	return id
}

// IDs returns the live canonical identities, sorted ascending. The
// returned slice is a cache; callers must not modify it.
func (v *LiveView) IDs() []video.TrackID {
	if !v.idsOK {
		v.ids = v.ids[:0]
		for id := range v.tracks {
			v.ids = append(v.ids, id)
		}
		video.SortTrackIDs(v.ids)
		v.idsOK = true
	}
	return v.ids
}

// Interval returns the presence interval [start, end] of canonical id,
// with ok false when the view holds no such identity.
func (v *LiveView) Interval(id video.TrackID) (start, end video.FrameIndex, ok bool) {
	t := v.tracks[id]
	if t == nil {
		return 0, 0, false
	}
	return t.start, t.end, true
}

// Boxes returns the deduplicated box count of canonical id (0 when the
// identity is not live).
func (v *LiveView) Boxes(id video.TrackID) int {
	t := v.tracks[id]
	if t == nil {
		return 0
	}
	return len(t.cells)
}

// Class returns the plurality class of canonical id's deduplicated boxes
// (ties to the smaller class ID; 0 when the identity is not live) —
// exactly video.Track.Class over the batch-merged track.
func (v *LiveView) Class(id video.TrackID) video.ClassID {
	t := v.tracks[id]
	if t == nil {
		return 0
	}
	best, bestN := video.ClassID(0), -1
	for c, n := range t.classes {
		if n > bestN || (n == bestN && c < best) {
			best, bestN = c, n
		}
	}
	if bestN < 0 {
		return 0
	}
	return best
}

// Dwell returns how many of canonical id's deduplicated boxes have their
// center inside r — the RegionQuery predicate evaluated on view state.
func (v *LiveView) Dwell(id video.TrackID, r geom.Rect) int {
	t := v.tracks[id]
	if t == nil {
		return 0
	}
	n := 0
	for _, cl := range t.cells {
		if r.Contains(geom.Point{X: cl.cx, Y: cl.cy}) {
			n++
		}
	}
	return n
}

// mergeSortedIDs merges two ascending ID slices into one.
func mergeSortedIDs(a, b []video.TrackID) []video.TrackID {
	out := make([]video.TrackID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// ViewCell is one serialised frame cell of a live-view track.
type ViewCell struct {
	Frame  video.FrameIndex `json:"frame"`
	Member video.TrackID    `json:"member"`
	Class  video.ClassID    `json:"class,omitempty"`
	CX     float64          `json:"cx"`
	CY     float64          `json:"cy"`
}

// ViewTrack is one serialised canonical identity: its raw members and
// its deduplicated frame cells. Interval, box count, and class tally are
// recomputed from the cells on restore.
type ViewTrack struct {
	ID      video.TrackID   `json:"id"`
	Members []video.TrackID `json:"members"`
	Cells   []ViewCell      `json:"cells"`
}

// ViewState is the serialisable form of a LiveView: the event cursor and
// the canonical tracks, each deterministically ordered (tracks by ID,
// cells by frame, members ascending). Pending Flush deltas are not part
// of the state — snapshot a view only after draining it, which the
// ingest layer does every window.
type ViewState struct {
	Seq    int         `json:"seq"`
	Tracks []ViewTrack `json:"tracks,omitempty"`
}

// State snapshots the view.
func (v *LiveView) State() ViewState {
	st := ViewState{Seq: v.seq}
	for _, id := range v.IDs() {
		t := v.tracks[id]
		vt := ViewTrack{ID: id, Members: append([]video.TrackID(nil), t.members...)}
		for f, cl := range t.cells {
			vt.Cells = append(vt.Cells, ViewCell{Frame: f, Member: cl.member, Class: cl.class, CX: cl.cx, CY: cl.cy})
		}
		sort.Slice(vt.Cells, func(i, j int) bool { return vt.Cells[i].Frame < vt.Cells[j].Frame })
		st.Tracks = append(st.Tracks, vt)
	}
	return st
}

// RestoreView reconstructs a LiveView from a snapshot taken by State. A
// snapshot that violates the view invariants — a non-contiguous event
// cursor is unverifiable here, but unsorted or duplicate members, a
// canonical that is not its group's smallest member, a member claimed by
// two groups, empty or unsorted cells, or a cell owned by a non-member —
// is rejected wholesale.
func RestoreView(st ViewState) (*LiveView, error) {
	if st.Seq < 0 {
		return nil, fmt.Errorf("trackdb: view snapshot has negative event cursor %d", st.Seq)
	}
	v := NewLiveView()
	v.seq = st.Seq
	for _, vt := range st.Tracks {
		if len(vt.Members) == 0 {
			return nil, fmt.Errorf("trackdb: view snapshot track %d has no members", vt.ID)
		}
		if vt.Members[0] != vt.ID {
			return nil, fmt.Errorf("trackdb: view snapshot track %d is not its group's smallest member %d", vt.ID, vt.Members[0])
		}
		if _, dup := v.tracks[vt.ID]; dup {
			return nil, fmt.Errorf("trackdb: view snapshot has duplicate track %d", vt.ID)
		}
		members := make(map[video.TrackID]bool, len(vt.Members))
		for i, m := range vt.Members {
			if i > 0 && m <= vt.Members[i-1] {
				return nil, fmt.Errorf("trackdb: view snapshot track %d members not strictly ascending at %d", vt.ID, m)
			}
			if _, claimed := v.canon[m]; claimed {
				return nil, fmt.Errorf("trackdb: view snapshot member %d appears in two groups", m)
			}
			v.canon[m] = vt.ID
			members[m] = true
		}
		if len(vt.Cells) == 0 {
			return nil, fmt.Errorf("trackdb: view snapshot track %d has no cells", vt.ID)
		}
		t := &liveTrack{
			start:   vt.Cells[0].Frame,
			end:     vt.Cells[len(vt.Cells)-1].Frame,
			members: append([]video.TrackID(nil), vt.Members...),
			cells:   make(map[video.FrameIndex]viewCell, len(vt.Cells)),
			classes: make(map[video.ClassID]int),
		}
		for i, c := range vt.Cells {
			if i > 0 && c.Frame <= vt.Cells[i-1].Frame {
				return nil, fmt.Errorf("trackdb: view snapshot track %d cells not strictly ascending at frame %d", vt.ID, c.Frame)
			}
			if !members[c.Member] {
				return nil, fmt.Errorf("trackdb: view snapshot track %d cell at frame %d owned by non-member %d", vt.ID, c.Frame, c.Member)
			}
			t.cells[c.Frame] = viewCell{member: c.Member, class: c.Class, cx: c.CX, cy: c.CY}
			t.classes[c.Class]++
		}
		v.tracks[vt.ID] = t
	}
	return v, nil
}
