package trackdb

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"github.com/tmerge/tmerge/internal/geom"
	"github.com/tmerge/tmerge/internal/video"
)

// The on-disk schema: a flat list of tracks with their boxes. Appearance
// observations are not persisted — the store holds query metadata, and
// ReID features are recomputed (or re-cached) at ingestion time.

type jsonBox struct {
	ID    video.BBoxID     `json:"id"`
	Frame video.FrameIndex `json:"frame"`
	X     float64          `json:"x"`
	Y     float64          `json:"y"`
	W     float64          `json:"w"`
	H     float64          `json:"h"`
	Class video.ClassID    `json:"class,omitempty"`
	GT    video.ObjectID   `json:"gt"`
}

type jsonTrack struct {
	ID    video.TrackID `json:"id"`
	Boxes []jsonBox     `json:"boxes"`
}

type jsonStore struct {
	Tracks []jsonTrack `json:"tracks"`
}

// Save writes the store to path as gzip-compressed JSON, tracks ordered
// by ID for stable output.
func (s *Store) Save(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trackdb: save: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("trackdb: save: %w", cerr)
		}
	}()
	gz := gzip.NewWriter(f)
	if err := s.Encode(gz); err != nil {
		return err
	}
	if err := gz.Close(); err != nil {
		return fmt.Errorf("trackdb: save: %w", err)
	}
	return nil
}

// Encode writes the store to w as (uncompressed) JSON, tracks ordered by
// ID for stable output.
func (s *Store) Encode(w io.Writer) error {
	var out jsonStore
	ids := make([]video.TrackID, 0, len(s.byID))
	for id := range s.byID {
		ids = append(ids, id)
	}
	video.SortTrackIDs(ids)
	for _, id := range ids {
		t := s.byID[id]
		jt := jsonTrack{ID: t.ID}
		for _, b := range t.Boxes {
			jt.Boxes = append(jt.Boxes, jsonBox{
				ID: b.ID, Frame: b.Frame,
				X: b.Rect.X, Y: b.Rect.Y, W: b.Rect.W, H: b.Rect.H,
				Class: b.Class, GT: b.GTObject,
			})
		}
		out.Tracks = append(out.Tracks, jt)
	}
	if err := json.NewEncoder(w).Encode(out); err != nil {
		return fmt.Errorf("trackdb: encode: %w", err)
	}
	return nil
}

// Load reads a store previously written by Save.
func Load(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trackdb: load: %w", err)
	}
	defer f.Close()
	gz, err := gzip.NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("trackdb: load: %w", err)
	}
	defer gz.Close()
	return Decode(gz)
}

// Decode reads a store from (uncompressed) JSON. Untrusted input is
// validated record by record: every box must pass video.BBox.Validate
// (finite geometry, positive size), every track its own invariants, and
// track IDs must be unique. A hostile file is rejected with a
// descriptive error; it can never panic the decoder or plant a
// non-finite value in the store.
func Decode(r io.Reader) (*Store, error) {
	var in jsonStore
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("trackdb: decode: %w", err)
	}
	s := New()
	for _, jt := range in.Tracks {
		if s.Get(jt.ID) != nil {
			return nil, fmt.Errorf("trackdb: decode: duplicate track %d", jt.ID)
		}
		t := &video.Track{ID: jt.ID}
		for _, jb := range jt.Boxes {
			b := video.BBox{
				ID:       jb.ID,
				Frame:    jb.Frame,
				Rect:     geom.Rect{X: jb.X, Y: jb.Y, W: jb.W, H: jb.H},
				Class:    jb.Class,
				GTObject: jb.GT,
			}
			if err := b.Validate(); err != nil {
				return nil, fmt.Errorf("trackdb: decode: track %d: %w", jt.ID, err)
			}
			t.Boxes = append(t.Boxes, b)
		}
		if err := s.Put(t); err != nil {
			return nil, fmt.Errorf("trackdb: decode: %w", err)
		}
	}
	return s, nil
}
