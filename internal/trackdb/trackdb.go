// Package trackdb implements the track-metadata store a video query
// system keeps its extracted metadata in — the storage substrate that
// downstream declarative queries (package query) and the identity merger
// (package core) operate against.
//
// The store indexes tracks by their frame interval with a segment-max
// tree over end frames in start order, so time-range scans — the access
// pattern of windowed ingestion and of temporal queries — run in
// O(log n + k) instead of O(n). Merging rewrites identities in place and
// keeps the index consistent.
package trackdb

import (
	"fmt"
	"sort"

	"github.com/tmerge/tmerge/internal/core"
	"github.com/tmerge/tmerge/internal/video"
)

// Store is a track-metadata database. It is not safe for concurrent
// mutation; concurrent readers are safe between mutations.
type Store struct {
	byID map[video.TrackID]*video.Track

	// Interval index: tracks sorted by start frame with a segment tree
	// over end frames. Rebuilt lazily after mutations.
	sorted []*video.Track
	segMax []video.FrameIndex
	dirty  bool
}

// New returns an empty store.
func New() *Store {
	return &Store{byID: make(map[video.TrackID]*video.Track)}
}

// FromTrackSet builds a store holding the given tracks.
func FromTrackSet(ts *video.TrackSet) *Store {
	s := New()
	for _, t := range ts.Tracks() {
		s.Put(t)
	}
	return s
}

// Put inserts or replaces a track. The track must be valid.
func (s *Store) Put(t *video.Track) error {
	if err := t.Validate(); err != nil {
		return fmt.Errorf("trackdb: %w", err)
	}
	s.byID[t.ID] = t
	s.dirty = true
	return nil
}

// Get returns the track with the given ID, or nil.
func (s *Store) Get(id video.TrackID) *video.Track { return s.byID[id] }

// Delete removes a track; deleting a missing ID is a no-op.
func (s *Store) Delete(id video.TrackID) {
	if _, ok := s.byID[id]; ok {
		delete(s.byID, id)
		s.dirty = true
	}
}

// Len returns the number of tracks stored.
func (s *Store) Len() int { return len(s.byID) }

// TrackSet returns the store contents as a TrackSet (shared tracks).
func (s *Store) TrackSet() *video.TrackSet {
	s.rebuild()
	return video.NewTrackSet(s.sorted)
}

// rebuild refreshes the interval index.
func (s *Store) rebuild() {
	if !s.dirty && s.sorted != nil {
		return
	}
	s.sorted = s.sorted[:0]
	for _, t := range s.byID {
		s.sorted = append(s.sorted, t)
	}
	sort.Slice(s.sorted, func(i, j int) bool {
		if s.sorted[i].StartFrame() != s.sorted[j].StartFrame() {
			return s.sorted[i].StartFrame() < s.sorted[j].StartFrame()
		}
		return s.sorted[i].ID < s.sorted[j].ID
	})
	n := len(s.sorted)
	s.segMax = make([]video.FrameIndex, 4*n+4)
	if n > 0 {
		s.buildSeg(1, 0, n-1)
	}
	s.dirty = false
}

func (s *Store) buildSeg(node, lo, hi int) video.FrameIndex {
	if lo == hi {
		s.segMax[node] = s.sorted[lo].EndFrame()
		return s.segMax[node]
	}
	mid := (lo + hi) / 2
	l := s.buildSeg(2*node, lo, mid)
	r := s.buildSeg(2*node+1, mid+1, hi)
	if l > r {
		s.segMax[node] = l
	} else {
		s.segMax[node] = r
	}
	return s.segMax[node]
}

// TracksInRange returns every track whose interval [Start, End]
// intersects [lo, hi], ordered by start frame then ID.
func (s *Store) TracksInRange(lo, hi video.FrameIndex) []*video.Track {
	if hi < lo {
		return nil
	}
	s.rebuild()
	n := len(s.sorted)
	if n == 0 {
		return nil
	}
	// Only tracks with Start <= hi can intersect; within that prefix,
	// collect tracks with End >= lo via the segment-max tree.
	cut := sort.Search(n, func(i int) bool { return s.sorted[i].StartFrame() > hi })
	if cut == 0 {
		return nil
	}
	var out []*video.Track
	s.collect(1, 0, n-1, cut-1, lo, &out)
	return out
}

// collect walks the segment tree over [0, limit], descending only into
// subtrees whose max end frame reaches minEnd.
func (s *Store) collect(node, lo, hi, limit int, minEnd video.FrameIndex, out *[]*video.Track) {
	if lo > limit || s.segMax[node] < minEnd {
		return
	}
	if lo == hi {
		*out = append(*out, s.sorted[lo])
		return
	}
	mid := (lo + hi) / 2
	s.collect(2*node, lo, mid, limit, minEnd, out)
	if mid+1 <= limit {
		s.collect(2*node+1, mid+1, hi, limit, minEnd, out)
	}
}

// PresentAt returns the tracks that have a box at exactly frame f,
// ordered by start frame then ID.
func (s *Store) PresentAt(f video.FrameIndex) []*video.Track {
	var out []*video.Track
	for _, t := range s.TracksInRange(f, f) {
		if hasBoxAt(t, f) {
			out = append(out, t)
		}
	}
	return out
}

func hasBoxAt(t *video.Track, f video.FrameIndex) bool {
	i := sort.Search(len(t.Boxes), func(i int) bool { return t.Boxes[i].Frame >= f })
	return i < len(t.Boxes) && t.Boxes[i].Frame == f
}

// ApplyMerge rewrites the store's identities according to the merger:
// every merged group collapses into one track under its canonical ID.
// The number of removed identities is returned.
func (s *Store) ApplyMerge(m *core.Merger) int {
	s.rebuild()
	before := s.Len()
	merged := m.Apply(video.NewTrackSet(s.sorted))
	s.byID = make(map[video.TrackID]*video.Track, merged.Len())
	for _, t := range merged.Tracks() {
		s.byID[t.ID] = t
	}
	s.dirty = true
	return before - s.Len()
}

// Stats summarises the store contents.
type Stats struct {
	Tracks     int
	Boxes      int
	FirstFrame video.FrameIndex
	LastFrame  video.FrameIndex
}

// Stats computes summary statistics. FirstFrame/LastFrame are zero when
// the store is empty.
func (s *Store) Stats() Stats {
	st := Stats{Tracks: s.Len()}
	first := true
	for _, t := range s.byID {
		st.Boxes += t.Len()
		if first || t.StartFrame() < st.FirstFrame {
			st.FirstFrame = t.StartFrame()
		}
		if first || t.EndFrame() > st.LastFrame {
			st.LastFrame = t.EndFrame()
		}
		first = false
	}
	return st
}
