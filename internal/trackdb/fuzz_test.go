package trackdb

import (
	"bytes"
	"testing"

	"github.com/tmerge/tmerge/internal/geom"
	"github.com/tmerge/tmerge/internal/video"
)

func fuzzSeedStore(t testing.TB) *Store {
	s := New()
	tr := &video.Track{ID: 3, Boxes: []video.BBox{
		{ID: 30, Frame: 5, Rect: geom.Rect{X: 1, Y: 2, W: 10, H: 12}, GTObject: 1},
		{ID: 31, Frame: 6, Rect: geom.Rect{X: 2, Y: 2, W: 10, H: 12}, GTObject: 1},
	}}
	if err := s.Put(tr); err != nil {
		t.Fatal(err)
	}
	return s
}

// FuzzDecode throws arbitrary bytes at the track-store decoder: it must
// never panic, and any store it accepts must hold only validated tracks
// with finite geometry.
func FuzzDecode(f *testing.F) {
	var valid bytes.Buffer
	if err := fuzzSeedStore(f).Encode(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte("{}"))
	f.Add([]byte(`{"tracks":[{"id":1,"boxes":[]}]}`))
	f.Add([]byte(`{"tracks":[{"id":1,"boxes":[{"id":1,"frame":0,"x":0,"y":0,"w":-1,"h":1}]}]}`))
	f.Add([]byte(`{"tracks":[{"id":1,"boxes":[{"id":1,"frame":2,"x":0,"y":0,"w":1,"h":1},{"id":2,"frame":1,"x":0,"y":0,"w":1,"h":1}]}]}`))
	f.Add([]byte(`{"tracks":[{"id":1,"boxes":[{"id":1,"frame":0,"x":1e999,"y":0,"w":1,"h":1}]}]}`))
	f.Add([]byte(`garbage`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, tr := range s.TrackSet().Tracks() {
			if err := tr.Validate(); err != nil {
				t.Fatalf("accepted invalid track: %v", err)
			}
			for _, b := range tr.Boxes {
				if err := b.Validate(); err != nil {
					t.Fatalf("accepted invalid box: %v", err)
				}
			}
		}
	})
}

func TestDecodeRejectsDuplicateTracks(t *testing.T) {
	data := []byte(`{"tracks":[
		{"id":7,"boxes":[{"id":1,"frame":0,"x":0,"y":0,"w":1,"h":1}]},
		{"id":7,"boxes":[{"id":2,"frame":0,"x":0,"y":0,"w":1,"h":1}]}]}`)
	if _, err := Decode(bytes.NewReader(data)); err == nil {
		t.Error("duplicate track IDs accepted")
	}
}
