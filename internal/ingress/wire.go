// Package ingress is tmerged's network boundary: a stdlib-only HTTP/1.1
// + NDJSON frame-push protocol over the serve.Manager, and a retrying
// client speaking it with per-request deadlines and deterministic
// seeded backoff.
//
// Delivery is at-least-once made effectively exactly-once. Every push
// record carries a per-stream sequence number assigned by the client in
// strictly increasing order; the server acks the high-water mark and
// idempotently discards records whose sequence or frame index it has
// already settled, so a client that times out and resends (or a proxy
// that truncates a response after the server processed the request)
// cannot double-feed the frame cursor. Backpressure and admission
// surface as protocol: a full stream queue is 429 + Retry-After, an
// admission or drain refusal is 503, a malformed record is 400 with a
// typed JSON body — never a dropped connection. DESIGN.md §13 specifies
// the wire protocol, the sequence/dedup invariant, the drain state
// machine, and the restart-equivalence argument.
package ingress

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"github.com/tmerge/tmerge/internal/video"
)

// Error codes carried in ErrorBody.Code; stable protocol surface.
const (
	// CodeOverloaded maps ErrOverloaded: the stream's frame queue is
	// full. Retry after the hinted delay (HTTP 429).
	CodeOverloaded = "overloaded"
	// CodeAdmission maps ErrAdmission: the stream cannot be admitted
	// within the window budget (HTTP 503).
	CodeAdmission = "admission"
	// CodeDraining maps ErrDraining/ErrStopped: the daemon is draining to
	// checkpoint or already shut down; reconnect to its successor
	// (HTTP 503).
	CodeDraining = "draining"
	// CodeUnknownStream reports an operation naming no registered stream
	// (HTTP 404); clients reattach by re-registering.
	CodeUnknownStream = "unknown_stream"
	// CodeStreamClosed reports a push to a finished stream (HTTP 409).
	CodeStreamClosed = "stream_closed"
	// CodeMismatch reports a re-registration whose parameters disagree
	// with the live stream's (HTTP 409).
	CodeMismatch = "mismatch"
	// CodeBadRequest reports a malformed or protocol-violating request
	// body (HTTP 400). Not retryable.
	CodeBadRequest = "bad_request"
	// CodeInternal reports a server-side failure (HTTP 500).
	CodeInternal = "internal"
)

// RegisterRequest opens (or, after a daemon restart, re-attaches to) a
// stream. Registration is idempotent: re-registering a live stream with
// identical parameters succeeds and returns its current cursor, so a
// client that lost the first response can safely retry.
type RegisterRequest struct {
	// Seed keys the stream's pipeline; the daemon's spec factory decides
	// what it seeds.
	Seed uint64 `json:"seed"`
	// WindowLen overrides the daemon's default window length when
	// positive.
	WindowLen int `json:"window_len,omitempty"`
	// CheckpointEvery overrides the daemon's periodic-checkpoint cadence
	// (windows per checkpoint) when positive.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// QueueCap overrides the stream's frame-queue bound when positive.
	QueueCap int `json:"queue_cap,omitempty"`
}

// RegisterResponse acknowledges a registration.
type RegisterResponse struct {
	Stream string `json:"stream"`
	// NextFrame is the authoritative resume point: the first frame index
	// the server will accept. 0 for a fresh stream; the restored cursor
	// when the daemon resumed the stream from a checkpoint.
	NextFrame int64 `json:"next_frame"`
	// AckedSeq is the sequence high-water mark this server incarnation
	// has settled; -1 when it has seen no push for the stream (always -1
	// right after a restart — dedup of replayed sends then falls back to
	// NextFrame).
	AckedSeq int64 `json:"acked_seq"`
	// Resumed reports whether the stream was restored from a checkpoint
	// rather than started empty.
	Resumed bool `json:"resumed"`
}

// PushRecord is one NDJSON line of a frame-push body: one frame's
// detections under one client-assigned sequence number.
type PushRecord struct {
	// Seq is the per-stream sequence number, strictly increasing across
	// every record the client ever sends for the stream.
	Seq int64 `json:"seq"`
	// Frame is the frame index; strictly increasing across records, and
	// every detection must carry the same index.
	Frame video.FrameIndex `json:"frame"`
	// Dets is the frame's detections; empty is a valid (empty) frame.
	Dets []video.BBox `json:"dets,omitempty"`
}

// PushResponse acknowledges a push batch. A response acknowledges state,
// not the request: a retried batch whose records were all duplicates
// still returns the current marks.
type PushResponse struct {
	// AckedSeq is the sequence high-water mark: every record with
	// Seq <= AckedSeq is settled (applied or discarded as duplicate) and
	// need never be resent to this incarnation.
	AckedSeq int64 `json:"acked_seq"`
	// NextFrame is the frame cursor after the batch.
	NextFrame int64 `json:"next_frame"`
	// DurableFrame is the cursor covered by the last stored checkpoint:
	// frames below it survive a daemon crash and may be dropped from the
	// client's resend buffer. -1 before any checkpoint is stored.
	DurableFrame int64 `json:"durable_frame"`
	// Duplicates counts records in this batch discarded by the dedup
	// rule — the observable proof that a resend did not double-apply.
	Duplicates int `json:"duplicates"`
}

// FinishResponse closes a stream: the final flush's cumulative result.
// Finish is idempotent; retrying it returns the same response.
type FinishResponse struct {
	Stream          string `json:"stream"`
	Fingerprint     string `json:"fingerprint"`
	Frames          int    `json:"frames"`
	Windows         int    `json:"windows"`
	DegradedWindows int    `json:"degraded_windows"`
}

// StreamStatus is one stream's row in a StatusResponse: the serve-layer
// snapshot plus the ingress dedup marks.
type StreamStatus struct {
	ID              string `json:"id"`
	State           string `json:"state"`
	Frames          int    `json:"frames"`
	Queued          int    `json:"queued"`
	Windows         int    `json:"windows"`
	DegradedWindows int    `json:"degraded_windows"`
	Restarts        int    `json:"restarts"`
	Quarantined     int    `json:"quarantined"`
	Breaker         string `json:"breaker,omitempty"`
	Err             string `json:"err,omitempty"`
	// AckedSeq and Duplicates are the ingress dedup marks: the sequence
	// high-water mark and the cumulative count of discarded records.
	AckedSeq   int64 `json:"acked_seq"`
	Duplicates int64 `json:"duplicates"`
}

// StatusResponse is the daemon-wide status document.
type StatusResponse struct {
	Draining bool           `json:"draining,omitempty"`
	Streams  []StreamStatus `json:"streams"`
}

// ErrorBody is the typed JSON error every non-2xx response carries.
type ErrorBody struct {
	Code  string `json:"code"`
	Error string `json:"error"`
	// RetryAfterMS hints when to retry (429/503); 0 means the client's
	// own backoff schedule applies.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// DefaultMaxLineBytes bounds one NDJSON push line unless the server
// configures otherwise: a frame of detections with appearance vectors
// comfortably fits, a runaway or hostile line does not.
const DefaultMaxLineBytes = 1 << 20

// DecodePushBatch reads an NDJSON push body with the repo's hardened
// decoder posture: bounded line length, per-line JSON errors carrying
// the line number, and protocol validation before anything reaches the
// serving layer — sequence numbers non-negative and strictly increasing,
// frame indices within [0, video.MaxFrameIndex] and strictly increasing,
// every detection finite, positively sized, and on its record's frame.
// Empty lines are skipped. The error for line N never hides how many
// lines were well-formed before it: decoded records up to the failure
// are returned alongside the error so callers can report a precise
// reject.
func DecodePushBatch(r io.Reader, maxLine int) ([]PushRecord, error) {
	if maxLine <= 0 {
		maxLine = DefaultMaxLineBytes
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), maxLine)
	var (
		out      []PushRecord
		line     int
		prevSeq  int64 = -1
		havePrev bool
		prevFr   video.FrameIndex
	)
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(bytes.TrimSpace(raw)) == 0 {
			continue
		}
		var rec PushRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return out, fmt.Errorf("ingress: push line %d: %w", line, err)
		}
		if rec.Seq < 0 {
			return out, fmt.Errorf("ingress: push line %d: negative seq %d", line, rec.Seq)
		}
		if rec.Seq <= prevSeq {
			return out, fmt.Errorf("ingress: push line %d: seq %d not increasing (previous %d)", line, rec.Seq, prevSeq)
		}
		if rec.Frame < 0 || rec.Frame > video.MaxFrameIndex {
			return out, fmt.Errorf("ingress: push line %d: frame %d outside [0, %d]", line, rec.Frame, video.MaxFrameIndex)
		}
		if havePrev && rec.Frame <= prevFr {
			return out, fmt.Errorf("ingress: push line %d: frame %d not increasing (previous %d)", line, rec.Frame, prevFr)
		}
		for i, d := range rec.Dets {
			if err := d.Validate(); err != nil {
				return out, fmt.Errorf("ingress: push line %d det %d: %w", line, i, err)
			}
			if d.Frame != rec.Frame {
				return out, fmt.Errorf("ingress: push line %d det %d: frame %d does not match record frame %d", line, i, d.Frame, rec.Frame)
			}
		}
		prevSeq, prevFr, havePrev = rec.Seq, rec.Frame, true
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		if err == bufio.ErrTooLong {
			return out, fmt.Errorf("ingress: push line %d: line exceeds %d bytes", line+1, maxLine)
		}
		return out, fmt.Errorf("ingress: push body: %w", err)
	}
	return out, nil
}

// EncodePushBatch writes records as NDJSON, the inverse of
// DecodePushBatch.
func EncodePushBatch(w io.Writer, recs []PushRecord) error {
	enc := json.NewEncoder(w)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			return fmt.Errorf("ingress: encode push record %d: %w", i, err)
		}
	}
	return nil
}
