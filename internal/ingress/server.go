package ingress

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tmerge/tmerge/internal/checkpoint"
	"github.com/tmerge/tmerge/internal/serve"
	"github.com/tmerge/tmerge/internal/video"
)

// SpecFunc builds the serve.StreamSpec for a registration: the embedding
// daemon decides pipelines, seeds, and ingestion parameters; the wire
// only carries the RegisterRequest knobs. The returned spec's ID and
// Resume fields are owned by the server (it sets the ID from the URL and
// installs any stored checkpoint); a CheckpointSink set on the spec is
// preserved and chained after the server's own.
type SpecFunc func(id string, req RegisterRequest) (serve.StreamSpec, error)

// ServerConfig parameterises a Server.
type ServerConfig struct {
	// Serve configures the underlying serve.Manager. Set Shed to surface
	// full queues as 429s; without it pushes block the request until
	// queue room frees (backpressure by connection).
	Serve serve.Config
	// Spec builds each registered stream's pipeline spec. Required.
	Spec SpecFunc
	// Store persists checkpoints across incarnations; nil defaults to an
	// in-memory store (no crash durability).
	Store Store
	// RetryAfter is the retry hint attached to 429/503 responses; 0
	// defaults to 50ms.
	RetryAfter time.Duration
	// MaxLineBytes bounds one NDJSON push line; 0 defaults to
	// DefaultMaxLineBytes.
	MaxLineBytes int
	// MaxBodyBytes bounds one push request body; 0 defaults to 8 MiB.
	MaxBodyBytes int64
}

// sstream is the server's per-stream ingress state. The mutex serialises
// pushes (and finish) for the stream, preserving record order end to
// end; the dedup marks are atomics so status and checkpoint sinks read
// them without waiting behind a blocked push.
type sstream struct {
	mu  sync.Mutex
	req RegisterRequest

	hwm     atomic.Int64 // sequence high-water mark, -1 initially
	next    atomic.Int64 // frame cursor: first frame index not yet settled
	durable atomic.Int64 // cursor covered by the last stored checkpoint, -1 initially
	dups    atomic.Int64 // cumulative discarded records

	resumed bool
	fin     *FinishResponse // cached once finished (idempotent Finish)
}

// Server terminates the ingress protocol over an embedded serve.Manager.
// Construct with NewServer, mount Handler on an http.Server, and call
// Drain (graceful, checkpoint-sealing) or Shutdown (abandon in-flight)
// exactly once.
type Server struct {
	cfg   ServerConfig
	mgr   *serve.Manager
	store Store

	mu       sync.Mutex
	streams  map[string]*sstream
	draining atomic.Bool
}

// NewServer builds the manager and the ingress state around it.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Spec == nil {
		return nil, fmt.Errorf("ingress: ServerConfig.Spec is required")
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 50 * time.Millisecond
	}
	if cfg.MaxLineBytes <= 0 {
		cfg.MaxLineBytes = DefaultMaxLineBytes
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.Store == nil {
		cfg.Store = NewMemStore()
	}
	return &Server{
		cfg:     cfg,
		mgr:     serve.NewManager(cfg.Serve),
		store:   cfg.Store,
		streams: make(map[string]*sstream),
	}, nil
}

// Handler returns the protocol's route table. Endpoints:
//
//	POST /v1/streams/{id}         register (idempotent; resumes from the store)
//	POST /v1/streams/{id}/frames  NDJSON push batch
//	POST /v1/streams/{id}/finish  close + fingerprint (idempotent)
//	GET  /v1/streams/{id}         one stream's status
//	GET  /v1/status               daemon-wide status
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/streams/{id}", s.handleRegister)
	mux.HandleFunc("POST /v1/streams/{id}/frames", s.handlePush)
	mux.HandleFunc("POST /v1/streams/{id}/finish", s.handleFinish)
	mux.HandleFunc("GET /v1/streams/{id}", s.handleStreamStatus)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	return mux
}

// Drain gracefully drains the manager (see serve.Manager.Drain) and
// persists every final checkpoint into the store, so a successor server
// over the same store resumes each stream exactly where the flush
// stopped. Push and Register fail with CodeDraining from the moment it
// starts; the server is shut down when it returns.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	ckpts, err := s.mgr.Drain(ctx)
	for id, data := range ckpts {
		if perr := s.store.Put(id, data); perr != nil && err == nil {
			err = perr
		}
	}
	return err
}

// Shutdown stops the manager without flushing (see serve.Manager.Shutdown).
func (s *Server) Shutdown() { s.mgr.Shutdown() }

// stream returns the registered stream's ingress state, or nil.
func (s *Server) stream(id string) *sstream {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.streams[id]
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req RegisterRequest
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error(), 0)
		return
	}
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "register body: "+err.Error(), 0)
			return
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if st := s.streams[id]; st != nil {
		// Idempotent re-registration: the same parameters re-attach to
		// the live stream (a client retrying a lost response, or
		// reattaching after a network fault); different parameters are a
		// conflict, and a finished stream stays finished.
		if st.fin != nil {
			writeError(w, http.StatusConflict, CodeStreamClosed, fmt.Sprintf("stream %q already finished", id), 0)
			return
		}
		if st.req != req {
			writeError(w, http.StatusConflict, CodeMismatch,
				fmt.Sprintf("stream %q already registered with different parameters", id), 0)
			return
		}
		writeJSON(w, http.StatusOK, RegisterResponse{
			Stream: id, NextFrame: st.next.Load(), AckedSeq: st.hwm.Load(), Resumed: st.resumed,
		})
		return
	}

	spec, err := s.cfg.Spec(id, req)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error(), 0)
		return
	}
	spec.ID = id

	st := &sstream{req: req}
	st.hwm.Store(-1)
	st.durable.Store(-1)
	if data, ok, gerr := s.store.Get(id); gerr != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, gerr.Error(), 0)
		return
	} else if ok {
		next, perr := peekNextFrame(data)
		if perr != nil {
			writeError(w, http.StatusInternalServerError, CodeInternal,
				fmt.Sprintf("stored checkpoint for %q unreadable: %v", id, perr), 0)
			return
		}
		spec.Resume = data
		st.resumed = true
		st.next.Store(int64(next))
		st.durable.Store(int64(next))
	}
	spec.Ingest.CheckpointSink = s.chainSink(id, st, spec.Ingest.CheckpointSink)

	if err := s.mgr.Register(spec); err != nil {
		s.writeServeError(w, err)
		return
	}
	s.streams[id] = st
	writeJSON(w, http.StatusOK, RegisterResponse{
		Stream: id, NextFrame: st.next.Load(), AckedSeq: -1, Resumed: st.resumed,
	})
}

// chainSink wraps a spec's checkpoint sink: every periodic checkpoint is
// stored (crash durability) and advances the stream's durable mark
// before the original sink, if any, runs. It is called from worker
// goroutines mid-push and must not take the server or stream mutexes.
func (s *Server) chainSink(id string, st *sstream, user func([]byte) error) func([]byte) error {
	return func(data []byte) error {
		if err := s.store.Put(id, data); err != nil {
			return fmt.Errorf("ingress: store checkpoint for %q: %w", id, err)
		}
		if next, err := peekNextFrame(data); err == nil {
			st.durable.Store(int64(next))
		}
		if user != nil {
			return user(data)
		}
		return nil
	}
}

func (s *Server) handlePush(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st := s.stream(id)
	if st == nil {
		writeError(w, http.StatusNotFound, CodeUnknownStream, fmt.Sprintf("stream %q not registered", id), 0)
		return
	}
	recs, err := DecodePushBatch(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes), s.cfg.MaxLineBytes)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error(), 0)
		return
	}

	st.mu.Lock()
	defer st.mu.Unlock()
	if st.fin != nil {
		writeError(w, http.StatusConflict, CodeStreamClosed, fmt.Sprintf("stream %q already finished", id), 0)
		return
	}
	dupes := 0
	for _, rec := range recs {
		// The dedup invariant: a record is applied iff its sequence is
		// above the high-water mark AND its frame is at the cursor or
		// beyond; anything else was already settled by an earlier
		// delivery (or by the checkpoint this incarnation resumed from)
		// and is discarded idempotently, advancing the mark so the
		// client stops resending it.
		if rec.Seq <= st.hwm.Load() || int64(rec.Frame) < st.next.Load() {
			dupes++
			if rec.Seq > st.hwm.Load() {
				st.hwm.Store(rec.Seq)
			}
			continue
		}
		if err := s.mgr.Push(id, rec.Frame, rec.Dets); err != nil {
			st.dups.Add(int64(dupes))
			s.writeServeError(w, err)
			return
		}
		st.hwm.Store(rec.Seq)
		st.next.Store(int64(rec.Frame) + 1)
	}
	st.dups.Add(int64(dupes))
	writeJSON(w, http.StatusOK, PushResponse{
		AckedSeq:     st.hwm.Load(),
		NextFrame:    st.next.Load(),
		DurableFrame: st.durable.Load(),
		Duplicates:   dupes,
	})
}

func (s *Server) handleFinish(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st := s.stream(id)
	if st == nil {
		writeError(w, http.StatusNotFound, CodeUnknownStream, fmt.Sprintf("stream %q not registered", id), 0)
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.fin != nil {
		writeJSON(w, http.StatusOK, *st.fin)
		return
	}
	res, err := s.mgr.Finish(id)
	if err != nil {
		s.writeServeError(w, err)
		return
	}
	st.fin = &FinishResponse{
		Stream:          id,
		Fingerprint:     res.Fingerprint(),
		Frames:          res.FramesProcessed,
		Windows:         len(res.Windows),
		DegradedWindows: res.DegradedWindows,
	}
	// The stream is complete; its checkpoint would only confuse a future
	// registration under the same ID.
	_ = s.store.Delete(id)
	writeJSON(w, http.StatusOK, *st.fin)
}

// Status returns the daemon-wide status document — the same view GET
// /v1/status serves, for in-process consumers such as the daemon's
// status ticker.
func (s *Server) Status() StatusResponse {
	return StatusResponse{
		Draining: s.draining.Load(),
		Streams:  s.statusRows(""),
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Status())
}

func (s *Server) handleStreamStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rows := s.statusRows(id)
	if len(rows) == 0 {
		writeError(w, http.StatusNotFound, CodeUnknownStream, fmt.Sprintf("stream %q not registered", id), 0)
		return
	}
	writeJSON(w, http.StatusOK, rows[0])
}

// statusRows joins the serve-layer snapshot with the ingress dedup
// marks; a non-empty id filters to that stream.
func (s *Server) statusRows(id string) []StreamStatus {
	snap := s.mgr.Snapshot()
	out := make([]StreamStatus, 0, len(snap))
	for _, row := range snap {
		if id != "" && row.ID != id {
			continue
		}
		r := StreamStatus{
			ID:              row.ID,
			State:           row.State.String(),
			Frames:          row.Frames,
			Queued:          row.Queued,
			Windows:         row.Windows,
			DegradedWindows: row.DegradedWindows,
			Restarts:        row.Restarts,
			Quarantined:     row.Quarantined,
			Breaker:         row.Breaker,
			Err:             row.Err,
			AckedSeq:        -1,
		}
		if st := s.stream(row.ID); st != nil {
			r.AckedSeq = st.hwm.Load()
			r.Duplicates = st.dups.Load()
		}
		out = append(out, r)
	}
	return out
}

// writeServeError maps the serve layer's typed errors onto the protocol:
// backpressure and admission become retryable statuses with hints, state
// conflicts become 4xx, anything unrecognised is a 500.
func (s *Server) writeServeError(w http.ResponseWriter, err error) {
	hint := s.cfg.RetryAfter.Milliseconds()
	switch {
	case errors.Is(err, serve.ErrOverloaded):
		writeError(w, http.StatusTooManyRequests, CodeOverloaded, err.Error(), hint)
	case errors.Is(err, serve.ErrAdmission), errors.Is(err, serve.ErrNotAdmitted):
		writeError(w, http.StatusServiceUnavailable, CodeAdmission, err.Error(), hint)
	case errors.Is(err, serve.ErrDraining), errors.Is(err, serve.ErrStopped):
		writeError(w, http.StatusServiceUnavailable, CodeDraining, err.Error(), hint)
	case errors.Is(err, serve.ErrStreamClosed), errors.Is(err, serve.ErrDuplicateStream):
		writeError(w, http.StatusConflict, CodeStreamClosed, err.Error(), 0)
	case errors.Is(err, serve.ErrUnknownStream):
		writeError(w, http.StatusNotFound, CodeUnknownStream, err.Error(), 0)
	default:
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error(), 0)
	}
}

// writeError emits the typed JSON error body, with a Retry-After header
// (whole seconds, rounded up, as HTTP requires) mirroring the
// millisecond hint in the body when one is set.
func writeError(w http.ResponseWriter, status int, code, msg string, retryAfterMS int64) {
	if retryAfterMS > 0 {
		secs := (retryAfterMS + 999) / 1000
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	}
	writeJSON(w, status, ErrorBody{Code: code, Error: msg, RetryAfterMS: retryAfterMS})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// peekNextFrame reads just the frame cursor out of sealed checkpoint
// bytes (the envelope's payload carries next_frame at top level), the
// cheap way registration and the durability mark learn what a
// checkpoint covers without rebuilding a session.
func peekNextFrame(data []byte) (video.FrameIndex, error) {
	var p struct {
		NextFrame video.FrameIndex `json:"next_frame"`
	}
	if err := checkpoint.Open(data, &p); err != nil {
		return 0, err
	}
	return p.NextFrame, nil
}
