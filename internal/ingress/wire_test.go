package ingress

import (
	"bytes"
	"strings"
	"testing"

	"github.com/tmerge/tmerge/internal/geom"
	"github.com/tmerge/tmerge/internal/video"
)

func validRecord(seq int64, frame video.FrameIndex) PushRecord {
	return PushRecord{
		Seq:   seq,
		Frame: frame,
		Dets: []video.BBox{{
			ID: video.BBoxID(seq), Frame: frame,
			Rect: geom.Rect{X: 1, Y: 2, W: 3, H: 4},
			Obs:  []float64{0.5, -0.25},
		}},
	}
}

func TestPushBatchRoundTrip(t *testing.T) {
	in := []PushRecord{validRecord(0, 0), validRecord(1, 1), {Seq: 5, Frame: 9}}
	var buf bytes.Buffer
	if err := EncodePushBatch(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := DecodePushBatch(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d records, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Seq != in[i].Seq || out[i].Frame != in[i].Frame || len(out[i].Dets) != len(in[i].Dets) {
			t.Fatalf("record %d: got %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestDecodePushBatchRejects(t *testing.T) {
	cases := []struct {
		name, body, wantErr string
	}{
		{"not json", "{nope\n", "line 1"},
		{"negative seq", `{"seq":-1,"frame":0}` + "\n", "negative seq"},
		{"seq regression", `{"seq":2,"frame":0}` + "\n" + `{"seq":1,"frame":1}` + "\n", "not increasing"},
		{"seq duplicate", `{"seq":2,"frame":0}` + "\n" + `{"seq":2,"frame":1}` + "\n", "not increasing"},
		{"frame regression", `{"seq":0,"frame":5}` + "\n" + `{"seq":1,"frame":4}` + "\n", "not increasing"},
		{"frame negative", `{"seq":0,"frame":-3}` + "\n", "outside"},
		{"frame too large", `{"seq":0,"frame":1099511627777}` + "\n", "outside"},
		{"non-finite geometry", `{"seq":0,"frame":0,"dets":[{"ID":1,"Frame":0,"Rect":{"X":1e999,"Y":0,"W":1,"H":1}}]}` + "\n", ""},
		{"non-positive size", `{"seq":0,"frame":0,"dets":[{"ID":1,"Frame":0,"Rect":{"X":0,"Y":0,"W":0,"H":1}}]}` + "\n", "non-positive size"},
		{"det frame mismatch", `{"seq":0,"frame":3,"dets":[{"ID":1,"Frame":4,"Rect":{"X":0,"Y":0,"W":1,"H":1}}]}` + "\n", "does not match"},
		{"non-finite obs", `{"seq":0,"frame":0,"dets":[{"ID":1,"Frame":0,"Rect":{"X":0,"Y":0,"W":1,"H":1},"Obs":[1e999]}]}` + "\n", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodePushBatch(strings.NewReader(tc.body), 0)
			if err == nil {
				t.Fatalf("decode accepted %q", tc.body)
			}
			if tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestDecodePushBatchOversizedLine(t *testing.T) {
	long := `{"seq":0,"frame":0,"pad":"` + strings.Repeat("x", 4096) + `"}` + "\n"
	_, err := DecodePushBatch(strings.NewReader(long), 256)
	if err == nil || !strings.Contains(err.Error(), "exceeds 256 bytes") {
		t.Fatalf("oversized line: got %v", err)
	}
}

func TestDecodePushBatchSkipsBlankLines(t *testing.T) {
	body := "\n  \n" + `{"seq":0,"frame":0}` + "\n\n" + `{"seq":1,"frame":1}` + "\n \n"
	recs, err := DecodePushBatch(strings.NewReader(body), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("decoded %d records, want 2", len(recs))
	}
}

// FuzzDecodePushBatch is the hardened-decoder harness: arbitrary bytes
// must never panic the decoder, and anything it accepts must satisfy
// the protocol invariants the server relies on (monotone seq and frame,
// frame range, valid finite detections).
func FuzzDecodePushBatch(f *testing.F) {
	var seedBuf bytes.Buffer
	_ = EncodePushBatch(&seedBuf, []PushRecord{validRecord(0, 0), validRecord(1, 1)})
	f.Add(seedBuf.Bytes())
	f.Add([]byte(`{"seq":0,"frame":0}` + "\n"))
	f.Add([]byte(`{"seq":-9,"frame":-9}`))
	f.Add([]byte(`{"seq":1,"frame":2,"dets":[{"Rect":{"W":1e999}}]}`))
	f.Add([]byte("\x00\xff{"))
	f.Add([]byte(strings.Repeat(`{"seq":0,"frame":0}`+"\n", 50)))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := DecodePushBatch(bytes.NewReader(data), 1<<14)
		if err != nil {
			return
		}
		var prevSeq int64 = -1
		prevFrame := video.FrameIndex(-1)
		for i, r := range recs {
			if r.Seq <= prevSeq {
				t.Fatalf("record %d: seq %d <= previous %d", i, r.Seq, prevSeq)
			}
			if r.Frame < 0 || r.Frame > video.MaxFrameIndex {
				t.Fatalf("record %d: frame %d out of range", i, r.Frame)
			}
			if prevFrame >= 0 && r.Frame <= prevFrame {
				t.Fatalf("record %d: frame %d <= previous %d", i, r.Frame, prevFrame)
			}
			for j, d := range r.Dets {
				if err := d.Validate(); err != nil {
					t.Fatalf("record %d det %d invalid: %v", i, j, err)
				}
				if d.Frame != r.Frame {
					t.Fatalf("record %d det %d frame mismatch", i, j)
				}
			}
			prevSeq, prevFrame = r.Seq, r.Frame
		}
	})
}
