package ingress

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/tmerge/tmerge/internal/fault"
	"github.com/tmerge/tmerge/internal/serve"
	"github.com/tmerge/tmerge/internal/serve/loadgen"
	"github.com/tmerge/tmerge/internal/video"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestNetworkChaosKillRestart is the tentpole proof: a loopback fleet
// pushes through a fault-injecting TCP proxy (dropped, stalled, and
// truncated connections), the daemon is killed mid-stream and a fresh
// incarnation resumes from the shared checkpoint store, and every
// stream's fingerprint still equals an uninterrupted sequential run.
// Along the way it pins the at-least-once machinery: transport retries
// actually happened, every client re-registered after the restart, and
// a deliberate duplicate resend is provably discarded by the sequence
// high-water mark.
func TestNetworkChaosKillRestart(t *testing.T) {
	const (
		nStreams  = 3
		nFrames   = 160
		windowLen = 20
		ckptEvery = 2
		half      = nFrames / 2
	)
	before := runtime.NumGoroutine()
	streams, err := loadgen.Generate(loadgen.Config{Seed: 79, Streams: nStreams, Frames: nFrames})
	if err != nil {
		t.Fatal(err)
	}

	serveCfg := func() serve.Config {
		return serve.Config{Workers: 2, DefaultQueueCap: 2 * nFrames}
	}
	store := NewMemStore()
	srvA, hsA := newTestServer(t, ServerConfig{Store: store, Serve: serveCfg()})

	proxy, err := fault.NewProxy("127.0.0.1:0", strings.TrimPrefix(hsA.URL, "http://"), fault.NetConfig{
		Seed:          97,
		DropRate:      0.12,
		StallRate:     0.08,
		StallFor:      5 * time.Millisecond,
		TruncateRate:  0.12,
		TruncateAfter: 2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	// Every request rides a fresh connection so every request rolls the
	// proxy's fault dice.
	transport := &http.Transport{DisableKeepAlives: true}
	defer transport.CloseIdleConnections()

	clients := make([]*Client, nStreams)
	for i, s := range streams {
		clients[i], err = NewClient(ClientConfig{
			BaseURL:        "http://" + proxy.Addr(),
			Stream:         s.ID,
			Seed:           s.Seed,
			HTTPClient:     &http.Client{Transport: transport},
			RequestTimeout: 500 * time.Millisecond,
			MaxAttempts:    64,
			BackoffBase:    2 * time.Millisecond,
			BackoffMax:     25 * time.Millisecond,
			BatchFrames:    2,
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	var (
		wg       sync.WaitGroup
		halfDone sync.WaitGroup
		resume   = make(chan struct{})
		statuses = make([]StreamStatus, nStreams)
		errs     = make([]error, nStreams)
	)
	halfDone.Add(nStreams)
	for i := range streams {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, c := streams[i], clients[i]
			if _, err := c.Register(context.Background(), RegisterRequest{Seed: s.Seed, WindowLen: windowLen, CheckpointEvery: ckptEvery}); err != nil {
				errs[i] = fmt.Errorf("register: %w", err)
				halfDone.Done()
				return
			}
			for f := 0; f < half; f++ {
				if err := c.Push(context.Background(), video.FrameIndex(f), s.Video.Detections[f]); err != nil {
					errs[i] = fmt.Errorf("push %d: %w", f, err)
					halfDone.Done()
					return
				}
			}
			halfDone.Done()
			<-resume // the daemon dies and is replaced while we wait
			for f := half; f < nFrames; f++ {
				if err := c.Push(context.Background(), video.FrameIndex(f), s.Video.Detections[f]); err != nil {
					errs[i] = fmt.Errorf("push %d after restart: %w", f, err)
					return
				}
			}
			if err := c.Flush(context.Background()); err != nil {
				errs[i] = fmt.Errorf("final flush: %w", err)
				return
			}
			// Status is single-attempt by contract (monitoring, not
			// delivery), so the retry against the faulty proxy lives
			// here.
			var st StreamStatus
			var err error
			for attempt := 0; attempt < 16; attempt++ {
				if st, err = c.Status(context.Background()); err == nil {
					break
				}
			}
			if err != nil {
				errs[i] = fmt.Errorf("status: %w", err)
				return
			}
			statuses[i] = st
		}(i)
	}

	// Kill the daemon once every client has delivered its first half:
	// abandon in-flight work (Shutdown, not Drain — this is the crash
	// path) and take the listener down. Recovery must come from the
	// checkpoints the chained sink stored along the way.
	halfDone.Wait()
	srvA.Shutdown()
	hsA.CloseClientConnections()
	hsA.Close()

	// Stand up the successor over the same store, but leave the proxy
	// pointed at the corpse until at least one client has visibly
	// retried against it — the "retried push observed" soak guarantee.
	srvB, hsB := newTestServer(t, ServerConfig{Store: store, Serve: serveCfg()})
	defer hsB.Close()
	defer srvB.Shutdown()
	// Client stats are unreadable mid-flush (the client mutex is held for
	// the whole retry loop), so observe the dead-window hammering at the
	// proxy: every failed attempt is a fresh connection.
	base := proxy.Counters().Conns
	close(resume)
	waitFor(t, func() bool { return proxy.Counters().Conns >= base+3 }, "pushes against the dead daemon")
	proxy.SetBackend(strings.TrimPrefix(hsB.URL, "http://"))
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("stream %s: %v", streams[i].ID, err)
		}
	}

	// High-water-mark assertions: one record per frame means seq==frame,
	// so the successor must have settled seq nFrames-1 for every stream,
	// and a deliberate replay of the first record (bypassing the client's
	// own dedup, straight at the daemon) must be discarded.
	for i, st := range statuses {
		if st.AckedSeq != nFrames-1 {
			t.Errorf("stream %s: acked_seq %d, want %d", streams[i].ID, st.AckedSeq, nFrames-1)
		}
		if st.Frames != nFrames {
			t.Errorf("stream %s: cursor %d, want %d", streams[i].ID, st.Frames, nFrames)
		}
	}
	status, pr, _ := rawPush(t, hsB.URL, streams[0].ID, `{"seq":0,"frame":0}`+"\n")
	if status != http.StatusOK || pr.Duplicates != 1 || pr.AckedSeq != nFrames-1 || pr.NextFrame != nFrames {
		t.Fatalf("duplicate replay: HTTP %d %+v, want 1 discard with marks unchanged", status, pr)
	}

	var reattaches, retries int64
	for i, c := range clients {
		st := c.Stats()
		if st.Reattaches < 1 {
			t.Errorf("stream %s: reattaches %d, want >= 1 (daemon restarted under it)", streams[i].ID, st.Reattaches)
		}
		reattaches += st.Reattaches
		retries += st.Retries
	}
	if retries < 1 {
		t.Errorf("fleet retries = 0, want >= 1")
	}
	nc := proxy.Counters()
	if nc.Dropped+nc.Stalled+nc.Truncated == 0 {
		t.Errorf("proxy injected no faults across %d connections: %+v", nc.Conns, nc)
	}
	t.Logf("chaos: conns=%d dropped=%d stalled=%d truncated=%d retries=%d reattaches=%d",
		nc.Conns, nc.Dropped, nc.Stalled, nc.Truncated, retries, reattaches)

	// The decisive check: fingerprints equal the sequential single-stream
	// runs, bit for bit, despite the faults, the kill, and the replays.
	for i, s := range streams {
		fin, err := clients[i].Finish(context.Background())
		if err != nil {
			t.Fatalf("finish %s: %v", s.ID, err)
		}
		wantFP, wantFrames := sequentialFingerprint(t, s, windowLen, ckptEvery)
		if fin.Fingerprint != wantFP {
			t.Errorf("stream %s: fingerprint %s != sequential %s", s.ID, fin.Fingerprint, wantFP)
		}
		if fin.Frames != wantFrames {
			t.Errorf("stream %s: frames %d, want %d", s.ID, fin.Frames, wantFrames)
		}
	}

	srvB.Shutdown()
	hsB.Close()
	proxy.Close()
	transport.CloseIdleConnections()
	checkNoGoroutineLeak(t, before)
}
