package ingress

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/tmerge/tmerge/internal/video"
	"github.com/tmerge/tmerge/internal/xrand"
)

// ClientConfig parameterises a Client. One client feeds one stream.
type ClientConfig struct {
	// BaseURL is the daemon (or proxy) endpoint, e.g. "http://127.0.0.1:7171".
	BaseURL string
	// Stream is the stream ID this client feeds.
	Stream string
	// HTTPClient overrides the transport; nil uses a fresh http.Client.
	HTTPClient *http.Client
	// RequestTimeout is the per-attempt deadline for register/push/status
	// requests; 0 defaults to 2s. A request that outlives it is abandoned
	// and retried — the server-side dedup makes the resend safe.
	RequestTimeout time.Duration
	// FinishTimeout is the per-attempt deadline for finish, which blocks
	// server-side until the stream's queue flushes; 0 defaults to 60s.
	FinishTimeout time.Duration
	// MaxAttempts bounds retries per logical operation (a flush, a
	// registration, a finish); 0 defaults to 16.
	MaxAttempts int
	// BackoffBase and BackoffMax bound the exponential backoff schedule
	// (base*2^attempt, capped); defaults 10ms and 1s. A server Retry-After
	// hint overrides the computed delay for that wait.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed keys the deterministic backoff jitter (half the delay is
	// jittered, so independent clients desynchronise without a global
	// clock or shared randomness).
	Seed uint64
	// BatchFrames accumulates this many unacknowledged frames before a
	// push request is sent; 0/1 sends on every Push. Flush forces a send.
	BatchFrames int
	// Sleep is injected for tests; nil defaults to time.Sleep.
	Sleep func(time.Duration)
}

// ClientStats counts the client's observable retry behaviour — what the
// network soak asserts on (a passing soak must have actually retried).
type ClientStats struct {
	// Requests counts HTTP attempts, Retries the transport failures and
	// timeouts that forced a resend, Throttled the 429/503 waits
	// honored, Reattaches the 404-triggered re-registrations after a
	// daemon restart.
	Requests   int64
	Retries    int64
	Throttled  int64
	Reattaches int64
	// RecordsSent counts push records put on the wire (resends
	// included); DuplicatesAcked sums the server-reported duplicate
	// discards — nonzero exactly when at-least-once delivery actually
	// re-delivered.
	RecordsSent     int64
	DuplicatesAcked int64
}

// Client speaks the ingress protocol for one stream: it assigns
// sequence numbers, buffers frames until the server reports them
// durable, resends on timeout or connection failure, honors Retry-After
// on 429/503, and transparently re-registers and replays after a daemon
// restart (404). Every network-touching method takes a ctx: per-attempt
// deadlines are derived from it and the retry loops stop at its
// cancellation. Not safe for concurrent use; feed one stream from one
// goroutine, which is what frame order means anyway.
type Client struct {
	cfg   ClientConfig
	hc    *http.Client
	rng   *xrand.RNG
	sleep func(time.Duration)

	mu         sync.Mutex
	regReq     RegisterRequest
	registered bool
	seq        int64
	buf        []PushRecord // not-yet-durable records, ascending seq and frame
	acked      int64        // server's sequence high-water mark
	serverNext int64        // server's frame cursor
	stats      ClientStats
}

// NewClient validates cfg and returns a client; Register must be called
// before Push.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("ingress: ClientConfig.BaseURL is required")
	}
	if cfg.Stream == "" {
		return nil, fmt.Errorf("ingress: ClientConfig.Stream is required")
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 2 * time.Second
	}
	if cfg.FinishTimeout <= 0 {
		cfg.FinishTimeout = 60 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 16
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 10 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = time.Second
	}
	if cfg.BatchFrames <= 0 {
		cfg.BatchFrames = 1
	}
	hc := cfg.HTTPClient
	if hc == nil {
		// Transport-level backstop: the per-request ctx deadlines are the
		// real control, but a zero-Timeout client could still hang on a
		// pathological transport. Finish is the longest-lived request.
		hc = &http.Client{Timeout: cfg.FinishTimeout + cfg.RequestTimeout}
	}
	sleep := cfg.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	return &Client{
		cfg:   cfg,
		hc:    hc,
		rng:   xrand.Derive(cfg.Seed, "ingress-client-"+cfg.Stream),
		sleep: sleep,
		acked: -1,
	}, nil
}

// Stats returns a snapshot of the retry counters.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Register opens (or re-attaches to) the stream, retrying transport
// failures and 503s until ctx is cancelled or attempts run out. The
// request is remembered for automatic re-registration after a daemon
// restart.
func (c *Client) Register(ctx context.Context, req RegisterRequest) (RegisterResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.regReq = req
	resp, err := c.registerLocked(ctx)
	if err == nil {
		c.registered = true
	}
	return resp, err
}

// registerLocked performs the registration retry loop and applies the
// server's resume point to the client marks.
func (c *Client) registerLocked(ctx context.Context) (RegisterResponse, error) {
	body, err := json.Marshal(c.regReq)
	if err != nil {
		return RegisterResponse{}, fmt.Errorf("ingress: register %s: %w", c.cfg.Stream, err)
	}
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return RegisterResponse{}, fmt.Errorf("ingress: register %s: %w", c.cfg.Stream, err)
		}
		status, hdr, respBody, err := c.attempt(ctx, "POST", "/v1/streams/"+c.cfg.Stream, body, c.cfg.RequestTimeout)
		if err != nil {
			c.stats.Retries++
			lastErr = err
			c.sleep(c.backoff(attempt))
			continue
		}
		switch status {
		case http.StatusOK:
			var rr RegisterResponse
			if err := json.Unmarshal(respBody, &rr); err != nil {
				return RegisterResponse{}, fmt.Errorf("ingress: register %s: bad response: %w", c.cfg.Stream, err)
			}
			// A fresh incarnation acks nothing (AckedSeq -1): everything
			// still buffered must be resent, minus frames its checkpoint
			// already covers.
			if rr.AckedSeq < c.acked {
				c.acked = rr.AckedSeq
			}
			c.serverNext = rr.NextFrame
			c.dropBelowFrame(rr.NextFrame)
			return rr, nil
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			c.stats.Throttled++
			lastErr = errBodyErr("register", c.cfg.Stream, status, respBody)
			c.sleep(c.retryAfter(hdr, respBody, attempt))
		default:
			return RegisterResponse{}, errBodyErr("register", c.cfg.Stream, status, respBody)
		}
	}
	return RegisterResponse{}, fmt.Errorf("ingress: register %s: %d attempts exhausted: %w", c.cfg.Stream, c.cfg.MaxAttempts, lastErr)
}

// Push buffers one frame under the next sequence number and sends when
// the batch threshold is reached. Frames the server's resume point
// already covers are dropped locally — the checkpoint has them. The dets
// slice is retained until the frame is durable; the caller must not
// modify it.
func (c *Client) Push(ctx context.Context, frame video.FrameIndex, dets []video.BBox) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.registered {
		return fmt.Errorf("ingress: push %s: not registered", c.cfg.Stream)
	}
	if int64(frame) < c.serverNext && len(c.buf) == 0 {
		return nil // resumed past this frame; nothing to send
	}
	c.buf = append(c.buf, PushRecord{Seq: c.seq, Frame: frame, Dets: dets})
	c.seq++
	if c.pendingCount() < c.cfg.BatchFrames {
		return nil
	}
	return c.flushLocked(ctx)
}

// Flush sends every unacknowledged record, retrying until the server's
// high-water mark covers them (or attempts are exhausted).
func (c *Client) Flush(ctx context.Context) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.registered {
		return fmt.Errorf("ingress: flush %s: not registered", c.cfg.Stream)
	}
	return c.flushLocked(ctx)
}

// Finish flushes, then closes the stream and returns its fingerprinted
// result. Finish is idempotent server-side, so a timed-out attempt is
// simply retried; after a daemon restart it re-registers and replays the
// buffer before closing.
func (c *Client) Finish(ctx context.Context) (FinishResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.registered {
		return FinishResponse{}, fmt.Errorf("ingress: finish %s: not registered", c.cfg.Stream)
	}
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return FinishResponse{}, fmt.Errorf("ingress: finish %s: %w", c.cfg.Stream, err)
		}
		if err := c.flushLocked(ctx); err != nil {
			return FinishResponse{}, err
		}
		status, hdr, respBody, err := c.attempt(ctx, "POST", "/v1/streams/"+c.cfg.Stream+"/finish", nil, c.cfg.FinishTimeout)
		if err != nil {
			c.stats.Retries++
			lastErr = err
			c.sleep(c.backoff(attempt))
			continue
		}
		switch status {
		case http.StatusOK:
			var fr FinishResponse
			if err := json.Unmarshal(respBody, &fr); err != nil {
				return FinishResponse{}, fmt.Errorf("ingress: finish %s: bad response: %w", c.cfg.Stream, err)
			}
			return fr, nil
		case http.StatusNotFound:
			// Daemon restarted between flush and finish: reattach, replay,
			// and try again.
			c.stats.Reattaches++
			if _, err := c.registerLocked(ctx); err != nil {
				return FinishResponse{}, err
			}
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			c.stats.Throttled++
			lastErr = errBodyErr("finish", c.cfg.Stream, status, respBody)
			c.sleep(c.retryAfter(hdr, respBody, attempt))
		default:
			return FinishResponse{}, errBodyErr("finish", c.cfg.Stream, status, respBody)
		}
	}
	return FinishResponse{}, fmt.Errorf("ingress: finish %s: %d attempts exhausted: %w", c.cfg.Stream, c.cfg.MaxAttempts, lastErr)
}

// Status fetches the stream's server-side status row (single attempt —
// monitoring, not delivery).
func (c *Client) Status(ctx context.Context) (StreamStatus, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	status, _, body, err := c.attempt(ctx, "GET", "/v1/streams/"+c.cfg.Stream, nil, c.cfg.RequestTimeout)
	if err != nil {
		return StreamStatus{}, err
	}
	if status != http.StatusOK {
		return StreamStatus{}, errBodyErr("status", c.cfg.Stream, status, body)
	}
	var st StreamStatus
	if err := json.Unmarshal(body, &st); err != nil {
		return StreamStatus{}, fmt.Errorf("ingress: status %s: bad response: %w", c.cfg.Stream, err)
	}
	return st, nil
}

// flushLocked drives the push retry loop until nothing is pending:
// transport failures back off and resend the whole pending window
// (dedup absorbs the overlap), 429/503 honor the server's hint, 404
// re-registers and replays. Every exit path leaves the buffer
// consistent with the server's marks.
func (c *Client) flushLocked(ctx context.Context) error {
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		pending := c.pending()
		if len(pending) == 0 {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("ingress: push %s: %w", c.cfg.Stream, err)
		}
		var body bytes.Buffer
		if err := EncodePushBatch(&body, pending); err != nil {
			return err
		}
		c.stats.RecordsSent += int64(len(pending))
		status, hdr, respBody, err := c.attempt(ctx, "POST", "/v1/streams/"+c.cfg.Stream+"/frames", body.Bytes(), c.cfg.RequestTimeout)
		if err != nil {
			c.stats.Retries++
			lastErr = err
			c.sleep(c.backoff(attempt))
			continue
		}
		switch status {
		case http.StatusOK:
			var pr PushResponse
			if err := json.Unmarshal(respBody, &pr); err != nil {
				return fmt.Errorf("ingress: push %s: bad response: %w", c.cfg.Stream, err)
			}
			c.applyAck(pr)
		case http.StatusNotFound:
			c.stats.Reattaches++
			if _, err := c.registerLocked(ctx); err != nil {
				return err
			}
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			c.stats.Throttled++
			lastErr = errBodyErr("push", c.cfg.Stream, status, respBody)
			c.sleep(c.retryAfter(hdr, respBody, attempt))
		default:
			return errBodyErr("push", c.cfg.Stream, status, respBody)
		}
	}
	return fmt.Errorf("ingress: push %s: %d attempts exhausted: %w", c.cfg.Stream, c.cfg.MaxAttempts, lastErr)
}

// applyAck folds a push acknowledgement into the client marks: the
// high-water mark settles sent records, the durable mark trims the
// resend buffer.
func (c *Client) applyAck(pr PushResponse) {
	if pr.AckedSeq > c.acked {
		c.acked = pr.AckedSeq
	}
	c.serverNext = pr.NextFrame
	c.stats.DuplicatesAcked += int64(pr.Duplicates)
	if pr.DurableFrame >= 0 {
		c.dropBelowFrame(pr.DurableFrame)
	}
}

// dropBelowFrame trims buffered records whose frame a checkpoint
// already covers.
func (c *Client) dropBelowFrame(frame int64) {
	i := 0
	for i < len(c.buf) && int64(c.buf[i].Frame) < frame {
		i++
	}
	if i > 0 {
		c.buf = append(c.buf[:0], c.buf[i:]...)
	}
}

// pending returns the buffered records the server has not settled.
func (c *Client) pending() []PushRecord {
	i := 0
	for i < len(c.buf) && c.buf[i].Seq <= c.acked {
		i++
	}
	return c.buf[i:]
}

// pendingCount mirrors pending without slicing.
func (c *Client) pendingCount() int {
	n := 0
	for i := len(c.buf) - 1; i >= 0 && c.buf[i].Seq > c.acked; i-- {
		n++
	}
	return n
}

// attempt performs one HTTP exchange under a per-request deadline
// derived from the caller's ctx and returns the status with the
// (bounded) body. A transport error, a timeout, or a truncated body all
// come back as err — the retryable class.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte, timeout time.Duration) (int, http.Header, []byte, error) {
	c.stats.Requests++
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, method, c.cfg.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, fmt.Errorf("ingress: %s %s: %w", method, path, err)
	}
	if method == "POST" {
		req.Header.Set("Content-Type", "application/x-ndjson")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, nil, nil, fmt.Errorf("ingress: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return 0, nil, nil, fmt.Errorf("ingress: %s %s: read response: %w", method, path, err)
	}
	return resp.StatusCode, resp.Header, b, nil
}

// backoff computes the attempt's delay: exponential from BackoffBase,
// capped at BackoffMax, with the upper half jittered by the seeded RNG —
// deterministic for a given seed and attempt sequence.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.cfg.BackoffBase
	for i := 0; i < attempt && d < c.cfg.BackoffMax; i++ {
		d *= 2
	}
	if d > c.cfg.BackoffMax {
		d = c.cfg.BackoffMax
	}
	half := d / 2
	return half + time.Duration(c.rng.Float64()*float64(half))
}

// retryAfter picks the wait for a throttled response: the body's
// millisecond hint wins (it is exact), else the Retry-After header
// (whole seconds, the HTTP-standard channel), else the attempt's
// backoff schedule.
func (c *Client) retryAfter(hdr http.Header, respBody []byte, attempt int) time.Duration {
	var eb ErrorBody
	if err := json.Unmarshal(respBody, &eb); err == nil && eb.RetryAfterMS > 0 {
		return time.Duration(eb.RetryAfterMS) * time.Millisecond
	}
	if hdr != nil {
		if d, ok := ParseRetryAfterHeader(hdr.Get("Retry-After")); ok && d > 0 {
			return d
		}
	}
	return c.backoff(attempt)
}

// errBodyErr renders a non-2xx response as an error, surfacing the typed
// code when the body carries one.
func errBodyErr(op, stream string, status int, body []byte) error {
	var eb ErrorBody
	if err := json.Unmarshal(body, &eb); err == nil && eb.Code != "" {
		return fmt.Errorf("ingress: %s %s: HTTP %d (%s): %s", op, stream, status, eb.Code, eb.Error)
	}
	return fmt.Errorf("ingress: %s %s: HTTP %d: %s", op, stream, status, truncate(body, 200))
}

// truncate bounds an error body for display.
func truncate(b []byte, n int) string {
	if len(b) > n {
		return string(b[:n]) + "..."
	}
	return string(b)
}

// ParseRetryAfterHeader parses an HTTP Retry-After header's
// delta-seconds form; ok is false for absent or non-numeric values
// (including the HTTP-date form, which a deterministic client cannot
// honor without a clock).
func ParseRetryAfterHeader(v string) (time.Duration, bool) {
	if v == "" {
		return 0, false
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0, false
	}
	return time.Duration(secs) * time.Second, true
}
