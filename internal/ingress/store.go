package ingress

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Store persists per-stream checkpoints across daemon incarnations: the
// server writes every periodic checkpoint and every drain seal into it,
// and a restarted server resumes registrations from it. Implementations
// must be safe for concurrent use — periodic checkpoints arrive from
// worker goroutines while registrations read.
type Store interface {
	// Put stores the stream's latest checkpoint, replacing any previous
	// one.
	Put(stream string, data []byte) error
	// Get returns the stream's latest checkpoint; ok is false when the
	// store has none.
	Get(stream string) (data []byte, ok bool, err error)
	// Delete forgets the stream (a finished stream's checkpoint is
	// obsolete; re-registering it starts fresh). Deleting an absent
	// stream is not an error.
	Delete(stream string) error
}

// MemStore is the in-process Store: a mutex-guarded map. Suitable for
// tests and for deployments that accept losing resume state with the
// process.
type MemStore struct {
	mu sync.Mutex
	m  map[string][]byte
}

// NewMemStore returns an empty MemStore.
func NewMemStore() *MemStore { return &MemStore{m: make(map[string][]byte)} }

// Put implements Store.
func (s *MemStore) Put(stream string, data []byte) error {
	cp := append([]byte(nil), data...)
	s.mu.Lock()
	s.m[stream] = cp
	s.mu.Unlock()
	return nil
}

// Get implements Store.
func (s *MemStore) Get(stream string) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.m[stream]
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), data...), true, nil
}

// Delete implements Store.
func (s *MemStore) Delete(stream string) error {
	s.mu.Lock()
	delete(s.m, stream)
	s.mu.Unlock()
	return nil
}

// DirStore is the durable Store: one file per stream under a directory,
// written atomically (temp file + rename) so a crash mid-write never
// leaves a torn checkpoint — the previous one survives intact. Stream
// IDs are restricted to a filename-safe alphabet; anything else is
// rejected rather than path-interpreted.
type DirStore struct {
	dir string
	mu  sync.Mutex // serialises writes per process; rename is the cross-process story
}

// NewDirStore creates (if needed) and wraps dir.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ingress: checkpoint dir: %w", err)
	}
	return &DirStore{dir: dir}, nil
}

// path validates the stream ID and returns its checkpoint file path.
func (s *DirStore) path(stream string) (string, error) {
	if stream == "" || len(stream) > 128 {
		return "", fmt.Errorf("ingress: store: invalid stream id %q", stream)
	}
	for _, r := range stream {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return "", fmt.Errorf("ingress: store: stream id %q contains %q; allowed: [A-Za-z0-9._-]", stream, r)
		}
	}
	if strings.HasPrefix(stream, ".") {
		return "", fmt.Errorf("ingress: store: stream id %q may not start with a dot", stream)
	}
	return filepath.Join(s.dir, stream+".ckpt"), nil
}

// Put implements Store.
func (s *DirStore) Put(stream string, data []byte) error {
	p, err := s.path(stream)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tmp, err := os.CreateTemp(s.dir, "."+stream+"-*.tmp")
	if err != nil {
		return fmt.Errorf("ingress: store %s: %w", stream, err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		return fmt.Errorf("ingress: store %s: %w", stream, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("ingress: store %s: %w", stream, err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		return fmt.Errorf("ingress: store %s: %w", stream, err)
	}
	return nil
}

// Get implements Store.
func (s *DirStore) Get(stream string) ([]byte, bool, error) {
	p, err := s.path(stream)
	if err != nil {
		return nil, false, err
	}
	data, err := os.ReadFile(p)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("ingress: store %s: %w", stream, err)
	}
	return data, true, nil
}

// Delete implements Store.
func (s *DirStore) Delete(stream string) error {
	p, err := s.path(stream)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("ingress: store %s: %w", stream, err)
	}
	return nil
}
