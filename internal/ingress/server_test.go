package ingress

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/tmerge/tmerge/internal/core"
	"github.com/tmerge/tmerge/internal/dataset"
	"github.com/tmerge/tmerge/internal/device"
	"github.com/tmerge/tmerge/internal/ingest"
	"github.com/tmerge/tmerge/internal/reid"
	"github.com/tmerge/tmerge/internal/serve"
	"github.com/tmerge/tmerge/internal/serve/loadgen"
	"github.com/tmerge/tmerge/internal/track"
	"github.com/tmerge/tmerge/internal/video"
)

// testPipeline builds a fresh, isolated pipeline per call, seeded by the
// stream's registration seed (the serve-layer test idiom).
func testPipeline(seed uint64) serve.PipelineFactory {
	return func() (*track.Engine, *reid.Oracle) {
		model := reid.NewModel(seed^0x5EED, dataset.AppearanceDim)
		return track.Tracktor(), reid.NewOracle(model, device.NewCPU(device.DefaultCPU))
	}
}

// testIngestCfg mirrors the serve tests' streaming configuration.
func testIngestCfg(seed uint64, windowLen, ckptEvery int) ingest.Config {
	tc := core.DefaultTMergeConfig(seed)
	tc.TauMax = 300
	return ingest.Config{
		WindowLen:           windowLen,
		K:                   0.05,
		Algorithm:           core.NewTMerge(tc),
		AutoCheckpointEvery: ckptEvery,
		Workers:             1,
	}
}

// testSpec is the SpecFunc the tests register under: the wire knobs map
// onto the test pipeline and ingestion defaults.
func testSpec(id string, req RegisterRequest) (serve.StreamSpec, error) {
	wl := req.WindowLen
	if wl <= 0 {
		wl = 40
	}
	return serve.StreamSpec{
		Ingest:   testIngestCfg(req.Seed, wl, req.CheckpointEvery),
		Pipeline: testPipeline(req.Seed),
		QueueCap: req.QueueCap,
	}, nil
}

// newTestServer builds an ingress server + HTTP listener around cfg.
func newTestServer(t *testing.T, cfg ServerConfig) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Spec == nil {
		cfg.Spec = testSpec
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, httptest.NewServer(s.Handler())
}

// sequentialFingerprint runs the stream alone, in process, and returns
// the reference fingerprint every served run must match.
func sequentialFingerprint(t *testing.T, s loadgen.Stream, windowLen, ckptEvery int) (string, int) {
	t.Helper()
	engine, oracle := testPipeline(s.Seed)()
	cfg := testIngestCfg(s.Seed, windowLen, ckptEvery)
	if ckptEvery > 0 {
		cfg.CheckpointSink = func([]byte) error { return nil }
	}
	ref, err := ingest.New(engine, oracle, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for f, dets := range s.Video.Detections {
		ref.PushAt(video.FrameIndex(f), dets)
	}
	ref.Close()
	res := ref.Result()
	return res.Fingerprint(), res.FramesProcessed
}

func TestServerPushFinishMatchesSequential(t *testing.T) {
	before := runtime.NumGoroutine()
	streams, err := loadgen.Generate(loadgen.Config{Seed: 61, Streams: 2, Frames: 120})
	if err != nil {
		t.Fatal(err)
	}
	srv, hs := newTestServer(t, ServerConfig{Serve: serve.Config{Workers: 2, DefaultQueueCap: 128}})
	defer hs.Close()
	defer srv.Shutdown()

	for _, s := range streams {
		c, err := NewClient(ClientConfig{BaseURL: hs.URL, Stream: s.ID, Seed: s.Seed, BatchFrames: 4})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Register(context.Background(), RegisterRequest{Seed: s.Seed, CheckpointEvery: 2}); err != nil {
			t.Fatalf("register %s: %v", s.ID, err)
		}
		for f, dets := range s.Video.Detections {
			if err := c.Push(context.Background(), video.FrameIndex(f), dets); err != nil {
				t.Fatalf("push %s frame %d: %v", s.ID, f, err)
			}
		}
		fin, err := c.Finish(context.Background())
		if err != nil {
			t.Fatalf("finish %s: %v", s.ID, err)
		}
		wantFP, wantFrames := sequentialFingerprint(t, s, 40, 2)
		if fin.Fingerprint != wantFP {
			t.Errorf("%s: served fingerprint %s != sequential %s", s.ID, fin.Fingerprint, wantFP)
		}
		if fin.Frames != wantFrames {
			t.Errorf("%s: frames %d, want %d", s.ID, fin.Frames, wantFrames)
		}
		// Finish is idempotent: a retried finish returns the same body.
		again, err := c.Finish(context.Background())
		if err != nil || again != fin {
			t.Errorf("%s: re-finish got %+v, %v; want cached %+v", s.ID, again, err, fin)
		}
	}
	srv.Shutdown()
	hs.Close()
	checkNoGoroutineLeak(t, before)
}

// rawPush posts an NDJSON body and decodes the response or error.
func rawPush(t *testing.T, base, stream, body string) (int, PushResponse, ErrorBody) {
	t.Helper()
	resp, err := http.Post(base+"/v1/streams/"+stream+"/frames", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var pr PushResponse
	var eb ErrorBody
	dec := json.NewDecoder(resp.Body)
	if resp.StatusCode == http.StatusOK {
		if err := dec.Decode(&pr); err != nil {
			t.Fatal(err)
		}
	} else if err := dec.Decode(&eb); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, pr, eb
}

// TestServerDedupHighWaterMark pins the exactly-once invariant at the
// wire: resending a settled batch advances nothing and is counted as
// duplicates; a fresh sequence number cannot smuggle in a settled frame.
func TestServerDedupHighWaterMark(t *testing.T) {
	streams, err := loadgen.Generate(loadgen.Config{Seed: 67, Streams: 1, Frames: 40})
	if err != nil {
		t.Fatal(err)
	}
	s := streams[0]
	srv, hs := newTestServer(t, ServerConfig{Serve: serve.Config{Workers: 1, DefaultQueueCap: 64}})
	defer hs.Close()
	defer srv.Shutdown()

	resp, err := http.Post(hs.URL+"/v1/streams/"+s.ID, "application/json", strings.NewReader(`{"seed":67}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("register: HTTP %d", resp.StatusCode)
	}

	var batch bytes.Buffer
	recs := make([]PushRecord, 3)
	for i := range recs {
		recs[i] = PushRecord{Seq: int64(i), Frame: video.FrameIndex(i), Dets: s.Video.Detections[i]}
	}
	if err := EncodePushBatch(&batch, recs); err != nil {
		t.Fatal(err)
	}
	first := batch.String()

	status, pr, _ := rawPush(t, hs.URL, s.ID, first)
	if status != 200 || pr.AckedSeq != 2 || pr.NextFrame != 3 || pr.Duplicates != 0 {
		t.Fatalf("first push: HTTP %d %+v", status, pr)
	}
	// Exact resend: all duplicates, marks unchanged.
	status, pr, _ = rawPush(t, hs.URL, s.ID, first)
	if status != 200 || pr.AckedSeq != 2 || pr.NextFrame != 3 || pr.Duplicates != 3 {
		t.Fatalf("resend: HTTP %d %+v, want acked 2 / next 3 / 3 duplicates", status, pr)
	}
	// A new seq carrying an already-settled frame is discarded but
	// advances the high-water mark (the client need not resend it).
	line := func(seq int64, frame int) string {
		return fmt.Sprintf(`{"seq":%d,"frame":%d}`, seq, frame) + "\n"
	}
	status, pr, _ = rawPush(t, hs.URL, s.ID, line(10, 1))
	if status != 200 || pr.AckedSeq != 10 || pr.NextFrame != 3 || pr.Duplicates != 1 {
		t.Fatalf("settled frame under new seq: HTTP %d %+v, want acked 10 / next 3 / 1 duplicate", status, pr)
	}
	// An old seq carrying a new frame is likewise discarded: the mark
	// proves that seq was settled, whatever it carried.
	status, pr, _ = rawPush(t, hs.URL, s.ID, line(4, 20))
	if status != 200 || pr.AckedSeq != 10 || pr.NextFrame != 3 || pr.Duplicates != 1 {
		t.Fatalf("old seq: HTTP %d %+v, want acked 10 / next 3 / 1 duplicate", status, pr)
	}
	// Status surfaces the marks and the cumulative discard count.
	sresp, err := http.Get(hs.URL + "/v1/streams/" + s.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var row StreamStatus
	if err := json.NewDecoder(sresp.Body).Decode(&row); err != nil {
		t.Fatal(err)
	}
	if row.AckedSeq != 10 || row.Duplicates != 5 {
		t.Fatalf("status row %+v, want acked_seq 10, duplicates 5", row)
	}
	if row.Frames != 3 {
		t.Fatalf("status frames = %d, want 3 (dup pushes must not advance the cursor)", row.Frames)
	}
}

// TestServerOverloadSurfacesAs429 pins the backpressure protocol: a full
// shedding queue maps to 429 with both Retry-After channels set, and the
// client rides it out.
func TestServerOverloadSurfacesAs429(t *testing.T) {
	streams, err := loadgen.Generate(loadgen.Config{Seed: 71, Streams: 1, Frames: 64})
	if err != nil {
		t.Fatal(err)
	}
	s := streams[0]
	release := make(chan struct{})
	var onceGate sync.Once
	srv, hs := newTestServer(t, ServerConfig{
		RetryAfter: 20 * time.Millisecond,
		Serve: serve.Config{
			Workers: 1, Shed: true, DefaultQueueCap: 4, TurnFrames: 8,
			OnWindow: func(string, ingest.WindowResult, time.Duration) { onceGate.Do(func() { <-release }) },
		},
	})
	defer hs.Close()
	defer srv.Shutdown()

	resp, err := http.Post(hs.URL+"/v1/streams/"+s.ID, "application/json", strings.NewReader(`{"seed":71,"window_len":8}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// The first window (frames 0..7) wedges the only worker in OnWindow;
	// four more frames fill the queue; the next push must shed.
	var saw429 bool
	var lastHdr string
	seq := int64(0)
	for f := 0; f < 16 && !saw429; f++ {
		body := fmt.Sprintf(`{"seq":%d,"frame":%d}`, seq, f) + "\n"
		req, err := http.Post(hs.URL+"/v1/streams/"+s.ID+"/frames", "application/x-ndjson", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if req.StatusCode == http.StatusTooManyRequests {
			saw429 = true
			lastHdr = req.Header.Get("Retry-After")
			var eb ErrorBody
			if err := json.NewDecoder(req.Body).Decode(&eb); err != nil {
				t.Fatal(err)
			}
			if eb.Code != CodeOverloaded || eb.RetryAfterMS != 20 {
				t.Fatalf("429 body %+v, want code %q with 20ms hint", eb, CodeOverloaded)
			}
		} else if req.StatusCode == http.StatusOK {
			seq++
		} else {
			t.Fatalf("push frame %d: HTTP %d", f, req.StatusCode)
		}
		req.Body.Close()
	}
	if !saw429 {
		t.Fatal("queue never shed: no 429 observed")
	}
	if lastHdr != "1" {
		t.Fatalf("Retry-After header = %q, want \"1\" (20ms rounds up to 1s)", lastHdr)
	}
	close(release)
}

// TestServerDrainThenResume pins restart equivalence over the wire
// without fault injection: half the stream into server A, drain A (503s
// from that moment), bring up server B over the same store, reattach and
// replay — the final fingerprint matches the uninterrupted run.
func TestServerDrainThenResume(t *testing.T) {
	before := runtime.NumGoroutine()
	streams, err := loadgen.Generate(loadgen.Config{Seed: 73, Streams: 1, Frames: 160})
	if err != nil {
		t.Fatal(err)
	}
	s := streams[0]
	store := NewMemStore()

	srvA, hsA := newTestServer(t, ServerConfig{Store: store, Serve: serve.Config{Workers: 1, DefaultQueueCap: 256}})
	c, err := NewClient(ClientConfig{BaseURL: hsA.URL, Stream: s.ID, Seed: s.Seed})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := c.Register(context.Background(), RegisterRequest{Seed: s.Seed, CheckpointEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	if reg.Resumed || reg.NextFrame != 0 {
		t.Fatalf("fresh register = %+v", reg)
	}
	const cut = 80
	for f := 0; f < cut; f++ {
		if err := c.Push(context.Background(), video.FrameIndex(f), s.Video.Detections[f]); err != nil {
			t.Fatalf("push %d: %v", f, err)
		}
	}
	if err := srvA.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// The drained server refuses intake with the draining code.
	status, _, eb := rawPush(t, hsA.URL, s.ID, `{"seq":999,"frame":999}`+"\n")
	if status != http.StatusServiceUnavailable || eb.Code != CodeDraining {
		t.Fatalf("push after drain: HTTP %d %+v, want 503 %s", status, eb, CodeDraining)
	}
	hsA.Close()

	srvB, hsB := newTestServer(t, ServerConfig{Store: store, Serve: serve.Config{Workers: 1, DefaultQueueCap: 256}})
	defer hsB.Close()
	defer srvB.Shutdown()
	c2, err := NewClient(ClientConfig{BaseURL: hsB.URL, Stream: s.ID, Seed: s.Seed})
	if err != nil {
		t.Fatal(err)
	}
	reg2, err := c2.Register(context.Background(), RegisterRequest{Seed: s.Seed, CheckpointEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reg2.Resumed || reg2.NextFrame != cut || reg2.AckedSeq != -1 {
		t.Fatalf("resumed register = %+v, want resumed at frame %d with acked -1", reg2, cut)
	}
	// An at-least-once replay: resend everything; the server discards
	// what its checkpoint covers.
	for f := 0; f < len(s.Video.Detections); f++ {
		if err := c2.Push(context.Background(), video.FrameIndex(f), s.Video.Detections[f]); err != nil {
			t.Fatalf("replay %d: %v", f, err)
		}
	}
	fin, err := c2.Finish(context.Background())
	if err != nil {
		t.Fatalf("finish: %v", err)
	}
	wantFP, wantFrames := sequentialFingerprint(t, s, 40, 2)
	if fin.Fingerprint != wantFP {
		t.Errorf("drained+resumed fingerprint %s != sequential %s", fin.Fingerprint, wantFP)
	}
	if fin.Frames != wantFrames {
		t.Errorf("frames %d, want %d", fin.Frames, wantFrames)
	}
	srvB.Shutdown()
	hsB.Close()
	checkNoGoroutineLeak(t, before)
}

// checkNoGoroutineLeak is the serve-test leak idiom: the goroutine count
// must return to its before-value within a few seconds.
func checkNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
