package ingress

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// newTestClient builds a client with a recording fake sleeper, so
// backoff schedules are observable without waiting them out.
func newTestClient(t *testing.T, base string, seed uint64, slept *[]time.Duration) *Client {
	t.Helper()
	var mu sync.Mutex
	c, err := NewClient(ClientConfig{
		BaseURL: base, Stream: "s", Seed: seed,
		RequestTimeout: 2 * time.Second,
		BackoffBase:    10 * time.Millisecond,
		BackoffMax:     160 * time.Millisecond,
		MaxAttempts:    8,
		Sleep: func(d time.Duration) {
			mu.Lock()
			*slept = append(*slept, d)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestBackoffDeterministic pins the jitter contract: the schedule is a
// pure function of the seed — two clients with the same seed produce
// identical delays, a different seed diverges, and every delay lies in
// [d/2, d] for the attempt's exponential cap.
func TestBackoffDeterministic(t *testing.T) {
	var s1, s2, s3 []time.Duration
	a := newTestClient(t, "http://x", 7, &s1)
	b := newTestClient(t, "http://x", 7, &s2)
	c := newTestClient(t, "http://x", 8, &s3)

	base, max := 10*time.Millisecond, 160*time.Millisecond
	var da, db, dc []time.Duration
	for attempt := 0; attempt < 10; attempt++ {
		da = append(da, a.backoff(attempt))
		db = append(db, b.backoff(attempt))
		dc = append(dc, c.backoff(attempt))
	}
	diverged := false
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", i, da[i], db[i])
		}
		if da[i] != dc[i] {
			diverged = true
		}
		cap := base << min(i, 20)
		if cap > max {
			cap = max
		}
		if da[i] < cap/2 || da[i] > cap {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", i, da[i], cap/2, cap)
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestRetryAfterPrecedence pins the override order for throttled
// responses: the JSON body's millisecond hint beats the Retry-After
// header, which beats the backoff schedule.
func TestRetryAfterPrecedence(t *testing.T) {
	var slept []time.Duration
	c := newTestClient(t, "http://x", 1, &slept)

	hdr := http.Header{}
	hdr.Set("Retry-After", "3")
	if d := c.retryAfter(hdr, []byte(`{"code":"overloaded","retry_after_ms":25}`), 0); d != 25*time.Millisecond {
		t.Fatalf("body hint: got %v, want 25ms", d)
	}
	if d := c.retryAfter(hdr, []byte(`{"code":"overloaded"}`), 0); d != 3*time.Second {
		t.Fatalf("header fallback: got %v, want 3s", d)
	}
	if d := c.retryAfter(http.Header{}, []byte("{}"), 0); d < 5*time.Millisecond || d > 10*time.Millisecond {
		t.Fatalf("backoff fallback: got %v, want within [5ms, 10ms]", d)
	}
	if d, ok := ParseRetryAfterHeader("Wed, 21 Oct 2015 07:28:00 GMT"); ok {
		t.Fatalf("HTTP-date form should be rejected, got %v", d)
	}
}

// TestClientHonorsThrottleSchedule scripts a server that throttles the
// first pushes with explicit millisecond hints and checks the client
// sleeps exactly those hints — the deterministic Retry-After unit test.
func TestClientHonorsThrottleSchedule(t *testing.T) {
	hints := []int64{7, 13, 29}
	var calls int
	var mu sync.Mutex
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/streams/s" {
			writeJSON(w, 200, RegisterResponse{Stream: "s", AckedSeq: -1})
			return
		}
		mu.Lock()
		n := calls
		calls++
		mu.Unlock()
		if n < len(hints) {
			writeError(w, http.StatusTooManyRequests, CodeOverloaded, "full", hints[n])
			return
		}
		recs, err := DecodePushBatch(r.Body, 0)
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error(), 0)
			return
		}
		writeJSON(w, 200, PushResponse{
			AckedSeq:     recs[len(recs)-1].Seq,
			NextFrame:    int64(recs[len(recs)-1].Frame) + 1,
			DurableFrame: -1,
		})
	}))
	defer srv.Close()

	var slept []time.Duration
	c := newTestClient(t, srv.URL, 3, &slept)
	if _, err := c.Register(context.Background(), RegisterRequest{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Push(context.Background(), 0, nil); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{7 * time.Millisecond, 13 * time.Millisecond, 29 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("sleep %d: got %v, want %v", i, slept[i], want[i])
		}
	}
	st := c.Stats()
	if st.Throttled != 3 {
		t.Fatalf("throttled = %d, want 3", st.Throttled)
	}
	if st.Retries != 0 {
		t.Fatalf("retries = %d, want 0 (throttles are not transport failures)", st.Retries)
	}
}

// TestClientResendsOnTimeout scripts a server whose first push attempt
// stalls past the request deadline; the client must retry the same
// record (observable as a duplicate-free second delivery, since the
// first never reached a decode).
func TestClientResendsOnTimeout(t *testing.T) {
	var mu sync.Mutex
	attempt := 0
	block := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/streams/s" {
			writeJSON(w, 200, RegisterResponse{Stream: "s", AckedSeq: -1})
			return
		}
		mu.Lock()
		n := attempt
		attempt++
		mu.Unlock()
		if n == 0 {
			<-block // hold the first attempt past the client deadline
			return
		}
		recs, err := DecodePushBatch(r.Body, 0)
		if err != nil || len(recs) == 0 {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "bad batch", 0)
			return
		}
		writeJSON(w, 200, PushResponse{
			AckedSeq:     recs[len(recs)-1].Seq,
			NextFrame:    int64(recs[len(recs)-1].Frame) + 1,
			DurableFrame: -1,
		})
	}))
	defer srv.Close()
	defer close(block)

	var slept []time.Duration
	c, err := NewClient(ClientConfig{
		BaseURL: srv.URL, Stream: "s", Seed: 5,
		RequestTimeout: 50 * time.Millisecond,
		BackoffBase:    time.Millisecond, BackoffMax: 2 * time.Millisecond,
		Sleep: func(d time.Duration) { slept = append(slept, d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register(context.Background(), RegisterRequest{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Push(context.Background(), 0, nil); err != nil {
		t.Fatalf("push: %v", err)
	}
	st := c.Stats()
	if st.Retries < 1 {
		t.Fatalf("retries = %d, want >= 1 (first attempt timed out)", st.Retries)
	}
	if st.RecordsSent < 2 {
		t.Fatalf("records sent = %d, want >= 2 (resend)", st.RecordsSent)
	}
}
