package checkpoint

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

type testPayload struct {
	Name  string    `json:"name"`
	Vals  []float64 `json:"vals"`
	Count int       `json:"count"`
}

func TestSealOpenRoundTrip(t *testing.T) {
	in := testPayload{Name: "session", Vals: []float64{1.5, -2.25, 0.1}, Count: 42}
	data, err := Seal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out testPayload
	if err := Open(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != in.Name || out.Count != in.Count || len(out.Vals) != len(in.Vals) {
		t.Fatalf("round trip mangled payload: %+v vs %+v", out, in)
	}
	for i := range in.Vals {
		if out.Vals[i] != in.Vals[i] {
			t.Fatalf("float %d not bit-identical: %v vs %v", i, out.Vals[i], in.Vals[i])
		}
	}
}

func TestOpenRejectsTruncation(t *testing.T) {
	data, err := Seal(testPayload{Name: "x", Count: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, len(data) / 4, len(data) / 2, len(data) - 1} {
		var out testPayload
		if err := Open(data[:cut], &out); err == nil {
			t.Errorf("truncation to %d bytes accepted", cut)
		}
	}
	var out testPayload
	if err := Open(nil, &out); err == nil {
		t.Error("empty input accepted")
	}
}

func TestOpenRejectsBitFlips(t *testing.T) {
	orig := testPayload{Name: "abcdef", Vals: []float64{3.25}, Count: 7}
	data, err := Seal(orig)
	if err != nil {
		t.Fatal(err)
	}
	// Every single-bit flip must either be rejected or (for flips in
	// envelope metadata that Go's case-insensitive JSON field matching
	// tolerates, e.g. "format" -> "Format") decode to the exact original
	// payload. What may never happen is a flip that silently yields
	// different state.
	rejected := 0
	for i := 0; i < len(data); i++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), data...)
			mut[i] ^= 1 << bit
			var out testPayload
			if err := Open(mut, &out); err != nil {
				rejected++
				continue
			}
			if out.Name != orig.Name || out.Count != orig.Count ||
				len(out.Vals) != 1 || out.Vals[0] != orig.Vals[0] {
				t.Fatalf("bit flip at byte %d bit %d silently changed the payload: %+v", i, bit, out)
			}
		}
	}
	if rejected == 0 {
		t.Fatal("no flip was rejected; checksum is not engaged")
	}
	// Flips inside the payload region specifically must all be caught by
	// the checksum: locate the payload bytes and flip each of them.
	pi := bytes.Index(data, []byte(`"payload":`))
	if pi < 0 {
		t.Fatal("payload field not found")
	}
	for i := pi + len(`"payload":`); i < len(data)-1; i++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), data...)
			mut[i] ^= 1 << bit
			var out testPayload
			if err := Open(mut, &out); err == nil {
				t.Fatalf("payload bit flip at byte %d bit %d accepted", i, bit)
			}
		}
	}
}

func TestOpenRejectsWrongFormatAndVersion(t *testing.T) {
	payload, _ := json.Marshal(testPayload{Name: "x"})
	mk := func(format string, version int, sum string) []byte {
		b, err := json.Marshal(map[string]any{
			"format": format, "version": version, "checksum": sum, "payload": json.RawMessage(payload),
		})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	var out testPayload
	if err := Open(mk("other/format", Version, strings.Repeat("0", 64)), &out); err == nil ||
		!strings.Contains(err.Error(), "format") {
		t.Errorf("wrong format: err = %v", err)
	}
	if err := Open(mk(Format, Version+1, strings.Repeat("0", 64)), &out); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Errorf("future version: err = %v", err)
	}
	if err := Open(mk(Format, Version, strings.Repeat("0", 64)), &out); err == nil ||
		!strings.Contains(err.Error(), "checksum") {
		t.Errorf("bad checksum: err = %v", err)
	}
}

func TestSealIsDeterministic(t *testing.T) {
	p := testPayload{Name: "det", Vals: []float64{0.5, 0.25}, Count: 3}
	a, err := Seal(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Seal(p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("two seals of the same payload differ")
	}
}

func TestOpenRejectsNaNPayloadAtSeal(t *testing.T) {
	// JSON cannot carry NaN: sealing a payload containing one must fail
	// rather than write an unreadable checkpoint.
	type bad struct {
		V float64 `json:"v"`
	}
	nan := 0.0
	nan = nan / nan
	if _, err := Seal(bad{V: nan}); err == nil {
		t.Error("NaN payload sealed")
	}
}
