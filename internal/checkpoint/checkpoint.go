// Package checkpoint implements the durability format for streaming
// ingestion sessions: a versioned, checksummed JSON envelope (Seal/Open)
// and the SessionState payload that captures everything an interrupted
// ingest.Ingestor needs to resume deterministically — tracker hypotheses
// with their Kalman filters and appearance EMAs, the identity map, the
// ReID feature cache and work counters, device resilience state (circuit
// breaker, jitter RNG, fault-injection cursor), the virtual clock, the
// quarantine ledger, and the frame/window cursors.
//
// The format guarantee is all-or-nothing: Open either yields the exact
// payload Seal wrote or a descriptive error. A truncated file fails JSON
// decoding; a bit flip anywhere in the payload fails the SHA-256
// checksum; an envelope from a future (or unknown) format version is
// refused before the payload is looked at. Restore code therefore never
// sees — and can never apply — a partially valid session.
package checkpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"github.com/tmerge/tmerge/internal/core"
	"github.com/tmerge/tmerge/internal/device"
	"github.com/tmerge/tmerge/internal/fault"
	"github.com/tmerge/tmerge/internal/query"
	"github.com/tmerge/tmerge/internal/reid"
	"github.com/tmerge/tmerge/internal/track"
	"github.com/tmerge/tmerge/internal/trackdb"
	"github.com/tmerge/tmerge/internal/video"
)

// Format is the envelope's format discriminator.
const Format = "tmerge/checkpoint"

// Version is the current payload schema version. Readers refuse
// envelopes with a different version: the schema carries Kalman filter
// internals and RNG states whose meaning is pinned to the code that
// wrote them, so silent cross-version reads would break the replay
// guarantee in ways no checksum can catch.
//
// Version 2 added the streaming-query state: the merger's ordered
// merge-event log inside MergerState, per-window Events and Queries on
// WindowRecord, and the live-view plus subscription snapshots
// (SessionState.View, SessionState.Subscriptions) that let a restored
// session resume incremental query processing without recomputation.
//
// Version 3 added the log-structured history reference: sessions with an
// on-disk history log carry SessionState.History (a manifest position)
// instead of embedding the full merge-event log and view state, the
// merger snapshot gained MergerState.EventBase (the log is trimmed once
// segments are sealed), and restore replays the view from segments.
const Version = 3

// envelope is the on-disk wrapper. Payload keeps the exact bytes the
// checksum was computed over, so verification is byte-precise regardless
// of how the outer JSON was formatted or re-encoded.
type envelope struct {
	Format   string          `json:"format"`
	Version  int             `json:"version"`
	Checksum string          `json:"checksum"` // hex SHA-256 of Payload
	Payload  json.RawMessage `json:"payload"`
}

// Seal marshals payload and wraps it in a versioned, checksummed
// envelope. The result is self-contained: Open needs nothing but the
// bytes.
func Seal(payload any) ([]byte, error) {
	return SealAs(Format, Version, payload)
}

// SealAs is Seal for other on-disk artefacts that reuse the envelope
// idiom (the history-log manifest, for one) under their own format
// discriminator and version. The result is self-contained: OpenAs needs
// nothing but the bytes.
func SealAs(format string, version int, payload any) ([]byte, error) {
	raw, err := json.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: seal %s: %w", format, err)
	}
	sum := sha256.Sum256(raw)
	out, err := json.Marshal(envelope{
		Format:   format,
		Version:  version,
		Checksum: hex.EncodeToString(sum[:]),
		Payload:  raw,
	})
	if err != nil {
		return nil, fmt.Errorf("checkpoint: seal %s: %w", format, err)
	}
	return out, nil
}

// Open verifies the envelope around data — format, version, checksum —
// and unmarshals the payload into out. Any failure returns a descriptive
// error with out untouched by meaningful data; callers must not use out
// unless Open returns nil.
func Open(data []byte, out any) error {
	return OpenAs(data, Format, Version, out)
}

// OpenAs is Open for envelopes sealed by SealAs under a different format
// discriminator and version. The all-or-nothing guarantee is identical.
func OpenAs(data []byte, format string, version int, out any) error {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return fmt.Errorf("checkpoint: open: malformed envelope (truncated or not a checkpoint): %w", err)
	}
	if env.Format != format {
		return fmt.Errorf("checkpoint: open: format %q, want %q", env.Format, format)
	}
	if env.Version != version {
		return fmt.Errorf("checkpoint: open: unsupported version %d (this build reads version %d)", env.Version, version)
	}
	sum := sha256.Sum256(env.Payload)
	if got := hex.EncodeToString(sum[:]); got != env.Checksum {
		return fmt.Errorf("checkpoint: open: payload checksum mismatch (got %s, recorded %s): checkpoint is corrupt", got, env.Checksum)
	}
	if err := json.Unmarshal(env.Payload, out); err != nil {
		return fmt.Errorf("checkpoint: open: payload does not decode: %w", err)
	}
	return nil
}

// HistoryRef is a checkpoint's durable position in a session's
// log-structured history (internal/histlog): everything the restore
// path needs to cut the on-disk log back to exactly the state this
// checkpoint covers and replay the view from segments instead of an
// embedded snapshot. It deliberately holds no directory path — the
// history location is pipeline configuration, like the device chain,
// and a checkpoint must restore on a machine with a different root.
type HistoryRef struct {
	// Windows is the number of committed windows the log covers (the
	// next window entry appended will be window index Windows).
	Windows int `json:"windows"`
	// Seq is the view/merger event cursor after the last covered window.
	Seq int `json:"seq"`
	// HotHorizon echoes the session's tiering horizon in frames, so a
	// restore under a different horizon fails loudly instead of
	// rebuilding a differently tiered view.
	HotHorizon int `json:"hot_horizon"`
}

// WindowRecord mirrors ingest.WindowResult in a package that the ingest
// package can depend on without a cycle.
type WindowRecord struct {
	Window      video.Window    `json:"window"`
	Pairs       int             `json:"pairs"`
	Selected    []video.PairKey `json:"selected,omitempty"`
	Merged      []video.PairKey `json:"merged,omitempty"`
	Degraded    bool            `json:"degraded,omitempty"`
	Quarantined int             `json:"quarantined,omitempty"`
	// Events is the window's slice of the ordered merge-event log and
	// Queries the per-subscription incremental output, carried so the
	// restored session's Results are bit-identical to the original's.
	Events  []core.MergeEvent `json:"events,omitempty"`
	Queries []QueryRecord     `json:"queries,omitempty"`
}

// QueryRecord is one subscription's delta output for one window.
type QueryRecord struct {
	Name   string        `json:"name"`
	Deltas []query.Delta `json:"deltas,omitempty"`
}

// SubscriptionState is one subscribed incremental operator's
// checkpointed state, keyed by the subscription name the session
// registered it under. On restore the session parks these until
// Subscribe is called again with a matching name, which adopts the
// state instead of bootstrapping from scratch.
type SubscriptionState struct {
	Name string              `json:"name"`
	Op   query.OperatorState `json:"op"`
}

// RejectedRecord is one quarantined detection in the dead-letter buffer.
type RejectedRecord struct {
	// Frame is the stream frame at which the detection was rejected (for
	// frame-level rejects, the offending frame index itself).
	Frame  video.FrameIndex `json:"frame"`
	Det    video.BBox       `json:"det"`
	Reason string           `json:"reason"`
}

// QuarantineState is the serialisable quarantine ledger: per-reason
// counters plus the capped dead-letter buffer.
type QuarantineState struct {
	Cap           int              `json:"cap"`
	TotalRejected int              `json:"total_rejected"`
	Dropped       int              `json:"dropped"`
	Counts        map[string]int   `json:"counts,omitempty"`
	Rejected      []RejectedRecord `json:"rejected,omitempty"`
}

// SessionState is the full checkpoint payload of one streaming ingestion
// session. The config/model echoes exist so Restore can verify the
// caller reassembled an equivalent pipeline (same windowing, same
// algorithm, same tracker preset, same ReID model) before any state is
// applied — restoring against a different pipeline would not fail, it
// would silently diverge, which is worse.
type SessionState struct {
	// Configuration echoes.
	WindowLen  int     `json:"window_len"`
	K          float64 `json:"k"`
	Algorithm  string  `json:"algorithm"`
	ModelInDim int     `json:"model_in_dim"`
	ModelScale float64 `json:"model_scale"`

	// Cursors.
	NextFrame  video.FrameIndex `json:"next_frame"`
	NextWindow int              `json:"next_window"`

	// Component states.
	Stream  track.StreamState `json:"stream"`
	PrevTc  []*video.Track    `json:"prev_tc,omitempty"`
	Merger  core.MergerState  `json:"merger"`
	Oracle  reid.OracleState  `json:"oracle"`
	Results []WindowRecord    `json:"results,omitempty"`

	// QuarantineMark is the TotalRejected reading at the last window
	// close, from which per-window quarantine deltas continue.
	Quarantine     QuarantineState `json:"quarantine"`
	QuarantineMark int             `json:"quarantine_mark"`

	// Streaming-query state, present only when the session had live
	// subscriptions. View is the materialised merged-track view as of the
	// last committed window; Subscriptions carries each registered
	// operator's state (registration order first, then any still-parked
	// restored states sorted by name).
	View          *trackdb.ViewState  `json:"view,omitempty"`
	Subscriptions []SubscriptionState `json:"subscriptions,omitempty"`

	// History, when present, marks a session with an on-disk
	// log-structured history: the checkpoint references the sealed
	// segment manifest position instead of embedding the view (View is
	// omitted and MergerState carries only the untrimmed event suffix);
	// restore truncates the log to this position and replays the view
	// from segments.
	History *HistoryRef `json:"history,omitempty"`

	// Device chain state. ClockNS is the shared virtual clock; the
	// resilient and fault-injection snapshots are present only when the
	// session's oracle ran on the corresponding wrappers.
	ClockNS   int64                  `json:"clock_ns"`
	Resilient *device.ResilientState `json:"resilient,omitempty"`
	Flaky     *fault.FlakyState      `json:"flaky,omitempty"`

	// CreatedAtFrame duplicates NextFrame for human inspection of
	// checkpoint files (the cursor names are internal).
	CreatedAtFrame video.FrameIndex `json:"created_at_frame"`
}

// Elapsed returns the snapshotted virtual clock reading.
func (s *SessionState) Elapsed() time.Duration { return time.Duration(s.ClockNS) }
