// Package checkpoint implements the durability format for streaming
// ingestion sessions: a versioned, checksummed JSON envelope (Seal/Open)
// and the SessionState payload that captures everything an interrupted
// ingest.Ingestor needs to resume deterministically — tracker hypotheses
// with their Kalman filters and appearance EMAs, the identity map, the
// ReID feature cache and work counters, device resilience state (circuit
// breaker, jitter RNG, fault-injection cursor), the virtual clock, the
// quarantine ledger, and the frame/window cursors.
//
// The format guarantee is all-or-nothing: Open either yields the exact
// payload Seal wrote or a descriptive error. A truncated file fails JSON
// decoding; a bit flip anywhere in the payload fails the SHA-256
// checksum; an envelope from a future (or unknown) format version is
// refused before the payload is looked at. Restore code therefore never
// sees — and can never apply — a partially valid session.
package checkpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"github.com/tmerge/tmerge/internal/core"
	"github.com/tmerge/tmerge/internal/device"
	"github.com/tmerge/tmerge/internal/fault"
	"github.com/tmerge/tmerge/internal/query"
	"github.com/tmerge/tmerge/internal/reid"
	"github.com/tmerge/tmerge/internal/track"
	"github.com/tmerge/tmerge/internal/trackdb"
	"github.com/tmerge/tmerge/internal/video"
)

// Format is the envelope's format discriminator.
const Format = "tmerge/checkpoint"

// Version is the current payload schema version. Readers refuse
// envelopes with a different version: the schema carries Kalman filter
// internals and RNG states whose meaning is pinned to the code that
// wrote them, so silent cross-version reads would break the replay
// guarantee in ways no checksum can catch.
//
// Version 2 added the streaming-query state: the merger's ordered
// merge-event log inside MergerState, per-window Events and Queries on
// WindowRecord, and the live-view plus subscription snapshots
// (SessionState.View, SessionState.Subscriptions) that let a restored
// session resume incremental query processing without recomputation.
const Version = 2

// envelope is the on-disk wrapper. Payload keeps the exact bytes the
// checksum was computed over, so verification is byte-precise regardless
// of how the outer JSON was formatted or re-encoded.
type envelope struct {
	Format   string          `json:"format"`
	Version  int             `json:"version"`
	Checksum string          `json:"checksum"` // hex SHA-256 of Payload
	Payload  json.RawMessage `json:"payload"`
}

// Seal marshals payload and wraps it in a versioned, checksummed
// envelope. The result is self-contained: Open needs nothing but the
// bytes.
func Seal(payload any) ([]byte, error) {
	raw, err := json.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: seal: %w", err)
	}
	sum := sha256.Sum256(raw)
	out, err := json.Marshal(envelope{
		Format:   Format,
		Version:  Version,
		Checksum: hex.EncodeToString(sum[:]),
		Payload:  raw,
	})
	if err != nil {
		return nil, fmt.Errorf("checkpoint: seal: %w", err)
	}
	return out, nil
}

// Open verifies the envelope around data — format, version, checksum —
// and unmarshals the payload into out. Any failure returns a descriptive
// error with out untouched by meaningful data; callers must not use out
// unless Open returns nil.
func Open(data []byte, out any) error {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return fmt.Errorf("checkpoint: open: malformed envelope (truncated or not a checkpoint): %w", err)
	}
	if env.Format != Format {
		return fmt.Errorf("checkpoint: open: format %q, want %q", env.Format, Format)
	}
	if env.Version != Version {
		return fmt.Errorf("checkpoint: open: unsupported version %d (this build reads version %d)", env.Version, Version)
	}
	sum := sha256.Sum256(env.Payload)
	if got := hex.EncodeToString(sum[:]); got != env.Checksum {
		return fmt.Errorf("checkpoint: open: payload checksum mismatch (got %s, recorded %s): checkpoint is corrupt", got, env.Checksum)
	}
	if err := json.Unmarshal(env.Payload, out); err != nil {
		return fmt.Errorf("checkpoint: open: payload does not decode: %w", err)
	}
	return nil
}

// WindowRecord mirrors ingest.WindowResult in a package that the ingest
// package can depend on without a cycle.
type WindowRecord struct {
	Window      video.Window    `json:"window"`
	Pairs       int             `json:"pairs"`
	Selected    []video.PairKey `json:"selected,omitempty"`
	Merged      []video.PairKey `json:"merged,omitempty"`
	Degraded    bool            `json:"degraded,omitempty"`
	Quarantined int             `json:"quarantined,omitempty"`
	// Events is the window's slice of the ordered merge-event log and
	// Queries the per-subscription incremental output, carried so the
	// restored session's Results are bit-identical to the original's.
	Events  []core.MergeEvent `json:"events,omitempty"`
	Queries []QueryRecord     `json:"queries,omitempty"`
}

// QueryRecord is one subscription's delta output for one window.
type QueryRecord struct {
	Name   string        `json:"name"`
	Deltas []query.Delta `json:"deltas,omitempty"`
}

// SubscriptionState is one subscribed incremental operator's
// checkpointed state, keyed by the subscription name the session
// registered it under. On restore the session parks these until
// Subscribe is called again with a matching name, which adopts the
// state instead of bootstrapping from scratch.
type SubscriptionState struct {
	Name string              `json:"name"`
	Op   query.OperatorState `json:"op"`
}

// RejectedRecord is one quarantined detection in the dead-letter buffer.
type RejectedRecord struct {
	// Frame is the stream frame at which the detection was rejected (for
	// frame-level rejects, the offending frame index itself).
	Frame  video.FrameIndex `json:"frame"`
	Det    video.BBox       `json:"det"`
	Reason string           `json:"reason"`
}

// QuarantineState is the serialisable quarantine ledger: per-reason
// counters plus the capped dead-letter buffer.
type QuarantineState struct {
	Cap           int              `json:"cap"`
	TotalRejected int              `json:"total_rejected"`
	Dropped       int              `json:"dropped"`
	Counts        map[string]int   `json:"counts,omitempty"`
	Rejected      []RejectedRecord `json:"rejected,omitempty"`
}

// SessionState is the full checkpoint payload of one streaming ingestion
// session. The config/model echoes exist so Restore can verify the
// caller reassembled an equivalent pipeline (same windowing, same
// algorithm, same tracker preset, same ReID model) before any state is
// applied — restoring against a different pipeline would not fail, it
// would silently diverge, which is worse.
type SessionState struct {
	// Configuration echoes.
	WindowLen  int     `json:"window_len"`
	K          float64 `json:"k"`
	Algorithm  string  `json:"algorithm"`
	ModelInDim int     `json:"model_in_dim"`
	ModelScale float64 `json:"model_scale"`

	// Cursors.
	NextFrame  video.FrameIndex `json:"next_frame"`
	NextWindow int              `json:"next_window"`

	// Component states.
	Stream  track.StreamState `json:"stream"`
	PrevTc  []*video.Track    `json:"prev_tc,omitempty"`
	Merger  core.MergerState  `json:"merger"`
	Oracle  reid.OracleState  `json:"oracle"`
	Results []WindowRecord    `json:"results,omitempty"`

	// QuarantineMark is the TotalRejected reading at the last window
	// close, from which per-window quarantine deltas continue.
	Quarantine     QuarantineState `json:"quarantine"`
	QuarantineMark int             `json:"quarantine_mark"`

	// Streaming-query state, present only when the session had live
	// subscriptions. View is the materialised merged-track view as of the
	// last committed window; Subscriptions carries each registered
	// operator's state (registration order first, then any still-parked
	// restored states sorted by name).
	View          *trackdb.ViewState  `json:"view,omitempty"`
	Subscriptions []SubscriptionState `json:"subscriptions,omitempty"`

	// Device chain state. ClockNS is the shared virtual clock; the
	// resilient and fault-injection snapshots are present only when the
	// session's oracle ran on the corresponding wrappers.
	ClockNS   int64                  `json:"clock_ns"`
	Resilient *device.ResilientState `json:"resilient,omitempty"`
	Flaky     *fault.FlakyState      `json:"flaky,omitempty"`

	// CreatedAtFrame duplicates NextFrame for human inspection of
	// checkpoint files (the cursor names are internal).
	CreatedAtFrame video.FrameIndex `json:"created_at_frame"`
}

// Elapsed returns the snapshotted virtual clock reading.
func (s *SessionState) Elapsed() time.Duration { return time.Duration(s.ClockNS) }
