// Package loadgen generates deterministic multi-stream load for the
// serving layer: N synthetic camera streams over the synth scene
// simulator, sharing one base seed with a fixed per-stream offset, so
// servebench, the chaos test, and the tmerged soak all reproduce the
// exact same fleet from (seed, streams, frames) alone. cmd/datagen's
// -streams flag materialises the same fleet to disk.
package loadgen

import (
	"fmt"

	"github.com/tmerge/tmerge/internal/dataset"
	"github.com/tmerge/tmerge/internal/synth"
)

// seedStride separates per-stream seeds: the golden-ratio stride the
// dataset curation loop also uses, far apart in the seed space while
// derived from one shared base.
const seedStride = 0x9E3779B97F4A7C15

// StreamSeed derives stream i's scene seed from the shared base seed.
// Every consumer of the multi-stream fixtures (servebench, the chaos
// test, datagen -streams) must use this derivation so their fleets are
// interchangeable.
func StreamSeed(base uint64, i int) uint64 {
	return base + uint64(i)*seedStride
}

// StreamName names stream i of a fleet.
func StreamName(i int) string { return fmt.Sprintf("stream-%02d", i) }

// Config parameterises a generated fleet.
type Config struct {
	// Seed is the shared base seed; stream i runs at StreamSeed(Seed, i).
	Seed uint64
	// Streams is the fleet size.
	Streams int
	// Frames overrides the template's NumFrames when positive.
	Frames int
	// Template is the scene configuration every stream shares (Seed and
	// Name are overridden per stream). Zero-valued fields take
	// DefaultTemplate.
	Template synth.Config
}

// DefaultTemplate is a compact street-camera scene: small enough that a
// hundred streams generate in seconds, busy enough that every window
// has real pairs to select over. The appearance dimensionality matches
// dataset.AppearanceDim so the standard suite ReID model applies.
func DefaultTemplate() synth.Config {
	return synth.Config{
		NumFrames: 300, Width: 800, Height: 600,
		ArrivalRate: 0.05, MaxObjects: 6, MinSpan: 40, MaxSpan: 200,
		SpeedMin: 0.5, SpeedMax: 2.0, SizeMin: 50, SizeMax: 110,
		PosJitter:     0.6,
		AppearanceDim: dataset.AppearanceDim, AppearanceNoise: 0.06,
		PosAppearanceWeight: 0.45, AppearanceDrift: 0.004,
		OutlierProb: 0.2, OutlierNoise: 0.15,
		OcclusionCoverage: 0.45, MissProb: 0.02,
		GlareRate: 0.01, GlareDuration: 30, GlareSize: 200,
	}
}

// Stream is one generated camera stream.
type Stream struct {
	ID    string
	Seed  uint64
	Video *synth.Video
}

// Generate materialises the fleet.
func Generate(cfg Config) ([]Stream, error) {
	if cfg.Streams <= 0 {
		return nil, fmt.Errorf("loadgen: Streams must be positive, got %d", cfg.Streams)
	}
	tmpl := cfg.Template
	if tmpl.NumFrames == 0 && tmpl.Width == 0 {
		tmpl = DefaultTemplate()
	}
	if cfg.Frames > 0 {
		tmpl.NumFrames = cfg.Frames
	}
	out := make([]Stream, 0, cfg.Streams)
	for i := 0; i < cfg.Streams; i++ {
		sc := tmpl
		sc.Seed = StreamSeed(cfg.Seed, i)
		sc.Name = StreamName(i)
		v, err := synth.Generate(sc)
		if err != nil {
			return nil, fmt.Errorf("loadgen: stream %d: %w", i, err)
		}
		out = append(out, Stream{ID: sc.Name, Seed: sc.Seed, Video: v})
	}
	return out, nil
}
