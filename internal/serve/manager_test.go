package serve

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/tmerge/tmerge/internal/core"
	"github.com/tmerge/tmerge/internal/dataset"
	"github.com/tmerge/tmerge/internal/device"
	"github.com/tmerge/tmerge/internal/fault"
	"github.com/tmerge/tmerge/internal/ingest"
	"github.com/tmerge/tmerge/internal/reid"
	"github.com/tmerge/tmerge/internal/serve/loadgen"
	"github.com/tmerge/tmerge/internal/track"
	"github.com/tmerge/tmerge/internal/video"
)

// checkNoGoroutineLeak fails the test if the goroutine count has not
// returned to (roughly) its before-value within a few seconds — the
// manager's contract is that no worker or supervisor goroutine outlives
// Shutdown (the PR 4 executor leak-check idiom).
func checkNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after", before, now)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// testFault is the scripted fault profile the serving tests reuse: a
// deterministic outage early in the stream plus a low transient rate.
func testFault(seed uint64) fault.Config {
	return fault.Config{
		Seed:           seed,
		TransientRate:  0.05,
		FailureLatency: 50 * time.Microsecond,
		Schedule:       fault.NewSchedule(fault.Outage{From: 4, To: 10}),
	}
}

// testPipeline builds a per-stream pipeline factory: fresh engine,
// model, oracle, and device chain per call, as PipelineFactory demands.
// A nil fault config yields a plain CPU device; otherwise the chain is
// CPU → Flaky(fc) → ResilientDevice.
func testPipeline(seed uint64, fc *fault.Config) PipelineFactory {
	return func() (*track.Engine, *reid.Oracle) {
		var dev device.Device = device.NewCPU(device.DefaultCPU)
		if fc != nil {
			dev = device.NewResilientDevice(
				fault.NewFlaky(dev, *fc),
				device.RetryPolicy{MaxAttempts: 2, Jitter: -1},
				device.BreakerConfig{Threshold: 2, Cooldown: -1, CooldownRejections: -1},
				seed^0xD1CE)
		}
		model := reid.NewModel(seed^0x5EED, dataset.AppearanceDim)
		return track.Tracktor(), reid.NewOracle(model, dev)
	}
}

// testIngestCfg returns a fresh streaming configuration (fresh algorithm
// instance — algorithm instances must not be shared across streams).
func testIngestCfg(seed uint64, windowLen, ckptEvery int) ingest.Config {
	tc := core.DefaultTMergeConfig(seed)
	tc.TauMax = 300
	return ingest.Config{
		WindowLen:           windowLen,
		K:                   0.05,
		Algorithm:           core.NewTMerge(tc),
		AutoCheckpointEvery: ckptEvery,
		CheckpointSink:      func([]byte) error { return nil },
		Workers:             1,
	}
}

// ingestFrame converts a loop index to a frame index.
func ingestFrame(f int) video.FrameIndex { return video.FrameIndex(f) }

func TestAdmissionRejects(t *testing.T) {
	before := runtime.NumGoroutine()
	m := NewManager(Config{Workers: 1, WindowBudget: 2, DefaultQueueCap: 100})
	defer func() {
		m.Shutdown()
		checkNoGoroutineLeak(t, before)
	}()

	// Cost = ceil(100 / 50) = 2 windows: the first stream consumes the
	// whole budget.
	specA := StreamSpec{ID: "a", Ingest: testIngestCfg(1, 100, 0), Pipeline: testPipeline(1, nil)}
	if err := m.Register(specA); err != nil {
		t.Fatalf("register a: %v", err)
	}
	specB := StreamSpec{ID: "b", Ingest: testIngestCfg(2, 100, 0), Pipeline: testPipeline(2, nil)}
	if err := m.Register(specB); !errors.Is(err, ErrAdmission) {
		t.Fatalf("register b: got %v, want ErrAdmission", err)
	}
}

func TestAdmissionQueuesUntilCapacityFrees(t *testing.T) {
	before := runtime.NumGoroutine()
	m := NewManager(Config{Workers: 1, WindowBudget: 2, QueueAdmission: true, DefaultQueueCap: 100})
	defer func() {
		m.Shutdown()
		checkNoGoroutineLeak(t, before)
	}()
	streams, err := loadgen.Generate(loadgen.Config{Seed: 11, Streams: 2, Frames: 120})
	if err != nil {
		t.Fatal(err)
	}

	if err := m.Register(StreamSpec{ID: "a", Ingest: testIngestCfg(1, 100, 0), Pipeline: testPipeline(1, nil)}); err != nil {
		t.Fatalf("register a: %v", err)
	}
	if err := m.Register(StreamSpec{ID: "b", Ingest: testIngestCfg(2, 100, 0), Pipeline: testPipeline(2, nil)}); err != nil {
		t.Fatalf("register b (queued): %v", err)
	}
	if got := m.Snapshot()[1].State; got != Pending {
		t.Fatalf("stream b state = %v, want Pending", got)
	}
	if err := m.Push("b", 0, nil); !errors.Is(err, ErrNotAdmitted) {
		t.Fatalf("push to pending stream: got %v, want ErrNotAdmitted", err)
	}

	for f, dets := range streams[0].Video.Detections {
		if err := m.Push("a", ingestFrame(f), dets); err != nil {
			t.Fatalf("push a: %v", err)
		}
	}
	if _, err := m.Finish("a"); err != nil {
		t.Fatalf("finish a: %v", err)
	}

	// Finishing a releases the budget; b is admitted asynchronously.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := m.Snapshot()[1]; st.State == Healthy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stream b never admitted: %+v", m.Snapshot()[1])
		}
		time.Sleep(time.Millisecond)
	}
	for f, dets := range streams[1].Video.Detections {
		if err := m.Push("b", ingestFrame(f), dets); err != nil {
			t.Fatalf("push b: %v", err)
		}
	}
	res, err := m.Finish("b")
	if err != nil {
		t.Fatalf("finish b: %v", err)
	}
	if res.FramesProcessed != streams[1].Video.NumFrames {
		t.Fatalf("stream b processed %d frames, want %d", res.FramesProcessed, streams[1].Video.NumFrames)
	}
}

func TestShedReturnsTypedOverloadAndRecoveryDrains(t *testing.T) {
	before := runtime.NumGoroutine()
	streams, err := loadgen.Generate(loadgen.Config{Seed: 21, Streams: 1, Frames: 40})
	if err != nil {
		t.Fatal(err)
	}
	v := streams[0].Video

	// The factory blocks on its second call (the recovery rebuild) until
	// the test releases it, holding the stream in Recovering so its
	// bounded queue can be filled deterministically.
	release := make(chan struct{})
	var calls atomic.Int64
	inner := testPipeline(21, nil)
	factory := func() (*track.Engine, *reid.Oracle) {
		if calls.Add(1) > 1 {
			<-release
		}
		return inner()
	}

	m := NewManager(Config{Workers: 1, Shed: true, DefaultQueueCap: 4, TurnFrames: 4})
	defer func() {
		m.Shutdown()
		checkNoGoroutineLeak(t, before)
	}()
	cfg := testIngestCfg(21, 20, 0)
	if err := m.Register(StreamSpec{ID: "s", Ingest: cfg, Pipeline: factory, CrashAtFrame: 1}); err != nil {
		t.Fatal(err)
	}

	// Frames 0 and 1: the injected crash fires before frame 1, after
	// which the supervisor blocks in the factory.
	for f := 0; f < 2; f++ {
		if err := m.Push("s", ingestFrame(f), v.Detections[f]); err != nil {
			t.Fatalf("push %d: %v", f, err)
		}
	}
	waitFor(t, func() bool {
		st := m.Snapshot()[0]
		return st.State == Recovering && st.Queued == 0
	}, "stream quarantined and drained into recovery")

	// The stream is not schedulable while recovering: four more frames
	// fill the bounded queue, the fifth sheds with the typed error.
	for f := 2; f < 6; f++ {
		if err := m.Push("s", ingestFrame(f), v.Detections[f]); err != nil {
			t.Fatalf("push %d: %v", f, err)
		}
	}
	if err := m.Push("s", 6, v.Detections[6]); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("push to full queue: got %v, want ErrOverloaded", err)
	}

	close(release)
	res, err := m.Finish("s")
	if err != nil {
		t.Fatalf("finish: %v", err)
	}
	if got := m.Snapshot()[0]; got.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", got.Restarts)
	}

	// Recovery without a checkpoint replays the full history: the result
	// must still match the sequential run over the frames that were
	// accepted (0..5; frame 6 was shed).
	engine, oracle := inner()
	ref, err := ingest.New(engine, oracle, testIngestCfg(21, 20, 0))
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 6; f++ {
		ref.PushAt(ingestFrame(f), v.Detections[f])
	}
	ref.Close()
	if got, want := res.Fingerprint(), ref.Result().Fingerprint(); got != want {
		t.Fatalf("recovered fingerprint %s != sequential %s", got, want)
	}
}

func TestRoundRobinFairness(t *testing.T) {
	before := runtime.NumGoroutine()
	streams, err := loadgen.Generate(loadgen.Config{Seed: 31, Streams: 2, Frames: 64})
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var order []string
	m := NewManager(Config{
		Workers: 1, TurnFrames: 4, DefaultQueueCap: 64,
		OnWindow: func(id string, _ ingest.WindowResult, _ time.Duration) {
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
		},
	})
	defer func() {
		m.Shutdown()
		checkNoGoroutineLeak(t, before)
	}()

	for i, id := range []string{"hot", "cold"} {
		cfg := testIngestCfg(uint64(31+i), 8, 0)
		if err := m.Register(StreamSpec{ID: id, Ingest: cfg, Pipeline: testPipeline(uint64(31+i), nil)}); err != nil {
			t.Fatal(err)
		}
	}
	// The hot stream queues 64 frames, then the cold stream queues 16.
	// Round-robin with a 4-frame turn bound must interleave them: the
	// cold stream's first window may not wait for the hot stream's last.
	for f := 0; f < 64; f++ {
		if err := m.Push("hot", ingestFrame(f), streams[0].Video.Detections[f]); err != nil {
			t.Fatal(err)
		}
	}
	for f := 0; f < 16; f++ {
		if err := m.Push("cold", ingestFrame(f), streams[1].Video.Detections[f]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Finish("hot"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Finish("cold"); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	firstCold, lastHot := -1, -1
	for i, id := range order {
		if id == "cold" && firstCold < 0 {
			firstCold = i
		}
		if id == "hot" {
			lastHot = i
		}
	}
	if firstCold < 0 || lastHot < 0 {
		t.Fatalf("missing windows in order %v", order)
	}
	if firstCold > lastHot {
		t.Fatalf("cold stream starved: first cold window at %d, last hot window at %d (order %v)", firstCold, lastHot, order)
	}
}

func TestShutdownIdempotentAndRefusesWork(t *testing.T) {
	before := runtime.NumGoroutine()
	m := NewManager(Config{Workers: 2})
	if err := m.Register(StreamSpec{ID: "s", Ingest: testIngestCfg(41, 20, 0), Pipeline: testPipeline(41, nil)}); err != nil {
		t.Fatal(err)
	}
	m.Shutdown()
	m.Shutdown() // idempotent
	if err := m.Push("s", 0, nil); !errors.Is(err, ErrStopped) {
		t.Fatalf("push after shutdown: got %v, want ErrStopped", err)
	}
	if err := m.Register(StreamSpec{ID: "t", Ingest: testIngestCfg(42, 20, 0), Pipeline: testPipeline(42, nil)}); !errors.Is(err, ErrStopped) {
		t.Fatalf("register after shutdown: got %v, want ErrStopped", err)
	}
	if _, err := m.Finish("s"); !errors.Is(err, ErrStopped) {
		t.Fatalf("finish after shutdown: got %v, want ErrStopped", err)
	}
	checkNoGoroutineLeak(t, before)
}

func TestRegisterValidation(t *testing.T) {
	before := runtime.NumGoroutine()
	m := NewManager(Config{Workers: 1})
	defer func() {
		m.Shutdown()
		checkNoGoroutineLeak(t, before)
	}()
	if err := m.Register(StreamSpec{ID: "", Ingest: testIngestCfg(1, 20, 0), Pipeline: testPipeline(1, nil)}); err == nil {
		t.Fatal("empty id accepted")
	}
	if err := m.Register(StreamSpec{ID: "x", Ingest: testIngestCfg(1, 20, 0)}); err == nil {
		t.Fatal("nil factory accepted")
	}
	bad := testIngestCfg(1, 20, 0)
	bad.WindowLen = 7 // odd
	if err := m.Register(StreamSpec{ID: "x", Ingest: bad, Pipeline: testPipeline(1, nil)}); err == nil {
		t.Fatal("invalid ingest config accepted")
	}
	if err := m.Register(StreamSpec{ID: "x", Ingest: testIngestCfg(1, 20, 0), Pipeline: testPipeline(1, nil)}); err != nil {
		t.Fatal(err)
	}
	if err := m.Register(StreamSpec{ID: "x", Ingest: testIngestCfg(2, 20, 0), Pipeline: testPipeline(2, nil)}); !errors.Is(err, ErrDuplicateStream) {
		t.Fatalf("duplicate id: got %v, want ErrDuplicateStream", err)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}
