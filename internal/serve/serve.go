// Package serve is the multi-stream serving layer: a StreamManager that
// owns N per-stream ingestion sessions sharded across a bounded shared
// worker pool, the substrate a tmerged deployment multiplexes hundreds
// of camera streams over (see DESIGN.md §12).
//
// The design splits the shared from the isolated:
//
//   - Shared: the worker pool and its fair (round-robin) ready queue.
//     A stream is scheduled for a bounded turn of frames, then requeued
//     behind every other waiting stream, so one hot stream cannot starve
//     the rest.
//   - Isolated: everything determinism-bearing. Each stream owns its
//     tracker engine, ReID oracle, and device chain (fault injector,
//     resilient wrapper, virtual clock), built by its own
//     PipelineFactory. Streams therefore never interleave on a shared
//     clock or fault schedule, which is what makes a stream's result
//     bit-identical to its single-stream sequential run regardless of
//     pool size — the property the chaos test pins.
//
// Admission control bounds the fleet: registration accounts each stream
// a window budget derived from its queue capacity, and over-budget
// registrations are rejected (ErrAdmission) or parked (Pending) until
// capacity frees. Backpressure bounds each stream: Push either blocks
// for queue room or sheds with ErrOverloaded. Supervision keeps the
// fleet healthy: a panicked stream is quarantined and restarted from its
// latest periodic checkpoint, with the frames pushed since that
// checkpoint replayed from a per-stream replay buffer — bit-identical
// resumption, proven by the fingerprint comparison in the chaos test.
package serve

import (
	"errors"
	"path/filepath"
	"time"

	"github.com/tmerge/tmerge/internal/ingest"
	"github.com/tmerge/tmerge/internal/reid"
	"github.com/tmerge/tmerge/internal/track"
)

// Typed serving-layer errors; match with errors.Is.
var (
	// ErrOverloaded reports a shed Push: the stream's bounded frame
	// queue is full and the manager is configured to shed rather than
	// block.
	ErrOverloaded = errors.New("serve: stream frame queue full")
	// ErrAdmission reports a rejected registration: admitting the stream
	// would push the aggregate in-flight window budget past the limit.
	ErrAdmission = errors.New("serve: admission budget exceeded")
	// ErrNotAdmitted reports an operation on a stream still parked in the
	// admission queue.
	ErrNotAdmitted = errors.New("serve: stream awaiting admission")
	// ErrStopped reports an operation against a shut-down manager.
	ErrStopped = errors.New("serve: manager shut down")
	// ErrDraining reports a Push or Register against a manager that has
	// begun a Drain: intake is closed so queued frames can flush to a
	// final checkpoint, but in-flight work is still completing.
	ErrDraining = errors.New("serve: manager draining")
	// ErrStreamClosed reports a Push or Finish against a stream whose
	// input was already closed.
	ErrStreamClosed = errors.New("serve: stream input closed")
	// ErrUnknownStream reports an operation naming no registered stream.
	ErrUnknownStream = errors.New("serve: unknown stream")
	// ErrDuplicateStream reports a registration reusing a live stream ID.
	ErrDuplicateStream = errors.New("serve: duplicate stream id")
)

// Health is a stream's supervision state.
type Health int

// Stream health states, in escalation order. Healthy and Degraded
// streams are schedulable; Pending streams await admission; Quarantined
// streams await (or failed) recovery; Recovering streams are being
// restored from checkpoint by the supervisor; Stopped streams finished.
const (
	Pending Health = iota
	Healthy
	Degraded
	Quarantined
	Recovering
	Stopped
)

// String implements fmt.Stringer.
func (h Health) String() string {
	switch h {
	case Pending:
		return "pending"
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Quarantined:
		return "quarantined"
	case Recovering:
		return "recovering"
	case Stopped:
		return "stopped"
	}
	return "unknown"
}

// PipelineFactory builds one stream's fully isolated processing
// pipeline: a fresh tracker engine and a fresh oracle with its own
// device chain (and virtual clock). The manager calls it at admission
// and again at every crash recovery, so it must return an equivalent,
// independently seeded pipeline each time — sharing a device, injector,
// or clock across calls (or across streams) breaks the bit-identical
// recovery and single-stream-equivalence guarantees.
type PipelineFactory func() (*track.Engine, *reid.Oracle)

// StreamSpec registers one stream.
type StreamSpec struct {
	// ID names the stream; it must be unique among live streams.
	ID string
	// Ingest configures the stream's ingestion session. The manager
	// installs its own CheckpointSink (chaining to any sink set here), so
	// setting AutoCheckpointEvery is how a stream opts into periodic
	// checkpoints — without them, crash recovery replays the stream's
	// entire history from the replay buffer, which the manager then
	// cannot truncate.
	Ingest ingest.Config
	// Pipeline builds the stream's isolated engine/oracle/device chain.
	Pipeline PipelineFactory
	// QueueCap bounds this stream's frame queue; 0 takes the manager's
	// DefaultQueueCap.
	QueueCap int
	// CrashAtFrame, when positive, injects exactly one supervised crash:
	// the first time a worker is about to process a frame at or past this
	// index, the turn panics before the frame reaches the ingestor. The
	// supervisor quarantines and recovers the stream; the frame itself is
	// replayed, so it is processed exactly once. For chaos testing.
	CrashAtFrame int
	// Resume, when non-empty, registers the stream mid-history: the
	// session is rebuilt from these checkpoint bytes (ingest.Restore
	// against a fresh Pipeline() chain) instead of starting empty, and
	// the first accepted frame continues from the restored cursor. This
	// is how a restarted daemon re-admits streams drained to checkpoint
	// by a previous incarnation (see Manager.Drain).
	Resume []byte
}

// HistoryRoot enables per-stream log-structured histories: every
// admitted stream whose spec does not already carry its own
// ingest.HistoryConfig journals its committed windows to a segmented
// on-disk log under Dir/<stream-id>, tiers its in-memory view at the
// hot horizon, and serves time-travel cuts through Manager.AsOf. The
// manager's drain checkpoint seals each stream's active segment (the
// seal is part of ingest.Checkpoint), so the returned resume bytes and
// the on-disk logs always agree; a successor manager configured with
// the same root restores each stream from its own directory.
type HistoryRoot struct {
	// Dir is the root directory; each stream's log lives in Dir/<id>.
	// Stream IDs therefore double as directory names — Register rejects
	// IDs containing path separators or equal to "." / "..".
	Dir string
	// HotHorizon, WindowsPerSegment, and CompactEvery configure every
	// derived per-stream history; see ingest.HistoryConfig for the
	// semantics and zero-value defaults.
	HotHorizon        int
	WindowsPerSegment int
	CompactEvery      int
}

// config returns the per-stream ingest history configuration rooted at
// the stream's own directory.
func (h *HistoryRoot) config(id string) *ingest.HistoryConfig {
	return &ingest.HistoryConfig{
		Dir:               filepath.Join(h.Dir, id),
		HotHorizon:        h.HotHorizon,
		WindowsPerSegment: h.WindowsPerSegment,
		CompactEvery:      h.CompactEvery,
	}
}

// Config parameterises a Manager.
type Config struct {
	// Workers is the shared worker pool size; 0 defaults to 4. Streams
	// are processed one turn at a time, each turn by one worker; a
	// stream is never processed by two workers concurrently.
	Workers int
	// WindowBudget caps the aggregate in-flight window capacity across
	// admitted streams (each stream costs ceil(QueueCap / (WindowLen/2))
	// windows, at least 1). 0 disables admission control.
	WindowBudget int
	// QueueAdmission parks over-budget registrations (Pending) until
	// capacity frees instead of rejecting them with ErrAdmission.
	QueueAdmission bool
	// DefaultQueueCap bounds each stream's frame queue when its spec
	// does not choose one; 0 defaults to 64.
	DefaultQueueCap int
	// TurnFrames bounds how many queued frames one scheduling turn may
	// feed a stream before it is requeued behind the other ready
	// streams; 0 defaults to 16. Smaller values are fairer, larger
	// values amortise scheduling overhead.
	TurnFrames int
	// Shed makes Push return ErrOverloaded when the stream queue is full
	// instead of blocking for room.
	Shed bool
	// Now, when non-nil, reads wall time for per-window latency
	// observation. It must be injected by the caller — cmd/benchrunner
	// is on the determinism allowlist, this package is not. Nil disables
	// latency measurement (OnWindow sees zero latency).
	Now func() time.Time
	// OnWindow, when non-nil, observes every window a worker closes: the
	// stream, the window result, and the wall latency of the push that
	// closed it (zero without Now). It is called from worker goroutines
	// concurrently and must be safe for concurrent use. Windows re-closed
	// while replaying after a crash are not re-observed.
	OnWindow func(stream string, res ingest.WindowResult, latency time.Duration)
	// History, when non-nil, gives every admitted stream a log-structured
	// on-disk history under History.Dir/<stream-id> (specs carrying their
	// own Ingest.History keep it untouched). See HistoryRoot.
	History *HistoryRoot
}

// withDefaults fills zero-valued fields.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.DefaultQueueCap <= 0 {
		c.DefaultQueueCap = 64
	}
	if c.TurnFrames <= 0 {
		c.TurnFrames = 16
	}
	return c
}

// StreamStatus is one stream's health snapshot, the unit of the
// Manager.Snapshot API consumed by tmerged's status output. Every field
// is a detached copy safe to retain.
type StreamStatus struct {
	ID    string
	State Health
	// Frames is how many frames the stream cursor has passed.
	Frames int
	// Queued is how many pushed frames await processing.
	Queued int
	// Windows counts committed windows; DegradedWindows counts those
	// selected on the spatial prior during device unavailability.
	Windows         int
	DegradedWindows int
	// Restarts counts crash recoveries the supervisor performed.
	Restarts int
	// Quarantined is the stream's all-time rejected-detection count
	// (the ingest dead-letter ledger, not the stream's own quarantine
	// state).
	Quarantined int
	// Breaker is the stream's resilient-device breaker state ("closed",
	// "open", "half-open"), or "" when the stream has no resilient
	// device or no live session.
	Breaker string
	// HistoryHot and HistoryCold are the stream's tiered-view track
	// counts (resident vs summarised), refreshed at the end of every
	// turn that commits a window; both zero for streams without history.
	HistoryHot  int
	HistoryCold int
	// HistoryErr is the stream's first history-log failure, "" when none
	// (or no history). A failed log keeps the stream flowing but refuses
	// further checkpoints, so a drain cannot cover it.
	HistoryErr string
	// Err is the most recent crash or recovery failure, "" when none.
	Err string
}
