package serve

import (
	"fmt"
	"time"

	"github.com/tmerge/tmerge/internal/device"
	"github.com/tmerge/tmerge/internal/fault"
	"github.com/tmerge/tmerge/internal/ingest"
	"github.com/tmerge/tmerge/internal/video"
)

// retireDevice closes the resilient device (if any) in a discarded
// pipeline's chain. Best-effort: chains without a ResilientDevice have
// no lifecycle to end.
func retireDevice(in *ingest.Ingestor) {
	if in == nil {
		return
	}
	for d := in.Oracle().Device(); d != nil; {
		switch v := d.(type) {
		case *device.ResilientDevice:
			_ = v.Close()
			d = v.Inner()
		case *fault.Flaky:
			d = v.Inner()
		default:
			d = nil
		}
	}
}

// timePoint aliases time.Time for the latency bookkeeping; zero when no
// wall clock is injected.
type timePoint = time.Time

// pushItem is one queued frame.
type pushItem struct {
	frame video.FrameIndex
	dets  []video.BBox
}

// stream is the manager's per-stream record. Every field below the spec
// block is guarded by Manager.mu; the ingestor itself is touched only
// by whichever goroutine holds the stream's active flag (a worker turn,
// the supervisor's recovery, or Finish's final flush), plus the
// concurrently-safe monitoring accessors Snapshot uses.
type stream struct {
	id       string
	spec     StreamSpec
	cfg      ingest.Config // spec.Ingest with the manager's checkpoint sink installed
	queueCap int
	cost     int // admission budget units

	state       Health
	queue       []pushItem
	scheduled   bool // queued in Manager.ready
	active      bool // a goroutine is processing the stream
	inputClosed bool

	ing *ingest.Ingestor
	// ckpt is the latest sealed checkpoint; replay holds every frame
	// handed to the ingestor since ckpt was sealed (appended before the
	// push, truncated by the checkpoint sink), so ckpt+replay always
	// reconstructs the live session exactly.
	ckpt   []byte
	replay []pushItem

	lastErr    error
	restarts   int
	crashFired bool

	frames   int // frames the stream cursor has passed
	windows  int // committed windows
	degraded int // committed windows selected in degraded mode

	// Manager-guarded copies of the session's history accounting,
	// refreshed by whoever holds the active flag after committing
	// windows (the tiered view itself is not safe to read concurrently
	// with a turn, so Snapshot reports these copies instead).
	histHot  int
	histCold int
	histErr  string
}

// noteHistoryLocked refreshes the stream's history counters from its
// session. The caller must hold Manager.mu and the stream's active flag
// (the accessors read tiered-view state only the active holder may
// touch).
func (s *stream) noteHistoryLocked(ing *ingest.Ingestor) {
	hot, cold, _, _ := ing.HistoryStats()
	s.histHot, s.histCold = hot, cold
	s.histErr = ""
	if err := ing.HistoryErr(); err != nil {
		s.histErr = err.Error()
	}
}

// worker is one shared-pool goroutine: pop the next ready stream, feed
// it a bounded turn of queued frames, requeue it behind every other
// ready stream if frames remain. Round-robin through the FIFO plus the
// TurnFrames bound is the fairness guarantee — a hot stream advances at
// most TurnFrames frames per pass through the queue.
func (m *Manager) worker() {
	defer m.wg.Done()
	m.mu.Lock()
	for {
		if m.closed {
			m.mu.Unlock()
			return
		}
		if m.drainAbort {
			// An aborted drain wants quiescence, not progress: stop
			// dispatching turns so Drain can seal frame-boundary
			// checkpoints; Shutdown ends the wait.
			m.cond.Wait()
			continue
		}
		if len(m.ready) == 0 {
			m.cond.Wait()
			continue
		}
		s := m.ready[0]
		m.ready = m.ready[1:]
		s.scheduled = false
		if s.active || (s.state != Healthy && s.state != Degraded) || len(s.queue) == 0 {
			continue // quarantined, finished, or drained while waiting its turn
		}
		n := m.cfg.TurnFrames
		if n > len(s.queue) {
			n = len(s.queue)
		}
		batch := make([]pushItem, n)
		copy(batch, s.queue[:n])
		s.queue = append(s.queue[:0], s.queue[n:]...)
		s.active = true
		m.cond.Broadcast() // queue room freed: wake blocked pushes
		m.mu.Unlock()

		rem, err := m.runTurn(s, batch)

		m.mu.Lock()
		s.active = false
		if err != nil {
			// Fault isolation: this stream is quarantined for the
			// supervisor; every other stream keeps flowing. Frames the
			// turn had dequeued but not yet handed to the ingestor go
			// back to the queue front; the frame that crashed is already
			// in the replay buffer and will be replayed.
			s.state = Quarantined
			s.lastErr = err
			if len(rem) > 0 {
				s.queue = append(append(make([]pushItem, 0, len(rem)+len(s.queue)), rem...), s.queue...)
			}
			m.recoverq = append(m.recoverq, s)
		} else {
			m.scheduleLocked(s)
		}
		m.cond.Broadcast()
	}
}

// runTurn feeds one dequeued batch to the stream's ingestor, frame by
// frame, maintaining the replay invariant (a frame enters the replay
// buffer before it enters the ingestor) and firing the injected crash
// when the spec scripts one. A panic — injected or real — is converted
// to an error along with the batch's unprocessed tail.
func (m *Manager) runTurn(s *stream, batch []pushItem) (rem []pushItem, err error) {
	i := 0
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serve: stream %q crashed at frame %d: %v", s.id, batch[i].frame, r)
			rem = batch[i+1:]
		}
	}()
	for ; i < len(batch); i++ {
		it := batch[i]
		m.mu.Lock()
		s.replay = append(s.replay, it)
		crash := s.spec.CrashAtFrame > 0 && !s.crashFired &&
			it.frame >= video.FrameIndex(s.spec.CrashAtFrame)
		if crash {
			s.crashFired = true
		}
		m.mu.Unlock()
		if crash {
			panic(fmt.Sprintf("injected crash before frame %d", it.frame))
		}
		var start timePoint
		if m.cfg.Now != nil {
			start = m.cfg.Now()
		}
		results := s.ing.PushAt(it.frame, it.dets)
		m.observe(s, results, start)
		m.mu.Lock()
		s.frames = s.ing.FramesSeen()
		if len(results) > 0 {
			s.noteHistoryLocked(s.ing)
		}
		for _, r := range results {
			s.windows++
			if r.Degraded {
				s.degraded++
			}
			// Health tracks the most recent window: one degraded window
			// marks the stream Degraded until an oracle-backed window
			// closes again.
			if r.Degraded {
				s.state = Degraded
			} else {
				s.state = Healthy
			}
		}
		m.mu.Unlock()
	}
	return nil, nil
}

// observe reports closed windows to the configured observer with the
// wall latency of the push that closed them.
func (m *Manager) observe(s *stream, results []ingest.WindowResult, start timePoint) {
	if m.cfg.OnWindow == nil || len(results) == 0 {
		return
	}
	var lat time.Duration
	if m.cfg.Now != nil {
		lat = m.cfg.Now().Sub(start)
	}
	for _, r := range results {
		m.cfg.OnWindow(s.id, r, lat)
	}
}

// supervisor is the crash-recovery goroutine: it takes quarantined
// streams, rebuilds their pipeline from the factory, restores the
// latest checkpoint, and replays the frames pushed since — bit-identical
// resumption, because the checkpoint restores the tracker, merger,
// oracle cache, fault-injection cursor, and virtual clock exactly, and
// the replayed frames then re-derive the exact state the stream had
// when it crashed (DESIGN.md §12 sketches the proof).
func (m *Manager) supervisor() {
	defer m.wg.Done()
	m.mu.Lock()
	for {
		if m.closed {
			m.mu.Unlock()
			return
		}
		if len(m.recoverq) == 0 {
			m.cond.Wait()
			continue
		}
		s := m.recoverq[0]
		m.recoverq = m.recoverq[1:]
		s.state = Recovering
		s.restarts++
		s.active = true
		old := s.ing
		ckpt := s.ckpt
		replay := append([]pushItem(nil), s.replay...)
		// The replay buffer is rebuilt while replaying (the checkpoint
		// sink may fire mid-replay and truncate it), preserving the
		// ckpt+replay invariant for a crash during or after recovery.
		s.replay = s.replay[:0]
		m.mu.Unlock()

		ing, err := m.rebuild(s, ckpt, replay)
		if err == nil {
			// The crashed pipeline is fully replaced: retire its device
			// chain so anything still holding it fails loudly rather than
			// silently advancing a clock nothing reads.
			retireDevice(old)
		}

		m.mu.Lock()
		s.active = false
		if err != nil {
			// Unrecoverable: stays quarantined with the error surfaced in
			// the snapshot; Finish reports it.
			s.state = Quarantined
			s.lastErr = err
			m.cond.Broadcast()
			continue
		}
		s.ing = ing
		s.lastErr = nil
		s.frames = ing.FramesSeen()
		s.noteHistoryLocked(ing)
		s.windows = 0
		s.degraded = 0
		s.state = Healthy
		for _, r := range ing.Results() {
			s.windows++
			if r.Degraded {
				s.degraded++
				s.state = Degraded
			} else {
				s.state = Healthy
			}
		}
		m.scheduleLocked(s)
		m.cond.Broadcast()
	}
}

// rebuild constructs a fresh pipeline, restores the checkpoint (or
// starts from scratch when the stream never sealed one), and replays
// the since-checkpoint frames. Replayed windows are not re-observed —
// they were already reported before the crash.
func (m *Manager) rebuild(s *stream, ckpt []byte, replay []pushItem) (in *ingest.Ingestor, err error) {
	defer func() {
		if r := recover(); r != nil {
			in, err = nil, fmt.Errorf("serve: stream %q: recovery replay panicked: %v", s.id, r)
		}
	}()
	engine, oracle := s.spec.Pipeline()
	if len(ckpt) > 0 {
		in, err = ingest.Restore(engine, oracle, s.cfg, ckpt)
	} else {
		in, err = ingest.New(engine, oracle, s.cfg)
	}
	if err != nil {
		return nil, err
	}
	for _, it := range replay {
		m.mu.Lock()
		s.replay = append(s.replay, it)
		m.mu.Unlock()
		in.PushAt(it.frame, it.dets)
	}
	return in, nil
}
