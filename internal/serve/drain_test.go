package serve

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/tmerge/tmerge/internal/ingest"
	"github.com/tmerge/tmerge/internal/serve/loadgen"
)

// TestDrainResumeBitIdentical pins the drain-to-checkpoint contract end
// to end: a fleet is half-pushed, drained, and resumed on a brand-new
// manager via StreamSpec.Resume; after the second half of the frames the
// fingerprints are bit-identical to uninterrupted sequential runs.
func TestDrainResumeBitIdentical(t *testing.T) {
	before := runtime.NumGoroutine()
	const frames = 160
	streams, err := loadgen.Generate(loadgen.Config{Seed: 41, Streams: 3, Frames: frames})
	if err != nil {
		t.Fatal(err)
	}

	m := NewManager(Config{Workers: 2, TurnFrames: 8, DefaultQueueCap: frames})
	for _, s := range streams {
		spec := StreamSpec{ID: s.ID, Ingest: testIngestCfg(s.Seed, 40, 3), Pipeline: testPipeline(s.Seed, nil)}
		if err := m.Register(spec); err != nil {
			t.Fatalf("register %s: %v", s.ID, err)
		}
	}
	const cut = frames / 2
	for _, s := range streams {
		for f := 0; f < cut; f++ {
			if err := m.Push(s.ID, ingestFrame(f), s.Video.Detections[f]); err != nil {
				t.Fatalf("push %s frame %d: %v", s.ID, f, err)
			}
		}
	}

	ckpts, err := m.Drain(context.Background())
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	checkNoGoroutineLeak(t, before)
	if len(ckpts) != len(streams) {
		t.Fatalf("drain returned %d checkpoints, want %d", len(ckpts), len(streams))
	}
	// The manager is shut down by the time Drain returns.
	if err := m.Push(streams[0].ID, cut, nil); !errors.Is(err, ErrStopped) {
		t.Fatalf("push after drain: got %v, want ErrStopped", err)
	}
	if _, err := m.Drain(context.Background()); !errors.Is(err, ErrStopped) {
		t.Fatalf("second drain: got %v, want ErrStopped", err)
	}

	// Successor manager: same specs plus the drained checkpoints. The
	// drain flushed every accepted frame, so each resumed cursor must sit
	// exactly at the cut.
	m2 := NewManager(Config{Workers: 2, TurnFrames: 8, DefaultQueueCap: frames})
	for _, s := range streams {
		spec := StreamSpec{
			ID: s.ID, Ingest: testIngestCfg(s.Seed, 40, 3),
			Pipeline: testPipeline(s.Seed, nil), Resume: ckpts[s.ID],
		}
		if err := m2.Register(spec); err != nil {
			t.Fatalf("re-register %s: %v", s.ID, err)
		}
	}
	for _, st := range m2.Snapshot() {
		if st.Frames != cut {
			t.Fatalf("%s resumed at frame %d, want %d (drain left frames queued)", st.ID, st.Frames, cut)
		}
	}
	for _, s := range streams {
		for f := cut; f < frames; f++ {
			if err := m2.Push(s.ID, ingestFrame(f), s.Video.Detections[f]); err != nil {
				t.Fatalf("push %s frame %d after resume: %v", s.ID, f, err)
			}
		}
	}
	for _, s := range streams {
		res, err := m2.Finish(s.ID)
		if err != nil {
			t.Fatalf("finish %s: %v", s.ID, err)
		}
		if res.FramesProcessed != frames {
			t.Fatalf("%s processed %d frames across drain+resume, want %d", s.ID, res.FramesProcessed, frames)
		}
		engine, oracle := testPipeline(s.Seed, nil)()
		ref, err := ingest.New(engine, oracle, testIngestCfg(s.Seed, 40, 3))
		if err != nil {
			t.Fatal(err)
		}
		for f := 0; f < frames; f++ {
			ref.PushAt(ingestFrame(f), s.Video.Detections[f])
		}
		ref.Close()
		if got, want := res.Fingerprint(), ref.Result().Fingerprint(); got != want {
			t.Errorf("%s: drained+resumed fingerprint %s != sequential %s", s.ID, got, want)
		}
	}
	m2.Shutdown()
	checkNoGoroutineLeak(t, before)
}

// TestDrainClosesIntake pins the protocol surface of a drain in
// progress: while queued frames are still flushing, Push fails with
// ErrDraining and Register refuses new streams with ErrDraining.
func TestDrainClosesIntake(t *testing.T) {
	before := runtime.NumGoroutine()
	streams, err := loadgen.Generate(loadgen.Config{Seed: 43, Streams: 2, Frames: 64})
	if err != nil {
		t.Fatal(err)
	}
	a, b := streams[0], streams[1]

	// One worker, and OnWindow blocks the first closed window: stream a's
	// turn wedges mid-flush (outside the manager lock), holding the drain
	// open while the test probes the intake surface.
	release := make(chan struct{})
	var once sync.Once
	m := NewManager(Config{
		Workers: 1, TurnFrames: 16, DefaultQueueCap: 64,
		OnWindow: func(string, ingest.WindowResult, time.Duration) {
			once.Do(func() { <-release })
		},
	})
	for _, s := range []loadgen.Stream{a, b} {
		spec := StreamSpec{ID: s.ID, Ingest: testIngestCfg(s.Seed, 8, 0), Pipeline: testPipeline(s.Seed, nil)}
		if err := m.Register(spec); err != nil {
			t.Fatalf("register %s: %v", s.ID, err)
		}
	}
	// Eight frames close stream a's first window inside one turn, so the
	// worker blocks in OnWindow with the turn still active.
	for f := 0; f < 8; f++ {
		if err := m.Push(a.ID, ingestFrame(f), a.Video.Detections[f]); err != nil {
			t.Fatalf("push %s frame %d: %v", a.ID, f, err)
		}
	}

	drained := make(chan map[string][]byte, 1)
	go func() {
		ckpts, err := m.Drain(context.Background())
		if err != nil {
			t.Errorf("drain: %v", err)
		}
		drained <- ckpts
	}()

	// Poll stream b until the drain goroutine has closed intake; pushes
	// accepted in the gap simply flush with the drain.
	waitFor(t, func() bool {
		f := len(b.Video.Detections) - 1
		err := m.Push(b.ID, ingestFrame(f), b.Video.Detections[f])
		if err == nil {
			return false
		}
		if !errors.Is(err, ErrDraining) {
			t.Fatalf("push during drain: got %v, want ErrDraining", err)
		}
		return true
	}, "push to fail with ErrDraining")
	spec := StreamSpec{ID: "late", Ingest: testIngestCfg(99, 8, 0), Pipeline: testPipeline(99, nil)}
	if err := m.Register(spec); !errors.Is(err, ErrDraining) {
		t.Fatalf("register during drain: got %v, want ErrDraining", err)
	}

	close(release)
	ckpts := <-drained
	if _, ok := ckpts[a.ID]; !ok {
		t.Fatalf("drain checkpoints missing %s: %v", a.ID, ckpts)
	}
	if _, ok := ckpts[b.ID]; !ok {
		t.Fatalf("drain checkpoints missing %s: %v", b.ID, ckpts)
	}
	checkNoGoroutineLeak(t, before)
}

// TestDrainAbortStillCheckpoints pins the deadline contract: an
// already-expired context aborts the flush, but Drain still waits out
// in-flight turns and seals frame-boundary checkpoints covering
// whatever was processed; replaying the remainder against them is
// bit-identical to the uninterrupted run (the at-least-once story).
func TestDrainAbortStillCheckpoints(t *testing.T) {
	before := runtime.NumGoroutine()
	const frames = 120
	streams, err := loadgen.Generate(loadgen.Config{Seed: 47, Streams: 1, Frames: frames})
	if err != nil {
		t.Fatal(err)
	}
	s := streams[0]

	m := NewManager(Config{Workers: 1, TurnFrames: 4, DefaultQueueCap: frames})
	spec := StreamSpec{ID: s.ID, Ingest: testIngestCfg(s.Seed, 30, 0), Pipeline: testPipeline(s.Seed, nil)}
	if err := m.Register(spec); err != nil {
		t.Fatal(err)
	}
	for f := 0; f < frames; f++ {
		if err := m.Push(s.ID, ingestFrame(f), s.Video.Detections[f]); err != nil {
			t.Fatalf("push frame %d: %v", f, err)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ckpts, err := m.Drain(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("aborted drain: got %v, want context.Canceled", err)
	}
	ckpt, ok := ckpts[s.ID]
	if !ok {
		t.Fatalf("aborted drain sealed no checkpoint for %s", s.ID)
	}
	checkNoGoroutineLeak(t, before)

	// Resume and replay everything past the restored cursor — exactly
	// what an at-least-once client does after a crashed daemon.
	m2 := NewManager(Config{Workers: 1, TurnFrames: 4, DefaultQueueCap: frames})
	spec.Resume = ckpt
	if err := m2.Register(spec); err != nil {
		t.Fatalf("resume register: %v", err)
	}
	cursor := m2.Snapshot()[0].Frames
	if cursor < 0 || cursor > frames {
		t.Fatalf("resumed cursor %d out of range [0,%d]", cursor, frames)
	}
	for f := cursor; f < frames; f++ {
		if err := m2.Push(s.ID, ingestFrame(f), s.Video.Detections[f]); err != nil {
			t.Fatalf("replay frame %d: %v", f, err)
		}
	}
	res, err := m2.Finish(s.ID)
	if err != nil {
		t.Fatalf("finish: %v", err)
	}
	if res.FramesProcessed != frames {
		t.Fatalf("processed %d frames after abort+replay, want %d", res.FramesProcessed, frames)
	}
	engine, oracle := testPipeline(s.Seed, nil)()
	ref, err := ingest.New(engine, oracle, testIngestCfg(s.Seed, 30, 0))
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < frames; f++ {
		ref.PushAt(ingestFrame(f), s.Video.Detections[f])
	}
	ref.Close()
	if got, want := res.Fingerprint(), ref.Result().Fingerprint(); got != want {
		t.Errorf("abort+replay fingerprint %s != sequential %s", got, want)
	}
	m2.Shutdown()
	checkNoGoroutineLeak(t, before)
}

// TestDrainEmptyManager pins the degenerate case: draining a manager
// with no streams returns an empty map and shuts the manager down.
func TestDrainEmptyManager(t *testing.T) {
	before := runtime.NumGoroutine()
	m := NewManager(Config{Workers: 1})
	ckpts, err := m.Drain(context.Background())
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if len(ckpts) != 0 {
		t.Fatalf("drain of empty manager returned %v", ckpts)
	}
	if err := m.Register(StreamSpec{ID: "x", Ingest: testIngestCfg(1, 8, 0), Pipeline: testPipeline(1, nil)}); !errors.Is(err, ErrStopped) {
		t.Fatalf("register after drain: got %v, want ErrStopped", err)
	}
	checkNoGoroutineLeak(t, before)
}
