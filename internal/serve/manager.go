package serve

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"github.com/tmerge/tmerge/internal/core"
	"github.com/tmerge/tmerge/internal/device"
	"github.com/tmerge/tmerge/internal/fault"
	"github.com/tmerge/tmerge/internal/ingest"
	"github.com/tmerge/tmerge/internal/trackdb"
	"github.com/tmerge/tmerge/internal/video"
)

// Manager multiplexes N streams over a bounded shared worker pool. All
// methods are safe for concurrent use. One mutex guards every piece of
// scheduling state (queues, health, budget); it is never held across an
// ingestion push, a checkpoint restore, or any device submission, so
// the pool's throughput is bounded by the streams' work, not the lock.
type Manager struct {
	cfg Config

	mu   sync.Mutex
	cond *sync.Cond // one condition for every wait: ready work, queue room, recovery, drain, shutdown

	streams    map[string]*stream
	order      []string  // registration order, the Snapshot order
	ready      []*stream // FIFO of schedulable streams with queued frames (round-robin fairness)
	recoverq   []*stream // quarantined streams awaiting the supervisor
	waiting    []*stream // Pending streams awaiting admission, FIFO
	budget     int       // admitted window-budget units in use
	draining   bool      // Drain in progress: intake closed, queues flushing
	drainAbort bool      // Drain's context expired: stop waiting for the flush
	closed     bool

	wg sync.WaitGroup
}

// NewManager starts a manager with cfg's worker pool and supervisor.
// Call Shutdown to stop it; every goroutine the manager starts exits by
// the time Shutdown returns.
func NewManager(cfg Config) *Manager {
	m := &Manager{
		cfg:     cfg.withDefaults(),
		streams: make(map[string]*stream),
	}
	m.cond = sync.NewCond(&m.mu)
	for i := 0; i < m.cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	m.wg.Add(1)
	go m.supervisor()
	return m
}

// windowCost is a stream's admission accounting: the number of windows
// its full frame queue can close at once, at least 1 — the in-flight
// window capacity admitting it hands the shared pool.
func windowCost(queueCap, windowLen int) int {
	half := windowLen / 2
	if half <= 0 {
		return 1
	}
	cost := (queueCap + half - 1) / half
	if cost < 1 {
		cost = 1
	}
	return cost
}

// Register admits a new stream (or, over budget with QueueAdmission
// set, parks it Pending; its frames are refused with ErrNotAdmitted
// until capacity frees). The spec's ingestion configuration is
// validated up front, with the manager's checkpoint sink installed.
func (m *Manager) Register(spec StreamSpec) error {
	if spec.ID == "" {
		return fmt.Errorf("serve: stream id must be non-empty")
	}
	if spec.Pipeline == nil {
		return fmt.Errorf("serve: stream %q: nil pipeline factory", spec.ID)
	}
	if m.cfg.History != nil && spec.Ingest.History == nil && !safeHistoryID(spec.ID) {
		return fmt.Errorf("serve: stream %q: id is not a safe history directory name", spec.ID)
	}
	s := &stream{
		id:       spec.ID,
		spec:     spec,
		queueCap: spec.QueueCap,
	}
	if s.queueCap <= 0 {
		s.queueCap = m.cfg.DefaultQueueCap
	}
	s.cost = windowCost(s.queueCap, spec.Ingest.WindowLen)
	s.cfg = m.sinkedConfig(s)
	if err := s.cfg.Validate(); err != nil {
		return err
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrStopped
	}
	if m.draining {
		m.mu.Unlock()
		return ErrDraining
	}
	if _, dup := m.streams[spec.ID]; dup {
		m.mu.Unlock()
		return fmt.Errorf("serve: stream %q: %w", spec.ID, ErrDuplicateStream)
	}
	if m.cfg.WindowBudget > 0 && m.budget+s.cost > m.cfg.WindowBudget {
		if !m.cfg.QueueAdmission {
			m.mu.Unlock()
			return fmt.Errorf("serve: stream %q costs %d windows, %d of %d in use: %w",
				spec.ID, s.cost, m.budget, m.cfg.WindowBudget, ErrAdmission)
		}
		s.state = Pending
		m.streams[spec.ID] = s
		m.order = append(m.order, spec.ID)
		m.waiting = append(m.waiting, s)
		m.mu.Unlock()
		return nil
	}
	m.budget += s.cost
	m.streams[spec.ID] = s
	m.order = append(m.order, spec.ID)
	m.mu.Unlock()

	return m.startStream(s)
}

// safeHistoryID reports whether a stream ID can serve as its history
// directory name: no path separators, and not a dot entry that would
// escape or alias the root.
func safeHistoryID(id string) bool {
	return !strings.ContainsAny(id, `/\`) && id != "." && id != ".."
}

// sinkedConfig returns the spec's ingestion config with the manager's
// checkpoint sink installed — the sink retains the latest sealed
// checkpoint and truncates the replay buffer (the sealed state includes
// every replayed frame), then chains to the spec's own sink, if any —
// and, under a manager-level HistoryRoot, the stream's derived
// per-stream history configuration (specs carrying their own
// Ingest.History keep it).
func (m *Manager) sinkedConfig(s *stream) ingest.Config {
	cfg := s.spec.Ingest
	if m.cfg.History != nil && cfg.History == nil {
		cfg.History = m.cfg.History.config(s.id)
	}
	userSink := cfg.CheckpointSink
	if cfg.AutoCheckpointEvery > 0 {
		cfg.CheckpointSink = func(data []byte) error {
			m.mu.Lock()
			s.ckpt = data
			s.replay = s.replay[:0]
			m.mu.Unlock()
			if userSink != nil {
				return userSink(data)
			}
			return nil
		}
	}
	return cfg
}

// startStream builds an admitted stream's pipeline and session outside
// the manager lock and makes it schedulable. A spec carrying Resume
// bytes restores the checkpointed session instead of starting empty and
// seeds the crash-recovery state with those bytes, so a crash right
// after resumption rebuilds from the same checkpoint.
func (m *Manager) startStream(s *stream) error {
	engine, oracle := s.spec.Pipeline()
	var (
		ing *ingest.Ingestor
		err error
	)
	if len(s.spec.Resume) > 0 {
		ing, err = ingest.Restore(engine, oracle, s.cfg, s.spec.Resume)
	} else {
		ing, err = ingest.New(engine, oracle, s.cfg)
	}

	m.mu.Lock()
	if err != nil {
		s.state = Stopped
		s.lastErr = err
		m.budget -= s.cost
		m.cond.Broadcast()
		m.mu.Unlock()
		return err
	}
	s.ing = ing
	s.state = Healthy
	s.noteHistoryLocked(ing)
	if len(s.spec.Resume) > 0 {
		s.ckpt = s.spec.Resume
		s.frames = ing.FramesSeen()
		for _, r := range ing.Results() {
			s.windows++
			if r.Degraded {
				s.degraded++
			}
		}
	}
	m.scheduleLocked(s)
	m.cond.Broadcast()
	m.mu.Unlock()
	return nil
}

// scheduleLocked appends s to the ready FIFO when it is schedulable,
// has queued frames, and is not already queued or being processed.
func (m *Manager) scheduleLocked(s *stream) {
	if s.scheduled || s.active || len(s.queue) == 0 {
		return
	}
	if s.state != Healthy && s.state != Degraded {
		return
	}
	m.ready = append(m.ready, s)
	s.scheduled = true
}

// Push hands frame f's detections to the stream's bounded queue. When
// the queue is full it blocks for room, or — with Config.Shed — fails
// immediately with ErrOverloaded. Frames pushed to a Quarantined or
// Recovering stream queue normally and are processed after recovery.
// The detections slice is retained; the caller must not modify it.
func (m *Manager) Push(id string, f video.FrameIndex, dets []video.BBox) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.streams[id]
	if !ok {
		return fmt.Errorf("serve: stream %q: %w", id, ErrUnknownStream)
	}
	for {
		switch {
		case m.closed:
			return ErrStopped
		case m.draining:
			return fmt.Errorf("serve: stream %q: %w", id, ErrDraining)
		case s.state == Pending:
			return fmt.Errorf("serve: stream %q: %w", id, ErrNotAdmitted)
		case s.state == Stopped || s.inputClosed:
			return fmt.Errorf("serve: stream %q: %w", id, ErrStreamClosed)
		}
		if len(s.queue) < s.queueCap {
			break
		}
		if m.cfg.Shed {
			return fmt.Errorf("serve: stream %q: %w", id, ErrOverloaded)
		}
		m.cond.Wait()
	}
	s.queue = append(s.queue, pushItem{frame: f, dets: dets})
	m.scheduleLocked(s)
	m.cond.Broadcast()
	return nil
}

// Finish closes a stream's input, waits for its queue to drain (crash
// recoveries included), flushes the final partial window, and returns
// the stream's cumulative result — the fingerprintable
// core.PipelineResult its single-stream sequential run must match. The
// stream's admission budget is released, admitting Pending streams.
func (m *Manager) Finish(id string) (*core.PipelineResult, error) {
	m.mu.Lock()
	s, ok := m.streams[id]
	if !ok {
		m.mu.Unlock()
		return nil, fmt.Errorf("serve: stream %q: %w", id, ErrUnknownStream)
	}
	if s.state == Pending {
		s.state = Stopped
		m.dropWaitingLocked(s)
		m.mu.Unlock()
		return nil, fmt.Errorf("serve: stream %q: %w", id, ErrNotAdmitted)
	}
	if s.state == Stopped || s.inputClosed {
		m.mu.Unlock()
		return nil, fmt.Errorf("serve: stream %q: %w", id, ErrStreamClosed)
	}
	s.inputClosed = true

	const closeAttempts = 3
	for attempt := 0; ; attempt++ {
		for {
			if m.closed {
				m.mu.Unlock()
				return nil, ErrStopped
			}
			if (s.state == Healthy || s.state == Degraded) &&
				!s.active && !s.scheduled && len(s.queue) == 0 {
				break
			}
			if s.state == Quarantined && s.lastErr != nil && !s.inRecoverLocked(m) {
				// Recovery itself failed; the stream cannot be drained.
				err := s.lastErr
				m.mu.Unlock()
				return nil, fmt.Errorf("serve: stream %q unrecoverable: %w", id, err)
			}
			m.cond.Wait()
		}
		s.active = true
		ing := s.ing
		m.mu.Unlock()

		err := m.closeStream(s, ing)

		m.mu.Lock()
		s.active = false
		if err == nil {
			break
		}
		// The final flush panicked (a real fault, not an injected crash —
		// those only fire on the worker path): quarantine and let the
		// supervisor restore the pre-Close state, then retry the flush.
		s.state = Quarantined
		s.lastErr = err
		if attempt+1 >= closeAttempts {
			m.cond.Broadcast()
			m.mu.Unlock()
			return nil, fmt.Errorf("serve: stream %q: final flush failed %d times: %w", id, closeAttempts, err)
		}
		m.recoverq = append(m.recoverq, s)
		m.cond.Broadcast()
	}

	ing := s.ing
	m.mu.Unlock()
	res := ing.Result()

	m.mu.Lock()
	s.state = Stopped
	s.frames = res.FramesProcessed
	s.windows = len(res.Windows)
	s.degraded = res.DegradedWindows
	m.budget -= s.cost
	admitted := m.admitLocked()
	m.cond.Broadcast()
	m.mu.Unlock()

	for _, a := range admitted {
		// A factory or session failure marks the stream Stopped with the
		// error in its status; Register already returned nil long ago.
		_ = m.startStream(a)
	}
	return res, nil
}

// closeStream flushes the final partial window, converting a panic into
// an error for the supervisor.
func (m *Manager) closeStream(s *stream, ing *ingest.Ingestor) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serve: stream %q: final flush panicked: %v", s.id, r)
		}
	}()
	var start timePoint
	if m.cfg.Now != nil {
		start = m.cfg.Now()
	}
	results := ing.Close()
	m.observe(s, results, start)
	m.mu.Lock()
	s.noteHistoryLocked(ing)
	for _, r := range results {
		s.windows++
		if r.Degraded {
			s.degraded++
		}
	}
	m.mu.Unlock()
	return nil
}

// inRecoverLocked reports whether s is queued for the supervisor.
func (s *stream) inRecoverLocked(m *Manager) bool {
	if s.state == Recovering {
		return true
	}
	for _, r := range m.recoverq {
		if r == s {
			return true
		}
	}
	return false
}

// dropWaitingLocked removes s from the admission queue.
func (m *Manager) dropWaitingLocked(s *stream) {
	for i, w := range m.waiting {
		if w == s {
			m.waiting = append(m.waiting[:i], m.waiting[i+1:]...)
			return
		}
	}
}

// admitLocked pulls Pending streams into the budget, FIFO, stopping at
// the first that does not fit (admission stays ordered). It returns the
// admitted streams; the caller must start them outside the lock.
func (m *Manager) admitLocked() []*stream {
	var admitted []*stream
	for len(m.waiting) > 0 {
		s := m.waiting[0]
		if m.cfg.WindowBudget > 0 && m.budget+s.cost > m.cfg.WindowBudget {
			break
		}
		m.waiting = m.waiting[1:]
		m.budget += s.cost
		admitted = append(admitted, s)
	}
	return admitted
}

// Snapshot reports every registered stream's health in registration
// order. It is safe to call at any time, concurrently with pushes and
// in-flight processing: it reads only manager-guarded counters plus the
// ingest accessors documented safe for concurrent use (the quarantine
// ledger and the resilient device's counters).
func (m *Manager) Snapshot() []StreamStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]StreamStatus, 0, len(m.order))
	for _, id := range m.order {
		s := m.streams[id]
		st := StreamStatus{
			ID:              s.id,
			State:           s.state,
			Frames:          s.frames,
			Queued:          len(s.queue),
			Windows:         s.windows,
			DegradedWindows: s.degraded,
			Restarts:        s.restarts,
			HistoryHot:      s.histHot,
			HistoryCold:     s.histCold,
			HistoryErr:      s.histErr,
		}
		if s.lastErr != nil {
			st.Err = s.lastErr.Error()
		}
		if s.ing != nil {
			st.Quarantined = s.ing.Quarantine().TotalRejected
			for d := s.ing.Oracle().Device(); d != nil; {
				switch v := d.(type) {
				case *device.ResilientDevice:
					st.Breaker = v.State().String()
					d = v.Inner()
				case *fault.Flaky:
					d = v.Inner()
				default:
					d = nil
				}
			}
		}
		out = append(out, st)
	}
	return out
}

// AsOf serves a time-travel query against one stream's on-disk history:
// the merged-track view as of the cut "all windows committed by frame",
// reconstructed from the stream's segmented log (see ingest.AsOf for the
// cut semantics and the retention boundary of compacted logs). The
// reconstruction needs exclusive access to the stream's session, so AsOf
// waits for any in-flight turn to finish and blocks the next one while
// it reads — it is a control-plane query, not a hot-path one. Streams
// without history, quarantined beyond recovery, or never admitted fail
// with the corresponding error; a Stopped (finished) stream still
// serves its full history.
func (m *Manager) AsOf(id string, frame video.FrameIndex) (*trackdb.LiveView, video.FrameIndex, error) {
	m.mu.Lock()
	s, ok := m.streams[id]
	if !ok {
		m.mu.Unlock()
		return nil, 0, fmt.Errorf("serve: stream %q: %w", id, ErrUnknownStream)
	}
	for {
		switch {
		case m.closed:
			m.mu.Unlock()
			return nil, 0, ErrStopped
		case s.state == Pending:
			m.mu.Unlock()
			return nil, 0, fmt.Errorf("serve: stream %q: %w", id, ErrNotAdmitted)
		}
		if s.state == Quarantined && s.lastErr != nil && !s.inRecoverLocked(m) {
			err := s.lastErr
			m.mu.Unlock()
			return nil, 0, fmt.Errorf("serve: stream %q unrecoverable: %w", id, err)
		}
		if (s.state == Healthy || s.state == Degraded || s.state == Stopped) && !s.active && s.ing != nil {
			break
		}
		m.cond.Wait()
	}
	s.active = true
	ing := s.ing
	m.mu.Unlock()

	v, cut, err := ing.AsOf(frame)

	m.mu.Lock()
	s.active = false
	m.scheduleLocked(s) // a worker may have skipped the stream while we held it
	m.cond.Broadcast()
	m.mu.Unlock()
	return v, cut, err
}

// Drain performs a graceful drain-to-checkpoint shutdown: intake is
// closed (Push and Register fail with ErrDraining, and pushes blocked on
// backpressure unblock with it), every queued frame of every admitted
// stream flushes through the worker pool's in-flight windows, pending
// crash recoveries complete, and then one final checkpoint is sealed
// per live stream at a frame boundary. The manager is shut down before
// Drain returns.
//
// The returned map holds each drained stream's final checkpoint bytes by
// stream ID — the state a successor manager resumes from by registering
// the same spec with StreamSpec.Resume set. Drain does not invoke
// CheckpointSinks for these final seals; persisting the returned bytes
// is the caller's responsibility. Streams that are Pending (never
// admitted), Stopped (already finished), or terminally quarantined have
// no live session and produce no entry.
//
// When ctx expires before the flush completes, Drain stops waiting,
// lets in-flight turns finish (checkpoints are frame-boundary
// snapshots), seals checkpoints covering whatever had been processed,
// and returns the checkpoints alongside ctx's error; the still-queued
// frames are abandoned, exactly as a crash would abandon them — an
// at-least-once ingress replays them against the returned checkpoints.
func (m *Manager) Drain(ctx context.Context) (map[string][]byte, error) {
	m.mu.Lock()
	switch {
	case m.closed:
		m.mu.Unlock()
		return nil, ErrStopped
	case m.draining:
		m.mu.Unlock()
		return nil, ErrDraining
	}
	m.draining = true
	m.cond.Broadcast() // unblock backpressured pushes with ErrDraining
	m.mu.Unlock()

	// Context watcher: an expired deadline wakes the wait loop below via
	// drainAbort. The quit channel bounds the goroutine to this call.
	quit := make(chan struct{})
	defer close(quit)
	go func() {
		select {
		case <-ctx.Done():
			m.mu.Lock()
			m.drainAbort = true
			m.cond.Broadcast()
			m.mu.Unlock()
		case <-quit:
		}
	}()

	m.mu.Lock()
	for !m.drainedLocked() && !m.drainAbort && !m.closed {
		m.cond.Wait()
	}
	aborted := m.drainAbort
	var firstErr error
	out := make(map[string][]byte, len(m.order))
	for _, id := range m.order {
		s := m.streams[id]
		if s.ing == nil || (s.state != Healthy && s.state != Degraded) {
			continue
		}
		// Even on an aborted drain a checkpoint must sit at a frame
		// boundary: wait out any in-flight turn (or Finish flush) first.
		// Turns are bounded (TurnFrames) and aborted drains stop new
		// dispatch, so this wait terminates.
		for s.active && !m.closed && (s.state == Healthy || s.state == Degraded) {
			m.cond.Wait()
		}
		if m.closed {
			break
		}
		if s.state != Healthy && s.state != Degraded {
			continue // crashed while we waited; no consistent boundary
		}
		s.active = true
		ing := s.ing
		m.mu.Unlock()
		data, err := sealDrainCheckpoint(s.id, ing)
		m.mu.Lock()
		s.active = false
		if err != nil {
			s.lastErr = err
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		out[id] = data
		s.ckpt = data
		s.replay = s.replay[:0]
	}
	m.cond.Broadcast()
	m.mu.Unlock()

	m.Shutdown()
	if firstErr == nil && aborted {
		firstErr = ctx.Err()
	}
	return out, firstErr
}

// drainedLocked reports whether every admitted stream is idle with an
// empty queue and no recovery is pending — the point at which final
// checkpoints cover everything intake accepted.
func (m *Manager) drainedLocked() bool {
	if len(m.recoverq) > 0 {
		return false
	}
	for _, s := range m.streams {
		switch s.state {
		case Recovering:
			return false
		case Healthy, Degraded:
			if s.active || s.scheduled || len(s.queue) > 0 {
				return false
			}
		}
	}
	return true
}

// sealDrainCheckpoint seals one stream's final drain checkpoint,
// converting a panic into an error.
func sealDrainCheckpoint(id string, ing *ingest.Ingestor) (data []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			data, err = nil, fmt.Errorf("serve: stream %q: drain checkpoint panicked: %v", id, r)
		}
	}()
	data, err = ing.Checkpoint()
	if err != nil {
		return nil, fmt.Errorf("serve: stream %q: drain checkpoint: %w", id, err)
	}
	return data, nil
}

// Shutdown stops the worker pool and the supervisor and waits for them
// to exit. Shutdown abandons in-flight state: running turns complete,
// but queued frames of unfinished streams are dropped without
// processing, no final checkpoint is sealed, and nothing is flushed —
// frames accepted but not yet checkpointed are lost unless an
// at-least-once ingress replays them. Use Drain for the graceful
// flush-then-checkpoint variant. Shutdown is idempotent.
func (m *Manager) Shutdown() {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
	m.wg.Wait()
}
