package serve

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/tmerge/tmerge/internal/fault"
	"github.com/tmerge/tmerge/internal/ingest"
	"github.com/tmerge/tmerge/internal/reid"
	"github.com/tmerge/tmerge/internal/serve/loadgen"
	"github.com/tmerge/tmerge/internal/track"
)

// TestChaosBitIdenticalRecovery is the serving layer's headline
// guarantee, pinned end to end: ten concurrent streams share a
// four-worker pool while some streams run scripted oracle outages,
// some run random transient faults, and two suffer injected crashes
// that force checkpoint-restore recovery — and every surviving
// stream's final result fingerprint is bit-identical to the same
// stream's single-stream sequential run. A snapshot poller hammers the
// health API concurrently throughout, and the pool must shut down with
// zero leaked goroutines.
func TestChaosBitIdenticalRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run is long; skipped in -short")
	}
	before := runtime.NumGoroutine()

	const nStreams = 10
	const frames = 320
	streams, err := loadgen.Generate(loadgen.Config{Seed: 1234, Streams: nStreams, Frames: frames})
	if err != nil {
		t.Fatal(err)
	}

	// Per-stream fault profile: even streams face a scripted mid-stream
	// outage (degraded windows), odd streams a transient-failure rate the
	// retry policy mostly absorbs. Streams 3 and 7 additionally crash
	// mid-stream and must recover from checkpoint.
	faultFor := func(i int) *fault.Config {
		fc := fault.Config{
			Seed:           loadgen.StreamSeed(1234, i) ^ 0xFA017,
			FailureLatency: 50 * time.Microsecond,
		}
		if i%2 == 0 {
			fc.Schedule = fault.NewSchedule(fault.Outage{From: 3, To: 6})
		} else {
			fc.TransientRate = 0.05
		}
		return &fc
	}
	crashAt := map[int]int{3: 130, 7: 210}

	m := NewManager(Config{Workers: 4, TurnFrames: 8, DefaultQueueCap: 32})
	defer m.Shutdown()

	for i, s := range streams {
		spec := StreamSpec{
			ID:           s.ID,
			Ingest:       testIngestCfg(s.Seed, 80, 2),
			Pipeline:     testPipeline(s.Seed, faultFor(i)),
			CrashAtFrame: crashAt[i],
		}
		if err := m.Register(spec); err != nil {
			t.Fatalf("register %s: %v", s.ID, err)
		}
	}

	// Snapshot poller: the health API must be safe concurrently with
	// pushes, turns, crashes, and recoveries for the whole run.
	pollDone := make(chan struct{})
	var pollWG sync.WaitGroup
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		for {
			select {
			case <-pollDone:
				return
			default:
			}
			for _, st := range m.Snapshot() {
				_ = st.State.String()
				_ = st.Breaker
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	// One pusher per stream: all ten streams contend for the pool at
	// once, exercising backpressure (queue cap 32 < 320 frames).
	var pushWG sync.WaitGroup
	pushErrs := make(chan error, nStreams)
	for _, s := range streams {
		s := s
		pushWG.Add(1)
		go func() {
			defer pushWG.Done()
			for f, dets := range s.Video.Detections {
				if err := m.Push(s.ID, ingestFrame(f), dets); err != nil {
					pushErrs <- fmt.Errorf("push %s frame %d: %w", s.ID, f, err)
					return
				}
			}
		}()
	}
	pushWG.Wait()
	close(pushErrs)
	for err := range pushErrs {
		t.Fatal(err)
	}

	served := make(map[string]string, nStreams)
	for _, s := range streams {
		res, err := m.Finish(s.ID)
		if err != nil {
			t.Fatalf("finish %s: %v", s.ID, err)
		}
		if res.FramesProcessed != frames {
			t.Fatalf("%s processed %d frames, want %d (exactly-once violated)", s.ID, res.FramesProcessed, frames)
		}
		served[s.ID] = res.Fingerprint()
	}
	close(pollDone)
	pollWG.Wait()

	// The crashed streams must have actually recovered, and the scripted
	// outages must have actually degraded windows somewhere.
	snap := m.Snapshot()
	degradedTotal := 0
	for i, st := range snap {
		degradedTotal += st.DegradedWindows
		if _, crashed := crashAt[i]; crashed && st.Restarts < 1 {
			t.Errorf("%s: restarts = %d, want >= 1 (injected crash never recovered)", st.ID, st.Restarts)
		}
		if st.State != Stopped {
			t.Errorf("%s: state = %v after Finish, want Stopped", st.ID, st.State)
		}
	}
	if degradedTotal == 0 {
		t.Error("no degraded windows across the fleet; outage schedule did not bite")
	}

	m.Shutdown()
	checkNoGoroutineLeak(t, before)

	// Reference: each stream alone, sequential, same pipeline seeds and
	// fault scripts, no manager, no crashes. Bit-identical fingerprints
	// are the whole point of per-stream pipeline isolation plus
	// checkpoint-replay recovery.
	for i, s := range streams {
		engine, oracle := testPipeline(s.Seed, faultFor(i))()
		ref, err := ingest.New(engine, oracle, testIngestCfg(s.Seed, 80, 2))
		if err != nil {
			t.Fatal(err)
		}
		for f, dets := range s.Video.Detections {
			ref.PushAt(ingestFrame(f), dets)
		}
		ref.Close()
		if want := ref.Result().Fingerprint(); served[s.ID] != want {
			t.Errorf("%s: served fingerprint %s != sequential %s", s.ID, served[s.ID], want)
		}
	}
}

// TestUnrecoverableQuarantineSurfaces pins the supervision contract
// when recovery itself fails: the factory panics during the rebuild, so
// the stream stays terminally Quarantined, the error reaches both the
// snapshot and Finish, and the rest of the fleet is untouched.
func TestUnrecoverableQuarantineSurfaces(t *testing.T) {
	before := runtime.NumGoroutine()
	streams, err := loadgen.Generate(loadgen.Config{Seed: 77, Streams: 2, Frames: 160})
	if err != nil {
		t.Fatal(err)
	}

	inner := testPipeline(77, nil)
	var calls int
	var callMu sync.Mutex
	brokenFactory := func() (*track.Engine, *reid.Oracle) {
		callMu.Lock()
		calls++
		c := calls
		callMu.Unlock()
		if c > 1 {
			panic("pipeline hardware gone")
		}
		return inner()
	}

	m := NewManager(Config{Workers: 2, TurnFrames: 8, DefaultQueueCap: 32})
	defer m.Shutdown()
	if err := m.Register(StreamSpec{
		ID: "doomed", Ingest: testIngestCfg(77, 80, 0),
		Pipeline: brokenFactory, CrashAtFrame: 60,
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.Register(StreamSpec{
		ID: "bystander", Ingest: testIngestCfg(78, 80, 0),
		Pipeline: testPipeline(78, nil),
	}); err != nil {
		t.Fatal(err)
	}

	// Push only a little past the crash point: a terminally quarantined
	// stream never drains its queue, and a blocking Push against a full
	// dead queue would wedge the test. 64 frames leave at most a handful
	// queued after the crash at frame 60 — far below the 32-frame cap.
	for f := 0; f < 64; f++ {
		if err := m.Push("doomed", ingestFrame(f), streams[0].Video.Detections[f]); err != nil {
			t.Fatalf("doomed push %d: %v", f, err)
		}
	}
	for f, dets := range streams[1].Video.Detections {
		if err := m.Push("bystander", ingestFrame(f), dets); err != nil {
			t.Fatalf("bystander push %d: %v", f, err)
		}
	}

	if _, err := m.Finish("doomed"); err == nil {
		t.Fatal("finish of unrecoverable stream succeeded")
	}
	st := m.Snapshot()[0]
	if st.State != Quarantined {
		t.Fatalf("doomed state = %v, want Quarantined", st.State)
	}
	if st.Err == "" {
		t.Fatal("doomed stream surfaces no error in snapshot")
	}

	// Fault isolation: the bystander is unaffected.
	res, err := m.Finish("bystander")
	if err != nil {
		t.Fatalf("finish bystander: %v", err)
	}
	if res.FramesProcessed != streams[1].Video.NumFrames {
		t.Fatalf("bystander processed %d frames, want %d", res.FramesProcessed, streams[1].Video.NumFrames)
	}

	m.Shutdown()
	checkNoGoroutineLeak(t, before)
}
