package serve

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"github.com/tmerge/tmerge/internal/ingest"
	"github.com/tmerge/tmerge/internal/serve/loadgen"
	"github.com/tmerge/tmerge/internal/video"
)

// histRoot is the history configuration every test fleet shares: a tight
// hot horizon (2×WindowLen) so cold summaries actually accumulate, small
// segments, and aggressive compaction so the retention machinery runs.
func histRoot(dir string) *HistoryRoot {
	return &HistoryRoot{Dir: dir, HotHorizon: 80, WindowsPerSegment: 2, CompactEvery: 2}
}

// TestHistoryFleetDrainResumeAsOf pins the serving layer's history
// integration end to end: a fleet with a manager-level HistoryRoot
// journals each stream under its own directory, the drain checkpoint
// seals the active segment, a successor manager resumes every stream
// against its on-disk log, results stay bit-identical to uninterrupted
// plain sequential runs, and Manager.AsOf serves time-travel cuts equal
// to a single-stream history session's.
func TestHistoryFleetDrainResumeAsOf(t *testing.T) {
	before := runtime.NumGoroutine()
	const frames = 240
	const windowLen = 40
	streams, err := loadgen.Generate(loadgen.Config{Seed: 53, Streams: 2, Frames: frames})
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()

	m := NewManager(Config{Workers: 2, TurnFrames: 8, DefaultQueueCap: frames, History: histRoot(root)})
	for _, s := range streams {
		spec := StreamSpec{ID: s.ID, Ingest: testIngestCfg(s.Seed, windowLen, 2), Pipeline: testPipeline(s.Seed, nil)}
		if err := m.Register(spec); err != nil {
			t.Fatalf("register %s: %v", s.ID, err)
		}
		// The journal opens eagerly at registration, one directory per
		// stream under the root.
		if _, err := os.Stat(filepath.Join(root, s.ID)); err != nil {
			t.Fatalf("stream %s history dir: %v", s.ID, err)
		}
	}

	const cut = frames / 2
	for _, s := range streams {
		for f := 0; f < cut; f++ {
			if err := m.Push(s.ID, ingestFrame(f), s.Video.Detections[f]); err != nil {
				t.Fatalf("push %s frame %d: %v", s.ID, f, err)
			}
		}
	}
	ckpts, err := m.Drain(context.Background())
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	checkNoGoroutineLeak(t, before)
	if len(ckpts) != len(streams) {
		t.Fatalf("drain returned %d checkpoints, want %d", len(ckpts), len(streams))
	}
	for _, s := range streams {
		// The drain checkpoint sealed the active segment: the manifest on
		// disk references everything the resume bytes do.
		if _, err := os.Stat(filepath.Join(root, s.ID, "MANIFEST.json")); err != nil {
			t.Fatalf("stream %s manifest after drain: %v", s.ID, err)
		}
	}

	// Successor manager over the same root: each stream restores from its
	// checkpoint reference plus its own on-disk log.
	m2 := NewManager(Config{Workers: 2, TurnFrames: 8, DefaultQueueCap: frames, History: histRoot(root)})
	for _, s := range streams {
		spec := StreamSpec{
			ID: s.ID, Ingest: testIngestCfg(s.Seed, windowLen, 2),
			Pipeline: testPipeline(s.Seed, nil), Resume: ckpts[s.ID],
		}
		if err := m2.Register(spec); err != nil {
			t.Fatalf("re-register %s: %v", s.ID, err)
		}
	}
	for _, st := range m2.Snapshot() {
		if st.Frames != cut {
			t.Fatalf("%s resumed at frame %d, want %d", st.ID, st.Frames, cut)
		}
		if st.HistoryErr != "" {
			t.Fatalf("%s resumed with history error %q", st.ID, st.HistoryErr)
		}
	}
	for _, s := range streams {
		for f := cut; f < frames; f++ {
			if err := m2.Push(s.ID, ingestFrame(f), s.Video.Detections[f]); err != nil {
				t.Fatalf("push %s frame %d after resume: %v", s.ID, f, err)
			}
		}
	}
	for _, s := range streams {
		res, err := m2.Finish(s.ID)
		if err != nil {
			t.Fatalf("finish %s: %v", s.ID, err)
		}
		// Bit-identical to the uninterrupted plain sequential run: the
		// history journal and the tiered view change nothing about the
		// stream's results.
		engine, oracle := testPipeline(s.Seed, nil)()
		refCfg := testIngestCfg(s.Seed, windowLen, 0)
		ref, err := ingest.New(engine, oracle, refCfg)
		if err != nil {
			t.Fatal(err)
		}
		for f := 0; f < frames; f++ {
			ref.PushAt(ingestFrame(f), s.Video.Detections[f])
		}
		ref.Close()
		if got, want := res.Fingerprint(), ref.Result().Fingerprint(); got != want {
			t.Errorf("%s: history fleet fingerprint %s != plain sequential %s", s.ID, got, want)
		}
	}

	// The tight horizon must have pushed tracks cold on every stream.
	for _, st := range m2.Snapshot() {
		if st.HistoryCold == 0 {
			t.Errorf("%s: no cold tracks despite horizon %d over %d frames", st.ID, 80, frames)
		}
		if st.HistoryErr != "" {
			t.Errorf("%s: history error %q", st.ID, st.HistoryErr)
		}
	}

	// Time travel through the manager equals a single-stream history
	// session's AsOf at the same cuts — the serving layer adds routing
	// and exclusion, not semantics. (Stopped streams still serve.)
	for _, s := range streams {
		engine, oracle := testPipeline(s.Seed, nil)()
		refCfg := testIngestCfg(s.Seed, windowLen, 0)
		refCfg.History = histRoot(t.TempDir()).config(s.ID)
		ref, err := ingest.New(engine, oracle, refCfg)
		if err != nil {
			t.Fatal(err)
		}
		for f := 0; f < frames; f++ {
			ref.PushAt(ingestFrame(f), s.Video.Detections[f])
		}
		ref.Close()
		for _, f := range []video.FrameIndex{frames - 1, frames - windowLen - 1} {
			refView, refCut, refErr := ref.AsOf(f)
			if refErr != nil {
				// The aggressive compaction policy can put an interior cut
				// behind the retention boundary; the managed stream must
				// refuse it the same way.
				if _, _, err := m2.AsOf(s.ID, f); err == nil {
					t.Errorf("%s: AsOf(%d) succeeded, single-stream session refused: %v", s.ID, f, refErr)
				}
				continue
			}
			gotView, gotCut, err := m2.AsOf(s.ID, f)
			if err != nil {
				t.Fatalf("%s: manager AsOf(%d): %v", s.ID, f, err)
			}
			if gotCut != refCut {
				t.Fatalf("%s: AsOf(%d) cut %d, reference %d", s.ID, f, gotCut, refCut)
			}
			if !reflect.DeepEqual(gotView.State(), refView.State()) {
				t.Errorf("%s: AsOf(%d) view diverged from single-stream session", s.ID, f)
			}
		}
	}
	m2.Shutdown()
	checkNoGoroutineLeak(t, before)
}

// TestHistoryRegisterRejectsUnsafeIDs pins the directory-derivation
// guard: under a manager-level HistoryRoot a stream ID is a directory
// name, so IDs that would escape or alias the root are refused at
// registration — unless the spec brings its own history configuration.
func TestHistoryRegisterRejectsUnsafeIDs(t *testing.T) {
	before := runtime.NumGoroutine()
	m := NewManager(Config{Workers: 1, History: histRoot(t.TempDir())})
	defer func() {
		m.Shutdown()
		checkNoGoroutineLeak(t, before)
	}()
	for _, id := range []string{"a/b", `a\b`, ".", ".."} {
		spec := StreamSpec{ID: id, Ingest: testIngestCfg(1, 40, 0), Pipeline: testPipeline(1, nil)}
		if err := m.Register(spec); err == nil {
			t.Errorf("Register(%q) accepted an unsafe history directory name", id)
		}
	}
	// A spec with its own history config bypasses the derivation and the
	// guard with it.
	spec := StreamSpec{ID: "a/b", Ingest: testIngestCfg(1, 40, 0), Pipeline: testPipeline(1, nil)}
	spec.Ingest.History = &ingest.HistoryConfig{Dir: t.TempDir()}
	if err := m.Register(spec); err != nil {
		t.Errorf("Register with explicit history config: %v", err)
	}
}

// TestAsOfWithoutHistory pins the error surface: AsOf against a
// history-less stream reports the ingest error, and against an unknown
// stream reports ErrUnknownStream.
func TestAsOfWithoutHistory(t *testing.T) {
	before := runtime.NumGoroutine()
	m := NewManager(Config{Workers: 1})
	defer func() {
		m.Shutdown()
		checkNoGoroutineLeak(t, before)
	}()
	spec := StreamSpec{ID: "plain", Ingest: testIngestCfg(1, 40, 0), Pipeline: testPipeline(1, nil)}
	if err := m.Register(spec); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.AsOf("plain", 10); err == nil {
		t.Error("AsOf on a history-less stream succeeded")
	}
	if _, _, err := m.AsOf("ghost", 10); !errors.Is(err, ErrUnknownStream) {
		t.Errorf("AsOf on unknown stream: got %v, want ErrUnknownStream", err)
	}
}
