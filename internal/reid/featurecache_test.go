package reid

import (
	"testing"

	"github.com/tmerge/tmerge/internal/vecmath"
	"github.com/tmerge/tmerge/internal/video"
)

// TestFeatureCacheMatchesMap drives the open-addressed table and a
// reference map through the same put/overwrite sequence — with an ID
// distribution dense enough to force probe collisions and several
// doublings — and requires identical contents and a sorted snapshot.
func TestFeatureCacheMatchesMap(t *testing.T) {
	var c featureCache
	ref := map[video.BBoxID]vecmath.Vec{}
	x := uint64(1)
	for i := 0; i < 5000; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		id := video.BBoxID(x % 4096) // collisions and overwrites
		v := vecmath.Vec{float64(i)}
		c.put(id, v)
		ref[id] = v
	}
	if c.len() != len(ref) {
		t.Fatalf("len %d, reference map has %d", c.len(), len(ref))
	}
	for id, want := range ref {
		got, ok := c.get(id)
		if !ok || &got[0] != &want[0] {
			t.Fatalf("get(%d) = %v, %v; want the stored vector", id, got, ok)
		}
	}
	for id := video.BBoxID(4096); id < 4196; id++ {
		if _, ok := c.get(id); ok {
			t.Fatalf("get(%d) hit on a never-stored ID", id)
		}
	}
	ids := c.sortedIDs(nil)
	if len(ids) != len(ref) {
		t.Fatalf("sortedIDs returned %d IDs, want %d", len(ids), len(ref))
	}
	for i, id := range ids {
		if i > 0 && ids[i-1] >= id {
			t.Fatalf("sortedIDs not strictly ascending at %d: %d, %d", i, ids[i-1], id)
		}
		if _, ok := ref[id]; !ok {
			t.Fatalf("sortedIDs returned unknown ID %d", id)
		}
	}

	// reset empties the table but keeps its backing arrays for refill.
	before := len(c.keys)
	c.reset()
	if c.len() != 0 || len(c.keys) != before {
		t.Fatalf("reset: len %d, capacity %d (was %d)", c.len(), len(c.keys), before)
	}
	if _, ok := c.get(ids[0]); ok {
		t.Fatal("get hit after reset")
	}
	c.put(7, vecmath.Vec{1})
	if got, ok := c.get(7); !ok || got[0] != 1 {
		t.Fatal("put after reset lost the entry")
	}
}

// TestFeatureCacheReserve: a reserved table absorbs the promised number
// of inserts without growing.
func TestFeatureCacheReserve(t *testing.T) {
	var c featureCache
	c.reserve(1000)
	size := len(c.keys)
	if size == 0 || size&(size-1) != 0 {
		t.Fatalf("reserved size %d is not a power of two", size)
	}
	v := vecmath.Vec{1}
	for i := 0; i < 1000; i++ {
		c.put(video.BBoxID(i), v)
	}
	if len(c.keys) != size {
		t.Fatalf("table grew from %d to %d despite reserve(1000)", size, len(c.keys))
	}
}

// TestFeatureCacheSteadyStateAllocs pins the replay-commit hot path:
// lookups and overwrites of a warmed cache allocate nothing, and a full
// stream of fresh inserts costs only the O(log n) doublings.
func TestFeatureCacheSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("testing.AllocsPerRun is unreliable under the race detector")
	}
	var c featureCache
	v := vecmath.Vec{1, 2, 3}
	for i := 0; i < 1000; i++ {
		c.put(video.BBoxID(i), v)
	}
	got := testing.AllocsPerRun(100, func() {
		for i := 0; i < 1000; i++ {
			if _, ok := c.get(video.BBoxID(i)); !ok {
				t.Fatal("warm entry missing")
			}
		}
		for i := 0; i < 1000; i++ {
			c.put(video.BBoxID(i), v)
		}
	})
	if got != 0 {
		t.Errorf("warm get/put: %v allocs per run, want 0", got)
	}
}
