package reid

import (
	"github.com/tmerge/tmerge/internal/vecmath"
	"github.com/tmerge/tmerge/internal/video"
)

// TrackPairMeans computes the exact track-pair score (Definition 3.1) —
// the mean normalised distance over the full BBox cross product — for a
// batch of track pairs as ONE device submission, streaming over the cross
// products without materialising them. It is the execution path of the
// exhaustive baseline (and BL-B), whose cross products reach millions of
// BBox pairs per window.
func (o *Oracle) TrackPairMeans(pairs []*video.Pair) []float64 {
	o.mu.Lock()
	defer o.mu.Unlock()

	// Plan: distinct uncached boxes across the batch.
	plan := newExtractPlan(o)
	totalDistances := 0
	for _, p := range pairs {
		plan.addTrack(p.TI)
		plan.addTrack(p.TJ)
		totalDistances += p.NumBBoxPairs()
	}
	plan.execute(totalDistances)

	out := make([]float64, len(pairs))
	for k, p := range pairs {
		fi := plan.features(p.TI)
		fj := plan.features(p.TJ)
		var sum float64
		for _, a := range fi {
			for _, b := range fj {
				sum += o.model.Normalize(vecmath.Dist2(a, b))
			}
		}
		n := len(fi) * len(fj)
		if n == 0 {
			out[k] = 1
			continue
		}
		out[k] = sum / float64(n)
	}
	o.stats.Distances += int64(totalDistances)
	return out
}

// SampleSpec names a subset of one track pair's BBox cross product by
// row-major indices (video.Pair.BBoxPairAt order).
type SampleSpec struct {
	Pair    *video.Pair
	Indices []int
}

// SampledMeans computes, as one device submission, the sample-mean score
// estimate (Equation 8) for each spec. It is the execution path of PS and
// PS-B.
func (o *Oracle) SampledMeans(specs []SampleSpec) []float64 {
	o.mu.Lock()
	defer o.mu.Unlock()

	plan := newExtractPlan(o)
	totalDistances := 0
	for _, s := range specs {
		m := s.Pair.TJ.Len()
		for _, idx := range s.Indices {
			plan.addBox(s.Pair.TI.Boxes[idx/m])
			plan.addBox(s.Pair.TJ.Boxes[idx%m])
		}
		totalDistances += len(s.Indices)
	}
	plan.execute(totalDistances)

	out := make([]float64, len(specs))
	for k, s := range specs {
		if len(s.Indices) == 0 {
			out[k] = 1
			continue
		}
		m := s.Pair.TJ.Len()
		var sum float64
		for _, idx := range s.Indices {
			a := plan.feature(s.Pair.TI.Boxes[idx/m].ID)
			b := plan.feature(s.Pair.TJ.Boxes[idx%m].ID)
			sum += o.model.Normalize(vecmath.Dist2(a, b))
		}
		out[k] = sum / float64(len(s.Indices))
	}
	o.stats.Distances += int64(totalDistances)
	return out
}

// extractPlan accumulates the distinct boxes a submission must embed and
// provides feature lookup afterwards. When the oracle cache is enabled,
// features land in the shared cache; otherwise they live only in the plan.
// Callers must hold o.mu for the plan's lifetime; stats are committed only
// by a successful execute, so a failed submission leaves them untouched.
type extractPlan struct {
	o     *Oracle
	boxes []video.BBox
	hits  int64 // cache hits observed while planning
	local map[video.BBoxID]vecmath.Vec
	seen  map[video.BBoxID]bool
	// trackFeat memoises per-track feature slices so the baseline's inner
	// loops avoid per-box map lookups.
	trackFeat map[*video.Track][]vecmath.Vec
}

func newExtractPlan(o *Oracle) *extractPlan {
	return &extractPlan{
		o:         o,
		local:     make(map[video.BBoxID]vecmath.Vec),
		seen:      make(map[video.BBoxID]bool),
		trackFeat: make(map[*video.Track][]vecmath.Vec),
	}
}

func (p *extractPlan) addBox(b video.BBox) {
	if p.seen[b.ID] {
		return
	}
	if p.o.cacheEnabled {
		if _, ok := p.o.cache[b.ID]; ok {
			p.hits++
			p.seen[b.ID] = true
			return
		}
	}
	p.seen[b.ID] = true
	p.boxes = append(p.boxes, b)
}

func (p *extractPlan) addTrack(t *video.Track) {
	if _, done := p.trackFeat[t]; done {
		return
	}
	p.trackFeat[t] = nil // mark; filled lazily by features()
	for _, b := range t.Boxes {
		p.addBox(b)
	}
}

// execute runs the single submission embedding every planned box and
// charging nDistances distance costs.
func (p *extractPlan) execute(nDistances int) {
	results := make([]vecmath.Vec, len(p.boxes))
	run := func(i int) { results[i] = p.o.model.Embed(p.boxes[i].Obs) }
	if len(p.boxes) == 0 {
		run = nil
	}
	p.o.dev.Submit(len(p.boxes), nDistances, run)
	p.o.stats.CacheHits += p.hits
	p.o.stats.Extractions += int64(len(p.boxes))
	for i, b := range p.boxes {
		p.local[b.ID] = results[i]
		if p.o.cacheEnabled {
			p.o.cache[b.ID] = results[i]
		}
	}
}

func (p *extractPlan) feature(id video.BBoxID) vecmath.Vec {
	if f, ok := p.local[id]; ok {
		return f
	}
	return p.o.cache[id]
}

// features returns the per-box feature slice of a planned track.
func (p *extractPlan) features(t *video.Track) []vecmath.Vec {
	if fs := p.trackFeat[t]; fs != nil {
		return fs
	}
	fs := make([]vecmath.Vec, len(t.Boxes))
	for i, b := range t.Boxes {
		fs[i] = p.feature(b.ID)
	}
	p.trackFeat[t] = fs
	return fs
}
