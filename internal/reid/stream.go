package reid

import (
	"sync"

	"github.com/tmerge/tmerge/internal/vecmath"
	"github.com/tmerge/tmerge/internal/video"
)

// TrackPairMeans computes the exact track-pair score (Definition 3.1) —
// the mean normalised distance over the full BBox cross product — for a
// batch of track pairs as ONE device submission, streaming over the cross
// products without materialising them. It is the execution path of the
// exhaustive baseline (and BL-B), whose cross products reach millions of
// BBox pairs per window.
func (o *Oracle) TrackPairMeans(pairs []*video.Pair) []float64 {
	// Plan under the lock: distinct uncached boxes across the batch.
	o.mu.Lock()
	plan := newExtractPlan(o)
	totalDistances := 0
	for _, p := range pairs {
		plan.addTrack(p.TI)
		plan.addTrack(p.TJ)
		totalDistances += p.NumBBoxPairs()
	}
	o.mu.Unlock()

	// Submit outside the lock; execute re-acquires it to commit.
	plan.execute(totalDistances)

	out := make([]float64, len(pairs))
	for k, p := range pairs {
		fi := plan.features(p.TI)
		fj := plan.features(p.TJ)
		var sum float64
		for _, a := range fi {
			for _, b := range fj {
				sum += o.model.Normalize(vecmath.Dist2(a, b))
			}
		}
		n := len(fi) * len(fj)
		if n == 0 {
			out[k] = 1
			continue
		}
		out[k] = sum / float64(n)
	}
	plan.release()
	return out
}

// SampleSpec names a subset of one track pair's BBox cross product by
// row-major indices (video.Pair.BBoxPairAt order).
type SampleSpec struct {
	Pair    *video.Pair
	Indices []int
}

// SampledMeans computes, as one device submission, the sample-mean score
// estimate (Equation 8) for each spec. It is the execution path of PS and
// PS-B.
func (o *Oracle) SampledMeans(specs []SampleSpec) []float64 {
	o.mu.Lock()
	plan := newExtractPlan(o)
	totalDistances := 0
	for _, s := range specs {
		m := s.Pair.TJ.Len()
		for _, idx := range s.Indices {
			plan.addBox(s.Pair.TI.Boxes[idx/m])
			plan.addBox(s.Pair.TJ.Boxes[idx%m])
		}
		totalDistances += len(s.Indices)
	}
	o.mu.Unlock()

	plan.execute(totalDistances)

	out := make([]float64, len(specs))
	for k, s := range specs {
		if len(s.Indices) == 0 {
			out[k] = 1
			continue
		}
		m := s.Pair.TJ.Len()
		var sum float64
		for _, idx := range s.Indices {
			a := plan.feature(s.Pair.TI.Boxes[idx/m].ID)
			b := plan.feature(s.Pair.TJ.Boxes[idx%m].ID)
			sum += o.model.Normalize(vecmath.Dist2(a, b))
		}
		out[k] = sum / float64(len(s.Indices))
	}
	plan.release()
	return out
}

// extractPlan accumulates the distinct boxes a submission must embed and
// provides feature lookup afterwards. The protocol mirrors
// DistanceBatch's three phases: callers hold o.mu while planning (addBox
// and addTrack read the shared cache, copying any hit into the plan's
// local map), release it, then call execute, which submits to the device
// lock-free and re-acquires o.mu only to commit stats and fresh
// embeddings. Stats are committed only by a successful execute, so a
// failed (panicking) submission leaves them untouched. After execute,
// feature lookups read only plan-local state and need no lock.
//
// Plans are pooled: the selection loops start one per bandit round, and
// recycling the plan (with its maps and slices) through release keeps
// the steady-state round allocation-free. A released plan must not be
// touched again.
type extractPlan struct {
	o            *Oracle
	cacheEnabled bool // snapshot of o.cacheEnabled at plan time
	boxes        []video.BBox
	hits         int64 // cache hits observed while planning
	local        map[video.BBoxID]vecmath.Vec
	seen         map[video.BBoxID]bool
	// all collects every distinct referenced box ID in encounter order —
	// cache hits included — when the oracle is a recording speculative
	// session (o.store != nil); it becomes the SubmissionRecord the
	// canonical replay re-plans against the real cache.
	all []video.BBoxID
	// trackFeat memoises per-track feature slices so the baseline's inner
	// loops avoid per-box map lookups.
	trackFeat map[*video.Track][]vecmath.Vec
	// results is the reused extraction output scratch of execute.
	results []vecmath.Vec
}

// planPool recycles extractPlans across submissions; see release.
var planPool = sync.Pool{New: func() any {
	return &extractPlan{
		local:     make(map[video.BBoxID]vecmath.Vec),
		seen:      make(map[video.BBoxID]bool),
		trackFeat: make(map[*video.Track][]vecmath.Vec),
	}
}}

// newExtractPlan starts a plan; the caller must hold o.mu.
func newExtractPlan(o *Oracle) *extractPlan {
	p := planPool.Get().(*extractPlan)
	p.o = o
	p.cacheEnabled = o.cacheEnabled
	return p
}

// release recycles the plan once every feature lookup is done. The
// caller must not hold o.mu and must not use the plan afterwards; any
// feature slices read out of it remain valid (they are owned by the
// cache, the feature store, or the fresh extraction results, never by
// the plan).
func (p *extractPlan) release() {
	p.o = nil
	p.hits = 0
	p.boxes = p.boxes[:0]
	p.all = p.all[:0]
	p.results = p.results[:0]
	clear(p.local)
	clear(p.seen)
	clear(p.trackFeat)
	planPool.Put(p)
}

// addBox plans one box; the caller must hold o.mu.
func (p *extractPlan) addBox(b video.BBox) {
	if p.seen[b.ID] {
		return
	}
	p.seen[b.ID] = true
	if p.o.store != nil {
		// Speculative session: record the reference and reuse any
		// embedding another window already computed. Value reuse here is
		// always sound (embeddings are deterministic); whether the box
		// counts as a cache hit or an extraction is decided by the
		// canonical replay, not by this speculative plan.
		p.all = append(p.all, b.ID)
		if f, ok := p.o.store.Get(b.ID); ok {
			p.local[b.ID] = f
			return
		}
		p.boxes = append(p.boxes, b)
		return
	}
	if p.cacheEnabled {
		if f, ok := p.o.cache.get(b.ID); ok {
			p.hits++
			p.local[b.ID] = f
			return
		}
	}
	p.boxes = append(p.boxes, b)
}

func (p *extractPlan) addTrack(t *video.Track) {
	if _, done := p.trackFeat[t]; done {
		return
	}
	p.trackFeat[t] = nil // mark; filled lazily by features()
	for _, b := range t.Boxes {
		p.addBox(b)
	}
}

// execute runs the single submission embedding every planned box and
// charging nDistances distance costs. The caller must NOT hold o.mu:
// the submission blocks on modeled device latency, and execute
// re-acquires the mutex itself to commit stats and cache entries.
func (p *extractPlan) execute(nDistances int) {
	if cap(p.results) < len(p.boxes) {
		p.results = make([]vecmath.Vec, len(p.boxes))
	}
	results := p.results[:len(p.boxes)]
	run := func(i int) { results[i] = p.o.model.Embed(p.boxes[i].Obs) }
	if len(p.boxes) == 0 {
		run = nil
	}
	p.o.dev.Submit(len(p.boxes), nDistances, run)
	p.o.mu.Lock()
	defer p.o.mu.Unlock()
	if p.o.store != nil {
		// Speculative session: publish fresh embeddings to the shared
		// store and append the submission record; the real device,
		// stats, and cache are untouched until the canonical replay.
		// The record's box IDs go into the session's flat arena — one
		// growing buffer instead of a small allocation per submission
		// (records keep aliasing an outgrown arena's old backing, which
		// stays correct because records are immutable once appended).
		for i, b := range p.boxes {
			p.local[b.ID] = results[i]
			p.o.store.Put(b.ID, results[i])
		}
		start := len(p.o.arena)
		p.o.arena = append(p.o.arena, p.all...)
		boxes := p.o.arena[start:len(p.o.arena):len(p.o.arena)]
		p.o.rec = append(p.o.rec, SubmissionRecord{Boxes: boxes, NDistances: nDistances})
		p.all = p.all[:0]
		return
	}
	p.o.stats.CacheHits += p.hits
	p.o.stats.Extractions += int64(len(p.boxes))
	p.o.stats.Distances += int64(nDistances)
	for i, b := range p.boxes {
		p.local[b.ID] = results[i]
		if p.cacheEnabled {
			p.o.cache.put(b.ID, results[i])
		}
	}
}

// feature returns a planned box's embedding from plan-local state; valid
// after execute with no lock held.
func (p *extractPlan) feature(id video.BBoxID) vecmath.Vec {
	return p.local[id]
}

// features returns the per-box feature slice of a planned track.
func (p *extractPlan) features(t *video.Track) []vecmath.Vec {
	if fs := p.trackFeat[t]; fs != nil {
		return fs
	}
	fs := make([]vecmath.Vec, len(t.Boxes))
	for i, b := range t.Boxes {
		fs[i] = p.feature(b.ID)
	}
	p.trackFeat[t] = fs
	return fs
}
