//go:build race

package reid

// raceEnabled reports whether the race detector instruments this build;
// testing.AllocsPerRun over-reports under it, so allocation-pinning
// tests skip themselves.
const raceEnabled = true
