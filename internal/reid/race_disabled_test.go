//go:build !race

package reid

// raceEnabled reports whether the race detector instruments this build.
const raceEnabled = false
