package reid

import (
	"fmt"
	"sync"

	"github.com/tmerge/tmerge/internal/device"
	"github.com/tmerge/tmerge/internal/vecmath"
	"github.com/tmerge/tmerge/internal/video"
)

// FeatureStore is a concurrency-safe embedding cache shared by the
// speculative sessions of one pipeline pass. Embeddings are pure
// functions of their BBox observations (the model's weights are fixed at
// construction), so concurrent writers racing on the same box store the
// same vector and reads are value-deterministic regardless of
// interleaving — the store trades *accounting* precision, which the
// ordered replay recomputes canonically, never *values*.
type FeatureStore struct {
	mu sync.RWMutex
	m  map[video.BBoxID]vecmath.Vec
}

// NewFeatureStore returns an empty store.
func NewFeatureStore() *FeatureStore {
	return &FeatureStore{m: make(map[video.BBoxID]vecmath.Vec)}
}

// Get returns the stored embedding of a box, if present.
func (s *FeatureStore) Get(id video.BBoxID) (vecmath.Vec, bool) {
	s.mu.RLock()
	v, ok := s.m[id]
	s.mu.RUnlock()
	return v, ok
}

// Put stores the embedding of a box. Concurrent Puts for the same box
// are benign: every caller computes the same vector.
func (s *FeatureStore) Put(id video.BBoxID, v vecmath.Vec) {
	s.mu.Lock()
	s.m[id] = v
	s.mu.Unlock()
}

// Len returns the number of stored embeddings.
func (s *FeatureStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// SubmissionRecord is one planned oracle submission captured by a
// speculative session: the distinct boxes the submission referenced, in
// plan-encounter order, and the number of distance computations it
// charges. Which of the boxes become feature extractions is NOT recorded
// — it depends on the cache state at execution time, which only the
// canonical replay (Oracle.ReplayLog) knows.
type SubmissionRecord struct {
	// Boxes are the submission's distinct referenced boxes in
	// plan-encounter order (first reference wins; later references to the
	// same BBoxID within the submission are deduplicated, exactly like
	// the real plan phase).
	Boxes []video.BBox
	// NDistances is the number of BBox pair distances the submission
	// charges to the device.
	NDistances int
}

// Session is a speculative, recording view of an Oracle. Selection
// algorithms run against Session.Oracle() exactly as they would against
// the real oracle and observe bit-identical distances (embeddings are
// deterministic), but no device time is charged, no faults can fire, and
// no shared stats or cache entries are touched: embeddings go to the
// shared FeatureStore and every would-be device submission is appended
// to the session's log. Replaying the log with Oracle.ReplayLog against
// the real oracle, in canonical window order, then commits exactly the
// stats, cache entries, virtual time, and fault-path activity the
// sequential execution would have produced.
//
// A Session is not safe for concurrent use; create one per window (the
// FeatureStore behind them may be shared freely).
type Session struct {
	o *Oracle
}

// Speculate returns a new speculative session whose embeddings are
// shared through store. The session inherits the oracle's model and
// cache-enablement; its device is a zero-cost local executor, so the
// embedding forward passes (the real CPU work) run on the calling
// goroutine.
func (o *Oracle) Speculate(store *FeatureStore) *Session {
	if store == nil {
		panic("reid: Speculate with nil store")
	}
	o.mu.Lock()
	ce := o.cacheEnabled
	o.mu.Unlock()
	return &Session{o: &Oracle{
		model:        o.model,
		dev:          device.NewCPU(device.CostModel{}),
		cacheEnabled: ce,
		store:        store,
	}}
}

// Oracle returns the shadow oracle selection algorithms should query.
func (s *Session) Oracle() *Oracle { return s.o }

// Log returns the submissions recorded so far, in execution order.
func (s *Session) Log() []SubmissionRecord {
	s.o.mu.Lock()
	defer s.o.mu.Unlock()
	return s.o.rec
}

// ReplayLog replays a speculative session's submission log against the
// real oracle: for each record, in order, it re-plans the submission
// against the oracle's current cache (so cache hits, feature
// extractions, and the device's virtual cost come out exactly as a
// sequential execution's would), submits to the real device — faults,
// retries, backoff, and breaker transitions all fire here, in canonical
// submission order — and on success commits the stats delta and fresh
// cache entries. Extraction results are copied from store, never
// recomputed, so replay costs no model forward passes.
//
// The first failed submission aborts the replay with a *device.Unavailable
// error (matching the panic an infallible Submit would have raised
// mid-window); earlier records stay committed, exactly like a sequential
// window that degraded partway through. A record referencing a box the
// store has never seen reports a plain error: that is a programming bug,
// not a device fault.
func (o *Oracle) ReplayLog(log []SubmissionRecord, store *FeatureStore) error {
	if len(log) == 0 {
		return nil
	}
	if store == nil {
		return fmt.Errorf("reid: ReplayLog with nil store")
	}
	f := device.AsFallible(o.dev)
	for ri := range log {
		rec := &log[ri]

		// Plan against the canonical cache under the lock.
		o.mu.Lock()
		cacheEnabled := o.cacheEnabled
		var hits int64
		ids := make([]video.BBoxID, 0, len(rec.Boxes))
		vecs := make([]vecmath.Vec, 0, len(rec.Boxes))
		for _, b := range rec.Boxes {
			if cacheEnabled {
				if _, ok := o.cache[b.ID]; ok {
					hits++
					continue
				}
			}
			v, ok := store.Get(b.ID)
			if !ok {
				o.mu.Unlock()
				return fmt.Errorf("reid: replay record %d references box %d absent from the feature store", ri, b.ID)
			}
			ids = append(ids, b.ID)
			vecs = append(vecs, v)
		}
		o.mu.Unlock()

		// Submit outside the lock: the run function only installs the
		// precomputed embeddings, but the device still charges the full
		// modeled extraction/distance cost and the fault stack still sees
		// one submission per record.
		run := func(i int) {}
		if len(ids) == 0 {
			run = nil
		}
		if err := f.TrySubmit(len(ids), rec.NDistances, run); err != nil {
			return &device.Unavailable{Err: err}
		}

		// Commit the canonical accounting.
		o.mu.Lock()
		o.stats.CacheHits += hits
		o.stats.Extractions += int64(len(ids))
		o.stats.Distances += int64(rec.NDistances)
		if cacheEnabled {
			for i, id := range ids {
				o.cache[id] = vecs[i]
			}
		}
		o.mu.Unlock()
	}
	return nil
}
