package reid

import (
	"fmt"
	"sync"

	"github.com/tmerge/tmerge/internal/device"
	"github.com/tmerge/tmerge/internal/vecmath"
	"github.com/tmerge/tmerge/internal/video"
)

// featureShards is the shard count of FeatureStore. Box IDs are assigned
// densely by the tracker, so a simple modulus spreads adjacent windows'
// boxes across shards; 32 shards keep cross-worker contention negligible
// at every worker count the executor supports.
const featureShards = 32

// featureShard is one lock-striped slice of the store.
type featureShard struct {
	mu sync.RWMutex
	m  map[video.BBoxID]vecmath.Vec
}

// FeatureStore is a concurrency-safe embedding cache shared by the
// speculative sessions of one pipeline pass. Embeddings are pure
// functions of their BBox observations (the model's weights are fixed at
// construction), so concurrent writers racing on the same box store the
// same vector and reads are value-deterministic regardless of
// interleaving — the store trades *accounting* precision, which the
// ordered replay recomputes canonically, never *values*. The store is
// sharded so concurrent windows racing on overlapping track content do
// not serialise on one mutex.
type FeatureStore struct {
	shards [featureShards]featureShard
}

// NewFeatureStore returns an empty store.
func NewFeatureStore() *FeatureStore {
	s := &FeatureStore{}
	for i := range s.shards {
		s.shards[i].m = make(map[video.BBoxID]vecmath.Vec)
	}
	return s
}

func (s *FeatureStore) shard(id video.BBoxID) *featureShard {
	return &s.shards[uint64(id)%featureShards]
}

// Get returns the stored embedding of a box, if present.
func (s *FeatureStore) Get(id video.BBoxID) (vecmath.Vec, bool) {
	sh := s.shard(id)
	sh.mu.RLock()
	v, ok := sh.m[id]
	sh.mu.RUnlock()
	return v, ok
}

// Put stores the embedding of a box. Concurrent Puts for the same box
// are benign: every caller computes the same vector.
func (s *FeatureStore) Put(id video.BBoxID, v vecmath.Vec) {
	sh := s.shard(id)
	sh.mu.Lock()
	sh.m[id] = v
	sh.mu.Unlock()
}

// Len returns the number of stored embeddings.
func (s *FeatureStore) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// SubmissionRecord is one planned oracle submission captured by a
// speculative session: the distinct boxes the submission referenced (by
// identity — the embeddings live in the shared FeatureStore), in
// plan-encounter order, and the number of distance computations it
// charges. Which of the boxes become feature extractions is NOT recorded
// — it depends on the cache state at execution time, which only the
// canonical replay (Oracle.ReplayLog) knows.
type SubmissionRecord struct {
	// Boxes are the submission's distinct referenced box IDs in
	// plan-encounter order (first reference wins; later references to the
	// same BBoxID within the submission are deduplicated, exactly like
	// the real plan phase). The slice may alias the session's shared
	// record arena; treat it as immutable.
	Boxes []video.BBoxID
	// NDistances is the number of BBox pair distances the submission
	// charges to the device.
	NDistances int
}

// Session is a speculative, recording view of an Oracle. Selection
// algorithms run against Session.Oracle() exactly as they would against
// the real oracle and observe bit-identical distances (embeddings are
// deterministic), but no device time is charged, no faults can fire, and
// no shared stats or cache entries are touched: embeddings go to the
// shared FeatureStore and every would-be device submission is appended
// to the session's log. Replaying the log with Oracle.ReplayLog against
// the real oracle, in canonical window order, then commits exactly the
// stats, cache entries, virtual time, and fault-path activity the
// sequential execution would have produced.
//
// A Session is not safe for concurrent use; create one per window (the
// FeatureStore behind them may be shared freely).
type Session struct {
	o *Oracle
}

// Speculate returns a new speculative session whose embeddings are
// shared through store. The session inherits the oracle's model and
// cache-enablement; its device is a zero-cost local executor, so the
// embedding forward passes (the real CPU work) run on the calling
// goroutine.
func (o *Oracle) Speculate(store *FeatureStore) *Session {
	if store == nil {
		panic("reid: Speculate with nil store")
	}
	o.mu.Lock()
	ce := o.cacheEnabled
	o.mu.Unlock()
	return &Session{o: &Oracle{
		model:        o.model,
		dev:          device.NewCPU(device.CostModel{}),
		cacheEnabled: ce,
		store:        store,
	}}
}

// Oracle returns the shadow oracle selection algorithms should query.
func (s *Session) Oracle() *Oracle { return s.o }

// Log returns the submissions recorded so far, in execution order.
func (s *Session) Log() []SubmissionRecord {
	s.o.mu.Lock()
	defer s.o.mu.Unlock()
	return s.o.rec
}

// ReplayLog replays a speculative session's submission log against the
// real oracle: for each record, in order, it re-plans the submission
// against the oracle's current cache (so cache hits, feature
// extractions, and the device's virtual cost come out exactly as a
// sequential execution's would), submits to the real device — faults,
// retries, backoff, and breaker transitions all fire here, in canonical
// submission order — and on success commits the stats delta and fresh
// cache entries. Extraction results are copied from store, never
// recomputed, so replay costs no model forward passes.
//
// The first failed submission aborts the replay with a *device.Unavailable
// error (matching the panic an infallible Submit would have raised
// mid-window); earlier records stay committed, exactly like a sequential
// window that degraded partway through. A record referencing a box the
// store has never seen reports a plain error: that is a programming bug,
// not a device fault.
func (o *Oracle) ReplayLog(log []SubmissionRecord, store *FeatureStore) error {
	if len(log) == 0 {
		return nil
	}
	return o.ReplayBatch([][]SubmissionRecord{log}, store)[0]
}

// replayNoop is the nil-op extraction body of replayed submissions: the
// embeddings were computed during speculation and only their cost is
// re-charged here. A package-level func avoids a closure per record.
func replayNoop(int) {}

// ReplayBatch replays the submission logs of several windows, in slice
// order, as one batched pass — the TMerge-B insight applied to
// certification: instead of paying the full replay machinery per window,
// the committer hands every certified-in-order window currently in
// flight to one call that shares the fallible-device lookup and the
// planning scratch across all their records. Record semantics are
// bit-identical to calling ReplayLog per window in the same order: each
// record re-plans against the canonical cache under the oracle lock,
// submits to the real device unlocked (faults, retries, backoff, and
// breaker transitions fire here, in canonical submission order), and
// commits stats and cache entries on success.
//
// The returned slice has one entry per log: nil for a fully replayed
// window, a *device.Unavailable for a window whose replay hit an
// unavailable device (its remaining records are abandoned, committed
// ones stay charged, and later windows' logs still replay — exactly like
// consecutive sequential windows degrading independently), or a plain
// error for a log referencing a box the store has never seen.
func (o *Oracle) ReplayBatch(logs [][]SubmissionRecord, store *FeatureStore) []error {
	errs := make([]error, len(logs))
	total := 0
	for _, log := range logs {
		total += len(log)
	}
	if total == 0 {
		return errs
	}
	if store == nil {
		for i := range errs {
			errs[i] = fmt.Errorf("reid: ReplayLog with nil store")
		}
		return errs
	}
	f := device.AsFallible(o.dev)
	// Planning scratch shared by every record of the batch.
	var ids []video.BBoxID
	var vecs []vecmath.Vec
	for li, log := range logs {
	replay:
		for ri := range log {
			rec := &log[ri]

			// Plan against the canonical cache under the lock.
			o.mu.Lock()
			cacheEnabled := o.cacheEnabled
			var hits int64
			ids = ids[:0]
			vecs = vecs[:0]
			for _, id := range rec.Boxes {
				if cacheEnabled {
					if _, ok := o.cache.get(id); ok {
						hits++
						continue
					}
				}
				v, ok := store.Get(id)
				if !ok {
					o.mu.Unlock()
					errs[li] = fmt.Errorf("reid: replay record %d references box %d absent from the feature store", ri, id)
					break replay
				}
				ids = append(ids, id)
				vecs = append(vecs, v)
			}
			o.mu.Unlock()

			// Submit outside the lock: the run function is a no-op (the
			// embeddings are precomputed), but the device still charges the
			// full modeled extraction/distance cost and the fault stack
			// still sees one submission per record.
			run := replayNoop
			if len(ids) == 0 {
				run = nil
			}
			if err := f.TrySubmit(len(ids), rec.NDistances, run); err != nil {
				errs[li] = &device.Unavailable{Err: err}
				break replay
			}

			// Commit the canonical accounting.
			o.mu.Lock()
			o.stats.CacheHits += hits
			o.stats.Extractions += int64(len(ids))
			o.stats.Distances += int64(rec.NDistances)
			if cacheEnabled {
				for i, id := range ids {
					o.cache.put(id, vecs[i])
				}
			}
			o.mu.Unlock()
		}
	}
	return errs
}
