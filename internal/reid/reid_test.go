package reid

import (
	"testing"
	"testing/quick"

	"github.com/tmerge/tmerge/internal/device"
	"github.com/tmerge/tmerge/internal/vecmath"
	"github.com/tmerge/tmerge/internal/video"
	"github.com/tmerge/tmerge/internal/xrand"
)

const dim = 32

func newTestOracle() *Oracle {
	return NewOracle(NewModel(7, dim), device.NewCPU(device.DefaultCPU))
}

func randomObs(r *xrand.RNG) vecmath.Vec {
	v := vecmath.NewVec(dim)
	for i := range v {
		v[i] = r.Gaussian(0, 1)
	}
	return vecmath.Normalize(v)
}

func noisy(r *xrand.RNG, base vecmath.Vec, sigma float64) vecmath.Vec {
	v := base.Clone()
	for i := range v {
		v[i] += r.Gaussian(0, sigma)
	}
	return v
}

func TestModelDeterminism(t *testing.T) {
	r := xrand.New(1)
	obs := randomObs(r)
	m1 := NewModel(7, dim)
	m2 := NewModel(7, dim)
	e1 := m1.Embed(obs)
	e2 := m2.Embed(obs)
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatal("same seed must give identical embeddings")
		}
	}
	m3 := NewModel(8, dim)
	e3 := m3.Embed(obs)
	diff := false
	for i := range e1 {
		if e1[i] != e3[i] {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds must give different models")
	}
}

// The defining ReID property: same-object observations embed much closer
// than different-object observations.
func TestModelSeparation(t *testing.T) {
	m := NewModel(7, dim)
	r := xrand.New(3)
	var same, diff float64
	const trials = 200
	for i := 0; i < trials; i++ {
		a := randomObs(r)
		b := randomObs(r)
		same += m.Distance(m.Embed(noisy(r, a, 0.08)), m.Embed(noisy(r, a, 0.08)))
		diff += m.Distance(m.Embed(noisy(r, a, 0.08)), m.Embed(noisy(r, b, 0.08)))
	}
	same /= trials
	diff /= trials
	if diff < 2*same {
		t.Errorf("separation too weak: same=%v diff=%v", same, diff)
	}
}

func TestNormalizeRange(t *testing.T) {
	m := NewModel(7, dim)
	f := func(d float64) bool {
		if d < 0 {
			d = -d
		}
		n := m.Normalize(d)
		return n >= 0 && n <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if m.Normalize(0) != 0 {
		t.Error("Normalize(0) must be 0")
	}
	if m.Scale() <= 0 {
		t.Error("calibrated scale must be positive")
	}
}

func TestEmbedPanicsOnWrongDim(t *testing.T) {
	m := NewModel(7, dim)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	m.Embed(vecmath.NewVec(dim + 1))
}

func box(id video.BBoxID, obs vecmath.Vec) video.BBox {
	return video.BBox{ID: id, Obs: obs}
}

func TestOracleDistanceCountsWork(t *testing.T) {
	o := newTestOracle()
	r := xrand.New(5)
	b1 := box(1, randomObs(r))
	b2 := box(2, randomObs(r))
	d := o.Distance(b1, b2)
	if d < 0 || d > 1 {
		t.Errorf("distance = %v", d)
	}
	st := o.Stats()
	if st.Distances != 1 || st.Extractions != 2 || st.CacheHits != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestOracleCacheReuse(t *testing.T) {
	o := newTestOracle()
	r := xrand.New(5)
	b1 := box(1, randomObs(r))
	b2 := box(2, randomObs(r))
	b3 := box(3, randomObs(r))
	d1 := o.Distance(b1, b2)
	d2 := o.Distance(b1, b3) // b1 cached
	_ = d2
	st := o.Stats()
	if st.Extractions != 3 {
		t.Errorf("extractions = %d, want 3", st.Extractions)
	}
	if st.CacheHits != 1 {
		t.Errorf("cache hits = %d, want 1", st.CacheHits)
	}
	// Same inputs give the same answer from cache.
	if got := o.Distance(b1, b2); got != d1 {
		t.Errorf("cached distance differs: %v vs %v", got, d1)
	}
}

func TestOracleCacheDisabled(t *testing.T) {
	o := newTestOracle()
	o.SetCacheEnabled(false)
	r := xrand.New(5)
	b1 := box(1, randomObs(r))
	b2 := box(2, randomObs(r))
	o.Distance(b1, b2)
	o.Distance(b1, b2)
	st := o.Stats()
	if st.Extractions != 4 {
		t.Errorf("extractions = %d, want 4 (no cache)", st.Extractions)
	}
	if st.CacheHits != 0 {
		t.Errorf("cache hits = %d", st.CacheHits)
	}
}

func TestOracleBatchDedup(t *testing.T) {
	o := newTestOracle()
	r := xrand.New(6)
	b1 := box(1, randomObs(r))
	b2 := box(2, randomObs(r))
	b3 := box(3, randomObs(r))
	// b1 appears in both pairs: extracted once.
	ds := o.DistanceBatch([][2]video.BBox{{b1, b2}, {b1, b3}})
	if len(ds) != 2 {
		t.Fatalf("got %d distances", len(ds))
	}
	st := o.Stats()
	if st.Extractions != 3 {
		t.Errorf("extractions = %d, want 3", st.Extractions)
	}
	if st.Distances != 2 {
		t.Errorf("distances = %d, want 2", st.Distances)
	}
	if got := o.Device().Submissions(); got != 1 {
		t.Errorf("submissions = %d, want 1", got)
	}
}

func TestOracleResets(t *testing.T) {
	o := newTestOracle()
	r := xrand.New(6)
	o.Distance(box(1, randomObs(r)), box(2, randomObs(r)))
	o.ResetStats()
	if st := o.Stats(); st.Distances != 0 || st.Extractions != 0 {
		t.Errorf("stats after reset = %+v", st)
	}
	// Cache retained after ResetStats: no new extraction.
	o.Distance(box(1, randomObs(r)), box(2, randomObs(r)))
	if st := o.Stats(); st.Extractions != 0 {
		t.Errorf("extractions after cached distance = %d", st.Extractions)
	}
	o.ResetCache()
	o.Distance(box(1, randomObs(r)), box(2, randomObs(r)))
	if st := o.Stats(); st.Extractions != 2 {
		t.Errorf("extractions after cache reset = %d", st.Extractions)
	}
}

func mkTrackWithObs(id video.TrackID, r *xrand.RNG, base vecmath.Vec, n int, firstBox video.BBoxID) *video.Track {
	t := &video.Track{ID: id}
	for i := 0; i < n; i++ {
		t.Boxes = append(t.Boxes, video.BBox{
			ID:    firstBox + video.BBoxID(i),
			Frame: video.FrameIndex(i),
			Obs:   noisy(r, base, 0.08),
		})
	}
	return t
}

func TestTrackPairMeansMatchesDistanceBatch(t *testing.T) {
	r := xrand.New(9)
	a := randomObs(r)
	b := randomObs(r)
	ti := mkTrackWithObs(1, r, a, 3, 100)
	tj := mkTrackWithObs(2, r, b, 4, 200)
	pair := video.NewPair(ti, tj)

	o1 := newTestOracle()
	streamed := o1.TrackPairMeans([]*video.Pair{pair})[0]

	o2 := newTestOracle()
	var pairs [][2]video.BBox
	for _, ba := range ti.Boxes {
		for _, bb := range tj.Boxes {
			pairs = append(pairs, [2]video.BBox{ba, bb})
		}
	}
	ds := o2.DistanceBatch(pairs)
	var sum float64
	for _, d := range ds {
		sum += d
	}
	want := sum / float64(len(ds))
	if diff := streamed - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("TrackPairMeans = %v, batch mean = %v", streamed, want)
	}
	// Work accounting matches: 7 extractions, 12 distances.
	st := o1.Stats()
	if st.Extractions != 7 || st.Distances != 12 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSampledMeansSubset(t *testing.T) {
	r := xrand.New(11)
	a := randomObs(r)
	b := randomObs(r)
	ti := mkTrackWithObs(1, r, a, 2, 100)
	tj := mkTrackWithObs(2, r, b, 2, 200)
	pair := video.NewPair(ti, tj)

	o := newTestOracle()
	full := o.TrackPairMeans([]*video.Pair{pair})[0]

	o2 := newTestOracle()
	all := o2.SampledMeans([]SampleSpec{{Pair: pair, Indices: []int{0, 1, 2, 3}}})[0]
	if diff := full - all; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("full sample mean %v != exact %v", all, full)
	}

	o3 := newTestOracle()
	one := o3.SampledMeans([]SampleSpec{{Pair: pair, Indices: []int{0}}})[0]
	if one < 0 || one > 1 {
		t.Errorf("single-sample mean = %v", one)
	}
	if st := o3.Stats(); st.Distances != 1 || st.Extractions != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSampledMeansEmptyIndices(t *testing.T) {
	r := xrand.New(12)
	pair := video.NewPair(mkTrackWithObs(1, r, randomObs(r), 1, 1), mkTrackWithObs(2, r, randomObs(r), 1, 2))
	o := newTestOracle()
	got := o.SampledMeans([]SampleSpec{{Pair: pair, Indices: nil}})[0]
	if got != 1 {
		t.Errorf("empty-sample mean = %v, want 1 (rank last)", got)
	}
}
