package reid

import (
	"fmt"

	"github.com/tmerge/tmerge/internal/vecmath"
	"github.com/tmerge/tmerge/internal/video"
)

// SequenceDistance computes the normalised distance between two
// fixed-length BBox *sequences* — the sequence-input ReID variant the
// paper's footnote 2 notes its techniques equally apply to ("two
// fixed-length image sequences may be accepted as input", citing
// video-based attention models). Each side's boxes are embedded
// (cache-aware) and mean-pooled before the distance is taken; pooling
// averages out per-frame noise, so sequence distances are sharper
// estimates of track similarity at the cost of len(a)+len(b) extractions
// per call.
//
// The call is one device submission, like DistanceBatch.
func (o *Oracle) SequenceDistance(a, b []video.BBox) float64 {
	if len(a) == 0 || len(b) == 0 {
		panic(fmt.Sprintf("reid: empty sequence (%d, %d boxes)", len(a), len(b)))
	}
	o.mu.Lock()
	plan := newExtractPlan(o)
	for _, box := range a {
		plan.addBox(box)
	}
	for _, box := range b {
		plan.addBox(box)
	}
	o.mu.Unlock()
	plan.execute(1)

	pa := o.pool(plan, a)
	pb := o.pool(plan, b)
	plan.release()
	return o.model.Normalize(o.model.Distance(pa, pb))
}

// pool mean-pools the embeddings of boxes.
func (o *Oracle) pool(plan *extractPlan, boxes []video.BBox) vecmath.Vec {
	out := vecmath.NewVec(o.model.OutDim)
	for _, b := range boxes {
		vecmath.Add(out, out, plan.feature(b.ID))
	}
	vecmath.Scale(out, 1/float64(len(boxes)), out)
	return out
}

// SequenceWindow extracts a contiguous run of up to n boxes from a track,
// centred as closely as possible on index around (clamped to the track).
// It is the sampling primitive for sequence-input algorithms.
func SequenceWindow(t *video.Track, around, n int) []video.BBox {
	if n <= 0 || t.Len() == 0 {
		return nil
	}
	if n >= t.Len() {
		return t.Boxes
	}
	start := around - n/2
	if start < 0 {
		start = 0
	}
	if start+n > t.Len() {
		start = t.Len() - n
	}
	return t.Boxes[start : start+n]
}
