package reid

import (
	"math/bits"
	"slices"

	"github.com/tmerge/tmerge/internal/vecmath"
	"github.com/tmerge/tmerge/internal/video"
)

// featureCache is the oracle's embedding cache: an open-addressed,
// linear-probed table keyed by BBoxID over parallel key/value slices.
// A nil vector marks a free slot (the oracle never caches nil — every
// stored embedding is a model output of OutDim floats).
//
// The built-in map was the "replay-commit map growth" allocator on the
// streaming profile: BBox IDs advance forever, so the cache grows for
// the whole session and every bucket split allocates in the middle of
// a window commit. This table's steady-state put is allocation-free;
// it allocates only on the O(log n) doublings, and reset keeps the
// backing arrays so a recycled oracle re-fills without reallocating.
type featureCache struct {
	keys  []video.BBoxID
	vals  []vecmath.Vec
	count int
	// shift turns the Fibonacci hash into a slot index: 64 - log2(len).
	// Box IDs are assigned densely by the tracker, so multiplying by the
	// golden-ratio constant spreads consecutive IDs across the table.
	shift uint
}

// featureCacheMinSize is the table size of the first insert. Must be a
// power of two.
const featureCacheMinSize = 64

func (c *featureCache) slot(id video.BBoxID) int {
	return int((uint64(id) * 0x9E3779B97F4A7C15) >> c.shift)
}

// len returns the number of cached embeddings.
func (c *featureCache) len() int { return c.count }

// get returns the cached embedding of id, if present.
func (c *featureCache) get(id video.BBoxID) (vecmath.Vec, bool) {
	if c.count == 0 {
		return nil, false
	}
	mask := len(c.keys) - 1
	for i := c.slot(id); c.vals[i] != nil; i = (i + 1) & mask {
		if c.keys[i] == id {
			return c.vals[i], true
		}
	}
	return nil, false
}

// put stores v (which must be non-nil) under id, replacing any previous
// entry.
func (c *featureCache) put(id video.BBoxID, v vecmath.Vec) {
	if v == nil {
		panic("reid: featureCache.put with nil vector")
	}
	// Grow at 3/4 occupancy, before probing: linear probing degrades
	// sharply past that, and growing first keeps the insert loop simple.
	if 4*(c.count+1) > 3*len(c.keys) {
		c.grow(2 * len(c.keys))
	}
	mask := len(c.keys) - 1
	i := c.slot(id)
	for c.vals[i] != nil {
		if c.keys[i] == id {
			c.vals[i] = v
			return
		}
		i = (i + 1) & mask
	}
	c.keys[i] = id
	c.vals[i] = v
	c.count++
}

// grow rehashes into a table of the given size (rounded up to the
// minimum and to a power of two by construction: sizes only ever double
// from featureCacheMinSize).
func (c *featureCache) grow(size int) {
	if size < featureCacheMinSize {
		size = featureCacheMinSize
	}
	oldKeys, oldVals := c.keys, c.vals
	c.keys = make([]video.BBoxID, size)
	c.vals = make([]vecmath.Vec, size)
	c.shift = uint(64 - bits.TrailingZeros(uint(size)))
	c.count = 0
	for i, v := range oldVals {
		if v != nil {
			c.put(oldKeys[i], v)
		}
	}
}

// reserve pre-sizes the table for n entries without exceeding the load
// factor, so bulk restores insert without intermediate doublings.
func (c *featureCache) reserve(n int) {
	size := featureCacheMinSize
	for 4*n > 3*size {
		size *= 2
	}
	if size > len(c.keys) {
		c.grow(size)
	}
}

// reset empties the table, keeping the backing arrays.
func (c *featureCache) reset() {
	clear(c.vals)
	c.count = 0
}

// sortedIDs appends every cached ID to dst in ascending order — the
// deterministic iteration State snapshots require.
func (c *featureCache) sortedIDs(dst []video.BBoxID) []video.BBoxID {
	for i, v := range c.vals {
		if v != nil {
			dst = append(dst, c.keys[i])
		}
	}
	slices.Sort(dst)
	return dst
}
