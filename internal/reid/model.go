// Package reid implements the simulated re-identification model and the
// distance oracle every merging algorithm consults.
//
// The paper uses OSNet, a deep CNN trained with a triplet+softmax loss so
// that BBoxes of the same object embed close together (§V-B). Here the
// model is a fixed-weight two-layer MLP over the simulator's appearance
// observations: same-object observations (latent + noise) map to nearby
// embeddings, different objects map far apart. The forward pass is real
// CPU work, so extraction is genuinely the expensive operation, and the
// Oracle adds the virtual cost accounting and the feature cache that
// implements the paper's reuse optimisation.
package reid

import (
	"fmt"

	"github.com/tmerge/tmerge/internal/stats"
	"github.com/tmerge/tmerge/internal/vecmath"
	"github.com/tmerge/tmerge/internal/xrand"
)

// Model is the simulated ReID embedder: a fixed random-weight MLP
// in -> hidden -> out with tanh activations, plus a distance normaliser
// calibrated at construction so that normalised distances of independent
// objects concentrate well below 1 while staying far above same-object
// distances.
type Model struct {
	InDim, HiddenDim, OutDim int

	w1, w2 *vecmath.Mat
	scale  float64 // distance normaliser: dNorm = clamp01(d / scale)
	// hidden pools the MLP's hidden-activation scratch: the forward pass
	// is the hot loop of every selection algorithm, and allocating the
	// hidden layer per call was a measurable share of its GC pressure.
	// The output vector is NOT pooled — it escapes into caches and
	// feature stores and must stay owned by the caller.
	hidden *vecmath.VecPool
}

// NewModel constructs a model with deterministic weights derived from seed.
// inDim must match the simulator's AppearanceDim.
func NewModel(seed uint64, inDim int) *Model {
	if inDim <= 0 {
		panic(fmt.Sprintf("reid: inDim must be positive, got %d", inDim))
	}
	hidden := 2 * inDim
	out := inDim
	m := &Model{InDim: inDim, HiddenDim: hidden, OutDim: out}
	m.hidden = vecmath.NewVecPool(hidden)
	r := xrand.Derive(seed, "reid-weights")
	m.w1 = randomMat(r, hidden, inDim)
	m.w2 = randomMat(r, out, hidden)
	m.calibrate(xrand.Derive(seed, "reid-calibrate"))
	return m
}

func randomMat(r *xrand.RNG, rows, cols int) *vecmath.Mat {
	m := vecmath.NewMat(rows, cols)
	// He-style scaling keeps tanh activations in their linear-ish regime.
	std := 1.0 / float64(cols)
	for i := range m.Data {
		m.Data[i] = r.Gaussian(0, std) * 3
	}
	return m
}

// calibrate sets the distance normaliser from the empirical distribution
// of distances between embeddings of independent noisy observations
// (random unit latents plus typical per-frame observation noise), so that
// the bulk of cross-object pairs lands around 0.8 and the [0, 1] clamp
// rarely binds.
func (m *Model) calibrate(r *xrand.RNG) {
	const (
		samples  = 256
		obsNoise = 0.06 // typical per-frame observation noise level
	)
	dists := make([]float64, 0, samples)
	noisy := func() vecmath.Vec {
		v := randomUnit(r, m.InDim)
		for i := range v {
			v[i] += r.Gaussian(0, obsNoise)
		}
		return v
	}
	for i := 0; i < samples; i++ {
		dists = append(dists, vecmath.Dist2(m.Embed(noisy()), m.Embed(noisy())))
	}
	m.scale = stats.Quantile(dists, 0.95) * 1.15
	if m.scale <= 0 {
		m.scale = 1
	}
}

func randomUnit(r *xrand.RNG, n int) vecmath.Vec {
	v := vecmath.NewVec(n)
	for i := range v {
		v[i] = r.Gaussian(0, 1)
	}
	return vecmath.Normalize(v)
}

// Embed runs the MLP forward pass and returns a fresh embedding vector.
// The returned vector is owned by the caller; the hidden-layer scratch
// is pooled internally, so concurrent Embed calls stay safe and the per
// call allocation is exactly the returned embedding.
func (m *Model) Embed(obs vecmath.Vec) vecmath.Vec {
	if len(obs) != m.InDim {
		panic(fmt.Sprintf("reid: observation dim %d, model expects %d", len(obs), m.InDim))
	}
	hp := m.hidden.Get()
	h := *hp
	m.w1.MulVec(h, obs) // overwrites every element: no clearing needed
	vecmath.Tanh(h)
	out := vecmath.NewVec(m.OutDim)
	m.w2.MulVec(out, h)
	vecmath.Tanh(out)
	m.hidden.Put(hp)
	return out
}

// Distance returns the Euclidean distance between two embeddings.
func (m *Model) Distance(f1, f2 vecmath.Vec) float64 { return vecmath.Dist2(f1, f2) }

// Normalize maps a raw embedding distance into [0, 1] using the calibrated
// scale (the paper's normalised distance d~).
func (m *Model) Normalize(d float64) float64 { return stats.Clamp01(d / m.scale) }

// Scale exposes the calibrated normaliser (used by tests).
func (m *Model) Scale() float64 { return m.scale }
