package reid

import (
	"sync"
	"testing"

	"github.com/tmerge/tmerge/internal/device"
	"github.com/tmerge/tmerge/internal/fault"
	"github.com/tmerge/tmerge/internal/video"
	"github.com/tmerge/tmerge/internal/xrand"
)

const faultDim = 8

func faultBox(id int64, seed uint64) video.BBox {
	r := xrand.Derive(seed, "reid-fault-box")
	obs := make([]float64, faultDim)
	for i := range obs {
		obs[i] = r.Gaussian(0, 1)
	}
	return video.BBox{ID: video.BBoxID(id), Obs: obs}
}

func faultPairs(n int, seed uint64) [][2]video.BBox {
	out := make([][2]video.BBox, n)
	for i := range out {
		out[i] = [2]video.BBox{
			faultBox(int64(2*i), seed+uint64(i)),
			faultBox(int64(2*i+1), seed+uint64(i)+1000),
		}
	}
	return out
}

// TestOracleStatsUntouchedByFailedSubmission: a submission abandoned by
// the resilient wrapper (outage, breaker trip) must leave the oracle's
// counters and cache exactly as they were.
func TestOracleStatsUntouchedByFailedSubmission(t *testing.T) {
	flaky := fault.NewFlaky(device.NewCPU(device.DefaultCPU), fault.Config{})
	dev := device.NewResilientDevice(flaky, device.RetryPolicy{MaxAttempts: 2}, device.BreakerConfig{Threshold: 10}, 1)
	o := NewOracle(NewModel(7, faultDim), dev)

	pairs := faultPairs(3, 1)
	o.DistanceBatch(pairs)
	before := o.Stats()

	flaky.Crash()
	func() {
		defer func() {
			if _, ok := recover().(*device.Unavailable); !ok {
				t.Fatal("want *device.Unavailable panic")
			}
		}()
		o.DistanceBatch(faultPairs(4, 99))
	}()
	if got := o.Stats(); got != before {
		t.Errorf("stats changed across failed submission: %+v -> %+v", before, got)
	}

	// After restore the oracle works again, and the earlier batch is
	// still fully cached.
	flaky.Restore()
	o.DistanceBatch(pairs)
	after := o.Stats()
	if after.Extractions != before.Extractions {
		t.Errorf("re-querying cached pairs extracted %d new features", after.Extractions-before.Extractions)
	}
	if after.CacheHits != before.CacheHits+int64(2*len(pairs)) {
		t.Errorf("cache hits = %d, want %d", after.CacheHits, before.CacheHits+int64(2*len(pairs)))
	}
}

// TestOracleResetsWithRetriedSubmissions: ResetStats and ResetCache must
// compose with a device that retries — counters reflect only completed
// work after the reset, and a cache reset forces re-extraction even
// though earlier attempts of the same boxes were retried.
func TestOracleResetsWithRetriedSubmissions(t *testing.T) {
	// Transient rate 0.3 with 6 attempts: every logical submission
	// eventually succeeds, via a deterministic retry pattern.
	flaky := fault.NewFlaky(device.NewCPU(device.DefaultCPU), fault.Config{Seed: 4, TransientRate: 0.3})
	dev := device.NewResilientDevice(flaky, device.RetryPolicy{MaxAttempts: 6}, device.BreakerConfig{Threshold: 12}, 3)
	o := NewOracle(NewModel(7, faultDim), dev)

	pairs := faultPairs(5, 7)
	o.DistanceBatch(pairs)
	s1 := o.Stats()
	if s1.Extractions != int64(2*len(pairs)) || s1.Distances != int64(len(pairs)) {
		t.Fatalf("first batch stats = %+v", s1)
	}

	o.ResetStats()
	if s := o.Stats(); s != (Stats{}) {
		t.Fatalf("stats after reset = %+v", s)
	}

	// Same pairs again: all cached (cache survives ResetStats), and the
	// counters count only the post-reset work — regardless of how many
	// device-level retries happened.
	d1 := o.DistanceBatch(pairs)
	s2 := o.Stats()
	if s2.Extractions != 0 || s2.CacheHits != int64(2*len(pairs)) || s2.Distances != int64(len(pairs)) {
		t.Errorf("post-reset stats = %+v", s2)
	}

	// ResetCache forces re-extraction; distances must agree with the
	// cached run (the model is deterministic).
	o.ResetCache()
	d2 := o.DistanceBatch(pairs)
	s3 := o.Stats()
	if s3.Extractions != int64(2*len(pairs)) {
		t.Errorf("extractions after cache reset = %d, want %d", s3.Extractions, 2*len(pairs))
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Errorf("pair %d: distance changed across cache reset: %g vs %g", i, d1[i], d2[i])
		}
	}
	// Drive enough further submissions that the deterministic transient
	// stream provably forced retries, then confirm the oracle's counters
	// still tie out: retried device attempts never double-count work.
	o.ResetStats()
	for k := 0; k < 30; k++ {
		o.DistanceBatch(faultPairs(2, uint64(500+k)))
	}
	if rc := dev.Counters(); rc.Retries == 0 {
		t.Error("no retries happened; test exercised nothing")
	}
	if s := o.Stats(); s.Distances != 60 {
		t.Errorf("distances = %d, want 60 despite retries", s.Distances)
	}
}

// TestOracleConcurrentDistanceBatch drives the oracle from parallel
// workers — the accelerator scenario of the issue — and checks both
// race-freedom (via -race in CI) and counter coherence.
func TestOracleConcurrentDistanceBatch(t *testing.T) {
	flaky := fault.NewFlaky(device.NewAccelerator(device.DefaultAccelerator, 4), fault.Config{Seed: 8, TransientRate: 0.1})
	dev := device.NewResilientDevice(flaky, device.RetryPolicy{MaxAttempts: 6}, device.BreakerConfig{Threshold: 12}, 5)
	o := NewOracle(NewModel(7, faultDim), dev)

	const workers = 8
	const perWorker = 10
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < perWorker; k++ {
				// Overlapping box IDs across workers exercise the cache.
				pairs := faultPairs(3, uint64(w%3)*100+uint64(k))
				out := o.DistanceBatch(pairs)
				for _, d := range out {
					if d < 0 || d > 1 {
						t.Errorf("distance %g outside [0, 1]", d)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	s := o.Stats()
	wantDist := int64(workers * perWorker * 3)
	if s.Distances != wantDist {
		t.Errorf("distances = %d, want %d", s.Distances, wantDist)
	}
	// Every extraction is either fresh or a hit; totals must tie out.
	if s.Extractions+s.CacheHits != int64(workers*perWorker*3*2) {
		t.Errorf("extractions %d + hits %d != total box references %d",
			s.Extractions, s.CacheHits, workers*perWorker*3*2)
	}
}

// TestOracleSequencePathsLocked exercises the remaining execution paths
// (TrackPairMeans, SampledMeans, SequenceDistance) concurrently so -race
// covers the extractPlan machinery too.
func TestOracleSequencePathsLocked(t *testing.T) {
	o := NewOracle(NewModel(7, faultDim), device.NewAccelerator(device.DefaultAccelerator, 4))
	mkTrack := func(id int64, base int64) *video.Track {
		tr := &video.Track{ID: video.TrackID(id)}
		for i := int64(0); i < 4; i++ {
			b := faultBox(base+i, uint64(base+i))
			b.Frame = video.FrameIndex(i)
			tr.Boxes = append(tr.Boxes, b)
		}
		return tr
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			a := mkTrack(int64(2*w+1), int64(1000+10*w))
			b := mkTrack(int64(2*w+2), int64(2000+10*w))
			p := video.NewPair(a, b)
			o.TrackPairMeans([]*video.Pair{p})
			o.SampledMeans([]SampleSpec{{Pair: p, Indices: []int{0, 3, 5}}})
			o.SequenceDistance(a.Boxes, b.Boxes)
		}(w)
	}
	wg.Wait()
	if s := o.Stats(); s.Distances == 0 || s.Extractions == 0 {
		t.Errorf("no work recorded: %+v", s)
	}
}
