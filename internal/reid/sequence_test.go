package reid

import (
	"testing"

	"github.com/tmerge/tmerge/internal/video"
	"github.com/tmerge/tmerge/internal/xrand"
)

func TestSequenceDistancePoolingReducesNoise(t *testing.T) {
	r := xrand.New(21)
	base1 := randomObs(r)
	base2 := randomObs(r)
	t1a := mkTrackWithObs(1, r, base1, 8, 100)
	t1b := mkTrackWithObs(2, r, base1, 8, 200) // same object
	t2 := mkTrackWithObs(3, r, base2, 8, 300)  // different object

	o := newTestOracle()
	same := o.SequenceDistance(t1a.Boxes, t1b.Boxes)
	diff := o.SequenceDistance(t1a.Boxes, t2.Boxes)
	if same >= diff {
		t.Errorf("sequence distances: same=%v !< diff=%v", same, diff)
	}

	// Pooled same-object distance should be below the mean single-box
	// distance (noise averages out).
	o2 := newTestOracle()
	single := o2.TrackPairMeans([]*video.Pair{video.NewPair(t1a, t1b)})[0]
	if same > single+1e-9 {
		t.Errorf("pooled distance %v above single-box mean %v", same, single)
	}
}

func TestSequenceDistanceAccounting(t *testing.T) {
	r := xrand.New(22)
	a := mkTrackWithObs(1, r, randomObs(r), 4, 100)
	b := mkTrackWithObs(2, r, randomObs(r), 3, 200)
	o := newTestOracle()
	o.SequenceDistance(a.Boxes, b.Boxes)
	st := o.Stats()
	if st.Extractions != 7 || st.Distances != 1 {
		t.Errorf("stats = %+v", st)
	}
	// Second call fully cached.
	o.SequenceDistance(a.Boxes, b.Boxes)
	if got := o.Stats().Extractions; got != 7 {
		t.Errorf("extractions after cached call = %d", got)
	}
}

func TestSequenceDistancePanicsOnEmpty(t *testing.T) {
	o := newTestOracle()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	o.SequenceDistance(nil, nil)
}

func TestSequenceWindow(t *testing.T) {
	r := xrand.New(23)
	tr := mkTrackWithObs(1, r, randomObs(r), 10, 100)
	cases := []struct {
		around, n   int
		first, last video.BBoxID
	}{
		{5, 4, 103, 106},  // centred
		{0, 4, 100, 103},  // clamped left
		{9, 4, 106, 109},  // clamped right
		{5, 20, 100, 109}, // n >= len: whole track
	}
	for _, c := range cases {
		got := SequenceWindow(tr, c.around, c.n)
		if got[0].ID != c.first || got[len(got)-1].ID != c.last {
			t.Errorf("window(around=%d,n=%d) = [%d..%d], want [%d..%d]",
				c.around, c.n, got[0].ID, got[len(got)-1].ID, c.first, c.last)
		}
	}
	if SequenceWindow(tr, 0, 0) != nil {
		t.Error("n=0 must be nil")
	}
}
