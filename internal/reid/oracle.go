package reid

import (
	"fmt"
	"sync"

	"github.com/tmerge/tmerge/internal/device"
	"github.com/tmerge/tmerge/internal/vecmath"
	"github.com/tmerge/tmerge/internal/video"
)

// Stats counts the oracle's work, the currency every algorithm in the
// paper is measured in.
type Stats struct {
	Distances   int64 // BBox pair distances computed
	Extractions int64 // MLP forward passes actually executed
	CacheHits   int64 // extractions avoided by the feature cache
}

// Oracle computes normalised BBox pair distances on a Device, caching
// embeddings by BBox identity (the paper's feature-reuse optimisation:
// "if either of the BBoxes' feature vectors has been extracted in previous
// iterations it can be reused").
//
// Oracle is safe for concurrent use. Every distance call runs in three
// phases: plan under the mutex (snapshot cached features, collect the
// uncached boxes), submit to the device with the mutex released (device
// submission blocks on modeled latency, so holding the lock across it
// would serialise every concurrent caller), then commit counters and
// fresh embeddings back under the mutex. Concurrent callers racing on
// the same uncached box may therefore each extract it once — the usual
// cache-stampede trade — but single-threaded accounting is exact. If a
// submission fails mid-call — a fallible device's Submit panics with
// *device.Unavailable — the counters and the cache are left exactly as
// they were before the call, so retried and abandoned submissions never
// double-count work.
type Oracle struct {
	model *Model
	dev   device.Device
	// mu guards cache, cacheEnabled, stats, and rec across every
	// execution path (DistanceBatch, TrackPairMeans, SampledMeans,
	// SequenceDistance).
	mu    sync.Mutex
	cache featureCache
	// Caching can be disabled for the ablation benchmarks.
	cacheEnabled bool
	stats        Stats
	// store, when non-nil, marks a speculative session oracle (see
	// Speculate): feature lookups and commits go through the shared
	// FeatureStore instead of cache, and every submission plan is
	// appended to rec instead of charging the real device. arena is the
	// flat backing for the records' box-ID slices — one growing buffer
	// per session instead of one small allocation per submission.
	store *FeatureStore
	rec   []SubmissionRecord
	arena []video.BBoxID
}

// NewOracle returns an oracle executing on dev with caching enabled.
func NewOracle(model *Model, dev device.Device) *Oracle {
	return &Oracle{
		model:        model,
		dev:          dev,
		cacheEnabled: true,
	}
}

// SetCacheEnabled toggles the feature cache (ablation).
func (o *Oracle) SetCacheEnabled(on bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.cacheEnabled = on
}

// Model returns the underlying embedder.
func (o *Oracle) Model() *Model { return o.model }

// Device returns the execution device.
func (o *Oracle) Device() device.Device { return o.dev }

// Stats returns a snapshot of the oracle's work counters.
func (o *Oracle) Stats() Stats {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.stats
}

// ResetStats zeroes the counters (the cache is retained).
func (o *Oracle) ResetStats() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.stats = Stats{}
}

// ResetCache clears the feature cache (its backing arrays are retained
// for reuse).
func (o *Oracle) ResetCache() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.cache.reset()
}

// CachedFeature is one serialised feature-cache entry.
type CachedFeature struct {
	ID  video.BBoxID `json:"id"`
	Vec []float64    `json:"vec"`
}

// OracleState is the serialisable form of an Oracle's mutable state: the
// work counters and the feature cache, entries sorted by BBox ID for a
// deterministic encoding. Restoring it makes a fresh oracle's cache-hit /
// extraction accounting continue exactly where an interrupted session's
// left off.
type OracleState struct {
	Stats        Stats           `json:"stats"`
	CacheEnabled bool            `json:"cache_enabled"`
	Cache        []CachedFeature `json:"cache,omitempty"`
}

// State snapshots the oracle's counters and feature cache.
func (o *Oracle) State() OracleState {
	o.mu.Lock()
	defer o.mu.Unlock()
	st := OracleState{Stats: o.stats, CacheEnabled: o.cacheEnabled}
	ids := o.cache.sortedIDs(make([]video.BBoxID, 0, o.cache.len()))
	for _, id := range ids {
		v, _ := o.cache.get(id)
		st.Cache = append(st.Cache, CachedFeature{ID: id, Vec: append([]float64(nil), v...)})
	}
	return st
}

// RestoreState overwrites the oracle's counters and cache with a snapshot
// taken by State. Cached vectors must match the model's output
// dimensionality; a mismatched snapshot is rejected before any mutation.
func (o *Oracle) RestoreState(st OracleState) error {
	for _, cf := range st.Cache {
		if len(cf.Vec) != o.model.OutDim {
			return fmt.Errorf("reid: cached feature %d has dim %d, model outputs %d", cf.ID, len(cf.Vec), o.model.OutDim)
		}
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.stats = st.Stats
	o.cacheEnabled = st.CacheEnabled
	o.cache.reset()
	o.cache.reserve(len(st.Cache))
	for _, cf := range st.Cache {
		o.cache.put(cf.ID, vecmath.Vec(append([]float64(nil), cf.Vec...)))
	}
	return nil
}

// Distance computes the normalised distance d~(b1, b2) in [0, 1] as a
// single device submission.
func (o *Oracle) Distance(b1, b2 video.BBox) float64 {
	return o.DistanceBatch([][2]video.BBox{{b1, b2}})[0]
}

// DistanceBatch computes normalised distances for a batch of BBox pairs as
// one device submission — the unit of work the "-B" algorithm variants
// amortise launch costs over. Uncached embeddings across the whole batch
// are extracted jointly.
func (o *Oracle) DistanceBatch(pairs [][2]video.BBox) []float64 {
	return o.DistanceBatchInto(nil, pairs)
}

// DistanceBatchInto is DistanceBatch appending into dst — the selection
// loops call the oracle once per bandit round, and reusing the output
// buffer keeps the round allocation-free. dst may be nil.
func (o *Oracle) DistanceBatchInto(dst []float64, pairs [][2]video.BBox) []float64 {
	// Plan under the lock (distinct uncached boxes across the batch),
	// submit unlocked, commit under the lock — the three-phase protocol
	// shared with every other execution path via extractPlan. Cache hits
	// are counted once per distinct box per submission and committed
	// only after the submission succeeds, so a failed (panicking)
	// submission leaves the stats untouched.
	o.mu.Lock()
	plan := newExtractPlan(o)
	for _, p := range pairs {
		plan.addBox(p[0])
		plan.addBox(p[1])
	}
	o.mu.Unlock()
	plan.execute(len(pairs))

	for _, p := range pairs {
		d := o.model.Distance(plan.feature(p[0].ID), plan.feature(p[1].ID))
		dst = append(dst, o.model.Normalize(d))
	}
	plan.release()
	return dst
}
