package dataset

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"github.com/tmerge/tmerge/internal/geom"
	"github.com/tmerge/tmerge/internal/synth"
	"github.com/tmerge/tmerge/internal/vecmath"
	"github.com/tmerge/tmerge/internal/video"
)

// The on-disk schema mirrors the in-memory model but flattens tracks into
// box lists so the format stays independent of internal invariants.

type jsonBox struct {
	ID    video.BBoxID     `json:"id"`
	Frame video.FrameIndex `json:"frame"`
	X     float64          `json:"x"`
	Y     float64          `json:"y"`
	W     float64          `json:"w"`
	H     float64          `json:"h"`
	Obs   []float64        `json:"obs,omitempty"`
	Class video.ClassID    `json:"class,omitempty"`
	GT    video.ObjectID   `json:"gt"`
}

type jsonTrack struct {
	ID    video.TrackID `json:"id"`
	Boxes []jsonBox     `json:"boxes"`
}

type jsonVideo struct {
	Name       string      `json:"name"`
	NumFrames  int         `json:"num_frames"`
	Width      float64     `json:"width"`
	Height     float64     `json:"height"`
	Detections [][]jsonBox `json:"detections"`
	GT         []jsonTrack `json:"gt"`
}

type jsonDataset struct {
	Name      string      `json:"name"`
	WindowLen int         `json:"window_len"`
	Videos    []jsonVideo `json:"videos"`
}

func toJSONBox(b video.BBox) jsonBox {
	return jsonBox{
		ID: b.ID, Frame: b.Frame,
		X: b.Rect.X, Y: b.Rect.Y, W: b.Rect.W, H: b.Rect.H,
		Obs: b.Obs, Class: b.Class, GT: b.GTObject,
	}
}

func fromJSONBox(j jsonBox) video.BBox {
	return video.BBox{
		ID: j.ID, Frame: j.Frame,
		Rect:     geom.Rect{X: j.X, Y: j.Y, W: j.W, H: j.H},
		Obs:      vecmath.Vec(j.Obs),
		Class:    j.Class,
		GTObject: j.GT,
	}
}

// Save writes the dataset to path as gzip-compressed JSON.
func Save(ds *Dataset, path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: save: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("dataset: save: %w", cerr)
		}
	}()
	gz := gzip.NewWriter(f)
	if err := Encode(ds, gz); err != nil {
		return err
	}
	if err := gz.Close(); err != nil {
		return fmt.Errorf("dataset: save: %w", err)
	}
	return nil
}

// Encode writes the dataset to w as (uncompressed) JSON.
func Encode(ds *Dataset, w io.Writer) error {
	out := jsonDataset{Name: ds.Name, WindowLen: ds.WindowLen}
	for _, v := range ds.Videos {
		jv := jsonVideo{
			Name:      v.Name,
			NumFrames: v.NumFrames,
			Width:     v.Bounds.W,
			Height:    v.Bounds.H,
		}
		jv.Detections = make([][]jsonBox, len(v.Detections))
		for fi, dets := range v.Detections {
			for _, b := range dets {
				jv.Detections[fi] = append(jv.Detections[fi], toJSONBox(b))
			}
		}
		for _, t := range v.GT.Tracks() {
			jt := jsonTrack{ID: t.ID}
			for _, b := range t.Boxes {
				bb := b
				bb.Obs = nil // GT boxes carry no observations
				jt.Boxes = append(jt.Boxes, toJSONBox(bb))
			}
			jv.GT = append(jv.GT, jt)
		}
		out.Videos = append(out.Videos, jv)
	}
	if err := json.NewEncoder(w).Encode(out); err != nil {
		return fmt.Errorf("dataset: encode: %w", err)
	}
	return nil
}

// Load reads a dataset previously written by Save.
func Load(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: load: %w", err)
	}
	defer f.Close()
	gz, err := gzip.NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("dataset: load: %w", err)
	}
	defer gz.Close()
	return Decode(gz)
}

// Decode reads a dataset from (uncompressed) JSON. It is the hardened
// half of the format: every record of an untrusted file is validated —
// frame counts against the detection table, every box against
// video.BBox.Validate (finite geometry, positive size, finite
// observations), detections against their frame slot, ground-truth
// tracks against their invariants — and the first violation aborts the
// load with a descriptive error. A hostile file can therefore be
// rejected but can never panic the decoder, force a huge allocation
// (every allocation is sized by decoded content, not by a length field),
// or smuggle a NaN into the pipeline.
func Decode(r io.Reader) (*Dataset, error) {
	var in jsonDataset
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("dataset: decode: %w", err)
	}

	ds := &Dataset{Name: in.Name, WindowLen: in.WindowLen}
	for _, jv := range in.Videos {
		if jv.NumFrames < 0 {
			return nil, fmt.Errorf("dataset: decode: video %q has negative frame count %d", jv.Name, jv.NumFrames)
		}
		if len(jv.Detections) != jv.NumFrames {
			return nil, fmt.Errorf("dataset: decode: video %q declares %d frames but carries %d detection rows",
				jv.Name, jv.NumFrames, len(jv.Detections))
		}
		for _, dim := range [...]float64{jv.Width, jv.Height} {
			if math.IsNaN(dim) || math.IsInf(dim, 0) || dim < 0 {
				return nil, fmt.Errorf("dataset: decode: video %q has invalid bounds %gx%g", jv.Name, jv.Width, jv.Height)
			}
		}
		v := &synth.Video{
			Name:       jv.Name,
			NumFrames:  jv.NumFrames,
			Bounds:     geom.Rect{W: jv.Width, H: jv.Height},
			Detections: make([][]video.BBox, len(jv.Detections)),
		}
		for fi := range jv.Detections {
			for _, jb := range jv.Detections[fi] {
				b := fromJSONBox(jb)
				if b.Frame != video.FrameIndex(fi) {
					return nil, fmt.Errorf("dataset: decode: video %q: box %d in frame row %d claims frame %d",
						jv.Name, b.ID, fi, b.Frame)
				}
				if err := b.Validate(); err != nil {
					return nil, fmt.Errorf("dataset: decode: video %q: %w", jv.Name, err)
				}
				v.Detections[fi] = append(v.Detections[fi], b)
			}
		}
		var gtTracks []*video.Track
		seen := make(map[video.TrackID]bool)
		for _, jt := range jv.GT {
			if seen[jt.ID] {
				return nil, fmt.Errorf("dataset: decode: video %q has duplicate GT track %d", jv.Name, jt.ID)
			}
			seen[jt.ID] = true
			t := &video.Track{ID: jt.ID}
			for _, jb := range jt.Boxes {
				b := fromJSONBox(jb)
				if err := b.Validate(); err != nil {
					return nil, fmt.Errorf("dataset: decode: video %q GT track %d: %w", jv.Name, jt.ID, err)
				}
				t.Boxes = append(t.Boxes, b)
			}
			if err := t.Validate(); err != nil {
				return nil, fmt.Errorf("dataset: decode: %w", err)
			}
			gtTracks = append(gtTracks, t)
		}
		v.GT = video.NewTrackSet(gtTracks)
		ds.Videos = append(ds.Videos, v)
	}
	return ds, nil
}
