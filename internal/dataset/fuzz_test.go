package dataset

import (
	"bytes"
	"testing"

	"github.com/tmerge/tmerge/internal/geom"
	"github.com/tmerge/tmerge/internal/synth"
	"github.com/tmerge/tmerge/internal/vecmath"
	"github.com/tmerge/tmerge/internal/video"
)

// fuzzSeedDataset builds a small, valid dataset for the fuzz corpus.
func fuzzSeedDataset() *Dataset {
	mkBox := func(id video.BBoxID, f video.FrameIndex, x float64) video.BBox {
		return video.BBox{
			ID: id, Frame: f,
			Rect:     geom.Rect{X: x, Y: 10, W: 20, H: 30},
			Obs:      vecmath.Vec{0.25, -0.5, 1.0},
			GTObject: 0,
		}
	}
	gt := &video.Track{ID: 1, Boxes: []video.BBox{
		{ID: 100, Frame: 0, Rect: geom.Rect{X: 4, Y: 10, W: 20, H: 30}, GTObject: 0},
		{ID: 101, Frame: 1, Rect: geom.Rect{X: 5, Y: 10, W: 20, H: 30}, GTObject: 0},
	}}
	return &Dataset{
		Name:      "fuzz-seed",
		WindowLen: 2,
		Videos: []*synth.Video{{
			Name:      "v0",
			NumFrames: 2,
			Bounds:    geom.Rect{W: 100, H: 100},
			Detections: [][]video.BBox{
				{mkBox(1, 0, 4)},
				{mkBox(2, 1, 5)},
			},
			GT: video.NewTrackSet([]*video.Track{gt}),
		}},
	}
}

// FuzzDecode throws arbitrary bytes at the dataset decoder. The decoder
// must never panic, never allocate proportionally to an unvalidated
// length field, and any dataset it accepts must hold only validated,
// finite, internally consistent records.
func FuzzDecode(f *testing.F) {
	var valid bytes.Buffer
	if err := Encode(fuzzSeedDataset(), &valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte("{}"))
	f.Add([]byte(`{"videos":[{"name":"x","num_frames":-5}]}`))
	f.Add([]byte(`{"videos":[{"name":"x","num_frames":99999999999,"detections":[]}]}`))
	f.Add([]byte(`{"videos":[{"name":"x","num_frames":1,"detections":[[{"id":1,"frame":0,"x":1e999,"y":0,"w":1,"h":1}]]}]}`))
	f.Add([]byte(`{"videos":[{"name":"x","num_frames":1,"detections":[[{"id":1,"frame":0,"x":0,"y":0,"w":0,"h":1}]]}]}`))
	f.Add([]byte(`{"videos":[{"name":"x","num_frames":1,"width":100,"height":100,"detections":[[]],"gt":[{"id":1,"boxes":[]},{"id":1,"boxes":[]}]}]}`))
	f.Add([]byte(`not json at all`))

	f.Fuzz(func(t *testing.T, data []byte) {
		ds, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, v := range ds.Videos {
			if v.NumFrames != len(v.Detections) {
				t.Fatalf("accepted video %q: %d frames, %d detection rows", v.Name, v.NumFrames, len(v.Detections))
			}
			for fi, dets := range v.Detections {
				for _, b := range dets {
					if err := b.Validate(); err != nil {
						t.Fatalf("accepted invalid detection: %v", err)
					}
					if b.Frame != video.FrameIndex(fi) {
						t.Fatalf("accepted detection in row %d claiming frame %d", fi, b.Frame)
					}
				}
			}
			for _, tr := range v.GT.Tracks() {
				if err := tr.Validate(); err != nil {
					t.Fatalf("accepted invalid GT track: %v", err)
				}
				for _, b := range tr.Boxes {
					if err := b.Validate(); err != nil {
						t.Fatalf("accepted invalid GT box: %v", err)
					}
				}
			}
		}
	})
}

func TestDecodeRoundTripsSeed(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(fuzzSeedDataset(), &buf); err != nil {
		t.Fatal(err)
	}
	ds, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Videos) != 1 || ds.Videos[0].NumFrames != 2 || ds.Videos[0].GT.Len() != 1 {
		t.Fatalf("round trip mangled dataset: %+v", ds)
	}
}
