// Package dataset defines the three synthetic dataset profiles standing in
// for the paper's evaluation corpora (§V-A) — MOT-17, KITTI, and PathTrack
// — plus JSON (de)serialisation so generated datasets can be stored and
// shared by the CLIs.
//
// Profiles are calibrated to the structural statistics the paper reports,
// not to pixels: pair-universe sizes in the hundreds per window, tracks of
// roughly a hundred boxes, a low single-digit polyonymous rate, and (for
// the PathTrack profile) ground-truth tracks capped at Lmax=1000 frames so
// the window-sweep experiment (Figure 9) reproduces the L < 2·Lmax
// degradation.
package dataset

import (
	"fmt"

	"github.com/tmerge/tmerge/internal/motmetrics"
	"github.com/tmerge/tmerge/internal/synth"
	"github.com/tmerge/tmerge/internal/track"
	"github.com/tmerge/tmerge/internal/video"
)

// Profile describes how to generate one synthetic dataset.
type Profile struct {
	// Name of the dataset ("mot17", "kitti", "pathtrack").
	Name string
	// NumVideos to generate; each gets a distinct seed derived from Seed.
	NumVideos int
	// WindowLen is the ingestion window L for this dataset; 0 means the
	// whole video is one window (the paper's MOT-17/KITTI treatment).
	WindowLen int
	// MinPolyPairs curates the corpus the way the paper curated its
	// datasets ("we select 8 videos with enough instances of pedestrians",
	// §V-A): candidate scenes whose Tracktor output contains fewer
	// polyonymous pairs than this are discarded and regenerated with a
	// fresh seed. 0 disables curation.
	MinPolyPairs int
	// Template is the scene configuration; Generate overrides Seed and
	// Name per video.
	Template synth.Config
}

// Dataset is a generated collection of videos.
type Dataset struct {
	Name      string
	WindowLen int
	Videos    []*synth.Video
}

// Generate materialises the profile, applying curation when
// MinPolyPairs is set (see the field comment).
func (p Profile) Generate() (*Dataset, error) {
	ds := &Dataset{Name: p.Name, WindowLen: p.WindowLen}
	attempt := 0
	for len(ds.Videos) < p.NumVideos {
		cfg := p.Template
		cfg.Seed = p.Template.Seed + uint64(attempt)*0x9E3779B97F4A7C15
		cfg.Name = fmt.Sprintf("%s-%02d", p.Name, len(ds.Videos))
		attempt++
		if attempt > 8*p.NumVideos+16 {
			return nil, fmt.Errorf("dataset %s: curation exhausted after %d attempts", p.Name, attempt)
		}
		v, err := synth.Generate(cfg)
		if err != nil {
			return nil, fmt.Errorf("dataset %s: video %d: %w", p.Name, len(ds.Videos), err)
		}
		if p.MinPolyPairs > 0 && polyPairCount(v) < p.MinPolyPairs {
			continue
		}
		ds.Videos = append(ds.Videos, v)
	}
	return ds, nil
}

// polyPairCount runs the curation tracker (Tracktor, the paper's default)
// over the scene and counts the resulting polyonymous pairs.
func polyPairCount(v *synth.Video) int {
	ts := track.Tracktor().Track(v.Detections)
	w := video.Window{Start: 0, End: video.FrameIndex(v.NumFrames - 1)}
	ps := video.BuildPairSet(w, ts.Sorted(), nil)
	return len(motmetrics.PolyonymousPairs(ps))
}

// AppearanceDim is the shared observation dimensionality; the ReID model
// must be constructed with the same value.
const AppearanceDim = 32

// MOT17Like returns the MOT-17 stand-in: crowded pedestrian scenes,
// moderate motion, whole-video windows.
func MOT17Like(seed uint64) Profile {
	return Profile{
		Name:         "mot17",
		NumVideos:    6,
		WindowLen:    0,
		MinPolyPairs: 3,
		Template: synth.Config{
			Seed:                seed,
			NumFrames:           800,
			Width:               1920,
			Height:              1080,
			ArrivalRate:         0.045,
			MaxObjects:          12,
			MinSpan:             40,
			MaxSpan:             500,
			SpeedMin:            0.8,
			SpeedMax:            3.0,
			SizeMin:             90,
			SizeMax:             180,
			PosJitter:           0.8,
			AppearanceDim:       AppearanceDim,
			AppearanceNoise:     0.06,
			AppearanceDrift:     0.004,
			OutlierProb:         0.22,
			OutlierNoise:        0.15,
			PosAppearanceWeight: 0.55,
			OcclusionCoverage:   0.45,
			MissProb:            0.02,
			GlareRate:           0.013,
			GlareDuration:       45,
			GlareSize:           340,
		},
	}
}

// KITTILike returns the KITTI stand-in: sparser pedestrians, faster
// ego-motion-style displacement, whole-video windows.
func KITTILike(seed uint64) Profile {
	return Profile{
		Name:         "kitti",
		NumVideos:    8,
		WindowLen:    0,
		MinPolyPairs: 2,
		Template: synth.Config{
			Seed:                seed ^ 0xBADC0FFEE,
			NumFrames:           600,
			Width:               1242,
			Height:              375,
			ArrivalRate:         0.035,
			MaxObjects:          9,
			MinSpan:             40,
			MaxSpan:             360,
			SpeedMin:            1.5,
			SpeedMax:            5.0,
			SizeMin:             60,
			SizeMax:             110,
			PosJitter:           1.0,
			AppearanceDim:       AppearanceDim,
			AppearanceNoise:     0.06,
			AppearanceDrift:     0.004,
			OutlierProb:         0.22,
			OutlierNoise:        0.15,
			PosAppearanceWeight: 0.55,
			OcclusionCoverage:   0.45,
			MissProb:            0.03,
			GlareRate:           0.020,
			GlareDuration:       40,
			GlareSize:           240,
		},
	}
}

// PathTrackLike returns the PathTrack stand-in: long YouTube-style
// sequences processed with half-overlapping windows of L=2000 and
// ground-truth tracks capped at Lmax=1000 frames.
func PathTrackLike(seed uint64) Profile {
	return Profile{
		Name:         "pathtrack",
		NumVideos:    5,
		WindowLen:    2000,
		MinPolyPairs: 6,
		Template: synth.Config{
			Seed:                seed ^ 0xFACEFEED,
			NumFrames:           4000,
			Width:               1280,
			Height:              720,
			ArrivalRate:         0.02,
			MaxObjects:          9,
			MinSpan:             150,
			MaxSpan:             1000, // Lmax = 1000 (§V-F)
			SpeedMin:            0.3,
			SpeedMax:            1.5,
			SizeMin:             70,
			SizeMax:             150,
			PosJitter:           0.7,
			AppearanceDim:       AppearanceDim,
			AppearanceNoise:     0.06,
			AppearanceDrift:     0.004,
			OutlierProb:         0.22,
			OutlierNoise:        0.15,
			PosAppearanceWeight: 0.55,
			OcclusionCoverage:   0.45,
			MissProb:            0.02,
			GlareRate:           0.009,
			GlareDuration:       45,
			GlareSize:           280,
		},
	}
}

// Profiles returns the standard profiles keyed by name.
func Profiles(seed uint64) map[string]Profile {
	return map[string]Profile{
		"mot17":       MOT17Like(seed),
		"kitti":       KITTILike(seed),
		"pathtrack":   PathTrackLike(seed),
		"highway":     HighwayLike(seed),
		"longhorizon": LongHorizonLike(seed),
	}
}

// LongHorizonLike returns the long-horizon profile feeding the history
// subsystem's workloads: a single endless street-camera scene with
// short object lifetimes and steady arrivals, so ground-truth track
// count grows linearly with video length while the instantaneous
// population — and with it the hot tier of a history session — stays
// flat. Small windows keep many windows in flight per segment. Scale
// it to a target size with ScaleHorizon.
func LongHorizonLike(seed uint64) Profile {
	return Profile{
		Name:      "longhorizon",
		NumVideos: 1,
		WindowLen: 200,
		Template: synth.Config{
			Seed:                seed ^ 0xB16B00B5,
			NumFrames:           4000,
			Width:               1920,
			Height:              1080,
			ArrivalRate:         0.25,
			MaxObjects:          24,
			MinSpan:             20,
			MaxSpan:             120,
			SpeedMin:            1.0,
			SpeedMax:            4.0,
			SizeMin:             80,
			SizeMax:             160,
			PosJitter:           0.6,
			NumClasses:          3,
			AppearanceDim:       AppearanceDim,
			AppearanceNoise:     0.05,
			AppearanceDrift:     0.003,
			OutlierProb:         0.10,
			OutlierNoise:        0.12,
			PosAppearanceWeight: 0.40,
			OcclusionCoverage:   0.50,
			MissProb:            0.02,
		},
	}
}

// ScaleHorizon resizes the profile's scene to a target horizon: frames
// sets the video length and tracks the expected ground-truth track
// count (the arrival rate is rescaled to tracks/frames, and the
// concurrency cap raised as needed so the arrival process is never
// throttled — a throttled process would silently undershoot the
// target). Zero leaves the respective dimension at the profile's
// default. This is how histbench-scale corpora (10⁶ tracks) are
// generated deterministically: the seed fixes every arrival, span, and
// trajectory regardless of scale.
func (p *Profile) ScaleHorizon(frames, tracks int) error {
	if frames < 0 || tracks < 0 {
		return fmt.Errorf("dataset: horizon scaling wants non-negative frames and tracks, got %d and %d", frames, tracks)
	}
	if frames > 0 {
		p.Template.NumFrames = frames
	}
	if tracks > 0 {
		f := p.Template.NumFrames
		rate := float64(tracks) / float64(f)
		p.Template.ArrivalRate = rate
		// Steady-state population ≈ rate × mean lifetime; 1.5× headroom
		// keeps the cap from clipping arrival bursts.
		meanSpan := float64(p.Template.MinSpan+p.Template.MaxSpan) / 2
		if need := int(rate*meanSpan*3/2) + 1; need > p.Template.MaxObjects {
			p.Template.MaxObjects = need
		}
	}
	return p.Template.Validate()
}

// HighwayLike returns a vehicle-surveillance profile (the paper's intro
// motivates TMerge with "cars on highways"): fast, strongly directional
// motion in a wide scene, larger objects, and heavier mutual occlusion
// when vehicles pass each other. Whole-video windows, like MOT-17.
func HighwayLike(seed uint64) Profile {
	return Profile{
		Name:         "highway",
		NumVideos:    6,
		WindowLen:    0,
		MinPolyPairs: 3,
		Template: synth.Config{
			Seed:                seed ^ 0xCAFED00D,
			NumFrames:           700,
			Width:               2560,
			Height:              720,
			ArrivalRate:         0.05,
			MaxObjects:          11,
			MinSpan:             60,
			MaxSpan:             450,
			SpeedMin:            3.0,
			SpeedMax:            8.0,
			SizeMin:             110,
			SizeMax:             240,
			PosJitter:           1.0,
			AppearanceDim:       AppearanceDim,
			AppearanceNoise:     0.06,
			AppearanceDrift:     0.004,
			OutlierProb:         0.22,
			OutlierNoise:        0.15,
			PosAppearanceWeight: 0.55,
			OcclusionCoverage:   0.40,
			MissProb:            0.02,
			GlareRate:           0.014,
			GlareDuration:       40,
			GlareSize:           380,
		},
	}
}
