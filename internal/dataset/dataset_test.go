package dataset

import (
	"path/filepath"
	"testing"

	"github.com/tmerge/tmerge/internal/motmetrics"
	"github.com/tmerge/tmerge/internal/track"
	"github.com/tmerge/tmerge/internal/video"
)

func smallProfile(name string, t *testing.T) Profile {
	t.Helper()
	p, ok := Profiles(42)[name]
	if !ok {
		t.Fatalf("unknown profile %s", name)
	}
	p.NumVideos = 1
	return p
}

func TestProfilesExist(t *testing.T) {
	ps := Profiles(1)
	for _, name := range []string{"mot17", "kitti", "pathtrack"} {
		p, ok := ps[name]
		if !ok {
			t.Fatalf("missing profile %s", name)
		}
		if p.Template.AppearanceDim != AppearanceDim {
			t.Errorf("%s appearance dim = %d", name, p.Template.AppearanceDim)
		}
		if err := p.Template.Validate(); err != nil {
			t.Errorf("%s template invalid: %v", name, err)
		}
	}
	// PathTrack profile carries the paper's windowing constants.
	if ps["pathtrack"].WindowLen != 2000 {
		t.Error("pathtrack window length must be 2000")
	}
	if ps["pathtrack"].Template.MaxSpan != 1000 {
		t.Error("pathtrack Lmax must be 1000")
	}
	if ps["mot17"].WindowLen != 0 || ps["kitti"].WindowLen != 0 {
		t.Error("mot17/kitti are whole-video windows")
	}
}

func TestGenerateDistinctVideos(t *testing.T) {
	p := smallProfile("kitti", t)
	p.NumVideos = 2
	ds, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Videos) != 2 {
		t.Fatalf("got %d videos", len(ds.Videos))
	}
	if ds.Videos[0].GT.Len() == ds.Videos[1].GT.Len() {
		// Not impossible, but the detection streams must still differ.
		a, b := ds.Videos[0].Detections[50], ds.Videos[1].Detections[50]
		if len(a) == len(b) && len(a) > 0 && a[0].Rect == b[0].Rect {
			t.Error("videos look identical; per-video seeds not applied")
		}
	}
}

// The central calibration test: the generated corpora produce fragmented
// tracker output with a low-single-digit polyonymous rate, as the paper
// reports for its datasets (§III, §V).
func TestCalibratedPolyonymousRate(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration test is slow")
	}
	for _, name := range []string{"mot17", "kitti"} {
		ds, err := smallProfile(name, t).Generate()
		if err != nil {
			t.Fatal(err)
		}
		v := ds.Videos[0]
		ts := track.Tracktor().Track(v.Detections)
		w := video.Window{Start: 0, End: video.FrameIndex(v.NumFrames - 1)}
		ps := video.BuildPairSet(w, ts.Sorted(), nil)
		if ps.Len() < 100 {
			t.Errorf("%s: only %d pairs — scene too sparse", name, ps.Len())
		}
		rate := motmetrics.PolyonymousRate(ps)
		if rate <= 0 {
			t.Errorf("%s: no polyonymous pairs — nothing to merge", name)
		}
		if rate > 0.10 {
			t.Errorf("%s: polyonymous rate %.1f%% implausibly high", name, 100*rate)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	p := smallProfile("kitti", t)
	p.Template.NumFrames = 120 // keep the file small
	p.MinPolyPairs = 0         // a 120-frame scene cannot pass curation
	ds, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ds.json.gz")
	if err := Save(ds, path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != ds.Name || got.WindowLen != ds.WindowLen || len(got.Videos) != len(ds.Videos) {
		t.Fatalf("dataset header mismatch: %+v", got)
	}
	a, b := ds.Videos[0], got.Videos[0]
	if a.NumFrames != b.NumFrames {
		t.Fatal("frame counts differ")
	}
	if a.GT.Len() != b.GT.Len() {
		t.Fatalf("GT track counts differ: %d vs %d", a.GT.Len(), b.GT.Len())
	}
	for f := range a.Detections {
		if len(a.Detections[f]) != len(b.Detections[f]) {
			t.Fatalf("frame %d detections differ", f)
		}
		for i := range a.Detections[f] {
			da, db := a.Detections[f][i], b.Detections[f][i]
			if da.ID != db.ID || da.Rect != db.Rect || da.GTObject != db.GTObject {
				t.Fatalf("detection differs at frame %d index %d", f, i)
			}
			if len(da.Obs) != len(db.Obs) {
				t.Fatalf("observation length differs")
			}
			for j := range da.Obs {
				if da.Obs[j] != db.Obs[j] {
					t.Fatal("observation values differ")
				}
			}
		}
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.json.gz")); err == nil {
		t.Error("expected error for missing file")
	}
}

func TestHighwayProfile(t *testing.T) {
	p := Profiles(42)["highway"]
	if err := p.Template.Validate(); err != nil {
		t.Fatalf("highway template invalid: %v", err)
	}
	p.NumVideos = 1
	ds, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	v := ds.Videos[0]
	if v.GT.Len() == 0 {
		t.Fatal("no vehicles generated")
	}
	// Curation guarantees fragmented identities to merge.
	ts := track.Tracktor().Track(v.Detections)
	w := video.Window{Start: 0, End: video.FrameIndex(v.NumFrames - 1)}
	ps := video.BuildPairSet(w, ts.Sorted(), nil)
	if got := len(motmetrics.PolyonymousPairs(ps)); got < 3 {
		t.Errorf("curated highway scene has %d polyonymous pairs, want >= 3", got)
	}
}

// TestLongHorizonScaling pins the long-horizon profile: ScaleHorizon
// hits the requested track count (the arrival process, unthrottled, is
// concentrated around rate×frames), the result is deterministic in the
// seed, and infeasible scalings are rejected.
func TestLongHorizonScaling(t *testing.T) {
	p := smallProfile("longhorizon", t)
	const frames, tracks = 1500, 600
	if err := p.ScaleHorizon(frames, tracks); err != nil {
		t.Fatal(err)
	}
	if p.Template.NumFrames != frames {
		t.Fatalf("frames = %d, want %d", p.Template.NumFrames, frames)
	}
	ds, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	got := ds.Videos[0].GT.Len()
	if got < tracks*7/10 || got > tracks*13/10 {
		t.Errorf("scaled to %d tracks, generated %d (arrival process throttled?)", tracks, got)
	}

	p2 := smallProfile("longhorizon", t)
	if err := p2.ScaleHorizon(frames, tracks); err != nil {
		t.Fatal(err)
	}
	ds2, err := p2.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if ds2.Videos[0].GT.Len() != got {
		t.Errorf("same seed generated %d then %d tracks", got, ds2.Videos[0].GT.Len())
	}

	bad := smallProfile("longhorizon", t)
	if err := bad.ScaleHorizon(-1, 0); err == nil {
		t.Error("negative frames accepted")
	}
}
