package video

import "slices"

// SortTrackIDs sorts ids ascending in place — the one canonical ordering
// for track-ID slices (query answers, merged groups, serialised state).
// Call it after collecting IDs from any map so downstream structures are
// assembled in a map-order-independent sequence.
func SortTrackIDs(ids []TrackID) {
	slices.Sort(ids)
}
