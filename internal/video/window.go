package video

import "fmt"

// Window is one half-overlapping window of the partitioning described in
// §II: windows have a fixed length L and each window overlaps its
// predecessor by L/2 frames, so that no ground-truth track (of span at most
// Lmax, with L >= 2*Lmax) spans more than two windows.
type Window struct {
	Index int        // 0-based window index (c in the paper)
	Start FrameIndex // first frame (inclusive)
	End   FrameIndex // last frame (inclusive)
	// Nominal is the nominal window length L. The final window of a video
	// may be clipped shorter than L; its first half still extends to the
	// video end so every track belongs to exactly one Tc. Zero means the
	// window is a whole-video window whose first half is the entire
	// window.
	Nominal int
}

// Len returns the window length in frames.
func (w Window) Len() int { return int(w.End-w.Start) + 1 }

// FirstHalfEnd returns the last frame (inclusive) of the window's first
// L/2 frames — the region whose tracks form Tc — clipped to the window
// end.
func (w Window) FirstHalfEnd() FrameIndex {
	if w.Nominal <= 0 {
		return w.End
	}
	e := w.Start + FrameIndex(w.Nominal/2) - 1
	if e > w.End {
		e = w.End
	}
	return e
}

// Contains reports whether f lies inside the window.
func (w Window) Contains(f FrameIndex) bool { return f >= w.Start && f <= w.End }

// Partition splits a video of numFrames frames into half-overlapping
// windows of length L. Window c starts at frame c*L/2. The final window may
// be shorter than L. L must be an even positive number so the half-overlap
// is exact.
func Partition(numFrames, L int) []Window {
	if L <= 0 || L%2 != 0 {
		panic(fmt.Sprintf("video: window length must be positive and even, got %d", L))
	}
	if numFrames <= 0 {
		return nil
	}
	half := L / 2
	var ws []Window
	for c := 0; ; c++ {
		start := c * half
		if start >= numFrames {
			break
		}
		end := start + L - 1
		if end > numFrames-1 {
			end = numFrames - 1
		}
		ws = append(ws, Window{Index: c, Start: FrameIndex(start), End: FrameIndex(end), Nominal: L})
	}
	return ws
}

// WindowTracks returns Tc for window w: the tracks of ts that start within
// the first L/2 frames of w (the paper's "tracks identified in the first
// L/2 frames"), ordered deterministically. A track is clipped to the
// window: only its BBoxes inside [w.Start, w.End] are retained; tracks
// whose clipped view is empty are dropped.
func WindowTracks(ts *TrackSet, w Window) []*Track {
	var out []*Track
	for _, t := range ts.Sorted() {
		if t.StartFrame() < w.Start || t.StartFrame() > w.FirstHalfEnd() {
			continue
		}
		clipped := ClipTrack(t, w.Start, w.End)
		if clipped != nil {
			out = append(out, clipped)
		}
	}
	return out
}

// ClipTrack returns a copy of t restricted to frames in [start, end], or
// nil if no BBoxes remain. The BBoxes themselves are shared, not copied.
func ClipTrack(t *Track, start, end FrameIndex) *Track {
	lo, hi := -1, -1
	for i, b := range t.Boxes {
		if b.Frame >= start && b.Frame <= end {
			if lo < 0 {
				lo = i
			}
			hi = i
		}
	}
	if lo < 0 {
		return nil
	}
	return &Track{ID: t.ID, Boxes: t.Boxes[lo : hi+1]}
}
