package video

import "testing"

// FuzzPartition checks the window-partition invariants for arbitrary
// video lengths and window sizes: full coverage, at most double coverage,
// and every frame in exactly one window's first half (so every track
// joins exactly one Tc).
func FuzzPartition(f *testing.F) {
	f.Add(4000, 2000)
	f.Add(1, 2)
	f.Add(999, 10)
	f.Add(2000, 2000)
	f.Fuzz(func(t *testing.T, numFrames, L int) {
		if numFrames <= 0 || numFrames > 20000 {
			t.Skip()
		}
		L = 2 * (1 + abs(L)%2000)
		ws := Partition(numFrames, L)
		cover := make([]int8, numFrames)
		firstHalf := make([]int8, numFrames)
		for _, w := range ws {
			if w.Start < 0 || int(w.End) > numFrames-1 || w.End < w.Start {
				t.Fatalf("window out of bounds: %+v", w)
			}
			for fr := w.Start; fr <= w.End; fr++ {
				cover[fr]++
			}
			for fr := w.Start; fr <= w.FirstHalfEnd(); fr++ {
				firstHalf[fr]++
			}
		}
		for fr := range cover {
			if cover[fr] < 1 || cover[fr] > 2 {
				t.Fatalf("frame %d covered %d times (L=%d, n=%d)", fr, cover[fr], L, numFrames)
			}
			if firstHalf[fr] != 1 {
				t.Fatalf("frame %d in %d first-halves (L=%d, n=%d)", fr, firstHalf[fr], L, numFrames)
			}
		}
	})
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
