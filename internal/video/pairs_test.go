package video

import (
	"testing"
	"testing/quick"
)

func TestMakePairKeyCanonical(t *testing.T) {
	if MakePairKey(5, 2) != (PairKey{A: 2, B: 5}) {
		t.Error("key must be canonicalised with A < B")
	}
	if MakePairKey(2, 5) != MakePairKey(5, 2) {
		t.Error("key must be order-independent")
	}
}

func TestMakePairKeySelfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on self pair")
		}
	}()
	MakePairKey(3, 3)
}

func TestNewPairOrientation(t *testing.T) {
	early := mkTrack(7, 10, 20) // ends at 20
	late := mkTrack(3, 30, 40)  // ends at 40
	p := NewPair(late, early)   // argument order must not matter
	if p.TI != early || p.TJ != late {
		t.Error("pair must orient earlier-ending track as TI")
	}
	if p.Key != (PairKey{A: 3, B: 7}) {
		t.Errorf("key = %v", p.Key)
	}
	if p.DisT != 10 {
		t.Errorf("DisT = %d, want 10", p.DisT)
	}
	// Spatial distance between last box of early (frame 20 -> x=20) and
	// first box of late (frame 30 -> x=30): centers differ by 10 in x.
	if p.DisS != 10 {
		t.Errorf("DisS = %v, want 10", p.DisS)
	}
}

func TestPairBBoxPairAt(t *testing.T) {
	a := mkTrack(1, 1, 2)    // 2 boxes
	b := mkTrack(2, 5, 6, 7) // 3 boxes
	p := NewPair(a, b)
	if p.NumBBoxPairs() != 6 {
		t.Fatalf("NumBBoxPairs = %d", p.NumBBoxPairs())
	}
	seen := map[[2]BBoxID]bool{}
	for i := 0; i < 6; i++ {
		ba, bb := p.BBoxPairAt(i)
		seen[[2]BBoxID{ba.ID, bb.ID}] = true
	}
	if len(seen) != 6 {
		t.Errorf("enumeration visited %d distinct pairs, want 6", len(seen))
	}
}

func TestPairBBoxPairAtPanics(t *testing.T) {
	p := NewPair(mkTrack(1, 1), mkTrack(2, 2))
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	p.BBoxPairAt(1)
}

func TestBuildPairSetWithinWindow(t *testing.T) {
	cur := []*Track{mkTrack(1, 0, 10), mkTrack(2, 5, 15), mkTrack(3, 8, 20)}
	ps := BuildPairSet(Window{Start: 0, End: 99}, cur, nil)
	if ps.Len() != 3 { // C(3,2)
		t.Fatalf("|Pc| = %d, want 3", ps.Len())
	}
	for _, want := range []PairKey{{1, 2}, {1, 3}, {2, 3}} {
		if ps.Get(want) == nil {
			t.Errorf("missing pair %v", want)
		}
	}
}

func TestBuildPairSetCrossWindow(t *testing.T) {
	prev := []*Track{mkTrack(1, 0, 10), mkTrack(2, 5, 15)}
	cur := []*Track{mkTrack(3, 100, 110)}
	ps := BuildPairSet(Window{Start: 100, End: 299}, cur, prev)
	// Pairs: (3,1), (3,2) — no pairs inside cur (only one track) and
	// no prev-prev pairs.
	if ps.Len() != 2 {
		t.Fatalf("|Pc| = %d, want 2", ps.Len())
	}
	if ps.Get(PairKey{1, 2}) != nil {
		t.Error("prev-internal pair must not be in Pc")
	}
}

func TestBuildPairSetNoDuplicates(t *testing.T) {
	shared := mkTrack(2, 5, 15)
	cur := []*Track{mkTrack(1, 0, 10), shared}
	prev := []*Track{shared}
	ps := BuildPairSet(Window{}, cur, prev)
	if ps.Len() != 1 {
		t.Errorf("|Pc| = %d, want 1 (dedup)", ps.Len())
	}
}

func TestPairSetIndexOf(t *testing.T) {
	cur := []*Track{mkTrack(1, 0, 10), mkTrack(2, 5, 15)}
	ps := BuildPairSet(Window{}, cur, nil)
	key := PairKey{1, 2}
	if got := ps.IndexOf(key); got != 0 {
		t.Errorf("IndexOf = %d", got)
	}
	if got := ps.IndexOf(PairKey{7, 8}); got != -1 {
		t.Errorf("missing IndexOf = %d", got)
	}
}

func TestTopCount(t *testing.T) {
	cur := []*Track{mkTrack(1, 0, 1), mkTrack(2, 2, 3), mkTrack(3, 4, 5), mkTrack(4, 6, 7)}
	ps := BuildPairSet(Window{}, cur, nil) // 6 pairs
	cases := []struct {
		k    float64
		want int
	}{
		{0, 0}, {0.05, 1}, {0.5, 3}, {1, 6}, {2, 6}, {-1, 0},
		{0.17, 2}, // ceil(1.02)
	}
	for _, c := range cases {
		if got := ps.TopCount(c.k); got != c.want {
			t.Errorf("TopCount(%v) = %d, want %d", c.k, got, c.want)
		}
	}
}

func TestRecall(t *testing.T) {
	truth := map[PairKey]bool{{1, 2}: true, {3, 4}: true}
	if got := Recall([]PairKey{{1, 2}}, truth); got != 0.5 {
		t.Errorf("Recall = %v", got)
	}
	if got := Recall([]PairKey{{1, 2}, {3, 4}, {5, 6}}, truth); got != 1 {
		t.Errorf("Recall = %v", got)
	}
	if got := Recall(nil, truth); got != 0 {
		t.Errorf("empty selection Recall = %v", got)
	}
	if got := Recall([]PairKey{{1, 2}}, nil); got != 1 {
		t.Errorf("empty truth Recall = %v", got)
	}
}

// Property: |Pc| for n current and m previous tracks (all distinct) is
// C(n,2) + n*m, and the pair order is deterministic.
func TestBuildPairSetCardinality(t *testing.T) {
	f := func(seed uint64) bool {
		n := 1 + int(seed%8)
		m := int(seed / 13 % 8)
		var cur, prev []*Track
		id := TrackID(1)
		for i := 0; i < n; i++ {
			cur = append(cur, mkTrack(id, FrameIndex(i*2), FrameIndex(i*2+1)))
			id++
		}
		for i := 0; i < m; i++ {
			prev = append(prev, mkTrack(id, FrameIndex(i*2), FrameIndex(i*2+1)))
			id++
		}
		ps := BuildPairSet(Window{}, cur, prev)
		want := n*(n-1)/2 + n*m
		if ps.Len() != want {
			return false
		}
		// Deterministic order: keys strictly increasing.
		for i := 1; i < ps.Len(); i++ {
			a, b := ps.Pairs[i-1].Key, ps.Pairs[i].Key
			if !(a.A < b.A || (a.A == b.A && a.B < b.B)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTemporalOverlapFilter(t *testing.T) {
	// Tracks 1 and 2 coexist for 11 frames; tracks 1 and 3 are disjoint.
	a := mkTrack(1, 0, 5, 10, 15, 20)
	b := mkTrack(2, 10, 25)
	c := mkTrack(3, 30, 40)
	keep := TemporalOverlapFilter(5)
	if keep(NewPair(a, b)) {
		t.Error("11-frame overlap passed a 5-frame filter")
	}
	if !keep(NewPair(a, c)) {
		t.Error("disjoint pair rejected")
	}
	if !TemporalOverlapFilter(11)(NewPair(a, b)) {
		t.Error("11-frame overlap rejected by an 11-frame filter")
	}
}

func TestBuildPairSetFiltered(t *testing.T) {
	a := mkTrack(1, 0, 20)
	b := mkTrack(2, 10, 30) // overlaps a by 11 frames
	c := mkTrack(3, 50, 60)
	full := BuildPairSetFiltered(Window{}, []*Track{a, b, c}, nil, nil)
	if full.Len() != 3 {
		t.Fatalf("unfiltered |Pc| = %d", full.Len())
	}
	filtered := BuildPairSetFiltered(Window{}, []*Track{a, b, c}, nil, TemporalOverlapFilter(0))
	if filtered.Len() != 2 {
		t.Fatalf("filtered |Pc| = %d, want 2", filtered.Len())
	}
	if filtered.Get(PairKey{1, 2}) != nil {
		t.Error("overlapping pair survived the filter")
	}
	if filtered.IndexOf(PairKey{1, 3}) < 0 || filtered.IndexOf(PairKey{2, 3}) < 0 {
		t.Error("disjoint pairs missing")
	}
}
