package video

import (
	"testing"
	"testing/quick"
)

func TestPartitionBasic(t *testing.T) {
	ws := Partition(4000, 2000)
	if len(ws) != 4 {
		t.Fatalf("got %d windows, want 4", len(ws))
	}
	want := []struct{ start, end FrameIndex }{
		{0, 1999}, {1000, 2999}, {2000, 3999}, {3000, 3999},
	}
	for i, w := range ws {
		if w.Start != want[i].start || w.End != want[i].end {
			t.Errorf("window %d = [%d, %d], want [%d, %d]", i, w.Start, w.End, want[i].start, want[i].end)
		}
		if w.Index != i {
			t.Errorf("window %d has index %d", i, w.Index)
		}
		if w.Nominal != 2000 {
			t.Errorf("window %d nominal = %d", i, w.Nominal)
		}
	}
	// The clipped tail window's first half extends to the video end.
	if got := ws[3].FirstHalfEnd(); got != 3999 {
		t.Errorf("tail FirstHalfEnd = %d, want 3999", got)
	}
}

func TestPartitionShortVideo(t *testing.T) {
	// Video shorter than one window: single clipped window.
	ws := Partition(500, 2000)
	if len(ws) != 1 {
		t.Fatalf("got %d windows", len(ws))
	}
	if ws[0].Start != 0 || ws[0].End != 499 {
		t.Errorf("window = [%d, %d]", ws[0].Start, ws[0].End)
	}
}

func TestPartitionExactWindow(t *testing.T) {
	// Tracks starting in the second half of the only full window must
	// still belong to some Tc, so a clipped second window is emitted.
	ws := Partition(2000, 2000)
	if len(ws) != 2 {
		t.Fatalf("got %d windows, want 2", len(ws))
	}
	if ws[1].Start != 1000 || ws[1].End != 1999 {
		t.Errorf("tail window = [%d, %d]", ws[1].Start, ws[1].End)
	}
}

func TestPartitionEmpty(t *testing.T) {
	if ws := Partition(0, 2000); ws != nil {
		t.Errorf("empty video got %d windows", len(ws))
	}
}

func TestPartitionPanicsOnOddL(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for odd L")
		}
	}()
	Partition(100, 99)
}

func TestPartitionPanicsOnNonpositiveL(t *testing.T) {
	for _, L := range []int{0, -2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for L = %d", L)
				}
			}()
			Partition(100, L)
		}()
	}
}

// The minimum legal window length L=2 degenerates to one window per
// frame (half-overlap step 1) and must still satisfy the coverage
// invariants.
func TestPartitionMinimumWindowLen(t *testing.T) {
	ws := Partition(4, 2)
	want := []struct{ start, end FrameIndex }{
		{0, 1}, {1, 2}, {2, 3}, {3, 3},
	}
	if len(ws) != len(want) {
		t.Fatalf("got %d windows, want %d", len(ws), len(want))
	}
	for i, w := range ws {
		if w.Start != want[i].start || w.End != want[i].end {
			t.Errorf("window %d = [%d, %d], want [%d, %d]", i, w.Start, w.End, want[i].start, want[i].end)
		}
		if w.Nominal != 2 {
			t.Errorf("window %d nominal = %d", i, w.Nominal)
		}
	}

	// Single-frame video, L=2: one clipped window covering the frame.
	ws = Partition(1, 2)
	if len(ws) != 1 || ws[0].Start != 0 || ws[0].End != 0 {
		t.Fatalf("Partition(1, 2) = %+v", ws)
	}
	if got := ws[0].FirstHalfEnd(); got != 0 {
		t.Errorf("FirstHalfEnd = %d, want 0", got)
	}
}

// Property: every frame is covered by at least one window and at most two;
// consecutive windows overlap by exactly L/2 (except possibly the last).
func TestPartitionCoverage(t *testing.T) {
	f := func(seed uint64) bool {
		n := 1 + int(seed%9000)
		L := 2 * (1 + int(seed/7%500))
		ws := Partition(n, L)
		cover := make([]int, n)
		firstHalf := make([]int, n)
		for _, w := range ws {
			if w.Start < 0 || int(w.End) > n-1 || w.End < w.Start {
				return false
			}
			for f := w.Start; f <= w.End; f++ {
				cover[f]++
			}
			for f := w.Start; f <= w.FirstHalfEnd(); f++ {
				firstHalf[f]++
			}
		}
		for i := range cover {
			// Every frame in 1-2 windows; every frame in exactly one
			// window's first half (so each track joins exactly one Tc).
			if cover[i] < 1 || cover[i] > 2 || firstHalf[i] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestWindowFirstHalfEnd(t *testing.T) {
	w := Window{Start: 1000, End: 2999, Nominal: 2000}
	if got := w.FirstHalfEnd(); got != 1999 {
		t.Errorf("FirstHalfEnd = %d", got)
	}
	// Whole-video windows (Nominal 0) treat everything as first half.
	if got := (Window{Start: 0, End: 99}).FirstHalfEnd(); got != 99 {
		t.Errorf("whole-video FirstHalfEnd = %d", got)
	}
	if w.Len() != 2000 {
		t.Errorf("Len = %d", w.Len())
	}
	if !w.Contains(1000) || !w.Contains(2999) || w.Contains(3000) || w.Contains(999) {
		t.Error("Contains is wrong at the boundaries")
	}
}

func TestWindowTracks(t *testing.T) {
	// Track 1 starts in the first half, track 2 in the second half,
	// track 3 before the window.
	t1 := mkTrack(1, 1005, 1010, 1020)
	t2 := mkTrack(2, 1950, 1960)
	t3 := mkTrack(3, 500, 1100)
	ts := NewTrackSet([]*Track{t1, t2, t3})
	w := Window{Start: 1000, End: 2999, Nominal: 2000} // first half ends at 1999

	got := WindowTracks(ts, w)
	ids := map[TrackID]bool{}
	for _, tr := range got {
		ids[tr.ID] = true
	}
	if !ids[1] || !ids[2] || ids[3] {
		t.Errorf("WindowTracks = %v", ids)
	}
}

func TestWindowTracksClipping(t *testing.T) {
	tr := mkTrack(1, 1500, 2500, 3500) // extends past window end
	ts := NewTrackSet([]*Track{tr})
	w := Window{Start: 1000, End: 2999, Nominal: 2000}
	got := WindowTracks(ts, w)
	if len(got) != 1 {
		t.Fatalf("got %d tracks", len(got))
	}
	if got[0].Len() != 2 {
		t.Errorf("clipped track has %d boxes, want 2", got[0].Len())
	}
	if got[0].EndFrame() != 2500 {
		t.Errorf("clipped end = %d", got[0].EndFrame())
	}
}

func TestClipTrack(t *testing.T) {
	tr := mkTrack(1, 10, 20, 30, 40)
	c := ClipTrack(tr, 15, 35)
	if c == nil || c.Len() != 2 || c.StartFrame() != 20 || c.EndFrame() != 30 {
		t.Errorf("ClipTrack = %+v", c)
	}
	if ClipTrack(tr, 100, 200) != nil {
		t.Error("fully-outside clip must be nil")
	}
	// Clipping shares boxes, does not copy.
	c2 := ClipTrack(tr, 10, 40)
	if c2.Len() != 4 {
		t.Errorf("identity clip = %d boxes", c2.Len())
	}
}

// Tc membership is disjoint across windows: each track starts in exactly
// one window's first half.
func TestWindowTracksDisjointTc(t *testing.T) {
	tracks := []*Track{
		mkTrack(1, 0, 50),
		mkTrack(2, 999, 1050),
		mkTrack(3, 1000, 1100),
		mkTrack(4, 2500, 2600),
	}
	ts := NewTrackSet(tracks)
	seen := map[TrackID]int{}
	for _, w := range Partition(4000, 2000) {
		for _, tr := range WindowTracks(ts, w) {
			seen[tr.ID]++
		}
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("track %d appears in %d windows' Tc", id, n)
		}
	}
	if len(seen) != 4 {
		t.Errorf("only %d tracks assigned", len(seen))
	}
}
