package video

import (
	"testing"

	"github.com/tmerge/tmerge/internal/geom"
)

// mkTrack builds a track with boxes at the given frames.
func mkTrack(id TrackID, frames ...FrameIndex) *Track {
	t := &Track{ID: id}
	for i, f := range frames {
		t.Boxes = append(t.Boxes, BBox{
			ID:       BBoxID(int(id)*10000 + i),
			Frame:    f,
			Rect:     geom.Rect{X: float64(f), Y: 0, W: 10, H: 10},
			GTObject: ObjectID(id),
		})
	}
	return t
}

func TestTrackAccessors(t *testing.T) {
	tr := mkTrack(1, 5, 7, 9)
	if tr.Len() != 3 {
		t.Errorf("Len = %d", tr.Len())
	}
	if tr.First().Frame != 5 || tr.Last().Frame != 9 {
		t.Errorf("First/Last = %d/%d", tr.First().Frame, tr.Last().Frame)
	}
	if tr.StartFrame() != 5 || tr.EndFrame() != 9 {
		t.Errorf("Start/End = %d/%d", tr.StartFrame(), tr.EndFrame())
	}
	if tr.Span() != 5 {
		t.Errorf("Span = %d, want 5", tr.Span())
	}
}

func TestTrackValidate(t *testing.T) {
	if err := mkTrack(1, 1, 2, 3).Validate(); err != nil {
		t.Errorf("valid track: %v", err)
	}
	if err := (&Track{ID: 2}).Validate(); err == nil {
		t.Error("empty track must fail validation")
	}
	bad := mkTrack(3, 5, 5)
	if err := bad.Validate(); err == nil {
		t.Error("non-increasing frames must fail validation")
	}
}

func TestMajorityObject(t *testing.T) {
	tr := mkTrack(1, 1, 2, 3, 4)
	// Contaminate one box with a different object.
	tr.Boxes[3].GTObject = 9
	obj, purity := tr.MajorityObject()
	if obj != 1 {
		t.Errorf("majority = %v", obj)
	}
	if purity != 0.75 {
		t.Errorf("purity = %v", purity)
	}

	empty := &Track{ID: 5}
	if obj, p := empty.MajorityObject(); obj != -1 || p != 0 {
		t.Errorf("empty majority = %v/%v", obj, p)
	}

	unknown := mkTrack(6, 1, 2)
	unknown.Boxes[0].GTObject = -1
	unknown.Boxes[1].GTObject = -1
	if obj, _ := unknown.MajorityObject(); obj != -1 {
		t.Errorf("unknown majority = %v", obj)
	}
}

func TestMajorityObjectTieBreak(t *testing.T) {
	tr := mkTrack(1, 1, 2)
	tr.Boxes[0].GTObject = 7
	tr.Boxes[1].GTObject = 3
	obj, _ := tr.MajorityObject()
	if obj != 3 {
		t.Errorf("tie must resolve to smaller ID, got %v", obj)
	}
}

func TestTrackSet(t *testing.T) {
	a := mkTrack(1, 1, 2)
	b := mkTrack(2, 3, 4)
	ts := NewTrackSet([]*Track{a, b})
	if ts.Len() != 2 {
		t.Errorf("Len = %d", ts.Len())
	}
	if ts.Get(1) != a || ts.Get(2) != b {
		t.Error("Get returned the wrong track")
	}
	if ts.Get(99) != nil {
		t.Error("Get of missing ID must be nil")
	}
	if ts.TotalBoxes() != 4 {
		t.Errorf("TotalBoxes = %d", ts.TotalBoxes())
	}
}

func TestTrackSetDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate ID")
		}
	}()
	NewTrackSet([]*Track{mkTrack(1, 1), mkTrack(1, 2)})
}

func TestTrackSetSorted(t *testing.T) {
	// Same start frame: tie by ID; different start: by start.
	a := mkTrack(5, 10, 11)
	b := mkTrack(2, 10, 12)
	c := mkTrack(9, 3, 4)
	ts := NewTrackSet([]*Track{a, b, c})
	got := ts.Sorted()
	if got[0] != c || got[1] != b || got[2] != a {
		t.Errorf("Sorted order = %v %v %v", got[0].ID, got[1].ID, got[2].ID)
	}
}

func TestNilTrackSet(t *testing.T) {
	var ts *TrackSet
	if ts.Len() != 0 || ts.Get(1) != nil || ts.Tracks() != nil {
		t.Error("nil TrackSet accessors must be zero-valued")
	}
}

func TestTrackClass(t *testing.T) {
	tr := mkTrack(1, 1, 2, 3)
	if tr.Class() != 0 {
		t.Errorf("default class = %d", tr.Class())
	}
	tr.Boxes[0].Class = 2
	tr.Boxes[1].Class = 2
	tr.Boxes[2].Class = 1
	if tr.Class() != 2 {
		t.Errorf("majority class = %d, want 2", tr.Class())
	}
	// Tie breaks to the smaller class ID.
	tie := mkTrack(2, 1, 2)
	tie.Boxes[0].Class = 3
	tie.Boxes[1].Class = 1
	if tie.Class() != 1 {
		t.Errorf("tie class = %d, want 1", tie.Class())
	}
	if (&Track{}).Class() != 0 {
		t.Error("empty track class must be 0")
	}
}
