package video

import (
	"fmt"
	"math"
	"sort"
)

// PairKey identifies an unordered track pair. The canonical form has
// A < B; use MakePairKey to construct one.
type PairKey struct {
	A, B TrackID
}

// MakePairKey returns the canonical key for the unordered pair {a, b}.
// It panics when a == b: a track is never paired with itself.
func MakePairKey(a, b TrackID) PairKey {
	if a == b {
		panic(fmt.Sprintf("video: self pair %d", a))
	}
	if a > b {
		a, b = b, a
	}
	return PairKey{A: a, B: b}
}

// String implements fmt.Stringer.
func (k PairKey) String() string { return fmt.Sprintf("(%d,%d)", k.A, k.B) }

// Pair is one candidate track pair p_{i,j} from Pc, carrying the two
// (window-clipped) tracks so algorithms can enumerate BBox pairs, plus the
// precomputed spatial and temporal gap features used by BetaInit.
type Pair struct {
	Key PairKey
	// TI is the temporally earlier track (by end frame) and TJ the later
	// one, matching the paper's orientation for the spatial distance:
	// DisS = || center(last BBox of t_i) - center(first BBox of t_j) ||.
	TI, TJ *Track
	// DisS is the spatial distance between TI's last and TJ's first BBox
	// centers (§IV-C).
	DisS float64
	// DisT is the temporal gap in frames between TI's last BBox and TJ's
	// first BBox. Negative when the tracks overlap in time.
	DisT int
}

// NumBBoxPairs returns |B_ti x B_tj|, the number of cross-track BBox pairs.
func (p *Pair) NumBBoxPairs() int { return p.TI.Len() * p.TJ.Len() }

// BBoxPairAt returns the n-th BBox pair under row-major enumeration of
// B_ti x B_tj. It panics when n is out of range.
func (p *Pair) BBoxPairAt(n int) (BBox, BBox) {
	m := p.TJ.Len()
	if n < 0 || n >= p.NumBBoxPairs() {
		panic(fmt.Sprintf("video: bbox pair index %d out of range [0,%d)", n, p.NumBBoxPairs()))
	}
	return p.TI.Boxes[n/m], p.TJ.Boxes[n%m]
}

// NewPair builds a Pair for the two tracks, orienting them by end frame
// (ties broken by ID) and computing the spatial/temporal gap features.
func NewPair(a, b *Track) *Pair {
	ti, tj := a, b
	if tj.EndFrame() < ti.EndFrame() ||
		(tj.EndFrame() == ti.EndFrame() && tj.ID < ti.ID) {
		ti, tj = tj, ti
	}
	return &Pair{
		Key:  MakePairKey(a.ID, b.ID),
		TI:   ti,
		TJ:   tj,
		DisS: ti.Last().Rect.Center().Dist(tj.First().Rect.Center()),
		DisT: int(tj.StartFrame() - ti.EndFrame()),
	}
}

// PairSet is Pc: the universe of candidate track pairs for one window,
// in a deterministic order.
type PairSet struct {
	Window Window
	Pairs  []*Pair
	index  map[PairKey]int
}

// BuildPairSet constructs Pc for window w per Equation (1):
//
//	Pc = { p_{i,j} | t_i ∈ Tc, t_j ∈ Tc ∪ Tc-1, t_i ≠ t_j }
//
// cur is Tc and prev is Tc-1 (nil for the first window). Tracks appearing
// in both sets (possible when a track starts near the boundary) are paired
// once.
func BuildPairSet(w Window, cur, prev []*Track) *PairSet {
	ps := &PairSet{Window: w, index: make(map[PairKey]int)}
	add := func(a, b *Track) {
		if a.ID == b.ID {
			return
		}
		key := MakePairKey(a.ID, b.ID)
		if _, dup := ps.index[key]; dup {
			return
		}
		ps.index[key] = len(ps.Pairs)
		ps.Pairs = append(ps.Pairs, NewPair(a, b))
	}
	for i := 0; i < len(cur); i++ {
		for j := i + 1; j < len(cur); j++ {
			add(cur[i], cur[j])
		}
	}
	for _, a := range cur {
		for _, b := range prev {
			add(a, b)
		}
	}
	sort.Slice(ps.Pairs, func(i, j int) bool { return lessKey(ps.Pairs[i].Key, ps.Pairs[j].Key) })
	for i, p := range ps.Pairs {
		ps.index[p.Key] = i
	}
	return ps
}

func lessKey(a, b PairKey) bool {
	if a.A != b.A {
		return a.A < b.A
	}
	return a.B < b.B
}

// Len returns |Pc|.
func (ps *PairSet) Len() int { return len(ps.Pairs) }

// Get returns the pair with the given key, or nil.
func (ps *PairSet) Get(key PairKey) *Pair {
	if i, ok := ps.index[key]; ok {
		return ps.Pairs[i]
	}
	return nil
}

// IndexOf returns the position of key in the deterministic order, or -1.
func (ps *PairSet) IndexOf(key PairKey) int {
	if i, ok := ps.index[key]; ok {
		return i
	}
	return -1
}

// TopCount returns ceil(K * |Pc|), the size of the candidate set the
// algorithms must report, clamped to [0, |Pc|]. K is clamped to [0, 1].
func (ps *PairSet) TopCount(K float64) int {
	if K <= 0 || ps.Len() == 0 {
		return 0
	}
	if K > 1 {
		K = 1
	}
	n := int(math.Ceil(K * float64(ps.Len())))
	if n > ps.Len() {
		n = ps.Len()
	}
	return n
}

// Recall returns REC(selected) per Equation (3): the fraction of the true
// polyonymous pairs (truth) contained in selected. By convention the recall
// of an empty truth set is 1 (there was nothing to find).
func Recall(selected []PairKey, truth map[PairKey]bool) float64 {
	if len(truth) == 0 {
		return 1
	}
	hit := 0
	for _, k := range selected {
		if truth[k] {
			hit++
		}
	}
	return float64(hit) / float64(len(truth))
}

// PairFilter decides whether a candidate pair enters the universe.
type PairFilter func(p *Pair) bool

// TemporalOverlapFilter rejects pairs whose tracks coexist for more than
// maxOverlap frames: one physical object cannot appear twice in the same
// frame, so heavily co-present tracks cannot be polyonymous. The paper
// keeps the full Eq. (1) universe; this filter is an opt-in pre-pruning
// extension that shrinks |Pc| (and with it every algorithm's cost) at the
// price of missing pairs whose fragments briefly overlap due to duplicate
// detections — hence the slack parameter rather than zero.
func TemporalOverlapFilter(maxOverlap int) PairFilter {
	return func(p *Pair) bool {
		lo := p.TI.StartFrame()
		if s := p.TJ.StartFrame(); s > lo {
			lo = s
		}
		hi := p.TI.EndFrame()
		if e := p.TJ.EndFrame(); e < hi {
			hi = e
		}
		return int(hi-lo)+1 <= maxOverlap
	}
}

// BuildPairSetFiltered is BuildPairSet with a pre-filter; pairs rejected
// by keep never enter Pc. A nil filter keeps everything.
func BuildPairSetFiltered(w Window, cur, prev []*Track, keep PairFilter) *PairSet {
	ps := BuildPairSet(w, cur, prev)
	if keep == nil {
		return ps
	}
	kept := &PairSet{Window: w}
	kept.index = make(map[PairKey]int)
	for _, p := range ps.Pairs {
		if !keep(p) {
			continue
		}
		kept.index[p.Key] = len(kept.Pairs)
		kept.Pairs = append(kept.Pairs, p)
	}
	return kept
}
