// Package video defines the core data model shared by the simulator, the
// trackers, and the merging algorithms: frames, bounding boxes (BBoxes),
// tracks, track sets, the half-overlapping window partitioning of §II of
// the paper, and the track-pair universe Pc (Equation 1).
package video

import (
	"fmt"
	"math"
	"sort"

	"github.com/tmerge/tmerge/internal/geom"
	"github.com/tmerge/tmerge/internal/vecmath"
)

// FrameIndex identifies a frame within a video, starting at 0.
type FrameIndex int

// ObjectID is the ground-truth identity of a physical object. It is known
// to the simulator and the evaluation code only; the merging algorithms
// never consult it.
type ObjectID int

// TrackID is a tracker-assigned track identifier (TID in the paper).
type TrackID int

// ClassID is a detected object class (person, vehicle, ...). Class 0 is
// the default single-class setting; detectors that distinguish classes
// label every BBox, trackers never associate across classes, and queries
// may constrain on them (the paper's "two persons and one vehicle").
type ClassID int

// BBoxID uniquely identifies a bounding box within a video. It is the key
// of the ReID feature cache, implementing the paper's feature-reuse
// optimisation.
type BBoxID uint64

// BBox is one detection of one object in one frame, together with the
// appearance observation the ReID model consumes. In the paper a BBox's
// "content" is image pixels; here it is a noisy observation of the
// object's latent appearance vector produced by the scene simulator.
type BBox struct {
	ID    BBoxID
	Frame FrameIndex
	Rect  geom.Rect
	// Obs is the appearance observation ("pixel content"). The merging
	// algorithms only ever hand it to the ReID oracle.
	Obs vecmath.Vec
	// Class is the detected object class (0 when single-class).
	Class ClassID
	// GTObject is the ground-truth object identity, used for evaluation
	// only (computing P*c, MOT metrics, query recall). -1 when unknown.
	GTObject ObjectID
}

// MaxFrameIndex bounds the frame indices Validate accepts. At 30 fps,
// 2^40 frames is over a thousand years of footage — anything beyond it is
// a corrupt or hostile record, not a long stream.
const MaxFrameIndex FrameIndex = 1 << 40

// Validate reports whether the box is structurally usable: finite
// geometry, strictly positive width and height, a frame index in
// [0, MaxFrameIndex], and a finite appearance observation. It is the
// shared input-hardening gate: the dataset and trackdb loaders apply it
// to every record they accept, and the streaming ingestor quarantines
// detections that fail it instead of letting them corrupt tracker state
// (a NaN coordinate would poison every Kalman filter and IoU it touches).
func (b BBox) Validate() error {
	for _, f := range [...]float64{b.Rect.X, b.Rect.Y, b.Rect.W, b.Rect.H} {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return fmt.Errorf("video: bbox %d has non-finite geometry (%g, %g, %g, %g)",
				b.ID, b.Rect.X, b.Rect.Y, b.Rect.W, b.Rect.H)
		}
	}
	if b.Rect.W <= 0 || b.Rect.H <= 0 {
		return fmt.Errorf("video: bbox %d has non-positive size %gx%g", b.ID, b.Rect.W, b.Rect.H)
	}
	if b.Frame < 0 || b.Frame > MaxFrameIndex {
		return fmt.Errorf("video: bbox %d has frame index %d outside [0, %d]", b.ID, b.Frame, MaxFrameIndex)
	}
	for i, v := range b.Obs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("video: bbox %d has non-finite observation component %d", b.ID, i)
		}
	}
	return nil
}

// Track is a sequence of BBoxes with a single tracker-assigned ID, ordered
// by frame index.
type Track struct {
	ID    TrackID
	Boxes []BBox
}

// Len returns the number of BBoxes in the track.
func (t *Track) Len() int { return len(t.Boxes) }

// First returns the first (earliest) BBox. It panics on an empty track.
func (t *Track) First() BBox { return t.Boxes[0] }

// Last returns the last (latest) BBox. It panics on an empty track.
func (t *Track) Last() BBox { return t.Boxes[len(t.Boxes)-1] }

// StartFrame returns the frame of the first BBox.
func (t *Track) StartFrame() FrameIndex { return t.First().Frame }

// EndFrame returns the frame of the last BBox.
func (t *Track) EndFrame() FrameIndex { return t.Last().Frame }

// Span returns the number of frames the track covers, inclusive.
func (t *Track) Span() int { return int(t.EndFrame()-t.StartFrame()) + 1 }

// MajorityObject returns the GT object that owns the plurality of the
// track's BBoxes, together with the fraction of boxes it owns. It returns
// (-1, 0) for an empty track or a track of unknown objects.
func (t *Track) MajorityObject() (ObjectID, float64) {
	if len(t.Boxes) == 0 {
		return -1, 0
	}
	counts := make(map[ObjectID]int)
	for _, b := range t.Boxes {
		if b.GTObject >= 0 {
			counts[b.GTObject]++
		}
	}
	best, bestN := ObjectID(-1), 0
	for id, n := range counts {
		if n > bestN || (n == bestN && id < best) {
			best, bestN = id, n
		}
	}
	if bestN == 0 {
		return -1, 0
	}
	return best, float64(bestN) / float64(len(t.Boxes))
}

// Class returns the plurality class of the track's boxes (ties to the
// smaller ID; 0 for an empty track).
func (t *Track) Class() ClassID {
	counts := make(map[ClassID]int)
	for _, b := range t.Boxes {
		counts[b.Class]++
	}
	best, bestN := ClassID(0), -1
	for c, n := range counts {
		if n > bestN || (n == bestN && c < best) {
			best, bestN = c, n
		}
	}
	if bestN < 0 {
		return 0
	}
	return best
}

// Validate checks the track's internal invariants: at least one box and
// frame indices strictly increasing.
func (t *Track) Validate() error {
	if len(t.Boxes) == 0 {
		return fmt.Errorf("video: track %d has no boxes", t.ID)
	}
	for i := 1; i < len(t.Boxes); i++ {
		if t.Boxes[i].Frame <= t.Boxes[i-1].Frame {
			return fmt.Errorf("video: track %d frames not strictly increasing at index %d", t.ID, i)
		}
	}
	return nil
}

// TrackSet is a collection of tracks indexed by TrackID.
type TrackSet struct {
	tracks []*Track
	byID   map[TrackID]*Track
}

// NewTrackSet builds a TrackSet from tracks. Duplicate IDs panic: the
// tracker and the merger both guarantee uniqueness.
func NewTrackSet(tracks []*Track) *TrackSet {
	ts := &TrackSet{byID: make(map[TrackID]*Track, len(tracks))}
	for _, t := range tracks {
		ts.Add(t)
	}
	return ts
}

// Add inserts a track. It panics on a duplicate ID.
func (ts *TrackSet) Add(t *Track) {
	if _, dup := ts.byID[t.ID]; dup {
		panic(fmt.Sprintf("video: duplicate track ID %d", t.ID))
	}
	ts.tracks = append(ts.tracks, t)
	ts.byID[t.ID] = t
}

// Get returns the track with the given ID, or nil.
func (ts *TrackSet) Get(id TrackID) *Track {
	if ts == nil {
		return nil
	}
	return ts.byID[id]
}

// Len returns the number of tracks.
func (ts *TrackSet) Len() int {
	if ts == nil {
		return 0
	}
	return len(ts.tracks)
}

// Tracks returns the tracks in insertion order. The returned slice must
// not be modified.
func (ts *TrackSet) Tracks() []*Track {
	if ts == nil {
		return nil
	}
	return ts.tracks
}

// Sorted returns the tracks ordered by start frame, then by ID — the
// deterministic ordering the windowing and pair-enumeration code relies on.
func (ts *TrackSet) Sorted() []*Track {
	out := make([]*Track, len(ts.tracks))
	copy(out, ts.tracks)
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartFrame() != out[j].StartFrame() {
			return out[i].StartFrame() < out[j].StartFrame()
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// TotalBoxes returns the total number of BBoxes across all tracks.
func (ts *TrackSet) TotalBoxes() int {
	n := 0
	for _, t := range ts.tracks {
		n += len(t.Boxes)
	}
	return n
}
