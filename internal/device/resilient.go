package device

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/tmerge/tmerge/internal/xrand"
)

// ErrClosed reports a submission against a device retired with Close.
// It wraps ErrUnavailable is-wise via the returned error chain, so
// callers that degrade on unavailability degrade on closure too.
var ErrClosed = errors.New("device closed")

// RetryPolicy bounds how hard a ResilientDevice works to complete one
// submission: up to MaxAttempts attempts, separated by exponential
// backoff with deterministic jitter. Backoff delays are charged to the
// wrapped device's virtual clock, so retries show up in the modeled
// throughput exactly like any other cost.
type RetryPolicy struct {
	// MaxAttempts is the per-submission attempt budget (first attempt
	// included). Values <= 0 default to 4.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry. Values <= 0
	// default to 200µs.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Values <= 0 default to 5ms.
	MaxDelay time.Duration
	// Multiplier grows the backoff between retries. Values < 1 default
	// to 2.
	Multiplier float64
	// Jitter is the fraction of each delay that is randomised: the
	// charged delay is delay·(1 + Jitter·u) with u uniform in [-1, 1),
	// drawn from a seeded stream so runs stay reproducible. Clamped to
	// [0, 1].
	Jitter float64
}

// DefaultRetryPolicy returns the retry policy used when fields are unset:
// 4 attempts, 200µs base delay doubling up to 5ms, 50% jitter.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: 200 * time.Microsecond, MaxDelay: 5 * time.Millisecond, Multiplier: 2, Jitter: 0.5}
}

// BreakerConfig parameterises the circuit breaker: closed → open after
// Threshold consecutive failed attempts; open → half-open once the
// cooldown is over; half-open → closed on a successful probe, back to
// open on a failed one.
//
// Because time here is virtual (it advances only when work executes), a
// purely time-based cooldown could never elapse while the breaker is
// rejecting everything. The cooldown is therefore over when EITHER
// enough virtual time has passed OR enough submissions have been
// rejected while open — whichever happens first. Setting both fields to
// zero makes every submission after a trip a half-open probe.
type BreakerConfig struct {
	// Threshold is the number of consecutive failed attempts that trips
	// the breaker. Values <= 0 default to 5.
	Threshold int
	// Cooldown is the virtual time the breaker stays open before a
	// probe is allowed. <= 0 disables the time criterion.
	Cooldown time.Duration
	// CooldownRejections is the number of submissions rejected while
	// open before a probe is allowed. <= 0 disables the count
	// criterion.
	CooldownRejections int
}

// DefaultBreakerConfig returns the breaker used when fields are unset:
// trip after 5 consecutive failures, probe after 2ms of virtual time or
// 3 rejected submissions.
func DefaultBreakerConfig() BreakerConfig {
	return BreakerConfig{Threshold: 5, Cooldown: 2 * time.Millisecond, CooldownRejections: 3}
}

// BreakerState is the circuit breaker's state.
type BreakerState int

const (
	// BreakerClosed: submissions flow to the inner device normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: submissions are rejected without touching the inner
	// device until the cooldown is over.
	BreakerOpen
	// BreakerHalfOpen: one probe submission is in flight; its outcome
	// decides between Closed and Open.
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("BreakerState(%d)", int(s))
}

// ResilientCounters counts what the retry/breaker machinery did — the
// fault-path analogue of reid.Stats, reported alongside it in
// core.PipelineResult.Resilience.
type ResilientCounters struct {
	Submissions int64 // TrySubmit/Submit calls (logical submissions)
	Attempts    int64 // attempts issued to the inner device
	Retries     int64 // attempts beyond a submission's first
	Failures    int64 // failed inner attempts
	Rejected    int64 // submissions fast-failed while the breaker was open
	Trips       int64 // closed/half-open → open transitions
	Probes      int64 // half-open probe attempts (successes included)
}

// Sub returns the element-wise difference c − o, for computing per-pass
// deltas from two snapshots.
func (c ResilientCounters) Sub(o ResilientCounters) ResilientCounters {
	return ResilientCounters{
		Submissions: c.Submissions - o.Submissions,
		Attempts:    c.Attempts - o.Attempts,
		Retries:     c.Retries - o.Retries,
		Failures:    c.Failures - o.Failures,
		Rejected:    c.Rejected - o.Rejected,
		Trips:       c.Trips - o.Trips,
		Probes:      c.Probes - o.Probes,
	}
}

// ResilientDevice wraps a fallible device with retry, exponential backoff
// with jitter, and a circuit breaker, masking transient faults from the
// oracle. Its TrySubmit either completes the submission or reports
// unavailability; its Submit — the path the oracle uses — panics with
// *Unavailable instead, which RunPipeline and the Ingestor recover at
// window granularity by degrading to the spatial prior.
//
// ResilientDevice is safe for concurrent use; concurrent submissions are
// serialised (the wrapped accelerator still parallelises each
// submission's items internally).
type ResilientDevice struct {
	mu      sync.Mutex
	inner   Fallible
	retry   RetryPolicy
	breaker BreakerConfig
	rng     *xrand.RNG

	state       BreakerState
	consecutive int           // consecutive failed attempts
	openedAt    time.Duration // inner clock reading at the last trip
	rejects     int           // submissions rejected since the last trip
	closed      bool          // retired via Close; all submissions refused
	c           ResilientCounters
}

// NewResilientDevice wraps inner (adapted via AsFallible) with the given
// retry policy and breaker. Zero-valued fields of either config take the
// documented defaults. seed drives the backoff jitter.
func NewResilientDevice(inner Device, retry RetryPolicy, breaker BreakerConfig, seed uint64) *ResilientDevice {
	def := DefaultRetryPolicy()
	if retry.MaxAttempts <= 0 {
		retry.MaxAttempts = def.MaxAttempts
	}
	if retry.BaseDelay <= 0 {
		retry.BaseDelay = def.BaseDelay
	}
	if retry.MaxDelay <= 0 {
		retry.MaxDelay = def.MaxDelay
	}
	if retry.Multiplier < 1 {
		retry.Multiplier = def.Multiplier
	}
	if retry.Jitter < 0 {
		retry.Jitter = 0
	}
	if retry.Jitter > 1 {
		retry.Jitter = 1
	}
	if breaker.Threshold <= 0 {
		breaker.Threshold = DefaultBreakerConfig().Threshold
	}
	return &ResilientDevice{
		inner:   AsFallible(inner),
		retry:   retry,
		breaker: breaker,
		rng:     xrand.Derive(seed, "device:resilient"),
	}
}

// Name implements Device.
func (d *ResilientDevice) Name() string { return "resilient(" + d.inner.Name() + ")" }

// Clock implements Device, delegating to the inner device: backoff
// delays are charged there, so one clock carries the full virtual cost.
func (d *ResilientDevice) Clock() *Clock { return d.inner.Clock() }

// Submissions implements Device, counting logical submissions (one per
// Submit/TrySubmit call, successful or not). Counters() breaks these
// down into attempts, retries, and rejections.
func (d *ResilientDevice) Submissions() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.c.Submissions
}

// Inner returns the wrapped device.
func (d *ResilientDevice) Inner() Fallible { return d.inner }

// State returns the breaker's current state.
func (d *ResilientDevice) State() BreakerState {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.state
}

// Counters returns a snapshot of the retry/breaker counters.
func (d *ResilientDevice) Counters() ResilientCounters {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.c
}

// ResilientState is a serialisable snapshot of a ResilientDevice's
// mutable state: breaker position, failure streak, cooldown bookkeeping,
// counters, and the jitter RNG. Together with the inner device's clock it
// is everything needed to resume the device deterministically after a
// process restart.
type ResilientState struct {
	Breaker     BreakerState      `json:"breaker"`
	Consecutive int               `json:"consecutive"`
	OpenedAtNS  int64             `json:"opened_at_ns"`
	Rejects     int               `json:"rejects"`
	Counters    ResilientCounters `json:"counters"`
	RNG         xrand.State       `json:"rng"`
}

// ExportState snapshots the device's mutable state for checkpointing.
func (d *ResilientDevice) ExportState() ResilientState {
	d.mu.Lock()
	defer d.mu.Unlock()
	return ResilientState{
		Breaker:     d.state,
		Consecutive: d.consecutive,
		OpenedAtNS:  int64(d.openedAt),
		Rejects:     d.rejects,
		Counters:    d.c,
		RNG:         d.rng.State(),
	}
}

// ImportState overwrites the device's mutable state with a snapshot taken
// by ExportState. It returns an error for snapshots naming an impossible
// breaker state, leaving the device untouched.
func (d *ResilientDevice) ImportState(st ResilientState) error {
	if st.Breaker < BreakerClosed || st.Breaker > BreakerHalfOpen {
		return fmt.Errorf("device: resilient snapshot has invalid breaker state %d", int(st.Breaker))
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.state = st.Breaker
	d.consecutive = st.Consecutive
	d.openedAt = time.Duration(st.OpenedAtNS)
	d.rejects = st.Rejects
	d.c = st.Counters
	d.rng.SetState(st.RNG)
	return nil
}

// ResetBreaker force-closes the breaker and clears the failure streak,
// e.g. after an operator has restored the backing service.
func (d *ResilientDevice) ResetBreaker() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.state = BreakerClosed
	d.consecutive = 0
	d.rejects = 0
}

// Close retires the device: every subsequent TrySubmit fails with an
// error matching both ErrClosed and ErrUnavailable, and Submit panics
// with *Unavailable. The serving layer closes the device chain of a
// pipeline it has replaced during crash recovery, so a stray goroutine
// still holding the retired chain fails loudly instead of silently
// advancing a clock nothing reads. Close is idempotent and safe to call
// concurrently with in-flight submissions (it does not wait for them;
// an in-flight submission completes normally). It never returns a
// non-nil error; the signature matches the conventional closer shape.
func (d *ResilientDevice) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	return nil
}

// Submit implements Device. It panics with *Unavailable when the
// submission cannot be completed; see Fallible.
func (d *ResilientDevice) Submit(nExtract, nDistance int, run func(i int)) {
	if err := d.TrySubmit(nExtract, nDistance, run); err != nil {
		panic(&Unavailable{Err: err})
	}
}

// TrySubmit implements Fallible: attempt the submission against the
// inner device under the retry policy, maintaining the breaker state.
func (d *ResilientDevice) TrySubmit(nExtract, nDistance int, run func(i int)) error {
	validateSubmission(nExtract, nDistance, run)
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		// Counters stay frozen at their retirement values: a closed
		// device's state is already checkpointed or discarded, and a
		// refused call must not perturb it.
		return fmt.Errorf("resilient(%s): %w: %w", d.inner.Name(), ErrClosed, ErrUnavailable)
	}
	d.c.Submissions++

	if d.state == BreakerOpen {
		if !d.cooldownOverLocked() {
			d.rejects++
			d.c.Rejected++
			return fmt.Errorf("resilient(%s): circuit open: %w", d.inner.Name(), ErrUnavailable)
		}
		d.state = BreakerHalfOpen
	}
	probing := d.state == BreakerHalfOpen

	attempts := d.retry.MaxAttempts
	if probing {
		attempts = 1 // a single probe decides the breaker's fate
	}
	delay := d.retry.BaseDelay
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			d.c.Retries++
			d.inner.Clock().Add(d.jitteredLocked(delay))
			delay = time.Duration(float64(delay) * d.retry.Multiplier)
			if delay > d.retry.MaxDelay {
				delay = d.retry.MaxDelay
			}
		}
		d.c.Attempts++
		if probing {
			d.c.Probes++
		}
		//tmerge:allow lock-discipline breaker state machine requires single-flight submissions; the inner device blocks only on modeled virtual time
		err := d.inner.TrySubmit(nExtract, nDistance, run)
		if err == nil {
			d.consecutive = 0
			d.state = BreakerClosed
			return nil
		}
		lastErr = err
		d.c.Failures++
		d.consecutive++
		if probing || d.consecutive >= d.breaker.Threshold {
			d.tripLocked()
			return fmt.Errorf("resilient(%s): circuit opened after %d consecutive failures: %w (last: %w)",
				d.inner.Name(), d.breaker.Threshold, ErrUnavailable, lastErr)
		}
	}
	return fmt.Errorf("resilient(%s): attempt budget (%d) exhausted: %w (last: %w)",
		d.inner.Name(), attempts, ErrUnavailable, lastErr)
}

// tripLocked transitions to Open and records the trip.
func (d *ResilientDevice) tripLocked() {
	d.state = BreakerOpen
	d.openedAt = d.inner.Clock().Elapsed()
	d.rejects = 0
	d.consecutive = 0
	d.c.Trips++
}

// cooldownOverLocked decides whether an open breaker may probe. See
// BreakerConfig for why rejection counting exists alongside virtual time.
func (d *ResilientDevice) cooldownOverLocked() bool {
	cd, cr := d.breaker.Cooldown, d.breaker.CooldownRejections
	if cd <= 0 && cr <= 0 {
		return true
	}
	if cd > 0 && d.inner.Clock().Elapsed()-d.openedAt >= cd {
		return true
	}
	if cr > 0 && d.rejects >= cr {
		return true
	}
	return false
}

// jitteredLocked applies the policy's jitter to a backoff delay.
func (d *ResilientDevice) jitteredLocked(delay time.Duration) time.Duration {
	if d.retry.Jitter <= 0 {
		return delay
	}
	u := 2*d.rng.Float64() - 1
	out := time.Duration(float64(delay) * (1 + d.retry.Jitter*u))
	if out < 0 {
		out = 0
	}
	return out
}
