package device

import (
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

// checkNoGoroutineLeak fails the test if the goroutine count has not
// returned to (roughly) its before-value within a few seconds — the
// PR 4 executor leak-check idiom, applied here to pin that the device
// layer spawns no goroutines of its own under concurrent use.
func checkNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after", before, now)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// faultyDouble is a local Fallible that fails in bursts: of every
// period calls, the first burst fail. Bursts are what trip a breaker —
// isolated failures are absorbed by the retry budget. Device tests
// cannot use internal/fault (it imports this package), so the breaker
// is exercised with this double instead.
type faultyDouble struct {
	Fallible
	mu     sync.Mutex
	calls  int
	period int
	burst  int
}

var errDoubleInjected = errors.New("faulty double: injected failure")

func (f *faultyDouble) TrySubmit(nExtract, nDistance int, run func(i int)) error {
	f.mu.Lock()
	f.calls++
	fail := f.period > 0 && f.calls%f.period < f.burst
	f.mu.Unlock()
	if fail {
		return errDoubleInjected
	}
	return f.Fallible.TrySubmit(nExtract, nDistance, run)
}

func newFaultyResilient(period, burst int, seed uint64) *ResilientDevice {
	inner := &faultyDouble{Fallible: AsFallible(NewCPU(DefaultCPU)), period: period, burst: burst}
	return NewResilientDevice(inner,
		RetryPolicy{MaxAttempts: 2, Jitter: -1},
		BreakerConfig{Threshold: 2, Cooldown: -1, CooldownRejections: 2}, seed)
}

// TestResilientConcurrentMultiStreamNoLeak hammers both shared and
// per-stream resilient devices from many goroutines — submissions,
// breaker trips, recoveries, and monitoring reads all interleaved — and
// then checks the goroutine count returns to baseline: the device layer
// owns no goroutines, so multi-stream serving cannot leak any here.
func TestResilientConcurrentMultiStreamNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	const streams = 8
	const perStream = 150
	shared := newFaultyResilient(9, 3, 1)
	var wg sync.WaitGroup
	for i := 0; i < streams; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			own := newFaultyResilient(7, 3, uint64(i))
			for n := 0; n < perStream; n++ {
				// Failures are expected: the double injects them and the
				// breaker converts streaks into open-circuit rejections.
				_ = own.TrySubmit(2, 1, func(int) {})
				_ = shared.TrySubmit(1, 1, func(int) {})
				_ = shared.State()
				_ = own.Counters()
			}
		}()
	}
	wg.Wait()

	c := shared.Counters()
	if c.Submissions != streams*perStream {
		t.Fatalf("shared device saw %d submissions, want %d", c.Submissions, streams*perStream)
	}
	if c.Trips == 0 {
		t.Fatal("breaker never tripped; the concurrent fault path was not exercised")
	}
	checkNoGoroutineLeak(t, before)
}

// TestResilientDoubleClose pins the Close contract: idempotent, safe
// concurrently with in-flight submissions, and terminal — submissions
// after Close fail with an error matching both ErrClosed and
// ErrUnavailable, Submit panics with *Unavailable, and the counters
// stay frozen at their retirement values.
func TestResilientDoubleClose(t *testing.T) {
	before := runtime.NumGoroutine()
	d := newFaultyResilient(0, 0, 3)
	for i := 0; i < 5; i++ {
		if err := d.TrySubmit(1, 1, func(int) {}); err != nil {
			t.Fatalf("pre-close submit %d: %v", i, err)
		}
	}

	// Concurrent closers racing live submissions: every Close returns
	// nil, every post-close submission is refused.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = d.TrySubmit(1, 0, func(int) {})
			if err := d.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
			if err := d.Close(); err != nil {
				t.Errorf("double close: %v", err)
			}
		}()
	}
	wg.Wait()

	frozen := d.Counters()
	err := d.TrySubmit(1, 1, func(int) {})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close TrySubmit: got %v, want ErrClosed", err)
	}
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("post-close error %v does not match ErrUnavailable; degradation paths would miss it", err)
	}
	if got := d.Counters(); got != frozen {
		t.Fatalf("refused post-close submission perturbed counters: %+v != %+v", got, frozen)
	}

	func() {
		defer func() {
			u, ok := recover().(*Unavailable)
			if !ok {
				t.Fatal("post-close Submit did not panic with *Unavailable")
			}
			if !errors.Is(u.Err, ErrClosed) {
				t.Fatalf("post-close Submit panic carries %v, want ErrClosed", u.Err)
			}
		}()
		d.Submit(1, 1, func(int) {})
	}()
	checkNoGoroutineLeak(t, before)
}

// TestBreakerRecoversAfterConcurrentTrips pins that the breaker state
// machine stays consistent under contention: after the fault source
// heals, the device must return to Closed and complete submissions.
func TestBreakerRecoversAfterConcurrentTrips(t *testing.T) {
	before := runtime.NumGoroutine()
	inner := &faultyDouble{Fallible: AsFallible(NewCPU(DefaultCPU)), period: 1, burst: 1} // always failing
	d := NewResilientDevice(inner,
		RetryPolicy{MaxAttempts: 2, Jitter: -1},
		BreakerConfig{Threshold: 2, Cooldown: -1, CooldownRejections: 2}, 5)

	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 50; n++ {
				_ = d.TrySubmit(1, 0, func(int) {})
			}
		}()
	}
	wg.Wait()
	if d.Counters().Trips == 0 {
		t.Fatal("always-failing inner never tripped the breaker")
	}

	// Heal the fault source; the next probes must re-close the breaker.
	inner.mu.Lock()
	inner.burst = 0
	inner.mu.Unlock()
	var ok bool
	for n := 0; n < 10 && !ok; n++ {
		ok = d.TrySubmit(1, 0, func(int) {}) == nil
	}
	if !ok {
		t.Fatal("breaker never recovered after the fault source healed")
	}
	if d.State() != BreakerClosed {
		t.Fatalf("state = %v after successful submission, want closed", d.State())
	}
	checkNoGoroutineLeak(t, before)
}
