package device

import (
	"errors"
	"fmt"
)

// ErrUnavailable marks a submission that was refused or abandoned because
// the device is out of service — a circuit breaker is open, or a retry
// budget was exhausted without a successful attempt. Wrap-aware: check
// with errors.Is.
var ErrUnavailable = errors.New("device unavailable")

// Unavailable is the panic value raised by the infallible Submit path of a
// fallible device when a submission cannot be served (see Fallible). The
// Algorithm interface has no error path — by design, selection code is
// written against an infallible oracle — so unavailability propagates as a
// typed panic that the window-granular callers (core.RunPipeline,
// ingest.Ingestor) recover, falling back to degraded selection for the
// affected window. Any other panic value passes through untouched.
type Unavailable struct {
	// Err is the underlying submission error (retry-budget exhaustion,
	// open breaker, injected fault, ...).
	Err error
}

// Error implements error.
func (u *Unavailable) Error() string { return fmt.Sprintf("device: submission failed: %v", u.Err) }

// Unwrap exposes the underlying error to errors.Is / errors.As.
func (u *Unavailable) Unwrap() error { return u.Err }

// Fallible is a Device whose submissions can fail: remote accelerator
// services drop requests, time out, and suffer outages. TrySubmit is the
// error-returning twin of Submit; Submit on a Fallible device must either
// succeed or panic with *Unavailable. The built-in CPU and accelerator
// devices implement Fallible trivially (local execution never fails);
// fault.Flaky injects failures and ResilientDevice masks them.
type Fallible interface {
	Device
	// TrySubmit executes one submission like Device.Submit but reports
	// failure instead of guaranteeing completion. On error the
	// submission's results must not be used: the work may be partially
	// executed, wholly unexecuted, or executed-but-expired (deadline).
	// Retrying with the same run function is safe as long as run is
	// idempotent, which every oracle execution path guarantees (run(i)
	// writes only slot i of a results slice).
	TrySubmit(nExtract, nDistance int, run func(i int)) error
}

// TrySubmit implements Fallible: local serial execution cannot fail.
func (d *cpu) TrySubmit(nExtract, nDistance int, run func(i int)) error {
	d.Submit(nExtract, nDistance, run)
	return nil
}

// TrySubmit implements Fallible: local parallel execution cannot fail.
func (d *accelerator) TrySubmit(nExtract, nDistance int, run func(i int)) error {
	d.Submit(nExtract, nDistance, run)
	return nil
}

// AsFallible adapts d to the Fallible contract. Devices that already
// implement Fallible are returned unchanged; anything else is wrapped in
// an adapter whose TrySubmit always succeeds.
func AsFallible(d Device) Fallible {
	if f, ok := d.(Fallible); ok {
		return f
	}
	return infallible{d}
}

// infallible adapts a plain Device to Fallible.
type infallible struct{ Device }

func (w infallible) TrySubmit(nExtract, nDistance int, run func(i int)) error {
	w.Submit(nExtract, nDistance, run)
	return nil
}
