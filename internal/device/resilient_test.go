package device

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// scripted is a Fallible test double: attempt i fails iff fail(i) is
// true. Failed attempts charge failCost to the clock.
type scripted struct {
	cpu      Device
	fail     func(i int64) bool
	failCost time.Duration
	attempts int64
}

var errScripted = errors.New("scripted failure")

func newScripted(fail func(i int64) bool) *scripted {
	return &scripted{cpu: NewCPU(CostModel{PerExtract: time.Microsecond}), fail: fail}
}

func (s *scripted) Name() string       { return "scripted" }
func (s *scripted) Clock() *Clock      { return s.cpu.Clock() }
func (s *scripted) Submissions() int64 { return s.attempts }
func (s *scripted) Submit(nE, nD int, run func(i int)) {
	if err := s.TrySubmit(nE, nD, run); err != nil {
		panic(&Unavailable{Err: err})
	}
}
func (s *scripted) TrySubmit(nE, nD int, run func(i int)) error {
	i := s.attempts
	s.attempts++
	if s.fail(i) {
		s.cpu.Clock().Add(s.failCost)
		return errScripted
	}
	s.cpu.Submit(nE, nD, run)
	return nil
}

func TestResilientRetriesTransientFailures(t *testing.T) {
	// Attempts 0 and 1 fail, attempt 2 succeeds: one submission, two
	// retries, work executed exactly once.
	inner := newScripted(func(i int64) bool { return i < 2 })
	d := NewResilientDevice(inner, RetryPolicy{MaxAttempts: 4, Jitter: -1}, BreakerConfig{Threshold: 10}, 1)
	ran := 0
	if err := d.TrySubmit(3, 0, func(int) { ran++ }); err != nil {
		t.Fatalf("TrySubmit: %v", err)
	}
	if ran != 3 {
		t.Errorf("ran %d extractions, want 3", ran)
	}
	c := d.Counters()
	want := ResilientCounters{Submissions: 1, Attempts: 3, Retries: 2, Failures: 2}
	if c != want {
		t.Errorf("counters = %+v, want %+v", c, want)
	}
	if d.State() != BreakerClosed {
		t.Errorf("state = %v, want closed", d.State())
	}
}

func TestResilientBudgetExhausted(t *testing.T) {
	inner := newScripted(func(int64) bool { return true })
	d := NewResilientDevice(inner, RetryPolicy{MaxAttempts: 3}, BreakerConfig{Threshold: 100}, 1)
	err := d.TrySubmit(1, 0, func(int) {})
	if err == nil {
		t.Fatal("want error")
	}
	if !errors.Is(err, ErrUnavailable) {
		t.Errorf("error %v should wrap ErrUnavailable", err)
	}
	if !errors.Is(err, errScripted) {
		t.Errorf("error %v should wrap the inner cause", err)
	}
	c := d.Counters()
	if c.Attempts != 3 || c.Failures != 3 || c.Retries != 2 {
		t.Errorf("counters = %+v", c)
	}
	// Threshold not reached: still closed.
	if d.State() != BreakerClosed {
		t.Errorf("state = %v, want closed", d.State())
	}
}

func TestResilientBreakerTripAndRecovery(t *testing.T) {
	// Outage covers attempts [0, 5): the first submission trips the
	// breaker mid-retry, the next is rejected without touching the inner
	// device, then a probe fails (still in outage) and re-trips, and
	// finally a probe succeeds and closes the breaker.
	inner := newScripted(func(i int64) bool { return i < 5 })
	d := NewResilientDevice(inner,
		RetryPolicy{MaxAttempts: 10, Jitter: -1},
		BreakerConfig{Threshold: 4, CooldownRejections: 1},
		1)

	// Submission 1: attempts 0-3 fail, breaker trips on the 4th.
	if err := d.TrySubmit(1, 0, func(int) {}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("want unavailable, got %v", err)
	}
	if d.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", d.State())
	}
	if got := d.Counters().Trips; got != 1 {
		t.Fatalf("trips = %d, want 1", got)
	}

	// Submission 2: rejected while open (cooldown not over).
	err := d.TrySubmit(1, 0, func(int) {})
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("want unavailable, got %v", err)
	}
	if got := d.Counters().Rejected; got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}
	if got := inner.attempts; got != 4 {
		t.Fatalf("inner attempts = %d, want 4 (rejection must not reach inner)", got)
	}

	// Submission 3: cooldown over (1 rejection) → probe attempt 4 fails
	// → re-trip.
	if err := d.TrySubmit(1, 0, func(int) {}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("want unavailable, got %v", err)
	}
	if got := d.Counters().Trips; got != 2 {
		t.Fatalf("trips = %d, want 2", got)
	}

	// Submission 4: rejected again; submission 5: probe attempt 5
	// succeeds → closed.
	d.TrySubmit(1, 0, func(int) {})
	ran := false
	if err := d.TrySubmit(1, 0, func(int) { ran = true }); err != nil {
		t.Fatalf("recovered submission failed: %v", err)
	}
	if !ran {
		t.Error("recovered submission did not execute")
	}
	if d.State() != BreakerClosed {
		t.Errorf("state = %v, want closed", d.State())
	}
	c := d.Counters()
	if c.Probes != 2 {
		t.Errorf("probes = %d, want 2", c.Probes)
	}
	if c.Submissions != 5 || c.Rejected != 2 || c.Failures != 5 {
		t.Errorf("counters = %+v", c)
	}
}

func TestResilientTimeCooldown(t *testing.T) {
	inner := newScripted(func(i int64) bool { return i < 2 })
	inner.failCost = 3 * time.Millisecond // failures consume virtual time
	d := NewResilientDevice(inner,
		RetryPolicy{MaxAttempts: 1},
		BreakerConfig{Threshold: 2, Cooldown: 5 * time.Millisecond},
		1)
	d.TrySubmit(1, 0, func(int) {}) // attempt 0 fails (clock: 3ms)
	d.TrySubmit(1, 0, func(int) {}) // attempt 1 fails → trip at 6ms
	if d.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", d.State())
	}
	// Clock has not advanced since the trip: rejected.
	if err := d.TrySubmit(1, 0, func(int) {}); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("want rejection, got %v", err)
	}
	// Advance virtual time past the cooldown: probe allowed, succeeds.
	d.Clock().Add(6 * time.Millisecond)
	if err := d.TrySubmit(1, 0, func(int) {}); err != nil {
		t.Fatalf("post-cooldown probe failed: %v", err)
	}
	if d.State() != BreakerClosed {
		t.Errorf("state = %v, want closed", d.State())
	}
}

func TestResilientBackoffChargesVirtualClock(t *testing.T) {
	inner := newScripted(func(i int64) bool { return i < 2 })
	d := NewResilientDevice(inner,
		RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond, Multiplier: 2, Jitter: -1},
		BreakerConfig{Threshold: 100},
		1)
	if err := d.TrySubmit(0, 10, nil); err != nil {
		t.Fatal(err)
	}
	// Two retries: 1ms + 2ms backoff, plus the successful submission's
	// distance cost (10 * 0 with zero PerDistance in the scripted CPU).
	if got := d.Clock().Elapsed(); got != 3*time.Millisecond {
		t.Errorf("clock = %v, want 3ms of backoff", got)
	}
}

func TestResilientJitterDeterministic(t *testing.T) {
	run := func() time.Duration {
		inner := newScripted(func(i int64) bool { return i%2 == 0 })
		d := NewResilientDevice(inner, RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, Jitter: 0.5}, BreakerConfig{Threshold: 100}, 7)
		for k := 0; k < 5; k++ {
			d.TrySubmit(0, 1, nil)
		}
		return d.Clock().Elapsed()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("jittered backoff not reproducible: %v vs %v", a, b)
	}
	if a == 0 {
		t.Error("no backoff charged")
	}
}

func TestResilientSubmitPanicsTyped(t *testing.T) {
	inner := newScripted(func(int64) bool { return true })
	d := NewResilientDevice(inner, RetryPolicy{MaxAttempts: 2}, BreakerConfig{Threshold: 100}, 1)
	defer func() {
		r := recover()
		u, ok := r.(*Unavailable)
		if !ok {
			t.Fatalf("panic value %T, want *Unavailable", r)
		}
		if !errors.Is(u, ErrUnavailable) {
			t.Errorf("panic error %v should wrap ErrUnavailable", u)
		}
	}()
	d.Submit(1, 0, func(int) {})
}

func TestResilientResetBreaker(t *testing.T) {
	inner := newScripted(func(i int64) bool { return i < 100 })
	d := NewResilientDevice(inner, RetryPolicy{MaxAttempts: 1}, BreakerConfig{Threshold: 1, CooldownRejections: 1000, Cooldown: time.Hour}, 1)
	d.TrySubmit(1, 0, func(int) {})
	if d.State() != BreakerOpen {
		t.Fatal("breaker should be open")
	}
	d.ResetBreaker()
	if d.State() != BreakerClosed {
		t.Error("ResetBreaker should close the breaker")
	}
}

func TestResilientConcurrentSubmissions(t *testing.T) {
	// Concurrent retried submissions against the parallel accelerator:
	// exercised under -race by CI. Every submission must eventually
	// succeed (failure pattern leaves enough headroom per retry budget).
	accel := NewAccelerator(CostModel{PerExtract: time.Microsecond}, 4)
	var mu sync.Mutex
	n := int64(0)
	flaky := &concFlaky{inner: AsFallible(accel), mu: &mu, n: &n}
	d := NewResilientDevice(flaky, RetryPolicy{MaxAttempts: 4, Jitter: -1}, BreakerConfig{Threshold: 50}, 1)

	var wg sync.WaitGroup
	errs := make([]error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 20; k++ {
				out := make([]int, 8)
				if err := d.TrySubmit(8, 4, func(i int) { out[i] = i }); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Errorf("goroutine %d: %v", g, err)
		}
	}
	c := d.Counters()
	if c.Submissions != 16*20 {
		t.Errorf("submissions = %d, want %d", c.Submissions, 16*20)
	}
	if c.Failures == 0 {
		t.Error("flaky inner never failed; test exercised nothing")
	}
}

// concFlaky fails every third attempt; safe for concurrent use.
type concFlaky struct {
	inner Fallible
	mu    *sync.Mutex
	n     *int64
}

func (f *concFlaky) Name() string       { return "concflaky" }
func (f *concFlaky) Clock() *Clock      { return f.inner.Clock() }
func (f *concFlaky) Submissions() int64 { f.mu.Lock(); defer f.mu.Unlock(); return *f.n }
func (f *concFlaky) Submit(nE, nD int, run func(i int)) {
	if err := f.TrySubmit(nE, nD, run); err != nil {
		panic(&Unavailable{Err: err})
	}
}
func (f *concFlaky) TrySubmit(nE, nD int, run func(i int)) error {
	f.mu.Lock()
	i := *f.n
	*f.n++
	f.mu.Unlock()
	if i%3 == 2 {
		return errScripted
	}
	return f.inner.TrySubmit(nE, nD, run)
}
