// Package device models the compute substrate the ReID oracle runs on.
//
// The paper evaluates every algorithm on a CPU and, for the "-B" variants,
// on a GPU that processes batches of track pairs jointly (§IV-F). This
// repository has no GPU, so devices combine two things:
//
//  1. real execution of the submitted work (the ReID MLP forward passes),
//     in parallel for the accelerator; and
//  2. a virtual clock that charges a calibrated cost model — a fixed
//     launch cost per submission plus per-item costs.
//
// The experiment harness computes FPS from the virtual clock, which makes
// the batching asymmetry the paper reports reproducible and deterministic:
// batchable algorithms amortise the launch cost over many items, while
// LCB-B, whose iterations are sequentially dependent, pays it per
// iteration.
package device

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// CostModel is the virtual cost charged per submission.
type CostModel struct {
	// Launch is charged once per submission (kernel-launch / transfer
	// overhead on an accelerator; zero on the CPU).
	Launch time.Duration
	// PerExtract is charged for each feature extraction in a submission.
	PerExtract time.Duration
	// PerDistance is charged for each pairwise distance computation.
	PerDistance time.Duration
}

// DefaultCPU is calibrated so that an exhaustive baseline over a
// MOT-17-scale window (≈15k boxes, ≈10M BBox pairs) costs minutes, as the
// paper reports (§I), with distance computations dominating — the regime
// in which sampling algorithms win by orders of magnitude.
var DefaultCPU = CostModel{Launch: 0, PerExtract: 300 * time.Microsecond, PerDistance: 15 * time.Microsecond}

// DefaultAccelerator is calibrated to the relative GPU gains of Table II:
// ~20x per-item speedups, but a fixed launch cost that only batch-friendly
// algorithms amortise (LCB-B pays it every iteration).
var DefaultAccelerator = CostModel{Launch: 100 * time.Microsecond, PerExtract: 15 * time.Microsecond, PerDistance: 750 * time.Nanosecond}

// Clock accumulates virtual time. It is safe for concurrent use.
type Clock struct {
	mu      sync.Mutex
	elapsed time.Duration
}

// Add charges d to the clock.
func (c *Clock) Add(d time.Duration) {
	c.mu.Lock()
	c.elapsed += d
	c.mu.Unlock()
}

// Elapsed returns the accumulated virtual time.
func (c *Clock) Elapsed() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.elapsed
}

// Reset zeroes the clock.
func (c *Clock) Reset() {
	c.mu.Lock()
	c.elapsed = 0
	c.mu.Unlock()
}

// SetElapsed overwrites the accumulated virtual time — used when
// restoring a checkpointed session so replayed work is charged against
// the same clock reading the interrupted run had.
func (c *Clock) SetElapsed(d time.Duration) {
	c.mu.Lock()
	c.elapsed = d
	c.mu.Unlock()
}

// Device executes submissions of ReID work and charges their virtual cost.
type Device interface {
	// Name identifies the device in reports ("cpu", "accel").
	Name() string
	// Submit executes one submission consisting of nExtract feature
	// extractions and nDistance distance computations. run(i) performs
	// the i-th extraction (0 <= i < nExtract); the distance computations
	// themselves are executed by the caller (they are trivial vector
	// ops) and only their cost is charged here. run may be nil when
	// nExtract is 0.
	Submit(nExtract, nDistance int, run func(i int))
	// Clock returns the device's virtual clock.
	Clock() *Clock
	// Submissions returns how many submissions have been made.
	Submissions() int64
}

// cpu executes submissions serially with no launch cost.
type cpu struct {
	model CostModel
	clock Clock
	// subs is atomic: concurrent oracle callers submit without holding
	// any shared lock.
	subs atomic.Int64
}

// NewCPU returns a serial device with the given cost model.
func NewCPU(model CostModel) Device { return &cpu{model: model} }

func (d *cpu) Name() string { return "cpu" }

func (d *cpu) Submit(nExtract, nDistance int, run func(i int)) {
	validateSubmission(nExtract, nDistance, run)
	for i := 0; i < nExtract; i++ {
		run(i)
	}
	d.clock.Add(d.model.Launch +
		time.Duration(nExtract)*d.model.PerExtract +
		time.Duration(nDistance)*d.model.PerDistance)
	d.subs.Add(1)
}

func (d *cpu) Clock() *Clock      { return &d.clock }
func (d *cpu) Submissions() int64 { return d.subs.Load() }

// accelerator executes extraction items across a worker pool and charges a
// launch cost per submission.
type accelerator struct {
	model   CostModel
	workers int
	clock   Clock
	// subs is atomic: concurrent oracle callers submit without holding
	// any shared lock.
	subs atomic.Int64
}

// NewAccelerator returns a batch device executing submissions with the
// given parallelism (0 means GOMAXPROCS).
func NewAccelerator(model CostModel, workers int) Device {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &accelerator{model: model, workers: workers}
}

func (d *accelerator) Name() string { return "accel" }

func (d *accelerator) Submit(nExtract, nDistance int, run func(i int)) {
	validateSubmission(nExtract, nDistance, run)
	if nExtract > 0 {
		w := d.workers
		if w > nExtract {
			w = nExtract
		}
		var wg sync.WaitGroup
		chunk := (nExtract + w - 1) / w
		for start := 0; start < nExtract; start += chunk {
			end := start + chunk
			if end > nExtract {
				end = nExtract
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					run(i)
				}
			}(start, end)
		}
		wg.Wait()
	}
	d.clock.Add(d.model.Launch +
		time.Duration(nExtract)*d.model.PerExtract +
		time.Duration(nDistance)*d.model.PerDistance)
	d.subs.Add(1)
}

func (d *accelerator) Clock() *Clock      { return &d.clock }
func (d *accelerator) Submissions() int64 { return d.subs.Load() }

func validateSubmission(nExtract, nDistance int, run func(i int)) {
	if nExtract < 0 || nDistance < 0 {
		panic(fmt.Sprintf("device: negative submission sizes (%d, %d)", nExtract, nDistance))
	}
	if nExtract > 0 && run == nil {
		panic("device: nil run function with nonzero extractions")
	}
}
