package device

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestCPUExecutesSerially(t *testing.T) {
	d := NewCPU(CostModel{PerExtract: time.Millisecond})
	var order []int
	d.Submit(5, 0, func(i int) { order = append(order, i) })
	if len(order) != 5 {
		t.Fatalf("ran %d items", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Errorf("order[%d] = %d", i, v)
		}
	}
}

func TestCPUCostAccounting(t *testing.T) {
	m := CostModel{Launch: 10 * time.Millisecond, PerExtract: time.Millisecond, PerDistance: time.Microsecond}
	d := NewCPU(m)
	d.Submit(3, 100, func(i int) {})
	want := 10*time.Millisecond + 3*time.Millisecond + 100*time.Microsecond
	if got := d.Clock().Elapsed(); got != want {
		t.Errorf("elapsed = %v, want %v", got, want)
	}
	if d.Submissions() != 1 {
		t.Errorf("submissions = %d", d.Submissions())
	}
	d.Submit(0, 0, nil)
	if got := d.Clock().Elapsed(); got != want+10*time.Millisecond {
		t.Errorf("second submission elapsed = %v", got)
	}
}

func TestAcceleratorRunsAllItems(t *testing.T) {
	d := NewAccelerator(DefaultAccelerator, 4)
	var count int64
	hit := make([]int64, 100)
	d.Submit(100, 0, func(i int) {
		atomic.AddInt64(&count, 1)
		atomic.AddInt64(&hit[i], 1)
	})
	if count != 100 {
		t.Errorf("ran %d items", count)
	}
	for i, h := range hit {
		if h != 1 {
			t.Errorf("item %d ran %d times", i, h)
		}
	}
}

func TestAcceleratorLaunchCostPerSubmission(t *testing.T) {
	m := CostModel{Launch: time.Millisecond, PerExtract: time.Microsecond}
	d := NewAccelerator(m, 2)
	// 10 submissions of 1 item each vs 1 submission of 10 items.
	for i := 0; i < 10; i++ {
		d.Submit(1, 0, func(int) {})
	}
	many := d.Clock().Elapsed()

	d2 := NewAccelerator(m, 2)
	d2.Submit(10, 0, func(int) {})
	one := d2.Clock().Elapsed()

	if many <= one {
		t.Errorf("batching must be cheaper: unbatched %v, batched %v", many, one)
	}
	wantMany := 10*time.Millisecond + 10*time.Microsecond
	if many != wantMany {
		t.Errorf("unbatched = %v, want %v", many, wantMany)
	}
}

func TestClockConcurrency(t *testing.T) {
	var c Clock
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 1000; j++ {
				c.Add(time.Nanosecond)
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if got := c.Elapsed(); got != 8000*time.Nanosecond {
		t.Errorf("elapsed = %v", got)
	}
	c.Reset()
	if c.Elapsed() != 0 {
		t.Error("reset failed")
	}
}

func TestSubmitValidation(t *testing.T) {
	d := NewCPU(CostModel{})
	for _, f := range []func(){
		func() { d.Submit(-1, 0, func(int) {}) },
		func() { d.Submit(0, -1, nil) },
		func() { d.Submit(3, 0, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestDefaultCostModelsBatchAsymmetry(t *testing.T) {
	// The central calibration property: the accelerator is much cheaper
	// per item, but its launch cost means per-item submissions lose most
	// of the advantage — the asymmetry behind Table II.
	perItemCPU := DefaultCPU.PerExtract
	perItemAcc := DefaultAccelerator.PerExtract
	if perItemAcc*10 > perItemCPU {
		t.Error("accelerator per-item cost should be >10x cheaper than CPU")
	}
	if DefaultAccelerator.Launch < 5*perItemAcc {
		t.Error("launch cost should dominate single-item submissions")
	}
	if DefaultCPU.Launch != 0 {
		t.Error("CPU has no launch cost")
	}
}

func TestNames(t *testing.T) {
	if NewCPU(DefaultCPU).Name() != "cpu" {
		t.Error("cpu name")
	}
	if NewAccelerator(DefaultAccelerator, 0).Name() != "accel" {
		t.Error("accel name")
	}
}
