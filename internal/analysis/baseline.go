package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Baseline is the committed findings-count ratchet (VET_baseline.json):
// CI fails if any per-check count rises above it, so new findings cannot
// land even while pre-existing ones are being worked off. The tree is
// currently at zero everywhere; the ratchet keeps it there.
type Baseline struct {
	Version int            `json:"version"`
	Total   int            `json:"total"`
	Counts  map[string]int `json:"counts"`
}

// baselineVersion is the current Baseline schema version.
const baselineVersion = 1

// BaselineOf summarises findings into per-check counts.
func BaselineOf(fs []Finding) Baseline {
	b := Baseline{Version: baselineVersion, Total: len(fs), Counts: make(map[string]int)}
	for _, f := range fs {
		b.Counts[f.Check]++
	}
	return b
}

// WriteBaseline writes the baseline as indented JSON. encoding/json
// sorts map keys, so the output is byte-stable for a given count set.
func WriteBaseline(w io.Writer, b Baseline) error {
	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	_, err = w.Write(out)
	return err
}

// ReadBaseline decodes a baseline written by WriteBaseline.
func ReadBaseline(r io.Reader) (Baseline, error) {
	var b Baseline
	dec := json.NewDecoder(r)
	if err := dec.Decode(&b); err != nil {
		return Baseline{}, fmt.Errorf("analysis: bad baseline: %w", err)
	}
	if b.Version != baselineVersion {
		return Baseline{}, fmt.Errorf("analysis: baseline version %d, tool expects %d — regenerate with -write-baseline", b.Version, baselineVersion)
	}
	if b.Counts == nil {
		b.Counts = make(map[string]int)
	}
	return b, nil
}

// CompareBaseline reports one line per check whose current count exceeds
// the baseline — the ratchet only tightens: counts may fall (commit the
// lower baseline), never rise.
func CompareBaseline(base, cur Baseline) []string {
	var keys []string
	for k := range cur.Counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var regressions []string
	for _, k := range keys {
		if cur.Counts[k] > base.Counts[k] {
			regressions = append(regressions,
				fmt.Sprintf("%s: %d findings, baseline allows %d", k, cur.Counts[k], base.Counts[k]))
		}
	}
	return regressions
}
