package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// callee resolves a call expression to the *types.Func it invokes, or nil
// for builtins, conversions, and calls through function-typed values.
// Generic instantiations (f[T](...) parses as an index expression) are
// unwrapped to the underlying function.
func (p *Package) callee(call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(ix.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(ix.X)
	}
	var id *ast.Ident
	switch fun := fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	return fn
}

// isBuiltinAppend reports whether the call is the predeclared append.
func (p *Package) isBuiltinAppend(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := p.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// render prints an expression back to source text, the key used to match
// an append target against a later sort call on the same expression.
func (p *Package) render(e ast.Expr) string {
	var buf bytes.Buffer
	_ = printer.Fprint(&buf, p.Fset, e)
	return buf.String()
}

// enclosingFuncBody returns the body of the smallest function declaration
// or literal in file that contains pos.
func enclosingFuncBody(file *ast.File, pos token.Pos) *ast.BlockStmt {
	var best *ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if n.Pos() > pos || n.End() <= pos {
			// Nodes not containing pos can still have siblings that do.
			return n.Pos() <= pos
		}
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil && fn.Body.Pos() <= pos && pos < fn.Body.End() {
				best = fn.Body
			}
		case *ast.FuncLit:
			if fn.Body.Pos() <= pos && pos < fn.Body.End() {
				best = fn.Body
			}
		}
		return true
	})
	return best
}

// objectOf resolves an identifier to its object via Defs or Uses.
func (p *Package) objectOf(id *ast.Ident) types.Object {
	if obj := p.Info.Defs[id]; obj != nil {
		return obj
	}
	return p.Info.Uses[id]
}
