package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// CheckLockDiscipline flags blocking device I/O performed while a mutex
// is held. Device Submit/TrySubmit block on modeled transfer and compute
// latency (and, for resilient devices, on retry backoff), so holding a
// lock across them serialises every concurrent caller behind one
// submission. The checker walks each function body in source order,
// tracking which sync.Mutex/RWMutex receivers are locked, and reports
// any call that is "submit-ish" — directly a Submit/TrySubmit method, or
// a package-local function that transitively performs one — while a
// mutex is held.
func CheckLockDiscipline(p *Package) []Finding {
	submitish := p.submitishFuncs()
	var fs []Finding
	p.inspectFunctions(func(decl *ast.FuncDecl, body *ast.BlockStmt) {
		fs = append(fs, p.scanLocks(body, submitish)...)
	})
	return fs
}

// mutexMethod resolves a call to a sync.Mutex/RWMutex method and returns
// the rendered receiver expression (e.g. "o.mu") and the method name, or
// "" if the call is not a mutex operation.
func (p *Package) mutexMethod(call *ast.CallExpr) (recv, method string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
		return p.render(sel.X), fn.Name()
	}
	return "", ""
}

// isSubmitCall reports whether the call performs device submission:
// either a method literally named Submit/TrySubmit, or a package-local
// function in the transitive submit-ish set.
func (p *Package) isSubmitCall(call *ast.CallExpr, submitish map[*types.Func]bool) (string, bool) {
	fn := p.callee(call)
	if fn == nil {
		return "", false
	}
	if name := fn.Name(); name == "Submit" || name == "TrySubmit" {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return name, true
		}
	}
	if submitish[fn] {
		return fn.Name(), true
	}
	return "", false
}

// submitishFuncs computes the fixed point of package-local functions that
// directly or transitively call a Submit/TrySubmit method. Function
// literals are excluded: work captured in a closure runs when the
// closure runs, which the intra-procedural scan cannot place.
func (p *Package) submitishFuncs() map[*types.Func]bool {
	type fnBody struct {
		fn   *types.Func
		body *ast.BlockStmt
	}
	var local []fnBody
	for _, file := range p.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				local = append(local, fnBody{fn, fd.Body})
			}
		}
	}
	submitish := make(map[*types.Func]bool)
	for changed := true; changed; {
		changed = false
		for _, fb := range local {
			if submitish[fb.fn] {
				continue
			}
			found := false
			ast.Inspect(fb.body, func(n ast.Node) bool {
				if found {
					return false
				}
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok {
					if _, ok := p.isSubmitCall(call, submitish); ok {
						found = true
					}
				}
				return true
			})
			if found {
				submitish[fb.fn] = true
				changed = true
			}
		}
	}
	return submitish
}

// scanLocks walks one function body in source order, maintaining the set
// of held mutexes, and reports submit-ish calls made while any is held.
// Deferred Unlocks keep the mutex held for the rest of the body. The
// scan is a linear over-approximation: it does not model branches, so a
// Lock in one arm of an if is treated as held afterwards — acceptable
// for this codebase, where lock regions are straight-line.
func (p *Package) scanLocks(body *ast.BlockStmt, submitish map[*types.Func]bool) []Finding {
	held := make(map[string]bool)     // receiver render -> locked
	deferred := make(map[string]bool) // receiver render -> unlock deferred
	var fs []Finding
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // closures run later, under their own discipline
		case *ast.DeferStmt:
			if recv, method := p.mutexMethod(n.Call); method == "Unlock" || method == "RUnlock" {
				deferred[recv] = true
			}
			return false // the deferred call itself runs at return
		case *ast.CallExpr:
			if recv, method := p.mutexMethod(n); method != "" {
				switch method {
				case "Lock", "RLock", "TryLock", "TryRLock":
					held[recv] = true
				case "Unlock", "RUnlock":
					if !deferred[recv] {
						delete(held, recv)
					}
				}
				return true
			}
			if name, ok := p.isSubmitCall(n, submitish); ok && len(held) > 0 {
				fs = append(fs, p.finding(n.Pos(), CheckLockName,
					"%s called while %s is held; device submission blocks on modeled latency — plan under the lock, submit outside it",
					name, heldList(held)))
			}
		}
		return true
	})
	return fs
}

// heldList renders the held-mutex set deterministically for the message.
func heldList(held map[string]bool) string {
	names := make([]string, 0, len(held))
	for n := range held {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
