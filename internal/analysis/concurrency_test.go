package analysis

import (
	"go/ast"
	"strings"
	"testing"
)

func TestCheckGoroutineLifecycleGolden(t *testing.T) {
	p := loadTestdata(t, "goroutine")
	rel := "testdata/src/goroutine/goroutine.go"
	checkGolden(t, rel, CheckGoroutineLifecycle(p), wantedLines(t, rel))
}

func TestCheckContextDisciplineGolden(t *testing.T) {
	p := loadTestdata(t, "ctxdisc")
	rel := "testdata/src/ctxdisc/ctxdisc.go"
	checkGolden(t, rel, CheckContextDiscipline(p), wantedLines(t, rel))
}

func TestCheckChannelHygieneGolden(t *testing.T) {
	p := loadTestdata(t, "chanhyg")
	rel := "testdata/src/chanhyg/chanhyg.go"
	checkGolden(t, rel, CheckChannelHygiene(p), wantedLines(t, rel))
}

func TestCheckHTTPHygieneGolden(t *testing.T) {
	p := loadTestdata(t, "httphyg")
	rel := "testdata/src/httphyg/httphyg.go"
	checkGolden(t, rel, CheckHTTPHygiene(p), wantedLines(t, rel))
}

// funcFindings counts the findings that land inside the named top-level
// function or method of the package's single file.
func funcFindings(t *testing.T, p *Package, fs []Finding, name string) int {
	t.Helper()
	for _, file := range p.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name.Name != name {
				continue
			}
			start := p.Position(fd.Pos()).Line
			end := p.Position(fd.End()).Line
			n := 0
			for _, f := range fs {
				if f.Line >= start && f.Line <= end {
					n++
				}
			}
			return n
		}
	}
	t.Fatalf("function %s not found in %s", name, p.ImportPath)
	return 0
}

// TestGoroutineLifecycleEdges pins the checker's behavior on the shapes
// that trip naive goroutine analyses: generic instantiations, method
// values, closures, and cross-function recursion.
func TestGoroutineLifecycleEdges(t *testing.T) {
	p := loadTestdata(t, "goroutine")
	fs := CheckGoroutineLifecycle(p)
	for _, tc := range []struct {
		fn   string
		want int
	}{
		{"SpawnGeneric", 0},     // go drain[int](c): index expr unwrapped, body followed
		{"SpawnGenericLeak", 1}, // go spin[int](0): followed and still tieless
		{"SpawnMethod", 0},      // go w.run(): method body followed
		{"SpawnMethodValue", 1}, // bound method value: unprovable
		{"SpawnWithCtxArg", 0},  // ctx argument ties an opaque function value
		{"FireRecursive", 1},    // visited set terminates on recursion
		{"FireUnbufferedSend", 1},
		{"SpawnBufferedSignal", 0},
	} {
		if got := funcFindings(t, p, fs, tc.fn); got != tc.want {
			t.Errorf("%s: %d findings, want %d", tc.fn, got, tc.want)
		}
	}
}

// TestContextDisciplineEdges pins loop attribution and literal-signature
// scoping.
func TestContextDisciplineEdges(t *testing.T) {
	p := loadTestdata(t, "ctxdisc")
	fs := CheckContextDiscipline(p)
	for _, tc := range []struct {
		fn   string
		want int
	}{
		{"NestedLoops", 1},   // channel op belongs to the inner loop only
		{"SpawnsWorker", 0},  // returned literal takes no ctx: out of scope
		{"PumpGuarded", 0},   // select on ctx.Done covers the loop
		{"ShedWhenFull", 0},  // default arm is an escape too
		{"DialBounded", 0},   // (net.Dialer).Dial is exempt
		{"SleepNoCtx", 0},    // no ctx parameter, no discipline to enforce
		{"PumpUnguarded", 1}, // range loop with naked send
	} {
		if got := funcFindings(t, p, fs, tc.fn); got != tc.want {
			t.Errorf("%s: %d findings, want %d", tc.fn, got, tc.want)
		}
	}
}

// TestChannelHygieneEdges pins ownership and buffering analysis:
// defer-in-loop over loop-variant channels, struct-field and
// per-element buffering.
func TestChannelHygieneEdges(t *testing.T) {
	p := loadTestdata(t, "chanhyg")
	fs := CheckChannelHygiene(p)
	for _, tc := range []struct {
		fn   string
		want int
	}{
		{"CloseEach", 0},    // defer close(ch) over loop-variant channels: one site each
		{"acquire", 0},      // field channel buffered at its struct-literal make
		{"PerElem", 0},      // per-element makes all buffered
		{"SingleOwner", 0},  // one make, one close
		{"CloseParam", 1},   // callee closing a parameter channel
		{"closeEarly", 1},   // two close sites on one package channel...
		{"closeLate", 1},    // ...both reported
		{"BufferedSend", 0}, // send on a provably buffered channel
	} {
		if got := funcFindings(t, p, fs, tc.fn); got != tc.want {
			t.Errorf("%s: %d findings, want %d", tc.fn, got, tc.want)
		}
	}
}

// TestHTTPHygieneEdges pins the method/package-level split and the
// handler-shape gate.
func TestHTTPHygieneEdges(t *testing.T) {
	p := loadTestdata(t, "httphyg")
	fs := CheckHTTPHygiene(p)
	for _, tc := range []struct {
		fn   string
		want int
	}{
		{"ViaClient", 0},         // client method rides its Timeout
		{"NotAHandler", 0},       // wrong shape: body reads not judged
		{"CloseOnlyHandler", 0},  // Body.Close alone is not a read
		{"BoundedHandler", 0},    // MaxBytesReader bounds the body
		{"ReadBoundedServer", 0}, // ReadTimeout alone satisfies the server rule
		{"Routes", 1},            // only the unbounded literal inside is flagged
		{"Banned", 3},            // each convenience call reported
	} {
		if got := funcFindings(t, p, fs, tc.fn); got != tc.want {
			t.Errorf("%s: %d findings, want %d", tc.fn, got, tc.want)
		}
	}
}

// TestVetTree runs the full suite over the whole module from its root —
// the same invocation CI ratchets — and requires a clean tree. Every
// fix PR 8 made (ctx threading, server/client timeouts, single-owner
// closes) is pinned by this test.
func TestVetTree(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the entire module; skipped with -short")
	}
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	fs := Run(pkgs)
	for _, f := range fs {
		t.Errorf("tree finding: %v", f)
	}
	if len(fs) == 0 && testing.Verbose() {
		t.Logf("tree clean across %d packages", len(pkgs))
	}
}

// TestGoroutineFindingMentionsWhy pins that the finding explains what
// the checker could not prove, not just that it failed.
func TestGoroutineFindingMentionsWhy(t *testing.T) {
	p := loadTestdata(t, "goroutine")
	sawValue, sawExternal := false, false
	for _, f := range CheckGoroutineLifecycle(p) {
		if strings.Contains(f.Message, "function value") {
			sawValue = true
		}
		if strings.Contains(f.Message, "outside the package") {
			sawExternal = true
		}
	}
	if !sawValue || !sawExternal {
		t.Errorf("findings should explain unprovable spawns (value=%v external=%v)", sawValue, sawExternal)
	}
}
