// Package analysis is tmergevet's engine: a project-specific static
// analyzer built purely on the standard library's go/parser, go/ast, and
// go/types (the module is dependency-free and must stay that way).
//
// It enforces the invariants that PR 2's bit-identical checkpoint/replay
// guarantee turned from style preferences into correctness requirements:
//
//   - determinism: no wall-clock reads or globally-seeded randomness in
//     replayed code, and no map-iteration order leaking into emitted
//     results (see CheckDeterminism);
//   - lock-discipline: no blocking device I/O (Submit/TrySubmit) while a
//     mutex is held (see CheckLockDiscipline);
//   - error-hygiene: no silently dropped errors from checkpoint
//     Seal/Open, write-path Close, or the Try* contract (see
//     CheckErrorHygiene);
//   - api-doc: every exported identifier of the root tmerge package is
//     documented (see CheckAPIDoc).
//
// A finding can be suppressed in place with a directive comment
//
//	//tmerge:allow <check-name> <reason>
//
// on the flagged line or the line above it. The reason is mandatory and
// the check name must exist; a malformed directive is itself reported as
// a finding (check name "allow") and suppresses nothing.
package analysis

import (
	"bufio"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"sort"
	"strings"
)

// Check names, in the order checkers run. These are the names findings
// carry, the names //tmerge:allow directives must use, and the catalog
// DESIGN.md §9 documents.
const (
	CheckDeterminismName   = "determinism"
	CheckLockName          = "lock-discipline"
	CheckErrorHygieneName  = "error-hygiene"
	CheckAPIDocName        = "api-doc"
	checkAllowName         = "allow" // malformed-directive findings; not suppressible
	allowDirectivePrefix   = "//tmerge:allow"
	allowDirectiveSpelling = "//tmerge:allow <check-name> <reason>"
)

// KnownChecks lists every valid check name for //tmerge:allow directives.
var KnownChecks = []string{
	CheckDeterminismName,
	CheckLockName,
	CheckErrorHygieneName,
	CheckAPIDocName,
}

// Finding is one rule violation at one source position.
type Finding struct {
	File    string `json:"file"` // module-relative path
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// String renders the finding in the tool's line format:
// file:line: [check-name] message.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Check, f.Message)
}

// sortFindings orders findings by file, line, column, then check name.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
}

// WriteText writes findings one per line in the file:line: [check] message
// format.
func WriteText(w io.Writer, fs []Finding) error {
	for _, f := range fs {
		if _, err := fmt.Fprintln(w, f.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes findings as line-delimited JSON, one object per line —
// the -json output mode consumed by CI annotation tooling.
func WriteJSON(w io.Writer, fs []Finding) error {
	enc := json.NewEncoder(w)
	for _, f := range fs {
		if err := enc.Encode(f); err != nil {
			return err
		}
	}
	return nil
}

// DecodeJSON reads findings written by WriteJSON (one JSON object per
// line; blank lines are skipped).
func DecodeJSON(r io.Reader) ([]Finding, error) {
	var out []Finding
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var f Finding
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			return nil, fmt.Errorf("analysis: bad finding line %q: %w", line, err)
		}
		out = append(out, f)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Run executes every checker over every package, applies //tmerge:allow
// suppressions, reports malformed directives, and returns the surviving
// findings sorted by position. CheckAPIDoc runs only on the module's root
// package (where the public surface lives).
func Run(pkgs []*Package) []Finding {
	var all []Finding
	for _, p := range pkgs {
		var fs []Finding
		fs = append(fs, CheckDeterminism(p)...)
		fs = append(fs, CheckLockDiscipline(p)...)
		fs = append(fs, CheckErrorHygiene(p)...)
		if p.IsModuleRoot() {
			fs = append(fs, CheckAPIDoc(p)...)
		}
		allowed, malformed := p.directives()
		fs = filterAllowed(fs, allowed)
		fs = append(fs, malformed...)
		all = append(all, fs...)
	}
	sortFindings(all)
	return all
}

// directiveKey identifies one suppressible (file, line, check) site.
type directiveKey struct {
	file  string
	line  int
	check string
}

// directives scans the package's comments for //tmerge:allow directives.
// It returns the set of valid suppressions and a finding for every
// malformed directive (missing reason, unknown check name).
func (p *Package) directives() (map[directiveKey]bool, []Finding) {
	allowed := make(map[directiveKey]bool)
	var malformed []Finding
	known := make(map[string]bool, len(KnownChecks))
	for _, c := range KnownChecks {
		known[c] = true
	}
	for _, file := range p.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowDirectivePrefix) {
					continue
				}
				pos := p.Position(c.Slash)
				rest := strings.TrimPrefix(c.Text, allowDirectivePrefix)
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					malformed = append(malformed, Finding{
						File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Check:   checkAllowName,
						Message: fmt.Sprintf("directive names no check: want %s", allowDirectiveSpelling),
					})
				case !known[fields[0]]:
					malformed = append(malformed, Finding{
						File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Check: checkAllowName,
						Message: fmt.Sprintf("directive names unknown check %q (known: %s)",
							fields[0], strings.Join(KnownChecks, ", ")),
					})
				case len(fields) == 1:
					malformed = append(malformed, Finding{
						File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Check:   checkAllowName,
						Message: fmt.Sprintf("directive for %q gives no reason: a suppression must say why the invariant holds anyway", fields[0]),
					})
				default:
					allowed[directiveKey{pos.Filename, pos.Line, fields[0]}] = true
				}
			}
		}
	}
	return allowed, malformed
}

// filterAllowed drops findings covered by a valid directive on the same
// line or the line directly above.
func filterAllowed(fs []Finding, allowed map[directiveKey]bool) []Finding {
	if len(allowed) == 0 {
		return fs
	}
	out := fs[:0]
	for _, f := range fs {
		if allowed[directiveKey{f.File, f.Line, f.Check}] ||
			allowed[directiveKey{f.File, f.Line - 1, f.Check}] {
			continue
		}
		out = append(out, f)
	}
	return out
}

// finding builds a Finding at a node's position.
func (p *Package) finding(pos token.Pos, check, format string, args ...any) Finding {
	ps := p.Position(pos)
	return Finding{
		File: ps.Filename, Line: ps.Line, Col: ps.Column,
		Check: check, Message: fmt.Sprintf(format, args...),
	}
}

// inspectFunctions applies fn to every function body in the package —
// top-level declarations and, through ast.Inspect, the function literals
// nested inside them. decl is the enclosing declaration (for receiver
// context); it is the same *ast.FuncDecl for a literal nested within one.
func (p *Package) inspectFunctions(fn func(decl *ast.FuncDecl, body *ast.BlockStmt)) {
	for _, file := range p.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn(fd, fd.Body)
		}
	}
}
