// Package analysis is tmergevet's engine: a project-specific static
// analyzer built purely on the standard library's go/parser, go/ast, and
// go/types (the module is dependency-free and must stay that way).
//
// It enforces the invariants that PR 2's bit-identical checkpoint/replay
// guarantee turned from style preferences into correctness requirements:
//
//   - determinism: no wall-clock reads or globally-seeded randomness in
//     replayed code, and no map-iteration order leaking into emitted
//     results (see CheckDeterminism);
//   - lock-discipline: no blocking device I/O (Submit/TrySubmit) while a
//     mutex is held (see CheckLockDiscipline);
//   - error-hygiene: no silently dropped errors from checkpoint
//     Seal/Open, write-path Close, or the Try* contract (see
//     CheckErrorHygiene);
//   - api-doc: every exported identifier of the root tmerge package is
//     documented (see CheckAPIDoc).
//
// PR 8 added the concurrency-safety suite, mechanizing the DESIGN.md
// §§10–13 serving/ingress invariants:
//
//   - goroutine-lifecycle: every go statement must have a provable
//     shutdown tie — context, done channel, WaitGroup, or bounded work
//     (see CheckGoroutineLifecycle);
//   - context-discipline: ctx-taking functions must thread their ctx to
//     blocking work; no context.Background()/TODO() outside main (see
//     CheckContextDiscipline);
//   - channel-hygiene: unbuffered sends need a select escape arm, close
//     only by the owning side, one close site per channel (see
//     CheckChannelHygiene);
//   - http-hygiene: servers/clients carry timeouts, handlers bound
//     request bodies (see CheckHTTPHygiene).
//
// A finding can be suppressed in place with a directive comment
//
//	//tmerge:allow <check-name> <reason>
//
// on the flagged line or the line above it. The reason is mandatory and
// the check name must exist; a malformed directive is itself reported as
// a finding (check name "allow") and suppresses nothing.
package analysis

import (
	"bufio"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"sort"
	"strings"
)

// Check names, in the order checkers run. These are the names findings
// carry, the names //tmerge:allow directives must use, and the catalog
// DESIGN.md §9 documents.
const (
	CheckDeterminismName        = "determinism"
	CheckLockName               = "lock-discipline"
	CheckErrorHygieneName       = "error-hygiene"
	CheckAPIDocName             = "api-doc"
	CheckGoroutineLifecycleName = "goroutine-lifecycle"
	CheckContextDisciplineName  = "context-discipline"
	CheckChannelHygieneName     = "channel-hygiene"
	CheckHTTPHygieneName        = "http-hygiene"
	checkAllowName              = "allow" // directive findings (malformed/unused); not suppressible
	allowDirectivePrefix        = "//tmerge:allow"
	allowDirectiveSpelling      = "//tmerge:allow <check-name> <reason>"
)

// KnownChecks lists every valid check name for //tmerge:allow directives.
var KnownChecks = []string{
	CheckDeterminismName,
	CheckLockName,
	CheckErrorHygieneName,
	CheckAPIDocName,
	CheckGoroutineLifecycleName,
	CheckContextDisciplineName,
	CheckChannelHygieneName,
	CheckHTTPHygieneName,
}

// Finding is one rule violation at one source position.
type Finding struct {
	File    string `json:"file"` // module-relative path
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// String renders the finding in the tool's line format:
// file:line: [check-name] message.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Check, f.Message)
}

// sortFindings orders findings by file, line, column, then check name.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
}

// WriteText writes findings one per line in the file:line: [check] message
// format.
func WriteText(w io.Writer, fs []Finding) error {
	for _, f := range fs {
		if _, err := fmt.Fprintln(w, f.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes findings as line-delimited JSON, one object per line —
// the -json output mode consumed by CI annotation tooling.
func WriteJSON(w io.Writer, fs []Finding) error {
	enc := json.NewEncoder(w)
	for _, f := range fs {
		if err := enc.Encode(f); err != nil {
			return err
		}
	}
	return nil
}

// DecodeJSON reads findings written by WriteJSON (one JSON object per
// line; blank lines are skipped).
func DecodeJSON(r io.Reader) ([]Finding, error) {
	var out []Finding
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var f Finding
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			return nil, fmt.Errorf("analysis: bad finding line %q: %w", line, err)
		}
		out = append(out, f)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Run executes every checker over every package, applies //tmerge:allow
// suppressions, reports malformed and unused directives, and returns the
// surviving findings sorted by position. CheckAPIDoc runs only on the
// module's root package (where the public surface lives).
func Run(pkgs []*Package) []Finding {
	var all []Finding
	for _, p := range pkgs {
		var fs []Finding
		fs = append(fs, CheckDeterminism(p)...)
		fs = append(fs, CheckLockDiscipline(p)...)
		fs = append(fs, CheckErrorHygiene(p)...)
		fs = append(fs, CheckGoroutineLifecycle(p)...)
		fs = append(fs, CheckContextDiscipline(p)...)
		fs = append(fs, CheckChannelHygiene(p)...)
		fs = append(fs, CheckHTTPHygiene(p)...)
		if p.IsModuleRoot() {
			fs = append(fs, CheckAPIDoc(p)...)
		}
		allowed, malformed := p.directives()
		fs = filterAllowed(fs, allowed)
		fs = append(fs, malformed...)
		fs = append(fs, unusedDirectives(allowed)...)
		all = append(all, fs...)
	}
	sortFindings(all)
	return all
}

// directiveKey identifies one suppressible (file, line, check) site.
type directiveKey struct {
	file  string
	line  int
	check string
}

// directiveSite is one valid //tmerge:allow directive plus whether it
// suppressed anything this run. A directive that suppresses nothing is
// stale and is itself reported, so suppressions can't rot silently after
// the code they excused moves or gets fixed.
type directiveSite struct {
	col  int
	used bool
}

// directives scans the package's comments for //tmerge:allow directives.
// It returns the valid suppressions (keyed by file/line/check, tracking
// use) and a finding for every malformed directive (missing reason,
// unknown check name).
func (p *Package) directives() (map[directiveKey]*directiveSite, []Finding) {
	allowed := make(map[directiveKey]*directiveSite)
	var malformed []Finding
	known := make(map[string]bool, len(KnownChecks))
	for _, c := range KnownChecks {
		known[c] = true
	}
	for _, file := range p.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				d, ok, problem := parseAllowDirective(c.Text, func(name string) bool { return known[name] })
				if !ok && problem == "" {
					continue // not a directive at all
				}
				pos := p.Position(c.Slash)
				if !ok {
					malformed = append(malformed, Finding{
						File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Check:   checkAllowName,
						Message: problem,
					})
					continue
				}
				allowed[directiveKey{pos.Filename, pos.Line, d.Check}] = &directiveSite{col: pos.Column}
			}
		}
	}
	return allowed, malformed
}

// filterAllowed drops findings covered by a valid directive on the same
// line or the line directly above, marking each matched directive used.
func filterAllowed(fs []Finding, allowed map[directiveKey]*directiveSite) []Finding {
	if len(allowed) == 0 {
		return fs
	}
	out := fs[:0]
	for _, f := range fs {
		if d := allowed[directiveKey{f.File, f.Line, f.Check}]; d != nil {
			d.used = true
			continue
		}
		if d := allowed[directiveKey{f.File, f.Line - 1, f.Check}]; d != nil {
			d.used = true
			continue
		}
		out = append(out, f)
	}
	return out
}

// unusedDirectives reports every valid directive that suppressed nothing:
// either the violation it excused was fixed, or it was written against the
// wrong check. Stale suppressions must be removed so the audit trail of
// deliberate exceptions stays truthful.
func unusedDirectives(allowed map[directiveKey]*directiveSite) []Finding {
	var stale []directiveKey
	for k, d := range allowed {
		if !d.used {
			stale = append(stale, k)
		}
	}
	sort.Slice(stale, func(i, j int) bool {
		a, b := stale[i], stale[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		return a.check < b.check
	})
	var out []Finding
	for _, k := range stale {
		out = append(out, Finding{
			File: k.file, Line: k.line, Col: allowed[k].col,
			Check: checkAllowName,
			Message: fmt.Sprintf("directive suppresses nothing: no %q finding on this line or the line below — stale suppressions must be removed",
				k.check),
		})
	}
	return out
}

// finding builds a Finding at a node's position.
func (p *Package) finding(pos token.Pos, check, format string, args ...any) Finding {
	ps := p.Position(pos)
	return Finding{
		File: ps.Filename, Line: ps.Line, Col: ps.Column,
		Check: check, Message: fmt.Sprintf(format, args...),
	}
}

// inspectFunctions applies fn to every function body in the package —
// top-level declarations and, through ast.Inspect, the function literals
// nested inside them. decl is the enclosing declaration (for receiver
// context); it is the same *ast.FuncDecl for a literal nested within one.
func (p *Package) inspectFunctions(fn func(decl *ast.FuncDecl, body *ast.BlockStmt)) {
	for _, file := range p.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn(fd, fd.Body)
		}
	}
}
