package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CheckChannelHygiene enforces the backpressure and ownership idioms the
// serving layer relies on (DESIGN.md §§12–13):
//
//   - a send on a channel that is not provably buffered must sit in a
//     select with at least one other arm (cancel, done, or default shed)
//     — a naked unbuffered send is an unbounded block;
//   - a callee must never close a channel it received as a parameter:
//     channels are closed by their owning sender;
//   - a channel must have exactly one close site: multiple close sites
//     are one interleaving away from a double-close panic — funnel them
//     through a single owner (sync.Once if paths race).
func CheckChannelHygiene(p *Package) []Finding {
	facts := p.chanFacts()
	params := p.chanParams()
	var fs []Finding
	for _, file := range p.Files {
		guarded := p.guardedSends(file)
		ast.Inspect(file, func(n ast.Node) bool {
			send, ok := n.(*ast.SendStmt)
			if !ok {
				return true
			}
			if guarded[send] || facts.knownBuffered(send.Chan) {
				return true
			}
			fs = append(fs, p.finding(send.Pos(), CheckChannelHygieneName,
				"send on %s blocks unboundedly (channel not provably buffered); wrap it in a select with a cancel or shed arm", p.render(send.Chan)))
			return true
		})
	}
	fs = append(fs, p.closeFindings(params)...)
	return fs
}

// closeSite is one close(ch) call, keyed by the channel's object when the
// argument resolves to one.
type closeSite struct {
	obj  types.Object
	pos  token.Pos
	name string
}

// closeFindings reports closes of parameter channels and channels closed
// at more than one site. Sites are collected and re-walked in source
// order so emission is deterministic without sorting.
func (p *Package) closeFindings(params map[types.Object]bool) []Finding {
	var sites []closeSite
	var fs []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !p.isBuiltinClose(call) || len(call.Args) != 1 {
				return true
			}
			var obj types.Object
			switch arg := ast.Unparen(call.Args[0]).(type) {
			case *ast.Ident:
				obj = p.objectOf(arg)
			case *ast.SelectorExpr:
				obj = p.fieldObject(arg)
			}
			if obj == nil {
				return true
			}
			if params[obj] {
				fs = append(fs, p.finding(call.Pos(), CheckChannelHygieneName,
					"close of channel parameter %q: channels are closed by their owning sender, never by a callee", obj.Name()))
			}
			sites = append(sites, closeSite{obj: obj, pos: call.Pos(), name: obj.Name()})
			return true
		})
	}
	counts := make(map[types.Object]int, len(sites))
	for _, s := range sites {
		counts[s.obj]++
	}
	for _, s := range sites {
		if counts[s.obj] > 1 {
			fs = append(fs, p.finding(s.pos, CheckChannelHygieneName,
				"channel %q is closed at %d sites; a second close panics — funnel closes through one owner (sync.Once if paths race)",
				s.name, counts[s.obj]))
		}
	}
	return fs
}
