package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CheckContextDiscipline enforces that cancellation actually reaches the
// places that block (DESIGN.md §13's drain-to-checkpoint contract depends
// on it):
//
//   - context.Background()/context.TODO() are banned outside package main
//     — a library that mints its own root context detaches its blocking
//     work from the caller's deadline;
//   - net.Dial is banned everywhere — use a net.Dialer with a Timeout or
//     DialContext so a dead peer cannot hang the dialer forever;
//   - inside a function that takes a context.Context, a literal
//     time.Sleep ignores the ctx it was handed — select on a timer and
//     ctx.Done() instead;
//   - inside a function that takes a context.Context, a loop performing
//     channel operations must contain a select with an escape arm
//     (ctx.Done(), a done channel, or default) so cancellation can
//     interrupt every iteration.
//
// Nested function literals are judged by their own parameter lists: a
// closure that does not take the ctx is the spawn site's problem
// (goroutine-lifecycle), not this checker's.
func CheckContextDiscipline(p *Package) []Finding {
	var fs []Finding
	isMain := p.Types != nil && p.Types.Name() == "main"
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := p.callee(n)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				switch fn.Pkg().Path() {
				case "context":
					if !isMain && (fn.Name() == "Background" || fn.Name() == "TODO") {
						fs = append(fs, p.finding(n.Pos(), CheckContextDisciplineName,
							"context.%s mints a root context outside package main; accept and thread the caller's ctx instead", fn.Name()))
					}
				case "net":
					// Only the package-level net.Dial is deadline-less;
					// (net.Dialer).Dial rides its configured Timeout.
					if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
						return true
					}
					if fn.Name() == "Dial" {
						fs = append(fs, p.finding(n.Pos(), CheckContextDisciplineName,
							"net.Dial has no deadline; use a net.Dialer with Timeout or DialContext"))
					}
				}
			case *ast.FuncDecl:
				if n.Body != nil && p.takesContext(n.Type) {
					fs = append(fs, p.ctxBodyFindings(n.Body)...)
				}
			case *ast.FuncLit:
				if p.takesContext(n.Type) {
					fs = append(fs, p.ctxBodyFindings(n.Body)...)
				}
			}
			return true
		})
	}
	return fs
}

// ctxBodyFindings scans one ctx-taking function body, stopping at nested
// function literals (they are judged by their own signatures).
func (p *Package) ctxBodyFindings(body *ast.BlockStmt) []Finding {
	var fs []Finding
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if fn := p.callee(n); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "time" && fn.Name() == "Sleep" {
				fs = append(fs, p.finding(n.Pos(), CheckContextDisciplineName,
					"time.Sleep in a ctx-taking function ignores cancellation; select on a time.Timer and ctx.Done() instead"))
			}
		case *ast.ForStmt:
			if f := p.ctxLoopFinding(n, n.Body); f != nil {
				fs = append(fs, *f)
			}
		case *ast.RangeStmt:
			if f := p.ctxLoopFinding(n, n.Body); f != nil {
				fs = append(fs, *f)
			}
		}
		return true
	})
	return fs
}

// ctxLoopFinding flags a loop (inside a ctx-taking function) that
// performs channel operations without any multi-arm select: such a loop
// has no iteration-level escape path, so cancellation cannot interrupt
// it. Nested loops and function literals are judged separately — channel
// ops are attributed to their nearest enclosing loop.
func (p *Package) ctxLoopFinding(loop ast.Node, body *ast.BlockStmt) *Finding {
	hasChanOp := false
	hasSelect := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.ForStmt, *ast.RangeStmt:
			return false
		case *ast.SelectStmt:
			if len(n.Body.List) >= minSelectArms {
				hasSelect = true
			}
			return true
		case *ast.SendStmt:
			hasChanOp = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				hasChanOp = true
			}
		}
		return true
	})
	if !hasChanOp || hasSelect {
		return nil
	}
	f := p.finding(loop.Pos(), CheckContextDisciplineName,
		"loop in a ctx-taking function performs channel operations with no select escape arm; add a select on ctx.Done()")
	return &f
}
