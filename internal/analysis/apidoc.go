package analysis

import (
	"go/ast"
	"go/token"
)

// CheckAPIDoc requires a doc comment on every exported identifier of the
// package it runs on (the driver applies it to the module root only —
// the public tmerge surface). For grouped const/var/type declarations
// with more than one spec, each spec carrying an exported name needs its
// own doc comment or trailing line comment; a single-spec declaration
// may be documented on the declaration itself.
func CheckAPIDoc(p *Package) []Finding {
	var fs []Finding
	for _, file := range p.Files {
		for _, d := range file.Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && d.Doc == nil {
					kind := "function"
					if d.Recv != nil {
						kind = "method"
					}
					fs = append(fs, p.finding(d.Name.Pos(), CheckAPIDocName,
						"exported %s %s has no doc comment", kind, d.Name.Name))
				}
			case *ast.GenDecl:
				fs = append(fs, p.checkGenDecl(d)...)
			}
		}
	}
	return fs
}

// checkGenDecl enforces docs on the exported names of one const, var, or
// type declaration.
func (p *Package) checkGenDecl(d *ast.GenDecl) []Finding {
	if d.Tok != token.CONST && d.Tok != token.VAR && d.Tok != token.TYPE {
		return nil
	}
	var fs []Finding
	grouped := len(d.Specs) > 1
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			if s.Doc == nil && s.Comment == nil && (grouped || d.Doc == nil) {
				fs = append(fs, p.finding(s.Name.Pos(), CheckAPIDocName,
					"exported type %s has no doc comment", s.Name.Name))
			}
		case *ast.ValueSpec:
			documented := s.Doc != nil || s.Comment != nil || (!grouped && d.Doc != nil)
			if documented {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					fs = append(fs, p.finding(name.Pos(), CheckAPIDocName,
						"exported %s %s has no doc comment (document the spec, or each name in the group)",
						d.Tok, name.Name))
				}
			}
		}
	}
	return fs
}
