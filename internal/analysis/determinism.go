package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// determinismAllowlist holds import-path suffixes of packages that are
// allowed to read wall clocks or global randomness: the module's seeded
// RNG wrapper, the virtual-clock device plumbing, and the benchmark
// harness (which reports real elapsed time by design).
var determinismAllowlist = []string{
	"internal/xrand",
	"internal/device",
	"cmd/benchrunner",
}

// seededRandConstructors are the math/rand functions that build an
// explicitly seeded generator rather than consuming the global one.
var seededRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// sortFuncs recognises the stdlib calls that establish a deterministic
// order over a slice collected from a map range.
var sortFuncs = map[string]bool{
	"sort.Slice": true, "sort.SliceStable": true, "sort.Sort": true,
	"sort.Stable": true, "sort.Strings": true, "sort.Ints": true,
	"sort.Float64s": true,
	"slices.Sort":   true, "slices.SortFunc": true,
	"slices.SortStableFunc": true, "slices.Sorted": true,
	"slices.SortedFunc": true, "slices.SortedStableFunc": true,
	// The project's own canonical ID sort (slices.Sort underneath) is as
	// order-establishing as the stdlib calls it wraps.
	"github.com/tmerge/tmerge/internal/video.SortTrackIDs": true,
}

// CheckDeterminism flags nondeterminism that would break bit-identical
// checkpoint/replay: wall-clock reads (time.Now/time.Since), globally
// seeded math/rand calls, and range-over-map loops whose iteration order
// escapes — by appending to an outer slice that is never subsequently
// sorted, by printing inside the loop, or by sending on a channel.
func CheckDeterminism(p *Package) []Finding {
	for _, suffix := range determinismAllowlist {
		if strings.HasSuffix(p.ImportPath, suffix) {
			return nil
		}
	}
	var fs []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if f := p.nondeterministicCall(n); f != nil {
					fs = append(fs, *f)
				}
			case *ast.RangeStmt:
				fs = append(fs, p.checkMapRange(file, n)...)
			}
			return true
		})
	}
	return fs
}

// nondeterministicCall reports a banned clock or global-rand call, or nil.
func (p *Package) nondeterministicCall(call *ast.CallExpr) *Finding {
	fn := p.callee(call)
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" || fn.Name() == "Since" {
			f := p.finding(call.Pos(), CheckDeterminismName,
				"time.%s reads the wall clock; replayed code must use the injected virtual clock", fn.Name())
			return &f
		}
	case "math/rand", "math/rand/v2":
		// Only package-level functions draw from the shared global
		// source; methods on an explicit *rand.Rand are fine.
		if fn.Type().(*types.Signature).Recv() != nil {
			return nil
		}
		if seededRandConstructors[fn.Name()] {
			return nil
		}
		f := p.finding(call.Pos(), CheckDeterminismName,
			"rand.%s uses the global generator; seed an explicit source via internal/xrand instead", fn.Name())
		return &f
	}
	return nil
}

// checkMapRange flags order leaks out of a range over a map: appends to
// an outer slice with no later sort of that slice, ordered output (fmt
// printing), and channel sends inside the loop body.
func (p *Package) checkMapRange(file *ast.File, rng *ast.RangeStmt) []Finding {
	tv, ok := p.Info.Types[rng.X]
	if !ok {
		return nil
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return nil
	}
	var fs []Finding
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !p.isBuiltinAppend(call) || i >= len(n.Lhs) {
					continue
				}
				target := n.Lhs[i]
				if !p.outerTarget(target, rng) {
					continue
				}
				if p.keyedByRangeKey(target, rng) {
					// m[k] = append(m[k], ...) with k the range key
					// partitions the appends per key; no order leaks.
					continue
				}
				if p.sortedAfter(file, rng, target) {
					continue
				}
				fs = append(fs, p.finding(n.Pos(), CheckDeterminismName,
					"append to %q inside range over map leaks iteration order; sort the keys first or sort %q before it is used",
					p.render(target), p.render(target)))
			}
		case *ast.CallExpr:
			if fn := p.callee(n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
				(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
				fs = append(fs, p.finding(n.Pos(), CheckDeterminismName,
					"fmt.%s inside range over map emits output in iteration order; collect and sort before printing", fn.Name()))
			}
		case *ast.SendStmt:
			fs = append(fs, p.finding(n.Pos(), CheckDeterminismName,
				"channel send inside range over map publishes values in iteration order; sort the keys first"))
		case *ast.FuncLit:
			return false // deferred/escaping work is out of scope here
		}
		return true
	})
	return fs
}

// outerTarget reports whether the append target lives outside the range
// body. Non-identifier targets (map entries, struct fields) are treated
// as outer.
func (p *Package) outerTarget(target ast.Expr, rng *ast.RangeStmt) bool {
	id, ok := ast.Unparen(target).(*ast.Ident)
	if !ok {
		return true
	}
	obj := p.objectOf(id)
	if obj == nil {
		return false
	}
	return obj.Pos() < rng.Body.Pos() || obj.Pos() >= rng.Body.End()
}

// keyedByRangeKey reports whether the append target is an index
// expression whose index is the loop's own key variable: each key's
// bucket then receives exactly its own iteration's appends, so map
// order cannot influence any single bucket's contents.
func (p *Package) keyedByRangeKey(target ast.Expr, rng *ast.RangeStmt) bool {
	idx, ok := ast.Unparen(target).(*ast.IndexExpr)
	if !ok {
		return false
	}
	keyID, ok := rng.Key.(*ast.Ident)
	if !ok {
		return false
	}
	idxID, ok := ast.Unparen(idx.Index).(*ast.Ident)
	if !ok {
		return false
	}
	keyObj, idxObj := p.objectOf(keyID), p.objectOf(idxID)
	return keyObj != nil && keyObj == idxObj
}

// sortedAfter reports whether, later in the enclosing function, the
// append target is passed to a recognised sort call — the idiom
// "collect keys from the map, then sort, then emit".
func (p *Package) sortedAfter(file *ast.File, rng *ast.RangeStmt, target ast.Expr) bool {
	body := enclosingFuncBody(file, rng.Pos())
	if body == nil {
		return false
	}
	want := p.render(target)
	sorted := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || len(call.Args) == 0 {
			return true
		}
		fn := p.callee(call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if sortFuncs[fn.Pkg().Path()+"."+fn.Name()] && p.render(call.Args[0]) == want {
			sorted = true
		}
		return true
	})
	return sorted
}
