package analysis

import (
	"slices"
	"strings"
	"testing"
	"unicode/utf8"
)

// knownForTest is the membership predicate the real directive scanner
// passes to the parser.
func knownForTest(name string) bool { return slices.Contains(KnownChecks, name) }

// TestParseAllowDirective tables the grammar's fixed points before the
// fuzzer explores around them.
func TestParseAllowDirective(t *testing.T) {
	for _, tc := range []struct {
		name    string
		text    string
		ok      bool
		problem string // substring of the malformed-directive message, "" if none
		check   string
		reason  string
	}{
		{name: "valid", text: "//tmerge:allow determinism seeded clock for replay", ok: true,
			check: "determinism", reason: "seeded clock for replay"},
		{name: "valid-new-check", text: "//tmerge:allow goroutine-lifecycle joined in Close", ok: true,
			check: "goroutine-lifecycle", reason: "joined in Close"},
		{name: "extra-whitespace", text: "//tmerge:allow   channel-hygiene \t owner closes", ok: true,
			check: "channel-hygiene", reason: "owner closes"},
		{name: "ordinary-comment", text: "// just a comment"},
		{name: "empty", text: ""},
		{name: "prefix-only", text: "//tmerge:allow", problem: "names no check"},
		{name: "prefix-spaces", text: "//tmerge:allow   ", problem: "names no check"},
		{name: "unknown-check", text: "//tmerge:allow speling why", problem: `unknown check "speling"`},
		{name: "missing-reason", text: "//tmerge:allow determinism", problem: "gives no reason"},
		{name: "unicode-check", text: "//tmerge:allow détérminisme accents", problem: "unknown check"},
		{name: "case-sensitive", text: "//tmerge:allow Determinism upper", problem: `unknown check "Determinism"`},
		// The prefix must match exactly: these are ordinary comments.
		{name: "wrong-tag", text: "//tmerge:alow determinism typo in the tag"},
		{name: "spaced-tag", text: "// tmerge:allow determinism spaced tag"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d, ok, problem := parseAllowDirective(tc.text, knownForTest)
			if ok != tc.ok {
				t.Fatalf("ok = %v, want %v (problem=%q)", ok, tc.ok, problem)
			}
			if tc.problem == "" && problem != "" {
				t.Fatalf("unexpected problem %q", problem)
			}
			if tc.problem != "" && !strings.Contains(problem, tc.problem) {
				t.Fatalf("problem %q does not mention %q", problem, tc.problem)
			}
			if tc.ok && (d.Check != tc.check || d.Reason != tc.reason) {
				t.Fatalf("parsed (%q, %q), want (%q, %q)", d.Check, d.Reason, tc.check, tc.reason)
			}
		})
	}
}

// FuzzDirective throws arbitrary comment text at the directive parser
// and checks its invariants: never panic, valid iff a known check plus a
// non-empty reason, and the three outcomes (valid / not-a-directive /
// malformed) stay mutually exclusive.
func FuzzDirective(f *testing.F) {
	for _, seed := range []string{
		"//tmerge:allow determinism seeded clock",
		"//tmerge:allow determinism",
		"//tmerge:allow",
		"//tmerge:allow speling reason",
		"//tmerge:allow lock-discipline éé unicode reason",
		"//tmerge:allow\tdeterminism tab split",
		"//tmerge:allow determinism nbsp is not a field break",
		"// not a directive",
		"//tmerge:allowdeterminism glued",
		"//tmerge:allow 爬 reason",
		"\ufeff//tmerge:allow determinism bom prefix",
		"//tmerge:allow determinism \x00 nul reason",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		d, ok, problem := parseAllowDirective(text, knownForTest)

		isDirective := strings.HasPrefix(text, allowDirectivePrefix)
		if !isDirective {
			if ok || problem != "" || d != (allowDirective{}) {
				t.Fatalf("non-directive %q produced (%v, %v, %q)", text, d, ok, problem)
			}
			return
		}
		if ok == (problem != "") {
			t.Fatalf("directive %q: valid and malformed must be exclusive, got ok=%v problem=%q", text, ok, problem)
		}
		if ok {
			if !knownForTest(d.Check) {
				t.Fatalf("directive %q accepted unknown check %q", text, d.Check)
			}
			if strings.TrimSpace(d.Reason) == "" {
				t.Fatalf("directive %q accepted without a reason", text)
			}
			if !utf8.ValidString(d.Check) || !utf8.ValidString(d.Reason) {
				// Fields of a valid UTF-8 input stay valid; garbage input
				// must not be laundered into findings output.
				if utf8.ValidString(text) {
					t.Fatalf("valid input %q parsed into invalid UTF-8", text)
				}
			}
		} else if d != (allowDirective{}) {
			t.Fatalf("malformed directive %q still returned a parse %v", text, d)
		}
	})
}
