package analysis

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"testing"
)

// loadTestdata loads one seeded-violation package from testdata/src.
// The go tool ignores testdata directories in wildcard patterns, so the
// packages can hold deliberate violations without tripping the real
// tmergevet run over ./... .
func loadTestdata(t *testing.T, name string) *Package {
	t.Helper()
	pkgs, err := Load(".", "./testdata/src/"+name)
	if err != nil {
		t.Fatalf("loading testdata/%s: %v", name, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loading testdata/%s: got %d packages, want 1", name, len(pkgs))
	}
	return pkgs[0]
}

var wantMarker = regexp.MustCompile(`// want ([a-z-]+)`)

// wantedLines scans a testdata source file for "// want <check>" markers
// and returns line -> expected check name.
func wantedLines(t *testing.T, relPath string) map[int]string {
	t.Helper()
	data, err := os.ReadFile(filepath.FromSlash(relPath))
	if err != nil {
		t.Fatalf("reading %s: %v", relPath, err)
	}
	want := make(map[int]string)
	for i, line := range strings.Split(string(data), "\n") {
		if m := wantMarker.FindStringSubmatch(line); m != nil {
			want[i+1] = m[1]
		}
	}
	if len(want) == 0 {
		t.Fatalf("%s has no want markers", relPath)
	}
	return want
}

// checkGolden compares findings against the file's want markers.
func checkGolden(t *testing.T, relPath string, fs []Finding, want map[int]string) {
	t.Helper()
	got := make(map[int]string)
	for _, f := range fs {
		if !strings.HasSuffix(f.File, relPath) {
			t.Errorf("finding in unexpected file: %v", f)
			continue
		}
		if prev, dup := got[f.Line]; dup && prev != f.Check {
			t.Errorf("line %d flagged by both %s and %s", f.Line, prev, f.Check)
		}
		got[f.Line] = f.Check
	}
	for line, check := range want {
		if got[line] != check {
			t.Errorf("line %d: want [%s] finding, got %q", line, check, got[line])
		}
	}
	for line, check := range got {
		if want[line] == "" {
			t.Errorf("line %d: unexpected [%s] finding", line, check)
		}
	}
}

func TestCheckDeterminismGolden(t *testing.T) {
	p := loadTestdata(t, "determ")
	rel := "testdata/src/determ/determ.go"
	checkGolden(t, rel, CheckDeterminism(p), wantedLines(t, rel))
}

func TestCheckLockDisciplineGolden(t *testing.T) {
	p := loadTestdata(t, "locks")
	rel := "testdata/src/locks/locks.go"
	checkGolden(t, rel, CheckLockDiscipline(p), wantedLines(t, rel))
}

func TestCheckErrorHygieneGolden(t *testing.T) {
	p := loadTestdata(t, "errhygiene")
	rel := "testdata/src/errhygiene/errhygiene.go"
	checkGolden(t, rel, CheckErrorHygiene(p), wantedLines(t, rel))
}

func TestCheckAPIDocGolden(t *testing.T) {
	p := loadTestdata(t, "apidoc")
	fs := CheckAPIDoc(p)
	flagged := make(map[string]bool)
	for _, f := range fs {
		if f.Check != CheckAPIDocName {
			t.Errorf("unexpected check %q in %v", f.Check, f)
		}
		// Message shape: "exported <kind> <Name> has no doc comment...".
		fields := strings.Fields(f.Message)
		if len(fields) < 3 {
			t.Fatalf("unparseable message %q", f.Message)
		}
		flagged[fields[2]] = true
	}
	want := []string{
		"Undocumented", "UndocumentedType",
		"GroupedUndocumented", "GroupedVarUndocumented",
	}
	for _, name := range want {
		if !flagged[name] {
			t.Errorf("expected %s to be flagged; findings: %v", name, fs)
		}
	}
	if len(flagged) != len(want) {
		t.Errorf("flagged %v, want exactly %v", flagged, want)
	}
}

// TestAllowSuppression drives Run over the allow package: valid
// directives (line-above and same-line forms) must suppress, malformed
// directives (missing reason, unknown check) must surface as "allow"
// findings while the violations beneath them stay flagged, and a valid
// directive for the wrong check must not suppress — and is itself
// reported as a stale (unused) suppression.
func TestAllowSuppression(t *testing.T) {
	p := loadTestdata(t, "allow")
	fs := Run([]*Package{p})

	rel := "testdata/src/allow/allow.go"
	want := wantedLines(t, rel)
	var determinism, allow []Finding
	for _, f := range fs {
		switch f.Check {
		case CheckDeterminismName:
			determinism = append(determinism, f)
		case checkAllowName:
			allow = append(allow, f)
		default:
			t.Errorf("unexpected finding %v", f)
		}
	}
	if len(allow) != 3 {
		t.Fatalf("got %d directive findings, want 3 (two malformed, one stale): %v", len(allow), allow)
	}
	if !strings.Contains(allow[0].Message, "no reason") {
		t.Errorf("first malformed directive should complain about the missing reason: %v", allow[0])
	}
	if !strings.Contains(allow[1].Message, `unknown check "speling"`) {
		t.Errorf("second malformed directive should name the unknown check: %v", allow[1])
	}
	if !strings.Contains(allow[2].Message, "suppresses nothing") {
		t.Errorf("wrong-check directive should be reported as stale: %v", allow[2])
	}
	got := make(map[int]bool)
	for _, f := range determinism {
		got[f.Line] = true
	}
	for line, check := range want {
		if check == CheckDeterminismName && !got[line] {
			t.Errorf("line %d: determinism finding should have survived", line)
		}
	}
	if len(determinism) != 3 {
		t.Errorf("got %d surviving determinism findings, want 3 (two valid suppressions): %v",
			len(determinism), determinism)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	in := []Finding{
		{File: "a/b.go", Line: 3, Col: 7, Check: CheckDeterminismName, Message: "time.Now reads the wall clock"},
		{File: "c.go", Line: 12, Col: 1, Check: checkAllowName, Message: `directive with "quotes" and spaces`},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, in); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if lines := strings.Count(strings.TrimSpace(buf.String()), "\n") + 1; lines != len(in) {
		t.Fatalf("want one JSON object per line, got %d lines for %d findings", lines, len(in))
	}
	out, err := DecodeJSON(&buf)
	if err != nil {
		t.Fatalf("DecodeJSON: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in=%v\nout=%v", in, out)
	}
}

// TestVetSelf runs the full pass over the analyzer and its driver: the
// tool must be clean under its own rules.
func TestVetSelf(t *testing.T) {
	pkgs, err := Load(".", "./...", "../../cmd/tmergevet")
	if err != nil {
		t.Fatalf("loading analyzer packages: %v", err)
	}
	if fs := Run(pkgs); len(fs) != 0 {
		for _, f := range fs {
			t.Errorf("vet-self finding: %v", f)
		}
	}
}

// TestFindingString pins the line format the tool prints and CI greps.
func TestFindingString(t *testing.T) {
	f := Finding{File: "internal/core/merge.go", Line: 54, Col: 3,
		Check: CheckDeterminismName, Message: "order leak"}
	want := "internal/core/merge.go:54: [determinism] order leak"
	if got := f.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

// ExampleWriteText is compile-checked documentation of the output shape.
func ExampleWriteText() {
	fs := []Finding{{File: "x.go", Line: 1, Check: "api-doc", Message: "exported function X has no doc comment"}}
	_ = WriteText(os.Stdout, fs)
	fmt.Println("done")
	// Output:
	// x.go:1: [api-doc] exported function X has no doc comment
	// done
}
