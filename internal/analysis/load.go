package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, parsed, and type-checked package of the module.
type Package struct {
	ImportPath string
	ModulePath string
	ModuleDir  string
	Dir        string

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// IsModuleRoot reports whether this is the module's root package — the
// public tmerge surface CheckAPIDoc applies to.
func (p *Package) IsModuleRoot() bool {
	return p.ModulePath != "" && p.ImportPath == p.ModulePath
}

// Position resolves pos and rewrites the filename relative to the module
// root, so findings print stable repo paths regardless of where the tool
// runs.
func (p *Package) Position(pos token.Pos) token.Position {
	ps := p.Fset.Position(pos)
	if p.ModuleDir != "" {
		if rel, err := filepath.Rel(p.ModuleDir, ps.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			ps.Filename = filepath.ToSlash(rel)
		}
	}
	return ps
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	Module     *struct {
		Path string
		Dir  string
	}
}

// goList invokes the go tool from dir and decodes its JSON stream.
func goList(dir string, args ...string) ([]listPackage, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load loads, parses, and type-checks the packages matching the patterns
// (relative to dir; "" means the current directory). It shells out to the
// go tool twice: once to resolve the target packages and once, with
// -deps -export, to obtain compiled export data for every import — the
// standard-library way to type-check against dependencies without
// re-checking their sources.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	targetArgs := append([]string{"list", "-json=ImportPath,Name,Dir,GoFiles,Module"}, patterns...)
	targets, err := goList(dir, targetArgs...)
	if err != nil {
		return nil, err
	}

	depArgs := append([]string{"list", "-deps", "-export", "-json=ImportPath,Export,Standard"}, patterns...)
	deps, err := goList(dir, depArgs...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(deps))
	for _, d := range deps {
		if d.Export != "" {
			exports[d.ImportPath] = d.Export
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for import %q", path)
		}
		return os.Open(exp)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var out []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("analysis: parsing %s: %w", name, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %w", t.ImportPath, err)
		}
		p := &Package{
			ImportPath: t.ImportPath,
			Dir:        t.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		}
		if t.Module != nil {
			p.ModulePath = t.Module.Path
			p.ModuleDir = t.Module.Dir
		}
		out = append(out, p)
	}
	return out, nil
}
