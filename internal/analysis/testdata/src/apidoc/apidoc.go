// Package apidoc seeds api-doc violations for the analyzer's golden
// tests. The driver applies CheckAPIDoc only to the module root, so the
// test invokes the checker on this package directly. Expectations are
// by identifier name (not marker comments): a trailing line comment is
// itself valid documentation for a grouped spec, so markers would
// change what the checker sees.
package apidoc

// Documented has a doc comment.
func Documented() {}

func Undocumented() {}

// DocumentedType has a doc comment.
type DocumentedType struct{}

type UndocumentedType struct{}

// SingleConst rides on the declaration doc, which single-spec
// declarations may.
const SingleConst = 1

// Grouped specs need per-spec docs; the group doc is not enough.
const (
	// GroupedDocumented has one.
	GroupedDocumented   = 1
	GroupedUndocumented = 2
)

var (
	// GroupedVarDocumented has one.
	GroupedVarDocumented   = 1
	GroupedVarUndocumented = 2

	unexportedVar = 3
)

// TrailingDocumented is allowed to document grouped specs with trailing
// line comments.
const (
	TrailingA = 1 // TrailingA is documented in trailing form.
	TrailingB = 2 // TrailingB likewise.
)
