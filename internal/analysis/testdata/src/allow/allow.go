// Package allow exercises //tmerge:allow suppression semantics: valid
// directives suppress, malformed directives are themselves findings and
// suppress nothing.
package allow

import "time"

// Suppressed is covered by a well-formed directive on the line above.
func Suppressed() time.Time {
	//tmerge:allow determinism golden test exercising a valid suppression
	return time.Now()
}

// SuppressedSameLine is covered by a directive trailing the line.
func SuppressedSameLine() time.Time {
	return time.Now() //tmerge:allow determinism golden test, same-line form
}

// MissingReason has a directive without a reason: the directive is a
// finding and the time.Now beneath it stays flagged.
func MissingReason() time.Time {
	//tmerge:allow determinism
	return time.Now() // want determinism (directive above is malformed)
}

// UnknownCheck names a check that does not exist.
func UnknownCheck() time.Time {
	//tmerge:allow speling mistake in the check name
	return time.Now() // want determinism (directive above is malformed)
}

// WrongCheck suppresses a different check than the one that fires: the
// determinism finding survives AND the api-doc directive, having
// suppressed nothing, is itself reported as stale.
func WrongCheck() time.Time {
	//tmerge:allow api-doc valid directive, but for the wrong check
	return time.Now() // want determinism
}
