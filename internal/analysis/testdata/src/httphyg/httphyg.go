// Package httphyg seeds positive and negative cases for the
// http-hygiene checker: servers and clients carry timeouts, the
// timeout-less package conveniences are banned, handlers bound bodies.
package httphyg

import (
	"io"
	"net/http"
	"time"
)

// NakedServer accepts slowloris connections forever.
func NakedServer() *http.Server {
	return &http.Server{Addr: ":0"} // want http-hygiene
}

// BoundedServer sets a header deadline.
func BoundedServer() *http.Server {
	return &http.Server{ReadHeaderTimeout: time.Second}
}

// ReadBoundedServer: ReadTimeout alone also satisfies the check.
func ReadBoundedServer() *http.Server {
	return &http.Server{ReadTimeout: time.Second}
}

// NakedClient can hang on a dead peer.
func NakedClient() *http.Client {
	return &http.Client{} // want http-hygiene
}

// BoundedClient carries the transport-level backstop.
func BoundedClient() *http.Client {
	return &http.Client{Timeout: time.Minute}
}

// Banned uses the package-level conveniences that ride the timeout-less
// defaults or detach requests from their ctx.
func Banned() {
	_ = http.ListenAndServe(":0", nil)      // want http-hygiene
	_, _ = http.Get("http://localhost")     // want http-hygiene
	_, _ = http.NewRequest("GET", "/", nil) // want http-hygiene
}

// ViaClient calls the method of a constructed client: it rides the
// client's Timeout and is exempt.
func ViaClient(c *http.Client) {
	_, _ = c.Get("http://localhost")
}

// UnboundedHandler reads the request body with no limit.
func UnboundedHandler(w http.ResponseWriter, r *http.Request) {
	b, _ := io.ReadAll(r.Body) // want http-hygiene
	_ = b
	_ = r.Body.Close()
}

// BoundedHandler wraps the body in MaxBytesReader first.
func BoundedHandler(w http.ResponseWriter, r *http.Request) {
	b, _ := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	_ = b
}

// CloseOnlyHandler never reads the body: Close alone is not a read.
func CloseOnlyHandler(w http.ResponseWriter, r *http.Request) {
	_ = r.Body.Close()
	w.WriteHeader(http.StatusNoContent)
}

// Routes exercises handler-shaped function literals.
func Routes(mux *http.ServeMux) {
	mux.HandleFunc("/echo", func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.Copy(w, r.Body) // want http-hygiene
	})
	mux.HandleFunc("/lim", func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.Copy(w, io.LimitReader(r.Body, 1024))
	})
}

// NotAHandler has the wrong shape: its body reads are the caller's
// concern, not a handler-bounding violation.
func NotAHandler(r *http.Request) error {
	_, err := io.ReadAll(r.Body)
	return err
}
