// Package determ seeds known determinism violations for the analyzer's
// golden tests. Each "want" comment marks a line the checker must flag.
package determ

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Timestamps reads the wall clock twice.
func Timestamps() time.Duration {
	start := time.Now()      // want determinism
	return time.Since(start) // want determinism
}

// GlobalRand draws from the global generator.
func GlobalRand() int {
	return rand.Intn(6) // want determinism
}

// SeededRand draws from an explicit source and is fine.
func SeededRand() int {
	r := rand.New(rand.NewSource(1))
	return r.Intn(6)
}

// Keys leaks map order into the returned slice.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want determinism
	}
	return out
}

// SortedKeys collects then sorts — the blessed idiom.
func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Buckets appends to the entry keyed by the loop's own key variable,
// which partitions the appends per key and is order-independent.
func Buckets(m map[string][]int) map[string][]int {
	out := map[string][]int{}
	for k, vs := range m {
		for _, v := range vs {
			out[k] = append(out[k], v*2)
		}
	}
	return out
}

// Dump prints in map iteration order.
func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want determinism
	}
}

// Feed sends map values in iteration order.
func Feed(m map[string]int, ch chan<- int) {
	for _, v := range m {
		ch <- v // want determinism
	}
}

// Reduce is a pure order-independent reduction and is fine.
func Reduce(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
