// Package chanhyg seeds positive and negative cases for the
// channel-hygiene checker: no naked unbuffered sends, close only by the
// owning sender, exactly one close site per channel.
package chanhyg

// NakedSend blocks unboundedly: the channel is not provably buffered
// and the send has no select escape arm.
func NakedSend(out chan int) {
	out <- 1 // want channel-hygiene
}

// GuardedSend sits in a select with a shed arm.
func GuardedSend(out chan int) {
	select {
	case out <- 1:
	default:
	}
}

// BufferedSend sends on a channel every make site gives capacity.
func BufferedSend() {
	errc := make(chan error, 1)
	errc <- nil
	<-errc
}

// CloseParam closes a channel it received as a parameter: channels are
// closed by their owning sender, never by a callee.
func CloseParam(done chan struct{}) {
	close(done) // want channel-hygiene
}

// lifecycle is closed from two different functions below: one
// interleaving away from a double-close panic.
var lifecycle = make(chan struct{})

func closeEarly() {
	close(lifecycle) // want channel-hygiene
}

func closeLate() {
	close(lifecycle) // want channel-hygiene
}

// SingleOwner makes and closes its own channel at one site.
func SingleOwner() {
	done := make(chan struct{})
	close(done)
}

// CloseEach closes a distinct loop-variant channel per iteration: one
// textual site over different objects, not a double close.
func CloseEach(chans []chan int) {
	for _, ch := range chans {
		defer close(ch)
	}
}

// pool's semaphore field is provably buffered at its struct-literal
// make site, so acquire's send is a bounded block, not a hang.
type pool struct{ sem chan struct{} }

func newPool(n int) *pool {
	return &pool{sem: make(chan struct{}, n)}
}

func (p *pool) acquire() {
	p.sem <- struct{}{}
}

// PerElem tracks per-element makes: done[i] is buffered at every site.
func PerElem(n int) {
	done := make([]chan int, n)
	for i := range done {
		done[i] = make(chan int, 1)
	}
	for i := range done {
		done[i] <- i
	}
}
