// Package locks seeds known lock-discipline violations for the
// analyzer's golden tests.
package locks

import "sync"

// Device stands in for the real device interface.
type Device struct{}

// Submit models a blocking submission.
func (Device) Submit(n int) {}

// TrySubmit models a fallible blocking submission.
func (Device) TrySubmit(n int) error { return nil }

// Holder owns a mutex and a device.
type Holder struct {
	mu  sync.Mutex
	dev Device
}

// Bad submits under a deferred unlock.
func (h *Holder) Bad() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.dev.Submit(1) // want lock-discipline
}

// BadExplicit submits before the explicit unlock.
func (h *Holder) BadExplicit() {
	h.mu.Lock()
	h.dev.Submit(1) // want lock-discipline
	h.mu.Unlock()
}

// BadTry drops into TrySubmit under the lock.
func (h *Holder) BadTry() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dev.TrySubmit(1) // want lock-discipline
}

// Good unlocks before submitting.
func (h *Holder) Good() {
	h.mu.Lock()
	n := 1
	h.mu.Unlock()
	h.dev.Submit(n)
}

// indirect performs a submission one call away.
func (h *Holder) indirect() {
	h.dev.Submit(1)
}

// BadIndirect reaches Submit transitively while locked.
func (h *Holder) BadIndirect() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.indirect() // want lock-discipline
}

// GoodIndirect calls the submitting helper after unlocking.
func (h *Holder) GoodIndirect() {
	h.mu.Lock()
	h.mu.Unlock()
	h.indirect()
}
