// Package errhygiene seeds known error-hygiene violations for the
// analyzer's golden tests.
package errhygiene

import (
	"compress/gzip"
	"os"

	"github.com/tmerge/tmerge/internal/checkpoint"
)

// DropSeal discards checkpoint.Seal's error via the blank identifier.
func DropSeal(payload any) []byte {
	data, _ := checkpoint.Seal(payload) // want error-hygiene
	return data
}

// DropOpen ignores checkpoint.Open entirely.
func DropOpen(data []byte, out any) {
	checkpoint.Open(data, out) // want error-hygiene
}

// HandleSeal checks the error and is fine.
func HandleSeal(payload any) ([]byte, error) {
	return checkpoint.Seal(payload)
}

// DropWriterClose defers Close on a *gzip.Writer without checking it.
func DropWriterClose(f *os.File) {
	gz := gzip.NewWriter(f)
	defer gz.Close() // want error-hygiene
	_, _ = gz.Write([]byte("x"))
}

// DropCreateClose defers Close on an os.Create handle.
func DropCreateClose(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want error-hygiene
	_, err = f.Write([]byte("x"))
	return err
}

// ReadClose defers Close on a read-only handle, which is fine.
func ReadClose(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	buf := make([]byte, 8)
	_, err = f.Read(buf)
	return err
}

// TryThing models the Try* contract.
func TryThing() error { return nil }

// DropTry discards a Try* error.
func DropTry() {
	TryThing() // want error-hygiene
}

// HandleTry propagates the Try* error and is fine.
func HandleTry() error {
	return TryThing()
}
