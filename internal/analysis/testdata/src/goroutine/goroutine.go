// Package goroutine seeds positive and negative cases for the
// goroutine-lifecycle checker: every go statement needs a provable
// shutdown tie (ctx, channel, WaitGroup, or bounded signal).
package goroutine

import (
	"context"
	"sync"
)

// leakForever has no ctx, channel, or WaitGroup in sight.
func leakForever() {
	for {
	}
}

// recurse exercises the visited set: following it must terminate.
func recurse() {
	recurse()
}

// compute is a leaf callee with no tie of its own.
func compute() int { return 42 }

// Fire spawns goroutines with no tie at all.
func Fire() {
	go leakForever() // want goroutine-lifecycle
	go func() {      // want goroutine-lifecycle
		_ = 1 + 1
	}()
}

// FireValue spawns through a function value the checker cannot follow.
func FireValue(f func()) {
	go f() // want goroutine-lifecycle
}

// FireExternal spawns an out-of-package callee that takes no ctx.
func FireExternal(mu *sync.Mutex) {
	go mu.Unlock() // want goroutine-lifecycle
}

// FireRecursive follows the callee graph without looping forever.
func FireRecursive() {
	go recurse() // want goroutine-lifecycle
}

// FireUnbufferedSend is the classic abandoned-result leak: a send on an
// unbuffered channel proves nothing — if the receiver times out first,
// the goroutine blocks forever.
func FireUnbufferedSend() int {
	res := make(chan int)
	go func() { // want goroutine-lifecycle
		res <- compute()
	}()
	return <-res
}

type worker struct{ done chan struct{} }

// run blocks on the worker's done channel — a tie.
func (w *worker) run() {
	<-w.done
}

// SpawnMethod follows a method spawn into its body.
func SpawnMethod(w *worker) {
	go w.run()
}

// SpawnMethodValue loses the method behind a bound value: unprovable.
func SpawnMethodValue(w *worker) {
	run := w.run
	go run() // want goroutine-lifecycle
}

// SpawnWithCtxArg: a ctx among the call's arguments ties even a spawn
// the checker cannot otherwise follow.
func SpawnWithCtxArg(ctx context.Context, f func(context.Context)) {
	go f(ctx)
}

// SpawnReceiver ties through a channel receive in the closure.
func SpawnReceiver(done chan struct{}) {
	go func() {
		<-done
	}()
}

// SpawnRange ties through ranging over a channel.
func SpawnRange(jobs chan int) {
	go func() {
		for range jobs {
		}
	}()
}

// SpawnCloser ties through owning a completion close.
func SpawnCloser() {
	done := make(chan struct{})
	go func() {
		close(done)
	}()
	<-done
}

// SpawnWaitGroup ties through WaitGroup membership.
func SpawnWaitGroup(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
}

// SpawnBufferedSignal ties through a send on a provably buffered
// channel: a bounded completion signal that cannot block forever.
func SpawnBufferedSignal() error {
	errc := make(chan error, 1)
	go func() {
		errc <- nil
	}()
	return <-errc
}

// drain is a generic callee whose body ranges over its channel.
func drain[T any](c chan T) {
	for range c {
	}
}

// spin is a generic callee with no tie.
func spin[T any](v T) {
	_ = v
}

// SpawnGeneric follows a generic instantiation (an index expression in
// the AST) into the callee's body.
func SpawnGeneric(c chan int) {
	go drain[int](c)
}

// SpawnGenericLeak flags the tieless generic spawn the same way.
func SpawnGenericLeak() {
	go spin[int](0) // want goroutine-lifecycle
}
