// Package ctxdisc seeds positive and negative cases for the
// context-discipline checker: no root contexts outside main, no
// deadline-less dials, and cancellation must reach blocking loops.
package ctxdisc

import (
	"context"
	"net"
	"time"
)

// Mint mints root contexts outside package main: both forms flagged.
func Mint() context.Context {
	_ = context.TODO()          // want context-discipline
	return context.Background() // want context-discipline
}

// DialNaked uses the deadline-less package-level dial.
func DialNaked() (net.Conn, error) {
	return net.Dial("tcp", "localhost:1") // want context-discipline
}

// DialBounded rides the Dialer's configured Timeout: method calls named
// Dial are exempt.
func DialBounded() (net.Conn, error) {
	d := net.Dialer{Timeout: time.Second}
	return d.Dial("tcp", "localhost:1")
}

// SleepInCtx ignores the ctx it was handed.
func SleepInCtx(ctx context.Context) {
	time.Sleep(time.Millisecond) // want context-discipline
}

// SleepNoCtx has no ctx to ignore: not this checker's business.
func SleepNoCtx() {
	time.Sleep(time.Millisecond)
}

// PumpUnguarded loops over channel ops with no select escape arm, so
// cancellation can never interrupt an iteration.
func PumpUnguarded(ctx context.Context, in, out chan int) {
	for v := range in { // want context-discipline
		out <- v
	}
}

// PumpGuarded selects on ctx.Done every iteration.
func PumpGuarded(ctx context.Context, in, out chan int) {
	for v := range in {
		select {
		case out <- v:
		case <-ctx.Done():
			return
		}
	}
}

// ShedWhenFull escapes through a default arm instead: also fine.
func ShedWhenFull(ctx context.Context, out chan int) {
	for i := 0; i < 3; i++ {
		select {
		case out <- i:
		default:
		}
	}
}

// NestedLoops attributes the channel op to its nearest enclosing loop:
// the outer loop is clean, the inner one is flagged.
func NestedLoops(ctx context.Context, out chan int) {
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ { // want context-discipline
			out <- i * j
		}
	}
}

// SpawnsWorker returns a literal that takes no ctx: the literal's sleep
// is the spawn site's problem (goroutine-lifecycle), not this checker's.
func SpawnsWorker(ctx context.Context) func() {
	return func() {
		time.Sleep(time.Millisecond)
	}
}

// handler is a ctx-taking function literal: judged by its own params.
var handler = func(ctx context.Context) {
	time.Sleep(time.Millisecond) // want context-discipline
}
