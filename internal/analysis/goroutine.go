package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CheckGoroutineLifecycle flags fire-and-forget goroutines: every go
// statement must carry a provable shutdown tie, because an untied
// goroutine is exactly the leak class the serve/ingress zero-leak tests
// hunt dynamically (DESIGN.md §§12–13). A spawn is tied if the spawned
// body (followed through package-local callees) does any of:
//
//   - use a context.Context (ctx.Done selects, ctx-threaded calls);
//   - receive from or range over a channel (done-channel and worker
//     patterns — the sender side controls the lifetime);
//   - close a channel (completion signal owned by the goroutine);
//   - call (*sync.WaitGroup).Done or Wait (join-pattern membership);
//   - send on a channel the package provably made with capacity (a
//     bounded completion or error signal that cannot block forever).
//
// Spawns through function values or external functions are unprovable
// unless a context.Context is among the call's arguments.
func CheckGoroutineLifecycle(p *Package) []Finding {
	facts := p.chanFacts()
	bodies := p.localFuncBodies()
	var fs []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			tied, why := p.goTie(g.Call, facts, bodies)
			if !tied {
				fs = append(fs, p.finding(g.Pos(), CheckGoroutineLifecycleName,
					"go statement has no provable shutdown tie (%s); tie it to a ctx, done channel, WaitGroup, or bounded signal", why))
			}
			return true
		})
	}
	return fs
}

// goTie reports whether the spawned call has a shutdown tie, and if not,
// why the checker could not prove one.
func (p *Package) goTie(call *ast.CallExpr, facts *chanFacts, bodies map[*types.Func]*ast.BlockStmt) (bool, string) {
	// A ctx handed to the goroutine is a tie regardless of what we can
	// see of the body.
	for _, arg := range call.Args {
		if tv, ok := p.Info.Types[arg]; ok && isContextType(tv.Type) {
			return true, ""
		}
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		if p.bodyHasTie(lit.Body, facts, bodies, make(map[*types.Func]bool)) {
			return true, ""
		}
		return false, "the function literal's body never consults a ctx, channel, or WaitGroup"
	}
	fn := p.callee(call)
	if fn == nil {
		return false, "the spawn goes through a function value the checker cannot follow"
	}
	body, ok := bodies[fn]
	if !ok {
		return false, "callee " + fn.Name() + " is outside the package and takes no ctx"
	}
	if p.bodyHasTie(body, facts, bodies, map[*types.Func]bool{fn: true}) {
		return true, ""
	}
	return false, "callee " + fn.Name() + "'s body never consults a ctx, channel, or WaitGroup"
}

// bodyHasTie walks a function body (following package-local calls through
// visited-set recursion) looking for any shutdown-tie evidence.
func (p *Package) bodyHasTie(body *ast.BlockStmt, facts *chanFacts, bodies map[*types.Func]*ast.BlockStmt, visited map[*types.Func]bool) bool {
	tied := false
	ast.Inspect(body, func(n ast.Node) bool {
		if tied {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			// Channel receive, covering select comm clauses too.
			if n.Op == token.ARROW {
				tied = true
			}
		case *ast.RangeStmt:
			if p.isChanExpr(n.X) {
				tied = true
			}
		case *ast.SendStmt:
			// A send on a provably buffered channel is a bounded
			// completion/error signal that cannot block forever. An
			// unbuffered send proves nothing — it is the classic
			// abandoned-result leak when the receiver times out first.
			if facts.knownBuffered(n.Chan) {
				tied = true
			}
		case *ast.Ident:
			if obj := p.objectOf(n); obj != nil && isContextType(obj.Type()) {
				tied = true
			}
		case *ast.CallExpr:
			if p.isBuiltinClose(n) {
				tied = true
				return false
			}
			fn := p.callee(n)
			if fn == nil {
				return true
			}
			if fn.Pkg() != nil && fn.Pkg().Path() == "sync" &&
				(fn.Name() == "Done" || fn.Name() == "Wait") {
				tied = true
				return false
			}
			if callee, ok := bodies[fn]; ok && !visited[fn] {
				visited[fn] = true
				if p.bodyHasTie(callee, facts, bodies, visited) {
					tied = true
					return false
				}
			}
		}
		return true
	})
	return tied
}
