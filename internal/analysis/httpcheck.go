package analysis

import (
	"go/ast"
	"go/types"
)

// CheckHTTPHygiene enforces the ingress wire spec's resource bounds
// (DESIGN.md §13): every HTTP endpoint this module stands up or calls
// must be impossible to wedge open by a slow or malicious peer.
//
//   - an http.Server literal must set ReadHeaderTimeout or ReadTimeout —
//     the zero value accepts slowloris connections forever;
//   - an http.Client literal must set Timeout as a transport-level
//     backstop (per-request ctx deadlines compose with it, they do not
//     replace it);
//   - the package-level conveniences http.ListenAndServe(TLS),
//     http.Get/Head/Post/PostForm, and http.NewRequest are banned: they
//     use the timeout-less defaults or detach the request from a ctx;
//   - a handler body that reads the request body must bound it first
//     (http.MaxBytesReader or io.LimitReader), matching the ingress
//     bounded-body protocol.
func CheckHTTPHygiene(p *Package) []Finding {
	var fs []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				fs = append(fs, p.httpLiteralFindings(n)...)
			case *ast.CallExpr:
				fs = append(fs, p.httpCallFindings(n)...)
			case *ast.FuncDecl:
				if n.Body != nil && p.isHandlerType(n.Type) {
					fs = append(fs, p.handlerBodyFindings(n.Body)...)
				}
			case *ast.FuncLit:
				if p.isHandlerType(n.Type) {
					fs = append(fs, p.handlerBodyFindings(n.Body)...)
				}
			}
			return true
		})
	}
	return fs
}

// httpLiteralFindings checks http.Server / http.Client composite
// literals for their mandatory timeout fields.
func (p *Package) httpLiteralFindings(cl *ast.CompositeLit) []Finding {
	tv, ok := p.Info.Types[cl]
	if !ok || tv.Type == nil {
		return nil
	}
	keys := make(map[string]bool, len(cl.Elts))
	for _, e := range cl.Elts {
		if kv, ok := e.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok {
				keys[id.Name] = true
			}
		}
	}
	switch {
	case isNamedType(tv.Type, "net/http", "Server"):
		if !keys["ReadHeaderTimeout"] && !keys["ReadTimeout"] {
			f := p.finding(cl.Pos(), CheckHTTPHygieneName,
				"http.Server without ReadHeaderTimeout or ReadTimeout accepts slowloris connections forever; set a header deadline")
			return []Finding{f}
		}
	case isNamedType(tv.Type, "net/http", "Client"):
		if !keys["Timeout"] {
			f := p.finding(cl.Pos(), CheckHTTPHygieneName,
				"http.Client without Timeout can hang on a dead peer; set a transport-level backstop (ctx deadlines compose with it)")
			return []Finding{f}
		}
	}
	return nil
}

// httpBannedCalls maps banned net/http package-level functions to the
// replacement each finding should name.
var httpBannedCalls = map[string]string{
	"ListenAndServe":    "construct an http.Server with ReadHeaderTimeout and call its Serve",
	"ListenAndServeTLS": "construct an http.Server with ReadHeaderTimeout and call its ServeTLS",
	"Get":               "use a client with Timeout and http.NewRequestWithContext",
	"Head":              "use a client with Timeout and http.NewRequestWithContext",
	"Post":              "use a client with Timeout and http.NewRequestWithContext",
	"PostForm":          "use a client with Timeout and http.NewRequestWithContext",
	"NewRequest":        "use http.NewRequestWithContext so the request dies with its ctx",
}

// httpCallFindings flags banned net/http convenience calls.
func (p *Package) httpCallFindings(call *ast.CallExpr) []Finding {
	fn := p.callee(call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "net/http" {
		return nil
	}
	// Only package-level functions are banned; methods on a constructed
	// client or server ride on its configured timeouts.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return nil
	}
	fix, banned := httpBannedCalls[fn.Name()]
	if !banned {
		return nil
	}
	f := p.finding(call.Pos(), CheckHTTPHygieneName,
		"http.%s uses the timeout-less defaults; %s", fn.Name(), fix)
	return []Finding{f}
}

// isHandlerType reports whether the function type has the
// (http.ResponseWriter, *http.Request) handler shape.
func (p *Package) isHandlerType(ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	var flat []types.Type
	for _, field := range ft.Params.List {
		tv, ok := p.Info.Types[field.Type]
		if !ok || tv.Type == nil {
			return false
		}
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			flat = append(flat, tv.Type)
		}
	}
	return len(flat) == 2 &&
		isNamedType(flat[0], "net/http", "ResponseWriter") &&
		isNamedType(flat[1], "net/http", "Request")
}

// handlerBodyFindings flags request-body reads in a handler that never
// bounds the body. Body.Close alone is not a read.
func (p *Package) handlerBodyFindings(body *ast.BlockStmt) []Finding {
	bounded := false
	closeOnly := make(map[*ast.SelectorExpr]bool)
	var reads []*ast.SelectorExpr
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := p.callee(call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		full := fn.Pkg().Path() + "." + fn.Name()
		if full == "net/http.MaxBytesReader" || full == "io.LimitReader" {
			bounded = true
		}
		// Mark r.Body.Close() receivers so a bare close doesn't count as
		// a read below.
		if fn.Name() == "Close" {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
					closeOnly[inner] = true
				}
			}
		}
		return true
	})
	if bounded {
		return nil
	}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Body" || closeOnly[sel] {
			return true
		}
		if tv, ok := p.Info.Types[sel.X]; ok && isNamedType(tv.Type, "net/http", "Request") {
			reads = append(reads, sel)
		}
		return true
	})
	var fs []Finding
	for _, sel := range reads {
		fs = append(fs, p.finding(sel.Pos(), CheckHTTPHygieneName,
			"handler reads the request body without bounding it; wrap it in http.MaxBytesReader (or io.LimitReader) first"))
	}
	return fs
}
