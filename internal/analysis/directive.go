package analysis

import (
	"fmt"
	"strings"
)

// allowDirective is one parsed //tmerge:allow directive.
type allowDirective struct {
	Check  string
	Reason string
}

// parseAllowDirective classifies one comment's raw text against the
// //tmerge:allow grammar. It returns:
//
//   - (d, true, "") for a well-formed directive — d.Check names a known
//     check and d.Reason is the mandatory non-empty justification;
//   - (zero, false, "") when the text is not an allow directive at all
//     (any ordinary comment);
//   - (zero, false, problem) for a malformed directive — the prefix
//     matched but the check name is missing or unknown, or the reason
//     is absent. problem is the finding message to report.
//
// known reports whether a check name exists; it must not be nil. The
// parser is pure (no package or position state) so the fuzz harness can
// drive it directly.
func parseAllowDirective(text string, known func(string) bool) (allowDirective, bool, string) {
	if !strings.HasPrefix(text, allowDirectivePrefix) {
		return allowDirective{}, false, ""
	}
	rest := strings.TrimPrefix(text, allowDirectivePrefix)
	fields := strings.Fields(rest)
	switch {
	case len(fields) == 0:
		return allowDirective{}, false,
			fmt.Sprintf("directive names no check: want %s", allowDirectiveSpelling)
	case !known(fields[0]):
		return allowDirective{}, false,
			fmt.Sprintf("directive names unknown check %q (known: %s)",
				fields[0], strings.Join(KnownChecks, ", "))
	case len(fields) == 1:
		return allowDirective{}, false,
			fmt.Sprintf("directive for %q gives no reason: a suppression must say why the invariant holds anyway", fields[0])
	}
	return allowDirective{
		Check:  fields[0],
		Reason: strings.Join(fields[1:], " "),
	}, true, ""
}
