package analysis

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestBaselineRoundTrip(t *testing.T) {
	fs := []Finding{
		{File: "a.go", Line: 1, Check: CheckDeterminismName, Message: "x"},
		{File: "a.go", Line: 2, Check: CheckDeterminismName, Message: "y"},
		{File: "b.go", Line: 3, Check: CheckHTTPHygieneName, Message: "z"},
	}
	b := BaselineOf(fs)
	if b.Total != 3 || b.Counts[CheckDeterminismName] != 2 || b.Counts[CheckHTTPHygieneName] != 1 {
		t.Fatalf("BaselineOf miscounted: %+v", b)
	}

	var buf bytes.Buffer
	if err := WriteBaseline(&buf, b); err != nil {
		t.Fatalf("WriteBaseline: %v", err)
	}
	got, err := ReadBaseline(&buf)
	if err != nil {
		t.Fatalf("ReadBaseline: %v", err)
	}
	if !reflect.DeepEqual(b, got) {
		t.Fatalf("round trip mismatch:\n in=%+v\nout=%+v", b, got)
	}
}

// TestBaselineByteStable pins that regenerating an identical baseline
// produces identical bytes, so the committed file never churns.
func TestBaselineByteStable(t *testing.T) {
	fs := []Finding{
		{Check: CheckChannelHygieneName}, {Check: CheckDeterminismName},
		{Check: CheckGoroutineLifecycleName}, {Check: CheckDeterminismName},
	}
	var a, b bytes.Buffer
	if err := WriteBaseline(&a, BaselineOf(fs)); err != nil {
		t.Fatal(err)
	}
	if err := WriteBaseline(&b, BaselineOf(fs)); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("unstable baseline bytes:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestBaselineVersionMismatch(t *testing.T) {
	_, err := ReadBaseline(strings.NewReader(`{"version": 99, "total": 0, "counts": {}}`))
	if err == nil || !strings.Contains(err.Error(), "regenerate") {
		t.Fatalf("want a version-mismatch error telling the user to regenerate, got %v", err)
	}
}

// TestCompareBaseline pins the ratchet: counts above the baseline fail,
// counts at or below pass (including checks the baseline never saw at
// zero, and improvements that have not been committed yet).
func TestCompareBaseline(t *testing.T) {
	base := Baseline{Version: baselineVersion, Total: 3,
		Counts: map[string]int{CheckDeterminismName: 2, CheckLockName: 1}}

	for _, tc := range []struct {
		name string
		cur  Baseline
		want []string
	}{
		{name: "identical", cur: base},
		{name: "improved", cur: Baseline{Version: baselineVersion, Total: 1,
			Counts: map[string]int{CheckDeterminismName: 1}}},
		{name: "regressed-existing", cur: Baseline{Version: baselineVersion, Total: 4,
			Counts: map[string]int{CheckDeterminismName: 3, CheckLockName: 1}},
			want: []string{"determinism: 3 findings, baseline allows 2"}},
		{name: "regressed-new-check", cur: Baseline{Version: baselineVersion, Total: 4,
			Counts: map[string]int{CheckDeterminismName: 2, CheckLockName: 1, CheckHTTPHygieneName: 1}},
			want: []string{"http-hygiene: 1 findings, baseline allows 0"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := CompareBaseline(base, tc.cur)
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("CompareBaseline = %v, want %v", got, tc.want)
			}
		})
	}
}
