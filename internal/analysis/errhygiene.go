package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CheckErrorHygiene flags silently dropped errors from the calls whose
// failure must never pass unnoticed:
//
//   - checkpoint.Seal / checkpoint.Open — a dropped error here means a
//     corrupt or partial checkpoint is treated as durable;
//   - Close() on write paths (a *Writer type, or a handle obtained from
//     os.Create in the same function) — buffered data may be lost;
//   - the Try* contract — any function named Try... returning an error
//     exists precisely so the caller can observe failure.
//
// Both statement-level drops (expression statements, defer, go) and a
// blank identifier in the error result position are reported. Close on
// read paths (os.Open handles, *Reader types) is deliberately exempt.
func CheckErrorHygiene(p *Package) []Finding {
	var fs []Finding
	p.inspectFunctions(func(decl *ast.FuncDecl, body *ast.BlockStmt) {
		created := p.createdFiles(body)
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
					if why := p.watchedCall(call, created); why != "" {
						fs = append(fs, p.finding(call.Pos(), CheckErrorHygieneName,
							"%s: error result dropped", why))
					}
				}
			case *ast.DeferStmt:
				if why := p.watchedCall(n.Call, created); why != "" {
					fs = append(fs, p.finding(n.Call.Pos(), CheckErrorHygieneName,
						"%s: error result dropped by defer; use a named return and check it in a deferred closure", why))
				}
			case *ast.GoStmt:
				if why := p.watchedCall(n.Call, created); why != "" {
					fs = append(fs, p.finding(n.Call.Pos(), CheckErrorHygieneName,
						"%s: error result dropped by go statement", why))
				}
			case *ast.AssignStmt:
				fs = append(fs, p.blankErrorAssign(n, created)...)
			}
			return true
		})
	})
	return fs
}

// createdFiles collects identifiers assigned from os.Create within the
// body: Close on these handles is a write-path Close.
func (p *Package) createdFiles(body *ast.BlockStmt) map[types.Object]bool {
	created := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		asgn, ok := n.(*ast.AssignStmt)
		if !ok || len(asgn.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(asgn.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := p.callee(call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "os" || fn.Name() != "Create" {
			return true
		}
		if id, ok := ast.Unparen(asgn.Lhs[0]).(*ast.Ident); ok {
			if obj := p.objectOf(id); obj != nil {
				created[obj] = true
			}
		}
		return true
	})
	return created
}

// watchedCall reports why a call's error result must be checked, or ""
// if the call is not subject to the hygiene rules.
func (p *Package) watchedCall(call *ast.CallExpr, created map[types.Object]bool) string {
	fn := p.callee(call)
	if fn == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !lastResultIsError(sig) {
		return ""
	}
	if fn.Pkg() != nil && strings.HasSuffix(fn.Pkg().Path(), "internal/checkpoint") &&
		(fn.Name() == "Seal" || fn.Name() == "Open") {
		return "checkpoint." + fn.Name()
	}
	if strings.HasPrefix(fn.Name(), "Try") {
		return fn.Name()
	}
	if fn.Name() == "Close" && sig.Recv() != nil && p.writePathClose(call, sig, created) {
		return "write-path Close"
	}
	return ""
}

// writePathClose reports whether a Close call targets a writer: the
// receiver's named type contains "Writer", or the receiver identifier
// was obtained from os.Create in this function.
func (p *Package) writePathClose(call *ast.CallExpr, sig *types.Signature, created map[types.Object]bool) bool {
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	if named, ok := recv.(*types.Named); ok && strings.Contains(named.Obj().Name(), "Writer") {
		return true
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		if obj := p.objectOf(id); obj != nil && created[obj] {
			return true
		}
	}
	return false
}

// blankErrorAssign flags `..., _ = watchedCall()` where the blank lands
// in the error result position.
func (p *Package) blankErrorAssign(asgn *ast.AssignStmt, created map[types.Object]bool) []Finding {
	if len(asgn.Rhs) != 1 {
		return nil
	}
	call, ok := ast.Unparen(asgn.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return nil
	}
	why := p.watchedCall(call, created)
	if why == "" {
		return nil
	}
	// The error is the last result, so the last LHS receives it.
	last := asgn.Lhs[len(asgn.Lhs)-1]
	if id, ok := ast.Unparen(last).(*ast.Ident); ok && id.Name == "_" {
		return []Finding{p.finding(asgn.Pos(), CheckErrorHygieneName,
			"%s: error result assigned to _; handle or return it", why)}
	}
	return nil
}

// lastResultIsError reports whether the function's final result is the
// built-in error type.
func lastResultIsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
