package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// This file holds the shared type/AST facts the concurrency checkers
// (goroutine-lifecycle, context-discipline, channel-hygiene, http-hygiene)
// build over a package: which expressions are context.Context-typed, which
// channels are provably buffered, and where package-local function bodies
// live so checkers can follow `go f()` into f.

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isNamedType reports whether t (after stripping one pointer) is the named
// type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// takesContext reports whether the function type declares a
// context.Context parameter.
func (p *Package) takesContext(ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if tv, ok := p.Info.Types[field.Type]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

// isChanExpr reports whether the expression's type is a channel. It works
// on value expressions and on type expressions (make's first argument)
// alike, since the checker records a type for both.
func (p *Package) isChanExpr(e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// localFuncBodies maps every package-local function and method to its
// body, so checkers can follow `go f()` into f's implementation.
func (p *Package) localFuncBodies() map[*types.Func]*ast.BlockStmt {
	bodies := make(map[*types.Func]*ast.BlockStmt)
	for _, file := range p.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				bodies[fn] = fd.Body
			}
		}
	}
	return bodies
}

// chanFacts records which channel-valued objects the package provably
// constructs with nonzero capacity. A channel made at several sites is
// buffered only if every site is. Channels the package never makes
// (parameters, fields set elsewhere) are absent, i.e. not known buffered.
type chanFacts struct {
	p *Package
	// buffered maps a channel variable or struct field to whether every
	// make site gave it capacity; elemBuffered does the same for the base
	// of per-element makes like done[i] = make(chan T, 1).
	buffered     map[types.Object]bool
	elemBuffered map[types.Object]bool
}

// chanFacts scans the package once for channel make sites.
func (p *Package) chanFacts() *chanFacts {
	cf := &chanFacts{
		p:            p,
		buffered:     make(map[types.Object]bool),
		elemBuffered: make(map[types.Object]bool),
	}
	record := func(m map[types.Object]bool, obj types.Object, buffered bool) {
		if obj == nil {
			return
		}
		if prev, seen := m[obj]; seen {
			m[obj] = prev && buffered
			return
		}
		m[obj] = buffered
	}
	target := func(lhs ast.Expr, buffered bool) {
		switch t := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			record(cf.buffered, p.objectOf(t), buffered)
		case *ast.SelectorExpr:
			record(cf.buffered, p.fieldObject(t), buffered)
		case *ast.IndexExpr:
			if base, ok := ast.Unparen(t.X).(*ast.Ident); ok {
				record(cf.elemBuffered, p.objectOf(base), buffered)
			}
		}
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if i >= len(n.Lhs) {
						break
					}
					if buffered, ok := p.chanMake(rhs); ok {
						target(n.Lhs[i], buffered)
					}
				}
			case *ast.ValueSpec:
				for i, v := range n.Values {
					if i >= len(n.Names) {
						break
					}
					if buffered, ok := p.chanMake(v); ok {
						record(cf.buffered, p.objectOf(n.Names[i]), buffered)
					}
				}
			case *ast.KeyValueExpr:
				// Struct-literal field init: &Server{ch: make(chan T, n)}.
				if key, ok := n.Key.(*ast.Ident); ok {
					if buffered, ok := p.chanMake(n.Value); ok {
						record(cf.buffered, p.Info.Uses[key], buffered)
					}
				}
			}
			return true
		})
	}
	return cf
}

// chanMake reports whether e is a make of a channel and, if so, whether
// the make gives it nonzero capacity. A non-constant capacity counts as
// buffered: make(chan T, workers) is the bounded-pool idiom.
func (p *Package) chanMake(e ast.Expr) (buffered, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return false, false
	}
	id, isIdent := ast.Unparen(call.Fun).(*ast.Ident)
	if !isIdent {
		return false, false
	}
	if b, isBuiltin := p.Info.Uses[id].(*types.Builtin); !isBuiltin || b.Name() != "make" {
		return false, false
	}
	if len(call.Args) == 0 || !p.isChanExpr(call.Args[0]) {
		return false, false
	}
	if len(call.Args) < 2 {
		return false, true
	}
	if tv, okV := p.Info.Types[call.Args[1]]; okV && tv.Value != nil {
		if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
			return v > 0, true
		}
	}
	return true, true
}

// knownBuffered reports whether the channel expression provably has
// capacity at every site the package constructs it.
func (cf *chanFacts) knownBuffered(ch ast.Expr) bool {
	switch ch := ast.Unparen(ch).(type) {
	case *ast.Ident:
		return cf.buffered[cf.p.objectOf(ch)]
	case *ast.SelectorExpr:
		return cf.buffered[cf.p.fieldObject(ch)]
	case *ast.IndexExpr:
		if base, ok := ast.Unparen(ch.X).(*ast.Ident); ok {
			return cf.elemBuffered[cf.p.objectOf(base)]
		}
	}
	return false
}

// fieldObject resolves a selector to the field or variable object it
// denotes, preferring the type checker's selection record (stable across
// different receiver names).
func (p *Package) fieldObject(sel *ast.SelectorExpr) types.Object {
	if s, ok := p.Info.Selections[sel]; ok {
		return s.Obj()
	}
	return p.Info.Uses[sel.Sel]
}

// chanParams collects every function parameter of channel type declared
// in the package — the channels callees must never close.
func (p *Package) chanParams() map[types.Object]bool {
	params := make(map[types.Object]bool)
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			tv, ok := p.Info.Types[field.Type]
			if !ok || tv.Type == nil {
				continue
			}
			if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
				continue
			}
			for _, name := range field.Names {
				if obj := p.Info.Defs[name]; obj != nil {
					params[obj] = true
				}
			}
		}
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				addFields(n.Type.Params)
			case *ast.FuncLit:
				addFields(n.Type.Params)
			}
			return true
		})
	}
	return params
}

// isBuiltinClose reports whether the call is the predeclared close.
func (p *Package) isBuiltinClose(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := p.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "close"
}

// minSelectArms is the fewest select clauses (default included) that give
// a communication an escape path: one arm blocks exactly like the naked
// operation would.
const minSelectArms = 2

// guardedSends returns the set of send statements that appear as the comm
// op of a select with at least minSelectArms arms.
func (p *Package) guardedSends(file *ast.File) map[*ast.SendStmt]bool {
	guarded := make(map[*ast.SendStmt]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok || len(sel.Body.List) < minSelectArms {
			return true
		}
		for _, clause := range sel.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok {
				continue
			}
			if send, ok := cc.Comm.(*ast.SendStmt); ok {
				guarded[send] = true
			}
		}
		return true
	})
	return guarded
}
