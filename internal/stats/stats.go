// Package stats provides the statistical machinery used by the TMerge
// bandit and the experiment harness: Beta posteriors, Hoeffding confidence
// bounds, Pearson correlation, running (Welford) summaries, and quantiles.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Beta represents a Beta(S, F) distribution used as the conjugate prior of
// the per-track-pair Bernoulli reward process in TMerge. Following the
// paper's notation, S counts "r = 1" observations (large distances) and F
// counts "r = 0" observations (small distances), so a *lower* mean marks a
// more promising (more similar) track pair.
type Beta struct {
	S, F float64
}

// NewBeta returns a Beta prior with the given shape parameters. Both must
// be positive.
func NewBeta(s, f float64) Beta {
	if s <= 0 || f <= 0 {
		panic(fmt.Sprintf("stats: Beta shapes must be positive, got (%g, %g)", s, f))
	}
	return Beta{S: s, F: f}
}

// Mean returns S / (S + F).
func (b Beta) Mean() float64 { return b.S / (b.S + b.F) }

// Observe returns the posterior after a Bernoulli observation r.
func (b Beta) Observe(r bool) Beta {
	if r {
		return Beta{S: b.S + 1, F: b.F}
	}
	return Beta{S: b.S, F: b.F + 1}
}

// ObserveWeighted returns the posterior after a fractional observation
// r ∈ [0, 1] counted with weight w pseudo-observations: S grows by w·r
// and F by w·(1-r). With w = 1 it is the bounded-reward Thompson sampling
// update of Agrawal & Goyal — the Bernoulli trial the paper performs is
// its randomised version with identical expectation and strictly higher
// variance. w > 1 tempers the posterior toward exploitation. r is clamped
// to [0, 1]; w must be positive.
func (b Beta) ObserveWeighted(r, w float64) Beta {
	if w <= 0 {
		panic(fmt.Sprintf("stats: non-positive observation weight %g", w))
	}
	r = Clamp01(r)
	return Beta{S: b.S + w*r, F: b.F + w*(1-r)}
}

// Count returns the number of observations folded into the posterior beyond
// the (1,1) uniform prior. It may be negative for sub-uniform priors.
func (b Beta) Count() float64 { return b.S + b.F - 2 }

// HoeffdingRadius returns the confidence radius U = sqrt(2 ln(tau) / n)
// used by the ULB pruning rule (Algorithm 4) and by the LCB baseline. For
// n == 0 the radius is +Inf (the estimate is unbounded).
func HoeffdingRadius(tau, n int) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	if tau < 2 {
		tau = 2
	}
	return math.Sqrt(2 * math.Log(float64(tau)) / float64(n))
}

// Pearson returns the Pearson correlation coefficient between x and y.
// It returns 0 when either series has zero variance. It panics when the
// series lengths differ.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("stats: Pearson length mismatch %d != %d", len(x), len(y)))
	}
	n := float64(len(x))
	if n == 0 {
		return 0
	}
	var mx, my float64
	for i := range x {
		mx += x[i]
		my += y[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Summary is a numerically stable running mean/variance accumulator
// (Welford's algorithm) that also tracks min and max.
type Summary struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds x into the summary.
func (s *Summary) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the running mean (0 for an empty summary).
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the (population) variance.
func (s *Summary) Var() float64 {
	if s.n == 0 {
		return 0
	}
	return s.m2 / float64(s.n)
}

// Std returns the population standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation (0 for an empty summary).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 for an empty summary).
func (s *Summary) Max() float64 { return s.max }

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation. xs is not modified. It panics on an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var t float64
	for _, x := range xs {
		t += x
	}
	return t / float64(len(xs))
}

// Clamp01 clamps x to the unit interval.
func Clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
