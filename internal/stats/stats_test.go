package stats

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/tmerge/tmerge/internal/xrand"
)

func TestBetaMeanAndObserve(t *testing.T) {
	b := NewBeta(1, 1)
	if b.Mean() != 0.5 {
		t.Errorf("uniform prior mean = %v", b.Mean())
	}
	b = b.Observe(true)
	if b.S != 2 || b.F != 1 {
		t.Errorf("after success: %+v", b)
	}
	b = b.Observe(false).Observe(false)
	if b.S != 2 || b.F != 3 {
		t.Errorf("after failures: %+v", b)
	}
	if got := b.Mean(); got != 0.4 {
		t.Errorf("mean = %v, want 0.4", got)
	}
	if got := b.Count(); got != 3 {
		t.Errorf("count = %v, want 3", got)
	}
}

func TestNewBetaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-positive shape")
		}
	}()
	NewBeta(0, 1)
}

func TestHoeffdingRadius(t *testing.T) {
	if !math.IsInf(HoeffdingRadius(10, 0), 1) {
		t.Error("n=0 must give +Inf radius")
	}
	r1 := HoeffdingRadius(100, 10)
	r2 := HoeffdingRadius(100, 40)
	if r2 >= r1 {
		t.Error("radius must shrink with more samples")
	}
	// U = sqrt(2 ln tau / n)
	want := math.Sqrt(2 * math.Log(100) / 10)
	if math.Abs(r1-want) > 1e-12 {
		t.Errorf("radius = %v, want %v", r1, want)
	}
	// Small tau is clamped so the radius stays positive.
	if HoeffdingRadius(1, 5) <= 0 {
		t.Error("radius must be positive for tau=1")
	}
}

func TestPearsonPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if got := Pearson(x, y); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect positive corr = %v", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(x, neg); math.Abs(got+1) > 1e-12 {
		t.Errorf("perfect negative corr = %v", got)
	}
}

func TestPearsonZeroVariance(t *testing.T) {
	if got := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); got != 0 {
		t.Errorf("zero-variance corr = %v", got)
	}
	if got := Pearson(nil, nil); got != 0 {
		t.Errorf("empty corr = %v", got)
	}
}

func TestPearsonIndependent(t *testing.T) {
	r := xrand.New(5)
	n := 20000
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = r.NormFloat64()
		y[i] = r.NormFloat64()
	}
	if got := Pearson(x, y); math.Abs(got) > 0.03 {
		t.Errorf("independent corr = %v", got)
	}
}

func TestPearsonPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Pearson([]float64{1}, []float64{1, 2})
}

func TestSummary(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if got := s.Mean(); got != 5 {
		t.Errorf("mean = %v", got)
	}
	if got := s.Std(); math.Abs(got-2) > 1e-12 {
		t.Errorf("std = %v, want 2", got)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 || s.N() != 0 {
		t.Error("empty summary must be zero-valued")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Interpolation between elements.
	if got := Quantile([]float64{0, 10}, 0.5); got != 5 {
		t.Errorf("interpolated quantile = %v", got)
	}
	// Input is not modified.
	shuffled := []float64{5, 1, 3}
	Quantile(shuffled, 0.5)
	if shuffled[0] != 5 {
		t.Error("Quantile must not mutate input")
	}
}

func TestQuantilePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Quantile(nil, 0.5)
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
}

func TestClamp01(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{-0.5, 0}, {0, 0}, {0.5, 0.5}, {1, 1}, {1.5, 1},
	}
	for _, c := range cases {
		if got := Clamp01(c.in); got != c.want {
			t.Errorf("Clamp01(%v) = %v", c.in, got)
		}
	}
}

// Property: Welford summary matches the naive two-pass computation.
func TestSummaryMatchesNaive(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		var s Summary
		var sum float64
		for _, x := range xs {
			s.Add(x)
			sum += x
		}
		mean := sum / float64(len(xs))
		var m2 float64
		for _, x := range xs {
			m2 += (x - mean) * (x - mean)
		}
		wantVar := m2 / float64(len(xs))
		return math.Abs(s.Mean()-mean) < 1e-6 && math.Abs(s.Var()-wantVar) < 1e-6*(1+wantVar)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Pearson is bounded in [-1, 1] and symmetric.
func TestPearsonProperties(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 3 + int(seed%40)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
			y[i] = 0.3*x[i] + r.NormFloat64()
		}
		p := Pearson(x, y)
		return p >= -1-1e-12 && p <= 1+1e-12 && math.Abs(p-Pearson(y, x)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
