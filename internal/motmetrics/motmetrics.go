// Package motmetrics implements the tracking evaluation machinery the
// paper relies on: derivation of the ground-truth polyonymous pair sets
// P*c (Equation 2), the Polyonymous Rate (§V-G), the identity metrics
// IDF1/IDP/IDR of Ristani et al. used in Figure 12, and CLEAR-MOT-style
// counts (misses, ID switches, fragmentation).
//
// Because the simulator labels every detection with its true object
// (video.BBox.GTObject), box-level correspondence is exact and no IoU
// matching heuristic is needed: a hypothesis box is a true positive for GT
// object g exactly when its GTObject is g. Identity metrics still require
// the global one-to-one track matching, solved with the Hungarian
// algorithm as in the reference implementation.
package motmetrics

import (
	"github.com/tmerge/tmerge/internal/track"
	"github.com/tmerge/tmerge/internal/video"
)

// MinPurity is the fraction of a track's boxes its majority object must
// own for the track to be attributed to that object when deriving
// polyonymous pairs. Tracks below the threshold (heavily contaminated by
// ID switches) are attributed to no object.
const MinPurity = 0.5

// TrackObject returns the GT object a track is attributed to, or -1 when
// the track is too impure to attribute.
func TrackObject(t *video.Track) video.ObjectID {
	obj, purity := t.MajorityObject()
	if purity < MinPurity {
		return -1
	}
	return obj
}

// PolyonymousPairs returns P*c for the pair universe ps: the set of pairs
// whose two tracks are attributed to the same GT object (they are
// fragments of the same ground-truth track).
func PolyonymousPairs(ps *video.PairSet) map[video.PairKey]bool {
	out := make(map[video.PairKey]bool)
	for _, p := range ps.Pairs {
		oi := TrackObject(p.TI)
		oj := TrackObject(p.TJ)
		if oi >= 0 && oi == oj {
			out[p.Key] = true
		}
	}
	return out
}

// PolyonymousRate returns |P*c| / |Pc| (§V-G). Zero for an empty universe.
func PolyonymousRate(ps *video.PairSet) float64 {
	if ps.Len() == 0 {
		return 0
	}
	return float64(len(PolyonymousPairs(ps))) / float64(ps.Len())
}

// ResidualRate returns the Polyonymous Rate after merging: the fraction of
// pairs in ps that are polyonymous and NOT contained in the selected
// candidate set (Polyonymous Rate|TMerge in §V-G).
func ResidualRate(ps *video.PairSet, selected []video.PairKey) float64 {
	if ps.Len() == 0 {
		return 0
	}
	truth := PolyonymousPairs(ps)
	for _, k := range selected {
		delete(truth, k)
	}
	return float64(len(truth)) / float64(ps.Len())
}

// IdentityMetrics holds the identity-based scores of Ristani et al.
type IdentityMetrics struct {
	IDTP, IDFP, IDFN int
	IDF1, IDP, IDR   float64
}

// Identity computes IDF1/IDP/IDR between the ground-truth tracks gt and
// the hypothesis tracks hyp via the global one-to-one track matching that
// maximises identity true positives.
func Identity(gt, hyp *video.TrackSet) IdentityMetrics {
	gts := gt.Sorted()
	hys := hyp.Sorted()

	totalGT := gt.TotalBoxes()
	totalHyp := hyp.TotalBoxes()

	var idtp int
	if len(gts) > 0 && len(hys) > 0 {
		// Overlap[i][j] = #frames hypothesis j's boxes belong to GT i's object
		// while GT i is present at that frame.
		cost := make([][]float64, len(gts))
		for i, g := range gts {
			present := make(map[video.FrameIndex]bool, len(g.Boxes))
			for _, b := range g.Boxes {
				present[b.Frame] = true
			}
			obj := video.ObjectID(-1)
			if len(g.Boxes) > 0 {
				obj = g.Boxes[0].GTObject
			}
			cost[i] = make([]float64, len(hys))
			for j, h := range hys {
				overlap := 0
				for _, b := range h.Boxes {
					if b.GTObject == obj && present[b.Frame] {
						overlap++
					}
				}
				// Hungarian minimises; negate the overlap.
				cost[i][j] = -float64(overlap)
			}
		}
		assign := track.Hungarian(cost)
		for i, j := range assign {
			if j >= 0 {
				idtp += int(-cost[i][j])
			}
		}
	}

	m := IdentityMetrics{
		IDTP: idtp,
		IDFP: totalHyp - idtp,
		IDFN: totalGT - idtp,
	}
	if totalHyp > 0 {
		m.IDP = float64(idtp) / float64(totalHyp)
	}
	if totalGT > 0 {
		m.IDR = float64(idtp) / float64(totalGT)
	}
	if totalGT+totalHyp > 0 {
		m.IDF1 = 2 * float64(idtp) / float64(totalGT+totalHyp)
	}
	return m
}

// CLEARMetrics holds CLEAR-MOT-style event counts.
type CLEARMetrics struct {
	GTBoxes    int // ground-truth boxes
	Misses     int // GT (object, frame) pairs with no hypothesis box
	FalsePos   int // hypothesis boxes attributable to no present GT object
	IDSwitches int // object covered by a different track than previously
	Fragments  int // coverage interruptions of an object
	MOTA       float64
}

// CLEAR computes the CLEAR-MOT counts. Correspondence is exact via
// GTObject labels, so the per-frame matching step of the original metric
// degenerates to a lookup.
func CLEAR(gt, hyp *video.TrackSet) CLEARMetrics {
	// Index hypothesis boxes by (object, frame) -> track ID.
	type of struct {
		o video.ObjectID
		f video.FrameIndex
	}
	cover := make(map[of]video.TrackID)
	hypBoxes := 0
	falsePos := 0
	for _, h := range hyp.Tracks() {
		for _, b := range h.Boxes {
			hypBoxes++
			if b.GTObject < 0 {
				falsePos++
				continue
			}
			cover[of{b.GTObject, b.Frame}] = h.ID
		}
	}

	m := CLEARMetrics{FalsePos: falsePos}
	for _, g := range gt.Tracks() {
		if len(g.Boxes) == 0 {
			continue
		}
		obj := g.Boxes[0].GTObject
		var (
			lastTrack   video.TrackID = -1
			covered     bool
			wasCovered  bool
			everCovered bool
		)
		for _, b := range g.Boxes {
			m.GTBoxes++
			tid, ok := cover[of{obj, b.Frame}]
			covered = ok
			if !ok {
				m.Misses++
			} else {
				if lastTrack >= 0 && tid != lastTrack {
					m.IDSwitches++
				}
				if everCovered && !wasCovered {
					m.Fragments++
				}
				lastTrack = tid
				everCovered = true
			}
			wasCovered = covered
		}
	}
	if m.GTBoxes > 0 {
		m.MOTA = 1 - float64(m.Misses+m.FalsePos+m.IDSwitches)/float64(m.GTBoxes)
	}
	return m
}
