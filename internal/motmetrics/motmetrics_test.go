package motmetrics

import (
	"math"
	"testing"

	"github.com/tmerge/tmerge/internal/geom"
	"github.com/tmerge/tmerge/internal/video"
)

// gtTrack builds a contiguous GT track for object obj over [start, end].
func gtTrack(obj video.ObjectID, start, end video.FrameIndex) *video.Track {
	t := &video.Track{ID: video.TrackID(obj)}
	for f := start; f <= end; f++ {
		t.Boxes = append(t.Boxes, video.BBox{
			ID:       video.BBoxID(int(obj)*100000 + int(f) + 1),
			Frame:    f,
			Rect:     geom.Rect{X: float64(f), W: 10, H: 10},
			GTObject: obj,
		})
	}
	return t
}

// hypTrack builds a hypothesis track labelled with object obj.
func hypTrack(id video.TrackID, obj video.ObjectID, start, end video.FrameIndex) *video.Track {
	t := &video.Track{ID: id}
	for f := start; f <= end; f++ {
		t.Boxes = append(t.Boxes, video.BBox{
			ID:       video.BBoxID(int(id)*1000000 + int(f) + 1),
			Frame:    f,
			Rect:     geom.Rect{X: float64(f), W: 10, H: 10},
			GTObject: obj,
		})
	}
	return t
}

func TestTrackObjectPurity(t *testing.T) {
	tr := hypTrack(1, 5, 0, 9)
	if got := TrackObject(tr); got != 5 {
		t.Errorf("TrackObject = %v", got)
	}
	// Contaminate beyond the purity threshold.
	for i := 0; i < 6; i++ {
		tr.Boxes[i].GTObject = video.ObjectID(100 + i) // all different
	}
	if got := TrackObject(tr); got != -1 {
		t.Errorf("impure track attributed to %v", got)
	}
}

func pairSet(tracks ...*video.Track) *video.PairSet {
	w := video.Window{Start: 0, End: 10000}
	return video.BuildPairSet(w, tracks, nil)
}

func TestPolyonymousPairs(t *testing.T) {
	// Tracks 1 and 2 are fragments of object 7; track 3 is object 8.
	a := hypTrack(1, 7, 0, 10)
	b := hypTrack(2, 7, 20, 30)
	c := hypTrack(3, 8, 0, 30)
	ps := pairSet(a, b, c)
	got := PolyonymousPairs(ps)
	if len(got) != 1 {
		t.Fatalf("got %d polyonymous pairs, want 1", len(got))
	}
	if !got[video.MakePairKey(1, 2)] {
		t.Error("pair (1,2) must be polyonymous")
	}
}

func TestPolyonymousRate(t *testing.T) {
	a := hypTrack(1, 7, 0, 10)
	b := hypTrack(2, 7, 20, 30)
	c := hypTrack(3, 8, 0, 30)
	ps := pairSet(a, b, c) // 3 pairs, 1 polyonymous
	if got := PolyonymousRate(ps); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Errorf("rate = %v, want 1/3", got)
	}
	empty := pairSet()
	if got := PolyonymousRate(empty); got != 0 {
		t.Errorf("empty rate = %v", got)
	}
}

func TestResidualRate(t *testing.T) {
	a := hypTrack(1, 7, 0, 10)
	b := hypTrack(2, 7, 20, 30)
	c := hypTrack(3, 8, 0, 30)
	ps := pairSet(a, b, c)
	// Selecting the true pair removes it from the residual.
	if got := ResidualRate(ps, []video.PairKey{video.MakePairKey(1, 2)}); got != 0 {
		t.Errorf("residual = %v, want 0", got)
	}
	// Selecting an unrelated pair leaves the residual unchanged.
	if got := ResidualRate(ps, []video.PairKey{video.MakePairKey(1, 3)}); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Errorf("residual = %v, want 1/3", got)
	}
}

func TestIdentityPerfect(t *testing.T) {
	gt := video.NewTrackSet([]*video.Track{gtTrack(1, 0, 9), gtTrack(2, 0, 9)})
	hyp := video.NewTrackSet([]*video.Track{hypTrack(10, 1, 0, 9), hypTrack(11, 2, 0, 9)})
	m := Identity(gt, hyp)
	if m.IDF1 != 1 || m.IDP != 1 || m.IDR != 1 {
		t.Errorf("perfect identity = %+v", m)
	}
	if m.IDFP != 0 || m.IDFN != 0 || m.IDTP != 20 {
		t.Errorf("counts = %+v", m)
	}
}

func TestIdentityFragmentationPenalty(t *testing.T) {
	// One GT object covered by two fragments: only the larger fragment
	// counts as IDTP under one-to-one matching.
	gt := video.NewTrackSet([]*video.Track{gtTrack(1, 0, 9)})
	frag := video.NewTrackSet([]*video.Track{
		hypTrack(10, 1, 0, 5), // 6 boxes
		hypTrack(11, 1, 6, 9), // 4 boxes
	})
	m := Identity(gt, frag)
	if m.IDTP != 6 {
		t.Errorf("IDTP = %d, want 6 (larger fragment)", m.IDTP)
	}
	if m.IDFN != 4 || m.IDFP != 4 {
		t.Errorf("IDFN/IDFP = %d/%d", m.IDFN, m.IDFP)
	}
	if m.IDF1 >= 1 {
		t.Error("fragmentation must lower IDF1")
	}

	// Merging the fragments restores IDF1 = 1.
	merged := video.NewTrackSet([]*video.Track{hypTrack(10, 1, 0, 9)})
	if got := Identity(gt, merged); got.IDF1 != 1 {
		t.Errorf("merged IDF1 = %v", got.IDF1)
	}
}

func TestIdentityEmptyHypothesis(t *testing.T) {
	gt := video.NewTrackSet([]*video.Track{gtTrack(1, 0, 9)})
	m := Identity(gt, video.NewTrackSet(nil))
	if m.IDR != 0 || m.IDF1 != 0 {
		t.Errorf("empty hypothesis = %+v", m)
	}
	if m.IDFN != 10 {
		t.Errorf("IDFN = %d", m.IDFN)
	}
}

func TestCLEARPerfect(t *testing.T) {
	gt := video.NewTrackSet([]*video.Track{gtTrack(1, 0, 9)})
	hyp := video.NewTrackSet([]*video.Track{hypTrack(10, 1, 0, 9)})
	m := CLEAR(gt, hyp)
	if m.MOTA != 1 || m.Misses != 0 || m.IDSwitches != 0 || m.Fragments != 0 {
		t.Errorf("perfect CLEAR = %+v", m)
	}
}

func TestCLEARCountsEvents(t *testing.T) {
	gt := video.NewTrackSet([]*video.Track{gtTrack(1, 0, 9)})
	// Coverage: frames 0-3 by track 10, gap at 4, frames 5-9 by track 11:
	// 1 miss, 1 fragmentation, 1 ID switch.
	hyp := video.NewTrackSet([]*video.Track{
		hypTrack(10, 1, 0, 3),
		hypTrack(11, 1, 5, 9),
	})
	m := CLEAR(gt, hyp)
	if m.Misses != 1 {
		t.Errorf("misses = %d", m.Misses)
	}
	if m.Fragments != 1 {
		t.Errorf("fragments = %d", m.Fragments)
	}
	if m.IDSwitches != 1 {
		t.Errorf("ID switches = %d", m.IDSwitches)
	}
	wantMOTA := 1 - float64(1+0+1)/10
	if math.Abs(m.MOTA-wantMOTA) > 1e-12 {
		t.Errorf("MOTA = %v, want %v", m.MOTA, wantMOTA)
	}
}

func TestCLEARFalsePositives(t *testing.T) {
	gt := video.NewTrackSet([]*video.Track{gtTrack(1, 0, 9)})
	fp := hypTrack(12, -1, 0, 4) // boxes with no GT object
	hyp := video.NewTrackSet([]*video.Track{hypTrack(10, 1, 0, 9), fp})
	m := CLEAR(gt, hyp)
	if m.FalsePos != 5 {
		t.Errorf("false positives = %d", m.FalsePos)
	}
}
