package query

import (
	"testing"

	"github.com/tmerge/tmerge/internal/core"
	"github.com/tmerge/tmerge/internal/geom"
	"github.com/tmerge/tmerge/internal/trackdb"
	"github.com/tmerge/tmerge/internal/video"
	"github.com/tmerge/tmerge/internal/xrand"
)

// TestHistoricalAnswerMatchesBatch drives a randomized merged view and
// checks, at several cuts, that bootstrapping a fresh operator over the
// view (HistoricalAnswer — the AsOf consumption pattern) reproduces the
// batch answer over the equivalently clipped, merged track set for
// every operator shape.
func TestHistoricalAnswerMatchesBatch(t *testing.T) {
	rng := xrand.New(77)
	const n, maxFrame = 12, 400
	tracks := make([]*video.Track, n)
	for i := range tracks {
		start := video.FrameIndex(rng.Intn(maxFrame / 2))
		end := start + video.FrameIndex(20+rng.Intn(maxFrame/2))
		tracks[i] = span(video.TrackID(i), video.ObjectID(rng.Intn(3)), start, end)
	}
	region := geom.Rect{X: 0, Y: 0, W: 500, H: 500}
	freshOps := func() []Incremental {
		return []Incremental{
			NewIncCount(CountQuery{MinFrames: 60}),
			NewIncRegion(RegionQuery{Region: region, MinFrames: 40}),
			NewIncCoOccur(CoOccurQuery{GroupSize: 2, MinFrames: 30}),
			NewIncPrecedes(PrecedesQuery{MinGap: 20, MinOverlap: 10}),
		}
	}
	countQ := CountQuery{MinFrames: 60}
	regionQ := RegionQuery{Region: region, MinFrames: 40}
	coQ := CoOccurQuery{GroupSize: 2, MinFrames: 30}
	preQ := PrecedesQuery{MinGap: 20, MinOverlap: 10}
	batch := []func(ts *video.TrackSet) [][]video.TrackID{
		func(ts *video.TrackSet) [][]video.TrackID { return idRowsOf(countQ.Answer(ts)) },
		func(ts *video.TrackSet) [][]video.TrackID { return idRowsOf(regionQ.Answer(ts)) },
		func(ts *video.TrackSet) [][]video.TrackID { return groupRowsOf(coQ.Answer(ts)) },
		func(ts *video.TrackSet) [][]video.TrackID { return pairRowsOf(preQ.Answer(ts)) },
	}

	v := trackdb.NewLiveView()
	m := core.NewMerger()
	fed := make([]int, n)
	cursor := 0
	for _, end := range []video.FrameIndex{100, 200, 300, maxFrame} {
		for i, tr := range tracks {
			for fed[i] < len(tr.Boxes) && tr.Boxes[fed[i]].Frame <= end {
				v.Extend(tr.ID, tr.Boxes[fed[i]])
				fed[i]++
			}
		}
		for k := 0; k < 2; k++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b && fed[a] > 0 && fed[b] > 0 {
				m.Merge(video.MakePairKey(video.TrackID(a), video.TrackID(b)))
			}
		}
		if err := v.ApplyEvents(m.EventsSince(cursor)); err != nil {
			t.Fatal(err)
		}
		cursor = m.EventCount()
		v.Flush()

		merged := m.Apply(video.NewTrackSet(clipTracks(tracks, end)))
		for i, op := range freshOps() {
			got := HistoricalAnswer(v, op)
			want := batch[i](merged)
			if !rowsEqual(got, want) {
				t.Fatalf("cut %d op %s: historical %v, batch %v", end, op.Kind(), got, want)
			}
		}
	}
}
