package query

import (
	"sort"

	"github.com/tmerge/tmerge/internal/geom"
	"github.com/tmerge/tmerge/internal/motmetrics"
	"github.com/tmerge/tmerge/internal/video"
)

// RegionQuery finds objects that dwell inside a frame region for at least
// MinFrames frames — the spatially constrained track queries of MIRIS
// (Bastani et al.) and the temporal-query framework of Chen et al. that
// the paper positions TMerge under. A box counts as "inside" when its
// center lies in the region.
type RegionQuery struct {
	Region    geom.Rect
	MinFrames int // minimum number of boxes inside the region
}

// Answer returns the IDs of tracks with at least MinFrames boxes inside
// the region, sorted.
func (q RegionQuery) Answer(ts *video.TrackSet) []video.TrackID {
	var out []video.TrackID
	for _, t := range ts.Tracks() {
		if q.dwell(t) >= q.MinFrames {
			out = append(out, t.ID)
		}
	}
	video.SortTrackIDs(out)
	return out
}

// Count returns the query's answer cardinality without building the
// answer slice — the allocation-free counterpart of Answer for
// aggregate-only callers.
func (q RegionQuery) Count(ts *video.TrackSet) int {
	n := 0
	for _, t := range ts.Tracks() {
		if q.dwell(t) >= q.MinFrames {
			n++
		}
	}
	return n
}

func (q RegionQuery) dwell(t *video.Track) int {
	n := 0
	for _, b := range t.Boxes {
		if q.Region.Contains(b.Rect.Center()) {
			n++
		}
	}
	return n
}

// Recall evaluates the query against ground truth, object-wise: the
// fraction of qualifying GT objects matched by some answered hypothesis
// track attributed to that object. Fragmentation splits a long dwell into
// short per-fragment dwells, causing misses that merging repairs.
func (q RegionQuery) Recall(gt, hyp *video.TrackSet) float64 {
	want := make(map[video.ObjectID]bool)
	for _, t := range gt.Tracks() {
		if q.dwell(t) >= q.MinFrames {
			if obj := motmetrics.TrackObject(t); obj >= 0 {
				want[obj] = true
			}
		}
	}
	if len(want) == 0 {
		return 1
	}
	found := make(map[video.ObjectID]bool)
	for _, id := range q.Answer(hyp) {
		if obj := motmetrics.TrackObject(hyp.Get(id)); obj >= 0 && want[obj] {
			found[obj] = true
		}
	}
	return float64(len(found)) / float64(len(want))
}

// PrecedesQuery finds ordered pairs of objects (a, b) where a enters the
// scene at least MinGap frames before b, and the two are then jointly
// present for at least MinOverlap frames — the sequenced-appearance
// pattern of temporal video queries ("a truck arrives, then a person
// approaches it").
type PrecedesQuery struct {
	MinGap     int // frames by which a's entry must precede b's
	MinOverlap int // minimum joint presence after b enters
}

// OrderedPair is an answered (first, second) track pair.
type OrderedPair struct {
	First, Second video.TrackID
}

// Answer returns every qualifying ordered pair, sorted.
func (q PrecedesQuery) Answer(ts *video.TrackSet) []OrderedPair {
	tracks := ts.Sorted()
	var out []OrderedPair
	for _, a := range tracks {
		for _, b := range tracks {
			if a.ID == b.ID {
				continue
			}
			if int(b.StartFrame()-a.StartFrame()) < q.MinGap {
				continue
			}
			lo := b.StartFrame()
			hi := a.EndFrame()
			if b.EndFrame() < hi {
				hi = b.EndFrame()
			}
			if int(hi-lo)+1 >= q.MinOverlap {
				out = append(out, OrderedPair{First: a.ID, Second: b.ID})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].First != out[j].First {
			return out[i].First < out[j].First
		}
		return out[i].Second < out[j].Second
	})
	return out
}

// Recall evaluates the query against ground truth over object pairs.
// Fragmentation manufactures spurious "entries" mid-scene and truncates
// overlaps, so both false orderings and missed pairs occur; recall counts
// the GT orderings recovered.
func (q PrecedesQuery) Recall(gt, hyp *video.TrackSet) float64 {
	want := make(map[[2]video.ObjectID]bool)
	for _, p := range q.Answer(gt) {
		a := motmetrics.TrackObject(gt.Get(p.First))
		b := motmetrics.TrackObject(gt.Get(p.Second))
		if a >= 0 && b >= 0 && a != b {
			want[[2]video.ObjectID{a, b}] = true
		}
	}
	if len(want) == 0 {
		return 1
	}
	found := 0
	seen := make(map[[2]video.ObjectID]bool)
	for _, p := range q.Answer(hyp) {
		a := motmetrics.TrackObject(hyp.Get(p.First))
		b := motmetrics.TrackObject(hyp.Get(p.Second))
		if a < 0 || b < 0 || a == b {
			continue
		}
		key := [2]video.ObjectID{a, b}
		if seen[key] {
			continue
		}
		seen[key] = true
		if want[key] {
			found++
		}
	}
	return float64(found) / float64(len(want))
}
