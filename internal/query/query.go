// Package query implements the downstream video query engine of §V-H: the
// Count and Co-occurring Objects queries evaluated over track metadata,
// plus recall computation against the simulator's exact ground truth. The
// engine consumes exactly the metadata schema the merger emits, so it
// measures end-to-end how much track fragmentation hurts query accuracy
// and how much merging recovers.
//
// Both queries interpret a track as a presence interval
// [StartFrame, EndFrame]: an object is "in the scene" from its first to
// its last detection, which is how track-metadata query systems reason
// about visibility (isolated missed detections inside a track do not make
// the object disappear). Track fragmentation shortens these intervals —
// exactly the failure mode the paper's Figure 13 measures.
package query

import (
	"sort"
	"strconv"
	"strings"

	"github.com/tmerge/tmerge/internal/motmetrics"
	"github.com/tmerge/tmerge/internal/video"
)

// CountQuery counts objects that remain visible for at least MinFrames
// frames — the paper's example is detecting congestion or long-dwelling
// objects ("count the number of objects across more than e.g. 200
// frames").
type CountQuery struct {
	// MinFrames is the minimum presence span (frames) an object must have.
	MinFrames int
}

// matches reports whether a track satisfies the query.
func (q CountQuery) matches(t *video.Track) bool { return t.Span() >= q.MinFrames }

// Answer returns the IDs of the tracks satisfying the query, sorted.
func (q CountQuery) Answer(ts *video.TrackSet) []video.TrackID {
	var out []video.TrackID
	for _, t := range ts.Tracks() {
		if q.matches(t) {
			out = append(out, t.ID)
		}
	}
	video.SortTrackIDs(out)
	return out
}

// Count returns the query's answer cardinality. It only counts — no
// answer slice is built — so the hot aggregate path of the streaming
// engine stays allocation-free.
func (q CountQuery) Count(ts *video.TrackSet) int {
	n := 0
	for _, t := range ts.Tracks() {
		if q.matches(t) {
			n++
		}
	}
	return n
}

// Recall evaluates the query over hypothesis tracks against ground truth:
// the fraction of qualifying GT objects for which some answered hypothesis
// track is attributed to that object. Fragmentation causes misses — a GT
// object visible 250 frames split into two 125-frame tracks disappears
// from a MinFrames=200 answer.
func (q CountQuery) Recall(gt, hyp *video.TrackSet) float64 {
	want := make(map[video.ObjectID]bool)
	for _, t := range gt.Tracks() {
		if q.matches(t) {
			if obj := motmetrics.TrackObject(t); obj >= 0 {
				want[obj] = true
			}
		}
	}
	if len(want) == 0 {
		return 1
	}
	found := make(map[video.ObjectID]bool)
	for _, id := range q.Answer(hyp) {
		if obj := motmetrics.TrackObject(hyp.Get(id)); obj >= 0 && want[obj] {
			found[obj] = true
		}
	}
	return float64(len(found)) / float64(len(want))
}

// CoOccurQuery finds groups of GroupSize objects jointly present for at
// least MinFrames frames — the paper's "same three objects appearing
// jointly for at least 50 frames" query.
type CoOccurQuery struct {
	GroupSize int // number of objects that must co-occur (the paper uses 3)
	MinFrames int // minimum joint-presence duration in frames
	// Classes optionally constrains the group to this exact multiset of
	// classes (order-insensitive) — the paper's "the same two persons and
	// one vehicle appear jointly". When set, its length must equal
	// GroupSize. Nil accepts any classes.
	Classes []video.ClassID
}

// Group is a sorted set of track IDs that co-occur.
type Group []video.TrackID

// Answer returns all qualifying groups over the track set, each sorted by
// ID, in deterministic order. Complexity is bounded by the combinations of
// tracks whose own span reaches MinFrames; joint presence is interval
// intersection, so candidate enumeration prunes on the running overlap.
func (q CoOccurQuery) Answer(ts *video.TrackSet) []Group {
	if q.GroupSize < 2 {
		panic("query: CoOccurQuery.GroupSize must be >= 2")
	}
	if q.Classes != nil && len(q.Classes) != q.GroupSize {
		panic("query: CoOccurQuery.Classes length must equal GroupSize")
	}
	var tracks []*video.Track
	for _, t := range ts.Sorted() {
		if t.Span() >= q.MinFrames {
			tracks = append(tracks, t)
		}
	}
	var out []Group
	group := make([]*video.Track, 0, q.GroupSize)
	var recurse func(start int, lo, hi video.FrameIndex)
	recurse = func(start int, lo, hi video.FrameIndex) {
		if len(group) == q.GroupSize {
			if !q.classesMatch(group) {
				return
			}
			g := make(Group, q.GroupSize)
			for i, t := range group {
				g[i] = t.ID
			}
			video.SortTrackIDs(g)
			out = append(out, g)
			return
		}
		for i := start; i < len(tracks); i++ {
			t := tracks[i]
			nlo, nhi := lo, hi
			if len(group) == 0 {
				nlo, nhi = t.StartFrame(), t.EndFrame()
			} else {
				if s := t.StartFrame(); s > nlo {
					nlo = s
				}
				if e := t.EndFrame(); e < nhi {
					nhi = e
				}
			}
			if int(nhi-nlo)+1 < q.MinFrames {
				continue
			}
			group = append(group, t)
			recurse(i+1, nlo, nhi)
			group = group[:len(group)-1]
		}
	}
	recurse(0, 0, 0)
	sort.Slice(out, func(i, j int) bool { return lessGroup(out[i], out[j]) })
	return out
}

// classesMatch reports whether the group's class multiset equals the
// query's (nil matches anything).
func (q CoOccurQuery) classesMatch(group []*video.Track) bool {
	if q.Classes == nil {
		return true
	}
	want := make(map[video.ClassID]int, len(q.Classes))
	for _, c := range q.Classes {
		want[c]++
	}
	for _, t := range group {
		c := t.Class()
		if want[c] == 0 {
			return false
		}
		want[c]--
	}
	return true
}

// Recall evaluates co-occurrence recall against ground truth: a GT object
// group is found when some answered hypothesis group maps, track by track,
// onto exactly that object set.
func (q CoOccurQuery) Recall(gt, hyp *video.TrackSet) float64 {
	want := make(map[string]bool)
	for _, g := range q.Answer(gt) {
		if k, ok := objectKey(gt, g); ok {
			want[k] = true
		}
	}
	if len(want) == 0 {
		return 1
	}
	found := 0
	seen := make(map[string]bool)
	for _, g := range q.Answer(hyp) {
		k, ok := objectKey(hyp, g)
		if !ok || seen[k] {
			continue
		}
		seen[k] = true
		if want[k] {
			found++
		}
	}
	return float64(found) / float64(len(want))
}

// objectKey maps a group of tracks to a canonical GT object set key. It
// fails when any member track cannot be attributed or when two members map
// to the same object.
func objectKey(ts *video.TrackSet, g Group) (string, bool) {
	objs := make([]int, 0, len(g))
	for _, id := range g {
		obj := motmetrics.TrackObject(ts.Get(id))
		if obj < 0 {
			return "", false
		}
		objs = append(objs, int(obj))
	}
	sort.Ints(objs)
	for i := 1; i < len(objs); i++ {
		if objs[i] == objs[i-1] {
			return "", false
		}
	}
	parts := make([]string, len(objs))
	for i, o := range objs {
		parts[i] = strconv.Itoa(o)
	}
	return strings.Join(parts, ","), true
}

func lessGroup(a, b Group) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
