package query

import (
	"strings"
	"testing"

	"github.com/tmerge/tmerge/internal/core"
	"github.com/tmerge/tmerge/internal/geom"
	"github.com/tmerge/tmerge/internal/trackdb"
	"github.com/tmerge/tmerge/internal/video"
	"github.com/tmerge/tmerge/internal/xrand"
)

// The live view is the production TrackView implementation.
var _ TrackView = (*trackdb.LiveView)(nil)

// rowsEqual compares two row sets element-wise.
func rowsEqual(a, b [][]video.TrackID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func idRowsOf(ids []video.TrackID) [][]video.TrackID {
	out := make([][]video.TrackID, len(ids))
	for i, id := range ids {
		out[i] = []video.TrackID{id}
	}
	return out
}

func groupRowsOf(groups []Group) [][]video.TrackID {
	out := make([][]video.TrackID, len(groups))
	for i, g := range groups {
		out[i] = []video.TrackID(g)
	}
	return out
}

func pairRowsOf(pairs []OrderedPair) [][]video.TrackID {
	out := make([][]video.TrackID, len(pairs))
	for i, p := range pairs {
		out[i] = []video.TrackID{p.First, p.Second}
	}
	return out
}

// clipTracks truncates every track to boxes at or before end, dropping
// tracks that have not started — the batch-side equivalent of what the
// stream has revealed so far.
func clipTracks(tracks []*video.Track, end video.FrameIndex) []*video.Track {
	var out []*video.Track
	for _, tr := range tracks {
		c := &video.Track{ID: tr.ID}
		for _, b := range tr.Boxes {
			if b.Frame <= end {
				c.Boxes = append(c.Boxes, b)
			}
		}
		if len(c.Boxes) > 0 {
			out = append(out, c)
		}
	}
	return out
}

// folder replays a delta stream from the empty set, checking the
// per-batch ordering contract as it goes.
type folder struct {
	rows map[string][]video.TrackID
}

func newFolder() *folder { return &folder{rows: make(map[string][]video.TrackID)} }

func (f *folder) fold(t *testing.T, deltas []Delta) {
	t.Helper()
	seenAssert := false
	for i, d := range deltas {
		key := groupKey(d.Row)
		switch d.Kind {
		case Assert:
			seenAssert = true
			if _, dup := f.rows[key]; dup {
				t.Fatalf("delta %d asserts %v twice", i, d.Row)
			}
			f.rows[key] = append([]video.TrackID(nil), d.Row...)
		case Retract:
			if seenAssert {
				t.Fatalf("delta %d retracts %v after an assert in the same batch", i, d.Row)
			}
			if _, held := f.rows[key]; !held {
				t.Fatalf("delta %d retracts unknown row %v", i, d.Row)
			}
			delete(f.rows, key)
		default:
			t.Fatalf("delta %d has kind %v", i, d.Kind)
		}
	}
}

func (f *folder) matches(results [][]video.TrackID) bool {
	if len(f.rows) != len(results) {
		return false
	}
	for _, row := range results {
		held, ok := f.rows[groupKey(row)]
		if !ok || len(held) != len(row) {
			return false
		}
	}
	return true
}

// TestIncrementalOperatorsMatchBatchUnderStreaming is the engine's core
// guarantee: streaming extensions and merge events through a live view
// and folding the per-window deltas yields, at every step, exactly the
// batch Answer over the batch-merged clip of everything revealed so far
// — and the delta stream replayed from empty reproduces Results.
func TestIncrementalOperatorsMatchBatchUnderStreaming(t *testing.T) {
	rng := xrand.New(17)
	region := geom.Rect{X: 0, Y: 0, W: 60, H: 60}

	countQ := CountQuery{MinFrames: 20}
	zeroQ := CountQuery{MinFrames: 0} // MinFrames <= 0 admits every track
	regionQ := RegionQuery{Region: region, MinFrames: 8}
	coQ := CoOccurQuery{GroupSize: 2, MinFrames: 15}
	coClassQ := CoOccurQuery{GroupSize: 2, MinFrames: 10, Classes: []video.ClassID{0, 1}}
	preQ := PrecedesQuery{MinGap: 5, MinOverlap: 5}

	for trial := 0; trial < 12; trial++ {
		n := 5 + rng.Intn(8)
		var tracks []*video.Track
		maxFrame := video.FrameIndex(0)
		for i := 0; i < n; i++ {
			start := video.FrameIndex(rng.Intn(40))
			spanLen := 1 + rng.Intn(60)
			tr := &video.Track{ID: video.TrackID(i)}
			for f := start; f < start+video.FrameIndex(spanLen); f++ {
				if rng.Float64() < 0.15 {
					continue
				}
				tr.Boxes = append(tr.Boxes, video.BBox{
					ID:    video.BBoxID(i*10000 + int(f)),
					Frame: f,
					Rect:  geom.Rect{X: rng.Float64() * 100, Y: rng.Float64() * 100, W: 10, H: 10},
					Class: video.ClassID(rng.Intn(3)),
				})
			}
			if len(tr.Boxes) == 0 {
				tr.Boxes = append(tr.Boxes, video.BBox{ID: video.BBoxID(i * 10000), Frame: start, Rect: geom.Rect{X: 1, Y: 1, W: 10, H: 10}})
			}
			if e := tr.EndFrame(); e > maxFrame {
				maxFrame = e
			}
			tracks = append(tracks, tr)
		}

		ops := []Incremental{
			NewIncCount(countQ),
			NewIncCount(zeroQ),
			NewIncRegion(regionQ),
			NewIncCoOccur(coQ),
			NewIncCoOccur(coClassQ),
			NewIncPrecedes(preQ),
		}
		batch := []func(ts *video.TrackSet) [][]video.TrackID{
			func(ts *video.TrackSet) [][]video.TrackID { return idRowsOf(countQ.Answer(ts)) },
			func(ts *video.TrackSet) [][]video.TrackID { return idRowsOf(zeroQ.Answer(ts)) },
			func(ts *video.TrackSet) [][]video.TrackID { return idRowsOf(regionQ.Answer(ts)) },
			func(ts *video.TrackSet) [][]video.TrackID { return groupRowsOf(coQ.Answer(ts)) },
			func(ts *video.TrackSet) [][]video.TrackID { return groupRowsOf(coClassQ.Answer(ts)) },
			func(ts *video.TrackSet) [][]video.TrackID { return pairRowsOf(preQ.Answer(ts)) },
		}
		folders := make([]*folder, len(ops))
		for i := range folders {
			folders[i] = newFolder()
		}

		v := trackdb.NewLiveView()
		m := core.NewMerger()
		fed := make([]int, n)
		cursor := 0
		step := 1 + int(maxFrame)/4
		for end := video.FrameIndex(step); ; end += video.FrameIndex(step) {
			for i, tr := range tracks {
				for fed[i] < len(tr.Boxes) && tr.Boxes[fed[i]].Frame <= end {
					v.Extend(tr.ID, tr.Boxes[fed[i]])
					fed[i]++
				}
			}
			for k := rng.Intn(3); k > 0; k-- {
				a, b := rng.Intn(n), rng.Intn(n)
				if a != b && fed[a] > 0 && fed[b] > 0 {
					m.Merge(video.MakePairKey(video.TrackID(a), video.TrackID(b)))
				}
			}
			if err := v.ApplyEvents(m.EventsSince(cursor)); err != nil {
				t.Fatal(err)
			}
			cursor = m.EventCount()
			changed, removed := v.Flush()

			clipped := clipTracks(tracks, end)
			merged := m.Apply(video.NewTrackSet(clipped))
			for i, op := range ops {
				deltas := op.Apply(v, changed, removed)
				folders[i].fold(t, deltas)
				got := op.Results()
				want := batch[i](merged)
				if !rowsEqual(got, want) {
					t.Fatalf("trial %d end %d op %s: incremental %v, batch %v", trial, end, op.Kind(), got, want)
				}
				if !folders[i].matches(got) {
					t.Fatalf("trial %d end %d op %s: folded deltas diverge from Results", trial, end, op.Kind())
				}
			}
			if end >= maxFrame {
				break
			}
		}
	}
}

// TestIncrementalRetractionOnMerge pins the delta semantics of the
// merge-coalescing case for every operator shape.
func TestIncrementalRetractionOnMerge(t *testing.T) {
	// Two long tracks that each qualify alone, then merge into one.
	build := func() (*trackdb.LiveView, *core.Merger) {
		v := trackdb.NewLiveView()
		for _, tr := range []*video.Track{span(1, 1, 0, 199), span(5, 5, 100, 299)} {
			for _, b := range tr.Boxes {
				v.Extend(tr.ID, b)
			}
		}
		return v, core.NewMerger()
	}

	t.Run("count", func(t *testing.T) {
		v, m := build()
		op := NewIncCount(CountQuery{MinFrames: 50})
		changed, removed := v.Flush()
		if got := op.Apply(v, changed, removed); len(got) != 2 || got[0].Kind != Assert || got[1].Kind != Assert {
			t.Fatalf("bootstrap deltas = %v", got)
		}
		m.Merge(video.MakePairKey(1, 5))
		if err := v.ApplyEvents(m.Events()); err != nil {
			t.Fatal(err)
		}
		changed, removed = v.Flush()
		got := op.Apply(v, changed, removed)
		// Identity 5 was coalesced into 1: exactly one retraction, and 1
		// still qualifies so no re-assert.
		if len(got) != 1 || got[0].Kind != Retract || got[0].Row[0] != 5 {
			t.Fatalf("merge deltas = %v, want [retract 5]", got)
		}
		if op.Count() != 1 {
			t.Errorf("Count = %d", op.Count())
		}
	})

	t.Run("count-assert-after-merge", func(t *testing.T) {
		// Neither fragment qualifies alone; the merged identity does.
		v := trackdb.NewLiveView()
		for _, tr := range []*video.Track{span(1, 1, 0, 99), span(5, 5, 200, 299)} {
			for _, b := range tr.Boxes {
				v.Extend(tr.ID, b)
			}
		}
		op := NewIncCount(CountQuery{MinFrames: 150})
		changed, removed := v.Flush()
		if got := op.Apply(v, changed, removed); got != nil {
			t.Fatalf("bootstrap deltas = %v, want none", got)
		}
		m := core.NewMerger()
		m.Merge(video.MakePairKey(1, 5))
		if err := v.ApplyEvents(m.Events()); err != nil {
			t.Fatal(err)
		}
		changed, removed = v.Flush()
		got := op.Apply(v, changed, removed)
		if len(got) != 1 || got[0].Kind != Assert || got[0].Row[0] != 1 {
			t.Fatalf("merge deltas = %v, want [assert 1]", got)
		}
	})

	t.Run("cooccur", func(t *testing.T) {
		v, m := build()
		op := NewIncCoOccur(CoOccurQuery{GroupSize: 2, MinFrames: 50})
		changed, removed := v.Flush()
		// Joint presence 100..199 = 100 frames: the pair {1,5} qualifies.
		if got := op.Apply(v, changed, removed); len(got) != 1 || got[0].Kind != Assert {
			t.Fatalf("bootstrap deltas = %v", got)
		}
		m.Merge(video.MakePairKey(1, 5))
		if err := v.ApplyEvents(m.Events()); err != nil {
			t.Fatal(err)
		}
		changed, removed = v.Flush()
		got := op.Apply(v, changed, removed)
		// The two identities collapsed: a group cannot contain one track.
		if len(got) != 1 || got[0].Kind != Retract || groupKey(got[0].Row) != "1,5" {
			t.Fatalf("merge deltas = %v, want [retract (1,5)]", got)
		}
		if len(op.Groups()) != 0 {
			t.Errorf("Groups = %v", op.Groups())
		}
	})

	t.Run("precedes", func(t *testing.T) {
		v, m := build()
		op := NewIncPrecedes(PrecedesQuery{MinGap: 100, MinOverlap: 50})
		changed, removed := v.Flush()
		// 5 enters 100 frames after 1 and overlaps it 100 frames.
		if got := op.Apply(v, changed, removed); len(got) != 1 || got[0].Kind != Assert ||
			got[0].Row[0] != 1 || got[0].Row[1] != 5 {
			t.Fatalf("bootstrap deltas = %v", got)
		}
		m.Merge(video.MakePairKey(1, 5))
		if err := v.ApplyEvents(m.Events()); err != nil {
			t.Fatal(err)
		}
		changed, removed = v.Flush()
		got := op.Apply(v, changed, removed)
		if len(got) != 1 || got[0].Kind != Retract {
			t.Fatalf("merge deltas = %v, want one retraction", got)
		}
		if len(op.Pairs()) != 0 {
			t.Errorf("Pairs = %v", op.Pairs())
		}
	})
}

func TestNewIncCoOccurPanics(t *testing.T) {
	for name, q := range map[string]CoOccurQuery{
		"group size 1":     {GroupSize: 1, MinFrames: 10},
		"classes mismatch": {GroupSize: 3, MinFrames: 10, Classes: []video.ClassID{0}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: NewIncCoOccur did not panic", name)
				}
			}()
			NewIncCoOccur(q)
		}()
	}
}

func TestOperatorStateRoundTrip(t *testing.T) {
	// Drive each operator through a bootstrap and a merge, snapshot, and
	// restore into a fresh identically configured operator.
	v := trackdb.NewLiveView()
	for _, tr := range []*video.Track{span(1, 1, 0, 199), span(5, 5, 100, 299), span(9, 9, 150, 399)} {
		for _, b := range tr.Boxes {
			v.Extend(tr.ID, b)
		}
	}
	m := core.NewMerger()

	countQ := CountQuery{MinFrames: 50}
	regionQ := RegionQuery{Region: geom.Rect{X: 0, Y: 0, W: 500, H: 500}, MinFrames: 50}
	coQ := CoOccurQuery{GroupSize: 2, MinFrames: 50}
	preQ := PrecedesQuery{MinGap: 100, MinOverlap: 50}
	ops := []Incremental{NewIncCount(countQ), NewIncRegion(regionQ), NewIncCoOccur(coQ), NewIncPrecedes(preQ)}
	fresh := func() []Incremental {
		return []Incremental{NewIncCount(countQ), NewIncRegion(regionQ), NewIncCoOccur(coQ), NewIncPrecedes(preQ)}
	}

	changed, removed := v.Flush()
	for _, op := range ops {
		op.Apply(v, changed, removed)
	}
	m.Merge(video.MakePairKey(1, 5))
	if err := v.ApplyEvents(m.Events()); err != nil {
		t.Fatal(err)
	}
	changed, removed = v.Flush()
	for _, op := range ops {
		op.Apply(v, changed, removed)
	}

	for i, op := range ops {
		st := op.State()
		if st.Kind != op.Kind() {
			t.Errorf("%s: state kind %q", op.Kind(), st.Kind)
		}
		r := fresh()[i]
		if err := r.RestoreState(st); err != nil {
			t.Fatalf("%s: restore: %v", op.Kind(), err)
		}
		if !rowsEqual(r.Results(), op.Results()) {
			t.Errorf("%s: restored Results %v, want %v", op.Kind(), r.Results(), op.Results())
		}
		if r.Stats() != op.Stats() {
			t.Errorf("%s: restored Stats %+v, want %+v", op.Kind(), r.Stats(), op.Stats())
		}
	}
}

func TestOperatorRestoreRejections(t *testing.T) {
	countQ := CountQuery{MinFrames: 50}
	goodCount := OperatorState{Kind: "count", Params: "{MinFrames:50}"}

	cases := map[string]struct {
		op Incremental
		st OperatorState
	}{
		"kind mismatch": {NewIncRegion(RegionQuery{MinFrames: 50}), goodCount},
		"params mismatch": {NewIncCount(CountQuery{MinFrames: 60}),
			goodCount},
		"negative counters": {NewIncCount(countQ),
			OperatorState{Kind: "count", Params: "{MinFrames:50}", Stats: OpStats{Scanned: -1}}},
		"count row too wide": {NewIncCount(countQ),
			OperatorState{Kind: "count", Params: "{MinFrames:50}", Result: [][]video.TrackID{{1, 2}}}},
		"count duplicate id": {NewIncCount(countQ),
			OperatorState{Kind: "count", Params: "{MinFrames:50}", Result: [][]video.TrackID{{1}, {1}}}},
		"cooccur wrong width": {NewIncCoOccur(CoOccurQuery{GroupSize: 3, MinFrames: 5}),
			OperatorState{Kind: "cooccur", Params: "{GroupSize:3 MinFrames:5 Classes:[]}", Result: [][]video.TrackID{{1, 2}}}},
		"cooccur unsorted row": {NewIncCoOccur(CoOccurQuery{GroupSize: 2, MinFrames: 5}),
			OperatorState{Kind: "cooccur", Params: "{GroupSize:2 MinFrames:5 Classes:[]}", Result: [][]video.TrackID{{2, 1}}}},
		"precedes self pair": {NewIncPrecedes(PrecedesQuery{MinGap: 1, MinOverlap: 1}),
			OperatorState{Kind: "precedes", Params: "{MinGap:1 MinOverlap:1}", Result: [][]video.TrackID{{3, 3}}}},
		"precedes duplicate": {NewIncPrecedes(PrecedesQuery{MinGap: 1, MinOverlap: 1}),
			OperatorState{Kind: "precedes", Params: "{MinGap:1 MinOverlap:1}", Result: [][]video.TrackID{{1, 2}, {1, 2}}}},
	}
	for name, c := range cases {
		if err := c.op.RestoreState(c.st); err == nil {
			t.Errorf("%s: RestoreState accepted the snapshot", name)
		}
	}

	// Sanity-check that the handwritten param echoes above are the real
	// ones — otherwise every rejection would be a params mismatch and the
	// row validations would go untested.
	if got := NewIncCount(countQ).State().Params; got != goodCount.Params {
		t.Fatalf("count params echo = %q", got)
	}
}

func TestQueryEdgeCases(t *testing.T) {
	empty := set()
	if got := (CountQuery{MinFrames: 10}).Answer(empty); len(got) != 0 {
		t.Errorf("count over empty set = %v", got)
	}
	if got := (CountQuery{MinFrames: 10}).Count(empty); got != 0 {
		t.Errorf("Count over empty set = %d", got)
	}
	if got := (RegionQuery{Region: geom.Rect{W: 10, H: 10}, MinFrames: 1}).Answer(empty); len(got) != 0 {
		t.Errorf("region over empty set = %v", got)
	}
	if got := (PrecedesQuery{MinGap: 1, MinOverlap: 1}).Answer(empty); len(got) != 0 {
		t.Errorf("precedes over empty set = %v", got)
	}

	// MinFrames <= 0 admits every track: a span is always >= 1 and a
	// dwell always >= 0.
	ts := set(span(1, 1, 0, 0), span(2, 2, 10, 40))
	for _, mf := range []int{0, -5} {
		if got := (CountQuery{MinFrames: mf}).Answer(ts); len(got) != 2 {
			t.Errorf("count MinFrames=%d = %v, want both tracks", mf, got)
		}
		if got := (RegionQuery{Region: geom.Rect{W: 1, H: 1}, MinFrames: mf}).Answer(ts); len(got) != 2 {
			t.Errorf("region MinFrames=%d = %v, want both tracks", mf, got)
		}
	}

	// A zero-area region still contains boxes centered exactly on it —
	// Contains is boundary-inclusive.
	tr := &video.Track{ID: 7, Boxes: []video.BBox{
		{ID: 1, Frame: 0, Rect: geom.Rect{X: 0, Y: 0, W: 10, H: 10}}, // center (5, 5)
		{ID: 2, Frame: 1, Rect: geom.Rect{X: 20, Y: 20, W: 4, H: 4}}, // center (22, 22)
	}}
	q := RegionQuery{Region: geom.Rect{X: 5, Y: 5, W: 0, H: 0}, MinFrames: 1}
	if got := q.Answer(set(tr)); len(got) != 1 || got[0] != 7 {
		t.Errorf("zero-area region answer = %v", got)
	}
	if got := (RegionQuery{Region: geom.Rect{X: 5, Y: 5, W: 0, H: 0}, MinFrames: 2}).Answer(set(tr)); len(got) != 0 {
		t.Errorf("zero-area region with MinFrames=2 = %v", got)
	}
}

func TestDeltaKindString(t *testing.T) {
	if Assert.String() != "assert" || Retract.String() != "retract" {
		t.Error("delta kind names changed")
	}
	if got := DeltaKind(7).String(); !strings.Contains(got, "7") {
		t.Errorf("unknown kind string = %q", got)
	}
}
