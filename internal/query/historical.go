package query

import "github.com/tmerge/tmerge/internal/video"

// HistoricalAnswer evaluates an incremental operator against a
// reconstructed historical view — the view a time-travel AsOf replay
// returns — and reports its result rows at that cut. op must be freshly
// constructed (empty result set): one Apply feeding every live
// canonical ID as changed bootstraps it to exactly the rows it would
// hold after consuming the stream window by window up to the cut,
// because an operator's results are a function of the view state alone
// (the batch-equivalence contract on Incremental). The bootstrap
// deltas are discarded; only the materialised rows constitute the
// historical answer.
func HistoricalAnswer(v TrackView, op Incremental) [][]video.TrackID {
	op.Apply(v, v.IDs(), nil)
	return op.Results()
}
