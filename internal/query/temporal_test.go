package query

import (
	"testing"

	"github.com/tmerge/tmerge/internal/geom"
	"github.com/tmerge/tmerge/internal/video"
)

// regionTrack builds a track whose boxes sit at fixed coordinates.
func regionTrack(id video.TrackID, obj video.ObjectID, start, end video.FrameIndex, x, y float64) *video.Track {
	t := &video.Track{ID: id}
	for f := start; f <= end; f++ {
		t.Boxes = append(t.Boxes, video.BBox{
			ID:       video.BBoxID(int(id)*100000 + int(f) + 1),
			Frame:    f,
			Rect:     geom.RectFromCenter(geom.Point{X: x, Y: y}, 10, 10),
			GTObject: obj,
		})
	}
	return t
}

func TestRegionQueryAnswer(t *testing.T) {
	region := geom.Rect{X: 0, Y: 0, W: 100, H: 100}
	inside := regionTrack(1, 1, 0, 99, 50, 50)    // 100 frames inside
	outside := regionTrack(2, 2, 0, 99, 500, 500) // outside
	short := regionTrack(3, 3, 0, 10, 50, 50)     // inside but brief
	ts := set(inside, outside, short)

	q := RegionQuery{Region: region, MinFrames: 50}
	got := q.Answer(ts)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("Answer = %v", got)
	}
}

func TestRegionQueryRecallFragmentation(t *testing.T) {
	region := geom.Rect{X: 0, Y: 0, W: 100, H: 100}
	gt := set(regionTrack(1, 1, 0, 99, 50, 50))
	q := RegionQuery{Region: region, MinFrames: 80}

	frag := set(
		regionTrack(10, 1, 0, 49, 50, 50),
		regionTrack(11, 1, 50, 99, 50, 50),
	)
	if got := q.Recall(gt, frag); got != 0 {
		t.Errorf("fragmented recall = %v", got)
	}
	merged := set(regionTrack(10, 1, 0, 99, 50, 50))
	if got := q.Recall(gt, merged); got != 1 {
		t.Errorf("merged recall = %v", got)
	}
	// Empty truth.
	if got := (RegionQuery{Region: region, MinFrames: 1000}).Recall(gt, merged); got != 1 {
		t.Errorf("empty-truth recall = %v", got)
	}
}

func TestPrecedesQueryAnswer(t *testing.T) {
	a := span(1, 1, 0, 200)   // enters at 0
	b := span(2, 2, 100, 300) // enters 100 after a; overlap 100..200 = 101
	c := span(3, 3, 190, 400) // enters 190 after a; overlap 190..200 = 11
	ts := set(a, b, c)

	q := PrecedesQuery{MinGap: 50, MinOverlap: 50}
	got := q.Answer(ts)
	// Qualifying: (1,2) gap 100 overlap 101; (2,3) gap 90 overlap 111.
	// (1,3): gap 190 but overlap 11 -> no.
	if len(got) != 2 {
		t.Fatalf("Answer = %v", got)
	}
	if got[0] != (OrderedPair{1, 2}) || got[1] != (OrderedPair{2, 3}) {
		t.Errorf("Answer = %v", got)
	}
}

func TestPrecedesQueryRecallFragmentation(t *testing.T) {
	gt := set(
		span(1, 1, 0, 300),
		span(2, 2, 100, 400),
	)
	q := PrecedesQuery{MinGap: 50, MinOverlap: 150}
	if got := q.Recall(gt, gt); got != 1 {
		t.Fatalf("self recall = %v", got)
	}
	// Fragmenting object 2's track truncates the overlap below 150.
	frag := set(
		span(10, 1, 0, 300),
		span(11, 2, 100, 200),
		span(12, 2, 210, 400),
	)
	if got := q.Recall(gt, frag); got != 0 {
		t.Errorf("fragmented recall = %v", got)
	}
	merged := set(
		span(10, 1, 0, 300),
		span(11, 2, 100, 400),
	)
	if got := q.Recall(gt, merged); got != 1 {
		t.Errorf("merged recall = %v", got)
	}
}

func TestPrecedesQueryEmptyTruth(t *testing.T) {
	ts := set(span(1, 1, 0, 10))
	q := PrecedesQuery{MinGap: 5, MinOverlap: 5}
	if got := q.Recall(ts, ts); got != 1 {
		t.Errorf("empty-truth recall = %v", got)
	}
}
