package query

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/tmerge/tmerge/internal/geom"
	"github.com/tmerge/tmerge/internal/video"
)

// TrackView is the read surface an incremental operator evaluates
// against: the live merged-track state, maintained elsewhere (the
// trackdb live view) and advanced window by window. All methods are
// keyed by canonical track ID and must reflect the merged,
// frame-deduplicated track exactly as batch merging would produce it —
// that contract is what makes incremental results bit-identical to
// batch Answer over the merged TrackSet.
type TrackView interface {
	// IDs returns the live canonical track IDs, sorted ascending. The
	// slice must be treated as read-only.
	IDs() []video.TrackID
	// Interval returns the presence interval [start, end] of id, with ok
	// false when id is not a live canonical identity.
	Interval(id video.TrackID) (start, end video.FrameIndex, ok bool)
	// Boxes returns id's deduplicated box count (0 when not live).
	Boxes(id video.TrackID) int
	// Class returns id's plurality box class, ties to the smaller class
	// ID (0 when not live) — video.Track.Class over the merged track.
	Class(id video.TrackID) video.ClassID
	// Dwell returns how many of id's deduplicated boxes have centers
	// inside r (0 when not live).
	Dwell(id video.TrackID, r geom.Rect) int
}

// DeltaKind says whether a Delta adds a result row or withdraws one.
type DeltaKind int

const (
	// Assert introduces a newly qualifying result row.
	Assert DeltaKind = iota
	// Retract withdraws a previously asserted row — the merge-coalescing
	// case: two identities counted separately collapse into one, or a
	// row's members stop satisfying the predicate under merged state.
	Retract
)

// String names the kind for logs and test output.
func (k DeltaKind) String() string {
	switch k {
	case Assert:
		return "assert"
	case Retract:
		return "retract"
	default:
		return fmt.Sprintf("DeltaKind(%d)", int(k))
	}
}

// Delta is one incremental output row change. Row is the result row
// itself: a single track ID for Count/Region answers, an ordered
// (first, second) pair for Precedes, a sorted group for CoOccur. Within
// one Apply batch, retractions precede assertions and each run is
// sorted, so delta streams are deterministic and foldable: replaying
// every delta from an empty set reproduces Results exactly.
type Delta struct {
	Kind DeltaKind       `json:"kind"`
	Row  []video.TrackID `json:"row"`
}

// OpStats counts an operator's cumulative work: predicate evaluations
// performed (Scanned) and rows asserted/retracted. The counters are
// deterministic functions of the input stream, which is what the query
// benchmark compares against batch recomputation cost.
type OpStats struct {
	Scanned   int `json:"scanned"`
	Asserted  int `json:"asserted"`
	Retracted int `json:"retracted"`
}

// OperatorState is the serialisable form of an incremental operator:
// the operator kind, a parameter echo (so restoring into a differently
// configured operator fails loudly instead of silently diverging), the
// current result set, and the work counters.
type OperatorState struct {
	Kind   string            `json:"kind"`
	Params string            `json:"params"`
	Result [][]video.TrackID `json:"result,omitempty"`
	Stats  OpStats           `json:"stats"`
}

// Incremental is the shared operator interface of the streaming query
// engine. An operator holds its current result set and, per committed
// window, folds the view's changed/removed canonical IDs into it,
// emitting the row-level deltas. The batch Answer methods remain the
// specification: after any sequence of Apply calls, Results must equal
// the batch answer over the batch-merged TrackSet the view mirrors.
type Incremental interface {
	// Kind names the operator type ("count", "region", "cooccur",
	// "precedes") — the discriminator checked on state restore.
	Kind() string
	// Apply folds one view update (changed and removed canonical IDs,
	// both sorted ascending) and returns the resulting deltas:
	// retractions first, then assertions, each run sorted by row.
	Apply(v TrackView, changed, removed []video.TrackID) []Delta
	// Results returns the current result rows, sorted — the same order
	// the batch Answer produces.
	Results() [][]video.TrackID
	// State snapshots the operator for checkpointing.
	State() OperatorState
	// RestoreState replaces the operator's state with a snapshot taken
	// from an identically configured operator, rejecting kind or
	// parameter mismatches and malformed rows.
	RestoreState(st OperatorState) error
	// Stats returns the cumulative work counters.
	Stats() OpStats
}

// spanOf returns id's presence span in frames (ok false when not live).
func spanOf(v TrackView, id video.TrackID) (int, bool) {
	s, e, ok := v.Interval(id)
	if !ok {
		return 0, false
	}
	return int(e-s) + 1, true
}

// emit finalises one Apply batch: counts the work, sorts each run, and
// packs retractions before assertions.
func emit(stats *OpStats, retracts, asserts [][]video.TrackID) []Delta {
	stats.Retracted += len(retracts)
	stats.Asserted += len(asserts)
	sort.Slice(retracts, func(i, j int) bool { return lessGroup(retracts[i], retracts[j]) })
	sort.Slice(asserts, func(i, j int) bool { return lessGroup(asserts[i], asserts[j]) })
	if len(retracts)+len(asserts) == 0 {
		return nil
	}
	out := make([]Delta, 0, len(retracts)+len(asserts))
	for _, r := range retracts {
		out = append(out, Delta{Kind: Retract, Row: r})
	}
	for _, a := range asserts {
		out = append(out, Delta{Kind: Assert, Row: a})
	}
	return out
}

// checkState verifies a snapshot's kind and parameter echo against the
// restoring operator's own.
func checkState(st OperatorState, kind, params string) error {
	if st.Kind != kind {
		return fmt.Errorf("query: restoring %q operator from %q state", kind, st.Kind)
	}
	if st.Params != params {
		return fmt.Errorf("query: %s operator state was taken with params %s, operator has %s", kind, st.Params, params)
	}
	if st.Stats.Scanned < 0 || st.Stats.Asserted < 0 || st.Stats.Retracted < 0 {
		return fmt.Errorf("query: %s operator state has negative work counters", kind)
	}
	return nil
}

// restoreIDSet validates single-ID rows into a set.
func restoreIDSet(kind string, rows [][]video.TrackID) (map[video.TrackID]bool, error) {
	have := make(map[video.TrackID]bool, len(rows))
	for _, row := range rows {
		if len(row) != 1 {
			return nil, fmt.Errorf("query: %s state row has %d ids, want 1", kind, len(row))
		}
		if have[row[0]] {
			return nil, fmt.Errorf("query: %s state has duplicate id %d", kind, row[0])
		}
		have[row[0]] = true
	}
	return have, nil
}

// idSetRows returns a set's members as sorted single-ID rows.
func idSetRows(have map[video.TrackID]bool) [][]video.TrackID {
	ids := make([]video.TrackID, 0, len(have))
	for id := range have {
		ids = append(ids, id)
	}
	video.SortTrackIDs(ids)
	out := make([][]video.TrackID, len(ids))
	for i, id := range ids {
		out[i] = []video.TrackID{id}
	}
	return out
}

// IncCount is the incremental CountQuery operator: it maintains the set
// of canonical identities whose presence span reaches MinFrames. Spans
// only grow under extensions and merges, so a counted identity is only
// ever retracted when a merge coalesces it into another (the view
// removes it); the symmetric re-check keeps the operator honest anyway.
type IncCount struct {
	q     CountQuery
	have  map[video.TrackID]bool
	stats OpStats
}

// NewIncCount returns an empty incremental operator for q.
func NewIncCount(q CountQuery) *IncCount {
	return &IncCount{q: q, have: make(map[video.TrackID]bool)}
}

// Kind returns "count".
func (o *IncCount) Kind() string { return "count" }

// Apply implements Incremental.
func (o *IncCount) Apply(v TrackView, changed, removed []video.TrackID) []Delta {
	var retracts, asserts [][]video.TrackID
	for _, id := range removed {
		if o.have[id] {
			delete(o.have, id)
			retracts = append(retracts, []video.TrackID{id})
		}
	}
	for _, id := range changed {
		o.stats.Scanned++
		span, live := spanOf(v, id)
		qual := live && span >= o.q.MinFrames
		switch {
		case qual && !o.have[id]:
			o.have[id] = true
			asserts = append(asserts, []video.TrackID{id})
		case !qual && o.have[id]:
			delete(o.have, id)
			retracts = append(retracts, []video.TrackID{id})
		}
	}
	return emit(&o.stats, retracts, asserts)
}

// Count returns the current answer cardinality without allocating.
func (o *IncCount) Count() int { return len(o.have) }

// Answer returns the current answer IDs, sorted — the incremental
// counterpart of CountQuery.Answer.
func (o *IncCount) Answer() []video.TrackID {
	ids := make([]video.TrackID, 0, len(o.have))
	for id := range o.have {
		ids = append(ids, id)
	}
	video.SortTrackIDs(ids)
	return ids
}

// Results implements Incremental.
func (o *IncCount) Results() [][]video.TrackID { return idSetRows(o.have) }

// Stats implements Incremental.
func (o *IncCount) Stats() OpStats { return o.stats }

// State implements Incremental.
func (o *IncCount) State() OperatorState {
	return OperatorState{Kind: o.Kind(), Params: fmt.Sprintf("%+v", o.q), Result: o.Results(), Stats: o.stats}
}

// RestoreState implements Incremental.
func (o *IncCount) RestoreState(st OperatorState) error {
	if err := checkState(st, o.Kind(), fmt.Sprintf("%+v", o.q)); err != nil {
		return err
	}
	have, err := restoreIDSet(o.Kind(), st.Result)
	if err != nil {
		return err
	}
	o.have, o.stats = have, st.Stats
	return nil
}

// IncRegion is the incremental RegionQuery operator: the set of
// canonical identities with at least MinFrames deduplicated boxes
// centered inside the region. Unlike spans, dwell can shrink — a merge
// can replace a frame's counted box with a lower-ID member's box whose
// center lies outside — so both directions of the predicate flip are
// live paths, not just removals.
type IncRegion struct {
	q     RegionQuery
	have  map[video.TrackID]bool
	stats OpStats
}

// NewIncRegion returns an empty incremental operator for q.
func NewIncRegion(q RegionQuery) *IncRegion {
	return &IncRegion{q: q, have: make(map[video.TrackID]bool)}
}

// Kind returns "region".
func (o *IncRegion) Kind() string { return "region" }

// Apply implements Incremental.
func (o *IncRegion) Apply(v TrackView, changed, removed []video.TrackID) []Delta {
	var retracts, asserts [][]video.TrackID
	for _, id := range removed {
		if o.have[id] {
			delete(o.have, id)
			retracts = append(retracts, []video.TrackID{id})
		}
	}
	for _, id := range changed {
		o.stats.Scanned++
		_, _, live := v.Interval(id)
		qual := live && v.Dwell(id, o.q.Region) >= o.q.MinFrames
		switch {
		case qual && !o.have[id]:
			o.have[id] = true
			asserts = append(asserts, []video.TrackID{id})
		case !qual && o.have[id]:
			delete(o.have, id)
			retracts = append(retracts, []video.TrackID{id})
		}
	}
	return emit(&o.stats, retracts, asserts)
}

// Count returns the current answer cardinality without allocating.
func (o *IncRegion) Count() int { return len(o.have) }

// Answer returns the current answer IDs, sorted.
func (o *IncRegion) Answer() []video.TrackID {
	ids := make([]video.TrackID, 0, len(o.have))
	for id := range o.have {
		ids = append(ids, id)
	}
	video.SortTrackIDs(ids)
	return ids
}

// Results implements Incremental.
func (o *IncRegion) Results() [][]video.TrackID { return idSetRows(o.have) }

// Stats implements Incremental.
func (o *IncRegion) Stats() OpStats { return o.stats }

// State implements Incremental.
func (o *IncRegion) State() OperatorState {
	return OperatorState{Kind: o.Kind(), Params: fmt.Sprintf("%+v", o.q), Result: o.Results(), Stats: o.stats}
}

// RestoreState implements Incremental.
func (o *IncRegion) RestoreState(st OperatorState) error {
	if err := checkState(st, o.Kind(), fmt.Sprintf("%+v", o.q)); err != nil {
		return err
	}
	have, err := restoreIDSet(o.Kind(), st.Result)
	if err != nil {
		return err
	}
	o.have, o.stats = have, st.Stats
	return nil
}

// IncCoOccur is the incremental CoOccurQuery operator. Per update it
// revalidates every held group touching a changed or removed member
// (retracting those no longer valid — a member merged away, or a
// plurality class flip breaking the class multiset) and enumerates new
// qualifying groups, which necessarily contain at least one changed
// member because group validity is a function of member intervals and
// classes alone. Each new group is enumerated exactly once: the pass
// for changed member c excludes all earlier changed members from the
// candidate pool.
type IncCoOccur struct {
	q     CoOccurQuery
	have  map[string][]video.TrackID
	stats OpStats
}

// NewIncCoOccur returns an empty incremental operator for q. It panics
// under the same conditions as CoOccurQuery.Answer: GroupSize < 2, or a
// Classes constraint whose length differs from GroupSize.
func NewIncCoOccur(q CoOccurQuery) *IncCoOccur {
	if q.GroupSize < 2 {
		panic("query: CoOccurQuery.GroupSize must be >= 2")
	}
	if q.Classes != nil && len(q.Classes) != q.GroupSize {
		panic("query: CoOccurQuery.Classes length must equal GroupSize")
	}
	return &IncCoOccur{q: q, have: make(map[string][]video.TrackID)}
}

// Kind returns "cooccur".
func (o *IncCoOccur) Kind() string { return "cooccur" }

// Apply implements Incremental.
func (o *IncCoOccur) Apply(v TrackView, changed, removed []video.TrackID) []Delta {
	touched := make(map[video.TrackID]bool, len(changed)+len(removed))
	for _, id := range changed {
		touched[id] = true
	}
	for _, id := range removed {
		touched[id] = true
	}

	var retracts, asserts [][]video.TrackID

	var stale []string
	for k, g := range o.have {
		for _, id := range g {
			if touched[id] {
				stale = append(stale, k)
				break
			}
		}
	}
	sort.Strings(stale)
	for _, k := range stale {
		g := o.have[k]
		o.stats.Scanned++
		if !o.groupValid(v, g) {
			delete(o.have, k)
			retracts = append(retracts, g)
		}
	}

	cands := o.candidates(v)
	excluded := make(map[video.TrackID]bool, len(changed))
	for _, c := range changed {
		if span, live := spanOf(v, c); !live || span < o.q.MinFrames {
			excluded[c] = true // not a candidate; still exclude from later passes
			continue
		}
		o.enumerate(v, cands, c, excluded, func(g []video.TrackID) {
			key := groupKey(g)
			if _, held := o.have[key]; held {
				return
			}
			o.have[key] = g
			asserts = append(asserts, g)
		})
		excluded[c] = true
	}
	return emit(&o.stats, retracts, asserts)
}

// candidates returns the live identities whose own span reaches
// MinFrames — the same prefilter batch Answer applies — sorted
// ascending.
func (o *IncCoOccur) candidates(v TrackView) []video.TrackID {
	ids := v.IDs()
	out := make([]video.TrackID, 0, len(ids))
	for _, id := range ids {
		if span, live := spanOf(v, id); live && span >= o.q.MinFrames {
			out = append(out, id)
		}
	}
	return out
}

// enumerate yields every qualifying group that contains must, drawing
// the remaining members from cands minus excluded, each unordered group
// exactly once. The recursion prunes on the running interval
// intersection exactly like batch Answer.
func (o *IncCoOccur) enumerate(v TrackView, cands []video.TrackID, must video.TrackID, excluded map[video.TrackID]bool, yield func([]video.TrackID)) {
	ms, me, ok := v.Interval(must)
	if !ok {
		return
	}
	group := make([]video.TrackID, 1, o.q.GroupSize)
	group[0] = must
	var rec func(start int, lo, hi video.FrameIndex)
	rec = func(start int, lo, hi video.FrameIndex) {
		if len(group) == o.q.GroupSize {
			o.stats.Scanned++
			if !o.classesMatchView(v, group) {
				return
			}
			g := append([]video.TrackID(nil), group...)
			video.SortTrackIDs(g)
			yield(g)
			return
		}
		for i := start; i < len(cands); i++ {
			id := cands[i]
			if id == must || excluded[id] {
				continue
			}
			s, e, live := v.Interval(id)
			if !live {
				continue
			}
			nlo, nhi := lo, hi
			if s > nlo {
				nlo = s
			}
			if e < nhi {
				nhi = e
			}
			if int(nhi-nlo)+1 < o.q.MinFrames {
				continue
			}
			group = append(group, id)
			rec(i+1, nlo, nhi)
			group = group[:len(group)-1]
		}
	}
	rec(0, ms, me)
}

// groupValid re-evaluates a held group under current view state: every
// member live with the joint interval intersection reaching MinFrames,
// and the class multiset still matching.
func (o *IncCoOccur) groupValid(v TrackView, g []video.TrackID) bool {
	var lo, hi video.FrameIndex
	for i, id := range g {
		s, e, ok := v.Interval(id)
		if !ok {
			return false
		}
		if i == 0 {
			lo, hi = s, e
		} else {
			if s > lo {
				lo = s
			}
			if e < hi {
				hi = e
			}
		}
	}
	if int(hi-lo)+1 < o.q.MinFrames {
		return false
	}
	return o.classesMatchView(v, g)
}

// classesMatchView is CoOccurQuery.classesMatch evaluated on view state.
func (o *IncCoOccur) classesMatchView(v TrackView, g []video.TrackID) bool {
	if o.q.Classes == nil {
		return true
	}
	want := make(map[video.ClassID]int, len(o.q.Classes))
	for _, c := range o.q.Classes {
		want[c]++
	}
	for _, id := range g {
		c := v.Class(id)
		if want[c] == 0 {
			return false
		}
		want[c]--
	}
	return true
}

// Groups returns the current answer groups, sorted — the incremental
// counterpart of CoOccurQuery.Answer.
func (o *IncCoOccur) Groups() []Group {
	out := make([]Group, 0, len(o.have))
	for _, g := range o.have {
		out = append(out, Group(g))
	}
	sort.Slice(out, func(i, j int) bool { return lessGroup(out[i], out[j]) })
	return out
}

// Results implements Incremental.
func (o *IncCoOccur) Results() [][]video.TrackID {
	groups := o.Groups()
	out := make([][]video.TrackID, len(groups))
	for i, g := range groups {
		out[i] = []video.TrackID(g)
	}
	return out
}

// Stats implements Incremental.
func (o *IncCoOccur) Stats() OpStats { return o.stats }

// State implements Incremental.
func (o *IncCoOccur) State() OperatorState {
	return OperatorState{Kind: o.Kind(), Params: fmt.Sprintf("%+v", o.q), Result: o.Results(), Stats: o.stats}
}

// RestoreState implements Incremental.
func (o *IncCoOccur) RestoreState(st OperatorState) error {
	if err := checkState(st, o.Kind(), fmt.Sprintf("%+v", o.q)); err != nil {
		return err
	}
	have := make(map[string][]video.TrackID, len(st.Result))
	for _, row := range st.Result {
		if len(row) != o.q.GroupSize {
			return fmt.Errorf("query: cooccur state row has %d ids, want %d", len(row), o.q.GroupSize)
		}
		for i := 1; i < len(row); i++ {
			if row[i] <= row[i-1] {
				return fmt.Errorf("query: cooccur state row %v is not strictly ascending", row)
			}
		}
		key := groupKey(row)
		if _, dup := have[key]; dup {
			return fmt.Errorf("query: cooccur state has duplicate group %v", row)
		}
		have[key] = append([]video.TrackID(nil), row...)
	}
	o.have, o.stats = have, st.Stats
	return nil
}

// groupKey is the canonical map key of a sorted group.
func groupKey(g []video.TrackID) string {
	var b strings.Builder
	for i, id := range g {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(int(id)))
	}
	return b.String()
}

// IncPrecedes is the incremental PrecedesQuery operator over ordered
// pairs. A merge can move an identity's entry earlier (coalescing with
// an earlier fragment), so pair qualification flips in both directions;
// per update every ordered pair touching a changed identity is
// re-evaluated against the full live set, and pairs holding a removed
// identity are retracted.
type IncPrecedes struct {
	q     PrecedesQuery
	have  map[OrderedPair]bool
	stats OpStats
}

// NewIncPrecedes returns an empty incremental operator for q.
func NewIncPrecedes(q PrecedesQuery) *IncPrecedes {
	return &IncPrecedes{q: q, have: make(map[OrderedPair]bool)}
}

// Kind returns "precedes".
func (o *IncPrecedes) Kind() string { return "precedes" }

// Apply implements Incremental.
func (o *IncPrecedes) Apply(v TrackView, changed, removed []video.TrackID) []Delta {
	var retracts, asserts [][]video.TrackID
	if len(removed) > 0 {
		rm := make(map[video.TrackID]bool, len(removed))
		for _, id := range removed {
			rm[id] = true
		}
		var stale []OrderedPair
		for p := range o.have {
			if rm[p.First] || rm[p.Second] {
				stale = append(stale, p)
			}
		}
		sort.Slice(stale, func(i, j int) bool { return lessPair(stale[i], stale[j]) })
		for _, p := range stale {
			delete(o.have, p)
			retracts = append(retracts, []video.TrackID{p.First, p.Second})
		}
	}
	seen := make(map[OrderedPair]bool)
	ids := v.IDs()
	for _, c := range changed {
		for _, x := range ids {
			if x == c {
				continue
			}
			for _, p := range [2]OrderedPair{{First: c, Second: x}, {First: x, Second: c}} {
				if seen[p] {
					continue
				}
				seen[p] = true
				o.stats.Scanned++
				qual := o.eval(v, p.First, p.Second)
				switch {
				case qual && !o.have[p]:
					o.have[p] = true
					asserts = append(asserts, []video.TrackID{p.First, p.Second})
				case !qual && o.have[p]:
					delete(o.have, p)
					retracts = append(retracts, []video.TrackID{p.First, p.Second})
				}
			}
		}
	}
	return emit(&o.stats, retracts, asserts)
}

// eval is the PrecedesQuery pair predicate on view state.
func (o *IncPrecedes) eval(v TrackView, a, b video.TrackID) bool {
	as, ae, ok := v.Interval(a)
	if !ok {
		return false
	}
	bs, be, ok := v.Interval(b)
	if !ok {
		return false
	}
	if int(bs-as) < o.q.MinGap {
		return false
	}
	hi := ae
	if be < hi {
		hi = be
	}
	return int(hi-bs)+1 >= o.q.MinOverlap
}

// Pairs returns the current answer pairs, sorted — the incremental
// counterpart of PrecedesQuery.Answer.
func (o *IncPrecedes) Pairs() []OrderedPair {
	out := make([]OrderedPair, 0, len(o.have))
	for p := range o.have {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return lessPair(out[i], out[j]) })
	return out
}

// Results implements Incremental.
func (o *IncPrecedes) Results() [][]video.TrackID {
	pairs := o.Pairs()
	out := make([][]video.TrackID, len(pairs))
	for i, p := range pairs {
		out[i] = []video.TrackID{p.First, p.Second}
	}
	return out
}

// Stats implements Incremental.
func (o *IncPrecedes) Stats() OpStats { return o.stats }

// State implements Incremental.
func (o *IncPrecedes) State() OperatorState {
	return OperatorState{Kind: o.Kind(), Params: fmt.Sprintf("%+v", o.q), Result: o.Results(), Stats: o.stats}
}

// RestoreState implements Incremental.
func (o *IncPrecedes) RestoreState(st OperatorState) error {
	if err := checkState(st, o.Kind(), fmt.Sprintf("%+v", o.q)); err != nil {
		return err
	}
	have := make(map[OrderedPair]bool, len(st.Result))
	for _, row := range st.Result {
		if len(row) != 2 {
			return fmt.Errorf("query: precedes state row has %d ids, want 2", len(row))
		}
		if row[0] == row[1] {
			return fmt.Errorf("query: precedes state pairs track %d with itself", row[0])
		}
		p := OrderedPair{First: row[0], Second: row[1]}
		if have[p] {
			return fmt.Errorf("query: precedes state has duplicate pair %v", p)
		}
		have[p] = true
	}
	o.have, o.stats = have, st.Stats
	return nil
}

// lessPair orders pairs by (First, Second).
func lessPair(a, b OrderedPair) bool {
	if a.First != b.First {
		return a.First < b.First
	}
	return a.Second < b.Second
}
