package query

import (
	"testing"

	"github.com/tmerge/tmerge/internal/geom"
	"github.com/tmerge/tmerge/internal/video"
)

// span builds a track for object obj with one box per frame over
// [start, end].
func span(id video.TrackID, obj video.ObjectID, start, end video.FrameIndex) *video.Track {
	t := &video.Track{ID: id}
	for f := start; f <= end; f++ {
		t.Boxes = append(t.Boxes, video.BBox{
			ID:       video.BBoxID(int(id)*100000 + int(f) + 1),
			Frame:    f,
			Rect:     geom.Rect{X: float64(f), W: 5, H: 5},
			GTObject: obj,
		})
	}
	return t
}

func set(tracks ...*video.Track) *video.TrackSet { return video.NewTrackSet(tracks) }

func TestCountQueryAnswer(t *testing.T) {
	ts := set(
		span(1, 1, 0, 249),  // 250 frames: qualifies
		span(2, 2, 0, 100),  // 101 frames: no
		span(3, 3, 50, 260), // 211 frames: qualifies
	)
	q := CountQuery{MinFrames: 200}
	got := q.Answer(ts)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("Answer = %v", got)
	}
	if q.Count(ts) != 2 {
		t.Errorf("Count = %d", q.Count(ts))
	}
}

func TestCountQueryRecallFragmentation(t *testing.T) {
	gt := set(span(1, 1, 0, 299)) // object 1 visible 300 frames
	q := CountQuery{MinFrames: 200}

	// Fragmented: two tracks of 150 frames each -> miss.
	frag := set(span(10, 1, 0, 149), span(11, 1, 150, 299))
	if got := q.Recall(gt, frag); got != 0 {
		t.Errorf("fragmented recall = %v, want 0", got)
	}

	// Merged: one track covering the full span -> hit.
	merged := set(span(10, 1, 0, 299))
	if got := q.Recall(gt, merged); got != 1 {
		t.Errorf("merged recall = %v, want 1", got)
	}
}

func TestCountQueryRecallEmptyTruth(t *testing.T) {
	gt := set(span(1, 1, 0, 10))
	hyp := set(span(10, 1, 0, 10))
	q := CountQuery{MinFrames: 500}
	if got := q.Recall(gt, hyp); got != 1 {
		t.Errorf("empty-truth recall = %v, want 1", got)
	}
}

func TestCoOccurAnswer(t *testing.T) {
	ts := set(
		span(1, 1, 0, 100),
		span(2, 2, 20, 120),
		span(3, 3, 40, 140),
		span(4, 4, 95, 200), // overlaps the others by too little
	)
	q := CoOccurQuery{GroupSize: 3, MinFrames: 50}
	got := q.Answer(ts)
	// Joint presence of (1,2,3): frames 40..100 = 61 frames >= 50. Any
	// triple with 4 has overlap <= 6 frames.
	if len(got) != 1 {
		t.Fatalf("got %d groups: %v", len(got), got)
	}
	if got[0][0] != 1 || got[0][1] != 2 || got[0][2] != 3 {
		t.Errorf("group = %v", got[0])
	}
}

func TestCoOccurPairs(t *testing.T) {
	ts := set(span(1, 1, 0, 100), span(2, 2, 50, 160))
	q := CoOccurQuery{GroupSize: 2, MinFrames: 51}
	if got := q.Answer(ts); len(got) != 1 {
		t.Errorf("pair groups = %v", got)
	}
	q.MinFrames = 52
	if got := q.Answer(ts); len(got) != 0 {
		t.Errorf("overlap of 51 frames must fail MinFrames=52: %v", got)
	}
}

func TestCoOccurRecallFragmentation(t *testing.T) {
	gt := set(
		span(1, 1, 0, 200),
		span(2, 2, 0, 200),
		span(3, 3, 0, 200),
	)
	q := CoOccurQuery{GroupSize: 3, MinFrames: 100}

	// Object 3 fragmented into two 80-frame tracks: the triple's joint
	// run with either fragment is < 100 -> miss.
	frag := set(
		span(10, 1, 0, 200),
		span(11, 2, 0, 200),
		span(12, 3, 0, 79),
		span(13, 3, 110, 200),
	)
	if got := q.Recall(gt, frag); got != 0 {
		t.Errorf("fragmented recall = %v, want 0", got)
	}

	merged := set(
		span(10, 1, 0, 200),
		span(11, 2, 0, 200),
		span(12, 3, 0, 200),
	)
	if got := q.Recall(gt, merged); got != 1 {
		t.Errorf("merged recall = %v, want 1", got)
	}
}

func TestCoOccurRecallDuplicateObjectsRejected(t *testing.T) {
	gt := set(span(1, 1, 0, 200), span(2, 2, 0, 200), span(3, 3, 0, 200))
	q := CoOccurQuery{GroupSize: 3, MinFrames: 100}
	// Hypothesis group where two tracks map to the same object cannot
	// match any GT group.
	hyp := set(
		span(10, 1, 0, 200),
		span(11, 1, 0, 200), // duplicate object 1
		span(12, 2, 0, 200),
	)
	if got := q.Recall(gt, hyp); got != 0 {
		t.Errorf("recall with duplicate-object group = %v, want 0", got)
	}
}

func TestCoOccurGroupSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	CoOccurQuery{GroupSize: 1, MinFrames: 10}.Answer(set())
}

func TestCoOccurEmptySet(t *testing.T) {
	q := CoOccurQuery{GroupSize: 3, MinFrames: 10}
	if got := q.Answer(set()); len(got) != 0 {
		t.Errorf("empty answer = %v", got)
	}
	if got := q.Recall(set(), set()); got != 1 {
		t.Errorf("empty recall = %v", got)
	}
}

func TestCoOccurDeterministicOrder(t *testing.T) {
	ts := set(
		span(4, 4, 0, 100),
		span(2, 2, 0, 100),
		span(1, 1, 0, 100),
		span(3, 3, 0, 100),
	)
	q := CoOccurQuery{GroupSize: 2, MinFrames: 50}
	got := q.Answer(ts)
	if len(got) != 6 {
		t.Fatalf("got %d pairs, want 6", len(got))
	}
	for i := 1; i < len(got); i++ {
		if !lessGroup(got[i-1], got[i]) {
			t.Errorf("groups out of order at %d: %v then %v", i, got[i-1], got[i])
		}
	}
}

func classSpan(id video.TrackID, obj video.ObjectID, class video.ClassID, start, end video.FrameIndex) *video.Track {
	t := span(id, obj, start, end)
	for i := range t.Boxes {
		t.Boxes[i].Class = class
	}
	return t
}

func TestCoOccurClassPattern(t *testing.T) {
	// "The same two persons (class 0) and one vehicle (class 1) appear
	// jointly" — the paper's §V-H example.
	ts := set(
		classSpan(1, 1, 0, 0, 200), // person
		classSpan(2, 2, 0, 0, 200), // person
		classSpan(3, 3, 1, 0, 200), // vehicle
		classSpan(4, 4, 1, 0, 200), // vehicle
	)
	q := CoOccurQuery{GroupSize: 3, MinFrames: 100, Classes: []video.ClassID{0, 0, 1}}
	got := q.Answer(ts)
	// Valid groups: {1,2,3} and {1,2,4}. Not {1,3,4} or {2,3,4}.
	if len(got) != 2 {
		t.Fatalf("got %d groups: %v", len(got), got)
	}
	for _, g := range got {
		if g[0] != 1 || g[1] != 2 {
			t.Errorf("group %v does not contain both persons", g)
		}
	}
	// Unconstrained query returns all 4 triples.
	if n := len((CoOccurQuery{GroupSize: 3, MinFrames: 100}).Answer(ts)); n != 4 {
		t.Errorf("unconstrained answer = %d triples", n)
	}
}

func TestCoOccurClassPatternLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	CoOccurQuery{GroupSize: 3, MinFrames: 1, Classes: []video.ClassID{0}}.Answer(set())
}
