package histlog

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/tmerge/tmerge/internal/core"
	"github.com/tmerge/tmerge/internal/trackdb"
	"github.com/tmerge/tmerge/internal/video"
)

// genEntries builds n deterministic window entries exercising every
// feed shape: each window extends three fresh tracks (ids 3i..3i+2)
// with three frames each, merges the window's first track into the
// running group rooted at track 0, and merges the window's second and
// third tracks together — so replay sees chained unions, retractions
// after coalescing, and contested frames.
func genEntries(n int) []WindowEntry {
	entries := make([]WindowEntry, 0, n)
	seq := 0
	for i := 0; i < n; i++ {
		w := video.Window{
			Index:   i,
			Start:   video.FrameIndex(i * 5),
			End:     video.FrameIndex(i*5 + 4),
			Nominal: 5,
		}
		e := WindowEntry{Window: w}
		base := video.TrackID(i * 3)
		for t := video.TrackID(0); t < 3; t++ {
			id := base + t
			for f := video.FrameIndex(0); f < 3; f++ {
				e.Extends = append(e.Extends, Extend{
					Track: id,
					Frame: w.Start + f,
					CX:    float64(id),
					CY:    float64(f),
					Class: video.ClassID(t % 2),
				})
			}
		}
		if i > 0 {
			// Chain: window i's first track joins the group canonicalised
			// at 0 (merged there by every earlier window).
			e.Events = append(e.Events, core.MergeEvent{
				Seq:   seq,
				Pair:  video.PairKey{A: base - 3, B: base},
				FromA: 0,
				FromB: base,
				Canon: 0,
			})
			seq++
			// Coalesce the window's other two tracks; base+2 is retracted.
			e.Events = append(e.Events, core.MergeEvent{
				Seq:   seq,
				Pair:  video.PairKey{A: base + 1, B: base + 2},
				FromA: base + 1,
				FromB: base + 2,
				Canon: base + 1,
			})
			seq++
		}
		entries = append(entries, e)
	}
	return entries
}

// buildView replays the first upto entries into a fresh LiveView,
// panicking on feed errors (generated entries are always valid).
func buildView(entries []WindowEntry, upto int) *trackdb.LiveView {
	v := trackdb.NewLiveView()
	for i := range entries[:upto] {
		if err := applyEntry(v, &entries[i]); err != nil {
			panic(err)
		}
	}
	v.Flush()
	return v
}

// refView is buildView as a test helper — the ground truth every log
// replay must match bit-identically.
func refView(t *testing.T, entries []WindowEntry, upto int) *trackdb.LiveView {
	t.Helper()
	return buildView(entries, upto)
}

func mustEqualStates(t *testing.T, got, want trackdb.ViewState, what string) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: view state diverged\ngot:  %+v\nwant: %+v", what, got, want)
	}
}

// openLog opens a log over dir with a small segment size so tests
// exercise multi-segment chains.
func openLog(t *testing.T, dir string) *Log {
	t.Helper()
	l, err := Open(dir, Options{WindowsPerSegment: 4})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func appendAll(t *testing.T, l *Log, entries []WindowEntry) {
	t.Helper()
	for i := range entries {
		if err := l.AppendWindow(entries[i]); err != nil {
			t.Fatalf("AppendWindow %d: %v", i, err)
		}
	}
}

func TestSegmentRoundTrip(t *testing.T) {
	entries := genEntries(6)
	hdr := SegmentHeader{Format: SegmentFormat, Version: SegmentVersion, Index: 7, Kind: KindRaw}
	data, ft, err := EncodeSegment(hdr, entries, nil, SegmentFooter{})
	if err != nil {
		t.Fatalf("EncodeSegment: %v", err)
	}
	if ft.Records != 6 || ft.EndWindow != 6 || ft.EndSeq != 10 || ft.EndFrame != 29 {
		t.Fatalf("unexpected footer %+v", ft)
	}
	seg, err := DecodeSegment(data)
	if err != nil {
		t.Fatalf("DecodeSegment: %v", err)
	}
	if !reflect.DeepEqual(seg.Header, hdr) || !reflect.DeepEqual(seg.Entries, entries) || !reflect.DeepEqual(seg.Footer, ft) {
		t.Fatalf("round trip diverged: %+v", seg)
	}

	// Base segments round-trip a view snapshot the same way.
	st := refView(t, entries, 6).State()
	bhdr := SegmentHeader{Format: SegmentFormat, Version: SegmentVersion, Index: 8, Kind: KindBase}
	bdata, bft, err := EncodeSegment(bhdr, nil, st.Tracks, SegmentFooter{EndWindow: 6, EndSeq: st.Seq, EndFrame: 29})
	if err != nil {
		t.Fatalf("EncodeSegment(base): %v", err)
	}
	bseg, err := DecodeSegment(bdata)
	if err != nil {
		t.Fatalf("DecodeSegment(base): %v", err)
	}
	if !reflect.DeepEqual(bseg.Tracks, st.Tracks) || bft.EndSeq != st.Seq {
		t.Fatalf("base round trip diverged")
	}
	if _, err := trackdb.RestoreView(trackdb.ViewState{Seq: bseg.Footer.EndSeq, Tracks: bseg.Tracks}); err != nil {
		t.Fatalf("restoring decoded base: %v", err)
	}
}

func TestSegmentRejectsCorruption(t *testing.T) {
	entries := genEntries(4)
	hdr := SegmentHeader{Format: SegmentFormat, Version: SegmentVersion, Kind: KindRaw}
	data, _, err := EncodeSegment(hdr, entries, nil, SegmentFooter{})
	if err != nil {
		t.Fatalf("EncodeSegment: %v", err)
	}

	reject := func(name string, mutate func([]byte) []byte) {
		t.Helper()
		if _, err := DecodeSegment(mutate(append([]byte(nil), data...))); err == nil {
			t.Errorf("%s: corrupt segment decoded cleanly", name)
		}
	}
	reject("bit flip in record", func(b []byte) []byte {
		i := bytes.IndexByte(b, '\n') + 10 // inside the first record line
		b[i] ^= 0x01
		return b
	})
	reject("truncated mid-line", func(b []byte) []byte { return b[:len(b)-3] })
	reject("footer dropped", func(b []byte) []byte {
		j := bytes.LastIndexByte(b[:len(b)-1], '\n')
		return b[:j+1]
	})
	reject("record dropped", func(b []byte) []byte {
		// Remove the second line entirely: checksum and count both break.
		i := bytes.IndexByte(b, '\n') + 1
		j := i + bytes.IndexByte(b[i:], '\n') + 1
		return append(b[:i], b[j:]...)
	})
	reject("empty file", func(b []byte) []byte { return nil })
	reject("future version", func(b []byte) []byte {
		return bytes.Replace(b, []byte(`"version":1`), []byte(`"version":99`), 1)
	})
	reject("foreign format", func(b []byte) []byte {
		return bytes.Replace(b, []byte(SegmentFormat), []byte("tmerge/other"), 1)
	})
	reject("segment doubled", func(b []byte) []byte { return append(b, data...) })
}

func TestLogSealReplayAndReopen(t *testing.T) {
	entries := genEntries(10)
	dir := t.TempDir()
	l := openLog(t, dir) // seals every 4 windows
	appendAll(t, l, entries)
	if l.Windows() != 10 || l.SealedWindows() != 8 {
		t.Fatalf("cursors: windows %d sealed %d", l.Windows(), l.SealedWindows())
	}

	// Replay including the in-memory active tail.
	full, err := l.ReplayView(-1)
	if err != nil {
		t.Fatalf("ReplayView(-1): %v", err)
	}
	mustEqualStates(t, full.State(), refView(t, entries, 10).State(), "full replay")

	// Mid-log replay cuts exactly at a window boundary.
	mid, err := l.ReplayView(5)
	if err != nil {
		t.Fatalf("ReplayView(5): %v", err)
	}
	mustEqualStates(t, mid.State(), refView(t, entries, 5).State(), "mid replay")

	// Continuity violations are rejected.
	if err := l.AppendWindow(entries[3]); err == nil {
		t.Fatal("out-of-order window accepted")
	}
	bad := genEntries(11)[10]
	bad.Events = []core.MergeEvent{{Seq: 999, Pair: video.PairKey{A: 27, B: 30}, FromA: 0, FromB: 30, Canon: 0}}
	if err := l.AppendWindow(bad); err == nil {
		t.Fatal("event seq gap accepted")
	}

	// Seal the tail and reopen from disk only: the sealed prefix must
	// replay identically; the unsealed tail would have been lost.
	if err := l.Seal(); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	l2 := openLog(t, dir)
	if l2.Windows() != 10 || l2.Seq() != l.Seq() || l2.EndFrame() != l.EndFrame() {
		t.Fatalf("reopen cursors diverged: %d/%d/%d", l2.Windows(), l2.Seq(), l2.EndFrame())
	}
	re, err := l2.ReplayView(-1)
	if err != nil {
		t.Fatalf("ReplayView after reopen: %v", err)
	}
	mustEqualStates(t, re.State(), full.State(), "reopen replay")
}

func TestLogAsOf(t *testing.T) {
	entries := genEntries(9)
	l := openLog(t, t.TempDir())
	appendAll(t, l, entries)

	// Every frame maps to the prefix of windows ending at or before it.
	for frame := video.FrameIndex(0); frame <= 45; frame += 3 {
		upto := 0
		wantCut := video.FrameIndex(-1)
		for i := range entries {
			if entries[i].Window.End <= frame {
				upto = i + 1
				wantCut = entries[i].Window.End
			}
		}
		v, cut, err := l.AsOf(frame)
		if err != nil {
			t.Fatalf("AsOf(%d): %v", frame, err)
		}
		if cut != wantCut {
			t.Fatalf("AsOf(%d) cut at %d, want %d", frame, cut, wantCut)
		}
		mustEqualStates(t, v.State(), refView(t, entries, upto).State(), "AsOf")
	}
}

func TestCompactionEquivalence(t *testing.T) {
	entries := genEntries(12)
	l := openLog(t, t.TempDir())
	appendAll(t, l, entries)
	if err := l.Seal(); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	want := refView(t, entries, 12).State()
	before, err := l.ReplayView(-1)
	if err != nil {
		t.Fatalf("ReplayView before compaction: %v", err)
	}
	mustEqualStates(t, before.State(), want, "pre-compaction replay")

	if err := l.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if l.SealedRawSegments() != 0 || l.Windows() != 12 || l.Seq() != before.Seq() {
		t.Fatalf("post-compaction cursors: raw %d windows %d seq %d", l.SealedRawSegments(), l.Windows(), l.Seq())
	}
	after, err := l.ReplayView(-1)
	if err != nil {
		t.Fatalf("ReplayView after compaction: %v", err)
	}
	mustEqualStates(t, after.State(), want, "compacted replay")

	// Compaction is idempotent and the folded raw files are gone.
	if err := l.Compact(); err != nil {
		t.Fatalf("second Compact: %v", err)
	}
	files, err := filepath.Glob(filepath.Join(l.Dir(), "seg-*.ndjson"))
	if err != nil || len(files) != 1 {
		t.Fatalf("want exactly the base segment on disk, have %v (%v)", files, err)
	}

	// History before the base is folded: replaying or cutting there fails
	// loudly, at the boundary it works.
	if _, err := l.ReplayView(5); err == nil {
		t.Fatal("replay into compacted history succeeded")
	}
	if _, _, err := l.AsOf(l.RetentionFrame() - 1); err == nil {
		t.Fatal("AsOf before retention boundary succeeded")
	}
	v, cut, err := l.AsOf(l.RetentionFrame())
	if err != nil || cut != l.RetentionFrame() {
		t.Fatalf("AsOf at retention boundary: cut %d err %v", cut, err)
	}
	mustEqualStates(t, v.State(), want, "AsOf at retention boundary")

	// The log keeps accepting windows after compaction.
	more := genEntries(16)[12:]
	appendAll(t, l, more)
	full, err := l.ReplayView(-1)
	if err != nil {
		t.Fatalf("ReplayView after post-compaction appends: %v", err)
	}
	mustEqualStates(t, full.State(), refView(t, genEntries(16), 16).State(), "post-compaction appends")
}

func TestTruncateTo(t *testing.T) {
	entries := genEntries(10)
	dir := t.TempDir()
	l := openLog(t, dir)
	appendAll(t, l, entries) // seals at 4 and 8, active holds 2

	// A checkpoint taken at the 8-window seal boundary.
	refWindows, refSeq := 8, 14
	if l.SealedWindows() != refWindows || l.SealedSeq() != refSeq {
		t.Fatalf("seal boundary at %d/%d", l.SealedWindows(), l.SealedSeq())
	}
	appendAll(t, l, genEntries(14)[10:]) // extra history past the reference
	if err := l.Seal(); err != nil {
		t.Fatalf("Seal: %v", err)
	}

	if err := l.TruncateTo(5, 8); err == nil {
		t.Fatal("truncation inside a sealed segment succeeded")
	}
	if err := l.TruncateTo(refWindows, refSeq); err != nil {
		t.Fatalf("TruncateTo: %v", err)
	}
	if l.Windows() != refWindows || l.Seq() != refSeq {
		t.Fatalf("post-truncation cursors %d/%d", l.Windows(), l.Seq())
	}
	v, err := l.ReplayView(-1)
	if err != nil {
		t.Fatalf("ReplayView after truncation: %v", err)
	}
	mustEqualStates(t, v.State(), refView(t, entries, 8).State(), "truncated replay")

	// Re-appending the same windows reconverges with the original run.
	appendAll(t, l, entries[8:])
	v2, err := l.ReplayView(-1)
	if err != nil {
		t.Fatalf("ReplayView after re-append: %v", err)
	}
	mustEqualStates(t, v2.State(), refView(t, entries, 10).State(), "re-appended replay")

	// A compacted base cannot be cut back through.
	if err := l.Seal(); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if err := l.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if err := l.TruncateTo(4, 6); err == nil {
		t.Fatal("truncation past the compacted base succeeded")
	}
}

func TestLoadColdTrackMatchesViewState(t *testing.T) {
	entries := genEntries(10)
	l := openLog(t, t.TempDir())
	appendAll(t, l, entries)
	check := func(stage string) {
		t.Helper()
		v, err := l.ReplayView(-1)
		if err != nil {
			t.Fatalf("%s: ReplayView: %v", stage, err)
		}
		for _, vt := range v.State().Tracks {
			got, err := l.LoadColdTrack(vt.ID, vt.Members)
			if err != nil {
				t.Fatalf("%s: LoadColdTrack(%d): %v", stage, vt.ID, err)
			}
			if !reflect.DeepEqual(got, vt) {
				t.Fatalf("%s: cold track %d diverged\ngot:  %+v\nwant: %+v", stage, vt.ID, got, vt)
			}
		}
	}
	check("raw")
	if err := l.Seal(); err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if err := l.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	appendAll(t, l, genEntries(13)[10:]) // cold loads must also see the active tail
	check("compacted")

	if _, err := l.LoadColdTrack(999, []video.TrackID{999}); err == nil {
		t.Fatal("cold load of an unknown track succeeded")
	}
}

func TestLogRejectsTamperedSegments(t *testing.T) {
	entries := genEntries(8)
	dir := t.TempDir()
	l := openLog(t, dir)
	appendAll(t, l, entries)

	files, err := filepath.Glob(filepath.Join(dir, "seg-*.ndjson"))
	if err != nil || len(files) != 2 {
		t.Fatalf("want 2 sealed segments, have %v (%v)", files, err)
	}
	data, err := os.ReadFile(files[1])
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.IndexByte(data, '\n') + 10
	data[i] ^= 0x01
	if err := os.WriteFile(files[1], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := l.ReplayView(-1); err == nil {
		t.Fatal("replay over a tampered segment succeeded")
	}

	// Swapping in a valid segment from another log is caught by the
	// manifest's recorded checksum even though the file itself decodes.
	other := openLog(t, t.TempDir())
	oe := genEntries(8)
	for i := range oe {
		oe[i].Extends = oe[i].Extends[:1]
	}
	appendAll(t, other, oe)
	ofiles, err := filepath.Glob(filepath.Join(other.Dir(), "seg-*.ndjson"))
	if err != nil || len(ofiles) != 2 {
		t.Fatalf("want 2 segments in the other log, have %v (%v)", ofiles, err)
	}
	swapped, err := os.ReadFile(ofiles[1])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[1], swapped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := l.ReplayView(-1); err == nil {
		t.Fatal("replay over a swapped segment succeeded")
	}
}

func TestOpenCleansTempFilesAndChecksManifest(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir)
	appendAll(t, l, genEntries(4))
	stale := filepath.Join(dir, "seg-000099.ndjson.tmp")
	if err := os.WriteFile(stale, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	l2 := openLog(t, dir)
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale temp file survived Open")
	}
	if l2.Windows() != 4 {
		t.Fatalf("reopened log covers %d windows", l2.Windows())
	}

	// A manifest listing a missing segment file is refused.
	files, err := filepath.Glob(filepath.Join(dir, "seg-*.ndjson"))
	if err != nil || len(files) != 1 {
		t.Fatalf("want 1 segment, have %v (%v)", files, err)
	}
	if err := os.Remove(files[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "unreadable") {
		t.Fatalf("open over missing segment: %v", err)
	}
}
