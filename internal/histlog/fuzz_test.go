package histlog

import (
	"reflect"
	"testing"
)

// FuzzSegment hammers the segment decoder with arbitrary bytes: it must
// never panic, and anything it accepts must re-encode and re-decode to
// the same segment (the decoder admits only canonical, checksummed
// files, so accepted inputs are stable under a round trip).
func FuzzSegment(f *testing.F) {
	raw, _, err := EncodeSegment(SegmentHeader{Format: SegmentFormat, Version: SegmentVersion, Kind: KindRaw}, genEntries(3), nil, SegmentFooter{})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	st := buildView(genEntries(3), 3).State()
	base, _, err := EncodeSegment(SegmentHeader{Format: SegmentFormat, Version: SegmentVersion, Index: 1, Kind: KindBase}, nil, st.Tracks, SegmentFooter{EndWindow: 3, EndSeq: st.Seq, EndFrame: 14})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(base)
	f.Add([]byte("{}\n{}\n"))
	f.Add([]byte(""))
	f.Add(raw[:len(raw)/2])
	f.Add(append(append([]byte(nil), raw...), base...))

	f.Fuzz(func(t *testing.T, data []byte) {
		seg, err := DecodeSegment(data)
		if err != nil {
			return
		}
		re, ft, err := EncodeSegment(seg.Header, seg.Entries, seg.Tracks, seg.Footer)
		if err != nil {
			t.Fatalf("accepted segment does not re-encode: %v", err)
		}
		seg2, err := DecodeSegment(re)
		if err != nil {
			t.Fatalf("re-encoded segment does not decode: %v", err)
		}
		if !reflect.DeepEqual(seg2.Header, seg.Header) || !reflect.DeepEqual(seg2.Entries, seg.Entries) ||
			!reflect.DeepEqual(seg2.Tracks, seg.Tracks) || seg2.Footer != ft {
			t.Fatal("segment round trip diverged")
		}
	})
}
