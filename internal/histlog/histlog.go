// Package histlog implements the log-structured on-disk history of a
// merge session: segmented, checksummed NDJSON log files holding the
// per-window view feed (track extensions plus ordered merge events), a
// sealed-segment manifest wrapped in the checkpoint envelope, a
// compactor that folds sealed segments into a materialised base
// snapshot, and replay — full, as-of-frame, and per-track — that
// reconstructs trackdb.LiveView state bit-identically to the live
// session's.
//
// A segment file is one header line, zero or more record lines, and one
// footer line, all NDJSON. The footer carries the record count and a
// hex SHA-256 over the exact record bytes, so a truncated, bit-flipped,
// or concatenated file is rejected wholesale — the checkpoint envelope's
// all-or-nothing guarantee, restated for streaming appends: a segment
// without a valid footer was never sealed and does not exist as far as
// replay is concerned. Raw segments hold WindowEntry records (one per
// committed window); base segments hold trackdb.ViewTrack records (the
// folded view state at a window boundary).
package histlog

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"

	"github.com/tmerge/tmerge/internal/core"
	"github.com/tmerge/tmerge/internal/trackdb"
	"github.com/tmerge/tmerge/internal/video"
)

const (
	// SegmentFormat is the header's format discriminator.
	SegmentFormat = "tmerge/histseg"
	// SegmentVersion is the segment schema version; readers refuse other
	// versions before looking at any record.
	SegmentVersion = 1

	// KindRaw marks a segment of per-window WindowEntry records.
	KindRaw = "raw"
	// KindBase marks a compacted segment of ViewTrack records — the
	// materialised view state covering every window before its footer's
	// EndWindow.
	KindBase = "base"

	// maxLineBytes caps one NDJSON line of a segment file. Raw records
	// hold one window's feed and base records one canonical track; both
	// are far below this on any sane input, and the cap keeps a hostile
	// or corrupt file from ballooning the decoder.
	maxLineBytes = 16 << 20
)

// Extend is one track-extension record of the view feed: raw track
// Track gained the box of frame Frame with center (CX, CY) and class
// Class — exactly the fields trackdb.LiveView folds per box, so the
// journal stays compact (appearance observations never touch disk).
type Extend struct {
	Track video.TrackID    `json:"track"`
	Frame video.FrameIndex `json:"frame"`
	CX    float64          `json:"cx"`
	CY    float64          `json:"cy"`
	Class video.ClassID    `json:"class,omitempty"`
}

// WindowEntry is one committed window's slice of the view feed: the
// window itself (a marker even when nothing changed — it keeps the
// replay chain contiguous and is an AsOf cut point), the track
// extensions fed before the window's merges, and the window's ordered
// merge events.
type WindowEntry struct {
	Window  video.Window      `json:"window"`
	Extends []Extend          `json:"extends,omitempty"`
	Events  []core.MergeEvent `json:"events,omitempty"`
}

// SegmentHeader is a segment file's first line.
type SegmentHeader struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	// Index is the segment's position in the log's allocation order.
	Index int `json:"index"`
	// Kind is KindRaw or KindBase.
	Kind string `json:"kind"`
	// StartWindow and StartSeq are the window index and merge-event
	// cursor the segment's first record continues from (both 0 for a
	// base segment, which folds history from the beginning).
	StartWindow int `json:"start_window"`
	StartSeq    int `json:"start_seq"`
}

// SegmentFooter is a segment file's last line: the seal. EndWindow and
// EndSeq are exclusive (the window index and event cursor the *next*
// segment continues from); EndFrame is the last covered window's End —
// the earliest frame an AsOf served from segments after this one can
// cut at. Checksum is the hex SHA-256 of the record lines' exact bytes.
type SegmentFooter struct {
	Records   int              `json:"records"`
	EndWindow int              `json:"end_window"`
	EndSeq    int              `json:"end_seq"`
	EndFrame  video.FrameIndex `json:"end_frame"`
	Checksum  string           `json:"checksum"`
}

// Segment is one fully decoded, verified segment. Entries is populated
// for raw segments, Tracks for base segments.
type Segment struct {
	Header  SegmentHeader
	Entries []WindowEntry
	Tracks  []trackdb.ViewTrack
	Footer  SegmentFooter
}

// validateExtend checks one extension record's self-contained
// invariants against its window.
func validateExtend(x Extend, w video.Window) error {
	if x.Track < 0 {
		return fmt.Errorf("histlog: extension has negative track id %d", x.Track)
	}
	if x.Frame < 0 || x.Frame > w.End {
		return fmt.Errorf("histlog: extension of track %d at frame %d outside window ending at %d", x.Track, x.Frame, w.End)
	}
	if x.Class < 0 {
		return fmt.Errorf("histlog: extension of track %d has negative class %d", x.Track, x.Class)
	}
	for _, v := range [2]float64{x.CX, x.CY} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("histlog: extension of track %d has non-finite center", x.Track)
		}
	}
	return nil
}

// Validate checks the entry's self-contained invariants, with seq the
// event cursor the entry must continue from. It returns the cursor
// after the entry's events.
func (e *WindowEntry) Validate(seq int) (int, error) {
	if e.Window.Index < 0 || e.Window.Start < 0 || e.Window.End < e.Window.Start {
		return 0, fmt.Errorf("histlog: window entry %d has invalid bounds [%d, %d]", e.Window.Index, e.Window.Start, e.Window.End)
	}
	for _, x := range e.Extends {
		if err := validateExtend(x, e.Window); err != nil {
			return 0, err
		}
	}
	for _, ev := range e.Events {
		if err := ev.Validate(); err != nil {
			return 0, fmt.Errorf("histlog: window entry %d: %w", e.Window.Index, err)
		}
		if ev.Seq != seq {
			return 0, fmt.Errorf("histlog: window entry %d has event seq %d, cursor is %d", e.Window.Index, ev.Seq, seq)
		}
		seq++
	}
	return seq, nil
}

// EncodeSegment serialises a sealed segment: header, the given records
// (raw entries or base tracks per hdr.Kind), and a footer computed over
// the record bytes. The footer's end cursors are derived from the
// records themselves; base segments take them from base (the folded
// view's cursors), since track records carry no window information.
func EncodeSegment(hdr SegmentHeader, entries []WindowEntry, tracks []trackdb.ViewTrack, base SegmentFooter) ([]byte, SegmentFooter, error) {
	var buf bytes.Buffer
	hb, err := json.Marshal(hdr)
	if err != nil {
		return nil, SegmentFooter{}, fmt.Errorf("histlog: encoding segment header: %w", err)
	}
	buf.Write(hb)
	buf.WriteByte('\n')

	h := sha256.New()
	writeRec := func(v any) error {
		rb, err := json.Marshal(v)
		if err != nil {
			return fmt.Errorf("histlog: encoding segment record: %w", err)
		}
		h.Write(rb)
		h.Write([]byte{'\n'})
		buf.Write(rb)
		buf.WriteByte('\n')
		return nil
	}

	ft := SegmentFooter{}
	switch hdr.Kind {
	case KindRaw:
		seq := hdr.StartSeq
		endFrame := video.FrameIndex(-1)
		for i := range entries {
			e := &entries[i]
			seq, err = e.Validate(seq)
			if err != nil {
				return nil, SegmentFooter{}, err
			}
			if err := writeRec(e); err != nil {
				return nil, SegmentFooter{}, err
			}
			endFrame = e.Window.End
		}
		ft = SegmentFooter{
			Records:   len(entries),
			EndWindow: hdr.StartWindow + len(entries),
			EndSeq:    seq,
			EndFrame:  endFrame,
		}
	case KindBase:
		for i := range tracks {
			if err := writeRec(&tracks[i]); err != nil {
				return nil, SegmentFooter{}, err
			}
		}
		ft = SegmentFooter{
			Records:   len(tracks),
			EndWindow: base.EndWindow,
			EndSeq:    base.EndSeq,
			EndFrame:  base.EndFrame,
		}
	default:
		return nil, SegmentFooter{}, fmt.Errorf("histlog: unknown segment kind %q", hdr.Kind)
	}
	ft.Checksum = hex.EncodeToString(h.Sum(nil))

	fb, err := json.Marshal(ft)
	if err != nil {
		return nil, SegmentFooter{}, fmt.Errorf("histlog: encoding segment footer: %w", err)
	}
	buf.Write(fb)
	buf.WriteByte('\n')
	return buf.Bytes(), ft, nil
}

// splitLines cuts data into newline-terminated lines, enforcing the
// per-line cap and requiring a trailing newline (a file not ending in
// one was truncated mid-line).
func splitLines(data []byte) ([][]byte, error) {
	var lines [][]byte
	for len(data) > 0 {
		i := bytes.IndexByte(data, '\n')
		if i < 0 {
			return nil, fmt.Errorf("histlog: segment truncated mid-line (no trailing newline)")
		}
		if i > maxLineBytes {
			return nil, fmt.Errorf("histlog: segment line exceeds %d bytes", maxLineBytes)
		}
		lines = append(lines, data[:i])
		data = data[i+1:]
	}
	return lines, nil
}

// decodeStrict unmarshals one line with unknown fields and trailing
// content rejected — the hardened-decoder convention shared with the
// repo's other NDJSON formats.
func decodeStrict(line []byte, out any) error {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(out); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing content after record")
	}
	return nil
}

// DecodeSegment decodes and fully verifies one segment file: header
// format and version, per-record invariants (window and event-cursor
// chains for raw segments, ascending track IDs for base segments), and
// the footer's counts, cursors, and checksum over the exact record
// bytes. Any violation rejects the whole segment — replay never sees a
// partially valid one.
func DecodeSegment(data []byte) (*Segment, error) {
	lines, err := splitLines(data)
	if err != nil {
		return nil, err
	}
	if len(lines) < 2 {
		return nil, fmt.Errorf("histlog: segment has %d lines, need header and footer", len(lines))
	}
	seg := &Segment{}
	if err := decodeStrict(lines[0], &seg.Header); err != nil {
		return nil, fmt.Errorf("histlog: segment header does not decode: %w", err)
	}
	hdr := seg.Header
	if hdr.Format != SegmentFormat {
		return nil, fmt.Errorf("histlog: segment format %q, want %q", hdr.Format, SegmentFormat)
	}
	if hdr.Version != SegmentVersion {
		return nil, fmt.Errorf("histlog: unsupported segment version %d (this build reads version %d)", hdr.Version, SegmentVersion)
	}
	if hdr.Index < 0 || hdr.StartWindow < 0 || hdr.StartSeq < 0 {
		return nil, fmt.Errorf("histlog: segment %d has negative cursors (window %d, seq %d)", hdr.Index, hdr.StartWindow, hdr.StartSeq)
	}
	if hdr.Kind == KindBase && (hdr.StartWindow != 0 || hdr.StartSeq != 0) {
		return nil, fmt.Errorf("histlog: base segment %d must start at window 0, seq 0", hdr.Index)
	}
	if err := decodeStrict(lines[len(lines)-1], &seg.Footer); err != nil {
		return nil, fmt.Errorf("histlog: segment footer does not decode: %w", err)
	}
	recs := lines[1 : len(lines)-1]
	if seg.Footer.Records != len(recs) {
		return nil, fmt.Errorf("histlog: segment %d footer records %d, file holds %d", hdr.Index, seg.Footer.Records, len(recs))
	}

	h := sha256.New()
	for _, r := range recs {
		h.Write(r)
		h.Write([]byte{'\n'})
	}
	if got := hex.EncodeToString(h.Sum(nil)); got != seg.Footer.Checksum {
		return nil, fmt.Errorf("histlog: segment %d record checksum mismatch (got %s, recorded %s): segment is corrupt", hdr.Index, got, seg.Footer.Checksum)
	}

	switch hdr.Kind {
	case KindRaw:
		seq := hdr.StartSeq
		endFrame := video.FrameIndex(-1)
		seg.Entries = make([]WindowEntry, 0, len(recs))
		for i, r := range recs {
			var e WindowEntry
			if err := decodeStrict(r, &e); err != nil {
				return nil, fmt.Errorf("histlog: segment %d record %d does not decode: %w", hdr.Index, i, err)
			}
			if e.Window.Index != hdr.StartWindow+i {
				return nil, fmt.Errorf("histlog: segment %d record %d holds window %d, want %d", hdr.Index, i, e.Window.Index, hdr.StartWindow+i)
			}
			seq, err = e.Validate(seq)
			if err != nil {
				return nil, fmt.Errorf("histlog: segment %d record %d: %w", hdr.Index, i, err)
			}
			if e.Window.End < endFrame {
				return nil, fmt.Errorf("histlog: segment %d record %d window end %d regressed below %d", hdr.Index, i, e.Window.End, endFrame)
			}
			endFrame = e.Window.End
			seg.Entries = append(seg.Entries, e)
		}
		if seg.Footer.EndWindow != hdr.StartWindow+len(recs) {
			return nil, fmt.Errorf("histlog: segment %d footer end window %d, records end at %d", hdr.Index, seg.Footer.EndWindow, hdr.StartWindow+len(recs))
		}
		if seg.Footer.EndSeq != seq {
			return nil, fmt.Errorf("histlog: segment %d footer end seq %d, records end at %d", hdr.Index, seg.Footer.EndSeq, seq)
		}
		if len(recs) > 0 && seg.Footer.EndFrame != endFrame {
			return nil, fmt.Errorf("histlog: segment %d footer end frame %d, records end at %d", hdr.Index, seg.Footer.EndFrame, endFrame)
		}
	case KindBase:
		if seg.Footer.EndWindow < 0 || seg.Footer.EndSeq < 0 {
			return nil, fmt.Errorf("histlog: base segment %d has negative end cursors", hdr.Index)
		}
		seg.Tracks = make([]trackdb.ViewTrack, 0, len(recs))
		var prev video.TrackID = -1
		for i, r := range recs {
			var t trackdb.ViewTrack
			if err := decodeStrict(r, &t); err != nil {
				return nil, fmt.Errorf("histlog: segment %d record %d does not decode: %w", hdr.Index, i, err)
			}
			if t.ID <= prev {
				return nil, fmt.Errorf("histlog: base segment %d track IDs not strictly ascending at %d", hdr.Index, t.ID)
			}
			prev = t.ID
			seg.Tracks = append(seg.Tracks, t)
		}
	default:
		return nil, fmt.Errorf("histlog: unknown segment kind %q", hdr.Kind)
	}
	return seg, nil
}
