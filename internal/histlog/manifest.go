package histlog

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/tmerge/tmerge/internal/checkpoint"
	"github.com/tmerge/tmerge/internal/video"
)

const (
	// ManifestFormat is the manifest envelope's format discriminator.
	ManifestFormat = "tmerge/histmanifest"
	// ManifestVersion is the manifest schema version.
	ManifestVersion = 1
	// ManifestFile is the manifest's file name inside a history directory.
	ManifestFile = "MANIFEST.json"
)

// SegmentInfo is one sealed segment's manifest entry: its header and
// footer restated, plus the file it lives in. The recorded checksum
// must match the file footer's — a segment file swapped in from another
// directory decodes cleanly but is still rejected.
type SegmentInfo struct {
	Index       int              `json:"index"`
	Kind        string           `json:"kind"`
	File        string           `json:"file"`
	Records     int              `json:"records"`
	StartWindow int              `json:"start_window"`
	EndWindow   int              `json:"end_window"`
	StartSeq    int              `json:"start_seq"`
	EndSeq      int              `json:"end_seq"`
	EndFrame    video.FrameIndex `json:"end_frame"`
	Checksum    string           `json:"checksum"`
}

// Manifest is the durable index of a history directory: every sealed
// segment in replay order. It is sealed in the checkpoint envelope
// (format ManifestFormat) and replaced atomically via rename, so a
// reader sees either the previous complete manifest or the next one.
// Anything not listed here — an unsealed tail, a segment file whose
// manifest write crashed — does not exist as far as replay is concerned.
type Manifest struct {
	// NextIndex is the index the next sealed segment will take. It only
	// grows, surviving truncation and compaction, so segment file names
	// are never reused across a session's lifetime.
	NextIndex int           `json:"next_index"`
	Segments  []SegmentInfo `json:"segments,omitempty"`
}

// Validate checks the manifest's structural invariants: at most one
// base segment and only in first position, a contiguous window/seq
// chain across raw segments, strictly increasing indexes, and sane
// per-segment bounds.
func (m *Manifest) Validate() error {
	if m.NextIndex < 0 {
		return fmt.Errorf("histlog: manifest next index %d is negative", m.NextIndex)
	}
	prevIndex := -1
	window, seq := 0, 0
	endFrame := video.FrameIndex(-1)
	for i, s := range m.Segments {
		if s.Index <= prevIndex {
			return fmt.Errorf("histlog: manifest segment indexes not strictly ascending at %d", s.Index)
		}
		if s.Index >= m.NextIndex {
			return fmt.Errorf("histlog: manifest segment index %d not below next index %d", s.Index, m.NextIndex)
		}
		prevIndex = s.Index
		if s.File == "" || s.File != filepath.Base(s.File) || strings.HasPrefix(s.File, ".") {
			return fmt.Errorf("histlog: manifest segment %d has unsafe file name %q", s.Index, s.File)
		}
		if len(s.Checksum) != 64 {
			return fmt.Errorf("histlog: manifest segment %d checksum is not hex SHA-256", s.Index)
		}
		switch s.Kind {
		case KindBase:
			if i != 0 {
				return fmt.Errorf("histlog: manifest base segment %d is not first", s.Index)
			}
			if s.StartWindow != 0 || s.StartSeq != 0 {
				return fmt.Errorf("histlog: manifest base segment %d must start at window 0, seq 0", s.Index)
			}
			if s.Records < 0 {
				return fmt.Errorf("histlog: manifest base segment %d has negative record count", s.Index)
			}
		case KindRaw:
			if s.StartWindow != window || s.StartSeq != seq {
				return fmt.Errorf("histlog: manifest segment %d starts at window %d seq %d, chain is at window %d seq %d", s.Index, s.StartWindow, s.StartSeq, window, seq)
			}
			if s.Records < 1 || s.EndWindow != s.StartWindow+s.Records {
				return fmt.Errorf("histlog: manifest raw segment %d covers windows [%d, %d) with %d records", s.Index, s.StartWindow, s.EndWindow, s.Records)
			}
		default:
			return fmt.Errorf("histlog: manifest segment %d has unknown kind %q", s.Index, s.Kind)
		}
		if s.EndWindow < s.StartWindow || s.EndSeq < s.StartSeq {
			return fmt.Errorf("histlog: manifest segment %d end cursors regress", s.Index)
		}
		if s.EndFrame < endFrame {
			return fmt.Errorf("histlog: manifest segment %d end frame %d regressed below %d", s.Index, s.EndFrame, endFrame)
		}
		window, seq, endFrame = s.EndWindow, s.EndSeq, s.EndFrame
	}
	return nil
}

// loadManifest reads and verifies dir's manifest. A missing manifest
// is an empty log, not an error.
func loadManifest(dir string) (Manifest, error) {
	var m Manifest
	data, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if os.IsNotExist(err) {
		return m, nil
	}
	if err != nil {
		return m, fmt.Errorf("histlog: reading manifest: %w", err)
	}
	if err := checkpoint.OpenAs(data, ManifestFormat, ManifestVersion, &m); err != nil {
		return m, err
	}
	if err := m.Validate(); err != nil {
		return m, err
	}
	return m, nil
}

// saveManifest atomically replaces dir's manifest: sealed envelope to a
// temp file, then rename over the real name.
func saveManifest(dir string, m *Manifest) error {
	if err := m.Validate(); err != nil {
		return err
	}
	data, err := checkpoint.SealAs(ManifestFormat, ManifestVersion, m)
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, ManifestFile+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("histlog: writing manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, ManifestFile)); err != nil {
		return fmt.Errorf("histlog: publishing manifest: %w", err)
	}
	return nil
}
