package histlog

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/tmerge/tmerge/internal/trackdb"
	"github.com/tmerge/tmerge/internal/video"
)

// Options configures a Log.
type Options struct {
	// WindowsPerSegment is the auto-seal threshold: once the active
	// segment holds this many window entries it is sealed to disk.
	// Defaults to DefaultWindowsPerSegment when zero or negative.
	WindowsPerSegment int
}

// DefaultWindowsPerSegment is the auto-seal threshold used when
// Options does not set one.
const DefaultWindowsPerSegment = 64

// Log is one session's segmented history on disk: a directory of
// sealed, checksummed segment files indexed by a manifest, plus the
// in-memory active segment accumulating window entries since the last
// seal. The active tail is deliberately volatile — a crash loses it,
// and restore replays the lost windows from the source stream exactly
// as the checkpoint subsystem already replays everything after the
// last checkpoint. Durability is only ever claimed at Seal, and Seal
// is ordered before every checkpoint, so a checkpoint's HistoryRef
// always points inside the sealed region.
//
// Log is not safe for concurrent use; the ingest session owning it
// serialises access like it does the merger and the view.
type Log struct {
	dir string
	opt Options
	man Manifest

	// Active (unsealed) tail.
	active      []WindowEntry
	activeStart int // window index of active[0]; == sealed window count
	activeSeq   int // event cursor at activeStart; == sealed seq

	seq      int              // event cursor after the active tail
	endFrame video.FrameIndex // last appended window's End, -1 when none
}

// Open opens (creating if needed) the history log in dir, verifying
// the manifest chain and that every listed segment file exists.
// Leftover temp files from an interrupted seal are removed; segment
// files on disk that the manifest does not list are ignored (they were
// never published and will be overwritten deterministically on reuse
// of their index).
func Open(dir string, opt Options) (*Log, error) {
	if dir == "" {
		return nil, fmt.Errorf("histlog: empty history directory")
	}
	if opt.WindowsPerSegment <= 0 {
		opt.WindowsPerSegment = DefaultWindowsPerSegment
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("histlog: creating history directory: %w", err)
	}
	man, err := loadManifest(dir)
	if err != nil {
		return nil, err
	}
	for _, s := range man.Segments {
		if _, err := os.Stat(filepath.Join(dir, s.File)); err != nil {
			return nil, fmt.Errorf("histlog: manifest lists segment %d file %q, but it is unreadable: %w", s.Index, s.File, err)
		}
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("histlog: listing history directory: %w", err)
	}
	for _, e := range names {
		if strings.HasSuffix(e.Name(), ".tmp") {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				return nil, fmt.Errorf("histlog: removing stale temp file: %w", err)
			}
		}
	}
	l := &Log{dir: dir, opt: opt, man: man, endFrame: -1}
	l.resetCursors()
	return l, nil
}

// resetCursors derives the in-memory cursors from the manifest and an
// empty active tail.
func (l *Log) resetCursors() {
	w, s, f := 0, 0, video.FrameIndex(-1)
	if n := len(l.man.Segments); n > 0 {
		last := l.man.Segments[n-1]
		w, s, f = last.EndWindow, last.EndSeq, last.EndFrame
	}
	l.active = nil
	l.activeStart, l.activeSeq = w, s
	l.seq = s
	l.endFrame = f
}

// Dir returns the history directory the log lives in.
func (l *Log) Dir() string { return l.dir }

// Windows returns the number of committed windows the log covers,
// sealed and active: the window index the next AppendWindow must carry.
func (l *Log) Windows() int { return l.activeStart + len(l.active) }

// Seq returns the event cursor after the last appended window.
func (l *Log) Seq() int { return l.seq }

// SealedWindows returns the number of windows covered by sealed
// segments — the durable prefix a checkpoint may reference.
func (l *Log) SealedWindows() int { return l.activeStart }

// SealedSeq returns the event cursor at the end of the sealed prefix.
// Merge events below this cursor are replayable from segments, so the
// in-memory merger log may be trimmed to it.
func (l *Log) SealedSeq() int { return l.activeSeq }

// EndFrame returns the last appended window's End frame, -1 when the
// log is empty.
func (l *Log) EndFrame() video.FrameIndex { return l.endFrame }

// SealedRawSegments returns how many sealed raw (uncompacted) segments
// the manifest lists — the compaction policy's trigger metric.
func (l *Log) SealedRawSegments() int {
	n := 0
	for _, s := range l.man.Segments {
		if s.Kind == KindRaw {
			n++
		}
	}
	return n
}

// RetentionFrame returns the earliest frame AsOf can cut at: the base
// segment's end frame when history has been compacted, -1 (everything)
// otherwise.
func (l *Log) RetentionFrame() video.FrameIndex {
	if len(l.man.Segments) > 0 && l.man.Segments[0].Kind == KindBase {
		return l.man.Segments[0].EndFrame
	}
	return -1
}

// AppendWindow adds one committed window's feed to the active segment,
// validating the window-index and event-seq chains, and auto-seals
// when the active segment reaches Options.WindowsPerSegment entries.
func (l *Log) AppendWindow(e WindowEntry) error {
	if e.Window.Index != l.Windows() {
		return fmt.Errorf("histlog: log covers %d windows, got window %d", l.Windows(), e.Window.Index)
	}
	seq, err := e.Validate(l.seq)
	if err != nil {
		return err
	}
	if e.Window.End < l.endFrame {
		return fmt.Errorf("histlog: window %d ends at frame %d, before the log's end frame %d", e.Window.Index, e.Window.End, l.endFrame)
	}
	l.active = append(l.active, e)
	l.seq = seq
	l.endFrame = e.Window.End
	if len(l.active) >= l.opt.WindowsPerSegment {
		return l.Seal()
	}
	return nil
}

// Seal makes the active tail durable: the accumulated window entries
// become one sealed raw segment (temp write, then rename) and the
// manifest is atomically republished to list it. Sealing an empty tail
// is a no-op. On error the active tail is kept so the caller may retry.
func (l *Log) Seal() error {
	if len(l.active) == 0 {
		return nil
	}
	hdr := SegmentHeader{
		Format:      SegmentFormat,
		Version:     SegmentVersion,
		Index:       l.man.NextIndex,
		Kind:        KindRaw,
		StartWindow: l.activeStart,
		StartSeq:    l.activeSeq,
	}
	info, err := l.writeSegment(hdr, l.active, nil, SegmentFooter{})
	if err != nil {
		return err
	}
	man := l.man
	man.NextIndex++
	man.Segments = append(append([]SegmentInfo(nil), man.Segments...), info)
	if err := saveManifest(l.dir, &man); err != nil {
		return err
	}
	l.man = man
	l.active = nil
	l.activeStart, l.activeSeq = info.EndWindow, info.EndSeq
	return nil
}

// writeSegment encodes one segment, writes it to a temp file, renames
// it into place, and returns its manifest entry.
func (l *Log) writeSegment(hdr SegmentHeader, entries []WindowEntry, tracks []trackdb.ViewTrack, base SegmentFooter) (SegmentInfo, error) {
	data, ft, err := EncodeSegment(hdr, entries, tracks, base)
	if err != nil {
		return SegmentInfo{}, err
	}
	name := fmt.Sprintf("seg-%06d.ndjson", hdr.Index)
	tmp := filepath.Join(l.dir, name+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return SegmentInfo{}, fmt.Errorf("histlog: writing segment %d: %w", hdr.Index, err)
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, name)); err != nil {
		return SegmentInfo{}, fmt.Errorf("histlog: publishing segment %d: %w", hdr.Index, err)
	}
	return SegmentInfo{
		Index:       hdr.Index,
		Kind:        hdr.Kind,
		File:        name,
		Records:     ft.Records,
		StartWindow: hdr.StartWindow,
		EndWindow:   ft.EndWindow,
		StartSeq:    hdr.StartSeq,
		EndSeq:      ft.EndSeq,
		EndFrame:    ft.EndFrame,
		Checksum:    ft.Checksum,
	}, nil
}

// readSegment loads, decodes, and verifies the segment behind one
// manifest entry, cross-checking the file's identity (header cursors
// and footer checksum) against what the manifest recorded.
func (l *Log) readSegment(info SegmentInfo) (*Segment, error) {
	data, err := os.ReadFile(filepath.Join(l.dir, info.File))
	if err != nil {
		return nil, fmt.Errorf("histlog: reading segment %d: %w", info.Index, err)
	}
	seg, err := DecodeSegment(data)
	if err != nil {
		return nil, err
	}
	if seg.Header.Index != info.Index || seg.Header.Kind != info.Kind ||
		seg.Header.StartWindow != info.StartWindow || seg.Header.StartSeq != info.StartSeq ||
		seg.Footer.Checksum != info.Checksum || seg.Footer.Records != info.Records ||
		seg.Footer.EndWindow != info.EndWindow || seg.Footer.EndSeq != info.EndSeq {
		return nil, fmt.Errorf("histlog: segment file %q does not match its manifest entry (index %d)", info.File, info.Index)
	}
	return seg, nil
}

// applyEntry replays one window entry into a view: extensions first,
// then the window's merge events — the exact order the live session
// fed them.
func applyEntry(v *trackdb.LiveView, e *WindowEntry) error {
	for _, x := range e.Extends {
		v.ExtendCell(x.Track, x.Frame, x.Class, x.CX, x.CY)
	}
	if err := v.ApplyEvents(e.Events); err != nil {
		return err
	}
	return nil
}

// ReplayView reconstructs the live view as of upto committed windows
// (-1 for everything the log covers, sealed and active). The result is
// bit-identical — same ViewState — to the view a live session held
// after committing that many windows, which is the subsystem's core
// invariant. Replaying to a point the base segment has compacted past
// fails: that history has been folded.
func (l *Log) ReplayView(upto int) (*trackdb.LiveView, error) {
	if upto < 0 {
		upto = l.Windows()
	}
	if upto > l.Windows() {
		return nil, fmt.Errorf("histlog: replay to window %d, log covers %d", upto, l.Windows())
	}
	view, applied, err := l.replayBase(upto)
	if err != nil {
		return nil, err
	}
	for _, info := range l.man.Segments {
		if info.Kind != KindRaw || applied >= upto {
			continue
		}
		seg, err := l.readSegment(info)
		if err != nil {
			return nil, err
		}
		for i := range seg.Entries {
			if applied >= upto {
				break
			}
			if err := applyEntry(view, &seg.Entries[i]); err != nil {
				return nil, err
			}
			applied++
		}
	}
	for i := range l.active {
		if applied >= upto {
			break
		}
		if err := applyEntry(view, &l.active[i]); err != nil {
			return nil, err
		}
		applied++
	}
	if applied != upto {
		return nil, fmt.Errorf("histlog: replay applied %d windows, want %d", applied, upto)
	}
	view.Flush()
	return view, nil
}

// replayBase seeds a replay: the restored base-segment view when one
// exists (refusing targets it has compacted past), an empty view
// otherwise. It returns the view and how many windows it covers.
func (l *Log) replayBase(upto int) (*trackdb.LiveView, int, error) {
	if len(l.man.Segments) == 0 || l.man.Segments[0].Kind != KindBase {
		return trackdb.NewLiveView(), 0, nil
	}
	info := l.man.Segments[0]
	if info.EndWindow > upto {
		return nil, 0, fmt.Errorf("histlog: history before window %d was compacted away (replay target %d)", info.EndWindow, upto)
	}
	seg, err := l.readSegment(info)
	if err != nil {
		return nil, 0, err
	}
	view, err := trackdb.RestoreView(trackdb.ViewState{Seq: info.EndSeq, Tracks: seg.Tracks})
	if err != nil {
		return nil, 0, err
	}
	return view, info.EndWindow, nil
}

// AsOf reconstructs the view at the time-travel cut "all windows whose
// End is at or before frame": nearest materialised snapshot (the base
// segment, when one exists) plus raw-segment replay. It returns the
// view and the cut's actual frame — the last applied window's End (or
// the base's end frame), -1 when no window qualifies. Frames before
// the retention boundary (a compacted base's end frame) are refused.
func (l *Log) AsOf(frame video.FrameIndex) (*trackdb.LiveView, video.FrameIndex, error) {
	if rf := l.RetentionFrame(); rf >= 0 && frame < rf {
		return nil, 0, fmt.Errorf("histlog: frame %d is before the retention boundary %d (compacted away)", frame, rf)
	}
	view, applied, err := l.replayBase(l.Windows())
	if err != nil {
		return nil, 0, err
	}
	cut := video.FrameIndex(-1)
	if applied > 0 {
		cut = l.man.Segments[0].EndFrame
	}
	done := false
	for _, info := range l.man.Segments {
		if info.Kind != KindRaw || done {
			continue
		}
		// A sealed segment whose last window still ends at or before the
		// cut frame applies wholesale; only the segment straddling the cut
		// needs per-entry inspection.
		seg, err := l.readSegment(info)
		if err != nil {
			return nil, 0, err
		}
		for i := range seg.Entries {
			e := &seg.Entries[i]
			if e.Window.End > frame {
				done = true
				break
			}
			if err := applyEntry(view, e); err != nil {
				return nil, 0, err
			}
			cut = e.Window.End
		}
	}
	for i := range l.active {
		if done {
			break
		}
		e := &l.active[i]
		if e.Window.End > frame {
			break
		}
		if err := applyEntry(view, e); err != nil {
			return nil, 0, err
		}
		cut = e.Window.End
	}
	view.Flush()
	return view, cut, nil
}

// TruncateTo cuts the log back to exactly windows committed windows and
// event cursor seq — a checkpoint's HistoryRef — for restore: the
// volatile active tail is discarded and sealed segments past the
// reference are unpublished (manifest first, then file removal). The
// reference must land on a seal boundary (checkpoints always do: Seal
// is ordered before Checkpoint) and must not have been compacted past.
func (l *Log) TruncateTo(windows, seq int) error {
	if windows < 0 || seq < 0 {
		return fmt.Errorf("histlog: negative truncation target (windows %d, seq %d)", windows, seq)
	}
	if l.SealedWindows() < windows {
		return fmt.Errorf("histlog: log seals %d windows, checkpoint references %d — history is missing", l.SealedWindows(), windows)
	}
	keep := len(l.man.Segments)
	for keep > 0 && l.man.Segments[keep-1].Kind == KindRaw && l.man.Segments[keep-1].StartWindow >= windows {
		keep--
	}
	kept, dropped := l.man.Segments[:keep], l.man.Segments[keep:]
	w, s := 0, 0
	if keep > 0 {
		last := kept[keep-1]
		w, s = last.EndWindow, last.EndSeq
	}
	if w != windows || s != seq {
		return fmt.Errorf("histlog: checkpoint references window %d seq %d, but sealed segments cut at window %d seq %d", windows, seq, w, s)
	}
	man := l.man
	man.Segments = append([]SegmentInfo(nil), kept...)
	if err := saveManifest(l.dir, &man); err != nil {
		return err
	}
	l.man = man
	l.resetCursors()
	for _, s := range dropped {
		if err := os.Remove(filepath.Join(l.dir, s.File)); err != nil {
			return fmt.Errorf("histlog: removing truncated segment %d: %w", s.Index, err)
		}
	}
	return nil
}

// Reset wipes the log back to empty — a fresh session claiming a
// directory that still holds a previous session's history. The manifest
// is republished first (atomically, listing nothing), then the orphaned
// segment files are deleted; NextIndex survives so file names are never
// reused.
func (l *Log) Reset() error {
	old := l.man.Segments
	man := Manifest{NextIndex: l.man.NextIndex}
	if err := saveManifest(l.dir, &man); err != nil {
		return err
	}
	l.man = man
	l.resetCursors()
	for _, s := range old {
		if err := os.Remove(filepath.Join(l.dir, s.File)); err != nil {
			return fmt.Errorf("histlog: removing old segment %d: %w", s.Index, err)
		}
	}
	return nil
}

// Compact folds every sealed segment — the existing base, if any, plus
// all sealed raw segments — into one new base segment holding the
// materialised view state at the sealed boundary, then republishes the
// manifest and deletes the folded files. The invariant (proved by the
// equivalence tests) is that replay through the compacted log yields
// bit-identical view state and query answers to replay through the
// full one: superseded unions and retracted identities are gone from
// the representation, not from the answer. The active tail is
// untouched. Compacting a log with no sealed raw segments is a no-op.
func (l *Log) Compact() error {
	folds := 0
	for _, s := range l.man.Segments {
		if s.Kind == KindRaw {
			folds++
		}
	}
	if folds == 0 {
		return nil
	}
	view, err := l.ReplayView(l.SealedWindows())
	if err != nil {
		return err
	}
	st := view.State()
	if st.Seq != l.SealedSeq() {
		return fmt.Errorf("histlog: compaction replay ended at seq %d, sealed seq is %d", st.Seq, l.SealedSeq())
	}
	last := l.man.Segments[len(l.man.Segments)-1]
	hdr := SegmentHeader{
		Format:  SegmentFormat,
		Version: SegmentVersion,
		Index:   l.man.NextIndex,
		Kind:    KindBase,
	}
	info, err := l.writeSegment(hdr, nil, st.Tracks, SegmentFooter{
		EndWindow: l.SealedWindows(),
		EndSeq:    l.SealedSeq(),
		EndFrame:  last.EndFrame,
	})
	if err != nil {
		return err
	}
	old := l.man.Segments
	man := Manifest{NextIndex: l.man.NextIndex + 1, Segments: []SegmentInfo{info}}
	if err := saveManifest(l.dir, &man); err != nil {
		return err
	}
	l.man = man
	for _, s := range old {
		if err := os.Remove(filepath.Join(l.dir, s.File)); err != nil {
			return fmt.Errorf("histlog: removing compacted segment %d: %w", s.Index, err)
		}
	}
	return nil
}

// LoadColdTrack reconstructs one canonical track's full cell set from
// sealed segments and the active tail: the base segment's cells for
// any member group folded there, overlaid with every journaled
// extension of the group's members, lower member winning contested
// frames — the LiveView dedup rule, so the result is exactly the
// ViewTrack a never-evicting view would serialise for this group.
// members must be the group's complete raw-member set (the tiered view
// tracks it even for cold identities).
func (l *Log) LoadColdTrack(canon video.TrackID, members []video.TrackID) (trackdb.ViewTrack, error) {
	want := make(map[video.TrackID]bool, len(members))
	for _, m := range members {
		want[m] = true
	}
	cells := make(map[video.FrameIndex]trackdb.ViewCell)
	fold := func(c trackdb.ViewCell) {
		if ex, held := cells[c.Frame]; held && ex.Member <= c.Member {
			return
		}
		cells[c.Frame] = c
	}
	for _, info := range l.man.Segments {
		seg, err := l.readSegment(info)
		if err != nil {
			return trackdb.ViewTrack{}, err
		}
		switch info.Kind {
		case KindBase:
			for i := range seg.Tracks {
				t := &seg.Tracks[i]
				if !want[t.ID] {
					continue
				}
				for _, c := range t.Cells {
					fold(c)
				}
			}
		case KindRaw:
			for i := range seg.Entries {
				foldExtends(&seg.Entries[i], want, fold)
			}
		}
	}
	for i := range l.active {
		foldExtends(&l.active[i], want, fold)
	}
	if len(cells) == 0 {
		return trackdb.ViewTrack{}, fmt.Errorf("histlog: track %d has no cells anywhere in history", canon)
	}
	vt := trackdb.ViewTrack{
		ID:      canon,
		Members: append([]video.TrackID(nil), members...),
		Cells:   make([]trackdb.ViewCell, 0, len(cells)),
	}
	for _, c := range cells {
		vt.Cells = append(vt.Cells, c)
	}
	sort.Slice(vt.Cells, func(i, j int) bool { return vt.Cells[i].Frame < vt.Cells[j].Frame })
	return vt, nil
}

// foldExtends feeds one entry's extensions of wanted members into fold.
func foldExtends(e *WindowEntry, want map[video.TrackID]bool, fold func(trackdb.ViewCell)) {
	for _, x := range e.Extends {
		if !want[x.Track] {
			continue
		}
		fold(trackdb.ViewCell{Frame: x.Frame, Member: x.Track, Class: x.Class, CX: x.CX, CY: x.CY})
	}
}
