package core

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"github.com/tmerge/tmerge/internal/device"
	"github.com/tmerge/tmerge/internal/fault"
	"github.com/tmerge/tmerge/internal/reid"
	"github.com/tmerge/tmerge/internal/synth"
	"github.com/tmerge/tmerge/internal/track"
	"github.com/tmerge/tmerge/internal/video"
)

// equivScene is a compact multi-window scene for the equivalence suite:
// 600 frames at L=200 gives 6 half-overlapping windows, small enough to
// run the full algorithm × seed × workers matrix.
func equivScene(t *testing.T, seed uint64) (*synth.Video, *video.TrackSet) {
	t.Helper()
	cfg := synth.Config{
		Seed: seed, Name: "equiv", NumFrames: 600, Width: 900, Height: 700,
		ArrivalRate: 0.04, MaxObjects: 8, MinSpan: 60, MaxSpan: 250,
		SpeedMin: 0.5, SpeedMax: 2, SizeMin: 60, SizeMax: 100,
		AppearanceDim: testDim, AppearanceNoise: 0.07, PosAppearanceWeight: 0.3,
		OcclusionCoverage: 0.45, MissProb: 0.02,
		GlareRate: 0.012, GlareDuration: 40, GlareSize: 250,
	}
	v, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return v, track.Tracktor().Track(v.Detections)
}

// equivAlgorithm is one entry of the equivalence suite's algorithm
// matrix.
type equivAlgorithm struct {
	name string
	mk   func() Algorithm
}

// equivAlgorithms is the algorithm matrix of the equivalence suite:
// every selection algorithm RunPipeline supports, seeded where the
// algorithm is randomised.
func equivAlgorithms(seed uint64) []equivAlgorithm {
	return []equivAlgorithm{
		{"TMerge", func() Algorithm {
			cfg := DefaultTMergeConfig(seed)
			cfg.TauMax = 1500
			return NewTMerge(cfg)
		}},
		{"TMerge-B", func() Algorithm {
			cfg := DefaultTMergeConfig(seed)
			cfg.TauMax = 1500
			cfg.Batch = 16
			return NewTMerge(cfg)
		}},
		{"BL", func() Algorithm { return NewBaselineB(1 << 16) }},
		{"PS", func() Algorithm { return NewPS(0.3, seed) }},
		{"LCB", func() Algorithm { return NewLCB(1500, seed) }},
	}
}

// runWorkersVariants runs the same pass once per worker count on fresh
// oracles built by mkOracle and asserts every result — the full
// PipelineResult (merged track set included), the oracle's end state
// (stats + cache), and the fingerprint — is bit-identical to Workers=1.
func runWorkersVariants(t *testing.T, ts *video.TrackSet, numFrames int, mkAlgo func() Algorithm, mkOracle func() *reid.Oracle, base PipelineConfig) {
	t.Helper()
	workerCounts := []int{1, 2, runtime.NumCPU()}
	if runtime.NumCPU() < 3 {
		workerCounts = []int{1, 2, 4}
	}

	type outcome struct {
		res    *PipelineResult
		oState reid.OracleState
	}
	var ref outcome
	for i, workers := range workerCounts {
		cfg := base
		cfg.Algorithm = mkAlgo()
		cfg.Workers = workers
		oracle := mkOracle()
		res, err := TryRunPipeline(ts, numFrames, oracle, cfg)
		if err != nil {
			t.Fatalf("Workers=%d: %v", workers, err)
		}
		got := outcome{res: res, oState: oracle.State()}
		if i == 0 {
			ref = got
			continue
		}
		if ref.res.Fingerprint() != res.Fingerprint() {
			t.Errorf("Workers=%d: fingerprint diverged from Workers=%d", workers, workerCounts[0])
		}
		if !reflect.DeepEqual(ref.res, res) {
			t.Errorf("Workers=%d: PipelineResult diverged from Workers=%d:\nref:  %+v\ngot:  %+v",
				workers, workerCounts[0], summarize(ref.res), summarize(res))
		}
		if !reflect.DeepEqual(ref.oState, got.oState) {
			t.Errorf("Workers=%d: oracle end state (stats/cache) diverged: ref stats %+v, got %+v",
				workers, ref.oState.Stats, got.oState.Stats)
		}
	}
}

// summarize compresses a result for failure messages.
func summarize(r *PipelineResult) string {
	return fmt.Sprintf("windows=%d REC=%v stats=%+v virtual=%v degraded=%d resilience=%+v merged=%d",
		len(r.Windows), r.REC, r.Stats, r.Virtual, r.DegradedWindows, r.Resilience, len(r.Merged.Sorted()))
}

// TestParallelEquivalence: Workers ∈ {1, 2, NumCPU} must be bit-identical
// across the full algorithm matrix and several scene/model seeds, in both
// Verify modes.
func TestParallelEquivalence(t *testing.T) {
	for _, seed := range []uint64{7, 19} {
		seed := seed
		v, ts := equivScene(t, seed)
		for _, ea := range equivAlgorithms(seed) {
			ea := ea
			t.Run(fmt.Sprintf("seed%d/%s", seed, ea.name), func(t *testing.T) {
				t.Parallel()
				runWorkersVariants(t, ts, v.NumFrames, ea.mk,
					func() *reid.Oracle { return newFixtureOracle(seed) },
					PipelineConfig{WindowLen: 200, K: 0.1, Verify: seed%2 == 1})
			})
		}
	}
}

// TestParallelEquivalenceWholeVideo: the single-window (WindowLen <= 0)
// path must be untouched by the workers setting.
func TestParallelEquivalenceWholeVideo(t *testing.T) {
	v, ts := equivScene(t, 7)
	runWorkersVariants(t, ts, v.NumFrames,
		func() Algorithm { return NewTMerge(DefaultTMergeConfig(3)) },
		func() *reid.Oracle { return newFixtureOracle(7) },
		PipelineConfig{WindowLen: 0, K: 0.1})
}

// TestParallelEquivalenceUnderFault: a scripted outage on a resilient
// flaky device — retries, backoff jitter, breaker trips, probes, and
// degraded spatial-prior windows all included — must reproduce
// bit-identically at every worker count: identical reports and degraded
// flags, identical resilience counters, identical fault-injector
// accounting.
func TestParallelEquivalenceUnderFault(t *testing.T) {
	v, ts := faultScene(t)
	for _, ea := range equivAlgorithms(7) {
		ea := ea
		t.Run(ea.name, func(t *testing.T) {
			t.Parallel()
			var flakies []*fault.Flaky
			mkOracle := func() *reid.Oracle {
				flaky := fault.NewFlaky(device.NewCPU(device.DefaultCPU), fault.Config{
					Schedule: fault.NewSchedule(fault.Outage{From: 2, To: 6}),
				})
				flakies = append(flakies, flaky)
				rd := device.NewResilientDevice(flaky,
					device.RetryPolicy{MaxAttempts: 4, Jitter: -1},
					device.BreakerConfig{Threshold: 3, Cooldown: -1, CooldownRejections: -1},
					11)
				return reid.NewOracle(reid.NewModel(7, testDim), rd)
			}
			runWorkersVariants(t, ts, v.NumFrames, ea.mk, mkOracle,
				PipelineConfig{WindowLen: 200, K: 0.1})
			for i := 1; i < len(flakies); i++ {
				if a, b := flakies[0].Counters(), flakies[i].Counters(); a != b {
					t.Errorf("fault injector counters diverged: run 0 %+v, run %d %+v", a, i, b)
				}
			}
		})
	}
}

// TestParallelEquivalenceCacheDisabled: the cache-ablation configuration
// exercises the no-cache replay path.
func TestParallelEquivalenceCacheDisabled(t *testing.T) {
	v, ts := equivScene(t, 7)
	runWorkersVariants(t, ts, v.NumFrames,
		func() Algorithm { return NewTMerge(DefaultTMergeConfig(3)) },
		func() *reid.Oracle {
			o := newFixtureOracle(7)
			o.SetCacheEnabled(false)
			return o
		},
		PipelineConfig{WindowLen: 200, K: 0.1})
}

// TestParallelWorkersValidation: negative worker counts are rejected,
// zero resolves to NumCPU.
func TestParallelWorkersValidation(t *testing.T) {
	cfg := PipelineConfig{WindowLen: 200, K: 0.1, Algorithm: NewBaseline(), Workers: -1}
	if err := cfg.Validate(); err == nil {
		t.Error("Workers=-1 accepted")
	}
	if got := EffectiveWorkers(0); got != runtime.NumCPU() {
		t.Errorf("EffectiveWorkers(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := EffectiveWorkers(3); got != 3 {
		t.Errorf("EffectiveWorkers(3) = %d, want 3", got)
	}
}
