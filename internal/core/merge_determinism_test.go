package core

import (
	"reflect"
	"testing"

	"github.com/tmerge/tmerge/internal/video"
	"github.com/tmerge/tmerge/internal/xrand"
)

// shuffledKeys returns the same merge set in a permuted insertion order,
// which also permutes the merger's internal map layout.
func shuffledKeys(keys []video.PairKey, seed uint64) []video.PairKey {
	out := make([]video.PairKey, len(keys))
	copy(out, keys)
	rng := xrand.New(seed)
	for i := len(out) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// TestMergerGroupsOrderIndependent asserts that Groups, Canonical, and
// State do not leak map-insertion (and hence map-iteration) order: every
// shuffled insertion of the same merge set yields identical output.
func TestMergerGroupsOrderIndependent(t *testing.T) {
	rng := xrand.New(99)
	var keys []video.PairKey
	for i := 0; i < 60; i++ {
		a := video.TrackID(rng.Intn(40))
		b := video.TrackID(rng.Intn(40))
		if a == b {
			continue
		}
		keys = append(keys, video.MakePairKey(a, b))
	}

	ref := NewMerger()
	ref.MergeAll(keys)
	refGroups := ref.Groups()
	if len(refGroups) == 0 {
		t.Fatal("fixture produced no merged groups")
	}

	for seed := uint64(1); seed <= 8; seed++ {
		m := NewMerger()
		m.MergeAll(shuffledKeys(keys, seed))
		if got := m.Groups(); !reflect.DeepEqual(got, refGroups) {
			t.Fatalf("seed %d: groups diverge:\n got %v\nwant %v", seed, got, refGroups)
		}
		for _, g := range refGroups {
			for _, id := range g {
				if m.Canonical(id) != ref.Canonical(id) {
					t.Fatalf("seed %d: Canonical(%d) = %d, want %d",
						seed, id, m.Canonical(id), ref.Canonical(id))
				}
			}
		}
	}
}

// TestMergerApplyOrderIndependent asserts the rewritten track set is
// identical across shuffled merge insertion orders.
func TestMergerApplyOrderIndependent(t *testing.T) {
	v, ts := pipelineScene(t)
	_ = v

	rng := xrand.New(7)
	sorted := ts.Sorted()
	var keys []video.PairKey
	for i := 0; i < 30 && len(sorted) >= 2; i++ {
		a := sorted[rng.Intn(len(sorted))].ID
		b := sorted[rng.Intn(len(sorted))].ID
		if a == b {
			continue
		}
		keys = append(keys, video.MakePairKey(a, b))
	}

	ref := NewMerger()
	ref.MergeAll(keys)
	want := ref.Apply(ts)

	for seed := uint64(1); seed <= 4; seed++ {
		m := NewMerger()
		m.MergeAll(shuffledKeys(keys, seed))
		got := m.Apply(ts)
		if !reflect.DeepEqual(got.Sorted(), want.Sorted()) {
			t.Fatalf("seed %d: Apply output diverges", seed)
		}
	}
}

// TestPipelineResultRepeatable runs the full pipeline twice on the same
// inputs and demands identical result assembly — windows, merged tracks,
// and counters — so no map-iteration order leaks anywhere downstream.
func TestPipelineResultRepeatable(t *testing.T) {
	v, ts := pipelineScene(t)

	run := func() *PipelineResult {
		res, err := TryRunPipeline(ts, v.NumFrames, newFixtureOracle(7), PipelineConfig{
			WindowLen: 200,
			K:         0.05,
			Algorithm: NewTMerge(DefaultTMergeConfig(3)),
			Verify:    true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	a, b := run(), run()
	if !reflect.DeepEqual(a.Windows, b.Windows) {
		t.Error("window results diverge between identical runs")
	}
	if !reflect.DeepEqual(a.Merged.Sorted(), b.Merged.Sorted()) {
		t.Error("merged tracks diverge between identical runs")
	}
	if a.Stats != b.Stats {
		t.Errorf("stats diverge: %+v vs %+v", a.Stats, b.Stats)
	}
	if a.REC != b.REC {
		t.Errorf("REC diverges: %v vs %v", a.REC, b.REC)
	}
}
