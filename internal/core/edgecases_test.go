package core

import (
	"testing"
	"testing/quick"

	"github.com/tmerge/tmerge/internal/geom"
	"github.com/tmerge/tmerge/internal/video"
	"github.com/tmerge/tmerge/internal/xrand"
)

// Failure-injection and edge-case coverage for the selection algorithms
// and the pipeline: degenerate tracks, empty inputs, and adversarial pair
// universes must not crash or violate the selection contract.

func TestPipelineEmptyTrackerOutput(t *testing.T) {
	ts := video.NewTrackSet(nil)
	oracle := newFixtureOracle(7)
	res := RunPipeline(ts, 1000, oracle, PipelineConfig{
		WindowLen: 200,
		K:         0.05,
		Algorithm: NewTMerge(DefaultTMergeConfig(1)),
	})
	if res.Merged.Len() != 0 {
		t.Errorf("merged %d tracks from nothing", res.Merged.Len())
	}
	if res.REC != 1 {
		t.Errorf("REC on empty input = %v", res.REC)
	}
	for _, w := range res.Windows {
		if w.Pairs != 0 || len(w.Selected) != 0 {
			t.Errorf("window %d non-empty: %+v", w.Window.Index, w)
		}
	}
}

func TestAlgorithmsOnSingleBoxTracks(t *testing.T) {
	// Tracks with exactly one box: every pair has a single BBox pair.
	r := xrand.New(3)
	var tracks []*video.Track
	for i := 1; i <= 6; i++ {
		obs := make([]float64, testDim)
		for j := range obs {
			obs[j] = r.Gaussian(0, 1)
		}
		tracks = append(tracks, &video.Track{
			ID: video.TrackID(i),
			Boxes: []video.BBox{{
				ID:       video.BBoxID(i),
				Frame:    video.FrameIndex(i * 10),
				Rect:     geom.Rect{X: float64(i), W: 5, H: 5},
				Obs:      obs,
				GTObject: video.ObjectID(i),
			}},
		})
	}
	ps := video.BuildPairSet(video.Window{Start: 0, End: 100}, tracks, nil)
	oracle := newFixtureOracle(7)
	for _, algo := range []Algorithm{
		NewBaseline(), NewPS(0.5, 1), NewLCB(100, 1),
		NewTMerge(DefaultTMergeConfig(1)),
	} {
		sel := algo.Select(ps, oracle, 0.2)
		if len(sel) != ps.TopCount(0.2) {
			t.Errorf("%s: selection size %d", algo.Name(), len(sel))
		}
	}
}

func TestTMergeSinglePair(t *testing.T) {
	fx := newFixture(70, 1, 0, 4) // exactly one pair
	if fx.ps.Len() != 1 {
		t.Fatalf("fixture has %d pairs", fx.ps.Len())
	}
	sel := NewTMerge(DefaultTMergeConfig(1)).Select(fx.ps, newFixtureOracle(7), 1.0)
	if len(sel) != 1 {
		t.Errorf("selection = %v", sel)
	}
}

func TestMergerApplyEmptySet(t *testing.T) {
	m := NewMerger()
	m.Merge(video.MakePairKey(1, 2)) // IDs not present in the set
	got := m.Apply(video.NewTrackSet(nil))
	if got.Len() != 0 {
		t.Errorf("apply on empty set produced %d tracks", got.Len())
	}
}

func TestMergerApplyUnknownIDs(t *testing.T) {
	// Merging IDs that are absent from the track set must not invent
	// tracks or disturb the present ones.
	ts := video.NewTrackSet([]*video.Track{simpleTrack(5, 0, 1)})
	m := NewMerger()
	m.Merge(video.MakePairKey(1, 2))
	got := m.Apply(ts)
	if got.Len() != 1 || got.Get(5) == nil {
		t.Errorf("apply disturbed unrelated tracks: %d", got.Len())
	}
}

// Selection contract property: for arbitrary seeds and K, TMerge returns
// exactly TopCount(K) distinct keys, all drawn from the universe.
func TestTMergeSelectionContract(t *testing.T) {
	fx := newFixture(71, 3, 9, 6)
	f := func(seed uint64, kRaw uint8) bool {
		K := float64(kRaw%101) / 100
		cfg := DefaultTMergeConfig(seed)
		cfg.TauMax = 500
		sel := NewTMerge(cfg).Select(fx.ps, newFixtureOracle(7), K)
		if len(sel) != fx.ps.TopCount(K) {
			return false
		}
		seen := map[video.PairKey]bool{}
		for _, k := range sel {
			if seen[k] || fx.ps.Get(k) == nil {
				return false
			}
			seen[k] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// BL prefix-recall property: recall is non-decreasing in K for the exact
// ranking (the monotonicity behind Figure 3).
func TestBaselineRecallMonotoneInK(t *testing.T) {
	fx := newFixture(72, 4, 12, 6)
	ranking := NewBaseline().Select(fx.ps, newFixtureOracle(7), 1.0)
	prev := -1.0
	for _, K := range []float64{0.01, 0.05, 0.1, 0.3, 0.6, 1.0} {
		n := fx.ps.TopCount(K)
		rec := recallOf(ranking[:n], fx.truth)
		if rec < prev {
			t.Errorf("recall decreased at K=%v: %v -> %v", K, prev, rec)
		}
		prev = rec
	}
	if prev != 1 {
		t.Errorf("full-universe recall = %v", prev)
	}
}
