package core

import (
	"fmt"
	"sort"

	"github.com/tmerge/tmerge/internal/video"
)

// Merger accumulates confirmed polyonymous pairs across windows and
// rewrites track identities, implementing the "merge" half of
// identify-and-merge. It is a union-find over track IDs: merging is
// transitive (if α~β and β~γ then α, β, γ all collapse to one identity),
// matching the semantics of a GT track fragmented into more than two
// pieces inside a window (§II).
type Merger struct {
	parent map[video.TrackID]video.TrackID
	rank   map[video.TrackID]int
	// events is the ordered union log: one MergeEvent per effective union,
	// in the order the unions happened. Append-only; no-op merges (pairs
	// already in one group) are not logged. TrimEvents can drop a durably
	// persisted prefix, after which events holds only the suffix starting
	// at sequence number eventBase.
	events    []MergeEvent
	eventBase int

	// apply is the reusable scratch of Apply, so the steady-state rewrite
	// path does not rebuild its grouping maps per call.
	apply applyScratch
}

// applyScratch is Merger.Apply's reusable union scratch: the
// canonical-ID grouping map, the group order, and the frame-sort buffer
// that replaces the old per-group seen map.
type applyScratch struct {
	grouped map[video.TrackID][]*video.Track
	order   []video.TrackID
	boxes   []video.BBox
}

// NewMerger returns an empty merger.
func NewMerger() *Merger {
	return &Merger{
		parent: make(map[video.TrackID]video.TrackID),
		rank:   make(map[video.TrackID]int),
	}
}

// MergeEvent records one effective union in a Merger's ordered event log:
// the pair that triggered it, the canonical identities of the two groups
// immediately before the union (FromA for the group of Pair.A, FromB for
// Pair.B), and the canonical identity of the combined group afterwards —
// always min(FromA, FromB), because canonical roots are smallest-member.
// The log is the incremental counterpart of Apply: a consumer holding
// per-canonical state folds the event by moving everything under the
// losing canonical into Canon.
type MergeEvent struct {
	// Seq is the event's position in the log, starting at 0.
	Seq  int           `json:"seq"`
	Pair video.PairKey `json:"pair"`
	// FromA and FromB are the canonical IDs of the two groups the union
	// joined, as they were immediately before this event.
	FromA video.TrackID `json:"from_a"`
	FromB video.TrackID `json:"from_b"`
	// Canon is the canonical ID of the combined group: min(FromA, FromB).
	Canon video.TrackID `json:"canon"`
}

// Validate checks the event's self-contained invariants: a non-negative
// sequence number, a pair of two distinct tracks in canonical A < B
// order, two distinct source groups each containing its pair endpoint's
// side, and Canon equal to the smaller source canonical.
func (e MergeEvent) Validate() error {
	if e.Seq < 0 {
		return fmt.Errorf("core: merge event has negative seq %d", e.Seq)
	}
	if e.Pair.A >= e.Pair.B {
		return fmt.Errorf("core: merge event %d pair (%d, %d) is not in canonical A < B order", e.Seq, e.Pair.A, e.Pair.B)
	}
	if e.FromA == e.FromB {
		return fmt.Errorf("core: merge event %d joins group %d with itself", e.Seq, e.FromA)
	}
	want := e.FromA
	if e.FromB < want {
		want = e.FromB
	}
	if e.Canon != want {
		return fmt.Errorf("core: merge event %d has canon %d, want min(%d, %d) = %d", e.Seq, e.Canon, e.FromA, e.FromB, want)
	}
	if e.FromA > e.Pair.A || e.FromB > e.Pair.B {
		return fmt.Errorf("core: merge event %d source canonicals (%d, %d) exceed pair members (%d, %d)", e.Seq, e.FromA, e.FromB, e.Pair.A, e.Pair.B)
	}
	return nil
}

// Merge records that the two tracks of the pair are the same object. When
// the pair joins two previously distinct groups, the union is appended to
// the event log; a pair already inside one group is a no-op and logs
// nothing.
func (m *Merger) Merge(key video.PairKey) {
	if key.B < key.A {
		// The pair is unordered; normalise so logged events are canonical.
		key.A, key.B = key.B, key.A
	}
	fa, fb := m.find(key.A), m.find(key.B)
	m.ensure(fa)
	m.ensure(fb)
	if fa == fb {
		return
	}
	ra, rb := fa, fb
	// Keep the smaller ID as the root so Canonical is stable regardless
	// of merge order.
	if rb < ra {
		ra, rb = rb, ra
	}
	m.parent[rb] = ra
	if m.rank[ra] <= m.rank[rb] {
		m.rank[ra] = m.rank[rb] + 1
	}
	m.events = append(m.events, MergeEvent{
		Seq:   m.eventBase + len(m.events),
		Pair:  key,
		FromA: fa,
		FromB: fb,
		Canon: ra,
	})
}

// MergeAll records every pair in keys.
func (m *Merger) MergeAll(keys []video.PairKey) {
	for _, k := range keys {
		m.Merge(k)
	}
}

// Canonical returns the canonical identity of id: the smallest track ID in
// its merged group (stable across union orders), or id itself when it was
// never merged.
func (m *Merger) Canonical(id video.TrackID) video.TrackID {
	root := m.find(id)
	// The root is maintained as the smallest member (see union).
	return root
}

// Groups returns the merged groups with at least two members, each sorted
// ascending, in deterministic order.
func (m *Merger) Groups() [][]video.TrackID {
	// Sort the IDs before grouping so every downstream structure is
	// assembled in a map-order-independent sequence.
	ids := make([]video.TrackID, 0, len(m.parent))
	for id := range m.parent {
		ids = append(ids, id)
	}
	video.SortTrackIDs(ids)

	byRoot := make(map[video.TrackID][]video.TrackID, len(ids))
	var roots []video.TrackID
	for _, id := range ids {
		root := m.find(id)
		if _, seen := byRoot[root]; !seen {
			roots = append(roots, root)
		}
		byRoot[root] = append(byRoot[root], id)
	}
	var groups [][]video.TrackID
	for _, root := range roots {
		g := byRoot[root]
		if len(g) < 2 {
			continue
		}
		groups = append(groups, g)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i][0] < groups[j][0] })
	return groups
}

// Apply rewrites ts into a new TrackSet in which every merged group
// becomes a single track under its canonical ID, with boxes ordered by
// frame. When two fragments claim the same frame (tracks that overlap in
// time), the box of the lower-ID fragment wins — a deterministic tiebreak
// for the rare double-detection case.
//
// The grouping scratch is owned by the merger and reused across calls,
// so only the returned tracks and boxes are freshly allocated; like the
// other mutating methods, Apply must not run concurrently with itself.
func (m *Merger) Apply(ts *video.TrackSet) *video.TrackSet {
	sc := &m.apply
	if sc.grouped == nil {
		sc.grouped = make(map[video.TrackID][]*video.Track)
	}
	sc.order = sc.order[:0]
	for _, t := range ts.Sorted() {
		c := m.Canonical(t.ID)
		if _, seen := sc.grouped[c]; !seen {
			sc.order = append(sc.order, c)
		}
		sc.grouped[c] = append(sc.grouped[c], t)
	}
	out := make([]*video.Track, 0, len(sc.order))
	for _, c := range sc.order {
		members := sc.grouped[c]
		sort.Slice(members, func(i, j int) bool { return members[i].ID < members[j].ID })
		// Collect the group's boxes member-major (members now ascending by
		// ID) and stable-sort by frame. Stability makes the first box of
		// every frame run the lowest-member's box — the batch dedup rule —
		// without a per-group seen map.
		sc.boxes = sc.boxes[:0]
		for _, t := range members {
			sc.boxes = append(sc.boxes, t.Boxes...)
		}
		sort.SliceStable(sc.boxes, func(i, j int) bool { return sc.boxes[i].Frame < sc.boxes[j].Frame })
		uniq := 0
		for i := range sc.boxes {
			if i == 0 || sc.boxes[i].Frame != sc.boxes[i-1].Frame {
				uniq++
			}
		}
		boxes := make([]video.BBox, 0, uniq)
		for i := range sc.boxes {
			if i == 0 || sc.boxes[i].Frame != sc.boxes[i-1].Frame {
				boxes = append(boxes, sc.boxes[i])
			}
		}
		out = append(out, &video.Track{ID: c, Boxes: boxes})
	}
	// Empty the grouping map with its buckets kept warm for the next call.
	clear(sc.grouped)
	return video.NewTrackSet(out)
}

// Events returns the retained ordered union log: the full log unless
// TrimEvents dropped a persisted prefix, in which case the suffix starts
// at EventBase. The returned slice is the log itself (append-only);
// callers must not modify it.
func (m *Merger) Events() []MergeEvent { return m.events }

// EventCount returns the number of events logged so far — the sequence
// number the next effective union will get. Trimming does not change it.
func (m *Merger) EventCount() int { return m.eventBase + len(m.events) }

// EventBase returns the sequence number of the oldest retained event:
// 0 until TrimEvents drops a persisted prefix.
func (m *Merger) EventBase() int { return m.eventBase }

// EventsSince returns the log suffix starting at sequence number n, for
// consumers that fold events incrementally (n is their own event cursor).
// It panics when n is outside [EventBase(), EventCount()] — a cursor
// below EventBase asks for events already trimmed away. The returned
// slice aliases the append-only log; callers must not modify it.
func (m *Merger) EventsSince(n int) []MergeEvent {
	if n < m.eventBase || n > m.EventCount() {
		panic(fmt.Sprintf("core: event cursor %d outside [%d, %d]", n, m.eventBase, m.EventCount()))
	}
	return m.events[n-m.eventBase:]
}

// TrimEvents drops every retained event with sequence number below upTo
// — the segment-writer hook: once a history segment holding the prefix
// is sealed on disk, the in-memory log no longer needs it, which is what
// bounds the merger's steady-state footprint on unbounded streams. The
// identity map is untouched; only Events/EventsSince lose access to the
// dropped prefix. upTo beyond EventCount trims the whole retained log;
// upTo at or below EventBase is a no-op. The retained suffix is copied,
// so previously returned slices keep their contents but the trimmed
// prefix becomes collectable once callers drop their references.
func (m *Merger) TrimEvents(upTo int) {
	if upTo > m.EventCount() {
		upTo = m.EventCount()
	}
	if upTo <= m.eventBase {
		return
	}
	m.events = append([]MergeEvent(nil), m.events[upTo-m.eventBase:]...)
	m.eventBase = upTo
}

// ReplayEvents reconstructs a Merger from a complete event log (sequence
// numbers contiguous from 0). Every event is validated, replayed, and
// cross-checked against the union the replay actually produced, so a log
// that is internally inconsistent — events out of order, a union the
// merger would not have performed, wrong source or result canonicals —
// is rejected rather than silently yielding a diverged identity map.
func ReplayEvents(events []MergeEvent) (*Merger, error) {
	m := NewMerger()
	for i, ev := range events {
		if err := ev.Validate(); err != nil {
			return nil, err
		}
		if ev.Seq != i {
			return nil, fmt.Errorf("core: event log not contiguous: position %d has seq %d", i, ev.Seq)
		}
		m.Merge(ev.Pair)
		if len(m.events) != i+1 {
			return nil, fmt.Errorf("core: event log inconsistent: seq %d merges pair (%d, %d) already in one group", i, ev.Pair.A, ev.Pair.B)
		}
		if got := m.events[i]; got != ev {
			return nil, fmt.Errorf("core: event log inconsistent at seq %d: replay produced %+v, log records %+v", i, got, ev)
		}
	}
	return m, nil
}

// MergerEntry is one serialised union-find record.
type MergerEntry struct {
	ID     video.TrackID `json:"id"`
	Parent video.TrackID `json:"parent"`
	Rank   int           `json:"rank,omitempty"`
}

// MergerState is the serialisable form of a Merger: the union-find
// entries sorted by ID. Canonical roots are smallest-member by
// construction, so restoring the entries reproduces every future
// Canonical/Apply result bit-identically regardless of tree shape.
type MergerState struct {
	Entries []MergerEntry `json:"entries,omitempty"`
	// Events is the retained ordered union log (the suffix starting at
	// EventBase), carried so a restored merger continues the log at the
	// right sequence number and event-log consumers (the live view) can
	// resume their cursors.
	Events []MergeEvent `json:"events,omitempty"`
	// EventBase is the sequence number of the first retained event: 0 for
	// an untrimmed log; positive when TrimEvents dropped a prefix already
	// sealed into history segments (the checkpoint then references the
	// segment manifest for the dropped events).
	EventBase int `json:"event_base,omitempty"`
}

// State snapshots the merger's identity map and retained event log.
func (m *Merger) State() MergerState {
	ids := make([]video.TrackID, 0, len(m.parent))
	for id := range m.parent {
		ids = append(ids, id)
	}
	video.SortTrackIDs(ids)
	st := MergerState{Events: append([]MergeEvent(nil), m.events...), EventBase: m.eventBase}
	for _, id := range ids {
		st.Entries = append(st.Entries, MergerEntry{ID: id, Parent: m.parent[id], Rank: m.rank[id]})
	}
	return st
}

// RestoreMerger reconstructs a Merger from a snapshot taken by State. A
// snapshot whose parent pointers do not resolve (an entry's parent is not
// itself recorded) is rejected.
func RestoreMerger(st MergerState) (*Merger, error) {
	m := NewMerger()
	if st.EventBase < 0 {
		return nil, fmt.Errorf("core: merger snapshot has negative event base %d", st.EventBase)
	}
	for i, ev := range st.Events {
		if err := ev.Validate(); err != nil {
			return nil, err
		}
		if ev.Seq != st.EventBase+i {
			return nil, fmt.Errorf("core: merger snapshot event log not contiguous: position %d has seq %d, want %d", i, ev.Seq, st.EventBase+i)
		}
	}
	m.events = append([]MergeEvent(nil), st.Events...)
	m.eventBase = st.EventBase
	for _, e := range st.Entries {
		m.parent[e.ID] = e.Parent
		if e.Rank != 0 {
			m.rank[e.ID] = e.Rank
		}
	}
	// Every chain must terminate at a self-root within |entries| steps:
	// rejects dangling parents and cycles, either of which would corrupt
	// (or hang) find().
	for _, e := range st.Entries {
		id := e.ID
		for steps := 0; ; steps++ {
			p, ok := m.parent[id]
			if !ok {
				return nil, fmt.Errorf("core: merger snapshot entry %d points at unknown parent %d", e.ID, id)
			}
			if p == id {
				break
			}
			if steps >= len(st.Entries) {
				return nil, fmt.Errorf("core: merger snapshot has a parent cycle through %d", e.ID)
			}
			id = p
		}
	}
	return m, nil
}

func (m *Merger) find(id video.TrackID) video.TrackID {
	p, ok := m.parent[id]
	if !ok {
		return id
	}
	if p == id {
		return id
	}
	root := m.find(p)
	m.parent[id] = root
	return root
}

func (m *Merger) ensure(id video.TrackID) {
	if _, ok := m.parent[id]; !ok {
		m.parent[id] = id
	}
}
