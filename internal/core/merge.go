package core

import (
	"fmt"
	"sort"

	"github.com/tmerge/tmerge/internal/video"
)

// Merger accumulates confirmed polyonymous pairs across windows and
// rewrites track identities, implementing the "merge" half of
// identify-and-merge. It is a union-find over track IDs: merging is
// transitive (if α~β and β~γ then α, β, γ all collapse to one identity),
// matching the semantics of a GT track fragmented into more than two
// pieces inside a window (§II).
type Merger struct {
	parent map[video.TrackID]video.TrackID
	rank   map[video.TrackID]int
}

// NewMerger returns an empty merger.
func NewMerger() *Merger {
	return &Merger{
		parent: make(map[video.TrackID]video.TrackID),
		rank:   make(map[video.TrackID]int),
	}
}

// Merge records that the two tracks of the pair are the same object.
func (m *Merger) Merge(key video.PairKey) { m.union(key.A, key.B) }

// MergeAll records every pair in keys.
func (m *Merger) MergeAll(keys []video.PairKey) {
	for _, k := range keys {
		m.Merge(k)
	}
}

// Canonical returns the canonical identity of id: the smallest track ID in
// its merged group (stable across union orders), or id itself when it was
// never merged.
func (m *Merger) Canonical(id video.TrackID) video.TrackID {
	root := m.find(id)
	// The root is maintained as the smallest member (see union).
	return root
}

// Groups returns the merged groups with at least two members, each sorted
// ascending, in deterministic order.
func (m *Merger) Groups() [][]video.TrackID {
	// Sort the IDs before grouping so every downstream structure is
	// assembled in a map-order-independent sequence.
	ids := make([]video.TrackID, 0, len(m.parent))
	for id := range m.parent {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	byRoot := make(map[video.TrackID][]video.TrackID, len(ids))
	var roots []video.TrackID
	for _, id := range ids {
		root := m.find(id)
		if _, seen := byRoot[root]; !seen {
			roots = append(roots, root)
		}
		byRoot[root] = append(byRoot[root], id)
	}
	var groups [][]video.TrackID
	for _, root := range roots {
		g := byRoot[root]
		if len(g) < 2 {
			continue
		}
		groups = append(groups, g)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i][0] < groups[j][0] })
	return groups
}

// Apply rewrites ts into a new TrackSet in which every merged group
// becomes a single track under its canonical ID, with boxes ordered by
// frame. When two fragments claim the same frame (tracks that overlap in
// time), the box of the lower-ID fragment wins — a deterministic tiebreak
// for the rare double-detection case.
func (m *Merger) Apply(ts *video.TrackSet) *video.TrackSet {
	grouped := make(map[video.TrackID][]*video.Track)
	var order []video.TrackID
	for _, t := range ts.Sorted() {
		c := m.Canonical(t.ID)
		if _, seen := grouped[c]; !seen {
			order = append(order, c)
		}
		grouped[c] = append(grouped[c], t)
	}
	var out []*video.Track
	for _, c := range order {
		members := grouped[c]
		sort.Slice(members, func(i, j int) bool { return members[i].ID < members[j].ID })
		seen := make(map[video.FrameIndex]bool)
		var boxes []video.BBox
		for _, t := range members {
			for _, b := range t.Boxes {
				if seen[b.Frame] {
					continue
				}
				seen[b.Frame] = true
				boxes = append(boxes, b)
			}
		}
		sort.Slice(boxes, func(i, j int) bool { return boxes[i].Frame < boxes[j].Frame })
		out = append(out, &video.Track{ID: c, Boxes: boxes})
	}
	return video.NewTrackSet(out)
}

// MergerEntry is one serialised union-find record.
type MergerEntry struct {
	ID     video.TrackID `json:"id"`
	Parent video.TrackID `json:"parent"`
	Rank   int           `json:"rank,omitempty"`
}

// MergerState is the serialisable form of a Merger: the union-find
// entries sorted by ID. Canonical roots are smallest-member by
// construction, so restoring the entries reproduces every future
// Canonical/Apply result bit-identically regardless of tree shape.
type MergerState struct {
	Entries []MergerEntry `json:"entries,omitempty"`
}

// State snapshots the merger's identity map.
func (m *Merger) State() MergerState {
	ids := make([]video.TrackID, 0, len(m.parent))
	for id := range m.parent {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	st := MergerState{}
	for _, id := range ids {
		st.Entries = append(st.Entries, MergerEntry{ID: id, Parent: m.parent[id], Rank: m.rank[id]})
	}
	return st
}

// RestoreMerger reconstructs a Merger from a snapshot taken by State. A
// snapshot whose parent pointers do not resolve (an entry's parent is not
// itself recorded) is rejected.
func RestoreMerger(st MergerState) (*Merger, error) {
	m := NewMerger()
	for _, e := range st.Entries {
		m.parent[e.ID] = e.Parent
		if e.Rank != 0 {
			m.rank[e.ID] = e.Rank
		}
	}
	// Every chain must terminate at a self-root within |entries| steps:
	// rejects dangling parents and cycles, either of which would corrupt
	// (or hang) find().
	for _, e := range st.Entries {
		id := e.ID
		for steps := 0; ; steps++ {
			p, ok := m.parent[id]
			if !ok {
				return nil, fmt.Errorf("core: merger snapshot entry %d points at unknown parent %d", e.ID, id)
			}
			if p == id {
				break
			}
			if steps >= len(st.Entries) {
				return nil, fmt.Errorf("core: merger snapshot has a parent cycle through %d", e.ID)
			}
			id = p
		}
	}
	return m, nil
}

func (m *Merger) find(id video.TrackID) video.TrackID {
	p, ok := m.parent[id]
	if !ok {
		return id
	}
	if p == id {
		return id
	}
	root := m.find(p)
	m.parent[id] = root
	return root
}

func (m *Merger) union(a, b video.TrackID) {
	ra, rb := m.find(a), m.find(b)
	m.ensure(ra)
	m.ensure(rb)
	if ra == rb {
		return
	}
	// Keep the smaller ID as the root so Canonical is stable regardless
	// of merge order.
	if rb < ra {
		ra, rb = rb, ra
	}
	m.parent[rb] = ra
	if m.rank[ra] <= m.rank[rb] {
		m.rank[ra] = m.rank[rb] + 1
	}
}

func (m *Merger) ensure(id video.TrackID) {
	if _, ok := m.parent[id]; !ok {
		m.parent[id] = id
	}
}
