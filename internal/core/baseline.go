package core

import (
	"github.com/tmerge/tmerge/internal/reid"
	"github.com/tmerge/tmerge/internal/video"
)

// Baseline is Algorithm 1 of the paper: compute the distance of every
// BBox pair of every track pair, score each track pair by the mean
// distance (Definition 3.1), and return the top-⌈K·|Pc|⌉ lowest-scoring
// pairs. Exact but prohibitively expensive — the motivation for TMerge.
//
// With Batch > 1 the algorithm is BL-B (§IV-F): the BBox pairs of Batch
// track pairs are evaluated as one device submission, amortising the
// accelerator's launch cost.
type Baseline struct {
	// Batch is the number of track pairs evaluated per device submission;
	// values <= 1 evaluate one track pair per submission.
	Batch int
}

// NewBaseline returns the sequential baseline (BL).
func NewBaseline() *Baseline { return &Baseline{Batch: 1} }

// NewBaselineB returns the batched baseline (BL-B) with the given batch
// size 𝓑 (track pairs per submission).
func NewBaselineB(batch int) *Baseline { return &Baseline{Batch: batch} }

// Name implements Algorithm.
func (b *Baseline) Name() string {
	if b.Batch > 1 {
		return "BL-B"
	}
	return "BL"
}

// Select implements Algorithm.
func (b *Baseline) Select(ps *video.PairSet, oracle *reid.Oracle, K float64) []video.PairKey {
	scored := make([]scoredPair, 0, ps.Len())
	for _, span := range chunkPairs(ps.Len(), b.Batch) {
		means := oracle.TrackPairMeans(ps.Pairs[span[0]:span[1]])
		for i, idx := 0, span[0]; idx < span[1]; i, idx = i+1, idx+1 {
			scored = append(scored, scoredPair{key: ps.Pairs[idx].Key, score: means[i]})
		}
	}
	return rankAndTruncate(scored, ps, K)
}
