package core

import (
	"fmt"
	"time"

	"github.com/tmerge/tmerge/internal/device"
	"github.com/tmerge/tmerge/internal/motmetrics"
	"github.com/tmerge/tmerge/internal/reid"
	"github.com/tmerge/tmerge/internal/video"
)

// PipelineConfig configures one ingestion pass: windowing, the candidate
// budget K, and the selection algorithm.
type PipelineConfig struct {
	// WindowLen is the window length L in frames (must be even). Values
	// <= 0 treat the entire video as a single window, the configuration
	// the paper uses for MOT-17 and KITTI (§V-A).
	WindowLen int
	// K is the candidate-set proportion: each window reports the top
	// ⌈K·|Pc|⌉ pairs. The paper's default is 0.05.
	K float64
	// Algorithm selects the candidates.
	Algorithm Algorithm
	// Verify models the paper's optional human-inspection step (§I): when
	// true, only selected candidates that are truly polyonymous are
	// merged; false positives in the candidate set are rejected by the
	// inspector. The metric experiments of §V-G/H (Figures 11-13) assume
	// this workflow — identification quality is what the algorithms are
	// compared on, and merging a false candidate would corrupt tracks.
	Verify bool
	// Workers bounds the worker pool of the parallel window executor:
	// 0 selects runtime.NumCPU(), 1 runs the windows strictly
	// sequentially on the calling goroutine, and larger values run
	// window selection concurrently with results reduced into the
	// merger, stats, and reports in canonical window order. Every
	// worker count produces bit-identical results (DESIGN.md §10);
	// Workers only trades wall-clock time. Negative values are
	// rejected by Validate.
	Workers int
}

// Validate rejects configurations that would otherwise misbehave deep in
// the pipeline: an odd positive WindowLen (the half-overlap would be
// inexact; previously a panic inside video.Partition), K outside (0, 1]
// (previously silently producing an empty or full candidate set), and a
// nil Algorithm (previously a nil-dereference panic mid-window).
// WindowLen <= 0 stays legal: it selects whole-video processing.
func (cfg PipelineConfig) Validate() error {
	if cfg.WindowLen > 0 && cfg.WindowLen%2 != 0 {
		return fmt.Errorf("core: window length must be even, got %d", cfg.WindowLen)
	}
	if cfg.K <= 0 || cfg.K > 1 {
		return fmt.Errorf("core: K must be in (0, 1], got %g", cfg.K)
	}
	if cfg.Algorithm == nil {
		return fmt.Errorf("core: nil selection algorithm")
	}
	if cfg.Workers < 0 {
		return fmt.Errorf("core: Workers must be >= 0, got %d", cfg.Workers)
	}
	return nil
}

// WindowReport describes the processing of one window.
type WindowReport struct {
	Window   video.Window
	Pairs    int             // |Pc|
	Truth    int             // |P*c| (ground-truth polyonymous pairs)
	Selected []video.PairKey // P̂*c|K
	Recall   float64         // REC(P̂*c|K), Equation (3)
	// Degraded reports that the ReID device was unavailable for this
	// window (circuit breaker open or retry budget exhausted) and
	// Selected was ranked by the BetaInit spatial prior alone.
	Degraded bool
	// Events is this window's slice of the merger's ordered union log:
	// the effective unions committing this window caused, in commit
	// order. Replaying the concatenation across windows (ReplayEvents)
	// reproduces the pass's final identity map. Events is derived
	// bookkeeping and deliberately excluded from Fingerprint, which pins
	// the PR-4 replay hashes.
	Events []MergeEvent
}

// PipelineResult is the outcome of a full ingestion pass over one video.
type PipelineResult struct {
	Windows []WindowReport
	// Merged is the track set after rewriting IDs of all selected pairs.
	Merged *video.TrackSet
	// REC is the mean recall over windows with at least one true
	// polyonymous pair (windows with an empty P*c carry no signal and are
	// excluded from the average).
	REC float64
	// Stats is the oracle work performed by this pass.
	Stats reid.Stats
	// Virtual is the modeled device time consumed by this pass; FPS
	// figures in the harness are FramesProcessed / Virtual.
	Virtual         time.Duration
	FramesProcessed int
	// DegradedWindows counts the windows selected in degraded mode (see
	// WindowReport.Degraded).
	DegradedWindows int
	// Resilience is this pass's retry/breaker activity — the fault-path
	// counterpart of Stats. Zero unless the oracle runs on a
	// device.ResilientDevice.
	Resilience device.ResilientCounters
}

// FPS returns the modeled frames-per-second throughput of the pass.
func (r *PipelineResult) FPS() float64 {
	if r.Virtual <= 0 {
		return 0
	}
	return float64(r.FramesProcessed) / r.Virtual.Seconds()
}

// RunPipeline executes the identify-and-merge ingestion pass of §II over
// the tracker output: partition into half-overlapping windows, build Pc
// per Equation (1), select candidates with cfg.Algorithm, and merge. Truth
// (P*c, recall) is derived from the GTObject labels carried by the boxes;
// the selection algorithms never see those labels.
//
// RunPipeline panics on an invalid cfg; use TryRunPipeline to get the
// validation error instead.
func RunPipeline(tracks *video.TrackSet, numFrames int, oracle *reid.Oracle, cfg PipelineConfig) *PipelineResult {
	res, err := TryRunPipeline(tracks, numFrames, oracle, cfg)
	if err != nil {
		panic(err)
	}
	return res
}

// TryRunPipeline is RunPipeline with up-front configuration validation.
// Windows whose oracle submissions cannot complete (device breaker open,
// retry budget exhausted) are not dropped: they are selected in degraded
// mode by the BetaInit spatial prior alone and flagged in their
// WindowReport. Oracle-backed selection resumes as soon as the device
// recovers.
func TryRunPipeline(tracks *video.TrackSet, numFrames int, oracle *reid.Oracle, cfg PipelineConfig) (*PipelineResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	res := &PipelineResult{FramesProcessed: numFrames}
	startStats := oracle.Stats()
	startClock := oracle.Device().Clock().Elapsed()
	rd, _ := oracle.Device().(*device.ResilientDevice)
	var startRes device.ResilientCounters
	if rd != nil {
		startRes = rd.Counters()
	}

	merger := NewMerger()
	jobs := planWindows(tracks, numFrames, cfg.WindowLen)

	if workers := EffectiveWorkers(cfg.Workers); workers > 1 && len(jobs) > 1 {
		runWindowsParallel(jobs, oracle, cfg, workers, merger, res)
	} else {
		for _, j := range jobs {
			ps := video.BuildPairSet(j.w, j.cur, j.prev)
			truth := motmetrics.PolyonymousPairs(ps)
			selected, degraded := SelectWithFallback(cfg.Algorithm, ps, oracle, cfg.K)
			commitWindow(res, merger, cfg, j.w, ps, truth, selected, degraded)
		}
	}

	res.Merged = merger.Apply(tracks)
	endStats := oracle.Stats()
	res.Stats = reid.Stats{
		Distances:   endStats.Distances - startStats.Distances,
		Extractions: endStats.Extractions - startStats.Extractions,
		CacheHits:   endStats.CacheHits - startStats.CacheHits,
	}
	res.Virtual = oracle.Device().Clock().Elapsed() - startClock
	if rd != nil {
		res.Resilience = rd.Counters().Sub(startRes)
	}

	var sum float64
	n := 0
	for _, w := range res.Windows {
		if w.Truth > 0 {
			sum += w.Recall
			n++
		}
	}
	if n > 0 {
		res.REC = sum / float64(n)
	} else {
		res.REC = 1
	}
	return res, nil
}

// windowJob is one window's fully-determined inputs: the window, the
// tracks whose first halves it owns (Tc), and the previous window's
// track list (the pair universe draws candidates across the overlap).
// All three are pure functions of the track set and the partition, so
// the whole job list can be materialised up front and processed in any
// order.
type windowJob struct {
	w    video.Window
	cur  []*video.Track
	prev []*video.Track
}

// planWindows materialises the window job list for one pass.
func planWindows(tracks *video.TrackSet, numFrames, windowLen int) []windowJob {
	if windowLen <= 0 {
		w := video.Window{Index: 0, Start: 0, End: video.FrameIndex(numFrames - 1)}
		return []windowJob{{w: w, cur: tracksInWhole(tracks)}}
	}
	part := video.Partition(numFrames, windowLen)
	jobs := make([]windowJob, len(part))
	for i, w := range part {
		jobs[i].w = w
		jobs[i].cur = video.WindowTracks(tracks, w)
		if i > 0 {
			jobs[i].prev = jobs[i-1].cur
		}
	}
	return jobs
}

// commitWindow folds one processed window into the pass state — merger,
// degraded counter, and window report. Both the sequential loop and the
// parallel executor's ordered reduction funnel through it, in canonical
// window order.
func commitWindow(res *PipelineResult, merger *Merger, cfg PipelineConfig, w video.Window, ps *video.PairSet, truth map[video.PairKey]bool, selected []video.PairKey, degraded bool) {
	if degraded {
		res.DegradedWindows++
	}
	seq := merger.EventCount()
	if cfg.Verify {
		for _, k := range selected {
			if truth[k] {
				merger.Merge(k)
			}
		}
	} else {
		merger.MergeAll(selected)
	}
	res.Windows = append(res.Windows, WindowReport{
		Window:   w,
		Pairs:    ps.Len(),
		Truth:    len(truth),
		Selected: selected,
		Recall:   video.Recall(selected, truth),
		Degraded: degraded,
		Events:   merger.EventsSince(seq),
	})
}

// runWindowsParallel is the sharded window executor: selection for each
// window is speculated concurrently on a bounded worker pool against a
// shared feature store (no device time, stats, faults, or cache
// involved — see reid.Session), and each window's recorded submission
// log is then certified against the real oracle strictly in canonical
// window order, which reproduces the sequential execution's cache hits,
// virtual clock, fault injections, retries, and breaker transitions
// bit-for-bit. A window whose certification hits an unavailable device
// degrades to the spatial prior exactly like a sequential
// SelectWithFallback.
func runWindowsParallel(jobs []windowJob, oracle *reid.Oracle, cfg PipelineConfig, workers int, merger *Merger, res *PipelineResult) {
	type speculated struct {
		ps    *video.PairSet
		truth map[video.PairKey]bool
		sel   *WindowSelection
	}
	store := reid.NewFeatureStore()
	var sels []*WindowSelection // reused batch scratch for the committer
	ForEachOrderedBatch(len(jobs), workers,
		func(i int) speculated {
			j := jobs[i]
			ps := video.BuildPairSet(j.w, j.cur, j.prev)
			return speculated{
				ps:    ps,
				truth: motmetrics.PolyonymousPairs(ps),
				sel:   SpeculateSelection(cfg.Algorithm, ps, oracle, store, cfg.K),
			}
		},
		func(start int, batch []speculated) {
			sels = sels[:0]
			for k := range batch {
				sels = append(sels, batch[k].sel)
			}
			selected, degraded := CommitSelections(oracle, store, sels)
			for k := range batch {
				s := &batch[k]
				commitWindow(res, merger, cfg, jobs[start+k].w, s.ps, s.truth, selected[k], degraded[k])
			}
		})
}

// tracksInWhole returns all tracks in the deterministic order used for
// single-window processing.
func tracksInWhole(ts *video.TrackSet) []*video.Track {
	return ts.Sorted()
}
