package core

import (
	"math"

	"github.com/tmerge/tmerge/internal/reid"
	"github.com/tmerge/tmerge/internal/stats"
	"github.com/tmerge/tmerge/internal/video"
	"github.com/tmerge/tmerge/internal/xrand"
)

// LCB adapts the classical UCB bandit to the minimisation setting (§V-B):
// each iteration computes the Lower Confidence Bound mean − sqrt(2·lnτ/n)
// of every track pair, samples one BBox pair from the pair with the
// smallest bound, and updates. Deterministic and strong on CPU, but each
// iteration depends on the previous one, so the batched variant LCB-B can
// only move the per-iteration work to the accelerator — it cannot amortise
// launch costs across iterations, which is why it barely profits from
// larger batch sizes in Table II and Figure 6.
type LCB struct {
	// TauMax is the total number of BBox pair evaluations.
	TauMax int
	// Batched marks the LCB-B variant: identical logic, but intended to
	// run against an accelerator device (each iteration is still one
	// submission).
	Batched bool
	// Seed drives the BBox pair sampling.
	Seed uint64
}

// NewLCB returns the sequential LCB algorithm.
func NewLCB(tauMax int, seed uint64) *LCB { return &LCB{TauMax: tauMax, Seed: seed} }

// NewLCBB returns LCB-B. The batch size parameter of the other -B variants
// is deliberately absent: the algorithm cannot use it (see type comment).
func NewLCBB(tauMax int, seed uint64) *LCB {
	return &LCB{TauMax: tauMax, Batched: true, Seed: seed}
}

// Name implements Algorithm.
func (a *LCB) Name() string {
	if a.Batched {
		return "LCB-B"
	}
	return "LCB"
}

// Select implements Algorithm.
func (a *LCB) Select(ps *video.PairSet, oracle *reid.Oracle, K float64) []video.PairKey {
	n := ps.Len()
	if n == 0 {
		return nil
	}
	type arm struct {
		sampler *indexSampler
		count   int
		sum     float64
	}
	arms := make([]arm, n)
	for i, p := range ps.Pairs {
		rng := xrand.DeriveN(a.Seed, "lcb:"+p.Key.String(), i)
		arms[i] = arm{sampler: newIndexSampler(p.NumBBoxPairs(), rng)}
	}

	for tau := 1; tau <= a.TauMax; tau++ {
		best, bestLCB := -1, math.Inf(1)
		for i := range arms {
			if arms[i].sampler.Exhausted() {
				continue
			}
			var lcb float64
			if arms[i].count == 0 {
				lcb = math.Inf(-1)
			} else {
				mean := arms[i].sum / float64(arms[i].count)
				lcb = mean - stats.HoeffdingRadius(tau, arms[i].count)
			}
			if lcb < bestLCB {
				bestLCB = lcb
				best = i
			}
		}
		if best < 0 {
			break // every pair fully evaluated
		}
		p := ps.Pairs[best]
		ba, bb := p.BBoxPairAt(arms[best].sampler.Next())
		d := oracle.Distance(ba, bb)
		arms[best].count++
		arms[best].sum += d
	}

	scored := make([]scoredPair, n)
	for i, p := range ps.Pairs {
		score := 1.0 // unsampled pairs rank last
		if arms[i].count > 0 {
			score = arms[i].sum / float64(arms[i].count)
		}
		scored[i] = scoredPair{key: p.Key, score: score}
	}
	return rankAndTruncate(scored, ps, K)
}
