package core

import (
	"sort"

	"github.com/tmerge/tmerge/internal/reid"
	"github.com/tmerge/tmerge/internal/video"
)

// Algorithm selects the estimated top-⌈K·|Pc|⌉ polyonymous track-pair
// candidates from a pair universe, consulting the ReID oracle for BBox
// pair distances. Implementations must be deterministic given their seeds.
type Algorithm interface {
	// Name identifies the algorithm in reports ("BL", "PS", "LCB",
	// "TMerge", and their "-B" batched variants).
	Name() string
	// Select returns the candidate set P̂*c|K, ordered most-promising
	// first (lowest estimated score first).
	Select(ps *video.PairSet, oracle *reid.Oracle, K float64) []video.PairKey
}

// scored pairs ranking helper shared by the algorithms: sorts ascending by
// score with the deterministic pair-key tiebreak, then truncates to the
// top-⌈K·|Pc|⌉.
type scoredPair struct {
	key   video.PairKey
	score float64
}

func rankAndTruncate(scored []scoredPair, ps *video.PairSet, K float64) []video.PairKey {
	sort.Slice(scored, func(i, j int) bool {
		if scored[i].score != scored[j].score {
			return scored[i].score < scored[j].score
		}
		if scored[i].key.A != scored[j].key.A {
			return scored[i].key.A < scored[j].key.A
		}
		return scored[i].key.B < scored[j].key.B
	})
	n := ps.TopCount(K)
	if n > len(scored) {
		n = len(scored)
	}
	out := make([]video.PairKey, n)
	for i := 0; i < n; i++ {
		out[i] = scored[i].key
	}
	return out
}

// chunkPairs splits work items into batches of at most batch elements.
// batch <= 1 yields singleton batches (sequential execution).
func chunkPairs(n, batch int) [][2]int {
	if batch < 1 {
		batch = 1
	}
	var spans [][2]int
	for start := 0; start < n; start += batch {
		end := start + batch
		if end > n {
			end = n
		}
		spans = append(spans, [2]int{start, end})
	}
	return spans
}
