package core
