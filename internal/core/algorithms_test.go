package core

import (
	"testing"

	"github.com/tmerge/tmerge/internal/device"
	"github.com/tmerge/tmerge/internal/reid"
	"github.com/tmerge/tmerge/internal/video"
)

func TestBaselineFindsAllPolyonymousPairs(t *testing.T) {
	fx := newFixture(1, 4, 12, 8) // 20 tracks, C(20,2)=190 pairs, 4 true
	oracle := newFixtureOracle(7)
	sel := NewBaseline().Select(fx.ps, oracle, 0.05) // top 10 of 190
	if got := recallOf(sel, fx.truth); got != 1 {
		t.Errorf("baseline recall = %v, want 1", got)
	}
	// Baseline computes every BBox pair distance: 190 pairs * 64.
	if got := oracle.Stats().Distances; got != 190*64 {
		t.Errorf("distances = %d, want %d", got, 190*64)
	}
}

func TestBaselineOrdersPolyonymousFirst(t *testing.T) {
	fx := newFixture(2, 3, 10, 6)
	oracle := newFixtureOracle(7)
	ranking := NewBaseline().Select(fx.ps, oracle, 1.0)
	if len(ranking) != fx.ps.Len() {
		t.Fatalf("full ranking has %d pairs, want %d", len(ranking), fx.ps.Len())
	}
	// The 3 true pairs must occupy the top 3 positions.
	for i := 0; i < 3; i++ {
		if !fx.truth[ranking[i]] {
			t.Errorf("position %d is not a true pair: %v", i, ranking[i])
		}
	}
}

func TestBaselineBatchedSameSelection(t *testing.T) {
	fx := newFixture(3, 3, 8, 6)
	a := NewBaseline().Select(fx.ps, newFixtureOracle(7), 0.1)
	b := NewBaselineB(16).Select(fx.ps, newFixtureOracle(7), 0.1)
	if len(a) != len(b) {
		t.Fatalf("selection sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("selection differs at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestBaselineName(t *testing.T) {
	if NewBaseline().Name() != "BL" || NewBaselineB(10).Name() != "BL-B" {
		t.Error("baseline names wrong")
	}
}

func TestPSFullProportionMatchesBaseline(t *testing.T) {
	fx := newFixture(4, 3, 8, 6)
	bl := NewBaseline().Select(fx.ps, newFixtureOracle(7), 0.2)
	ps := NewPS(1.0, 99).Select(fx.ps, newFixtureOracle(7), 0.2)
	if len(bl) != len(ps) {
		t.Fatalf("sizes differ")
	}
	for i := range bl {
		if bl[i] != ps[i] {
			t.Errorf("PS(eta=1) differs from BL at %d", i)
		}
	}
}

func TestPSSmallEtaStillRecalls(t *testing.T) {
	fx := newFixture(5, 4, 16, 10)
	oracle := newFixtureOracle(7)
	sel := NewPS(0.2, 1).Select(fx.ps, oracle, 0.05)
	if got := recallOf(sel, fx.truth); got < 0.75 {
		t.Errorf("PS(0.2) recall = %v", got)
	}
	// It must have evaluated ~20% of the distances.
	total := 0
	for _, p := range fx.ps.Pairs {
		total += p.NumBBoxPairs()
	}
	if got := oracle.Stats().Distances; got > int64(total)/4 {
		t.Errorf("PS evaluated %d distances of %d total", got, total)
	}
}

func TestPSDeterminism(t *testing.T) {
	fx := newFixture(6, 2, 6, 5)
	a := NewPS(0.3, 42).Select(fx.ps, newFixtureOracle(7), 0.2)
	b := NewPS(0.3, 42).Select(fx.ps, newFixtureOracle(7), 0.2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("PS must be deterministic for the same seed")
		}
	}
}

func TestPSInvalidEtaPanics(t *testing.T) {
	fx := newFixture(6, 1, 2, 3)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewPS(0, 1).Select(fx.ps, newFixtureOracle(7), 0.1)
}

func TestPSNames(t *testing.T) {
	if NewPS(0.1, 1).Name() != "PS" || NewPSB(0.1, 10, 1).Name() != "PS-B" {
		t.Error("PS names wrong")
	}
}

func TestLCBFindsPolyonymousPairs(t *testing.T) {
	fx := newFixture(7, 4, 12, 8)
	oracle := newFixtureOracle(7)
	// Budget: enough to sample every pair a few times.
	sel := NewLCB(fx.ps.Len()*6, 5).Select(fx.ps, oracle, 0.05)
	if got := recallOf(sel, fx.truth); got < 0.75 {
		t.Errorf("LCB recall = %v", got)
	}
	if got := oracle.Stats().Distances; got != int64(fx.ps.Len()*6) {
		t.Errorf("LCB used %d distances, want %d", got, fx.ps.Len()*6)
	}
}

func TestLCBBudgetExceedsUniverse(t *testing.T) {
	fx := newFixture(8, 1, 2, 3) // tiny universe
	total := 0
	for _, p := range fx.ps.Pairs {
		total += p.NumBBoxPairs()
	}
	oracle := newFixtureOracle(7)
	sel := NewLCB(total*10, 5).Select(fx.ps, oracle, 1.0)
	if len(sel) != fx.ps.Len() {
		t.Errorf("selection size = %d", len(sel))
	}
	if got := oracle.Stats().Distances; got != int64(total) {
		t.Errorf("LCB must stop at exhaustion: %d distances of %d", got, total)
	}
}

func TestLCBDeterminism(t *testing.T) {
	fx := newFixture(9, 2, 6, 5)
	a := NewLCB(200, 42).Select(fx.ps, newFixtureOracle(7), 0.2)
	b := NewLCB(200, 42).Select(fx.ps, newFixtureOracle(7), 0.2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("LCB must be deterministic")
		}
	}
}

func TestLCBNames(t *testing.T) {
	if NewLCB(1, 1).Name() != "LCB" || NewLCBB(1, 1).Name() != "LCB-B" {
		t.Error("LCB names wrong")
	}
}

func TestEmptyPairSet(t *testing.T) {
	w := video.Window{Start: 0, End: 10}
	ps := video.BuildPairSet(w, nil, nil)
	oracle := newFixtureOracle(7)
	for _, algo := range []Algorithm{
		NewBaseline(), NewPS(0.5, 1), NewLCB(100, 1),
		NewTMerge(DefaultTMergeConfig(1)),
	} {
		if got := algo.Select(ps, oracle, 0.05); len(got) != 0 {
			t.Errorf("%s returned %d pairs on empty universe", algo.Name(), len(got))
		}
	}
}

func TestSelectionSizeRespectsK(t *testing.T) {
	fx := newFixture(10, 3, 9, 5) // 15 tracks -> 105 pairs
	oracle := newFixtureOracle(7)
	for _, algo := range []Algorithm{
		NewBaseline(), NewPS(0.5, 1), NewLCB(500, 1),
		NewTMerge(DefaultTMergeConfig(1)),
	} {
		for _, K := range []float64{0.01, 0.05, 0.3, 1.0} {
			got := algo.Select(fx.ps, oracle, K)
			if len(got) != fx.ps.TopCount(K) {
				t.Errorf("%s K=%v: size %d, want %d", algo.Name(), K, len(got), fx.ps.TopCount(K))
			}
		}
	}
}

func TestLCBBCannotAmortiseLaunches(t *testing.T) {
	// LCB-B's defining property (Table II / Figure 6): each iteration
	// depends on the previous one, so it pays one device submission per
	// iteration — unlike TMerge-B, which batches a whole round.
	fx := newFixture(80, 2, 8, 6)
	const tau = 300

	lcbOracle := reid.NewOracle(reid.NewModel(7, testDim), device.NewAccelerator(device.DefaultAccelerator, 0))
	NewLCBB(tau, 5).Select(fx.ps, lcbOracle, 0.1)
	lcbSubs := lcbOracle.Device().Submissions()

	cfg := DefaultTMergeConfig(5)
	cfg.TauMax = tau
	cfg.Batch = 50
	tmOracle := reid.NewOracle(reid.NewModel(7, testDim), device.NewAccelerator(device.DefaultAccelerator, 0))
	NewTMerge(cfg).Select(fx.ps, tmOracle, 0.1)
	tmSubs := tmOracle.Device().Submissions()

	if lcbSubs < tau {
		t.Errorf("LCB-B made %d submissions for %d iterations", lcbSubs, tau)
	}
	if tmSubs > int64(tau/50)+3 {
		t.Errorf("TMerge-B made %d submissions, want ~%d", tmSubs, tau/50)
	}
}
