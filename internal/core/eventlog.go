package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// WriteEventLog writes events as line-delimited JSON, one MergeEvent per
// line — the same NDJSON convention as tmergevet findings and bench rows,
// so merge logs can be shipped, diffed, and replayed as plain text.
func WriteEventLog(w io.Writer, events []MergeEvent) error {
	enc := json.NewEncoder(w)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return fmt.Errorf("core: encoding event log: %w", err)
		}
	}
	return nil
}

// ReadEventLog decodes a log written by WriteEventLog. Blank lines are
// skipped; anything else must be a valid MergeEvent, and the sequence
// numbers must be contiguous ascending from the first event's. A log
// starting at 0 (a complete log) can be handed to ReplayEvents; a suffix
// resumes an existing consumer cursor. The decoder is hardened against
// hostile input: oversized lines, malformed JSON, and events that violate
// the MergeEvent invariants are all rejected with descriptive errors.
func ReadEventLog(r io.Reader) ([]MergeEvent, error) {
	var out []MergeEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		dec := json.NewDecoder(strings.NewReader(text))
		dec.DisallowUnknownFields()
		var ev MergeEvent
		if err := dec.Decode(&ev); err != nil {
			return nil, fmt.Errorf("core: event log line %d does not decode: %w", line, err)
		}
		if dec.More() {
			return nil, fmt.Errorf("core: event log line %d has trailing content after the event", line)
		}
		if err := ev.Validate(); err != nil {
			return nil, fmt.Errorf("core: event log line %d: %w", line, err)
		}
		if len(out) > 0 && ev.Seq != out[len(out)-1].Seq+1 {
			return nil, fmt.Errorf("core: event log line %d has seq %d after seq %d", line, ev.Seq, out[len(out)-1].Seq)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("core: reading event log: %w", err)
	}
	return out, nil
}
