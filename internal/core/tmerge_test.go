package core

import (
	"testing"

	"github.com/tmerge/tmerge/internal/video"
)

func TestTMergeFindsPolyonymousPairs(t *testing.T) {
	fx := newFixture(20, 5, 20, 10) // 30 tracks -> 435 pairs, 5 true
	oracle := newFixtureOracle(7)
	cfg := DefaultTMergeConfig(3)
	cfg.TauMax = 4000
	tm := NewTMerge(cfg)
	sel := tm.Select(fx.ps, oracle, 0.05)
	if got := recallOf(sel, fx.truth); got < 0.8 {
		t.Errorf("TMerge recall = %v", got)
	}
	// TMerge must be far cheaper than the exhaustive baseline.
	total := 0
	for _, p := range fx.ps.Pairs {
		total += p.NumBBoxPairs()
	}
	if got := oracle.Stats().Distances; got > int64(total)/5 {
		t.Errorf("TMerge used %d of %d distances", got, total)
	}
	if d := tm.Diagnostics(); d.Iterations != 4000 {
		t.Errorf("iterations = %d", d.Iterations)
	}
}

func TestTMergeDeterminism(t *testing.T) {
	fx := newFixture(21, 3, 10, 6)
	run := func() []video.PairKey {
		cfg := DefaultTMergeConfig(11)
		cfg.TauMax = 1500
		return NewTMerge(cfg).Select(fx.ps, newFixtureOracle(7), 0.1)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("selection sizes differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("TMerge must be deterministic for the same seed")
		}
	}
}

func TestTMergeSeedSensitivity(t *testing.T) {
	fx := newFixture(22, 3, 14, 8)
	mk := func(seed uint64) TMergeDiagnostics {
		cfg := DefaultTMergeConfig(seed)
		cfg.TauMax = 800
		tm := NewTMerge(cfg)
		tm.Select(fx.ps, newFixtureOracle(7), 0.1)
		return tm.Diagnostics()
	}
	if mk(1).SumDistances == mk(2).SumDistances {
		t.Error("different seeds should explore differently")
	}
}

func TestTMergeDrainsSmallUniverse(t *testing.T) {
	fx := newFixture(23, 1, 2, 3) // few pairs, 9 bbox pairs each
	oracle := newFixtureOracle(7)
	cfg := DefaultTMergeConfig(5)
	cfg.TauMax = 100000
	// With K=1 ULB would (correctly) prune every pair "in" immediately;
	// disable it so the drain path is what stops the loop.
	cfg.UseULB = false
	tm := NewTMerge(cfg)
	sel := tm.Select(fx.ps, oracle, 1.0)
	if len(sel) != fx.ps.Len() {
		t.Errorf("selection = %d pairs", len(sel))
	}
	total := 0
	for _, p := range fx.ps.Pairs {
		total += p.NumBBoxPairs()
	}
	// Once every pair is drained the loop must stop, not spin.
	if got := oracle.Stats().Distances; got != int64(total) {
		t.Errorf("distances = %d, want %d (full drain)", got, total)
	}
	if d := tm.Diagnostics(); d.Drained != fx.ps.Len() {
		t.Errorf("drained = %d, want %d", d.Drained, fx.ps.Len())
	}
}

func TestTMergeBatchVariant(t *testing.T) {
	fx := newFixture(24, 4, 16, 10)
	cfg := DefaultTMergeConfig(9)
	cfg.TauMax = 4000
	cfg.Batch = 10
	tm := NewTMerge(cfg)
	if tm.Name() != "TMerge-B" {
		t.Errorf("name = %s", tm.Name())
	}
	oracle := newFixtureOracle(7)
	sel := tm.Select(fx.ps, oracle, 0.05)
	if got := recallOf(sel, fx.truth); got < 0.7 {
		t.Errorf("TMerge-B recall = %v", got)
	}
	// The budget is respected exactly.
	if got := oracle.Stats().Distances; got != 4000 {
		t.Errorf("distances = %d, want 4000", got)
	}
	// Submissions are ~ tau/batch, far fewer than tau.
	if subs := oracle.Device().Submissions(); subs > 4000/10+5 {
		t.Errorf("submissions = %d, want <= ~400", subs)
	}
}

func TestTMergeBetaInitPrioritizesClosePairs(t *testing.T) {
	// With a tiny budget, BetaInit should beat no-BetaInit on recall,
	// because true fragments are spatially close in the fixture.
	fx := newFixture(25, 5, 25, 10)
	run := func(useInit bool) float64 {
		cfg := DefaultTMergeConfig(13)
		cfg.TauMax = 600
		cfg.UseBetaInit = useInit
		cfg.ThrS = 100
		sel := NewTMerge(cfg).Select(fx.ps, newFixtureOracle(7), 0.05)
		return recallOf(sel, fx.truth)
	}
	with, without := run(true), run(false)
	if with < without {
		t.Errorf("BetaInit hurt recall: with=%v without=%v", with, without)
	}
}

func TestTMergeULBPrunes(t *testing.T) {
	fx := newFixture(26, 4, 20, 10)
	cfg := DefaultTMergeConfig(17)
	cfg.TauMax = 20000
	tm := NewTMerge(cfg)
	oracle := newFixtureOracle(7)
	sel := tm.Select(fx.ps, oracle, 0.05)
	d := tm.Diagnostics()
	if d.PrunedOut == 0 {
		t.Error("ULB pruned nothing at a large budget")
	}
	if got := recallOf(sel, fx.truth); got < 0.75 {
		t.Errorf("recall with pruning = %v", got)
	}
}

func TestTMergeULBDisabled(t *testing.T) {
	fx := newFixture(27, 2, 10, 8)
	cfg := DefaultTMergeConfig(19)
	cfg.TauMax = 5000
	cfg.UseULB = false
	tm := NewTMerge(cfg)
	tm.Select(fx.ps, newFixtureOracle(7), 0.05)
	d := tm.Diagnostics()
	if d.PrunedIn != 0 || d.PrunedOut != 0 {
		t.Errorf("pruning happened with ULB disabled: %+v", d)
	}
}

func TestTMergeRegretDecreasesWithBudget(t *testing.T) {
	fx := newFixture(28, 4, 20, 10)
	regret := func(tau int) float64 {
		cfg := DefaultTMergeConfig(23)
		cfg.TauMax = tau
		tm := NewTMerge(cfg)
		tm.Select(fx.ps, newFixtureOracle(7), 0.05)
		return tm.Diagnostics().AvgRegret
	}
	small, large := regret(500), regret(8000)
	if large >= small {
		t.Errorf("average regret must fall with budget: %v -> %v", small, large)
	}
}

func TestTMergeInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewTMerge(TMergeConfig{TauMax: 0})
}

func TestTMergeHoeffdingVariantRuns(t *testing.T) {
	fx := newFixture(29, 2, 8, 6)
	cfg := DefaultTMergeConfig(29)
	cfg.TauMax = 2000
	cfg.ULBHoeffding = true
	tm := NewTMerge(cfg)
	sel := tm.Select(fx.ps, newFixtureOracle(7), 0.1)
	if len(sel) == 0 {
		t.Error("no selection")
	}
	// The literal Hoeffding radius is too conservative to prune in this
	// regime — the documented reason for the variance-aware default.
	if d := tm.Diagnostics(); d.PrunedOut > 0 || d.PrunedIn > 0 {
		t.Logf("unexpected pruning under Hoeffding radius: %+v", d)
	}
}

func TestInsertCandidateKeepsSorted(t *testing.T) {
	var chosen []int
	var thetas []float64
	for i, th := range []float64{0.5, 0.2, 0.9, 0.2, 0.1} {
		insertCandidate(&chosen, &thetas, i, th)
	}
	wantOrder := []int{4, 1, 3, 0, 2} // 0.1, 0.2(idx1), 0.2(idx3), 0.5, 0.9
	for i, idx := range wantOrder {
		if chosen[i] != idx {
			t.Fatalf("chosen = %v, want %v", chosen, wantOrder)
		}
	}
	for i := 1; i < len(thetas); i++ {
		if thetas[i] < thetas[i-1] {
			t.Fatalf("thetas not sorted: %v", thetas)
		}
	}
}
