package core

import (
	"testing"

	"github.com/tmerge/tmerge/internal/synth"
	"github.com/tmerge/tmerge/internal/track"
)

func gridScene(t *testing.T) (*synth.Video, int) {
	t.Helper()
	cfg := synth.Config{
		Seed: 55, Name: "grid", NumFrames: 1600, Width: 900, Height: 700,
		ArrivalRate: 0.03, MaxObjects: 7, MinSpan: 60, MaxSpan: 400,
		SpeedMin: 0.4, SpeedMax: 1.6, SizeMin: 60, SizeMax: 120,
		AppearanceDim: testDim, AppearanceNoise: 0.06,
		PosAppearanceWeight: 0.45, AppearanceDrift: 0.003,
		OutlierProb: 0.18, OutlierNoise: 0.15,
		OcclusionCoverage: 0.45, MissProb: 0.02,
		GlareRate: 0.012, GlareDuration: 45, GlareSize: 260,
	}
	v, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return v, cfg.NumFrames
}

func TestGridSearchFindsAPoint(t *testing.T) {
	v, n := gridScene(t)
	tracks := track.Tracktor().Track(v.Detections)
	oracle := newFixtureOracle(7)
	res, err := GridSearch(tracks, n, oracle, GridSearchConfig{
		Ls:    []int{800, 1600},
		ThrSs: []float64{100, 200},
		K:     0.05,
		Base:  DefaultTMergeConfig(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Grid) != 4 {
		t.Fatalf("grid has %d points", len(res.Grid))
	}
	if res.Best.REC <= 0 {
		t.Errorf("best REC = %v", res.Best.REC)
	}
	// Best is the max over the grid.
	for _, p := range res.Grid {
		if p.REC > res.Best.REC {
			t.Errorf("grid point %+v beats best %+v", p, res.Best)
		}
	}
}

func TestGridSearchValidation(t *testing.T) {
	v, n := gridScene(t)
	tracks := track.Tracktor().Track(v.Detections)
	oracle := newFixtureOracle(7)
	cases := []GridSearchConfig{
		{Ls: nil, ThrSs: []float64{100}, K: 0.05, Base: DefaultTMergeConfig(1)},
		{Ls: []int{800}, ThrSs: nil, K: 0.05, Base: DefaultTMergeConfig(1)},
		{Ls: []int{800}, ThrSs: []float64{100}, K: 0, Base: DefaultTMergeConfig(1)},
		{Ls: []int{801}, ThrSs: []float64{100}, K: 0.05, Base: DefaultTMergeConfig(1)},
	}
	for i, cfg := range cases {
		if _, err := GridSearch(tracks, n, oracle, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}
