package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
)

// Fingerprint digests every determinism-relevant field of the result —
// window reports (selected pairs included), recall, oracle stats,
// virtual time, resilience counters, and the merged track set — into a
// hex SHA-256 string. Two passes over the same input with the same
// configuration must fingerprint identically regardless of
// PipelineConfig.Workers; the CI bench gate fails on any mismatch.
// Floats are digested by their IEEE-754 bit patterns, so the comparison
// is bit-exact, not tolerance-based.
func (r *PipelineResult) Fingerprint() string {
	h := sha256.New()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	i64 := func(v int64) { u64(uint64(v)) }
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	b := func(v bool) {
		if v {
			u64(1)
		} else {
			u64(0)
		}
	}

	i64(int64(len(r.Windows)))
	for _, w := range r.Windows {
		i64(int64(w.Window.Index))
		i64(int64(w.Window.Start))
		i64(int64(w.Window.End))
		i64(int64(w.Window.Nominal))
		i64(int64(w.Pairs))
		i64(int64(w.Truth))
		i64(int64(len(w.Selected)))
		for _, k := range w.Selected {
			i64(int64(k.A))
			i64(int64(k.B))
		}
		f64(w.Recall)
		b(w.Degraded)
	}
	f64(r.REC)
	i64(r.Stats.Distances)
	i64(r.Stats.Extractions)
	i64(r.Stats.CacheHits)
	i64(int64(r.Virtual))
	i64(int64(r.FramesProcessed))
	i64(int64(r.DegradedWindows))
	i64(r.Resilience.Submissions)
	i64(r.Resilience.Attempts)
	i64(r.Resilience.Retries)
	i64(r.Resilience.Failures)
	i64(r.Resilience.Rejected)
	i64(r.Resilience.Trips)
	i64(r.Resilience.Probes)
	if r.Merged != nil {
		tracks := r.Merged.Sorted()
		i64(int64(len(tracks)))
		for _, t := range tracks {
			i64(int64(t.ID))
			i64(int64(len(t.Boxes)))
			for _, bb := range t.Boxes {
				u64(uint64(bb.ID))
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
