package core

import (
	"fmt"
	"math"
	"sort"

	"github.com/tmerge/tmerge/internal/reid"
	"github.com/tmerge/tmerge/internal/stats"
	"github.com/tmerge/tmerge/internal/video"
	"github.com/tmerge/tmerge/internal/xrand"
)

// TMergeConfig parameterises the TMerge algorithm.
type TMergeConfig struct {
	// TauMax is the iteration budget τmax — the total number of BBox pair
	// distances evaluated (Algorithm 2). The paper's default is 10,000.
	TauMax int
	// ThrS is the BetaInit spatial-distance threshold thr_S in pixels
	// (Algorithm 3). The paper's default is 200.
	ThrS float64
	// UseBetaInit enables the BetaInit prior (Algorithm 3); disabled in
	// the Figure 8 ablation.
	UseBetaInit bool
	// UseULB enables confidence-bound pruning (Algorithm 4); disabled in
	// the Figure 8 ablation.
	UseULB bool
	// ULBPeriod runs the pruning pass every ULBPeriod iterations. The
	// paper runs it each iteration; 1 reproduces that. Larger values
	// trade pruning promptness for bookkeeping time without changing
	// which pairs may be pruned. Values < 1 default to 1.
	ULBPeriod int
	// ULBHoeffding selects the literal confidence radius of Algorithm 4,
	// U = sqrt(2·lnτ/n), which treats distances as range-1 sub-Gaussian.
	// That radius is far too conservative for ReID distances, whose
	// within-pair standard deviation is a few percent of the range — with
	// the paper's own τmax and pair counts it never prunes anything. The
	// default (false) therefore uses an empirical-Bernstein-style radius,
	// σ̂·sqrt(2·lnτ/n) + 0.5/n, which is the same bound sharpened by the
	// observed variance and lets ULB deliver the pruning effect the
	// paper's ablation (Figure 8) attributes to it.
	ULBHoeffding bool
	// Batch is the number of track pairs evaluated jointly per iteration
	// round (TMerge-B, §IV-F). 1 is the sequential algorithm.
	Batch int
	// LiteralBernoulli performs the paper's explicit Bernoulli trial with
	// success probability d̃ and updates the Beta posterior with the
	// binary outcome (Algorithm 2, lines 9-13). The default (false) uses
	// the fractional update S += d̃, F += 1-d̃ — the bounded-reward
	// Thompson sampling of Agrawal & Goyal, of which the Bernoulli trial
	// is the randomised, equal-expectation, higher-variance version. The
	// fractional update converges with fewer oracle calls; both variants
	// are compared by BenchmarkAblationPosterior.
	LiteralBernoulli bool
	// PosteriorWeight is the pseudo-observation weight w of each
	// fractional update (ignored under LiteralBernoulli): the posterior
	// after n samples behaves as if it had seen w·n Bernoulli outcomes.
	// One ReID distance aggregates an entire pair of crops and is far
	// more informative than a single Bernoulli bit, so w > 1 is
	// justified; it tempers Thompson sampling's exploration toward
	// exploitation, which matters when the pair universe is large
	// relative to τmax. Values <= 0 default to 3.
	PosteriorWeight float64
	// LiteralRanking ranks the final candidates by the raw Beta posterior
	// mean S/(S+F), exactly as Algorithm 2 line 15 is written. The
	// default (false) Rao-Blackwellises that estimator: each Bernoulli
	// trial's outcome r is replaced in the ranking statistic by its
	// conditional expectation d̃ — identical in expectation, strictly
	// lower variance, so fewer samples are wasted re-resolving ranking
	// noise the algorithm itself injected. Exploration (the Thompson
	// sampling over Beta posteriors, lines 4-13) is untouched.
	LiteralRanking bool
	// GaussianPosterior replaces the paper's Bernoulli-trial/Beta
	// machinery with a direct Gaussian posterior on the score: θ is drawn
	// from N(posterior mean, σ0/sqrt(n+1)). This ablation (DESIGN.md §5)
	// measures how much the extra Bernoulli randomisation costs or buys;
	// the paper's construction exists because Beta/Bernoulli conjugacy
	// makes updates trivial, not because it is statistically optimal.
	GaussianPosterior bool
	// StopWhenSettled ends the loop before TauMax once ULB has pruned at
	// least ⌈K·|Pc|⌉ pairs "confidently in the top-K" — the candidate set
	// is then fully confirmed and further sampling cannot change it. An
	// extension beyond the paper (which always runs to τmax); requires
	// UseULB.
	StopWhenSettled bool
	// Seed drives Thompson sampling and BBox pair selection.
	Seed uint64
}

// DefaultTMergeConfig returns the paper's default configuration
// (τmax = 10,000, thr_S = 200, BetaInit and ULB enabled, sequential).
func DefaultTMergeConfig(seed uint64) TMergeConfig {
	return TMergeConfig{
		TauMax:      10000,
		ThrS:        200,
		UseBetaInit: true,
		UseULB:      true,
		ULBPeriod:   1,
		Batch:       1,
		Seed:        seed,
	}
}

// TMergeDiagnostics reports what happened inside a Select call.
type TMergeDiagnostics struct {
	Iterations   int     // BBox pair evaluations actually performed
	PrunedIn     int     // pairs pruned as "confidently in the top-K"
	PrunedOut    int     // pairs pruned as "confidently out"
	Drained      int     // pairs whose BBox pair universe was exhausted
	AvgRegret    float64 // (1/τ)·Σ(d̃τ − s̃min) with s̃min estimated post hoc
	SumDistances float64
}

// TMerge is Algorithm 2: Thompson sampling over track pairs. Each pair
// carries a Beta(S, F) posterior on its normalised score; at every
// iteration the pair with the smallest posterior sample is examined — one
// BBox pair is drawn without replacement, its normalised ReID distance d̃
// becomes the success probability of a Bernoulli trial, and the trial's
// outcome updates the posterior. Low-score (similar-looking) pairs
// accumulate failures, their posterior mean drops, and sampling
// concentrates on them: computation flows to the pairs most likely to be
// polyonymous.
type TMerge struct {
	cfg TMergeConfig

	// diag holds the diagnostics of the most recent Select call. TMerge
	// is not safe for concurrent Select calls.
	diag TMergeDiagnostics

	// ulb scratch, reused across the (up to τmax) pruning passes of one
	// Select call and across Select calls. Every element is overwritten
	// before use, so reuse cannot leak state between windows; the
	// parallel executor clones TMerge per window (CloneAlgorithm), so no
	// two concurrent Selects share these buffers.
	ulbLB, ulbUB, ulbSortedLB, ulbSortedUB []float64
	// dists is the reused DistanceBatchInto output buffer of the
	// per-round oracle call.
	dists []float64
}

// NewTMerge returns a TMerge instance for the configuration.
func NewTMerge(cfg TMergeConfig) *TMerge {
	if cfg.TauMax <= 0 {
		panic(fmt.Sprintf("core: TMerge TauMax must be positive, got %d", cfg.TauMax))
	}
	if cfg.Batch < 1 {
		cfg.Batch = 1
	}
	if cfg.ULBPeriod < 1 {
		cfg.ULBPeriod = 1
	}
	if cfg.PosteriorWeight <= 0 {
		cfg.PosteriorWeight = 3
	}
	return &TMerge{cfg: cfg}
}

// Name implements Algorithm.
func (a *TMerge) Name() string {
	name := "TMerge"
	if a.cfg.GaussianPosterior {
		name = "TMerge-G"
	}
	if a.cfg.Batch > 1 {
		name += "-B"
	}
	return name
}

// Config returns the configuration.
func (a *TMerge) Config() TMergeConfig { return a.cfg }

// CloneAlgorithm returns an independent TMerge with the same
// configuration (Cloner). TMerge carries per-Select diagnostics, so the
// parallel executor must give each concurrent window its own instance;
// selection itself derives its random streams from the configured seed
// per call, so a clone selects bit-identically to its parent.
func (a *TMerge) CloneAlgorithm() Algorithm { return NewTMerge(a.cfg) }

// Diagnostics returns the diagnostics of the most recent Select call.
func (a *TMerge) Diagnostics() TMergeDiagnostics { return a.diag }

// pairState is the per-arm bandit state.
type pairState struct {
	beta stats.Beta
	// sampler is embedded by value: the arm slice is one contiguous
	// allocation, so per-pair sampler setup allocates nothing.
	sampler indexSampler
	count   int     // n_{i,j}: times this pair has been sampled
	sum     float64 // Σ d̃ over its samples
	sumSq   float64 // Σ d̃² (for the variance-aware ULB radius)
	// priorMean and priorWeight are the prior pseudo-observations (from
	// Be(1,1) or the BetaInit prior Be(1,2)), used by the
	// Rao-Blackwellised ranking and the Gaussian-posterior variant.
	priorMean   float64
	priorWeight float64
	// prune status
	prunedIn, prunedOut bool
}

// gaussPosterior returns the posterior mean and stddev of the
// Gaussian-posterior variant: the prior acts as one pseudo-observation.
func (s *pairState) gaussPosterior() (mean, sd float64) {
	const sigma0 = 0.35
	n := float64(s.count)
	mean = (s.priorMean + s.sum) / (n + 1)
	sd = sigma0 / math.Sqrt(n+1)
	return mean, sd
}

// shrunkMean is the Rao-Blackwellised ranking statistic: the posterior
// mean computed from accumulated d̃ values (each Bernoulli trial replaced
// by its conditional expectation), with the Beta prior's pseudo-counts as
// shrinkage.
func (s *pairState) shrunkMean() float64 {
	return (s.priorMean*s.priorWeight + s.sum) / (s.priorWeight + float64(s.count))
}

// variance returns the (population) variance of the pair's observed
// distances.
func (s *pairState) variance() float64 {
	if s.count == 0 {
		return 0
	}
	m := s.mean()
	v := s.sumSq/float64(s.count) - m*m
	if v < 0 {
		return 0
	}
	return v
}

func (s *pairState) active() bool {
	return !s.prunedIn && !s.prunedOut && !s.sampler.Exhausted()
}

func (s *pairState) mean() float64 {
	if s.count == 0 {
		return math.NaN()
	}
	return s.sum / float64(s.count)
}

// Select implements Algorithm.
func (a *TMerge) Select(ps *video.PairSet, oracle *reid.Oracle, K float64) []video.PairKey {
	a.diag = TMergeDiagnostics{}
	n := ps.Len()
	if n == 0 {
		return nil
	}
	kCount := ps.TopCount(K)

	// Line 1: initialise Beta posteriors (Algorithm 3). The arm states
	// live in one contiguous slice — one allocation for the whole window
	// instead of one per pair.
	arms := make([]pairState, n)
	tsRng := xrand.Derive(a.cfg.Seed, "tmerge:thompson")
	bernRng := xrand.Derive(a.cfg.Seed, "tmerge:bernoulli")
	for i, p := range ps.Pairs {
		beta := stats.NewBeta(1, 1)
		if a.cfg.UseBetaInit && p.DisS < a.cfg.ThrS {
			// BetaInit: spatially close pairs get a lower prior mean so
			// they are explored first (Algorithm 3, line 3).
			beta = stats.NewBeta(1, 2)
		}
		arms[i] = pairState{
			beta:        beta,
			priorMean:   beta.Mean(),
			priorWeight: beta.S + beta.F,
		}
		arms[i].sampler.init(p.NumBBoxPairs(), xrand.DeriveN(a.cfg.Seed, "tmerge:boxes:"+p.Key.String(), i))
	}

	tau := 0
	chosen := make([]int, 0, a.cfg.Batch)
	thetas := make([]float64, 0, a.cfg.Batch)
	batch := make([][2]video.BBox, 0, a.cfg.Batch)
	for tau < a.cfg.TauMax {
		// Lines 4-6: Thompson-sample every active pair and keep the
		// smallest Batch samples (Batch == 1 reproduces the sequential
		// argmin). Selection keeps a small sorted buffer instead of
		// sorting all pairs: O(n + B log B) expected per round.
		want := a.cfg.Batch
		if tau+want > a.cfg.TauMax {
			want = a.cfg.TauMax - tau
		}
		chosen = chosen[:0]
		thetas = thetas[:0]
		for i := range arms {
			s := &arms[i]
			if !s.active() {
				continue
			}
			var theta float64
			if a.cfg.GaussianPosterior {
				m, sd := s.gaussPosterior()
				theta = tsRng.Gaussian(m, sd)
			} else {
				theta = tsRng.Beta(s.beta.S, s.beta.F)
			}
			if len(chosen) < want {
				insertCandidate(&chosen, &thetas, i, theta)
				continue
			}
			if theta < thetas[len(thetas)-1] {
				chosen = chosen[:len(chosen)-1]
				thetas = thetas[:len(thetas)-1]
				insertCandidate(&chosen, &thetas, i, theta)
			}
		}
		if len(chosen) == 0 {
			break // everything pruned or drained
		}

		// Lines 7-8: draw one BBox pair per chosen track pair and evaluate
		// the whole round as one device submission.
		batch = batch[:0]
		for _, idx := range chosen {
			ba, bb := ps.Pairs[idx].BBoxPairAt(arms[idx].sampler.Next())
			batch = append(batch, [2]video.BBox{ba, bb})
		}
		a.dists = oracle.DistanceBatchInto(a.dists[:0], batch)
		dists := a.dists

		// Lines 9-13: posterior update from d̃ — a literal Bernoulli trial
		// or the fractional bounded-reward update (see
		// TMergeConfig.LiteralBernoulli).
		for k, idx := range chosen {
			d := dists[k]
			s := &arms[idx]
			s.count++
			s.sum += d
			s.sumSq += d * d
			if a.cfg.LiteralBernoulli {
				s.beta = s.beta.Observe(bernRng.Bernoulli(d))
			} else {
				s.beta = s.beta.ObserveWeighted(d, a.cfg.PosteriorWeight)
			}
			a.diag.SumDistances += d
		}
		tau += len(chosen)
		a.diag.Iterations = tau

		// Line 14: ULB pruning (Algorithm 4).
		if a.cfg.UseULB && (tau%(a.cfg.ULBPeriod*a.cfg.Batch) < a.cfg.Batch) {
			a.ulb(arms, tau, kCount)
			if a.cfg.StopWhenSettled {
				settled := 0
				for i := range arms {
					if arms[i].prunedIn {
						settled++
					}
				}
				if settled >= kCount {
					break
				}
			}
		}
	}

	for i := range arms {
		s := &arms[i]
		if s.prunedIn {
			a.diag.PrunedIn++
		}
		if s.prunedOut {
			a.diag.PrunedOut++
		}
		if s.sampler.Exhausted() {
			a.diag.Drained++
		}
	}
	a.computeRegret(arms, tau)

	// Line 15: rank by posterior mean. The default is the
	// Rao-Blackwellised statistic (see TMergeConfig.LiteralRanking); the
	// literal S/(S+F) and the Gaussian posterior mean are variants.
	scored := make([]scoredPair, n)
	for i, p := range ps.Pairs {
		var score float64
		switch {
		case a.cfg.GaussianPosterior:
			score, _ = arms[i].gaussPosterior()
		case a.cfg.LiteralRanking:
			score = arms[i].beta.Mean()
		default:
			score = arms[i].shrunkMean()
		}
		scored[i] = scoredPair{key: p.Key, score: score}
	}
	return rankAndTruncate(scored, ps, K)
}

// insertCandidate inserts (idx, theta) into the parallel slices kept
// sorted ascending by theta (ties by index).
func insertCandidate(chosen *[]int, thetas *[]float64, idx int, theta float64) {
	c, t := *chosen, *thetas
	pos := len(t)
	for pos > 0 && (t[pos-1] > theta || (t[pos-1] == theta && c[pos-1] > idx)) {
		pos--
	}
	c = append(c, 0)
	t = append(t, 0)
	copy(c[pos+1:], c[pos:])
	copy(t[pos+1:], t[pos:])
	c[pos] = idx
	t[pos] = theta
	*chosen, *thetas = c, t
}

// ulb is Algorithm 4: using Hoeffding confidence intervals
// [s̃' − U, s̃' + U] with U = sqrt(2·lnτ / n), prune pairs that are
// confidently inside the top-kCount (they need no more sampling) or
// confidently outside it. Counting comparisons against all other pairs is
// done with sorted bound arrays and binary search, making the pass
// O(n log n) instead of the naive O(n²).
func (a *TMerge) ulb(arms []pairState, tau, kCount int) {
	n := len(arms)
	// The four bound arrays are scratch reused across pruning passes and
	// Select calls (this pass used to allocate them every iteration —
	// the single largest allocation site of the whole pipeline). Every
	// element is written below before any read.
	lbs := sizeScratch(&a.ulbLB, n)
	ubs := sizeScratch(&a.ulbUB, n)
	for i := range arms {
		s := &arms[i]
		u := a.radius(s, tau)
		if math.IsInf(u, 1) {
			lbs[i] = math.Inf(-1)
			ubs[i] = math.Inf(1)
			continue
		}
		m := s.mean()
		lbs[i] = m - u
		ubs[i] = m + u
	}
	sortedLB := sizeScratch(&a.ulbSortedLB, n)
	sortedUB := sizeScratch(&a.ulbSortedUB, n)
	copy(sortedLB, lbs)
	copy(sortedUB, ubs)
	sort.Float64s(sortedLB)
	sort.Float64s(sortedUB)

	for i := range arms {
		s := &arms[i]
		if !s.active() || s.count == 0 {
			continue
		}
		// below(x, sorted) = #values strictly less than x.
		// Pairs that might still beat pair i: those with LB < UB_i.
		// LB_i < UB_i always, so exclude self.
		couldBeat := countLess(sortedLB, ubs[i]) - 1
		if couldBeat <= kCount-1 {
			s.prunedIn = true
			continue
		}
		// Pairs confidently better than pair i: those with UB < LB_i.
		confidentlyBetter := countLess(sortedUB, lbs[i])
		if confidentlyBetter >= kCount {
			s.prunedOut = true
		}
	}
}

// radius returns the confidence radius of a pair's score estimate at
// iteration tau. Drained pairs (every BBox pair evaluated) have an exact
// score and radius 0. Unsampled pairs (and, in variance-aware mode, pairs
// with too few samples for a variance estimate) have radius +Inf.
func (a *TMerge) radius(s *pairState, tau int) float64 {
	if s.sampler.Exhausted() {
		return 0
	}
	if s.count == 0 {
		return math.Inf(1)
	}
	if a.cfg.ULBHoeffding {
		return stats.HoeffdingRadius(tau, s.count)
	}
	const minSamples = 8
	if s.count < minSamples {
		return math.Inf(1)
	}
	// Empirical-Bernstein-style radius: the Hoeffding exponent with the
	// observed standard deviation in place of the worst-case range, plus
	// a 1/n correction guarding small-sample variance underestimates.
	sd := math.Sqrt(s.variance())
	const minSD = 0.02
	if sd < minSD {
		sd = minSD
	}
	logTau := math.Log(float64(max2(tau, 2)))
	return sd*math.Sqrt(2*logTau/float64(s.count)) + 0.5/float64(s.count)
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// sizeScratch resizes *buf to exactly n elements, growing the backing
// array only when needed, and returns the resized slice. Contents are
// unspecified; callers overwrite every element.
func sizeScratch(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// countLess returns the number of elements of sorted that are < x.
func countLess(sorted []float64, x float64) int {
	return sort.SearchFloat64s(sorted, x)
}

// computeRegret fills diag.AvgRegret: the mean excess of the evaluated
// distances over the smallest estimated track-pair score (§IV-E). The true
// s̃min is unknown; the estimate uses the smallest sample mean among pairs
// with at least one observation.
func (a *TMerge) computeRegret(arms []pairState, tau int) {
	if tau == 0 {
		return
	}
	sMin := math.Inf(1)
	for i := range arms {
		if s := &arms[i]; s.count > 0 && s.mean() < sMin {
			sMin = s.mean()
		}
	}
	if math.IsInf(sMin, 1) {
		return
	}
	a.diag.AvgRegret = a.diag.SumDistances/float64(tau) - sMin
}
