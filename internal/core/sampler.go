// Package core implements the paper's contribution: the exhaustive
// Baseline (Algorithm 1), the proportional-sampling baseline PS, the
// lower-confidence-bound bandit LCB, and TMerge (Algorithm 2) with
// BetaInit (Algorithm 3) and ULB pruning (Algorithm 4), together with
// their batched "-B" variants (§IV-F) and the Merger that rewrites track
// IDs once polyonymous pairs are confirmed.
package core

import (
	"fmt"

	"github.com/tmerge/tmerge/internal/xrand"
)

// indexSampler draws indices from [0, n) uniformly at random *without
// replacement* in O(1) time and O(draws) memory, using a sparse
// Fisher–Yates shuffle: instead of materialising the (potentially huge)
// cross product of BBox pairs, only displaced positions are recorded in a
// map. It backs the paper's "randomly select a BBox pair ... without
// replacement" step (Algorithm 2, line 7).
// samplerInline is the number of displaced slots an indexSampler records
// inline before spilling to a map. Displacements accumulate at most one
// per draw (and shrink when the drawn slot was itself displaced), and the
// bandits draw only a handful of pairs per arm before the stopping rule
// fires, so almost every sampler lives its whole life inside the array.
const samplerInline = 8

type indexSampler struct {
	n         int
	remaining int
	// Inline displacement storage: slots[:inline] maps key→val without a
	// map allocation. Keys are unique; lookups are linear over ≤
	// samplerInline entries, cheaper than a map at that size.
	keys   [samplerInline]int
	vals   [samplerInline]int
	inline int
	// moved spills displacements past the inline capacity. Allocated only
	// on the rare sampler that is drawn from more than samplerInline times
	// while holding that many live displacements.
	moved map[int]int
	rng   *xrand.RNG
}

// newIndexSampler returns a sampler over [0, n). Displacement storage is
// inline (and the spill map lazy): TMerge initialises one sampler per
// track pair but touches only the pairs Thompson sampling steers it to,
// so most samplers never allocate at all.
func newIndexSampler(n int, rng *xrand.RNG) *indexSampler {
	s := &indexSampler{}
	s.init(n, rng)
	return s
}

// init (re)initialises the sampler in place over [0, n), so callers that
// embed samplers by value set them up without a per-sampler allocation.
func (s *indexSampler) init(n int, rng *xrand.RNG) {
	if n < 0 {
		panic(fmt.Sprintf("core: negative sampler domain %d", n))
	}
	*s = indexSampler{n: n, remaining: n, rng: rng}
}

// Remaining returns how many indices have not been drawn yet.
func (s *indexSampler) Remaining() int { return s.remaining }

// Exhausted reports whether every index has been drawn.
func (s *indexSampler) Exhausted() bool { return s.remaining == 0 }

// Next draws the next index. It panics when exhausted; callers must check
// Exhausted first.
func (s *indexSampler) Next() int {
	if s.remaining == 0 {
		panic("core: sampler exhausted")
	}
	k := s.rng.Intn(s.remaining)
	v := s.valueAt(k)
	last := s.remaining - 1
	if k != last {
		// Move the value at the end of the virtual array into slot k.
		s.setMoved(k, s.valueAt(last))
	}
	s.clearMoved(last)
	s.remaining--
	return v
}

func (s *indexSampler) valueAt(i int) int {
	for j := 0; j < s.inline; j++ {
		if s.keys[j] == i {
			return s.vals[j]
		}
	}
	if v, ok := s.moved[i]; ok {
		return v
	}
	return i
}

// setMoved records that virtual slot k now holds v, preferring the
// inline array and spilling to the map only when it is full.
func (s *indexSampler) setMoved(k, v int) {
	for j := 0; j < s.inline; j++ {
		if s.keys[j] == k {
			s.vals[j] = v
			return
		}
	}
	if _, ok := s.moved[k]; ok {
		s.moved[k] = v
		return
	}
	if s.inline < samplerInline {
		s.keys[s.inline], s.vals[s.inline] = k, v
		s.inline++
		return
	}
	if s.moved == nil {
		s.moved = make(map[int]int)
	}
	s.moved[k] = v
}

// clearMoved forgets any displacement recorded for slot i (which just
// fell off the end of the virtual array).
func (s *indexSampler) clearMoved(i int) {
	for j := 0; j < s.inline; j++ {
		if s.keys[j] == i {
			s.inline--
			s.keys[j], s.vals[j] = s.keys[s.inline], s.vals[s.inline]
			return
		}
	}
	if s.moved != nil {
		delete(s.moved, i)
	}
}
