// Package core implements the paper's contribution: the exhaustive
// Baseline (Algorithm 1), the proportional-sampling baseline PS, the
// lower-confidence-bound bandit LCB, and TMerge (Algorithm 2) with
// BetaInit (Algorithm 3) and ULB pruning (Algorithm 4), together with
// their batched "-B" variants (§IV-F) and the Merger that rewrites track
// IDs once polyonymous pairs are confirmed.
package core

import (
	"fmt"

	"github.com/tmerge/tmerge/internal/xrand"
)

// indexSampler draws indices from [0, n) uniformly at random *without
// replacement* in O(1) time and O(draws) memory, using a sparse
// Fisher–Yates shuffle: instead of materialising the (potentially huge)
// cross product of BBox pairs, only displaced positions are recorded in a
// map. It backs the paper's "randomly select a BBox pair ... without
// replacement" step (Algorithm 2, line 7).
type indexSampler struct {
	n         int
	remaining int
	moved     map[int]int
	rng       *xrand.RNG
}

// newIndexSampler returns a sampler over [0, n). The displacement map is
// allocated lazily on the first draw: TMerge initialises one sampler per
// track pair but touches only the pairs Thompson sampling steers it to,
// so most samplers never need the map at all.
func newIndexSampler(n int, rng *xrand.RNG) *indexSampler {
	if n < 0 {
		panic(fmt.Sprintf("core: negative sampler domain %d", n))
	}
	return &indexSampler{n: n, remaining: n, rng: rng}
}

// Remaining returns how many indices have not been drawn yet.
func (s *indexSampler) Remaining() int { return s.remaining }

// Exhausted reports whether every index has been drawn.
func (s *indexSampler) Exhausted() bool { return s.remaining == 0 }

// Next draws the next index. It panics when exhausted; callers must check
// Exhausted first.
func (s *indexSampler) Next() int {
	if s.remaining == 0 {
		panic("core: sampler exhausted")
	}
	k := s.rng.Intn(s.remaining)
	v := s.valueAt(k)
	last := s.remaining - 1
	// Move the value at the end of the virtual array into slot k.
	if s.moved == nil {
		s.moved = make(map[int]int)
	}
	s.moved[k] = s.valueAt(last)
	delete(s.moved, last)
	s.remaining--
	return v
}

func (s *indexSampler) valueAt(i int) int {
	if v, ok := s.moved[i]; ok {
		return v
	}
	return i
}
