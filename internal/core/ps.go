package core

import (
	"fmt"
	"math"

	"github.com/tmerge/tmerge/internal/reid"
	"github.com/tmerge/tmerge/internal/video"
	"github.com/tmerge/tmerge/internal/xrand"
)

// PS is the uniform stratified proportional-sampling baseline of §V-B:
// from every track pair (stratum) it samples a fixed proportion η of the
// BBox pairs without replacement, estimates the track-pair score by the
// sample mean, and ranks. Spending is spread evenly across all pairs,
// which is exactly the inefficiency TMerge's bandit formulation removes.
//
// With Batch > 1 the algorithm is PS-B: the sampled BBox pairs of Batch
// track pairs form one device submission.
type PS struct {
	// Eta is the sampled proportion η ∈ (0, 1] of BBox pairs per stratum.
	Eta float64
	// Batch is the number of track pairs per device submission (<= 1 for
	// sequential PS).
	Batch int
	// Seed drives the sampling.
	Seed uint64
}

// NewPS returns sequential proportional sampling.
func NewPS(eta float64, seed uint64) *PS { return &PS{Eta: eta, Batch: 1, Seed: seed} }

// NewPSB returns batched proportional sampling (PS-B).
func NewPSB(eta float64, batch int, seed uint64) *PS {
	return &PS{Eta: eta, Batch: batch, Seed: seed}
}

// Name implements Algorithm.
func (a *PS) Name() string {
	if a.Batch > 1 {
		return "PS-B"
	}
	return "PS"
}

// Select implements Algorithm.
func (a *PS) Select(ps *video.PairSet, oracle *reid.Oracle, K float64) []video.PairKey {
	if a.Eta <= 0 || a.Eta > 1 {
		panic(fmt.Sprintf("core: PS eta must be in (0, 1], got %g", a.Eta))
	}
	scored := make([]scoredPair, 0, ps.Len())
	for _, span := range chunkPairs(ps.Len(), a.Batch) {
		specs := make([]reid.SampleSpec, 0, span[1]-span[0])
		for idx := span[0]; idx < span[1]; idx++ {
			p := ps.Pairs[idx]
			total := p.NumBBoxPairs()
			want := int(math.Ceil(a.Eta * float64(total)))
			if want < 1 {
				want = 1
			}
			if want > total {
				want = total
			}
			rng := xrand.DeriveN(a.Seed, "ps:"+p.Key.String(), idx)
			s := newIndexSampler(total, rng)
			indices := make([]int, want)
			for k := range indices {
				indices[k] = s.Next()
			}
			specs = append(specs, reid.SampleSpec{Pair: p, Indices: indices})
		}
		means := oracle.SampledMeans(specs)
		for i, idx := 0, span[0]; idx < span[1]; i, idx = i+1, idx+1 {
			scored = append(scored, scoredPair{key: ps.Pairs[idx].Key, score: means[i]})
		}
	}
	return rankAndTruncate(scored, ps, K)
}
