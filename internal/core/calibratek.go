package core

import (
	"fmt"
	"math"
	"sort"

	"github.com/tmerge/tmerge/internal/reid"
	"github.com/tmerge/tmerge/internal/video"
)

// LabelledWindow pairs one window's candidate universe with its
// ground-truth polyonymous pairs — the "sample of representative videos"
// §III proposes for calibrating K in unknown environments.
type LabelledWindow struct {
	Pairs *video.PairSet
	Truth map[video.PairKey]bool
}

// KCalibration is the outcome of CalibrateK.
type KCalibration struct {
	// K is the smallest candidate proportion whose mean recall over the
	// labelled windows reaches the target.
	K float64
	// REC is the mean recall achieved at K.
	REC float64
	// Curve holds (K, REC) for every evaluated grid point, the data
	// behind the paper's Figure 3.
	Curve []struct{ K, REC float64 }
}

// CalibrateK finds the smallest K on a grid such that the exhaustive
// ranking achieves at least targetREC on the labelled sample, implementing
// the calibration procedure §III sketches ("a sample of representative
// videos can be adopted to calibrate the value of K"). One exact ranking
// per window is computed with the baseline; every K is then a prefix
// recall of that ranking. Windows with an empty truth set carry no signal
// and are skipped. If no grid point reaches the target, the largest grid
// point is returned.
func CalibrateK(windows []LabelledWindow, oracle *reid.Oracle, targetREC float64, grid []float64) (KCalibration, error) {
	if targetREC <= 0 || targetREC > 1 {
		return KCalibration{}, fmt.Errorf("core: target recall must be in (0, 1], got %g", targetREC)
	}
	if len(grid) == 0 {
		grid = []float64{0.01, 0.02, 0.03, 0.05, 0.075, 0.1, 0.15, 0.2}
	}
	grid = append([]float64(nil), grid...)
	sort.Float64s(grid)

	type ranked struct {
		ranking []video.PairKey
		ps      *video.PairSet
		truth   map[video.PairKey]bool
	}
	var rs []ranked
	bl := NewBaseline()
	for _, lw := range windows {
		if len(lw.Truth) == 0 || lw.Pairs.Len() == 0 {
			continue
		}
		rs = append(rs, ranked{
			ranking: bl.Select(lw.Pairs, oracle, 1.0),
			ps:      lw.Pairs,
			truth:   lw.Truth,
		})
	}
	if len(rs) == 0 {
		return KCalibration{}, fmt.Errorf("core: no labelled windows with polyonymous pairs")
	}

	out := KCalibration{K: grid[len(grid)-1]}
	found := false
	for _, k := range grid {
		var sum float64
		for _, r := range rs {
			n := r.ps.TopCount(k)
			if n > len(r.ranking) {
				n = len(r.ranking)
			}
			sum += video.Recall(r.ranking[:n], r.truth)
		}
		rec := sum / float64(len(rs))
		out.Curve = append(out.Curve, struct{ K, REC float64 }{k, rec})
		if !found && rec >= targetREC {
			out.K = k
			out.REC = rec
			found = true
		}
	}
	if !found {
		last := out.Curve[len(out.Curve)-1]
		out.K, out.REC = last.K, last.REC
	}
	return out, nil
}

// SuggestTauMax estimates an iteration budget for TMerge from the pair
// universe size: the bandit needs a few samples per pair to dismiss the
// non-polyonymous bulk plus a concentration reserve for the contenders.
// The heuristic τ = max(2000, 16·|Pc|) reproduces the paper's default
// (τ=10,000 at ~400-600 pairs per window).
func SuggestTauMax(ps *video.PairSet) int {
	tau := 16 * ps.Len()
	if tau < 2000 {
		tau = 2000
	}
	// Never exceed the exhaustive cost.
	total := 0
	for _, p := range ps.Pairs {
		total += p.NumBBoxPairs()
		if total > math.MaxInt32 {
			break
		}
	}
	if total > 0 && tau > total {
		tau = total
	}
	return tau
}
