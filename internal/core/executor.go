package core

import (
	"errors"
	"runtime"

	"github.com/tmerge/tmerge/internal/device"
	"github.com/tmerge/tmerge/internal/reid"
	"github.com/tmerge/tmerge/internal/video"
)

// Cloner is implemented by algorithms that carry per-Select mutable
// state (TMerge's diagnostics, for example) and therefore cannot share
// one instance across concurrent Select calls. The parallel window
// executor clones such algorithms once per window; algorithms without
// the method are assumed stateless across Select calls (every other
// algorithm in this package is) and are shared as-is.
//
// A clone must be configured identically to its parent — same seed
// included. Per-window stream independence comes from the seeding
// discipline inside Select (streams are derived fresh from the seed and
// per-pair labels on every call), not from varying the seed, which is
// what keeps Workers=1 and Workers=N bit-identical.
type Cloner interface {
	// CloneAlgorithm returns an independent instance with the same
	// configuration.
	CloneAlgorithm() Algorithm
}

// cloneForWindow returns an instance of algo safe for a concurrent
// per-window Select call.
func cloneForWindow(algo Algorithm) Algorithm {
	if c, ok := algo.(Cloner); ok {
		return c.CloneAlgorithm()
	}
	return algo
}

// EffectiveWorkers resolves a configured worker count: 0 means
// runtime.NumCPU(), anything else is taken as-is (callers validate
// negatives away).
func EffectiveWorkers(workers int) int {
	if workers == 0 {
		return runtime.NumCPU()
	}
	return workers
}

// WindowSelection is the speculative outcome of one window's candidate
// selection: the oracle-backed candidate set, the submission log to be
// replayed canonically, and enough context to fall back to the spatial
// prior if the replay hits an unavailable device. Produce it with
// SpeculateSelection (concurrently, in any order), then Commit it in
// canonical window order.
type WindowSelection struct {
	ps       *video.PairSet
	k        float64
	selected []video.PairKey
	log      []reid.SubmissionRecord
}

// SpeculateSelection runs algo over ps against a speculative session of
// oracle backed by store, without touching the real device, stats,
// cache, or fault machinery. It is safe to call concurrently for
// different windows sharing one store; results are bit-identical to a
// sequential fault-free Select because selection depends only on the
// algorithm's seed and the (deterministic) distances.
func SpeculateSelection(algo Algorithm, ps *video.PairSet, oracle *reid.Oracle, store *reid.FeatureStore, K float64) *WindowSelection {
	sess := oracle.Speculate(store)
	selected := cloneForWindow(algo).Select(ps, sess.Oracle(), K)
	return &WindowSelection{ps: ps, k: K, selected: selected, log: sess.Log()}
}

// Selected returns the speculative oracle-backed candidate set.
func (ws *WindowSelection) Selected() []video.PairKey { return ws.selected }

// Commit replays the selection's recorded oracle work against the real
// oracle — charging virtual time, committing stats and cache entries,
// and exercising the fault/retry/breaker stack in canonical submission
// order. If the device gives out mid-replay the window degrades exactly
// like a sequential SelectWithFallback: the completed submissions stay
// charged, the remainder of the log is abandoned, and the returned
// candidates are re-ranked by the spatial prior. Commit must be called
// once per selection, in canonical window order.
func (ws *WindowSelection) Commit(oracle *reid.Oracle, store *reid.FeatureStore) (selected []video.PairKey, degraded bool) {
	sel, deg := CommitSelections(oracle, store, []*WindowSelection{ws})
	return sel[0], deg[0]
}

// CommitSelections certifies several consecutive windows' selections in
// one batched replay pass — the TMerge-B batching insight applied to
// certification. sels must be the windows' selections in canonical
// window order; their logs are handed to Oracle.ReplayBatch together, so
// the batch shares one planning-scratch set and one fallible-device
// lookup while reproducing exactly the per-record cache hits, stats,
// virtual time, and fault-path activity of committing each window alone.
// A nil entry (a window with no selection to certify) replays nothing
// and yields a nil candidate set.
//
// Per-window outcomes mirror Commit: a window whose replay hits an
// unavailable device degrades to the spatial prior (completed
// submissions stay charged, later windows still replay), and any other
// replay error is a programming bug and panics.
func CommitSelections(oracle *reid.Oracle, store *reid.FeatureStore, sels []*WindowSelection) (selected [][]video.PairKey, degraded []bool) {
	logs := make([][]reid.SubmissionRecord, len(sels))
	for i, ws := range sels {
		if ws != nil {
			logs[i] = ws.log
		}
	}
	errs := oracle.ReplayBatch(logs, store)
	selected = make([][]video.PairKey, len(sels))
	degraded = make([]bool, len(sels))
	for i, ws := range sels {
		if ws == nil {
			continue
		}
		if err := errs[i]; err != nil {
			var ua *device.Unavailable
			if !errors.As(err, &ua) {
				// Not a device fault: a corrupted log or store. This is a
				// programming error, reported like any other invariant
				// violation on the infallible pipeline path.
				panic(err)
			}
			selected[i] = SpatialSelect(ws.ps, ws.k)
			degraded[i] = true
			continue
		}
		selected[i] = ws.selected
	}
	return selected, degraded
}

// ForEachOrdered runs work(i) for every i in [0, n) on a bounded pool of
// workers and delivers the results to commit(i, v) in ascending index
// order on the calling goroutine. In-flight work — dispatched but not
// yet committed — is bounded by 2·workers, so a slow early window cannot
// make the executor buffer the whole partition.
//
// A panic in any work call cancels dispatch of further indices; after
// every in-flight worker has drained, the panic value is re-raised on
// the calling goroutine (first panicking index wins), so callers observe
// the same panic a sequential loop would have produced and no goroutine
// outlives the call.
func ForEachOrdered[T any](n, workers int, work func(i int) T, commit func(i int, v T)) {
	ForEachOrderedBatch(n, workers, work, func(start int, vs []T) {
		for k := range vs {
			commit(start+k, vs[k])
		}
	})
}

// ForEachOrderedBatch is ForEachOrdered delivering results to
// commitBatch(start, vs) — vs[k] being work(start+k)'s result — instead
// of one call per index. Each batch is the maximal run of consecutive
// indices already finished when the committer reaches its head: the head
// is awaited, then ready successors are drained without blocking, so a
// caller whose commit has batch economies (the window certifier's
// oracle replay, for instance) amortises them over every window that
// finished while earlier ones were being committed, without ever
// delaying a ready result to grow a batch. Batches arrive in ascending
// order, cover every index exactly once, and vs is only valid during the
// call (it is reused).
//
// Panic semantics match ForEachOrdered index-for-index: results before
// the first panicking index are still committed (as a final, possibly
// shortened batch) before the panic value is re-raised.
func ForEachOrderedBatch[T any](n, workers int, work func(i int) T, commitBatch func(start int, vs []T)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		buf := make([]T, 1)
		for i := 0; i < n; i++ {
			buf[0] = work(i)
			commitBatch(i, buf)
		}
		return
	}

	type slot struct {
		v        T
		panicked bool
		pval     any
	}
	done := make([]chan slot, n)
	for i := range done {
		done[i] = make(chan slot, 1)
	}
	stop := make(chan struct{})

	// Dispatcher: feeds indices in order, bounded by the in-flight
	// semaphore (released by the committer loop below). It owns jobCh.
	inFlight := make(chan struct{}, 2*workers)
	jobCh := make(chan int)
	go func() {
		defer close(jobCh)
		for i := 0; i < n; i++ {
			select {
			case inFlight <- struct{}{}:
			case <-stop:
				return
			}
			select {
			case jobCh <- i:
			case <-stop:
				return
			}
		}
	}()

	// Workers: every dispatched index is processed and its slot filled
	// (the channels are buffered, so workers never block on delivery and
	// always drain jobCh to completion — no goroutine leaks even when a
	// panic aborts the run early).
	workerDone := make(chan struct{}, workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { workerDone <- struct{}{} }()
			for i := range jobCh {
				var s slot
				func() {
					defer func() {
						if r := recover(); r != nil {
							s.panicked = true
							s.pval = r
						}
					}()
					s.v = work(i)
				}()
				done[i] <- s
			}
		}()
	}

	// Committer (calling goroutine): consume in ascending order, one
	// maximal ready run per commitBatch call. The dispatcher also
	// dispatches in ascending order, so if index i was never dispatched,
	// some j < i panicked and the loop re-raises it before reaching i —
	// the blocking receive below can never deadlock. The deferred
	// cancel-and-drain runs on every exit (normal, work panic, commit
	// panic): it stops the dispatcher and waits for the pool, so no
	// goroutine outlives this call, and a re-raised panic surfaces only
	// after the pool is quiet.
	defer func() {
		close(stop)
		for w := 0; w < workers; w++ {
			<-workerDone
		}
	}()
	var batch []T
	for i := 0; i < n; {
		// Await the head of the next batch.
		s := <-done[i]
		<-inFlight
		if s.panicked {
			panic(s.pval)
		}
		start := i
		batch = append(batch[:0], s.v)
		i++
		// Drain every consecutively-ready successor without blocking; a
		// panicked slot ends the run so the preceding results still
		// commit before the re-raise.
		var pval any
		panicked := false
	drain:
		for i < n {
			select {
			case s := <-done[i]:
				<-inFlight
				if s.panicked {
					panicked, pval = true, s.pval
					break drain
				}
				batch = append(batch, s.v)
				i++
			default:
				break drain
			}
		}
		commitBatch(start, batch)
		if panicked {
			panic(pval)
		}
	}
}
