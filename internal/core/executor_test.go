package core

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// checkNoGoroutineLeak fails the test if the goroutine count has not
// returned to (roughly) its before-value within a second — the
// executor's contract is that no worker or dispatcher goroutine outlives
// the ForEachOrdered call, panics included.
func checkNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(time.Second)
	for {
		runtime.GC() // nudge finished goroutines off the scheduler
		now := runtime.NumGoroutine()
		if now <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after", before, now)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestForEachOrderedCommitsInOrder: commits must arrive strictly in
// ascending index order on the calling goroutine even when work
// completes wildly out of order.
func TestForEachOrderedCommitsInOrder(t *testing.T) {
	before := runtime.NumGoroutine()
	const n, workers = 200, 4
	next := 0
	ForEachOrdered(n, workers,
		func(i int) int {
			// Earlier indices sleep longer, maximising out-of-order
			// completion pressure on the reducer.
			time.Sleep(time.Duration((i*37)%5) * 100 * time.Microsecond)
			return i * i
		},
		func(i int, v int) {
			if i != next {
				t.Fatalf("commit %d arrived out of order, want %d", i, next)
			}
			if v != i*i {
				t.Fatalf("commit %d carried %d, want %d", i, v, i*i)
			}
			next++
		})
	if next != n {
		t.Fatalf("committed %d of %d", next, n)
	}
	checkNoGoroutineLeak(t, before)
}

// TestForEachOrderedBoundedInFlight: dispatched-but-uncommitted work is
// bounded by 2·workers, and concurrently-running work by workers.
func TestForEachOrderedBoundedInFlight(t *testing.T) {
	const n, workers = 120, 3
	var started, running, maxRunning atomic.Int64
	committed := 0
	ForEachOrdered(n, workers,
		func(i int) struct{} {
			started.Add(1)
			r := running.Add(1)
			for {
				m := maxRunning.Load()
				if r <= m || maxRunning.CompareAndSwap(m, r) {
					break
				}
			}
			time.Sleep(200 * time.Microsecond)
			running.Add(-1)
			return struct{}{}
		},
		func(i int, _ struct{}) {
			// The dispatcher acquires an in-flight token before handing
			// out an index and the committer releases it just before this
			// callback, so at this point at most committed + 2·workers
			// indices can ever have started.
			if s := started.Load(); s > int64(committed+2*workers) {
				t.Fatalf("commit %d: %d work calls started, in-flight bound is committed(%d) + 2*workers(%d)",
					i, s, committed, 2*workers)
			}
			committed++
		})
	if got := maxRunning.Load(); got > workers {
		t.Errorf("max concurrent work calls = %d, want <= %d", got, workers)
	}
	if committed != n {
		t.Fatalf("committed %d of %d", committed, n)
	}
}

// TestForEachOrderedPanicInWork: a panicking work call must cancel
// dispatch, commit exactly the indices before it, drain the pool, and
// re-raise the original value on the calling goroutine.
func TestForEachOrderedPanicInWork(t *testing.T) {
	before := runtime.NumGoroutine()
	const n, workers, failAt = 1000, 4, 5
	var started atomic.Int64
	committed := 0
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("panic did not propagate")
			}
			if s, ok := r.(string); !ok || s != "boom-5" {
				t.Fatalf("recovered %v, want boom-5", r)
			}
		}()
		ForEachOrdered(n, workers,
			func(i int) int {
				started.Add(1)
				if i == failAt {
					panic(fmt.Sprintf("boom-%d", i))
				}
				return i
			},
			func(i int, v int) { committed++ })
	}()
	if committed != failAt {
		t.Errorf("committed %d windows, want exactly the %d before the panic", committed, failAt)
	}
	// Cancellation bound: the committer stops at the failing index, so
	// dispatch can never have run ahead by more than the in-flight cap.
	if s := started.Load(); s > failAt+1+2*workers {
		t.Errorf("%d work calls started after cancellation, want <= %d", s, failAt+1+2*workers)
	}
	checkNoGoroutineLeak(t, before)
}

// TestForEachOrderedPanicInCommit: a panicking commit callback (the
// reducer detecting a corrupted state is a programming error) must also
// stop the dispatcher and drain the pool before propagating — the
// executor may never leak goroutines, whichever side fails.
func TestForEachOrderedPanicInCommit(t *testing.T) {
	before := runtime.NumGoroutine()
	const n, workers, failAt = 500, 4, 3
	func() {
		defer func() {
			if r := recover(); r != "commit-boom" {
				t.Fatalf("recovered %v, want commit-boom", r)
			}
		}()
		ForEachOrdered(n, workers,
			func(i int) int { return i },
			func(i int, v int) {
				if i == failAt {
					panic("commit-boom")
				}
			})
	}()
	checkNoGoroutineLeak(t, before)
}

// TestForEachOrderedSequentialPaths: degenerate worker counts (<= 1, or
// pools larger than the job list) still commit every index in order.
func TestForEachOrderedSequentialPaths(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{0, 4}, {1, 4}, {3, 100}, {5, 1}, {5, 0},
	} {
		var got []int
		ForEachOrdered(tc.n, tc.workers,
			func(i int) int { return i },
			func(i int, v int) { got = append(got, v) })
		if len(got) != tc.n {
			t.Fatalf("n=%d workers=%d: committed %d", tc.n, tc.workers, len(got))
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("n=%d workers=%d: commit %d carried %d", tc.n, tc.workers, i, v)
			}
		}
	}
}
