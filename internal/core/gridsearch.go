package core

import (
	"fmt"

	"github.com/tmerge/tmerge/internal/motmetrics"
	"github.com/tmerge/tmerge/internal/reid"
	"github.com/tmerge/tmerge/internal/video"
)

// GridSearchConfig parameterises the hyper-parameter search of §V-F:
// "the optimal values of both L and thr_S can be obtained by grid search
// on a period of labelled frame sequences".
type GridSearchConfig struct {
	// Ls are the window lengths to try (even, positive).
	Ls []int
	// ThrSs are the BetaInit thresholds to try.
	ThrSs []float64
	// K is the candidate proportion used during the search.
	K float64
	// Base is the TMerge configuration the grid points are applied to.
	Base TMergeConfig
}

// GridPoint is one evaluated (L, thrS) combination.
type GridPoint struct {
	L    int
	ThrS float64
	REC  float64
}

// GridSearchResult reports the best point and the full grid.
type GridSearchResult struct {
	Best GridPoint
	Grid []GridPoint
}

// GridSearch evaluates every (L, thrS) combination on the labelled
// sequence: the tracker output is re-windowed at each L, TMerge runs with
// each thrS, and the combination with the highest mean recall wins (ties
// prefer smaller L, then smaller thrS, for cheaper ingestion). tracks must
// carry GT object labels so truth can be derived.
func GridSearch(tracks *video.TrackSet, numFrames int, oracle *reid.Oracle, cfg GridSearchConfig) (GridSearchResult, error) {
	if len(cfg.Ls) == 0 || len(cfg.ThrSs) == 0 {
		return GridSearchResult{}, fmt.Errorf("core: grid search needs at least one L and one thrS")
	}
	if cfg.K <= 0 || cfg.K > 1 {
		return GridSearchResult{}, fmt.Errorf("core: grid search K must be in (0, 1], got %g", cfg.K)
	}
	var res GridSearchResult
	first := true
	for _, L := range cfg.Ls {
		if L <= 0 || L%2 != 0 {
			return GridSearchResult{}, fmt.Errorf("core: grid L must be positive and even, got %d", L)
		}
		// Pair universes per window are identical across thrS values;
		// build them once per L.
		type win struct {
			ps    *video.PairSet
			truth map[video.PairKey]bool
		}
		var wins []win
		var prev []*video.Track
		for _, w := range video.Partition(numFrames, L) {
			cur := video.WindowTracks(tracks, w)
			ps := video.BuildPairSet(w, cur, prev)
			prev = cur
			truth := motmetrics.PolyonymousPairs(ps)
			if len(truth) > 0 {
				wins = append(wins, win{ps: ps, truth: truth})
			}
		}
		for _, thr := range cfg.ThrSs {
			tmCfg := cfg.Base
			tmCfg.ThrS = thr
			tmCfg.UseBetaInit = thr > 0
			var sum float64
			for _, w := range wins {
				c := tmCfg
				if c.TauMax <= 0 {
					c.TauMax = SuggestTauMax(w.ps)
				}
				sel := NewTMerge(c).Select(w.ps, oracle, cfg.K)
				sum += video.Recall(sel, w.truth)
			}
			rec := 1.0
			if len(wins) > 0 {
				rec = sum / float64(len(wins))
			}
			pt := GridPoint{L: L, ThrS: thr, REC: rec}
			res.Grid = append(res.Grid, pt)
			if first || pt.REC > res.Best.REC {
				res.Best = pt
				first = false
			}
		}
	}
	return res, nil
}
