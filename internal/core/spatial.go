package core

import (
	"github.com/tmerge/tmerge/internal/device"
	"github.com/tmerge/tmerge/internal/reid"
	"github.com/tmerge/tmerge/internal/video"
)

// Spatial ranks candidates by the BetaInit spatial prior alone — DisS
// ascending, no oracle calls. Fragments of one object end and start near
// each other (§IV-C), so spatial proximity is an informative, zero-cost
// ranking: much weaker than ReID-backed selection, but available even
// when the ReID device is down. It serves two roles: the degraded-mode
// fallback used by RunPipeline and ingest.Ingestor when the device's
// circuit breaker is open, and a free-of-charge baseline for how much of
// TMerge's recall is bought by the prior alone.
type Spatial struct{}

// NewSpatial returns the spatial-prior ranker.
func NewSpatial() *Spatial { return &Spatial{} }

// Name implements Algorithm.
func (a *Spatial) Name() string { return "Spatial" }

// Select implements Algorithm. The oracle is never consulted and may be
// nil.
func (a *Spatial) Select(ps *video.PairSet, oracle *reid.Oracle, K float64) []video.PairKey {
	return SpatialSelect(ps, K)
}

// SpatialSelect ranks the pair universe by spatial distance ascending
// and truncates to the top-⌈K·|Pc|⌉.
func SpatialSelect(ps *video.PairSet, K float64) []video.PairKey {
	scored := make([]scoredPair, ps.Len())
	for i, p := range ps.Pairs {
		scored[i] = scoredPair{key: p.Key, score: p.DisS}
	}
	return rankAndTruncate(scored, ps, K)
}

// SelectWithFallback runs algo over the pair universe, degrading to the
// spatial prior when the oracle's device gives out mid-window: a
// fallible device whose submission cannot be completed (retry budget
// exhausted, circuit breaker open) panics with *device.Unavailable, and
// this wrapper recovers exactly that panic, re-ranks the window's
// candidates with SpatialSelect, and reports degraded=true. Any other
// panic propagates. The window is never stalled or dropped; selection
// quality degrades instead, and oracle-backed selection resumes the
// moment the breaker closes (the next window simply tries again).
func SelectWithFallback(algo Algorithm, ps *video.PairSet, oracle *reid.Oracle, K float64) (selected []video.PairKey, degraded bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(*device.Unavailable); !ok {
				panic(r)
			}
			selected = SpatialSelect(ps, K)
			degraded = true
		}
	}()
	return algo.Select(ps, oracle, K), false
}
