package core

import (
	"github.com/tmerge/tmerge/internal/device"
	"github.com/tmerge/tmerge/internal/geom"
	"github.com/tmerge/tmerge/internal/reid"
	"github.com/tmerge/tmerge/internal/vecmath"
	"github.com/tmerge/tmerge/internal/video"
	"github.com/tmerge/tmerge/internal/xrand"
)

const testDim = 16

// fixture is a controlled pair universe: nGroups "objects", each split
// into two fragment tracks (so every group contributes one polyonymous
// pair), plus nSingles unfragmented tracks.
type fixture struct {
	ps    *video.PairSet
	truth map[video.PairKey]bool
}

// newFixture builds the universe. boxesPerTrack controls |B_t|.
func newFixture(seed uint64, nGroups, nSingles, boxesPerTrack int) *fixture {
	r := xrand.New(seed)
	var tracks []*video.Track
	truth := map[video.PairKey]bool{}
	nextTrack := video.TrackID(1)
	nextBox := video.BBoxID(1)
	nextObj := video.ObjectID(1)

	mkLatent := func() vecmath.Vec {
		v := vecmath.NewVec(testDim)
		for i := range v {
			v[i] = r.Gaussian(0, 1)
		}
		return vecmath.Normalize(v)
	}
	mkTrack := func(obj video.ObjectID, latent vecmath.Vec, startFrame int) *video.Track {
		t := &video.Track{ID: nextTrack}
		nextTrack++
		for i := 0; i < boxesPerTrack; i++ {
			obs := latent.Clone()
			for j := range obs {
				obs[j] += r.Gaussian(0, 0.07)
			}
			t.Boxes = append(t.Boxes, video.BBox{
				ID:       nextBox,
				Frame:    video.FrameIndex(startFrame + i),
				Rect:     geom.Rect{X: float64(startFrame+i) * 2, Y: float64(obj) * 20, W: 20, H: 20},
				Obs:      obs,
				GTObject: obj,
			})
			nextBox++
		}
		return t
	}

	for g := 0; g < nGroups; g++ {
		latent := mkLatent()
		obj := nextObj
		nextObj++
		a := mkTrack(obj, latent, g*10)
		// The second fragment starts shortly after the first ends, close
		// in space (small DisS) — like a real occlusion fragment.
		b := mkTrack(obj, latent, g*10+boxesPerTrack+3)
		tracks = append(tracks, a, b)
		truth[video.MakePairKey(a.ID, b.ID)] = true
	}
	for s := 0; s < nSingles; s++ {
		latent := mkLatent()
		obj := nextObj
		nextObj++
		tracks = append(tracks, mkTrack(obj, latent, 500+s*7))
	}

	w := video.Window{Start: 0, End: 100000}
	return &fixture{
		ps:    video.BuildPairSet(w, tracks, nil),
		truth: truth,
	}
}

func newFixtureOracle(seed uint64) *reid.Oracle {
	return reid.NewOracle(reid.NewModel(seed, testDim), device.NewCPU(device.DefaultCPU))
}

func recallOf(selected []video.PairKey, truth map[video.PairKey]bool) float64 {
	return video.Recall(selected, truth)
}
