package core

import (
	"testing"
)

func TestCalibrateKFindsSmallK(t *testing.T) {
	// Well-separated fixture: a small K suffices for full recall.
	fx := newFixture(40, 4, 16, 8)
	windows := []LabelledWindow{{Pairs: fx.ps, Truth: fx.truth}}
	oracle := newFixtureOracle(7)
	cal, err := CalibrateK(windows, oracle, 0.95, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cal.REC < 0.95 {
		t.Errorf("calibrated REC = %v", cal.REC)
	}
	if cal.K > 0.05 {
		t.Errorf("calibrated K = %v, expected small on a separable fixture", cal.K)
	}
	if len(cal.Curve) == 0 {
		t.Error("no curve points")
	}
	// Curve recall is non-decreasing in K.
	for i := 1; i < len(cal.Curve); i++ {
		if cal.Curve[i].REC < cal.Curve[i-1].REC {
			t.Errorf("REC-K curve decreased at %v", cal.Curve[i].K)
		}
	}
}

func TestCalibrateKUnreachableTargetReturnsLargest(t *testing.T) {
	fx := newFixture(41, 2, 8, 6)
	windows := []LabelledWindow{{Pairs: fx.ps, Truth: fx.truth}}
	oracle := newFixtureOracle(7)
	grid := []float64{0.001} // top-1 of 45 pairs cannot cover 2 truths
	cal, err := CalibrateK(windows, oracle, 1.0, grid)
	if err != nil {
		t.Fatal(err)
	}
	if cal.K != 0.001 {
		t.Errorf("K = %v, want the largest grid point", cal.K)
	}
	if cal.REC >= 1.0 {
		t.Errorf("REC = %v should miss the target", cal.REC)
	}
}

func TestCalibrateKValidation(t *testing.T) {
	oracle := newFixtureOracle(7)
	if _, err := CalibrateK(nil, oracle, 0, nil); err == nil {
		t.Error("expected error for target 0")
	}
	if _, err := CalibrateK(nil, oracle, 0.9, nil); err == nil {
		t.Error("expected error for no labelled windows")
	}
	// Windows with empty truth are skipped; all-empty is an error.
	fx := newFixture(42, 1, 4, 5)
	if _, err := CalibrateK([]LabelledWindow{{Pairs: fx.ps, Truth: nil}}, oracle, 0.9, nil); err == nil {
		t.Error("expected error when all windows lack truth")
	}
}

func TestSuggestTauMax(t *testing.T) {
	fx := newFixture(43, 3, 12, 8) // 18 tracks -> 153 pairs
	tau := SuggestTauMax(fx.ps)
	if tau < 2000 {
		t.Errorf("tau = %d below floor", tau)
	}
	big := newFixture(44, 10, 30, 8) // 50 tracks -> 1225 pairs
	if got := SuggestTauMax(big.ps); got != 16*big.ps.Len() {
		t.Errorf("tau = %d, want %d", got, 16*big.ps.Len())
	}
	// Tiny universes cap at the exhaustive cost.
	tiny := newFixture(45, 1, 0, 2) // 2 tracks, 1 pair, 4 bbox pairs
	if got := SuggestTauMax(tiny.ps); got != 4 {
		t.Errorf("tiny tau = %d, want 4", got)
	}
}
