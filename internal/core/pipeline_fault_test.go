package core

import (
	"testing"

	"github.com/tmerge/tmerge/internal/device"
	"github.com/tmerge/tmerge/internal/fault"
	"github.com/tmerge/tmerge/internal/reid"
	"github.com/tmerge/tmerge/internal/synth"
	"github.com/tmerge/tmerge/internal/track"
	"github.com/tmerge/tmerge/internal/video"
)

// faultScene is a longer variant of pipelineScene: 800 frames so L=200
// partitions into 8 half-overlapping windows, enough to watch the breaker
// trip, re-trip on a failed probe, and recover mid-run.
func faultScene(t *testing.T) (*synth.Video, *video.TrackSet) {
	t.Helper()
	cfg := synth.Config{
		Seed: 77, Name: "fault", NumFrames: 800, Width: 900, Height: 700,
		ArrivalRate: 0.04, MaxObjects: 8, MinSpan: 60, MaxSpan: 250,
		SpeedMin: 0.5, SpeedMax: 2, SizeMin: 60, SizeMax: 100,
		AppearanceDim: testDim, AppearanceNoise: 0.07, PosAppearanceWeight: 0.3,
		OcclusionCoverage: 0.45, MissProb: 0.02,
		GlareRate: 0.012, GlareDuration: 40, GlareSize: 250,
	}
	v, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return v, track.Tracktor().Track(v.Detections)
}

// TestPipelineSurvivesScriptedOutage is the end-to-end fault drill: a
// scripted device outage mid-run must not stall or drop any window. The
// algorithm is BL-B with one batch per window, so each nonempty window is
// exactly one logical submission and the whole trace is computable by
// hand:
//
//	attempt 0, 1        windows 0, 1 succeed          (breaker closed)
//	attempt 2, 3, 4     window 2: three failures      -> trip, degraded
//	attempt 5           window 3: probe fails         -> re-trip, degraded
//	attempt 6           window 4: probe succeeds      -> closed
//	attempt 7...        windows 5-7 succeed normally
//
// with RetryPolicy.MaxAttempts=4 (never reached: the Threshold=3 breaker
// trips first), zero cooldown (probe immediately on the next submission),
// and a flaky outage covering attempt indices [2, 6).
func TestPipelineSurvivesScriptedOutage(t *testing.T) {
	v, ts := faultScene(t)
	cfg := PipelineConfig{
		WindowLen: 200,
		K:         0.1,
		Algorithm: NewBaselineB(1 << 20), // one submission per window
	}

	// Fault-free reference run.
	ref := RunPipeline(ts, v.NumFrames, newFixtureOracle(7), cfg)
	for _, w := range ref.Windows {
		if w.Pairs == 0 {
			t.Fatalf("window %d has no pairs; the submission trace needs every window nonempty", w.Window.Index)
		}
	}
	if len(ref.Windows) != 8 {
		t.Fatalf("got %d windows, want 8", len(ref.Windows))
	}

	// Faulty run: same scene and model over a scripted-outage device.
	flaky := fault.NewFlaky(device.NewCPU(device.DefaultCPU), fault.Config{
		Schedule: fault.NewSchedule(fault.Outage{From: 2, To: 6}),
	})
	rd := device.NewResilientDevice(flaky,
		device.RetryPolicy{MaxAttempts: 4, Jitter: -1},
		device.BreakerConfig{Threshold: 3, Cooldown: -1, CooldownRejections: -1},
		11)
	oracle := reid.NewOracle(reid.NewModel(7, testDim), rd)
	res := RunPipeline(ts, v.NumFrames, oracle, cfg)

	if len(res.Windows) != len(ref.Windows) {
		t.Fatalf("faulty run produced %d windows, reference %d", len(res.Windows), len(ref.Windows))
	}
	for i, w := range res.Windows {
		wantDegraded := i == 2 || i == 3
		if w.Degraded != wantDegraded {
			t.Errorf("window %d: Degraded = %v, want %v", i, w.Degraded, wantDegraded)
		}
		if len(w.Selected) == 0 {
			t.Errorf("window %d selected nothing; degraded windows must still rank", i)
		}
		if !wantDegraded {
			refSel := ref.Windows[i].Selected
			if len(w.Selected) != len(refSel) {
				t.Errorf("window %d: %d selected, reference %d", i, len(w.Selected), len(refSel))
				continue
			}
			for j := range w.Selected {
				if w.Selected[j] != refSel[j] {
					t.Errorf("window %d pos %d: selection diverged from fault-free run: %v vs %v",
						i, j, w.Selected[j], refSel[j])
				}
			}
		}
	}
	if res.DegradedWindows != 2 {
		t.Errorf("DegradedWindows = %d, want 2", res.DegradedWindows)
	}

	want := device.ResilientCounters{
		Submissions: 8,
		Attempts:    10, // windows 0,1 (2) + window 2 (3) + probes (2) + windows 5-7 (3)
		Retries:     2,
		Failures:    4,
		Rejected:    0,
		Trips:       2,
		Probes:      2,
	}
	if got := res.Resilience; got != want {
		t.Errorf("Resilience = %+v, want %+v", got, want)
	}
	if fc := flaky.Counters(); fc.Outages != 4 {
		t.Errorf("flaky outages = %d, want 4", fc.Outages)
	}
	if st := rd.State(); st != device.BreakerClosed {
		t.Errorf("breaker finished %v, want closed", st)
	}

	// The degraded run merged something in every window and its recall is
	// still a valid number; no window was dropped on the floor.
	for _, w := range res.Windows {
		if w.Recall < 0 || w.Recall > 1 {
			t.Errorf("window %d recall = %v", w.Window.Index, w.Recall)
		}
	}
}

// TestPipelineDegradedMatchesSpatialRanking: a degraded window's selection
// must be exactly the spatial-prior ranking of its pair universe.
func TestPipelineDegradedMatchesSpatialRanking(t *testing.T) {
	v, ts := faultScene(t)
	cfg := PipelineConfig{
		WindowLen: 200,
		K:         0.1,
		Algorithm: NewBaselineB(1 << 20),
	}
	// Outage covering everything: every window degrades.
	flaky := fault.NewFlaky(device.NewCPU(device.DefaultCPU), fault.Config{
		Schedule: fault.NewSchedule(fault.Outage{From: 0, To: 1 << 40}),
	})
	rd := device.NewResilientDevice(flaky,
		device.RetryPolicy{MaxAttempts: 2, Jitter: -1},
		device.BreakerConfig{Threshold: 2, Cooldown: -1, CooldownRejections: -1},
		11)
	oracle := reid.NewOracle(reid.NewModel(7, testDim), rd)
	res := RunPipeline(ts, v.NumFrames, oracle, cfg)

	spatial := RunPipeline(ts, v.NumFrames, newFixtureOracle(7), PipelineConfig{
		WindowLen: 200,
		K:         0.1,
		Algorithm: NewSpatial(),
	})
	if res.DegradedWindows != len(res.Windows) {
		t.Fatalf("degraded %d of %d windows, want all", res.DegradedWindows, len(res.Windows))
	}
	for i, w := range res.Windows {
		want := spatial.Windows[i].Selected
		if len(w.Selected) != len(want) {
			t.Fatalf("window %d: %d selected, spatial reference %d", i, len(w.Selected), len(want))
		}
		for j := range w.Selected {
			if w.Selected[j] != want[j] {
				t.Errorf("window %d pos %d: %v, want spatial %v", i, j, w.Selected[j], want[j])
			}
		}
	}
	// The spatial fallback consumes no oracle work.
	if res.Stats.Extractions != 0 || res.Stats.Distances != 0 {
		t.Errorf("degraded run recorded oracle work: %+v", res.Stats)
	}
}

func TestPipelineConfigValidation(t *testing.T) {
	algo := NewBaseline()
	bad := []PipelineConfig{
		{WindowLen: 201, K: 0.05, Algorithm: algo}, // odd window
		{WindowLen: 200, K: 0, Algorithm: algo},    // K too small
		{WindowLen: 200, K: -0.1, Algorithm: algo}, // K negative
		{WindowLen: 200, K: 1.5, Algorithm: algo},  // K too large
		{WindowLen: 200, K: 0.05, Algorithm: nil},  // nil algorithm
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
		if _, err := TryRunPipeline(video.NewTrackSet(nil), 100, newFixtureOracle(7), cfg); err == nil {
			t.Errorf("case %d: TryRunPipeline accepted invalid config", i)
		}
	}
	good := []PipelineConfig{
		{WindowLen: 0, K: 0.05, Algorithm: algo}, // whole video
		{WindowLen: -1, K: 1, Algorithm: algo},   // whole video, K at edge
		{WindowLen: 200, K: 0.05, Algorithm: algo},
	}
	for i, cfg := range good {
		if err := cfg.Validate(); err != nil {
			t.Errorf("case %d: valid config rejected: %v", i, err)
		}
	}
}

func TestRunPipelinePanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on invalid config")
		}
	}()
	RunPipeline(video.NewTrackSet(nil), 100, newFixtureOracle(7), PipelineConfig{
		WindowLen: 3, K: 0.05, Algorithm: NewBaseline(),
	})
}
