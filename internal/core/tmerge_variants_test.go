package core

import (
	"testing"

	"github.com/tmerge/tmerge/internal/stats"
)

func TestTMergeLiteralBernoulliRuns(t *testing.T) {
	fx := newFixture(60, 3, 12, 8)
	cfg := DefaultTMergeConfig(7)
	cfg.TauMax = 3000
	cfg.LiteralBernoulli = true
	cfg.LiteralRanking = true
	tm := NewTMerge(cfg)
	sel := tm.Select(fx.ps, newFixtureOracle(7), 0.05)
	if got := recallOf(sel, fx.truth); got < 0.3 {
		t.Errorf("literal variant recall = %v", got)
	}
}

func TestTMergeFractionalAtLeastAsGoodAsLiteral(t *testing.T) {
	// On average across seeds, the fractional (lower-variance) update
	// should not lose to the literal Bernoulli trial.
	fx := newFixture(61, 5, 25, 10)
	run := func(literal bool) float64 {
		var sum float64
		for seed := uint64(1); seed <= 5; seed++ {
			cfg := DefaultTMergeConfig(seed)
			cfg.TauMax = 2500
			cfg.LiteralBernoulli = literal
			cfg.LiteralRanking = literal
			sel := NewTMerge(cfg).Select(fx.ps, newFixtureOracle(7), 0.05)
			sum += recallOf(sel, fx.truth)
		}
		return sum / 5
	}
	frac, lit := run(false), run(true)
	if frac < lit-0.1 {
		t.Errorf("fractional recall %v well below literal %v", frac, lit)
	}
}

func TestTMergeGaussianPosteriorVariant(t *testing.T) {
	fx := newFixture(62, 4, 16, 8)
	cfg := DefaultTMergeConfig(7)
	cfg.TauMax = 3000
	cfg.GaussianPosterior = true
	tm := NewTMerge(cfg)
	if tm.Name() != "TMerge-G" {
		t.Errorf("name = %s", tm.Name())
	}
	sel := tm.Select(fx.ps, newFixtureOracle(7), 0.05)
	if got := recallOf(sel, fx.truth); got < 0.5 {
		t.Errorf("Gaussian variant recall = %v", got)
	}
	cfg.Batch = 10
	if NewTMerge(cfg).Name() != "TMerge-G-B" {
		t.Error("batched Gaussian name wrong")
	}
}

func TestTMergePosteriorWeightDefaults(t *testing.T) {
	cfg := DefaultTMergeConfig(1)
	cfg.PosteriorWeight = 0 // must default
	tm := NewTMerge(cfg)
	if tm.Config().PosteriorWeight != 3 {
		t.Errorf("defaulted weight = %v", tm.Config().PosteriorWeight)
	}
	cfg.PosteriorWeight = 1.5
	if NewTMerge(cfg).Config().PosteriorWeight != 1.5 {
		t.Error("explicit weight overridden")
	}
}

func TestObserveWeighted(t *testing.T) {
	b := stats.NewBeta(1, 1)
	b = b.ObserveWeighted(0.25, 2)
	if b.S != 1.5 || b.F != 2.5 {
		t.Errorf("posterior = %+v", b)
	}
	// Clamping.
	b = stats.NewBeta(1, 1).ObserveWeighted(1.7, 1)
	if b.S != 2 || b.F != 1 {
		t.Errorf("clamped posterior = %+v", b)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on non-positive weight")
		}
	}()
	stats.NewBeta(1, 1).ObserveWeighted(0.5, 0)
}

func TestShrunkMeanMatchesPrior(t *testing.T) {
	s := &pairState{priorMean: 0.5, priorWeight: 2}
	if got := s.shrunkMean(); got != 0.5 {
		t.Errorf("no-observation shrunk mean = %v", got)
	}
	s.count = 2
	s.sum = 0.2 // two observations of 0.1
	want := (0.5*2 + 0.2) / 4
	if got := s.shrunkMean(); got != want {
		t.Errorf("shrunk mean = %v, want %v", got, want)
	}
}

func TestTMergeStopWhenSettled(t *testing.T) {
	// With K=1 every pair is trivially "in" after one sample, so the
	// early stop must fire long before TauMax.
	fx := newFixture(63, 2, 6, 5)
	cfg := DefaultTMergeConfig(3)
	cfg.TauMax = 100000
	cfg.StopWhenSettled = true
	tm := NewTMerge(cfg)
	oracle := newFixtureOracle(7)
	sel := tm.Select(fx.ps, oracle, 1.0)
	if len(sel) != fx.ps.Len() {
		t.Fatalf("selection size = %d", len(sel))
	}
	if d := tm.Diagnostics(); d.Iterations >= 100000 {
		t.Errorf("early stop did not fire: %d iterations", d.Iterations)
	}
	if got := oracle.Stats().Distances; got >= 100000 {
		t.Errorf("oracle did %d distances", got)
	}
}
