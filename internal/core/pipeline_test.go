package core

import (
	"testing"

	"github.com/tmerge/tmerge/internal/motmetrics"
	"github.com/tmerge/tmerge/internal/synth"
	"github.com/tmerge/tmerge/internal/track"
	"github.com/tmerge/tmerge/internal/video"
)

func pipelineScene(t *testing.T) (*synth.Video, *video.TrackSet) {
	t.Helper()
	cfg := synth.Config{
		Seed: 77, Name: "pipe", NumFrames: 600, Width: 900, Height: 700,
		ArrivalRate: 0.04, MaxObjects: 8, MinSpan: 60, MaxSpan: 250,
		SpeedMin: 0.5, SpeedMax: 2, SizeMin: 60, SizeMax: 100,
		AppearanceDim: testDim, AppearanceNoise: 0.07, PosAppearanceWeight: 0.3,
		OcclusionCoverage: 0.45, MissProb: 0.02,
		GlareRate: 0.012, GlareDuration: 40, GlareSize: 250,
	}
	v, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return v, track.Tracktor().Track(v.Detections)
}

func TestRunPipelineSingleWindow(t *testing.T) {
	v, ts := pipelineScene(t)
	oracle := newFixtureOracle(7)
	res := RunPipeline(ts, v.NumFrames, oracle, PipelineConfig{
		WindowLen: 0,
		K:         0.05,
		Algorithm: NewTMerge(DefaultTMergeConfig(3)),
	})
	if len(res.Windows) != 1 {
		t.Fatalf("got %d windows, want 1", len(res.Windows))
	}
	if res.FramesProcessed != v.NumFrames {
		t.Errorf("frames = %d", res.FramesProcessed)
	}
	if res.Virtual <= 0 {
		t.Error("virtual time must be positive")
	}
	if res.FPS() <= 0 {
		t.Error("FPS must be positive")
	}
	if res.Stats.Distances == 0 || res.Stats.Extractions == 0 {
		t.Errorf("stats = %+v", res.Stats)
	}
	if res.Merged == nil || res.Merged.Len() == 0 {
		t.Fatal("no merged track set")
	}
	// Merging only reduces (or keeps) the track count.
	if res.Merged.Len() > ts.Len() {
		t.Errorf("merged %d > original %d", res.Merged.Len(), ts.Len())
	}
	// Every window recall within [0, 1].
	for _, w := range res.Windows {
		if w.Recall < 0 || w.Recall > 1 {
			t.Errorf("recall = %v", w.Recall)
		}
	}
}

func TestRunPipelineWindowed(t *testing.T) {
	v, ts := pipelineScene(t)
	oracle := newFixtureOracle(7)
	res := RunPipeline(ts, v.NumFrames, oracle, PipelineConfig{
		WindowLen: 200,
		K:         0.05,
		Algorithm: NewBaseline(),
	})
	if len(res.Windows) != len(video.Partition(v.NumFrames, 200)) {
		t.Errorf("window count = %d", len(res.Windows))
	}
	// Window reports carry the pair universe sizes.
	totalPairs := 0
	for _, w := range res.Windows {
		totalPairs += w.Pairs
	}
	if totalPairs == 0 {
		t.Error("no pairs enumerated")
	}
}

func TestRunPipelineVerifiedMergeNeverHurtsIdentity(t *testing.T) {
	v, ts := pipelineScene(t)
	oracle := newFixtureOracle(7)
	res := RunPipeline(ts, v.NumFrames, oracle, PipelineConfig{
		WindowLen: 0,
		K:         0.05,
		Algorithm: NewTMerge(DefaultTMergeConfig(3)),
		Verify:    true,
	})
	before := motmetrics.Identity(v.GT, ts)
	after := motmetrics.Identity(v.GT, res.Merged)
	if after.IDF1 < before.IDF1-1e-9 {
		t.Errorf("verified merge reduced IDF1: %v -> %v", before.IDF1, after.IDF1)
	}
}

func TestRunPipelineUnverifiedMergesEverythingSelected(t *testing.T) {
	v, ts := pipelineScene(t)
	oracle := newFixtureOracle(7)
	res := RunPipeline(ts, v.NumFrames, oracle, PipelineConfig{
		WindowLen: 0,
		K:         0.05,
		Algorithm: NewTMerge(DefaultTMergeConfig(3)),
		Verify:    false,
	})
	// Unverified merging collapses at least as many tracks as there were
	// selected pairs' distinct groups; the merged count must drop by at
	// least the verified amount.
	sel := 0
	for _, w := range res.Windows {
		sel += len(w.Selected)
	}
	if sel == 0 {
		t.Fatal("nothing selected")
	}
	if res.Merged.Len() >= ts.Len() {
		t.Errorf("unverified merge did not reduce track count: %d -> %d", ts.Len(), res.Merged.Len())
	}
}

func TestPipelineRECMatchesWindowAverage(t *testing.T) {
	v, ts := pipelineScene(t)
	oracle := newFixtureOracle(7)
	res := RunPipeline(ts, v.NumFrames, oracle, PipelineConfig{
		WindowLen: 200,
		K:         0.1,
		Algorithm: NewBaseline(),
	})
	var sum float64
	n := 0
	for _, w := range res.Windows {
		if w.Truth > 0 {
			sum += w.Recall
			n++
		}
	}
	want := 1.0
	if n > 0 {
		want = sum / float64(n)
	}
	if res.REC != want {
		t.Errorf("REC = %v, want %v", res.REC, want)
	}
}
