package core

import (
	"testing"

	"github.com/tmerge/tmerge/internal/geom"
	"github.com/tmerge/tmerge/internal/reid"
	"github.com/tmerge/tmerge/internal/video"
	"github.com/tmerge/tmerge/internal/xrand"
)

// maxSpeculateAllocsPerWindow caps the steady-state allocation count of
// one window's speculative selection (session setup, one TMerge clone,
// the full bandit run, and the submission log) on the fixture below.
// The cap carries ~3x headroom over the measured count; its job is to
// catch the kind of regression that reintroduces per-iteration garbage
// — which multiplies the figure a hundredfold — not to pin the exact
// value.
const maxSpeculateAllocsPerWindow = 4000

func speculateAllocFixture() (*fixture, *reid.Oracle, *reid.FeatureStore, Algorithm) {
	fx := newFixture(7, 6, 4, 8)
	oracle := newFixtureOracle(7)
	store := reid.NewFeatureStore()
	cfg := DefaultTMergeConfig(7)
	cfg.TauMax = 500
	return fx, oracle, store, NewTMerge(cfg)
}

// TestSpeculateSelectionAllocs pins the per-window allocation count of
// the speculate path — the quantity that governs how well the parallel
// executor scales, since allocation is the one resource the otherwise
// independent workers still share (via the GC).
func TestSpeculateSelectionAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("testing.AllocsPerRun is unreliable under the race detector")
	}
	fx, oracle, store, algo := speculateAllocFixture()
	// Warm: fills the feature store, so steady-state windows re-embed
	// nothing (like overlapping windows of one pass), and grows the
	// pooled plan scratch.
	SpeculateSelection(algo, fx.ps, oracle, store, 0.2)
	got := testing.AllocsPerRun(10, func() {
		SpeculateSelection(algo, fx.ps, oracle, store, 0.2)
	})
	if got > maxSpeculateAllocsPerWindow {
		t.Errorf("speculative window selection: %v allocs, cap %v", got, maxSpeculateAllocsPerWindow)
	}
	t.Logf("speculative window selection: %v allocs/window (cap %v)", got, maxSpeculateAllocsPerWindow)
}

// maxApplyAllocsPerGroup caps Merger.Apply's allocation count per
// output track. The rewrite inherently allocates its output — one
// track, one box slice, and the TrackSet bookkeeping per group, plus a
// handful of sort.Slice closures — but the grouping maps and the
// frame-sort buffer are merger-owned scratch, so the figure must stay
// a small constant per group instead of growing with repeat calls or
// with boxes. Measured ~11/group; the cap carries ~3x headroom, like
// the speculate pin, to catch garbage-per-box regressions rather than
// pin the exact figure.
const maxApplyAllocsPerGroup = 32

// TestMergerApplyAllocs pins the steady-state allocation count of the
// union rewrite — the path every MergedTracks snapshot and batch answer
// goes through.
func TestMergerApplyAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("testing.AllocsPerRun is unreliable under the race detector")
	}
	const groups, frags, boxes = 30, 3, 6
	var tracks []*video.Track
	id := video.TrackID(0)
	bid := video.BBoxID(0)
	for g := 0; g < groups; g++ {
		for k := 0; k < frags; k++ {
			tr := &video.Track{ID: id}
			// Fragments overlap in time so the frame dedup actually runs.
			start := g*40 + k*(boxes-2)
			for f := 0; f < boxes; f++ {
				tr.Boxes = append(tr.Boxes, video.BBox{
					ID:    bid,
					Frame: video.FrameIndex(start + f),
					Rect:  geom.Rect{X: float64(f), Y: float64(g), W: 4, H: 4},
				})
				bid++
			}
			tracks = append(tracks, tr)
			id++
		}
	}
	m := NewMerger()
	for g := 0; g < groups; g++ {
		base := video.TrackID(g * frags)
		m.Merge(video.MakePairKey(base, base+1))
		m.Merge(video.MakePairKey(base, base+2))
	}
	ts := video.NewTrackSet(tracks)
	m.Apply(ts) // warm the scratch
	got := testing.AllocsPerRun(20, func() { m.Apply(ts) })
	if cap := float64(groups * maxApplyAllocsPerGroup); got > cap {
		t.Errorf("Merger.Apply: %v allocs for %d groups, cap %v", got, groups, cap)
	}
	t.Logf("Merger.Apply: %v allocs for %d groups (cap %d/group)", got, groups, maxApplyAllocsPerGroup)
}

// TestIndexSamplerNextAllocs pins the bandit draw path at zero: a
// sampler reinitialised in place and drawn from within its inline
// displacement capacity — the shape of virtually every sampler the
// selection loops create — must not allocate at all.
func TestIndexSamplerNextAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("testing.AllocsPerRun is unreliable under the race detector")
	}
	rng := xrand.New(11)
	var s indexSampler
	got := testing.AllocsPerRun(100, func() {
		s.init(512, rng)
		for i := 0; i < samplerInline-1; i++ {
			s.Next()
		}
	})
	if got != 0 {
		t.Errorf("indexSampler init+%d draws: %v allocs, want 0", samplerInline-1, got)
	}
}

func BenchmarkSpeculateSelection(b *testing.B) {
	fx, oracle, store, algo := speculateAllocFixture()
	SpeculateSelection(algo, fx.ps, oracle, store, 0.2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SpeculateSelection(algo, fx.ps, oracle, store, 0.2)
	}
}
