package core

import (
	"testing"

	"github.com/tmerge/tmerge/internal/reid"
)

// maxSpeculateAllocsPerWindow caps the steady-state allocation count of
// one window's speculative selection (session setup, one TMerge clone,
// the full bandit run, and the submission log) on the fixture below.
// The cap carries ~3x headroom over the measured count; its job is to
// catch the kind of regression that reintroduces per-iteration garbage
// — which multiplies the figure a hundredfold — not to pin the exact
// value.
const maxSpeculateAllocsPerWindow = 4000

func speculateAllocFixture() (*fixture, *reid.Oracle, *reid.FeatureStore, Algorithm) {
	fx := newFixture(7, 6, 4, 8)
	oracle := newFixtureOracle(7)
	store := reid.NewFeatureStore()
	cfg := DefaultTMergeConfig(7)
	cfg.TauMax = 500
	return fx, oracle, store, NewTMerge(cfg)
}

// TestSpeculateSelectionAllocs pins the per-window allocation count of
// the speculate path — the quantity that governs how well the parallel
// executor scales, since allocation is the one resource the otherwise
// independent workers still share (via the GC).
func TestSpeculateSelectionAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("testing.AllocsPerRun is unreliable under the race detector")
	}
	fx, oracle, store, algo := speculateAllocFixture()
	// Warm: fills the feature store, so steady-state windows re-embed
	// nothing (like overlapping windows of one pass), and grows the
	// pooled plan scratch.
	SpeculateSelection(algo, fx.ps, oracle, store, 0.2)
	got := testing.AllocsPerRun(10, func() {
		SpeculateSelection(algo, fx.ps, oracle, store, 0.2)
	})
	if got > maxSpeculateAllocsPerWindow {
		t.Errorf("speculative window selection: %v allocs, cap %v", got, maxSpeculateAllocsPerWindow)
	}
	t.Logf("speculative window selection: %v allocs/window (cap %v)", got, maxSpeculateAllocsPerWindow)
}

func BenchmarkSpeculateSelection(b *testing.B) {
	fx, oracle, store, algo := speculateAllocFixture()
	SpeculateSelection(algo, fx.ps, oracle, store, 0.2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SpeculateSelection(algo, fx.ps, oracle, store, 0.2)
	}
}
