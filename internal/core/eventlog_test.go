package core

import (
	"bytes"
	"strings"
	"testing"

	"github.com/tmerge/tmerge/internal/video"
	"github.com/tmerge/tmerge/internal/xrand"
)

func TestMergerEventLogRecordsEffectiveUnions(t *testing.T) {
	m := NewMerger()
	m.Merge(video.MakePairKey(5, 9)) // union {5,9}, canon 5
	m.Merge(video.MakePairKey(9, 5)) // no-op: same group
	m.Merge(video.MakePairKey(9, 2)) // union {2,5,9}, canon 2
	m.Merge(video.MakePairKey(2, 5)) // no-op

	events := m.Events()
	if len(events) != 2 {
		t.Fatalf("logged %d events, want 2 (no-ops must not log)", len(events))
	}
	want := []MergeEvent{
		{Seq: 0, Pair: video.MakePairKey(5, 9), FromA: 5, FromB: 9, Canon: 5},
		{Seq: 1, Pair: video.MakePairKey(2, 9), FromA: 2, FromB: 5, Canon: 2},
	}
	for i, ev := range events {
		if ev != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, ev, want[i])
		}
		if err := ev.Validate(); err != nil {
			t.Errorf("event %d invalid: %v", i, err)
		}
	}
	if m.EventCount() != 2 {
		t.Errorf("EventCount = %d", m.EventCount())
	}
	if got := m.EventsSince(1); len(got) != 1 || got[0].Seq != 1 {
		t.Errorf("EventsSince(1) = %+v", got)
	}
}

func TestMergerEventsUnorderedPairNormalised(t *testing.T) {
	m := NewMerger()
	m.Merge(video.PairKey{A: 9, B: 7}) // raw unordered pair
	ev := m.Events()[0]
	if ev.Pair.A != 7 || ev.Pair.B != 9 {
		t.Errorf("logged pair (%d, %d), want canonical (7, 9)", ev.Pair.A, ev.Pair.B)
	}
	if err := ev.Validate(); err != nil {
		t.Error(err)
	}
}

func TestEventsSincePanicsOutsideRange(t *testing.T) {
	m := NewMerger()
	m.Merge(video.MakePairKey(1, 2))
	for _, n := range []int{-1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("EventsSince(%d) did not panic", n)
				}
			}()
			m.EventsSince(n)
		}()
	}
}

// TestReplayEventsReproducesIdentityMap drives a randomized merge
// sequence and checks that replaying the event log alone reconstructs
// the same canonical mapping and groups.
func TestReplayEventsReproducesIdentityMap(t *testing.T) {
	rng := xrand.New(11)
	m := NewMerger()
	const n = 60
	for i := 0; i < 300; i++ {
		a := video.TrackID(rng.Intn(n))
		b := video.TrackID(rng.Intn(n))
		if a == b {
			continue
		}
		m.Merge(video.MakePairKey(a, b))
	}

	r, err := ReplayEvents(m.Events())
	if err != nil {
		t.Fatal(err)
	}
	for id := video.TrackID(0); id < n; id++ {
		if got, want := r.Canonical(id), m.Canonical(id); got != want {
			t.Fatalf("replayed Canonical(%d) = %d, want %d", id, got, want)
		}
	}
	ga, gb := m.Groups(), r.Groups()
	if len(ga) != len(gb) {
		t.Fatalf("replayed %d groups, want %d", len(gb), len(ga))
	}
}

func TestReplayEventsRejectsInconsistentLogs(t *testing.T) {
	m := NewMerger()
	m.Merge(video.MakePairKey(1, 2))
	m.Merge(video.MakePairKey(3, 4))
	good := append([]MergeEvent(nil), m.Events()...)

	cases := map[string][]MergeEvent{
		"gap in seq": {good[0], {Seq: 5, Pair: video.MakePairKey(3, 4), FromA: 3, FromB: 4, Canon: 3}},
		"redundant union": {good[0],
			{Seq: 1, Pair: video.MakePairKey(1, 2), FromA: 1, FromB: 2, Canon: 1}},
		"wrong source canonical": {good[0],
			{Seq: 1, Pair: video.MakePairKey(2, 4), FromA: 2, FromB: 4, Canon: 2}},
		"unordered pair": {{Seq: 0, Pair: video.PairKey{A: 2, B: 1}, FromA: 2, FromB: 1, Canon: 1}},
		"self union":     {{Seq: 0, Pair: video.MakePairKey(1, 2), FromA: 1, FromB: 1, Canon: 1}},
		"canon not min":  {{Seq: 0, Pair: video.MakePairKey(1, 2), FromA: 1, FromB: 2, Canon: 2}},
		"source above member": {
			{Seq: 0, Pair: video.MakePairKey(1, 2), FromA: 3, FromB: 2, Canon: 2}},
	}
	for name, events := range cases {
		if _, err := ReplayEvents(events); err == nil {
			t.Errorf("%s: ReplayEvents accepted an inconsistent log", name)
		}
	}
}

func TestMergerStateCarriesEventLog(t *testing.T) {
	m := NewMerger()
	m.Merge(video.MakePairKey(4, 8))
	m.Merge(video.MakePairKey(8, 1))

	st := m.State()
	if len(st.Events) != 2 {
		t.Fatalf("state carries %d events, want 2", len(st.Events))
	}
	r, err := RestoreMerger(st)
	if err != nil {
		t.Fatal(err)
	}
	if r.EventCount() != 2 {
		t.Fatalf("restored EventCount = %d", r.EventCount())
	}
	// The restored merger continues the log at the right sequence number.
	r.Merge(video.MakePairKey(1, 3))
	if ev := r.Events()[2]; ev.Seq != 2 || ev.Canon != 1 {
		t.Errorf("continued event = %+v", ev)
	}

	// A tampered event log is rejected.
	bad := m.State()
	bad.Events[1].Seq = 7
	if _, err := RestoreMerger(bad); err == nil {
		t.Error("RestoreMerger accepted a non-contiguous event log")
	}
}

func TestEventLogRoundTrip(t *testing.T) {
	m := NewMerger()
	rng := xrand.New(3)
	for i := 0; i < 40; i++ {
		a := video.TrackID(rng.Intn(20))
		b := video.TrackID(rng.Intn(20))
		if a != b {
			m.Merge(video.MakePairKey(a, b))
		}
	}
	var buf bytes.Buffer
	if err := WriteEventLog(&buf, m.Events()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEventLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != m.EventCount() {
		t.Fatalf("decoded %d events, want %d", len(got), m.EventCount())
	}
	for i, ev := range got {
		if ev != m.Events()[i] {
			t.Errorf("event %d = %+v, want %+v", i, ev, m.Events()[i])
		}
	}
	if _, err := ReplayEvents(got); err != nil {
		t.Errorf("decoded log does not replay: %v", err)
	}
}

func TestReadEventLogRejectsHostileInput(t *testing.T) {
	cases := map[string]string{
		"not json":         "hello\n",
		"unknown field":    `{"seq":0,"pair":{"a":1,"b":2},"from_a":1,"from_b":2,"canon":1,"extra":true}` + "\n",
		"invalid event":    `{"seq":0,"pair":{"a":2,"b":1},"from_a":2,"from_b":1,"canon":1}` + "\n",
		"seq gap":          `{"seq":0,"pair":{"a":1,"b":2},"from_a":1,"from_b":2,"canon":1}` + "\n" + `{"seq":2,"pair":{"a":3,"b":4},"from_a":3,"from_b":4,"canon":3}` + "\n",
		"trailing garbage": `{"seq":0,"pair":{"a":1,"b":2},"from_a":1,"from_b":2,"canon":1} garbage` + "\n",
	}
	for name, input := range cases {
		if _, err := ReadEventLog(strings.NewReader(input)); err == nil {
			t.Errorf("%s: ReadEventLog accepted %q", name, input)
		}
	}
	// Blank lines are tolerated.
	ok := "\n" + `{"seq":0,"pair":{"a":1,"b":2},"from_a":1,"from_b":2,"canon":1}` + "\n\n"
	events, err := ReadEventLog(strings.NewReader(ok))
	if err != nil || len(events) != 1 {
		t.Errorf("blank-line log: events=%v err=%v", events, err)
	}
}

// FuzzEventLog hammers the NDJSON decoder with arbitrary bytes: it must
// never panic, and anything it accepts must be internally valid and
// re-encode to an equivalent log.
func FuzzEventLog(f *testing.F) {
	m := NewMerger()
	m.Merge(video.MakePairKey(1, 2))
	m.Merge(video.MakePairKey(2, 3))
	var buf bytes.Buffer
	if err := WriteEventLog(&buf, m.Events()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("")
	f.Add(`{"seq":0,"pair":{"a":1,"b":2},"from_a":1,"from_b":2,"canon":1}`)
	f.Add(`{"seq":-1}`)
	f.Add("\x00\x01\x02")

	f.Fuzz(func(t *testing.T, input string) {
		events, err := ReadEventLog(strings.NewReader(input))
		if err != nil {
			return
		}
		for i, ev := range events {
			if verr := ev.Validate(); verr != nil {
				t.Fatalf("accepted invalid event %d: %v", i, verr)
			}
			if i > 0 && ev.Seq != events[i-1].Seq+1 {
				t.Fatalf("accepted non-contiguous log at %d", i)
			}
		}
		var out bytes.Buffer
		if err := WriteEventLog(&out, events); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := ReadEventLog(&out)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(back) != len(events) {
			t.Fatalf("round trip changed length: %d != %d", len(back), len(events))
		}
		for i := range back {
			if back[i] != events[i] {
				t.Fatalf("round trip changed event %d", i)
			}
		}
	})
}
