package core

import (
	"testing"
	"testing/quick"

	"github.com/tmerge/tmerge/internal/geom"
	"github.com/tmerge/tmerge/internal/video"
	"github.com/tmerge/tmerge/internal/xrand"
)

func simpleTrack(id video.TrackID, frames ...video.FrameIndex) *video.Track {
	t := &video.Track{ID: id}
	for i, f := range frames {
		t.Boxes = append(t.Boxes, video.BBox{
			ID:    video.BBoxID(int(id)*1000 + i),
			Frame: f,
			Rect:  geom.Rect{X: float64(f), W: 5, H: 5},
		})
	}
	return t
}

func TestMergerCanonicalSmallest(t *testing.T) {
	m := NewMerger()
	m.Merge(video.MakePairKey(5, 9))
	m.Merge(video.MakePairKey(9, 2))
	for _, id := range []video.TrackID{2, 5, 9} {
		if got := m.Canonical(id); got != 2 {
			t.Errorf("Canonical(%d) = %d, want 2", id, got)
		}
	}
	if got := m.Canonical(100); got != 100 {
		t.Errorf("unmerged Canonical = %d", got)
	}
}

func TestMergerTransitivity(t *testing.T) {
	m := NewMerger()
	m.MergeAll([]video.PairKey{
		video.MakePairKey(1, 2),
		video.MakePairKey(3, 4),
		video.MakePairKey(2, 3), // joins both groups
	})
	groups := m.Groups()
	if len(groups) != 1 {
		t.Fatalf("got %d groups, want 1", len(groups))
	}
	if len(groups[0]) != 4 {
		t.Errorf("group = %v", groups[0])
	}
}

func TestMergerGroupsDeterministic(t *testing.T) {
	build := func(order []video.PairKey) [][]video.TrackID {
		m := NewMerger()
		m.MergeAll(order)
		return m.Groups()
	}
	a := build([]video.PairKey{video.MakePairKey(1, 2), video.MakePairKey(7, 9)})
	b := build([]video.PairKey{video.MakePairKey(9, 7), video.MakePairKey(2, 1)})
	if len(a) != len(b) {
		t.Fatal("group counts differ")
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatal("group sizes differ")
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Errorf("groups differ: %v vs %v", a, b)
			}
		}
	}
}

func TestMergerApply(t *testing.T) {
	t1 := simpleTrack(1, 0, 1, 2)
	t2 := simpleTrack(2, 10, 11)
	t3 := simpleTrack(3, 5, 6)
	ts := video.NewTrackSet([]*video.Track{t1, t2, t3})
	m := NewMerger()
	m.Merge(video.MakePairKey(1, 2))
	merged := m.Apply(ts)
	if merged.Len() != 2 {
		t.Fatalf("merged set has %d tracks, want 2", merged.Len())
	}
	u := merged.Get(1)
	if u == nil {
		t.Fatal("canonical track 1 missing")
	}
	if u.Len() != 5 {
		t.Errorf("merged track has %d boxes, want 5", u.Len())
	}
	if err := u.Validate(); err != nil {
		t.Errorf("merged track invalid: %v", err)
	}
	if merged.Get(3) == nil {
		t.Error("untouched track 3 missing")
	}
	if merged.Get(2) != nil {
		t.Error("absorbed track 2 must disappear")
	}
}

func TestMergerApplyOverlappingFrames(t *testing.T) {
	// Fragments that claim the same frame: lower ID wins, output stays
	// strictly increasing.
	t1 := simpleTrack(1, 0, 1, 2)
	t2 := simpleTrack(2, 2, 3)
	ts := video.NewTrackSet([]*video.Track{t1, t2})
	m := NewMerger()
	m.Merge(video.MakePairKey(1, 2))
	merged := m.Apply(ts)
	u := merged.Get(1)
	if u.Len() != 4 {
		t.Fatalf("merged track has %d boxes, want 4", u.Len())
	}
	if err := u.Validate(); err != nil {
		t.Error(err)
	}
	// Frame 2 kept from track 1 (ID 1002 pattern).
	for _, b := range u.Boxes {
		if b.Frame == 2 && b.ID != 1002 {
			t.Errorf("frame-2 box came from the wrong fragment: %d", b.ID)
		}
	}
}

func TestMergerApplyIdentityWhenEmpty(t *testing.T) {
	ts := video.NewTrackSet([]*video.Track{simpleTrack(1, 0), simpleTrack(2, 5)})
	merged := NewMerger().Apply(ts)
	if merged.Len() != 2 {
		t.Errorf("identity apply changed track count: %d", merged.Len())
	}
}

// Property: union-find invariants — Canonical is idempotent, and two IDs
// merged (directly or transitively) share a canonical ID.
func TestMergerProperties(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		m := NewMerger()
		n := 2 + int(seed%20)
		type edge struct{ a, b video.TrackID }
		var edges []edge
		for i := 0; i < n; i++ {
			a := video.TrackID(r.Intn(30))
			b := video.TrackID(r.Intn(30))
			if a == b {
				continue
			}
			m.Merge(video.MakePairKey(a, b))
			edges = append(edges, edge{a, b})
		}
		for _, e := range edges {
			ca, cb := m.Canonical(e.a), m.Canonical(e.b)
			if ca != cb {
				return false
			}
			if m.Canonical(ca) != ca {
				return false
			}
			// Canonical is the minimum of its group, so never larger.
			if ca > e.a || ca > e.b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
