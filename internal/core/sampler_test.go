package core

import (
	"testing"
	"testing/quick"

	"github.com/tmerge/tmerge/internal/xrand"
)

func TestIndexSamplerCoversDomainExactlyOnce(t *testing.T) {
	f := func(seed uint64) bool {
		n := int(seed % 200)
		s := newIndexSampler(n, xrand.New(seed))
		seen := make([]bool, n)
		for i := 0; i < n; i++ {
			if s.Exhausted() {
				return false
			}
			v := s.Next()
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
			if s.Remaining() != n-i-1 {
				return false
			}
		}
		return s.Exhausted()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestIndexSamplerExhaustionPanics(t *testing.T) {
	s := newIndexSampler(1, xrand.New(1))
	s.Next()
	defer func() {
		if recover() == nil {
			t.Error("expected panic after exhaustion")
		}
	}()
	s.Next()
}

func TestIndexSamplerZeroDomain(t *testing.T) {
	s := newIndexSampler(0, xrand.New(1))
	if !s.Exhausted() || s.Remaining() != 0 {
		t.Error("zero-domain sampler must start exhausted")
	}
}

func TestIndexSamplerNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	newIndexSampler(-1, xrand.New(1))
}

func TestIndexSamplerDeterminism(t *testing.T) {
	draw := func() []int {
		s := newIndexSampler(50, xrand.New(9))
		var out []int
		for i := 0; i < 20; i++ {
			out = append(out, s.Next())
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sampler must be deterministic for the same seed")
		}
	}
}

func TestIndexSamplerUniformFirstDraw(t *testing.T) {
	// The first draw should be roughly uniform over the domain.
	const n = 10
	counts := make([]int, n)
	for seed := uint64(0); seed < 5000; seed++ {
		s := newIndexSampler(n, xrand.New(seed*2654435761+17))
		counts[s.Next()]++
	}
	for v, c := range counts {
		if c < 350 || c > 650 {
			t.Errorf("value %d drawn %d times of 5000 (expected ~500)", v, c)
		}
	}
}
