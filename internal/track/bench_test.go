package track

import (
	"testing"

	"github.com/tmerge/tmerge/internal/xrand"
)

func BenchmarkKalmanPredictUpdate(b *testing.B) {
	kf := newBoxKF(100, 100, 40, 80)
	for i := 0; i < b.N; i++ {
		kf.predict()
		kf.update(float64(100+i%5), float64(100-i%3), 40, 80)
	}
}

func BenchmarkHungarian16(b *testing.B) {
	r := xrand.New(5)
	const n = 16
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			cost[i][j] = r.Float64()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Hungarian(cost)
	}
}
