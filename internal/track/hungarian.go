// Package track implements the multi-object tracking substrate: Hungarian
// assignment, constant-velocity Kalman filtering, and three trackers in
// the SORT family standing in for the paper's SORT, DeepSORT, and Tracktor
// (see DESIGN.md §2). Occlusion and glare gaps produced by the simulator
// genuinely fragment these trackers' outputs, producing the polyonymous
// tracks the merging algorithms must find.
package track

import (
	"fmt"
	"math"
)

// Hungarian solves the rectangular linear assignment problem, minimising
// total cost. cost[i][j] is the cost of assigning row i to column j; +Inf
// forbids an assignment. It returns, for each row, the assigned column or
// -1. The implementation is the O(n²m) Jonker–Volgenant-style shortest
// augmenting path algorithm with potentials.
func Hungarian(cost [][]float64) []int {
	n := len(cost)
	if n == 0 {
		return nil
	}
	m := len(cost[0])
	for i, row := range cost {
		if len(row) != m {
			panic(fmt.Sprintf("track: ragged cost matrix at row %d", i))
		}
	}
	// The algorithm needs rows <= cols; transpose if necessary.
	if n > m {
		t := make([][]float64, m)
		for j := 0; j < m; j++ {
			t[j] = make([]float64, n)
			for i := 0; i < n; i++ {
				t[j][i] = cost[i][j]
			}
		}
		colOfRow := Hungarian(t) // assignment of transposed rows (= columns)
		out := make([]int, n)
		for i := range out {
			out[i] = -1
		}
		for j, i := range colOfRow {
			if i >= 0 {
				out[i] = j
			}
		}
		return out
	}

	const inf = math.MaxFloat64
	u := make([]float64, n+1)
	v := make([]float64, m+1)
	p := make([]int, m+1) // p[j] = row assigned to column j (1-based), 0 = none
	way := make([]int, m+1)

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, m+1)
		used := make([]bool, m+1)
		for j := range minv {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := -1
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				c := cost[i0-1][j-1]
				var cur float64
				if math.IsInf(c, 1) {
					cur = inf
				} else {
					cur = c - u[i0] - v[j]
				}
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			if j1 < 0 || math.IsInf(delta, 1) {
				// No augmenting path within finite costs: the row stays
				// unassigned. Undo the partial assignment from this phase.
				p[0] = 0
				break
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else if !math.IsInf(minv[j], 1) {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				// Augment along the alternating path.
				for j0 != 0 {
					j1 := way[j0]
					p[j0] = p[j1]
					j0 = j1
				}
				break
			}
		}
	}

	out := make([]int, n)
	for i := range out {
		out[i] = -1
	}
	for j := 1; j <= m; j++ {
		if p[j] > 0 && !math.IsInf(cost[p[j]-1][j-1], 1) {
			out[p[j]-1] = j - 1
		}
	}
	return out
}
