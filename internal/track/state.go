package track

import (
	"fmt"

	"github.com/tmerge/tmerge/internal/vecmath"
	"github.com/tmerge/tmerge/internal/video"
)

// The types below are the serialisable mirror of a Stream's full mutable
// state — every hypothesis with its Kalman filter, appearance EMA, box
// history, and age counters, plus the stream cursors. A Stream restored
// from its State and stepped over the same subsequent frames produces
// bit-identical snapshots and track sets to the uninterrupted stream,
// which the checkpoint layer's replay-equivalence guarantee rests on.

// KFState is the full state of one scalar Kalman filter.
type KFState struct {
	X   float64 `json:"x"`
	V   float64 `json:"v"`
	Pxx float64 `json:"pxx"`
	Pxv float64 `json:"pxv"`
	Pvv float64 `json:"pvv"`
	Q   float64 `json:"q"`
	R   float64 `json:"r"`
}

// BoxKFState is the state of the four per-dimension filters of a box.
type BoxKFState struct {
	CX KFState `json:"cx"`
	CY KFState `json:"cy"`
	W  KFState `json:"w"`
	H  KFState `json:"h"`
}

// HypothesisState is the serialisable form of one track hypothesis,
// active or finished.
type HypothesisState struct {
	ID         video.TrackID `json:"id"`
	KF         BoxKFState    `json:"kf"`
	Appearance []float64     `json:"appearance,omitempty"`
	Boxes      []video.BBox  `json:"boxes"`
	Misses     int           `json:"misses"`
	Hits       int           `json:"hits"`
}

// StreamState is the serialisable form of an online tracking session. The
// engine configuration is echoed so a restore against a differently
// configured engine fails loudly instead of silently diverging.
type StreamState struct {
	Config   Config            `json:"config"`
	Active   []HypothesisState `json:"active,omitempty"`
	Finished []HypothesisState `json:"finished,omitempty"`
	NextID   video.TrackID     `json:"next_id"`
	LastStep video.FrameIndex  `json:"last_step"`
	Started  bool              `json:"started"`
}

func kfState(k scalarKF) KFState {
	return KFState{X: k.x, V: k.v, Pxx: k.pxx, Pxv: k.pxv, Pvv: k.pvv, Q: k.q, R: k.r}
}

func kfFromState(st KFState) scalarKF {
	return scalarKF{x: st.X, v: st.V, pxx: st.Pxx, pxv: st.Pxv, pvv: st.Pvv, q: st.Q, r: st.R}
}

func hypState(h *hypothesis) HypothesisState {
	st := HypothesisState{
		ID: h.id,
		KF: BoxKFState{
			CX: kfState(h.kf.cx), CY: kfState(h.kf.cy),
			W: kfState(h.kf.w), H: kfState(h.kf.h),
		},
		Misses: h.misses,
		Hits:   h.hits,
	}
	// Copy the box history: the live slice keeps growing after the
	// snapshot is taken and must not alias the serialised view.
	st.Boxes = append([]video.BBox(nil), h.boxes...)
	if h.appearance != nil {
		st.Appearance = append([]float64(nil), h.appearance...)
	}
	return st
}

func hypFromState(st HypothesisState) (*hypothesis, error) {
	if len(st.Boxes) == 0 && st.Hits > 0 {
		return nil, fmt.Errorf("track: hypothesis %d has %d hits but no boxes", st.ID, st.Hits)
	}
	for i := 1; i < len(st.Boxes); i++ {
		if st.Boxes[i].Frame <= st.Boxes[i-1].Frame {
			return nil, fmt.Errorf("track: hypothesis %d frames not strictly increasing at index %d", st.ID, i)
		}
	}
	h := &hypothesis{
		id: st.ID,
		kf: &boxKF{
			cx: kfFromState(st.KF.CX), cy: kfFromState(st.KF.CY),
			w: kfFromState(st.KF.W), h: kfFromState(st.KF.H),
		},
		boxes:  append([]video.BBox(nil), st.Boxes...),
		misses: st.Misses,
		hits:   st.Hits,
	}
	if st.Appearance != nil {
		h.appearance = vecmath.Vec(append([]float64(nil), st.Appearance...))
	}
	return h, nil
}

// State snapshots the stream's full mutable state. The snapshot is
// detached: stepping the stream afterwards does not change it.
func (s *Stream) State() StreamState {
	st := StreamState{
		Config:   s.e.cfg,
		NextID:   s.nextID,
		LastStep: s.lastStep,
		Started:  s.started,
	}
	for _, h := range s.active {
		st.Active = append(st.Active, hypState(h))
	}
	for _, h := range s.finished {
		st.Finished = append(st.Finished, hypState(h))
	}
	return st
}

// RestoreStream reconstructs an online tracking session from a snapshot
// taken by Stream.State. The snapshot's engine configuration must equal
// this engine's; a mismatch (or an internally inconsistent hypothesis)
// returns an error and no stream.
func (e *Engine) RestoreStream(st StreamState) (*Stream, error) {
	if st.Config != e.cfg {
		return nil, fmt.Errorf("track: stream snapshot was taken under config %+v, engine has %+v", st.Config, e.cfg)
	}
	if st.NextID < 1 {
		return nil, fmt.Errorf("track: stream snapshot has invalid next track ID %d", st.NextID)
	}
	s := &Stream{e: e, nextID: st.NextID, lastStep: st.LastStep, started: st.Started}
	for _, hs := range st.Active {
		h, err := hypFromState(hs)
		if err != nil {
			return nil, err
		}
		s.active = append(s.active, h)
	}
	for _, hs := range st.Finished {
		h, err := hypFromState(hs)
		if err != nil {
			return nil, err
		}
		s.finished = append(s.finished, h)
	}
	return s, nil
}
