package track

// scalarKF is a 2-state (position, velocity) Kalman filter for one scalar
// dimension. The trackers run four of them — for center x, center y, width,
// and height — which is the diagonal-covariance simplification of the
// 8-state constant-velocity filter used by SORT/DeepSORT. Cross-dimension
// covariance carries no information under the simulator's isotropic motion
// noise, so the simplification loses nothing here while keeping the
// numerics transparent.
type scalarKF struct {
	x, v float64 // state: position, velocity

	// Covariance matrix [[pxx, pxv], [pxv, pvv]].
	pxx, pxv, pvv float64

	// Model noise parameters.
	q float64 // process noise (acceleration variance)
	r float64 // measurement noise variance
}

// newScalarKF initialises the filter at position x0 with zero velocity and
// large velocity uncertainty.
func newScalarKF(x0, q, r float64) scalarKF {
	return scalarKF{
		x: x0, v: 0,
		pxx: r, pxv: 0, pvv: 100 * r,
		q: q, r: r,
	}
}

// predict advances the state one frame: x += v.
func (k *scalarKF) predict() {
	k.x += k.v
	// P = F P F^T + Q with F = [[1,1],[0,1]], Q = q * [[1/4,1/2],[1/2,1]].
	pxx := k.pxx + 2*k.pxv + k.pvv + k.q/4
	pxv := k.pxv + k.pvv + k.q/2
	pvv := k.pvv + k.q
	k.pxx, k.pxv, k.pvv = pxx, pxv, pvv
}

// update folds in a position measurement z.
func (k *scalarKF) update(z float64) {
	s := k.pxx + k.r
	kx := k.pxx / s
	kv := k.pxv / s
	y := z - k.x
	k.x += kx * y
	k.v += kv * y
	pxx := (1 - kx) * k.pxx
	pxv := (1 - kx) * k.pxv
	pvv := k.pvv - kv*k.pxv
	k.pxx, k.pxv, k.pvv = pxx, pxv, pvv
}

// boxKF tracks a bounding box with four scalar filters.
type boxKF struct {
	cx, cy, w, h scalarKF
}

func newBoxKF(cx, cy, w, h float64) *boxKF {
	const (
		posQ  = 1.0  // process noise for centers
		posR  = 4.0  // measurement noise for centers
		sizeQ = 0.01 // sizes change slowly
		sizeR = 4.0
	)
	return &boxKF{
		cx: newScalarKF(cx, posQ, posR),
		cy: newScalarKF(cy, posQ, posR),
		w:  newScalarKF(w, sizeQ, sizeR),
		h:  newScalarKF(h, sizeQ, sizeR),
	}
}

func (b *boxKF) predict() {
	b.cx.predict()
	b.cy.predict()
	b.w.predict()
	b.h.predict()
}

func (b *boxKF) update(cx, cy, w, h float64) {
	b.cx.update(cx)
	b.cy.update(cy)
	b.w.update(w)
	b.h.update(h)
}

// state returns the current estimated box parameters.
func (b *boxKF) state() (cx, cy, w, h float64) {
	w = b.w.x
	h = b.h.x
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	return b.cx.x, b.cy.x, w, h
}
