package track

import (
	"testing"

	"github.com/tmerge/tmerge/internal/video"
)

func TestStreamMatchesBatchTrack(t *testing.T) {
	frames := makeFrames(80, 30, 10)
	batch := Tracktor().Track(frames)

	st := Tracktor().NewStream()
	for f := range frames {
		st.Step(video.FrameIndex(f), frames[f])
	}
	stream := st.Finish()

	if batch.Len() != stream.Len() {
		t.Fatalf("track counts differ: batch %d, stream %d", batch.Len(), stream.Len())
	}
	for _, bt := range batch.Tracks() {
		sv := stream.Get(bt.ID)
		if sv == nil {
			t.Fatalf("stream missing track %d", bt.ID)
		}
		if sv.Len() != bt.Len() {
			t.Errorf("track %d lengths differ: %d vs %d", bt.ID, bt.Len(), sv.Len())
		}
	}
}

func TestStreamSnapshotIncludesActive(t *testing.T) {
	frames := makeFrames(50, 0, 0)
	st := SORT().NewStream()
	for f := 0; f < 25; f++ {
		st.Step(video.FrameIndex(f), frames[f])
	}
	snap := st.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d tracks", len(snap))
	}
	if snap[0].Len() != 25 {
		t.Errorf("active track has %d boxes", snap[0].Len())
	}
}

func TestStreamStepOrderEnforced(t *testing.T) {
	st := SORT().NewStream()
	st.Step(5, nil)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on out-of-order Step")
		}
	}()
	st.Step(5, nil)
}

func TestStreamGapsAgeTracks(t *testing.T) {
	// Feeding frame 0 then frame 40 directly: the 40-frame gap exceeds
	// every preset's MaxAge, so the first track retires and a fresh
	// detection starts a new one.
	frames := makeFrames(60, 0, 0)
	st := Tracktor().NewStream()
	st.Step(0, frames[0])
	st.Step(40, frames[40])
	st.Step(41, frames[41])
	ts := st.Finish()
	// First track had a single hit (below MinHits=2); second has 2.
	if ts.Len() != 1 {
		t.Fatalf("got %d tracks", ts.Len())
	}
	if ts.Tracks()[0].StartFrame() != 40 {
		t.Errorf("surviving track starts at %d", ts.Tracks()[0].StartFrame())
	}
}
