package track

import (
	"math"
	"testing"

	"github.com/tmerge/tmerge/internal/xrand"
)

func TestScalarKFConvergesToConstant(t *testing.T) {
	k := newScalarKF(0, 0.1, 4)
	for i := 0; i < 50; i++ {
		k.predict()
		k.update(10)
	}
	if math.Abs(k.x-10) > 0.5 {
		t.Errorf("position = %v, want ~10", k.x)
	}
	if math.Abs(k.v) > 0.2 {
		t.Errorf("velocity = %v, want ~0", k.v)
	}
}

func TestScalarKFTracksConstantVelocity(t *testing.T) {
	k := newScalarKF(0, 1, 4)
	for i := 1; i <= 60; i++ {
		k.predict()
		k.update(float64(i) * 2) // moving at 2 per frame
	}
	if math.Abs(k.v-2) > 0.3 {
		t.Errorf("velocity = %v, want ~2", k.v)
	}
	// Prediction without measurement continues the motion.
	before := k.x
	k.predict()
	if math.Abs(k.x-before-k.v) > 1e-9 {
		t.Error("predict must advance by the velocity estimate")
	}
}

func TestScalarKFSmoothsNoise(t *testing.T) {
	r := xrand.New(3)
	k := newScalarKF(0, 0.05, 9)
	var rawErr, kfErr float64
	for i := 1; i <= 200; i++ {
		truth := float64(i)
		z := truth + r.Gaussian(0, 3)
		k.predict()
		k.update(z)
		rawErr += math.Abs(z - truth)
		kfErr += math.Abs(k.x - truth)
	}
	if kfErr >= rawErr {
		t.Errorf("filter error %v not below raw measurement error %v", kfErr, rawErr)
	}
}

func TestScalarKFUncertaintyGrowsWithoutMeasurements(t *testing.T) {
	k := newScalarKF(0, 1, 4)
	k.predict()
	k.update(0)
	p0 := k.pxx
	for i := 0; i < 10; i++ {
		k.predict()
	}
	if k.pxx <= p0 {
		t.Errorf("position variance must grow on predict-only: %v -> %v", p0, k.pxx)
	}
}

func TestBoxKFStateFloors(t *testing.T) {
	b := newBoxKF(50, 50, 2, 2)
	// Drive the size estimate negative with shrinking measurements.
	for i := 0; i < 30; i++ {
		b.predict()
		b.update(50, 50, 0.1, 0.1)
	}
	for i := 0; i < 20; i++ {
		b.predict() // size velocity may push below zero
	}
	_, _, w, h := b.state()
	if w < 1 || h < 1 {
		t.Errorf("state sizes must be floored at 1: %v x %v", w, h)
	}
}

func TestBoxKFTracksMotion(t *testing.T) {
	b := newBoxKF(0, 0, 10, 10)
	for i := 1; i <= 40; i++ {
		b.predict()
		b.update(float64(i)*3, float64(i)*-1, 10, 10)
	}
	cx, cy, w, h := b.state()
	if math.Abs(cx-120) > 3 || math.Abs(cy+40) > 3 {
		t.Errorf("center = (%v, %v), want ~(120, -40)", cx, cy)
	}
	if math.Abs(w-10) > 1 || math.Abs(h-10) > 1 {
		t.Errorf("size = %v x %v, want ~10 x 10", w, h)
	}
}
