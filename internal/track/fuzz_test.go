package track

import (
	"math"
	"testing"
)

// FuzzHungarian checks the assignment invariants on arbitrary cost
// matrices: every returned column index is valid and used at most once,
// and rows with at least one finite cost in a feasible matching are not
// gratuitously dropped when rows <= cols and all costs are finite.
func FuzzHungarian(f *testing.F) {
	f.Add(uint64(1), 3, 3)
	f.Add(uint64(7), 2, 5)
	f.Add(uint64(9), 5, 2)
	f.Add(uint64(13), 1, 1)
	f.Fuzz(func(t *testing.T, seed uint64, nRaw, mRaw int) {
		n := 1 + abs(nRaw)%8
		m := 1 + abs(mRaw)%8
		cost := make([][]float64, n)
		state := seed
		next := func() float64 {
			state = state*6364136223846793005 + 1442695040888963407
			return float64(state>>40) / float64(1<<24) * 100
		}
		for i := range cost {
			cost[i] = make([]float64, m)
			for j := range cost[i] {
				cost[i][j] = math.Floor(next())
			}
		}
		got := Hungarian(cost)
		if len(got) != n {
			t.Fatalf("result length %d, want %d", len(got), n)
		}
		used := map[int]bool{}
		assigned := 0
		for _, j := range got {
			if j < 0 {
				continue
			}
			if j >= m || used[j] {
				t.Fatalf("invalid or duplicate column %d in %v", j, got)
			}
			used[j] = true
			assigned++
		}
		want := n
		if m < n {
			want = m
		}
		if assigned != want {
			t.Fatalf("assigned %d rows of %d possible (all-finite matrix)", assigned, want)
		}
	})
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
