package track

import (
	"testing"

	"github.com/tmerge/tmerge/internal/geom"
	"github.com/tmerge/tmerge/internal/synth"
	"github.com/tmerge/tmerge/internal/vecmath"
	"github.com/tmerge/tmerge/internal/video"
	"github.com/tmerge/tmerge/internal/xrand"
)

// makeFrames builds frames with one object moving right at 2px/frame, with
// an optional detection gap.
func makeFrames(n int, gapStart, gapLen int) [][]video.BBox {
	r := xrand.New(1)
	obs := vecmath.NewVec(8)
	for i := range obs {
		obs[i] = r.Gaussian(0, 1)
	}
	frames := make([][]video.BBox, n)
	id := video.BBoxID(1)
	for f := 0; f < n; f++ {
		if gapLen > 0 && f >= gapStart && f < gapStart+gapLen {
			continue
		}
		frames[f] = []video.BBox{{
			ID:       id,
			Frame:    video.FrameIndex(f),
			Rect:     geom.Rect{X: float64(f) * 2, Y: 100, W: 40, H: 40},
			Obs:      obs.Clone(),
			GTObject: 7,
		}}
		id++
	}
	return frames
}

func TestEngineSingleObjectSingleTrack(t *testing.T) {
	ts := SORT().Track(makeFrames(50, 0, 0))
	if ts.Len() != 1 {
		t.Fatalf("got %d tracks, want 1", ts.Len())
	}
	tr := ts.Tracks()[0]
	if tr.Len() != 50 {
		t.Errorf("track has %d boxes, want 50", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

func TestSORTFragmentsOnGap(t *testing.T) {
	// Gap of 5 frames > SORT's MaxAge of 1 -> two tracks.
	ts := SORT().Track(makeFrames(60, 30, 5))
	if ts.Len() != 2 {
		t.Fatalf("SORT got %d tracks, want 2", ts.Len())
	}
	// Both fragments belong to the same GT object.
	a, _ := ts.Tracks()[0].MajorityObject()
	b, _ := ts.Tracks()[1].MajorityObject()
	if a != 7 || b != 7 {
		t.Errorf("fragments attributed to %v and %v", a, b)
	}
}

func TestTracktorBridgesShortGap(t *testing.T) {
	// Gap of 5 frames < Tracktor's MaxAge of 25 -> one track.
	ts := Tracktor().Track(makeFrames(60, 30, 5))
	if ts.Len() != 1 {
		t.Fatalf("Tracktor got %d tracks, want 1", ts.Len())
	}
}

func TestTracktorFragmentsOnLongGap(t *testing.T) {
	ts := Tracktor().Track(makeFrames(120, 40, 40))
	if ts.Len() != 2 {
		t.Fatalf("Tracktor got %d tracks across a 40-frame gap, want 2", ts.Len())
	}
}

func TestTwoCrossingObjectsKeepIdentity(t *testing.T) {
	// Two objects pass each other with distinct appearances; DeepSORT
	// should keep their identities pure.
	r := xrand.New(2)
	mkObs := func() vecmath.Vec {
		v := vecmath.NewVec(8)
		for i := range v {
			v[i] = r.Gaussian(0, 1)
		}
		return vecmath.Normalize(v)
	}
	obsA, obsB := mkObs(), mkObs()
	n := 80
	frames := make([][]video.BBox, n)
	id := video.BBoxID(1)
	for f := 0; f < n; f++ {
		fa := float64(f)
		frames[f] = []video.BBox{
			{ID: id, Frame: video.FrameIndex(f), Rect: geom.Rect{X: fa * 3, Y: 100, W: 30, H: 30}, Obs: obsA.Clone(), GTObject: 1},
			{ID: id + 1, Frame: video.FrameIndex(f), Rect: geom.Rect{X: 240 - fa*3, Y: 100, W: 30, H: 30}, Obs: obsB.Clone(), GTObject: 2},
		}
		id += 2
	}
	ts := DeepSORT().Track(frames)
	if ts.Len() != 2 {
		t.Fatalf("got %d tracks, want 2", ts.Len())
	}
	for _, tr := range ts.Tracks() {
		if _, purity := tr.MajorityObject(); purity < 0.95 {
			t.Errorf("track %d purity %v", tr.ID, purity)
		}
	}
}

func TestMinHitsFiltersNoise(t *testing.T) {
	// A single-frame detection (noise) must not produce a track when
	// MinHits is 2.
	frames := make([][]video.BBox, 10)
	frames[5] = []video.BBox{{
		ID: 1, Frame: 5, Rect: geom.Rect{X: 0, Y: 0, W: 10, H: 10}, GTObject: 3,
	}}
	ts := SORT().Track(frames)
	if ts.Len() != 0 {
		t.Errorf("noise detection produced %d tracks", ts.Len())
	}
}

func TestEngineConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on MaxAge < 1")
		}
	}()
	NewEngine(Config{MaxAge: 0})
}

func TestTrackerNames(t *testing.T) {
	if SORT().Name() != "SORT" || DeepSORT().Name() != "DeepSORT" || Tracktor().Name() != "Tracktor" {
		t.Error("preset names wrong")
	}
}

func TestTrackerDeterminism(t *testing.T) {
	cfg := synth.Config{
		Seed: 5, Name: "d", NumFrames: 200, Width: 600, Height: 400,
		ArrivalRate: 0.05, MaxObjects: 6, MinSpan: 30, MaxSpan: 100,
		SpeedMin: 0.5, SpeedMax: 2, SizeMin: 30, SizeMax: 60,
		AppearanceDim: 8, AppearanceNoise: 0.08,
		OcclusionCoverage: 0.5, MissProb: 0.02,
	}
	v, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := Tracktor().Track(v.Detections)
	b := Tracktor().Track(v.Detections)
	if a.Len() != b.Len() {
		t.Fatalf("track counts differ: %d vs %d", a.Len(), b.Len())
	}
	for i, tr := range a.Tracks() {
		other := b.Tracks()[i]
		if tr.ID != other.ID || tr.Len() != other.Len() {
			t.Fatalf("track %d differs", i)
		}
	}
}

func TestFragmentOrderingAcrossTrackers(t *testing.T) {
	// On an occlusion-heavy scene, SORT must fragment at least as much as
	// DeepSORT, which must fragment at least as much as Tracktor — the
	// ordering behind Figure 11.
	cfg := synth.Config{
		Seed: 11, Name: "frag", NumFrames: 400, Width: 800, Height: 600,
		ArrivalRate: 0.04, MaxObjects: 8, MinSpan: 60, MaxSpan: 200,
		SpeedMin: 0.5, SpeedMax: 2, SizeMin: 50, SizeMax: 90,
		AppearanceDim: 16, AppearanceNoise: 0.08,
		OcclusionCoverage: 0.45, MissProb: 0.02,
		GlareRate: 0.01, GlareDuration: 40, GlareSize: 200,
	}
	v, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nSORT := SORT().Track(v.Detections).Len()
	nDeep := DeepSORT().Track(v.Detections).Len()
	nTrk := Tracktor().Track(v.Detections).Len()
	if !(nSORT >= nDeep && nDeep >= nTrk) {
		t.Errorf("fragment ordering violated: SORT=%d DeepSORT=%d Tracktor=%d", nSORT, nDeep, nTrk)
	}
	if nTrk < v.GT.Len() {
		t.Errorf("Tracktor produced fewer tracks (%d) than GT objects (%d)", nTrk, v.GT.Len())
	}
}
