package track

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/tmerge/tmerge/internal/xrand"
)

func cost(assign []int, m [][]float64) float64 {
	var c float64
	for i, j := range assign {
		if j >= 0 {
			c += m[i][j]
		}
	}
	return c
}

func TestHungarianSquare(t *testing.T) {
	m := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	got := Hungarian(m)
	// Optimal: 0->1 (1), 1->0 (2), 2->2 (2) = 5.
	if cost(got, m) != 5 {
		t.Errorf("assignment %v has cost %v, want 5", got, cost(got, m))
	}
}

func TestHungarianIdentity(t *testing.T) {
	m := [][]float64{
		{0, 9, 9},
		{9, 0, 9},
		{9, 9, 0},
	}
	got := Hungarian(m)
	for i, j := range got {
		if j != i {
			t.Errorf("row %d assigned to %d", i, j)
		}
	}
}

func TestHungarianRectangularWide(t *testing.T) {
	// 2 rows, 4 columns: both rows assigned, distinct columns.
	m := [][]float64{
		{5, 1, 9, 9},
		{1, 5, 9, 9},
	}
	got := Hungarian(m)
	if got[0] != 1 || got[1] != 0 {
		t.Errorf("assignment = %v", got)
	}
}

func TestHungarianRectangularTall(t *testing.T) {
	// 3 rows, 2 columns: one row stays unassigned.
	m := [][]float64{
		{1, 9},
		{9, 1},
		{2, 2},
	}
	got := Hungarian(m)
	assigned := 0
	used := map[int]bool{}
	for _, j := range got {
		if j >= 0 {
			assigned++
			if used[j] {
				t.Fatalf("column %d used twice: %v", j, got)
			}
			used[j] = true
		}
	}
	if assigned != 2 {
		t.Errorf("assigned %d rows, want 2: %v", assigned, got)
	}
	if got[0] != 0 || got[1] != 1 {
		t.Errorf("assignment = %v, want [0 1 -1]", got)
	}
}

func TestHungarianForbidden(t *testing.T) {
	inf := math.Inf(1)
	m := [][]float64{
		{inf, 1},
		{1, inf},
	}
	got := Hungarian(m)
	if got[0] != 1 || got[1] != 0 {
		t.Errorf("assignment = %v", got)
	}
}

func TestHungarianAllForbiddenRow(t *testing.T) {
	inf := math.Inf(1)
	m := [][]float64{
		{inf, inf},
		{1, 2},
	}
	got := Hungarian(m)
	if got[0] != -1 {
		t.Errorf("fully-forbidden row assigned to %d", got[0])
	}
	if got[1] != 0 {
		t.Errorf("row 1 assigned to %d, want 0", got[1])
	}
}

func TestHungarianEmpty(t *testing.T) {
	if got := Hungarian(nil); got != nil {
		t.Errorf("empty = %v", got)
	}
}

func TestHungarianRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Hungarian([][]float64{{1, 2}, {3}})
}

// Property: on random square matrices, the Hungarian result matches
// brute-force optimal cost (n <= 6 so brute force is feasible), and the
// assignment is a valid partial matching.
func TestHungarianOptimality(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 1 + int(seed%6)
		m := make([][]float64, n)
		for i := range m {
			m[i] = make([]float64, n)
			for j := range m[i] {
				m[i][j] = math.Floor(r.Float64() * 100)
			}
		}
		got := Hungarian(m)
		used := map[int]bool{}
		for _, j := range got {
			if j < 0 || used[j] {
				return false
			}
			used[j] = true
		}
		return cost(got, m) == bruteForce(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// bruteForce returns the optimal assignment cost by enumerating
// permutations.
func bruteForce(m [][]float64) float64 {
	n := len(m)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.Inf(1)
	var recurse func(k int)
	recurse = func(k int) {
		if k == n {
			var c float64
			for i, j := range perm {
				c += m[i][j]
			}
			if c < best {
				best = c
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			recurse(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	recurse(0)
	return best
}
