package track

import (
	"fmt"
	"math"

	"github.com/tmerge/tmerge/internal/geom"
	"github.com/tmerge/tmerge/internal/vecmath"
	"github.com/tmerge/tmerge/internal/video"
)

// Tracker converts per-frame detections into a set of tracks.
type Tracker interface {
	// Name identifies the tracker in reports.
	Name() string
	// Track consumes frames[f] = detections of frame f and returns the
	// resulting track set. Implementations are online: they never look at
	// future frames when associating the current one.
	Track(frames [][]video.BBox) *video.TrackSet
}

// Config parameterises the SORT-family tracking engine. The three paper
// trackers are presets over this engine differing in association cues and
// tolerance to detection gaps — the knobs that control how badly occlusion
// fragments their output.
type Config struct {
	// Name labels the preset.
	Name string
	// MaxAge is the number of consecutive frames a track survives without
	// a matched detection before being terminated. Classic SORT uses 1;
	// larger values bridge short occlusions.
	MaxAge int
	// MinIoU gates association: candidate (track, detection) pairs below
	// this predicted-box IoU are forbidden.
	MinIoU float64
	// UseAppearance enables the appearance affinity term (DeepSORT's deep
	// association metric; Tracktor's ReID-based recovery).
	UseAppearance bool
	// AppearanceGate forbids association when the cosine distance between
	// the track's appearance estimate and the detection exceeds this value.
	AppearanceGate float64
	// AppearanceMomentum is the EMA factor for the track's appearance
	// estimate (0 = always replace, 0.9 = slow update).
	AppearanceMomentum float64
	// MinHits is the number of matched detections required before a track
	// is emitted (filters single-frame noise).
	MinHits int
}

// SORT returns the classic SORT preset: IoU-only association with no
// tolerance for detection gaps. It fragments the most.
func SORT() *Engine {
	return NewEngine(Config{
		Name:    "SORT",
		MaxAge:  1,
		MinIoU:  0.1,
		MinHits: 2,
	})
}

// DeepSORT returns the DeepSORT preset: appearance-augmented association
// with moderate gap tolerance.
func DeepSORT() *Engine {
	return NewEngine(Config{
		Name:               "DeepSORT",
		MaxAge:             12,
		MinIoU:             0.05,
		UseAppearance:      true,
		AppearanceGate:     2.0, // soft cost only; never gates
		AppearanceMomentum: 0.8,
		MinHits:            2,
	})
}

// Tracktor returns the Tracktor preset: the regression-based carry-over is
// modelled as high gap tolerance plus appearance recovery, matching the
// paper's finding that Tracktor fragments least.
func Tracktor() *Engine {
	return NewEngine(Config{
		Name:               "Tracktor",
		MaxAge:             25,
		MinIoU:             0.03,
		UseAppearance:      true,
		AppearanceGate:     2.0, // soft cost only; never gates
		AppearanceMomentum: 0.9,
		MinHits:            2,
	})
}

// UMA returns a preset standing in for the Unified Motion and Affinity
// model (Yin et al.): single-model motion+affinity scoring, modelled as
// strong appearance blending with mid-range gap tolerance — fragmenting
// between DeepSORT and Tracktor, as in the paper's Figure 11.
func UMA() *Engine {
	return NewEngine(Config{
		Name:               "UMA",
		MaxAge:             18,
		MinIoU:             0.04,
		UseAppearance:      true,
		AppearanceGate:     2.0, // soft cost only; never gates
		AppearanceMomentum: 0.85,
		MinHits:            2,
	})
}

// CenterTrack returns a preset standing in for CenterTrack (Zhou et al.):
// point-based tracking with displacement prediction, modelled as motion-
// only association with a generous IoU gate and short memory.
func CenterTrack() *Engine {
	return NewEngine(Config{
		Name:    "CenterTrack",
		MaxAge:  3,
		MinIoU:  0.05,
		MinHits: 2,
	})
}

// Engine is the shared SORT-family tracking implementation.
type Engine struct {
	cfg Config
}

// NewEngine returns a tracking engine for the given configuration.
func NewEngine(cfg Config) *Engine {
	if cfg.MaxAge < 1 {
		panic(fmt.Sprintf("track: MaxAge must be >= 1, got %d", cfg.MaxAge))
	}
	if cfg.MinHits < 1 {
		cfg.MinHits = 1
	}
	return &Engine{cfg: cfg}
}

// Name implements Tracker.
func (e *Engine) Name() string { return e.cfg.Name }

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// hypothesis is the engine's internal per-track state.
type hypothesis struct {
	id         video.TrackID
	kf         *boxKF
	appearance vecmath.Vec
	boxes      []video.BBox
	misses     int // consecutive frames without a match
	hits       int
}

// Track implements Tracker.
func (e *Engine) Track(frames [][]video.BBox) *video.TrackSet {
	st := e.NewStream()
	for f := range frames {
		st.Step(video.FrameIndex(f), frames[f])
	}
	return st.Finish()
}

// Stream is the incremental (online) form of the tracking engine: feed it
// one frame of detections at a time with Step and read the track state at
// any point with Snapshot. It backs the streaming ingestion pipeline,
// which must inspect tracks at window boundaries long before the stream
// ends.
type Stream struct {
	e        *Engine
	active   []*hypothesis
	finished []*hypothesis
	nextID   video.TrackID
	lastStep video.FrameIndex
	started  bool
}

// NewStream returns a fresh online tracking session.
func (e *Engine) NewStream() *Stream {
	return &Stream{e: e, nextID: 1}
}

// Step consumes the detections of frame f. Frames must be fed in strictly
// increasing order; gaps are allowed and age out unmatched tracks.
func (s *Stream) Step(f video.FrameIndex, dets []video.BBox) {
	if s.started && f <= s.lastStep {
		panic(fmt.Sprintf("track: Step frame %d not after %d", f, s.lastStep))
	}
	gap := 1
	if s.started {
		gap = int(f - s.lastStep)
	}
	s.started = true
	s.lastStep = f
	e := s.e

	// Predict active tracks across the (possibly multi-frame) gap.
	for _, h := range s.active {
		for k := 0; k < gap; k++ {
			h.kf.predict()
		}
	}

	// Associate.
	matched := make([]bool, len(dets))
	if len(s.active) > 0 && len(dets) > 0 {
		cost := make([][]float64, len(s.active))
		for i, h := range s.active {
			cost[i] = make([]float64, len(dets))
			for j, d := range dets {
				cost[i][j] = e.assocCost(h, d)
			}
		}
		assign := Hungarian(cost)
		for i, j := range assign {
			if j < 0 {
				continue
			}
			e.absorb(s.active[i], dets[j])
			matched[j] = true
		}
	}

	// Age unmatched tracks; retire the expired ones.
	nextActive := s.active[:0]
	for _, h := range s.active {
		if len(h.boxes) > 0 && h.boxes[len(h.boxes)-1].Frame == f {
			nextActive = append(nextActive, h)
			continue
		}
		h.misses += gap
		if h.misses > e.cfg.MaxAge {
			s.finished = append(s.finished, h)
			continue
		}
		nextActive = append(nextActive, h)
	}
	s.active = nextActive

	// Births.
	for j, d := range dets {
		if matched[j] {
			continue
		}
		c := d.Rect.Center()
		h := &hypothesis{
			id: s.nextID,
			kf: newBoxKF(c.X, c.Y, d.Rect.W, d.Rect.H),
		}
		s.nextID++
		e.absorb(h, d)
		s.active = append(s.active, h)
	}
}

// Snapshot returns the current tracks — retired and still-active — that
// meet the MinHits threshold. Boxes are shared with the stream's internal
// state; callers must not modify them. Active tracks may still grow.
func (s *Stream) Snapshot() []*video.Track {
	var out []*video.Track
	for _, h := range s.finished {
		if h.hits >= s.e.cfg.MinHits {
			out = append(out, &video.Track{ID: h.id, Boxes: h.boxes})
		}
	}
	for _, h := range s.active {
		if h.hits >= s.e.cfg.MinHits {
			out = append(out, &video.Track{ID: h.id, Boxes: h.boxes})
		}
	}
	return out
}

// Finish retires every remaining active track and returns the final set.
// The stream must not be stepped afterwards.
func (s *Stream) Finish() *video.TrackSet {
	s.finished = append(s.finished, s.active...)
	s.active = nil
	var tracks []*video.Track
	for _, h := range s.finished {
		if h.hits < s.e.cfg.MinHits {
			continue
		}
		tracks = append(tracks, &video.Track{ID: h.id, Boxes: h.boxes})
	}
	return video.NewTrackSet(tracks)
}

// assocCost returns the assignment cost of matching hypothesis h with
// detection d, or +Inf when gated out. Cross-class association is always
// forbidden: a person detection never extends a vehicle track.
func (e *Engine) assocCost(h *hypothesis, d video.BBox) float64 {
	if len(h.boxes) > 0 && h.boxes[0].Class != d.Class {
		return math.Inf(1)
	}
	cx, cy, w, hh := h.kf.state()
	pred := geom.RectFromCenter(geom.Point{X: cx, Y: cy}, w, hh)
	iou := pred.IoU(d.Rect)
	if iou < e.cfg.MinIoU {
		return math.Inf(1)
	}
	cost := 1 - iou
	if e.cfg.UseAppearance && h.appearance != nil && d.Obs != nil {
		ad := cosineDistance(h.appearance, d.Obs)
		if ad > e.cfg.AppearanceGate {
			return math.Inf(1)
		}
		cost = 0.5*cost + 0.5*ad
	}
	return cost
}

// absorb folds detection d into hypothesis h.
func (e *Engine) absorb(h *hypothesis, d video.BBox) {
	c := d.Rect.Center()
	h.kf.update(c.X, c.Y, d.Rect.W, d.Rect.H)
	h.boxes = append(h.boxes, d)
	h.misses = 0
	h.hits++
	if e.cfg.UseAppearance && d.Obs != nil {
		if h.appearance == nil {
			h.appearance = d.Obs.Clone()
		} else {
			m := e.cfg.AppearanceMomentum
			for i := range h.appearance {
				h.appearance[i] = m*h.appearance[i] + (1-m)*d.Obs[i]
			}
		}
	}
}

// cosineDistance returns 1 - cosine similarity, clamped to [0, 2].
func cosineDistance(a, b vecmath.Vec) float64 {
	na, nb := vecmath.Norm2(a), vecmath.Norm2(b)
	if na == 0 || nb == 0 {
		return 1
	}
	sim := vecmath.Dot(a, b) / (na * nb)
	if sim > 1 {
		sim = 1
	}
	if sim < -1 {
		sim = -1
	}
	return 1 - sim
}
