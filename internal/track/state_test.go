package track

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/tmerge/tmerge/internal/synth"
	"github.com/tmerge/tmerge/internal/video"
)

func stateScene(t *testing.T) *synth.Video {
	t.Helper()
	cfg := synth.Config{
		Seed: 17, Name: "state", NumFrames: 300, Width: 600, Height: 400,
		ArrivalRate: 0.05, MaxObjects: 6, MinSpan: 30, MaxSpan: 120,
		SpeedMin: 0.5, SpeedMax: 2, SizeMin: 30, SizeMax: 60,
		AppearanceDim: 8, AppearanceNoise: 0.08,
		OcclusionCoverage: 0.5, MissProb: 0.02,
	}
	v, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func snapshotJSON(t *testing.T, s *Stream) []byte {
	t.Helper()
	b, err := json.Marshal(video.NewTrackSet(s.Snapshot()).Sorted())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestStreamStateReplayEquivalence is the tracker-level half of the
// checkpoint guarantee: a stream restored from its State and stepped
// over the same remaining frames is indistinguishable from one that was
// never interrupted — including Kalman covariances, appearance EMAs, and
// age counters, all of which shape future associations.
func TestStreamStateReplayEquivalence(t *testing.T) {
	v := stateScene(t)
	for _, cut := range []int{1, 57, 150, 299} {
		ref := Tracktor().NewStream()
		for f, dets := range v.Detections {
			ref.Step(video.FrameIndex(f), dets)
		}

		first := Tracktor().NewStream()
		for f, dets := range v.Detections[:cut] {
			first.Step(video.FrameIndex(f), dets)
		}
		st := first.State()

		// The snapshot must survive JSON (the checkpoint transport)
		// bit-exactly.
		raw, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		var decoded StreamState
		if err := json.Unmarshal(raw, &decoded); err != nil {
			t.Fatal(err)
		}

		resumed, err := Tracktor().RestoreStream(decoded)
		if err != nil {
			t.Fatal(err)
		}
		// Detached: stepping the original must not disturb the restored
		// stream's state.
		first.Step(video.FrameIndex(cut), nil)
		for f := cut; f < len(v.Detections); f++ {
			resumed.Step(video.FrameIndex(f), v.Detections[f])
		}

		if !bytes.Equal(snapshotJSON(t, ref), snapshotJSON(t, resumed)) {
			t.Errorf("cut %d: restored stream diverged from uninterrupted one", cut)
		}
	}
}

func TestRestoreStreamRejectsBadSnapshots(t *testing.T) {
	v := stateScene(t)
	s := Tracktor().NewStream()
	for f, dets := range v.Detections[:100] {
		s.Step(video.FrameIndex(f), dets)
	}
	good := s.State()

	t.Run("wrong-engine-config", func(t *testing.T) {
		if _, err := SORT().RestoreStream(good); err == nil {
			t.Error("snapshot accepted by a differently configured engine")
		}
	})
	t.Run("invalid-next-id", func(t *testing.T) {
		bad := good
		bad.NextID = 0
		if _, err := Tracktor().RestoreStream(bad); err == nil {
			t.Error("snapshot with next ID 0 accepted")
		}
	})
	t.Run("non-increasing-frames", func(t *testing.T) {
		bad := good
		if len(bad.Active) == 0 || len(bad.Active[0].Boxes) < 2 {
			t.Skip("fixture produced no multi-box active hypothesis")
		}
		// Corrupt a deep copy, not the shared snapshot.
		raw, _ := json.Marshal(good)
		var mut StreamState
		if err := json.Unmarshal(raw, &mut); err != nil {
			t.Fatal(err)
		}
		mut.Active[0].Boxes[1].Frame = mut.Active[0].Boxes[0].Frame
		if _, err := Tracktor().RestoreStream(mut); err == nil {
			t.Error("snapshot with non-increasing frames accepted")
		}
	})
	t.Run("round-trip-still-works", func(t *testing.T) {
		if _, err := Tracktor().RestoreStream(good); err != nil {
			t.Errorf("pristine snapshot rejected: %v", err)
		}
	})
}
