//go:build ignore

package main

import (
	"fmt"

	"github.com/tmerge/tmerge/internal/dataset"
	"github.com/tmerge/tmerge/internal/motmetrics"
	"github.com/tmerge/tmerge/internal/track"
	"github.com/tmerge/tmerge/internal/video"
)

func main() {
	p := dataset.KITTILike(42)
	p.NumVideos = 4
	ds, _ := p.Generate()
	for _, v := range ds.Videos {
		gtboxes := v.GT.TotalBoxes()
		det := 0
		for _, d := range v.Detections {
			det += len(d)
		}
		for _, trk := range []track.Tracker{track.SORT(), track.Tracktor()} {
			ts := trk.Track(v.Detections)
			w := video.Window{Start: 0, End: video.FrameIndex(v.NumFrames - 1)}
			ps := video.BuildPairSet(w, ts.Sorted(), nil)
			truth := motmetrics.PolyonymousPairs(ps)
			fmt.Printf("%s %-8s gt=%d(box %d det %d) trk=%d poly=%d\n", v.Name, trk.Name(), v.GT.Len(), gtboxes, det, ts.Len(), len(truth))
		}
	}
}
