//go:build ignore

package main

import (
	"fmt"
	"sort"

	"github.com/tmerge/tmerge/internal/dataset"
	"github.com/tmerge/tmerge/internal/device"
	"github.com/tmerge/tmerge/internal/motmetrics"
	"github.com/tmerge/tmerge/internal/reid"
	"github.com/tmerge/tmerge/internal/track"
	"github.com/tmerge/tmerge/internal/video"
	"github.com/tmerge/tmerge/internal/xrand"
)

func main() {
	model := reid.NewModel(42^0x5EED, dataset.AppearanceDim)
	p := dataset.MOT17Like(42)
	p.NumVideos = 3
	ds, _ := p.Generate()
	rng := xrand.New(99)
	var polyMeans, crossMeans []float64
	var polySingles, crossSingles []float64
	oracle := reid.NewOracle(model, device.NewCPU(device.DefaultCPU))
	for _, v := range ds.Videos {
		ts := track.Tracktor().Track(v.Detections)
		w := video.Window{Start: 0, End: video.FrameIndex(v.NumFrames - 1)}
		ps := video.BuildPairSet(w, ts.Sorted(), nil)
		truth := motmetrics.PolyonymousPairs(ps)
		means := oracle.TrackPairMeans(ps.Pairs)
		for i, pr := range ps.Pairs {
			// collect 3 single samples per pair
			var singles []float64
			for k := 0; k < 3; k++ {
				n := rng.Intn(pr.NumBBoxPairs())
				a, b := pr.BBoxPairAt(n)
				singles = append(singles, oracle.Distance(a, b))
			}
			if truth[pr.Key] {
				polyMeans = append(polyMeans, means[i])
				polySingles = append(polySingles, singles...)
			} else {
				crossMeans = append(crossMeans, means[i])
				crossSingles = append(crossSingles, singles...)
			}
		}
	}
	q := func(xs []float64, f float64) float64 {
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		return s[int(f*float64(len(s)-1))]
	}
	fmt.Printf("poly means  n=%d  q10=%.3f med=%.3f q90=%.3f\n", len(polyMeans), q(polyMeans, .1), q(polyMeans, .5), q(polyMeans, .9))
	fmt.Printf("cross means n=%d  q01=%.3f q05=%.3f med=%.3f\n", len(crossMeans), q(crossMeans, .01), q(crossMeans, .05), q(crossMeans, .5))
	fmt.Printf("poly singles  q10=%.3f med=%.3f q90=%.3f\n", q(polySingles, .1), q(polySingles, .5), q(polySingles, .9))
	fmt.Printf("cross singles q01=%.3f q05=%.3f q10=%.3f med=%.3f\n", q(crossSingles, .01), q(crossSingles, .05), q(crossSingles, .1), q(crossSingles, .5))
	// fraction of cross singles below median poly mean
	pm := q(polyMeans, .5)
	low := 0
	for _, x := range crossSingles {
		if x < pm {
			low++
		}
	}
	fmt.Printf("P(cross single < median poly mean %.3f) = %.4f\n", pm, float64(low)/float64(len(crossSingles)))
}
