//go:build ignore

package main

import (
	"fmt"

	"github.com/tmerge/tmerge/internal/core"
	"github.com/tmerge/tmerge/internal/dataset"
	"github.com/tmerge/tmerge/internal/device"
	"github.com/tmerge/tmerge/internal/motmetrics"
	"github.com/tmerge/tmerge/internal/reid"
	"github.com/tmerge/tmerge/internal/track"
	"github.com/tmerge/tmerge/internal/video"
)

func main() {
	model := reid.NewModel(42^0x5EED, dataset.AppearanceDim)
	p := dataset.MOT17Like(42)
	p.NumVideos = 3
	ds, _ := p.Generate()
	for _, trk := range []track.Tracker{track.SORT(), track.DeepSORT(), track.Tracktor()} {
		for _, v := range ds.Videos {
			ts := trk.Track(v.Detections)
			w := video.Window{Start: 0, End: video.FrameIndex(v.NumFrames - 1)}
			ps := video.BuildPairSet(w, ts.Sorted(), nil)
			truth := motmetrics.PolyonymousPairs(ps)
			fmt.Printf("%-9s %s gt=%d trk=%d pairs=%d poly=%d rate=%.2f%%\n",
				trk.Name(), v.Name, v.GT.Len(), ts.Len(), ps.Len(), len(truth), 100*motmetrics.PolyonymousRate(ps))
		}
	}
	// Algorithm comparison aggregated over all videos, Tracktor.
	type wt struct {
		ps    *video.PairSet
		truth map[video.PairKey]bool
	}
	var wts []wt
	for _, v := range ds.Videos {
		ts := track.Tracktor().Track(v.Detections)
		w := video.Window{Start: 0, End: video.FrameIndex(v.NumFrames - 1)}
		ps := video.BuildPairSet(w, ts.Sorted(), nil)
		wts = append(wts, wt{ps, motmetrics.PolyonymousPairs(ps)})
	}
	run := func(name string, mk func() core.Algorithm) {
		var recSum, virt float64
		var dist int64
		for _, x := range wts {
			oracle := reid.NewOracle(model, device.NewCPU(device.DefaultCPU))
			sel := mk().Select(x.ps, oracle, 0.05)
			recSum += video.Recall(sel, x.truth)
			dist += oracle.Stats().Distances
			virt += oracle.Device().Clock().Elapsed().Seconds()
		}
		fmt.Printf("  %-14s REC=%.3f dist=%9d virt=%8.1fs\n", name,
			recSum/float64(len(wts)), dist, virt)
	}
	run("BL", func() core.Algorithm { return core.NewBaseline() })
	for _, eta := range []float64{0.0001, 0.0005, 0.002, 0.01, 0.05, 0.2} {
		eta := eta
		run(fmt.Sprintf("PS eta=%g", eta), func() core.Algorithm { return core.NewPS(eta, 11) })
	}
	for _, tau := range []int{1000, 2000, 5000, 10000, 20000, 40000} {
		tau := tau
		run(fmt.Sprintf("LCB tau=%d", tau), func() core.Algorithm { return core.NewLCB(tau, 13) })
		run(fmt.Sprintf("TM  tau=%d", tau), func() core.Algorithm {
			cfg := core.DefaultTMergeConfig(17)
			cfg.TauMax = tau
			return core.NewTMerge(cfg)
		})
	}
}
