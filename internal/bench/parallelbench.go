package bench

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"github.com/tmerge/tmerge/internal/core"
	"github.com/tmerge/tmerge/internal/reid"
	"github.com/tmerge/tmerge/internal/track"
)

// ParallelBenchConfig pins one parallel window-executor benchmark: the
// same pass (dataset, seed, algorithm) run once per worker count, so the
// rows can be compared for determinism (fingerprints must agree) and
// throughput (wall time should drop as workers grow).
type ParallelBenchConfig struct {
	// Dataset names the suite dataset to run over.
	Dataset string
	// Videos truncates the dataset (0 keeps the suite's own
	// VideosPerDataset setting). It must be set before the suite first
	// generates the dataset; a dataset already cached with a different
	// truncation is not re-cut.
	Videos int
	// WindowLen overrides the dataset's window length when positive —
	// the parallel executor needs many windows per video to have
	// anything to shard.
	WindowLen int
	// TauMax is the TMerge iteration budget.
	TauMax int
	// K is the candidate proportion.
	K float64
	// WorkerCounts lists the PipelineConfig.Workers values to measure,
	// one result row each. The first count is the speedup baseline
	// (conventionally 1).
	WorkerCounts []int
	// Clock reads wall time for the speedup measurement. It must be
	// injected by the caller — cmd/benchrunner is on the determinism
	// allowlist, this package is not. Nil disables wall timing (WallMS
	// and WallSpeedup stay 0); everything else in a row is virtual-time
	// based and fully deterministic.
	Clock func() time.Time
}

// DefaultParallelBench is the pinned configuration the CI bench gate
// runs: small enough for a CI minute, windowed finely enough (19 windows
// per video) that the executor has real sharding to do.
func DefaultParallelBench() ParallelBenchConfig {
	return ParallelBenchConfig{
		Dataset:      "pathtrack",
		Videos:       2,
		WindowLen:    400,
		TauMax:       4000,
		K:            DefaultK,
		WorkerCounts: []int{1, 2, 4},
	}
}

// ParallelBenchResult is one row of the parallel benchmark — the
// line-delimited JSON shape persisted as BENCH_baseline.json /
// BENCH_pr.json and consumed by the CI regression gate. FPS, VirtualMS,
// REC, and Fingerprint are deterministic functions of the configuration;
// WallMS and WallSpeedup are measured and vary run to run.
type ParallelBenchResult struct {
	Experiment string `json:"experiment"`
	Dataset    string `json:"dataset"`
	Seed       uint64 `json:"seed"`
	Videos     int    `json:"videos"`
	WindowLen  int    `json:"window_len"`
	Workers    int    `json:"workers"`
	// NumCPU records the CPU count of the machine that produced the row.
	// Wall-clock fields are only interpretable next to it: a 4-worker row
	// measured on 1 CPU cannot show parallel speedup no matter how good
	// the executor is. Like WallMS it is measurement context, never gated.
	NumCPU      int     `json:"num_cpu,omitempty"`
	Frames      int     `json:"frames"`
	REC         float64 `json:"rec"`
	FPS         float64 `json:"fps"`
	VirtualMS   float64 `json:"virtual_ms"`
	WallMS      float64 `json:"wall_ms,omitempty"`
	WallSpeedup float64 `json:"wall_speedup,omitempty"`
	// Fingerprint chains the per-video PipelineResult fingerprints; any
	// divergence between worker counts (or against a committed
	// baseline) is a determinism break.
	Fingerprint string `json:"fingerprint"`
}

// parallelBenchExperiment tags the rows in mixed NDJSON streams.
const parallelBenchExperiment = "parallel_windows"

// RunParallelBench measures the pinned pass at every configured worker
// count and returns one row per count, in WorkerCounts order. Dataset
// generation and tracking are warmed (and cached) before any timing, so
// WallMS covers only the window loop — selection, certification, and
// reduction.
func (s *Suite) RunParallelBench(cfg ParallelBenchConfig) []ParallelBenchResult {
	if cfg.Videos > 0 {
		s.VideosPerDataset = cfg.Videos
	}
	ds := s.Dataset(cfg.Dataset)
	tr := track.Tracktor()
	for i := range ds.Videos {
		s.Tracks(cfg.Dataset, tr, i)
	}
	windowLen := ds.WindowLen
	if cfg.WindowLen > 0 {
		windowLen = cfg.WindowLen
	}
	tcfg := core.DefaultTMergeConfig(s.Seed)
	if cfg.TauMax > 0 {
		tcfg.TauMax = cfg.TauMax
	}

	out := make([]ParallelBenchResult, 0, len(cfg.WorkerCounts))
	for _, workers := range cfg.WorkerCounts {
		row := ParallelBenchResult{
			Experiment: parallelBenchExperiment,
			Dataset:    cfg.Dataset,
			Seed:       s.Seed,
			Videos:     len(ds.Videos),
			WindowLen:  windowLen,
			Workers:    workers,
			NumCPU:     runtime.NumCPU(),
		}
		fp := sha256.New()
		var recSum float64
		var virtual time.Duration
		var wall time.Duration
		for i, v := range ds.Videos {
			ts := s.Tracks(cfg.Dataset, tr, i)
			oracle := reid.NewOracle(s.model, s.newDevice(CPU))
			var start time.Time
			if cfg.Clock != nil {
				start = cfg.Clock()
			}
			res := core.RunPipeline(ts, v.NumFrames, oracle, core.PipelineConfig{
				WindowLen: windowLen,
				K:         cfg.K,
				Algorithm: core.NewTMerge(tcfg),
				Workers:   workers,
			})
			if cfg.Clock != nil {
				wall += cfg.Clock().Sub(start)
			}
			recSum += res.REC
			virtual += res.Virtual
			row.Frames += res.FramesProcessed
			fmt.Fprintln(fp, res.Fingerprint())
		}
		if n := len(ds.Videos); n > 0 {
			row.REC = recSum / float64(n)
		}
		row.VirtualMS = float64(virtual) / float64(time.Millisecond)
		if virtual > 0 {
			row.FPS = float64(row.Frames) / virtual.Seconds()
		}
		row.WallMS = float64(wall) / float64(time.Millisecond)
		row.Fingerprint = hex.EncodeToString(fp.Sum(nil))
		out = append(out, row)
	}
	if len(out) > 0 && out[0].WallMS > 0 {
		for i := range out {
			if out[i].WallMS > 0 {
				out[i].WallSpeedup = out[0].WallMS / out[i].WallMS
			}
		}
	}
	return out
}

// ParallelBench runs RunParallelBench and prints the human table.
func (s *Suite) ParallelBench(w io.Writer, cfg ParallelBenchConfig) []ParallelBenchResult {
	rows := s.RunParallelBench(cfg)
	fmt.Fprintf(w, "Parallel window executor — %s, %d video(s), L=%d\n",
		cfg.Dataset, len(s.Dataset(cfg.Dataset).Videos), rows[0].WindowLen)
	fmt.Fprintf(w, "%-8s %10s %10s %12s %10s %10s  %s\n",
		"workers", "REC", "FPS(virt)", "virtual(ms)", "wall(ms)", "speedup", "fingerprint")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8d %10.4f %10.1f %12.1f %10.1f %10.2f  %s\n",
			r.Workers, r.REC, r.FPS, r.VirtualMS, r.WallMS, r.WallSpeedup, r.Fingerprint[:12])
	}
	return rows
}

// WriteParallelBench writes rows as line-delimited JSON, one object per
// line — the same NDJSON convention as tmergevet's -json findings.
func WriteParallelBench(w io.Writer, rows []ParallelBenchResult) error {
	enc := json.NewEncoder(w)
	for _, r := range rows {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}

// DecodeParallelBench reads rows written by WriteParallelBench (one JSON
// object per line; blank lines and rows of other experiments are
// skipped).
func DecodeParallelBench(r io.Reader) ([]ParallelBenchResult, error) {
	var out []ParallelBenchResult
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var row ParallelBenchResult
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			return nil, fmt.Errorf("bench: decoding row %q: %w", line, err)
		}
		if row.Experiment != parallelBenchExperiment {
			continue
		}
		out = append(out, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// CheckParallelBench validates one run's rows against themselves and an
// optional baseline, returning a list of human-readable failures (empty
// means the gate passes):
//
//   - every row of the run must carry the same fingerprint — Workers=1
//     and Workers=N diverging is a determinism break, the hardest
//     failure this gate exists to catch;
//   - each row is compared to the baseline row with the same pinned
//     identity (dataset, seed, videos, window length, workers):
//     fingerprints must match exactly, and virtual-time FPS may not
//     regress by more than maxRegression (a fraction, e.g. 0.15).
//
// Wall-clock fields are never gated here: they are machine-dependent.
// Baseline rows with no matching run row (and vice versa) fail too, so a
// silently narrowed benchmark cannot pass.
func CheckParallelBench(run, baseline []ParallelBenchResult, maxRegression float64) []string {
	var fails []string
	if len(run) == 0 {
		return []string{"no benchmark rows produced"}
	}
	for _, r := range run[1:] {
		if r.Fingerprint != run[0].Fingerprint {
			fails = append(fails, fmt.Sprintf(
				"determinism: Workers=%d fingerprint %.12s differs from Workers=%d fingerprint %.12s",
				r.Workers, r.Fingerprint, run[0].Workers, run[0].Fingerprint))
		}
	}
	if baseline == nil {
		return fails
	}
	key := func(r ParallelBenchResult) string {
		return fmt.Sprintf("%s/seed%d/videos%d/L%d/workers%d", r.Dataset, r.Seed, r.Videos, r.WindowLen, r.Workers)
	}
	base := make(map[string]ParallelBenchResult, len(baseline))
	for _, b := range baseline {
		base[key(b)] = b
	}
	matched := 0
	for _, r := range run {
		b, ok := base[key(r)]
		if !ok {
			fails = append(fails, fmt.Sprintf("baseline has no row for %s", key(r)))
			continue
		}
		matched++
		if r.Fingerprint != b.Fingerprint {
			fails = append(fails, fmt.Sprintf(
				"determinism: %s fingerprint %.12s differs from baseline %.12s",
				key(r), r.Fingerprint, b.Fingerprint))
		}
		if b.FPS > 0 && r.FPS < b.FPS*(1-maxRegression) {
			fails = append(fails, fmt.Sprintf(
				"throughput: %s FPS %.1f regressed more than %.0f%% from baseline %.1f",
				key(r), r.FPS, maxRegression*100, b.FPS))
		}
	}
	if matched < len(base) {
		fails = append(fails, fmt.Sprintf("run covered %d of %d baseline rows", matched, len(base)))
	}
	return fails
}
