package bench

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// smallHistBench is a seconds-scale shape exercising every moving part:
// sealing every 4 windows, compacting every 3 sealed segments, a tight
// 2×L horizon, and enough windows that cohorts age out repeatedly.
func smallHistBench(dir string) HistBenchConfig {
	return HistBenchConfig{
		Seed:                 7,
		Windows:              30,
		WindowLen:            20,
		TracksPerWindow:      8,
		BoxesPerTrack:        2,
		MergesPerWindow:      3,
		HotHorizon:           40,
		WindowsPerSegment:    4,
		CompactEvery:         3,
		AsOfProbes:           3,
		MaxHeapBytesPerTrack: 600,
		HeapGateMinTracks:    100_000,
	}
}

// TestHistBenchSmall runs the benchmark at test scale and pins its
// structural guarantees: equivalence at the final cut, a populated cold
// tier with zero rehydrations, compaction firing, the hot-cell gate
// passing, and the heap gate skipping loudly below the measurability
// floor.
func TestHistBenchSmall(t *testing.T) {
	cfg := smallHistBench(t.TempDir())
	cfg.Dir = t.TempDir()
	var buf bytes.Buffer
	row, statuses, err := HistBench(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fails := CheckHistBench([]HistBenchRow{row}, statuses, cfg.CompactEvery); len(fails) > 0 {
		t.Fatalf("check failed: %v", fails)
	}
	if !row.Match {
		t.Error("final AsOf answer diverged from the live view")
	}
	if row.Tracks != cfg.Windows*cfg.TracksPerWindow {
		t.Errorf("fed %d tracks, want %d", row.Tracks, cfg.Windows*cfg.TracksPerWindow)
	}
	if row.ColdTracks == 0 || row.Compactions == 0 {
		t.Errorf("cold=%d compactions=%d: the 2×L horizon and CompactEvery=3 must both fire", row.ColdTracks, row.Compactions)
	}
	if row.RetentionFrame < 0 {
		t.Error("compacted log reports no retention boundary")
	}
	if row.AsOfRows == 0 {
		t.Error("AsOf probes answered zero rows despite per-window merges")
	}
	if len(statuses) != 2 {
		t.Fatalf("got %d gate statuses, want 2", len(statuses))
	}
	byGate := map[string]GateStatus{}
	for _, st := range statuses {
		byGate[st.Gate] = st
	}
	if st := byGate[GateHistHotCells]; st.Status != GateOK {
		t.Errorf("hot-cells gate %s: %s", st.Status, st.Reason)
	}
	// 240 tracks is far below the floor: the heap gate must skip, not
	// silently pass, and say why.
	if st := byGate[GateHistHeapGrowth]; st.Status != GateSkipped || !strings.Contains(st.Reason, "floor") {
		t.Errorf("heap gate below the floor: status %s, reason %q", st.Status, st.Reason)
	}
	if row.HeapBytesPerTrack != -1 {
		t.Errorf("unmeasured heap growth reported %v, want -1", row.HeapBytesPerTrack)
	}
	if !strings.Contains(buf.String(), "gate hist_heap_growth skipped") {
		t.Error("skipped heap gate not echoed to the run log")
	}
}

// TestHistBenchDeterministic pins that two runs of the same
// configuration produce identical structural rows (wall fields excluded
// by construction: no Clock is injected).
func TestHistBenchDeterministic(t *testing.T) {
	cfg := smallHistBench("")
	run := func() HistBenchRow {
		c := cfg
		c.Dir = t.TempDir()
		row, _, err := RunHistBench(c)
		if err != nil {
			t.Fatal(err)
		}
		return row
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("runs diverged:\n%+v\n%+v", a, b)
	}
}

// TestHistBenchRoundTrip pins the NDJSON encode/decode pair and that
// DecodeHistBench skips rows of other experiments.
func TestHistBenchRoundTrip(t *testing.T) {
	cfg := smallHistBench("")
	cfg.Dir = t.TempDir()
	row, statuses, err := HistBench(io.Discard, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteHistBench(&buf, row, statuses); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	rows, err := DecodeHistBench(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0] != row {
		t.Fatalf("round trip: got %+v, want %+v", rows, row)
	}
	sts, err := DecodeGateStatuses(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != len(statuses) {
		t.Fatalf("gate rows: got %d, want %d", len(sts), len(statuses))
	}
}

// TestHistBenchRejectsBadConfig pins the validation errors.
func TestHistBenchRejectsBadConfig(t *testing.T) {
	cases := []func(*HistBenchConfig){
		func(c *HistBenchConfig) { c.Dir = "" },
		func(c *HistBenchConfig) { c.Windows = 0 },
		func(c *HistBenchConfig) { c.BoxesPerTrack = c.WindowLen + 1 },
		func(c *HistBenchConfig) { c.HotHorizon = c.WindowLen },
		func(c *HistBenchConfig) { c.MergesPerWindow = -1 },
	}
	for i, mutate := range cases {
		cfg := smallHistBench("")
		cfg.Dir = t.TempDir()
		mutate(&cfg)
		if _, _, err := RunHistBench(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}
