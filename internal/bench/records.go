package bench

import (
	"encoding/json"
	"io"
)

// Record is one machine-readable benchrunner experiment result: the
// experiment name, the suite configuration that produced it, and the
// runner's structured return value as the payload. benchrunner -json
// writes one Record per executed experiment as line-delimited JSON —
// the same NDJSON convention as tmergevet findings — so CI and
// trajectory tooling can consume results without scraping the human
// tables.
type Record struct {
	Experiment string  `json:"experiment"`
	Seed       uint64  `json:"seed"`
	Videos     int     `json:"videos"`
	Trials     int     `json:"trials"`
	ElapsedMS  float64 `json:"elapsed_ms,omitempty"`
	Payload    any     `json:"payload,omitempty"`
}

// WriteRecords writes records as line-delimited JSON, one per line.
func WriteRecords(w io.Writer, recs []Record) error {
	enc := json.NewEncoder(w)
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}
