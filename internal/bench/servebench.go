package bench

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/tmerge/tmerge/internal/core"
	"github.com/tmerge/tmerge/internal/dataset"
	"github.com/tmerge/tmerge/internal/device"
	"github.com/tmerge/tmerge/internal/ingest"
	"github.com/tmerge/tmerge/internal/reid"
	"github.com/tmerge/tmerge/internal/serve"
	"github.com/tmerge/tmerge/internal/serve/loadgen"
	"github.com/tmerge/tmerge/internal/track"
	"github.com/tmerge/tmerge/internal/video"
)

// ServeBenchConfig pins one serving-layer benchmark: a deterministic
// loadgen fleet pushed through a serve.Manager once per stream count,
// measuring aggregate throughput and per-window latency under pool
// contention.
type ServeBenchConfig struct {
	// Seed is the loadgen base seed; stream i runs at
	// loadgen.StreamSeed(Seed, i).
	Seed uint64
	// StreamCounts lists the fleet sizes to measure, one result row each.
	StreamCounts []int
	// Frames is the per-stream frame count.
	Frames int
	// WindowLen is the per-stream ingest window length.
	WindowLen int
	// Workers is the shared pool size; 0 takes the serve default.
	Workers int
	// TurnFrames bounds a scheduling turn; 0 takes the serve default.
	TurnFrames int
	// QueueCap bounds each stream's frame queue; 0 takes the serve
	// default.
	QueueCap int
	// TauMax is the TMerge iteration budget; 0 keeps the config default.
	TauMax int
	// K is the candidate proportion.
	K float64
	// Transport selects how frames reach the manager: "inproc" (default,
	// also the zero value) pushes straight into serve.Manager; "http"
	// stands up the ingress HTTP server on a loopback listener and pushes
	// NDJSON batches through ingress.Client, so the row measures the wire
	// protocol's cost against the in-process path. Windows, frames, and
	// the fingerprint are identical across transports — only the wall
	// metrics move.
	Transport string
	// BatchFrames is the ingress client's push batch size for the "http"
	// transport; 0 defaults to 8. Ignored for "inproc".
	BatchFrames int
	// Clock reads wall time for the FPS and latency measurements. It must
	// be injected by the caller — cmd/benchrunner is on the determinism
	// allowlist, this package is not. Nil disables wall timing (FPS and
	// latency fields stay 0); windows, frames, and the fingerprint remain
	// fully deterministic.
	Clock func() time.Time
}

// DefaultServeBench is the pinned configuration the CI bench job runs:
// the 10- and 100-stream fleets the tentpole names, small per-stream
// frame counts so the 100-stream row stays inside a CI minute.
func DefaultServeBench() ServeBenchConfig {
	return ServeBenchConfig{
		Seed:         1234,
		StreamCounts: []int{10, 100},
		Frames:       120,
		WindowLen:    40,
		Workers:      4,
		K:            DefaultK,
	}
}

// ServeBenchResult is one row of the serving benchmark, NDJSON-encoded
// alongside the other experiments' rows. FPS and the latency quantiles
// are wall-clock measurements and vary run to run; Windows, Frames, and
// Fingerprint are deterministic functions of the configuration.
type ServeBenchResult struct {
	Experiment string `json:"experiment"`
	// Transport is "inproc" or "http" — rows of both transports share one
	// NDJSON stream, so the comparison is a filter on this field.
	Transport       string  `json:"transport"`
	Seed            uint64  `json:"seed"`
	Streams         int     `json:"streams"`
	Frames          int     `json:"frames"` // total across the fleet
	WindowLen       int     `json:"window_len"`
	Workers         int     `json:"workers"`
	Windows         int     `json:"windows"`
	DegradedWindows int     `json:"degraded_windows"`
	WallMS          float64 `json:"wall_ms,omitempty"`
	// AggFPS is aggregate fleet throughput: total frames / wall seconds.
	AggFPS float64 `json:"agg_fps,omitempty"`
	// P50LatencyMS / P99LatencyMS are quantiles over every window's
	// closing-push wall latency.
	P50LatencyMS float64 `json:"p50_latency_ms,omitempty"`
	P99LatencyMS float64 `json:"p99_latency_ms,omitempty"`
	// LeakedGoroutines is the goroutine-count delta across the run after
	// shutdown; non-zero fails the bench gate.
	LeakedGoroutines int `json:"leaked_goroutines"`
	// Fingerprint chains the per-stream result fingerprints in stream
	// order; it must be identical at every stream count (each stream's
	// pipeline is isolated, so fleet size cannot change results).
	Fingerprint string `json:"fingerprint"`
}

// serveBenchExperiment tags the rows in mixed NDJSON streams.
const serveBenchExperiment = "servebench"

// RunServeBench measures the fleet at every configured stream count and
// returns one row per count, in StreamCounts order. Stream videos are
// generated before any timing; the wall window covers push, scheduling,
// processing, and the final flushes. ctx bounds the http-transport arm's
// network operations; the in-process arm ignores it.
func RunServeBench(ctx context.Context, cfg ServeBenchConfig) ([]ServeBenchResult, error) {
	if cfg.Frames <= 0 {
		cfg.Frames = 120
	}
	if cfg.WindowLen <= 0 {
		cfg.WindowLen = 40
	}
	if cfg.Transport == "" {
		cfg.Transport = "inproc"
	}
	if cfg.Transport != "inproc" && cfg.Transport != "http" {
		return nil, fmt.Errorf("bench: unknown servebench transport %q (want inproc or http)", cfg.Transport)
	}
	out := make([]ServeBenchResult, 0, len(cfg.StreamCounts))
	for _, n := range cfg.StreamCounts {
		var row ServeBenchResult
		var err error
		if cfg.Transport == "http" {
			row, err = runServeBenchHTTP(ctx, cfg, n)
		} else {
			row, err = runServeBenchOnce(cfg, n)
		}
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

func runServeBenchOnce(cfg ServeBenchConfig, nStreams int) (ServeBenchResult, error) {
	row := ServeBenchResult{
		Experiment: serveBenchExperiment,
		Transport:  "inproc",
		Seed:       cfg.Seed,
		Streams:    nStreams,
		WindowLen:  cfg.WindowLen,
		Workers:    cfg.Workers,
	}
	streams, err := loadgen.Generate(loadgen.Config{Seed: cfg.Seed, Streams: nStreams, Frames: cfg.Frames})
	if err != nil {
		return row, err
	}

	goroutinesBefore := runtime.NumGoroutine()
	var latMu sync.Mutex
	var lats []time.Duration
	m := serve.NewManager(serve.Config{
		Workers:         cfg.Workers,
		TurnFrames:      cfg.TurnFrames,
		DefaultQueueCap: cfg.QueueCap,
		Now:             cfg.Clock,
		OnWindow: func(_ string, _ ingest.WindowResult, lat time.Duration) {
			latMu.Lock()
			lats = append(lats, lat)
			latMu.Unlock()
		},
	})

	for _, s := range streams {
		seed := s.Seed
		spec := serve.StreamSpec{
			ID: s.ID,
			Ingest: ingest.Config{
				WindowLen: cfg.WindowLen,
				K:         cfg.K,
				Algorithm: core.NewTMerge(serveBenchTMerge(cfg, seed)),
			},
			Pipeline: func() (*track.Engine, *reid.Oracle) {
				model := reid.NewModel(seed^0x5EED, dataset.AppearanceDim)
				return track.Tracktor(), reid.NewOracle(model, device.NewCPU(device.DefaultCPU))
			},
		}
		if err := m.Register(spec); err != nil {
			m.Shutdown()
			return row, fmt.Errorf("bench: register %s: %w", s.ID, err)
		}
	}

	var start time.Time
	if cfg.Clock != nil {
		start = cfg.Clock()
	}
	var wg sync.WaitGroup
	errCh := make(chan error, nStreams)
	for _, s := range streams {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			for f, dets := range s.Video.Detections {
				if err := m.Push(s.ID, ingestFrameIndex(f), dets); err != nil {
					errCh <- fmt.Errorf("bench: push %s frame %d: %w", s.ID, f, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		m.Shutdown()
		return row, err
	}

	fp := sha256.New()
	for _, s := range streams {
		res, err := m.Finish(s.ID)
		if err != nil {
			m.Shutdown()
			return row, fmt.Errorf("bench: finish %s: %w", s.ID, err)
		}
		row.Frames += res.FramesProcessed
		row.Windows += len(res.Windows)
		row.DegradedWindows += res.DegradedWindows
		fmt.Fprintln(fp, res.Fingerprint())
	}
	var wall time.Duration
	if cfg.Clock != nil {
		wall = cfg.Clock().Sub(start)
	}
	m.Shutdown()
	row.Fingerprint = hex.EncodeToString(fp.Sum(nil))
	row.LeakedGoroutines = leakedGoroutines(goroutinesBefore)

	if wall > 0 {
		row.WallMS = float64(wall) / float64(time.Millisecond)
		row.AggFPS = float64(row.Frames) / wall.Seconds()
	}
	latMu.Lock()
	defer latMu.Unlock()
	if len(lats) > 0 && cfg.Clock != nil {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		row.P50LatencyMS = float64(quantile(lats, 0.50)) / float64(time.Millisecond)
		row.P99LatencyMS = float64(quantile(lats, 0.99)) / float64(time.Millisecond)
	}
	return row, nil
}

// serveBenchTMerge is the per-stream algorithm configuration.
func serveBenchTMerge(cfg ServeBenchConfig, seed uint64) core.TMergeConfig {
	tc := core.DefaultTMergeConfig(seed)
	if cfg.TauMax > 0 {
		tc.TauMax = cfg.TauMax
	}
	return tc
}

// ingestFrameIndex converts a loop index to a frame index.
func ingestFrameIndex(f int) video.FrameIndex { return video.FrameIndex(f) }

// quantile returns the q-quantile of sorted latencies (nearest-rank).
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// leakedGoroutines polls briefly for the goroutine count to return to
// its before-value, reporting the residual delta (0 when clean). The
// grace window absorbs goroutines that are mid-exit at shutdown.
func leakedGoroutines(before int) int {
	// Bounded poll (~2s at 5ms steps) rather than a wall-clock deadline,
	// keeping the bench layer free of time.Now.
	for i := 0; ; i++ {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before {
			return 0
		}
		if i >= 400 {
			return now - before
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// ServeBench runs RunServeBench and prints the human table.
func ServeBench(ctx context.Context, w io.Writer, cfg ServeBenchConfig) ([]ServeBenchResult, error) {
	rows, err := RunServeBench(ctx, cfg)
	if err != nil {
		return nil, err
	}
	transport := cfg.Transport
	if transport == "" {
		transport = "inproc"
	}
	fmt.Fprintf(w, "Serving layer (%s) — %d frames/stream, L=%d, %d workers\n",
		transport, cfg.Frames, cfg.WindowLen, cfg.Workers)
	fmt.Fprintf(w, "%-8s %-8s %8s %8s %10s %10s %12s %12s %6s  %s\n",
		"streams", "via", "frames", "windows", "wall(ms)", "aggFPS", "p50 lat(ms)", "p99 lat(ms)", "leaks", "fingerprint")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8d %-8s %8d %8d %10.1f %10.1f %12.3f %12.3f %6d  %s\n",
			r.Streams, r.Transport, r.Frames, r.Windows, r.WallMS, r.AggFPS, r.P50LatencyMS, r.P99LatencyMS, r.LeakedGoroutines, r.Fingerprint[:12])
	}
	return rows, nil
}

// WriteServeBench writes rows as line-delimited JSON, one object per
// line, the repo-wide NDJSON convention.
func WriteServeBench(w io.Writer, rows []ServeBenchResult) error {
	enc := json.NewEncoder(w)
	for _, r := range rows {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}

// DecodeServeBench reads rows written by WriteServeBench (blank lines
// and rows of other experiments are skipped).
func DecodeServeBench(r io.Reader) ([]ServeBenchResult, error) {
	var out []ServeBenchResult
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var row ServeBenchResult
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			return nil, fmt.Errorf("bench: decoding row %q: %w", line, err)
		}
		if row.Experiment != serveBenchExperiment {
			continue
		}
		out = append(out, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// CheckServeBench validates one run's rows: per-stream isolation means
// fleet size must not change any stream's result, so the first
// min(streams) fingerprints must agree… which cannot be checked across
// rows of different sizes from the chained digest alone. What the gate
// can and does check: every row produced windows, processed the full
// frame count, and leaked no goroutines.
func CheckServeBench(rows []ServeBenchResult, frames int) []string {
	var fails []string
	if len(rows) == 0 {
		return []string{"no servebench rows produced"}
	}
	for _, r := range rows {
		if want := r.Streams * frames; r.Frames != want {
			fails = append(fails, fmt.Sprintf("streams=%d processed %d frames, want %d", r.Streams, r.Frames, want))
		}
		if r.Windows == 0 {
			fails = append(fails, fmt.Sprintf("streams=%d closed no windows", r.Streams))
		}
		if r.LeakedGoroutines != 0 {
			fails = append(fails, fmt.Sprintf("streams=%d leaked %d goroutines at shutdown", r.Streams, r.LeakedGoroutines))
		}
	}
	return fails
}
