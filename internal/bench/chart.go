package bench

import (
	"io"

	"github.com/tmerge/tmerge/internal/asciichart"
)

// printRecFPSChart renders a set of REC-FPS curves as a text scatter plot
// (FPS on a log x-axis, REC on y), mirroring the paper's figure style.
func printRecFPSChart(w io.Writer, title string, curves []Curve) {
	c := asciichart.Chart{
		Title:  title,
		XLabel: "FPS",
		YLabel: "REC",
		LogX:   true,
		Width:  64,
		Height: 14,
	}
	for _, cv := range curves {
		var xs, ys []float64
		for _, p := range cv.Points {
			if p.FPS > 0 {
				xs = append(xs, p.FPS)
				ys = append(ys, p.REC)
			}
		}
		if len(xs) > 0 {
			// Error is impossible here: lengths are equal and nonzero.
			_ = c.Add(cv.Name, xs, ys)
		}
	}
	c.Fprint(w)
}

// printRecKChart renders REC-K curves (K on x, REC on y).
func printRecKChart(w io.Writer, title string, series map[string][]Point) {
	c := asciichart.Chart{
		Title:  title,
		XLabel: "K",
		YLabel: "REC",
		Width:  64,
		Height: 12,
	}
	for _, name := range Datasets {
		pts, ok := series[name]
		if !ok {
			continue
		}
		var xs, ys []float64
		for _, p := range pts {
			xs = append(xs, p.Param)
			ys = append(ys, p.REC)
		}
		if len(xs) > 0 {
			_ = c.Add(name, xs, ys)
		}
	}
	c.Fprint(w)
}
