package bench

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestGateStatusJSONRoundTrip(t *testing.T) {
	ok := NewGateStatus("parallel_windows_wall_speedup", GateOK, "2.10x wall speedup at 4 workers (floor 1.7x)", 4)
	ok.Workers = 4
	ok.Speedup = 2.1
	ok.MinSpeedup = 1.7
	skipped := NewGateStatus("parallel_windows_wall_speedup_2w", GateSkipped, "1 CPU(s) < 2 workers", 1)
	skipped.Workers = 2
	skipped.MinSpeedup = 1.0
	failed := NewGateStatus("parallel_windows_wall_speedup", GateFailed, "1.31x wall speedup at 4 workers, gate requires 1.7x", 4)
	failed.Workers = 4
	failed.Speedup = 1.31
	failed.MinSpeedup = 1.7
	rows := []GateStatus{ok, skipped, failed}

	var buf bytes.Buffer
	if err := WriteGateStatuses(&buf, rows); err != nil {
		t.Fatal(err)
	}
	// One object per line, no surrounding array — the NDJSON convention.
	if got := strings.Count(strings.TrimSpace(buf.String()), "\n"); got != 2 {
		t.Fatalf("expected 3 lines, got %d newlines in %q", got+1, buf.String())
	}
	for _, field := range []string{`"workers":4`, `"speedup":2.1`, `"min_speedup":1.7`} {
		if !strings.Contains(buf.String(), field) {
			t.Errorf("encoded rows missing %s:\n%s", field, buf.String())
		}
	}
	back, err := DecodeGateStatuses(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, back) {
		t.Fatalf("round trip mismatch:\nwrote %+v\nread  %+v", rows, back)
	}
}

func TestDecodeGateStatusesSkipsForeignRows(t *testing.T) {
	in := strings.NewReader(`
{"experiment":"parallel_windows","dataset":"pathtrack","workers":1}

{"experiment":"gate_status","gate":"parallel_windows_wall_speedup","status":"ok","num_cpu":4,"workers":4,"speedup":2.05,"min_speedup":1.7}
`)
	rows, err := DecodeGateStatuses(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Gate != "parallel_windows_wall_speedup" {
		t.Fatalf("got %+v, want the single gate_status row", rows)
	}
	if rows[0].Workers != 4 || rows[0].Speedup != 2.05 || rows[0].MinSpeedup != 1.7 {
		t.Fatalf("threshold fields lost in decode: %+v", rows[0])
	}
}
