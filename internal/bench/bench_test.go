package bench

import (
	"bytes"
	"strings"
	"testing"

	"github.com/tmerge/tmerge/internal/core"
)

func testSuite() *Suite {
	s := NewSuite(42)
	s.VideosPerDataset = 1
	s.Trials = 1 // shape tests don't need the paper's trial averaging
	return s
}

func TestFPSAtREC(t *testing.T) {
	c := Curve{Points: []Point{
		{FPS: 100, REC: 0.5},
		{FPS: 50, REC: 0.8},
		{FPS: 10, REC: 0.95},
	}}
	if fps, ok := c.FPSAtREC(0.8); !ok || fps != 50 {
		t.Errorf("exact = %v %v", fps, ok)
	}
	// Interpolation midway between 0.8 and 0.95.
	if fps, ok := c.FPSAtREC(0.875); !ok || fps != 30 {
		t.Errorf("interpolated = %v %v", fps, ok)
	}
	if _, ok := c.FPSAtREC(0.99); ok {
		t.Error("unreachable REC must report !ok")
	}
	// Below the lowest point: clamps to the first reaching point.
	if fps, ok := c.FPSAtREC(0.1); !ok || fps != 100 {
		t.Errorf("low target = %v %v", fps, ok)
	}
}

func TestTableFprint(t *testing.T) {
	tab := &Table{
		Title:  "demo",
		Header: []string{"name", "value"},
	}
	tab.AddRow("alpha", "1")
	tab.AddRow("beta-long", "2")
	tab.AddNote("a note %d", 7)
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"=== demo ===", "alpha", "beta-long", "note: a note 7", "name"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSuiteDatasetCachingAndTruncation(t *testing.T) {
	s := testSuite()
	a := s.Dataset("kitti")
	b := s.Dataset("kitti")
	if a != b {
		t.Error("datasets must be cached")
	}
	if len(a.Videos) != 1 {
		t.Errorf("truncation failed: %d videos", len(a.Videos))
	}
}

func TestSuiteUnknownDatasetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	testSuite().Dataset("nope")
}

func TestSuiteTracksCached(t *testing.T) {
	s := testSuite()
	tr := defaultTracker()
	a := s.Tracks("kitti", tr, 0)
	b := s.Tracks("kitti", tr, 0)
	if a != b {
		t.Error("tracker outputs must be cached")
	}
}

func TestRunAggregates(t *testing.T) {
	s := testSuite()
	r := s.Run("kitti", defaultTracker(), newTestTMerge(s, 2000), CPU, DefaultK)
	if r.REC < 0 || r.REC > 1 {
		t.Errorf("REC = %v", r.REC)
	}
	if r.FPS <= 0 || r.Frames <= 0 || r.Virtual <= 0 {
		t.Errorf("run result = %+v", r)
	}
	if r.Stats.Distances == 0 {
		t.Error("no oracle work recorded")
	}
}

func TestFig11ShapesOnKitti(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	s := testSuite()
	var buf bytes.Buffer
	rows := s.Fig11(&buf)
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Rate <= 0 {
			t.Errorf("%s rate = %v", r.Tracker, r.Rate)
		}
		if r.ResidualRate > r.Rate {
			t.Errorf("%s: TMerge increased the rate (%v -> %v)", r.Tracker, r.Rate, r.ResidualRate)
		}
	}
	// Fragmentation ordering (Figure 11's qualitative claim): SORT (first
	// row) fragments at least as much as Tracktor (last row).
	if !(rows[0].Rate >= rows[len(rows)-1].Rate) {
		t.Errorf("SORT rate %v below Tracktor rate %v", rows[0].Rate, rows[len(rows)-1].Rate)
	}
}

func TestFig13Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	s := testSuite()
	var buf bytes.Buffer
	r := s.Fig13(&buf)
	if r.CountAfter < r.CountBefore {
		t.Errorf("Count recall fell: %v -> %v", r.CountBefore, r.CountAfter)
	}
	if r.CoOccurAfter < r.CoOccurBefore {
		t.Errorf("CoOccur recall fell: %v -> %v", r.CoOccurBefore, r.CoOccurAfter)
	}
}

func TestFig12Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	s := testSuite()
	var buf bytes.Buffer
	r := s.Fig12(&buf)
	if r.After.IDF1 < r.Before.IDF1 {
		t.Errorf("IDF1 fell: %v -> %v", r.Before.IDF1, r.After.IDF1)
	}
	if r.Before.IDF1 <= 0 || r.After.IDF1 > 1 {
		t.Errorf("IDF1 out of range: %+v", r)
	}
}

func TestFig9WindowSweepShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	s := testSuite()
	var buf bytes.Buffer
	out := s.Fig9(&buf)
	for _, name := range []string{"BL", "TMerge"} {
		pts := out[name]
		if len(pts) != 4 {
			t.Fatalf("%s has %d points", name, len(pts))
		}
		// The paper's claim: L >= 2*Lmax is insensitive; L=1000 < 2*Lmax
		// must not beat the L=2000 setting meaningfully.
		if pts[0].REC > pts[1].REC+0.05 {
			t.Errorf("%s: REC at L=1000 (%v) above L=2000 (%v)", name, pts[0].REC, pts[1].REC)
		}
	}
}

func TestAblationsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	s := testSuite()
	var buf bytes.Buffer
	out := s.Ablations(&buf)
	for _, group := range []string{"feature-cache", "posterior", "ulb-radius", "batch-size"} {
		rows, ok := out[group]
		if !ok || len(rows) < 2 {
			t.Fatalf("group %s missing or too small", group)
		}
		for _, r := range rows {
			if r.REC < 0 || r.REC > 1 || r.Distances <= 0 {
				t.Errorf("%s/%s: implausible row %+v", group, r.Variant, r)
			}
		}
	}
	// The cache must reduce extractions.
	fc := out["feature-cache"]
	if fc[0].Extractions >= fc[1].Extractions {
		t.Errorf("cache on (%d extractions) not below cache off (%d)",
			fc[0].Extractions, fc[1].Extractions)
	}
	// Larger batches must amortise launch cost on the accelerator.
	bs := out["batch-size"]
	if bs[0].ModeledSec <= bs[len(bs)-1].ModeledSec {
		t.Errorf("B=1 (%.2fs) not slower than B=1000 (%.2fs)",
			bs[0].ModeledSec, bs[len(bs)-1].ModeledSec)
	}
}

func TestRunTrialsParallelMatchesSerial(t *testing.T) {
	s := testSuite()
	s.Trials = 3
	mk := func(trial int) core.Algorithm {
		cfg := core.DefaultTMergeConfig(uint64(trial) * 31)
		cfg.TauMax = 1000
		return core.NewTMerge(cfg)
	}
	s.Workers = 1
	serial := s.RunTrials("kitti", defaultTracker(), mk, CPU, DefaultK)
	s.Workers = 3
	parallel := s.RunTrials("kitti", defaultTracker(), mk, CPU, DefaultK)
	if serial.REC != parallel.REC {
		t.Errorf("parallel REC %v != serial %v", parallel.REC, serial.REC)
	}
	if serial.FPS != parallel.FPS {
		t.Errorf("parallel FPS %v != serial %v", parallel.FPS, serial.FPS)
	}
}

func TestAdaptiveTauScalesWithUniverse(t *testing.T) {
	s := testSuite()
	a := &adaptiveTau{cfg: core.DefaultTMergeConfig(1)}
	if a.Name() != "TMerge" {
		t.Errorf("name = %s", a.Name())
	}
	// On a small universe the budget caps at the exhaustive cost and the
	// selection contract holds.
	ds := s.Dataset("kitti")
	ts := s.Tracks("kitti", defaultTracker(), 0)
	ps := s.pairSets(ts, ds.Videos[0].NumFrames, ds.WindowLen)[0]
	oracle := newOracleForTest(s)
	sel := a.Select(ps, oracle, DefaultK)
	if len(sel) != ps.TopCount(DefaultK) {
		t.Errorf("selection size = %d", len(sel))
	}
	if oracle.Stats().Distances == 0 {
		t.Error("no work done")
	}
}

func TestPrintChartsSmoke(t *testing.T) {
	var buf bytes.Buffer
	printRecFPSChart(&buf, "demo", []Curve{
		{Name: "a", Points: []Point{{FPS: 10, REC: 0.5}, {FPS: 100, REC: 0.9}}},
		{Name: "empty"},
	})
	if !strings.Contains(buf.String(), "legend") {
		t.Error("chart output missing legend")
	}
	buf.Reset()
	printRecKChart(&buf, "reck", map[string][]Point{
		"mot17": {{Param: 0.01, REC: 0.5}, {Param: 0.05, REC: 0.9}},
	})
	if !strings.Contains(buf.String(), "mot17") {
		t.Error("REC-K chart missing series")
	}
}
