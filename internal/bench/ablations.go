package bench

import (
	"fmt"
	"io"

	"github.com/tmerge/tmerge/internal/core"
	"github.com/tmerge/tmerge/internal/motmetrics"
	"github.com/tmerge/tmerge/internal/reid"
	"github.com/tmerge/tmerge/internal/video"
)

// AblationRow is one configuration's outcome in an ablation table.
type AblationRow struct {
	Variant     string
	REC         float64
	Distances   int64
	Extractions int64
	ModeledSec  float64
}

// Ablations runs the design-choice ablations DESIGN.md §5 calls out on
// the MOT-17 pair universes: feature cache on/off, posterior construction
// (fractional vs literal Bernoulli vs Gaussian), ULB radius variant, and
// accelerator batch-size sweep. Results are averaged over the dataset's
// videos and the suite's trial count.
func (s *Suite) Ablations(w io.Writer) map[string][]AblationRow {
	ds := s.Dataset("mot17")
	tr := defaultTracker()
	type universe struct {
		ps    *video.PairSet
		truth map[video.PairKey]bool
	}
	var us []universe
	for i, v := range ds.Videos {
		ts := s.Tracks("mot17", tr, i)
		for _, ps := range s.pairSets(ts, v.NumFrames, ds.WindowLen) {
			us = append(us, universe{ps: ps, truth: motmetrics.PolyonymousPairs(ps)})
		}
	}
	trials := s.Trials
	if trials < 1 {
		trials = 3
	}

	// run evaluates one configuration across universes and trials.
	run := func(mk func(trial int) core.Algorithm, kind DeviceKind, cacheOn bool) AblationRow {
		var row AblationRow
		n := 0
		for trial := 0; trial < trials; trial++ {
			algo := mk(trial)
			for _, u := range us {
				oracle := reid.NewOracle(s.model, s.newDevice(kind))
				oracle.SetCacheEnabled(cacheOn)
				sel := algo.Select(u.ps, oracle, DefaultK)
				row.REC += video.Recall(sel, u.truth)
				st := oracle.Stats()
				row.Distances += st.Distances
				row.Extractions += st.Extractions
				row.ModeledSec += oracle.Device().Clock().Elapsed().Seconds()
				n++
			}
		}
		row.REC /= float64(n)
		row.Distances /= int64(trials)
		row.Extractions /= int64(trials)
		row.ModeledSec /= float64(trials)
		return row
	}
	tmerge := func(mutate func(*core.TMergeConfig)) func(trial int) core.Algorithm {
		return func(trial int) core.Algorithm {
			cfg := core.DefaultTMergeConfig(s.Seed + 31 + uint64(trial)*977)
			if mutate != nil {
				mutate(&cfg)
			}
			return core.NewTMerge(cfg)
		}
	}

	out := make(map[string][]AblationRow)
	add := func(group, variant string, row AblationRow) {
		row.Variant = variant
		out[group] = append(out[group], row)
	}

	// 1. Feature cache (the paper's reuse optimisation).
	add("feature-cache", "cache on", run(tmerge(nil), CPU, true))
	add("feature-cache", "cache off", run(tmerge(nil), CPU, false))

	// 2. Posterior construction.
	add("posterior", "fractional (default)", run(tmerge(nil), CPU, true))
	add("posterior", "literal Bernoulli", run(tmerge(func(c *core.TMergeConfig) {
		c.LiteralBernoulli = true
		c.LiteralRanking = true
	}), CPU, true))
	add("posterior", "Gaussian", run(tmerge(func(c *core.TMergeConfig) {
		c.GaussianPosterior = true
	}), CPU, true))

	// 3. ULB radius.
	add("ulb-radius", "variance-aware (default)", run(tmerge(nil), CPU, true))
	add("ulb-radius", "literal Hoeffding", run(tmerge(func(c *core.TMergeConfig) {
		c.ULBHoeffding = true
	}), CPU, true))
	add("ulb-radius", "ULB off", run(tmerge(func(c *core.TMergeConfig) {
		c.UseULB = false
	}), CPU, true))

	// 4. Batch size beyond the paper's 10/100.
	for _, B := range []int{1, 10, 100, 1000} {
		B := B
		add("batch-size", fmt.Sprintf("B=%d", B), run(tmerge(func(c *core.TMergeConfig) {
			c.Batch = B
		}), Accel, true))
	}

	for _, group := range []string{"feature-cache", "posterior", "ulb-radius", "batch-size"} {
		t := &Table{
			Title:  "Ablation: " + group,
			Header: []string{"variant", "REC", "distances", "extractions", "modeled (s)"},
		}
		for _, r := range out[group] {
			t.AddRow(r.Variant, f3(r.REC), fmt.Sprint(r.Distances), fmt.Sprint(r.Extractions), f2(r.ModeledSec))
		}
		t.Fprint(w)
	}
	return out
}
