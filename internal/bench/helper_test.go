package bench

import (
	"github.com/tmerge/tmerge/internal/core"
	"github.com/tmerge/tmerge/internal/device"
	"github.com/tmerge/tmerge/internal/reid"
)

// newTestTMerge builds a TMerge instance with a reduced budget for tests.
func newTestTMerge(s *Suite, tau int) *core.TMerge {
	cfg := core.DefaultTMergeConfig(s.Seed + 1)
	cfg.TauMax = tau
	return core.NewTMerge(cfg)
}

// newOracleForTest builds a fresh CPU oracle against the suite's model.
func newOracleForTest(s *Suite) *reid.Oracle {
	return reid.NewOracle(s.Model(), device.NewCPU(device.DefaultCPU))
}
