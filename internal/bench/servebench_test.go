package bench

import (
	"bytes"
	"context"
	"testing"
)

// TestServeBenchDeterministicAndClean pins the deterministic half of
// the servebench row (windows, frames, fingerprint) across repeated
// runs and fleet sizes, and that the gate passes a clean run.
func TestServeBenchDeterministicAndClean(t *testing.T) {
	cfg := ServeBenchConfig{
		Seed:         55,
		StreamCounts: []int{2, 3},
		Frames:       80,
		WindowLen:    40,
		Workers:      2,
		K:            DefaultK,
	}
	rows, err := RunServeBench(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	if fails := CheckServeBench(rows, cfg.Frames); len(fails) > 0 {
		t.Fatalf("gate failed a clean run: %v", fails)
	}

	again, err := RunServeBench(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if rows[i].Fingerprint != again[i].Fingerprint {
			t.Fatalf("streams=%d fingerprint not reproducible: %s vs %s",
				rows[i].Streams, rows[i].Fingerprint, again[i].Fingerprint)
		}
		if rows[i].Windows != again[i].Windows || rows[i].Frames != again[i].Frames {
			t.Fatalf("streams=%d deterministic fields drifted between runs", rows[i].Streams)
		}
	}

	// NDJSON round trip, mixed with a foreign row that must be skipped.
	var buf bytes.Buffer
	buf.WriteString(`{"experiment":"parallel_windows","workers":1}` + "\n")
	if err := WriteServeBench(&buf, rows); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeServeBench(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(rows) {
		t.Fatalf("decoded %d rows, want %d", len(decoded), len(rows))
	}
	for i := range rows {
		if decoded[i] != rows[i] {
			t.Fatalf("row %d did not survive the NDJSON round trip: %+v vs %+v", i, decoded[i], rows[i])
		}
	}
}

// TestServeBenchHTTPTransportEquivalent pins the transport contract:
// pushing the fleet over the loopback NDJSON ingress must leave every
// deterministic column — windows, frames, fingerprint — identical to
// the in-process run, so the two rows differ only in wall metrics.
func TestServeBenchHTTPTransportEquivalent(t *testing.T) {
	cfg := ServeBenchConfig{
		Seed:         55,
		StreamCounts: []int{3},
		Frames:       80,
		WindowLen:    40,
		Workers:      2,
		K:            DefaultK,
	}
	inproc, err := RunServeBench(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Transport = "http"
	overWire, err := RunServeBench(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fails := CheckServeBench(overWire, cfg.Frames); len(fails) > 0 {
		t.Fatalf("gate failed the http run: %v", fails)
	}
	a, b := inproc[0], overWire[0]
	if a.Transport != "inproc" || b.Transport != "http" {
		t.Fatalf("transport tags %q/%q, want inproc/http", a.Transport, b.Transport)
	}
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("transport changed results: inproc %s != http %s", a.Fingerprint, b.Fingerprint)
	}
	if a.Frames != b.Frames || a.Windows != b.Windows || a.DegradedWindows != b.DegradedWindows {
		t.Fatalf("deterministic columns diverged: %+v vs %+v", a, b)
	}

	cfg.Transport = "carrier-pigeon"
	if _, err := RunServeBench(context.Background(), cfg); err == nil {
		t.Fatal("unknown transport accepted")
	}
}

// TestCheckServeBenchFailsDirtyRows pins the gate's failure modes.
func TestCheckServeBenchFailsDirtyRows(t *testing.T) {
	if fails := CheckServeBench(nil, 10); len(fails) != 1 {
		t.Fatalf("empty run: %v", fails)
	}
	rows := []ServeBenchResult{{
		Experiment: serveBenchExperiment, Streams: 2, Frames: 19, Windows: 0, LeakedGoroutines: 1,
	}}
	fails := CheckServeBench(rows, 10)
	if len(fails) != 3 {
		t.Fatalf("want 3 failures (frames, windows, leak), got %v", fails)
	}
}
