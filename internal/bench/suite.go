// Package bench is the experiment harness: for every table and figure in
// the paper's evaluation (§V) it provides a runner that regenerates the
// corresponding rows or curve series on the synthetic datasets, printing a
// plain-text table and returning the structured values so tests can assert
// the expected shapes (who wins, by what factor, where crossovers fall).
package bench

import (
	"fmt"
	"sync"
	"time"

	"github.com/tmerge/tmerge/internal/core"
	"github.com/tmerge/tmerge/internal/dataset"
	"github.com/tmerge/tmerge/internal/device"
	"github.com/tmerge/tmerge/internal/reid"
	"github.com/tmerge/tmerge/internal/track"
	"github.com/tmerge/tmerge/internal/video"
)

// DefaultK is the candidate-set proportion used throughout the evaluation
// (§V-A: "we set K = 5%").
const DefaultK = 0.05

// Suite owns the shared state of an experiment run: the datasets
// (generated lazily and cached), the tracker outputs (cached per dataset
// and tracker), and the ReID model.
type Suite struct {
	// Seed drives dataset generation and all algorithm randomness.
	Seed uint64
	// VideosPerDataset truncates each dataset to at most this many videos
	// (0 keeps the profile's full size). Sweeps use it to bound runtime.
	VideosPerDataset int
	// Trials is how many independent seeds each stochastic algorithm is
	// averaged over, mirroring the paper's "average of 10 independent
	// trials" (§V-B). Deterministic algorithms (BL) always run once.
	// Values < 1 default to 3.
	Trials int
	// Workers parallelises RunTrials across trials. Each trial builds its
	// own algorithm instance, oracle, and device, so trials are fully
	// independent; results are reduced in trial order, keeping aggregates
	// deterministic. Values < 1 run serially.
	Workers int

	model    *reid.Model
	datasets map[string]*dataset.Dataset
	tracked  map[string]*video.TrackSet
}

// NewSuite returns a Suite with the given seed.
func NewSuite(seed uint64) *Suite {
	return &Suite{
		Seed:     seed,
		model:    reid.NewModel(seed^0x5EED, dataset.AppearanceDim),
		datasets: make(map[string]*dataset.Dataset),
		tracked:  make(map[string]*video.TrackSet),
	}
}

// Model returns the suite's ReID model.
func (s *Suite) Model() *reid.Model { return s.model }

// Dataset returns (generating and caching on first use) the named dataset:
// "mot17", "kitti", or "pathtrack".
func (s *Suite) Dataset(name string) *dataset.Dataset {
	if ds, ok := s.datasets[name]; ok {
		return ds
	}
	p, ok := dataset.Profiles(s.Seed)[name]
	if !ok {
		panic(fmt.Sprintf("bench: unknown dataset %q", name))
	}
	if s.VideosPerDataset > 0 && p.NumVideos > s.VideosPerDataset {
		p.NumVideos = s.VideosPerDataset
	}
	ds, err := p.Generate()
	if err != nil {
		panic(err)
	}
	s.datasets[name] = ds
	return ds
}

// Tracks returns (computing and caching) the tracker's output on video i
// of the named dataset.
func (s *Suite) Tracks(dsName string, tr track.Tracker, i int) *video.TrackSet {
	key := fmt.Sprintf("%s/%s/%d", dsName, tr.Name(), i)
	if ts, ok := s.tracked[key]; ok {
		return ts
	}
	ds := s.Dataset(dsName)
	ts := tr.Track(ds.Videos[i].Detections)
	s.tracked[key] = ts
	return ts
}

// RunResult aggregates one (dataset, tracker, algorithm, device) run over
// all the dataset's videos.
type RunResult struct {
	Algorithm string
	REC       float64       // mean per-video recall
	FPS       float64       // total frames / total virtual time
	Virtual   time.Duration // total modeled device time
	Frames    int
	Stats     reid.Stats
}

// DeviceKind selects the execution substrate for a run.
type DeviceKind int

// Device kinds.
const (
	CPU DeviceKind = iota
	Accel
)

func (s *Suite) newDevice(kind DeviceKind) device.Device {
	if kind == Accel {
		return device.NewAccelerator(device.DefaultAccelerator, 0)
	}
	return device.NewCPU(device.DefaultCPU)
}

// Run executes algo over every video of the dataset with the given tracker
// and device, using the dataset's own window length, and aggregates.
func (s *Suite) Run(dsName string, tr track.Tracker, algo core.Algorithm, kind DeviceKind, K float64) RunResult {
	return s.runOnce(dsName, tr, algo, kind, K)
}

// RunTrials averages Run over independent algorithm instances built by mk
// with distinct trial indices (stochastic algorithms derive their seeds
// from the index). REC and FPS are averaged; work counters accumulate the
// first trial's values (the trials are statistically identical).
func (s *Suite) RunTrials(dsName string, tr track.Tracker, mk func(trial int) core.Algorithm, kind DeviceKind, K float64) RunResult {
	trials := s.Trials
	if trials < 1 {
		trials = 3
	}
	// Warm the dataset and tracker caches before any parallel section:
	// Suite's caches are not safe for concurrent mutation.
	ds := s.Dataset(dsName)
	for i := range ds.Videos {
		s.Tracks(dsName, tr, i)
	}

	results := make([]RunResult, trials)
	workers := s.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > trials {
		workers = trials
	}
	if workers == 1 {
		for trial := 0; trial < trials; trial++ {
			results[trial] = s.runOnce(dsName, tr, mk(trial), kind, K)
		}
	} else {
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for trial := 0; trial < trials; trial++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(trial int) {
				defer wg.Done()
				defer func() { <-sem }()
				results[trial] = s.runOnce(dsName, tr, mk(trial), kind, K)
			}(trial)
		}
		wg.Wait()
	}

	out := results[0]
	var fpsSum, recSum float64
	for _, r := range results {
		fpsSum += r.FPS
		recSum += r.REC
	}
	out.FPS = fpsSum / float64(trials)
	out.REC = recSum / float64(trials)
	return out
}

func (s *Suite) runOnce(dsName string, tr track.Tracker, algo core.Algorithm, kind DeviceKind, K float64) RunResult {
	ds := s.Dataset(dsName)
	out := RunResult{Algorithm: algo.Name()}
	var recSum float64
	for i, v := range ds.Videos {
		ts := s.Tracks(dsName, tr, i)
		oracle := reid.NewOracle(s.model, s.newDevice(kind))
		res := core.RunPipeline(ts, v.NumFrames, oracle, core.PipelineConfig{
			WindowLen: ds.WindowLen,
			K:         K,
			Algorithm: algo,
		})
		recSum += res.REC
		out.Virtual += res.Virtual
		out.Frames += res.FramesProcessed
		out.Stats.Distances += res.Stats.Distances
		out.Stats.Extractions += res.Stats.Extractions
		out.Stats.CacheHits += res.Stats.CacheHits
	}
	if n := len(ds.Videos); n > 0 {
		out.REC = recSum / float64(n)
	}
	if out.Virtual > 0 {
		out.FPS = float64(out.Frames) / out.Virtual.Seconds()
	}
	return out
}

// Point is one (FPS, REC) sample of a sweep curve.
type Point struct {
	Param float64 // the swept parameter value (η or τmax)
	FPS   float64
	REC   float64
}

// Curve is a named series of sweep points.
type Curve struct {
	Name   string
	Points []Point
}

// FPSAtREC interpolates the FPS a curve achieves at the target recall.
// Points are assumed to trade FPS for REC monotonically in the sweep
// parameter; the function sorts by REC and linearly interpolates, and
// returns (0, false) when the target is never reached.
func (c Curve) FPSAtREC(target float64) (float64, bool) {
	pts := append([]Point(nil), c.Points...)
	// Insertion sort by REC ascending (curves are short).
	for i := 1; i < len(pts); i++ {
		for j := i; j > 0 && pts[j].REC < pts[j-1].REC; j-- {
			pts[j], pts[j-1] = pts[j-1], pts[j]
		}
	}
	var below, above *Point
	for i := range pts {
		p := &pts[i]
		if p.REC >= target {
			above = p
			break
		}
		below = p
	}
	if above == nil {
		return 0, false
	}
	if below == nil || above.REC == below.REC {
		return above.FPS, true
	}
	frac := (target - below.REC) / (above.REC - below.REC)
	return below.FPS + frac*(above.FPS-below.FPS), true
}
