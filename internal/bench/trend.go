package bench

import (
	"fmt"
	"strings"
)

// TrendTable renders a GitHub-flavoured markdown table comparing a PR
// benchmark run against the committed baseline, row by row (rows pair up
// on the pinned identity: dataset, seed, videos, window length,
// workers). It is informational CI output — wall numbers are
// machine-dependent, so the table shows the trend a reviewer should
// glance at, while the hard gating stays with CheckParallelBench and the
// speedup floors. Baseline rows with no PR counterpart (and vice versa)
// still appear, with the missing side dashed, so a narrowed benchmark is
// visible in the summary too.
func TrendTable(baseline, run []ParallelBenchResult) string {
	key := func(r ParallelBenchResult) string {
		return fmt.Sprintf("%s/seed%d/videos%d/L%d/workers%d", r.Dataset, r.Seed, r.Videos, r.WindowLen, r.Workers)
	}
	base := make(map[string]ParallelBenchResult, len(baseline))
	var order []string
	for _, b := range baseline {
		k := key(b)
		if _, dup := base[k]; !dup {
			order = append(order, k)
		}
		base[k] = b
	}
	runs := make(map[string]ParallelBenchResult, len(run))
	for _, r := range run {
		k := key(r)
		if _, inBase := base[k]; !inBase {
			if _, dup := runs[k]; !dup {
				order = append(order, k)
			}
		}
		runs[k] = r
	}

	var sb strings.Builder
	sb.WriteString("| row | baseline wall_ms | PR wall_ms | Δ wall | baseline speedup | PR speedup |\n")
	sb.WriteString("|---|---:|---:|---:|---:|---:|\n")
	ms := func(r ParallelBenchResult, ok bool) string {
		if !ok || r.WallMS == 0 {
			return "—"
		}
		return fmt.Sprintf("%.1f", r.WallMS)
	}
	sp := func(r ParallelBenchResult, ok bool) string {
		if !ok || r.WallSpeedup == 0 {
			return "—"
		}
		return fmt.Sprintf("%.2fx", r.WallSpeedup)
	}
	for _, k := range order {
		b, inBase := base[k]
		r, inRun := runs[k]
		delta := "—"
		if inBase && inRun && b.WallMS > 0 && r.WallMS > 0 {
			delta = fmt.Sprintf("%+.1f%%", (r.WallMS-b.WallMS)/b.WallMS*100)
		}
		fmt.Fprintf(&sb, "| %s | %s | %s | %s | %s | %s |\n",
			k, ms(b, inBase), ms(r, inRun), delta, sp(b, inBase), sp(r, inRun))
	}
	return sb.String()
}
