package bench

import (
	"io"
	"reflect"
	"testing"
)

// TestQueryBenchDeterministicAndIncremental runs a reduced pinned
// query-latency benchmark without a clock: every row must pass the
// final-equivalence check, count the expected windows, and show the
// incremental engine doing strictly less predicate work than per-window
// batch recomputation. Two runs must agree exactly.
func TestQueryBenchDeterministicAndIncremental(t *testing.T) {
	run := func() []QueryBenchRow {
		s := NewSuite(42)
		cfg := DefaultQueryBench()
		cfg.Videos = 1
		return s.QueryBench(io.Discard, cfg)
	}
	rows := run()
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Experiment != queryBenchExperiment {
			t.Errorf("%s: experiment tag %q", r.Query, r.Experiment)
		}
		if !r.Match {
			t.Errorf("%s: incremental results diverged from the batch answer", r.Query)
		}
		if r.Windows == 0 {
			t.Errorf("%s: no windows committed", r.Query)
		}
		if r.IncScans <= 0 || r.BatchScans <= 0 {
			t.Errorf("%s: degenerate scan counts inc=%d batch=%d", r.Query, r.IncScans, r.BatchScans)
		}
		if r.Query != "cooccur" && r.IncScans >= r.BatchScans {
			// cooccur's BatchScans is a documented lower bound, so the
			// inequality is only guaranteed for the other operators.
			t.Errorf("%s: incremental scanned %d, batch recompute %d — no saving", r.Query, r.IncScans, r.BatchScans)
		}
		if r.IncWallMS != 0 || r.BatchWallMS != 0 || r.BatchMergeWallMS != 0 {
			t.Errorf("%s: wall times measured without a clock", r.Query)
		}
	}
	// The pinned benchmark is bit-deterministic without a clock.
	if again := run(); !reflect.DeepEqual(rows, again) {
		t.Error("two identical query-bench runs diverged")
	}
}
