package bench

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func benchRow(workers int, fps float64, fp string) ParallelBenchResult {
	return ParallelBenchResult{
		Experiment:  parallelBenchExperiment,
		Dataset:     "pathtrack",
		Seed:        42,
		Videos:      2,
		WindowLen:   400,
		Workers:     workers,
		Frames:      8000,
		REC:         0.9,
		FPS:         fps,
		VirtualMS:   1000,
		Fingerprint: fp,
	}
}

func TestParallelBenchJSONRoundTrip(t *testing.T) {
	rows := []ParallelBenchResult{
		benchRow(1, 650, "aaa"),
		benchRow(2, 650, "aaa"),
	}
	var buf bytes.Buffer
	if err := WriteParallelBench(&buf, rows); err != nil {
		t.Fatal(err)
	}
	// One object per line, no surrounding array — the NDJSON convention.
	if got := strings.Count(strings.TrimSpace(buf.String()), "\n"); got != 1 {
		t.Fatalf("expected 2 lines, got %d newlines in %q", got+1, buf.String())
	}
	back, err := DecodeParallelBench(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, back) {
		t.Fatalf("round trip mismatch:\nwrote %+v\nread  %+v", rows, back)
	}
}

func TestDecodeParallelBenchSkipsForeignRows(t *testing.T) {
	in := strings.NewReader(`
{"experiment":"fig5","payload":{}}

{"experiment":"parallel_windows","dataset":"pathtrack","seed":42,"videos":2,"window_len":400,"workers":1,"fps":650,"fingerprint":"aaa"}
`)
	rows, err := DecodeParallelBench(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Workers != 1 {
		t.Fatalf("got %+v, want the single parallel_windows row", rows)
	}
}

func TestCheckParallelBenchDeterminismGate(t *testing.T) {
	run := []ParallelBenchResult{
		benchRow(1, 650, "aaa"),
		benchRow(2, 650, "bbb"), // diverged fingerprint
	}
	fails := CheckParallelBench(run, nil, 0.15)
	if len(fails) != 1 || !strings.Contains(fails[0], "determinism") {
		t.Fatalf("want one determinism failure, got %v", fails)
	}
	run[1].Fingerprint = "aaa"
	if fails := CheckParallelBench(run, nil, 0.15); len(fails) != 0 {
		t.Fatalf("clean run flagged: %v", fails)
	}
}

func TestCheckParallelBenchBaselineGate(t *testing.T) {
	base := []ParallelBenchResult{
		benchRow(1, 650, "aaa"),
		benchRow(2, 650, "aaa"),
	}

	// Identical run: passes.
	if fails := CheckParallelBench(base, base, 0.15); len(fails) != 0 {
		t.Fatalf("identical run flagged: %v", fails)
	}

	// Mild slowdown within tolerance: passes.
	ok := []ParallelBenchResult{benchRow(1, 600, "aaa"), benchRow(2, 600, "aaa")}
	if fails := CheckParallelBench(ok, base, 0.15); len(fails) != 0 {
		t.Fatalf("within-tolerance run flagged: %v", fails)
	}

	// >15% virtual-FPS regression: fails.
	slow := []ParallelBenchResult{benchRow(1, 500, "aaa"), benchRow(2, 500, "aaa")}
	fails := CheckParallelBench(slow, base, 0.15)
	if len(fails) != 2 || !strings.Contains(fails[0], "throughput") {
		t.Fatalf("want two throughput failures, got %v", fails)
	}

	// Fingerprint drift vs baseline: fails even though the run is
	// internally consistent.
	drift := []ParallelBenchResult{benchRow(1, 650, "ccc"), benchRow(2, 650, "ccc")}
	fails = CheckParallelBench(drift, base, 0.15)
	if len(fails) != 2 || !strings.Contains(fails[0], "determinism") {
		t.Fatalf("want two determinism failures, got %v", fails)
	}

	// A run covering fewer rows than the baseline cannot pass silently.
	narrow := []ParallelBenchResult{benchRow(1, 650, "aaa")}
	fails = CheckParallelBench(narrow, base, 0.15)
	if len(fails) != 1 || !strings.Contains(fails[0], "covered 1 of 2") {
		t.Fatalf("want a coverage failure, got %v", fails)
	}

	// A run row missing from the baseline fails too.
	extra := []ParallelBenchResult{benchRow(1, 650, "aaa"), benchRow(2, 650, "aaa"), benchRow(4, 650, "aaa")}
	fails = CheckParallelBench(extra, base, 0.15)
	if len(fails) != 1 || !strings.Contains(fails[0], "no row") {
		t.Fatalf("want a missing-baseline-row failure, got %v", fails)
	}
}
