package bench

import (
	"strings"
	"testing"
)

func trendRow(workers int, wallMS, speedup float64) ParallelBenchResult {
	r := benchRow(workers, 650, "aaa")
	r.WallMS = wallMS
	r.WallSpeedup = speedup
	return r
}

func TestTrendTablePairsRows(t *testing.T) {
	base := []ParallelBenchResult{trendRow(1, 1000, 1), trendRow(4, 500, 2)}
	run := []ParallelBenchResult{trendRow(1, 900, 1), trendRow(4, 400, 2.25)}
	table := TrendTable(base, run)

	lines := strings.Split(strings.TrimSpace(table), "\n")
	if len(lines) != 4 { // header, separator, two data rows
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), table)
	}
	if !strings.Contains(lines[0], "baseline wall_ms") || !strings.Contains(lines[0], "PR wall_ms") {
		t.Fatalf("bad header: %s", lines[0])
	}
	if !strings.Contains(table, "pathtrack/seed42/videos2/L400/workers4") {
		t.Fatalf("row key missing:\n%s", table)
	}
	// workers4: 500 -> 400 is -20%.
	if !strings.Contains(table, "-20.0%") {
		t.Fatalf("delta missing:\n%s", table)
	}
	if !strings.Contains(table, "2.25x") {
		t.Fatalf("PR speedup missing:\n%s", table)
	}
}

func TestTrendTableShowsUnpairedRows(t *testing.T) {
	base := []ParallelBenchResult{trendRow(1, 1000, 1), trendRow(2, 800, 1.25)}
	run := []ParallelBenchResult{trendRow(1, 1000, 1), trendRow(4, 500, 2)}
	table := TrendTable(base, run)

	// The baseline-only workers2 row and the run-only workers4 row both
	// appear, each with the missing side dashed.
	for _, key := range []string{"workers2", "workers4"} {
		found := false
		for _, line := range strings.Split(table, "\n") {
			if strings.Contains(line, key) {
				found = true
				if !strings.Contains(line, "—") {
					t.Errorf("unpaired row %s should dash its missing side: %s", key, line)
				}
			}
		}
		if !found {
			t.Errorf("row %s missing from table:\n%s", key, table)
		}
	}
}
