package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"github.com/tmerge/tmerge/internal/core"
	"github.com/tmerge/tmerge/internal/histlog"
	"github.com/tmerge/tmerge/internal/query"
	"github.com/tmerge/tmerge/internal/trackdb"
	"github.com/tmerge/tmerge/internal/video"
	"github.com/tmerge/tmerge/internal/xrand"
)

// HistBenchConfig pins one log-structured-history benchmark: a
// synthetic long-horizon stream fed straight through the storage spine
// (trackdb.TieredView over a histlog.Log — the layer ingest sessions
// wrap), with enough windows that the hot tier must stay flat while
// total track count grows into the millions. The benchmark measures
// bounded-memory behaviour (hot-cell ceiling, heap growth per track),
// compaction traffic, and AsOf time-travel latency, and verifies that
// the reconstructed historical view answers queries identically to the
// live tiered view.
type HistBenchConfig struct {
	// Seed drives the deterministic workload generator.
	Seed uint64
	// Windows is the number of committed windows to stream.
	Windows int
	// WindowLen is the frame length of each window.
	WindowLen int
	// TracksPerWindow raw tracks are born in every window, each living
	// entirely inside it — so each cohort ages past the hot horizon a
	// fixed number of windows later, which is what makes the hot-cell
	// ceiling a sharp, deterministic bound.
	TracksPerWindow int
	// BoxesPerTrack is the number of (distinct-frame) boxes per track.
	BoxesPerTrack int
	// MergesPerWindow merge attempts are made among each window's own
	// cohort (never across windows, so the steady state never rehydrates).
	MergesPerWindow int
	// HotHorizon is the tiering horizon in frames (0 = 4×WindowLen,
	// matching ingest.HistoryConfig's default).
	HotHorizon int
	// WindowsPerSegment is the log's auto-seal threshold
	// (0 = histlog.DefaultWindowsPerSegment).
	WindowsPerSegment int
	// CompactEvery folds sealed raw segments into a base snapshot
	// whenever this many have accumulated (0 never compacts).
	CompactEvery int
	// AsOfProbes is how many time-travel cuts to replay (spread evenly
	// across the retained frame range) after the feed completes.
	AsOfProbes int
	// MaxHeapBytesPerTrack is the heap-growth gate's ceiling: resident
	// bytes per raw track fed, measured end-of-feed against the pre-feed
	// baseline after a forced GC. The cold tier keeps an O(1) summary
	// per track, so growth far above the summary size means full cells
	// stayed resident — the failure mode the tiered view exists to
	// prevent.
	MaxHeapBytesPerTrack float64
	// HeapGateMinTracks is the measurability floor: below this many
	// tracks, GC noise dominates the per-track quotient and the heap
	// gate is skipped (loudly, as an explicit gate_status row).
	HeapGateMinTracks int
	// Dir is the history directory the log writes under. Required.
	Dir string
	// Clock reads wall time for the latency measurements. It must be
	// injected by the caller — cmd/benchrunner is on the determinism
	// allowlist, this package is not. Nil disables wall timing; every
	// structural result and both gates are deterministic without it.
	Clock func() time.Time
}

// DefaultHistBench is the pinned configuration benchrunner's
// "histbench" experiment runs: 2000 windows × 500 tracks = one million
// raw tracks through a 160-frame hot horizon, sealing every 50 windows
// and compacting every 16 sealed segments.
func DefaultHistBench() HistBenchConfig {
	return HistBenchConfig{
		Seed:                 42,
		Windows:              2000,
		WindowLen:            40,
		TracksPerWindow:      500,
		BoxesPerTrack:        2,
		MergesPerWindow:      100,
		WindowsPerSegment:    50,
		CompactEvery:         16,
		AsOfProbes:           4,
		MaxHeapBytesPerTrack: 600,
		HeapGateMinTracks:    100_000,
	}
}

// histBenchExperiment tags the rows in mixed NDJSON streams.
const histBenchExperiment = "hist_memory"

// Gate names the histbench gate_status rows carry.
const (
	// GateHistHotCells bounds the hot tier's resident cell count.
	GateHistHotCells = "hist_hot_cells"
	// GateHistHeapGrowth bounds measured heap growth per track fed.
	GateHistHeapGrowth = "hist_heap_growth"
)

// HistBenchRow is the benchmark's NDJSON result row. Everything except
// the *_ms wall-time fields is a deterministic function of the
// configuration (HeapBytesPerTrack is measured, but gated with the
// measurability floor).
type HistBenchRow struct {
	Experiment string `json:"experiment"`
	Seed       uint64 `json:"seed"`
	Windows    int    `json:"windows"`
	WindowLen  int    `json:"window_len"`
	// Tracks is the total raw tracks fed; Boxes the total box
	// extensions journaled; Merges the merge events committed.
	Tracks int `json:"tracks"`
	Boxes  int `json:"boxes"`
	Merges int `json:"merges"`
	// CanonTracks is the live canonical identities at end of feed,
	// split into HotTracks (fully resident) and ColdTracks (summaries).
	CanonTracks int `json:"canon_tracks"`
	HotTracks   int `json:"hot_tracks"`
	ColdTracks  int `json:"cold_tracks"`
	// HotCellsMax is the per-window maximum of resident frame cells;
	// HotCellBudget the deterministic ceiling the gate enforces.
	HotCellsMax   int `json:"hot_cells_max"`
	HotCellBudget int `json:"hot_cell_budget"`
	// Evicted and Rehydrated are the tiered view's lifetime counters.
	// The workload never touches a cohort after its window, so any
	// rehydration means the horizon leaked.
	Evicted    int `json:"evicted"`
	Rehydrated int `json:"rehydrated"`
	// Compactions counts base folds; RetentionFrame is the earliest
	// frame AsOf can still cut at (-1 when never compacted); LogBytes
	// the on-disk footprint of the history directory at end of run.
	Compactions    int   `json:"compactions"`
	RetentionFrame int   `json:"retention_frame"`
	LogBytes       int64 `json:"log_bytes"`
	// HeapBytesPerTrack is the measured end-of-feed heap growth per raw
	// track (-1 when below the measurability floor).
	HeapBytesPerTrack float64 `json:"heap_bytes_per_track"`
	// AsOfProbes time-travel cuts were replayed; AsOfRows sums the
	// historical query rows they answered (a fresh operator bootstrapped
	// over each reconstructed view).
	AsOfProbes int `json:"asof_probes"`
	AsOfRows   int `json:"asof_rows"`
	// Match reports that the final cut's historical answer was
	// bit-identical to the same query bootstrapped over the live tiered
	// view.
	Match bool `json:"match"`
	// Wall-clock measurements, present only when a Clock is injected.
	FeedWallMS float64 `json:"feed_wall_ms,omitempty"`
	AsOfP50MS  float64 `json:"asof_p50_ms,omitempty"`
	AsOfMaxMS  float64 `json:"asof_max_ms,omitempty"`
}

// validate rejects configurations the generator cannot honour.
func (cfg *HistBenchConfig) validate() error {
	if cfg.Dir == "" {
		return fmt.Errorf("bench: histbench needs a history directory")
	}
	if cfg.Windows <= 0 || cfg.TracksPerWindow <= 0 || cfg.BoxesPerTrack <= 0 {
		return fmt.Errorf("bench: histbench windows, tracks per window, and boxes per track must be positive")
	}
	if cfg.WindowLen < cfg.BoxesPerTrack {
		return fmt.Errorf("bench: histbench window length %d cannot hold %d distinct-frame boxes", cfg.WindowLen, cfg.BoxesPerTrack)
	}
	if cfg.HotHorizon != 0 && cfg.HotHorizon < 2*cfg.WindowLen {
		return fmt.Errorf("bench: histbench hot horizon %d is below 2×WindowLen = %d", cfg.HotHorizon, 2*cfg.WindowLen)
	}
	if cfg.MergesPerWindow < 0 || cfg.AsOfProbes < 0 {
		return fmt.Errorf("bench: histbench merges per window and AsOf probes must be >= 0")
	}
	return nil
}

// horizonFrames resolves the hot horizon (the ingest default: 4×L).
func (cfg *HistBenchConfig) horizonFrames() int {
	if cfg.HotHorizon > 0 {
		return cfg.HotHorizon
	}
	return 4 * cfg.WindowLen
}

// hotCellBudget is the deterministic ceiling on resident cells: a
// cohort's tracks all end inside their window, so at most
// ceil(horizon/L)+2 cohorts can be inside the horizon (or awaiting the
// next commit's eviction sweep) at once, each holding at most
// TracksPerWindow×BoxesPerTrack cells (merges can only collapse cells,
// never add them).
func (cfg *HistBenchConfig) hotCellBudget() int {
	cohorts := (cfg.horizonFrames()+cfg.WindowLen-1)/cfg.WindowLen + 2
	return cohorts * cfg.TracksPerWindow * cfg.BoxesPerTrack
}

// readHeap forces a GC and returns the resident heap, so successive
// readings measure live bytes rather than collector timing.
func readHeap() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// histCountQuery is the query the AsOf probes answer: canonical tracks
// with strictly more deduplicated boxes than one raw track carries —
// i.e. exactly the groups the merge stream created.
func histCountQuery(cfg *HistBenchConfig) query.CountQuery {
	return query.CountQuery{MinFrames: cfg.BoxesPerTrack + 1}
}

// RunHistBench streams the synthetic workload through a tiered view
// journaling to a fresh histlog under cfg.Dir — the same feed protocol
// ingest sessions use (extensions, merge events, flush, journal, evict,
// compact) — then measures the memory gates, replays the AsOf probes,
// and returns the result row plus one gate_status row per gate.
func RunHistBench(cfg HistBenchConfig) (HistBenchRow, []GateStatus, error) {
	row := HistBenchRow{
		Experiment:    histBenchExperiment,
		Seed:          cfg.Seed,
		Windows:       cfg.Windows,
		WindowLen:     cfg.WindowLen,
		Tracks:        cfg.Windows * cfg.TracksPerWindow,
		HotCellBudget: cfg.hotCellBudget(),
	}
	if err := cfg.validate(); err != nil {
		return row, nil, err
	}
	log, err := histlog.Open(cfg.Dir, histlog.Options{WindowsPerSegment: cfg.WindowsPerSegment})
	if err != nil {
		return row, nil, err
	}
	if err := log.Reset(); err != nil {
		return row, nil, err
	}
	tier := trackdb.NewTieredView(nil, log)
	m := core.NewMerger()
	rng := xrand.New(cfg.Seed)
	horizon := video.FrameIndex(cfg.horizonFrames())
	stride := cfg.WindowLen / cfg.BoxesPerTrack
	scratch := make([]histlog.Extend, 0, cfg.TracksPerWindow*cfg.BoxesPerTrack)

	heapBase := readHeap()
	var feedStart time.Time
	if cfg.Clock != nil {
		feedStart = cfg.Clock()
	}

	cursor := 0
	for wi := 0; wi < cfg.Windows; wi++ {
		w := video.Window{
			Index:   wi,
			Start:   video.FrameIndex(wi * cfg.WindowLen),
			End:     video.FrameIndex((wi+1)*cfg.WindowLen - 1),
			Nominal: cfg.WindowLen,
		}
		base := wi * cfg.TracksPerWindow
		scratch = scratch[:0]
		for t := 0; t < cfg.TracksPerWindow; t++ {
			id := video.TrackID(base + t)
			class := video.ClassID(rng.Intn(3))
			for b := 0; b < cfg.BoxesPerTrack; b++ {
				// One box per stride keeps the frames distinct and ascending;
				// integer centers keep the journal lines compact.
				frame := w.Start + video.FrameIndex(b*stride+rng.Intn(stride))
				cx, cy := float64(rng.Intn(1920)), float64(rng.Intn(1080))
				scratch = append(scratch, histlog.Extend{Track: id, Frame: frame, CX: cx, CY: cy, Class: class})
				if err := tier.ExtendCell(id, frame, class, cx, cy); err != nil {
					return row, nil, err
				}
				row.Boxes++
			}
		}
		for k := 0; k < cfg.MergesPerWindow; k++ {
			a := video.TrackID(base + rng.Intn(cfg.TracksPerWindow))
			b := video.TrackID(base + rng.Intn(cfg.TracksPerWindow))
			if a != b {
				m.Merge(video.MakePairKey(a, b))
			}
		}
		events := m.EventsSince(cursor)
		cursor = m.EventCount()
		if err := tier.ApplyEvents(events); err != nil {
			return row, nil, err
		}
		tier.Flush()

		entry := histlog.WindowEntry{Window: w, Events: events}
		if len(scratch) > 0 {
			// The log holds entries until the segment seals; scratch is
			// reused next window, so the entry needs its own copy.
			entry.Extends = append([]histlog.Extend(nil), scratch...)
		}
		if err := log.AppendWindow(entry); err != nil {
			return row, nil, err
		}
		tier.EvictBefore(w.End + 1 - horizon)
		m.TrimEvents(log.SealedSeq())
		if cfg.CompactEvery > 0 && log.SealedRawSegments() >= cfg.CompactEvery {
			if err := log.Compact(); err != nil {
				return row, nil, err
			}
			row.Compactions++
		}
		if c := tier.HotCells(); c > row.HotCellsMax {
			row.HotCellsMax = c
		}
	}
	if cfg.Clock != nil {
		row.FeedWallMS = float64(cfg.Clock().Sub(feedStart)) / float64(time.Millisecond)
	}
	heapEnd := readHeap()

	row.Merges = m.EventCount()
	row.CanonTracks = tier.Len()
	row.HotTracks = tier.HotTracks()
	row.ColdTracks = tier.ColdTracks()
	st := tier.Stats()
	row.Evicted, row.Rehydrated = st.Evicted, st.Rehydrated
	row.RetentionFrame = int(log.RetentionFrame())
	row.LogBytes = dirBytes(cfg.Dir)

	statuses := []GateStatus{
		hotCellsGate(&row),
		heapGate(&cfg, &row, heapBase, heapEnd),
	}

	if err := runAsOfProbes(&cfg, &row, log, tier); err != nil {
		return row, statuses, err
	}
	return row, statuses, nil
}

// hotCellsGate judges the deterministic resident-cell ceiling.
func hotCellsGate(row *HistBenchRow) GateStatus {
	st := NewGateStatus(GateHistHotCells, GateOK, "", runtime.NumCPU())
	if row.HotCellsMax > row.HotCellBudget {
		st.Status = GateFailed
		st.Reason = fmt.Sprintf("hot tier held %d cells, budget %d: eviction is not keeping the horizon", row.HotCellsMax, row.HotCellBudget)
	} else {
		st.Reason = fmt.Sprintf("hot tier peaked at %d cells over %d windows (budget %d)", row.HotCellsMax, row.Windows, row.HotCellBudget)
	}
	return st
}

// heapGate judges measured heap growth per raw track fed, skipping —
// loudly — below the measurability floor where GC noise dominates.
func heapGate(cfg *HistBenchConfig, row *HistBenchRow, heapBase, heapEnd uint64) GateStatus {
	st := NewGateStatus(GateHistHeapGrowth, GateOK, "", runtime.NumCPU())
	row.HeapBytesPerTrack = -1
	if row.Tracks < cfg.HeapGateMinTracks {
		st.Status = GateSkipped
		st.Reason = fmt.Sprintf("%d tracks below the %d-track measurability floor; GC noise dominates the per-track quotient (hot-cells gate still applies)",
			row.Tracks, cfg.HeapGateMinTracks)
		return st
	}
	var perTrack float64
	if heapEnd > heapBase {
		perTrack = float64(heapEnd-heapBase) / float64(row.Tracks)
	}
	row.HeapBytesPerTrack = perTrack
	if perTrack > cfg.MaxHeapBytesPerTrack {
		st.Status = GateFailed
		st.Reason = fmt.Sprintf("%.0f heap bytes per track (ceiling %.0f): full cell state is staying resident", perTrack, cfg.MaxHeapBytesPerTrack)
	} else {
		st.Reason = fmt.Sprintf("%.0f heap bytes per track over %d tracks (ceiling %.0f)", perTrack, row.Tracks, cfg.MaxHeapBytesPerTrack)
	}
	return st
}

// runAsOfProbes replays cfg.AsOfProbes time-travel cuts spread across
// the retained frame range, answering the pinned count query over each
// reconstructed view, and verifies the final cut's answer against the
// live tiered view.
func runAsOfProbes(cfg *HistBenchConfig, row *HistBenchRow, log *histlog.Log, tier *trackdb.TieredView) error {
	q := histCountQuery(cfg)
	end := log.EndFrame()
	lo := log.RetentionFrame()
	if lo < 0 {
		lo = 0
	}
	var cuts []video.FrameIndex
	for i := 0; i < cfg.AsOfProbes; i++ {
		f := end
		if cfg.AsOfProbes > 1 {
			f = lo + (end-lo)*video.FrameIndex(i)/video.FrameIndex(cfg.AsOfProbes-1)
		}
		cuts = append(cuts, f)
	}
	var wall []time.Duration
	for _, f := range cuts {
		var start time.Time
		if cfg.Clock != nil {
			start = cfg.Clock()
		}
		v, cut, err := log.AsOf(f)
		if err != nil {
			return fmt.Errorf("bench: histbench AsOf(%d): %w", f, err)
		}
		if cfg.Clock != nil {
			wall = append(wall, cfg.Clock().Sub(start))
		}
		if cut > f || cut < 0 {
			return fmt.Errorf("bench: histbench AsOf(%d) cut at %d", f, cut)
		}
		got := query.HistoricalAnswer(v, query.NewIncCount(q))
		row.AsOfProbes++
		row.AsOfRows += len(got)
		if f == end {
			// The final cut covers everything the live view holds: the
			// historical answer must be bit-identical to bootstrapping the
			// same query over the tiered view.
			want := query.HistoricalAnswer(tier, query.NewIncCount(q))
			row.Match = sameRows(got, want)
		}
	}
	if len(wall) > 0 {
		sort.Slice(wall, func(i, j int) bool { return wall[i] < wall[j] })
		row.AsOfP50MS = float64(quantile(wall, 0.5)) / float64(time.Millisecond)
		row.AsOfMaxMS = float64(wall[len(wall)-1]) / float64(time.Millisecond)
	}
	return nil
}

// dirBytes sums the sizes of the regular files directly under dir
// (segments and manifest; the log nests nothing deeper). Unreadable
// entries count zero — the footprint is reporting, not a gate.
func dirBytes(dir string) int64 {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	var n int64
	for _, e := range entries {
		if info, err := e.Info(); err == nil && info.Mode().IsRegular() {
			n += info.Size()
		}
	}
	return n
}

// HistBench runs RunHistBench and prints the human-readable summary,
// echoing every gate decision to w so a skip is visible in the run log.
func HistBench(w io.Writer, cfg HistBenchConfig) (HistBenchRow, []GateStatus, error) {
	row, statuses, err := RunHistBench(cfg)
	if err != nil {
		return row, statuses, err
	}
	fmt.Fprintf(w, "Log-structured history — %d windows × %d tracks = %d tracks, horizon %d frames\n",
		cfg.Windows, cfg.TracksPerWindow, row.Tracks, cfg.horizonFrames())
	fmt.Fprintf(w, "%-14s %10s %10s %12s %10s %8s %10s %6s\n",
		"canon_tracks", "hot", "cold", "hot_cells", "compacts", "log_mb", "asof_rows", "match")
	fmt.Fprintf(w, "%-14d %10d %10d %12s %10d %8.1f %10d %6v\n",
		row.CanonTracks, row.HotTracks, row.ColdTracks,
		fmt.Sprintf("%d/%d", row.HotCellsMax, row.HotCellBudget),
		row.Compactions, float64(row.LogBytes)/(1<<20), row.AsOfRows, row.Match)
	if row.FeedWallMS > 0 {
		fmt.Fprintf(w, "feed %.0f ms, AsOf p50 %.2f ms max %.2f ms over %d probes\n",
			row.FeedWallMS, row.AsOfP50MS, row.AsOfMaxMS, row.AsOfProbes)
	}
	for _, st := range statuses {
		fmt.Fprintf(w, "gate %s %s: %s\n", st.Gate, st.Status, st.Reason)
	}
	return row, statuses, nil
}

// WriteHistBench appends the result row and its gate statuses as
// line-delimited JSON — the bench-artifact convention.
func WriteHistBench(w io.Writer, row HistBenchRow, statuses []GateStatus) error {
	if err := json.NewEncoder(w).Encode(row); err != nil {
		return err
	}
	return WriteGateStatuses(w, statuses)
}

// DecodeHistBench reads histbench rows from a mixed NDJSON stream
// (blank lines and rows of other experiments are skipped).
func DecodeHistBench(r io.Reader) ([]HistBenchRow, error) {
	var out []HistBenchRow
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var row HistBenchRow
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			return nil, fmt.Errorf("bench: decoding row %q: %w", line, err)
		}
		if row.Experiment != histBenchExperiment {
			continue
		}
		out = append(out, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// CheckHistBench returns the CI-gate failures for a histbench run: the
// structural invariants the workload guarantees (equivalence at the
// final cut, a populated cold tier, zero rehydrations, compaction
// actually firing when configured) plus any failed gate_status row.
func CheckHistBench(rows []HistBenchRow, statuses []GateStatus, compactEvery int) []string {
	var fails []string
	if len(rows) == 0 {
		fails = append(fails, "no histbench rows")
		return fails
	}
	for _, r := range rows {
		if !r.Match {
			fails = append(fails, "final AsOf answer diverged from the live tiered view")
		}
		if r.ColdTracks == 0 || r.Evicted == 0 {
			fails = append(fails, fmt.Sprintf("cold tier never populated (%d cold, %d evicted): the horizon is not evicting", r.ColdTracks, r.Evicted))
		}
		if r.Rehydrated != 0 {
			fails = append(fails, fmt.Sprintf("%d rehydrations in a workload that never revisits old cohorts", r.Rehydrated))
		}
		if compactEvery > 0 && r.Compactions == 0 {
			fails = append(fails, "compaction configured but never fired")
		}
		if r.HotCellsMax > r.HotCellBudget {
			fails = append(fails, fmt.Sprintf("hot cells peaked at %d, budget %d", r.HotCellsMax, r.HotCellBudget))
		}
	}
	for _, st := range statuses {
		if st.Status == GateFailed {
			fails = append(fails, fmt.Sprintf("gate %s failed: %s", st.Gate, st.Reason))
		}
	}
	return fails
}
