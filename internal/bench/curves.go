package bench

import (
	"fmt"
	"io"

	"github.com/tmerge/tmerge/internal/core"
	"github.com/tmerge/tmerge/internal/motmetrics"
	"github.com/tmerge/tmerge/internal/reid"
	"github.com/tmerge/tmerge/internal/track"
	"github.com/tmerge/tmerge/internal/video"
)

// Datasets is the evaluation corpus order used throughout the harness.
var Datasets = []string{"mot17", "kitti", "pathtrack"}

// TauSweep is the iteration-budget sweep for LCB and TMerge curves.
var TauSweep = []int{1000, 2000, 5000, 10000, 20000, 40000}

// EtaSweep is the sampled-proportion sweep for PS curves. The low end
// samples only a handful of BBox pairs per track pair, where per-sample
// ReID noise (pose changes, partial occlusion) makes estimates unreliable.
var EtaSweep = []float64{0.0001, 0.0005, 0.002, 0.01, 0.05}

// KSweep is the candidate-proportion sweep of the REC-K curves (Figure 3).
var KSweep = []float64{0.01, 0.02, 0.03, 0.05, 0.075, 0.10, 0.15, 0.20}

// defaultTracker returns the tracker used unless an experiment varies it —
// Tracktor, the paper's choice (§V-A).
func defaultTracker() track.Tracker { return track.Tracktor() }

// Fig3 regenerates the REC-K curves of the exhaustive baseline on the
// three datasets (Figure 3). One exact ranking per window suffices: REC at
// every K is a prefix recall of the same ranking.
func (s *Suite) Fig3(w io.Writer) map[string][]Point {
	out := make(map[string][]Point)
	t := &Table{
		Title:  "Figure 3: REC-K curves of the exhaustive baseline",
		Header: append([]string{"K"}, Datasets...),
	}
	tr := defaultTracker()
	for _, dsName := range Datasets {
		ds := s.Dataset(dsName)
		recSum := make([]float64, len(KSweep))
		windows := 0
		for i, v := range ds.Videos {
			ts := s.Tracks(dsName, tr, i)
			for _, ps := range s.pairSets(ts, v.NumFrames, ds.WindowLen) {
				truth := motmetrics.PolyonymousPairs(ps)
				if len(truth) == 0 {
					continue
				}
				oracle := reid.NewOracle(s.model, s.newDevice(CPU))
				ranking := core.NewBaseline().Select(ps, oracle, 1.0)
				windows++
				for ki, K := range KSweep {
					n := ps.TopCount(K)
					recSum[ki] += video.Recall(ranking[:min(n, len(ranking))], truth)
				}
			}
		}
		pts := make([]Point, len(KSweep))
		for ki, K := range KSweep {
			rec := 1.0
			if windows > 0 {
				rec = recSum[ki] / float64(windows)
			}
			pts[ki] = Point{Param: K, REC: rec}
		}
		out[dsName] = pts
	}
	for ki, K := range KSweep {
		row := []string{f3(K)}
		for _, dsName := range Datasets {
			row = append(row, f3(out[dsName][ki].REC))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper shape: REC > 0.95 for K >= ~0.05 on MOT-17, >= ~0.085 on PathTrack")
	t.Fprint(w)
	printRecKChart(w, "Figure 3 (chart): REC vs K", out)
	return out
}

// pairSets enumerates the pair universes of a tracked video under the
// dataset's windowing.
func (s *Suite) pairSets(ts *video.TrackSet, numFrames, windowLen int) []*video.PairSet {
	var out []*video.PairSet
	if windowLen <= 0 {
		w := video.Window{Start: 0, End: video.FrameIndex(numFrames - 1)}
		out = append(out, video.BuildPairSet(w, ts.Sorted(), nil))
		return out
	}
	var prev []*video.Track
	for _, w := range video.Partition(numFrames, windowLen) {
		cur := video.WindowTracks(ts, w)
		out = append(out, video.BuildPairSet(w, cur, prev))
		prev = cur
	}
	return out
}

// Fig5 regenerates the REC-FPS curves of BL, PS, LCB, and TMerge on the
// three datasets (Figure 5), CPU execution.
func (s *Suite) Fig5(w io.Writer) map[string][]Curve {
	out := make(map[string][]Curve)
	for _, dsName := range Datasets {
		out[dsName] = s.recFPSCurves(dsName, CPU, 1)
		t := &Table{
			Title:  fmt.Sprintf("Figure 5: REC-FPS on %s (CPU)", dsName),
			Header: []string{"algorithm", "param", "FPS", "REC"},
		}
		for _, c := range out[dsName] {
			for _, p := range c.Points {
				t.AddRow(c.Name, fmt.Sprintf("%g", p.Param), f2(p.FPS), f3(p.REC))
			}
		}
		t.AddNote("paper shape: at equal REC, TMerge is 10x-100x the FPS of PS and BL; LCB in between")
		t.Fprint(w)
		printRecFPSChart(w, fmt.Sprintf("Figure 5 (chart): REC-FPS on %s", dsName), out[dsName])
	}
	return out
}

// Fig6 regenerates the batched REC-FPS curves with batch sizes 10 and 100
// (Figure 6), accelerator execution.
func (s *Suite) Fig6(w io.Writer) map[string]map[int][]Curve {
	out := make(map[string]map[int][]Curve)
	for _, dsName := range Datasets {
		out[dsName] = make(map[int][]Curve)
		for _, B := range []int{10, 100} {
			out[dsName][B] = s.recFPSCurves(dsName, Accel, B)
			t := &Table{
				Title:  fmt.Sprintf("Figure 6: REC-FPS on %s (accelerator, B=%d)", dsName, B),
				Header: []string{"algorithm", "param", "FPS", "REC"},
			}
			for _, c := range out[dsName][B] {
				for _, p := range c.Points {
					t.AddRow(c.Name, fmt.Sprintf("%g", p.Param), f2(p.FPS), f3(p.REC))
				}
			}
			t.AddNote("paper shape: TMerge-B gains strongly with B; LCB-B barely")
			t.Fprint(w)
			printRecFPSChart(w, fmt.Sprintf("Figure 6 (chart): REC-FPS on %s, B=%d", dsName, B), out[dsName][B])
		}
	}
	return out
}

// recFPSCurves sweeps every algorithm on one dataset. batch > 1 selects
// the "-B" variants on the accelerator.
func (s *Suite) recFPSCurves(dsName string, kind DeviceKind, batch int) []Curve {
	tr := defaultTracker()
	var curves []Curve

	// BL: a single exact point.
	var bl core.Algorithm = core.NewBaseline()
	if batch > 1 {
		bl = core.NewBaselineB(batch)
	}
	r := s.Run(dsName, tr, bl, kind, DefaultK)
	curves = append(curves, Curve{Name: bl.Name(), Points: []Point{{Param: 0, FPS: r.FPS, REC: r.REC}}})

	// PS: sweep eta (trial-averaged over sampling seeds).
	psCurve := Curve{Name: "PS"}
	if batch > 1 {
		psCurve.Name = "PS-B"
	}
	for _, eta := range EtaSweep {
		eta := eta
		r := s.RunTrials(dsName, tr, func(trial int) core.Algorithm {
			seed := s.Seed + 11 + uint64(trial)*977
			if batch > 1 {
				return core.NewPSB(eta, batch, seed)
			}
			return core.NewPS(eta, seed)
		}, kind, DefaultK)
		psCurve.Points = append(psCurve.Points, Point{Param: eta, FPS: r.FPS, REC: r.REC})
	}
	curves = append(curves, psCurve)

	// LCB: sweep tau. LCB-B runs the same logic on the accelerator.
	lcbCurve := Curve{Name: "LCB"}
	if batch > 1 {
		lcbCurve.Name = "LCB-B"
	}
	for _, tau := range TauSweep {
		tau := tau
		r := s.RunTrials(dsName, tr, func(trial int) core.Algorithm {
			seed := s.Seed + 13 + uint64(trial)*977
			if batch > 1 {
				return core.NewLCBB(tau, seed)
			}
			return core.NewLCB(tau, seed)
		}, kind, DefaultK)
		lcbCurve.Points = append(lcbCurve.Points, Point{Param: float64(tau), FPS: r.FPS, REC: r.REC})
	}
	curves = append(curves, lcbCurve)

	// TMerge: sweep tau.
	tmCurve := Curve{Name: "TMerge"}
	if batch > 1 {
		tmCurve.Name = "TMerge-B"
	}
	for _, tau := range TauSweep {
		tau := tau
		r := s.RunTrials(dsName, tr, func(trial int) core.Algorithm {
			cfg := core.DefaultTMergeConfig(s.Seed + 17 + uint64(trial)*977)
			cfg.TauMax = tau
			cfg.Batch = batch
			return core.NewTMerge(cfg)
		}, kind, DefaultK)
		tmCurve.Points = append(tmCurve.Points, Point{Param: float64(tau), FPS: r.FPS, REC: r.REC})
	}
	curves = append(curves, tmCurve)
	return curves
}

// Table2 regenerates Table II: the FPS each method achieves at REC=0.80
// and REC=0.93 on MOT-17, plain and batched (B=10, B=100).
func (s *Suite) Table2(w io.Writer) map[string]map[float64]float64 {
	targets := []float64{0.80, 0.93}
	out := make(map[string]map[float64]float64)

	record := func(curves []Curve) {
		for _, c := range curves {
			if out[c.Name] == nil {
				out[c.Name] = make(map[float64]float64)
			}
			for _, target := range targets {
				// BL has no accuracy knob: report its single point when it
				// reaches the target.
				if len(c.Points) == 1 {
					if c.Points[0].REC >= target {
						out[c.Name][target] = c.Points[0].FPS
					}
					continue
				}
				if fps, ok := c.FPSAtREC(target); ok {
					out[c.Name][target] = fps
				}
			}
		}
	}
	record(s.recFPSCurves("mot17", CPU, 1))
	for _, B := range []int{10, 100} {
		curves := s.recFPSCurves("mot17", Accel, B)
		// Tag batched variants with their batch size, as in the paper.
		for i := range curves {
			curves[i].Name = fmt.Sprintf("%s(B=%d)", curves[i].Name, B)
		}
		record(curves)
	}

	t := &Table{
		Title:  "Table II: FPS at fixed REC on MOT-17",
		Header: []string{"method", "FPS@REC=0.80", "FPS@REC=0.93"},
	}
	order := []string{
		"BL", "PS", "LCB", "TMerge",
		"BL-B(B=10)", "PS-B(B=10)", "LCB-B(B=10)", "TMerge-B(B=10)",
		"BL-B(B=100)", "PS-B(B=100)", "LCB-B(B=100)", "TMerge-B(B=100)",
	}
	for _, name := range order {
		row := []string{name}
		for _, target := range targets {
			if fps, ok := out[name][target]; ok {
				row = append(row, f2(fps))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	t.AddNote("paper shape: TMerge 10x-100x PS/BL at equal REC; TMerge-B scales with B, LCB-B does not")
	t.Fprint(w)
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
