package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is a plain-text result table, the harness's output format for
// every regenerated figure and table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a footnote printed under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table to w.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n=== %s ===\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// f3 formats a float with three decimals.
func f3(x float64) string { return fmt.Sprintf("%.3f", x) }

// f2 formats a float with two decimals.
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }

// f1 formats a float with one decimal.
func f1(x float64) string { return fmt.Sprintf("%.1f", x) }
